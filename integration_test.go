package fsct

import (
	"bytes"
	"testing"

	"repro/internal/bist"
	"repro/internal/diagnose"
)

// TestAllSystems drives every subsystem against one circuit, end to
// end: scan insertion, the paper's flow, transition coverage, BIST
// signature test, dictionary diagnosis, sequence/Verilog/JSON I/O.
func TestAllSystems(t *testing.T) {
	if testing.Short() {
		t.Skip("integration run in -short mode")
	}
	circuit := GenerateCircuit(MustProfile("s5378").Scale(0.08), 31)
	design, err := InsertScan(circuit, ScanOptions{NumChains: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// The paper's flow.
	report, err := RunFlow(design, FlowParams{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Affecting() == 0 {
		t.Fatal("no chain-affecting faults")
	}
	covered := report.Step2.Detected + report.Step2.Undetectable +
		report.Step3.Detected + report.Step3.Undetectable
	if covered+report.Undetected() != report.Hard+report.EasyEscapes {
		t.Error("flow accounting does not close")
	}

	// Transition (delay) coverage of the chain links.
	tdet, ttot := ChainTransitionCoverage(design, 12)
	if ttot == 0 || float64(tdet) < 0.8*float64(ttot) {
		t.Errorf("transition coverage %d/%d", tdet, ttot)
	}

	// BIST signature self-test over the affecting faults.
	var affecting []Fault
	for _, s := range ScreenFaults(design, CollapsedFaults(design.C)) {
		if s.Cat != CatUnaffecting {
			affecting = append(affecting, s.Fault)
		}
	}
	bres, err := bist.Run(design, affecting, bist.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if bres.DetectedBySignature == 0 {
		t.Error("BIST detected nothing")
	}
	if bres.Aliased > bres.DetectedByCompare/100 {
		t.Errorf("aliasing rate suspicious: %d of %d", bres.Aliased, bres.DetectedByCompare)
	}

	// Diagnosis round trip on a handful of faults.
	dict := BuildDictionary(design, affecting, 17)
	probes := affecting
	if len(probes) > 12 {
		probes = probes[:12]
	}
	diagnosed := 0
	for _, f := range probes {
		hidden := f
		sig := dict.Observe(&diagnose.SimulatedDevice{C: design.C, Hidden: &hidden})
		if sig == dict.GoodSignature() {
			continue
		}
		for _, m := range dict.Match(sig) {
			if m == f {
				diagnosed++
				break
			}
		}
	}
	if diagnosed == 0 {
		t.Error("diagnosis matched nothing")
	}

	// I/O: sequence round trip, Verilog, JSON.
	seq := Sequence(design.AlternatingSequence(8))
	var buf bytes.Buffer
	if err := WriteSequence(&buf, design.C, seq); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSequence(&buf, design.C); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteVerilog(&buf, design.C); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteReportJSON(&buf, report); err != nil {
		t.Fatal(err)
	}

	t.Logf("all systems: faults=%d affecting=%d undetected=%d transition=%d/%d bist=%d diagnosed=%d/%d",
		report.Faults, report.Affecting(), report.Undetected(),
		tdet, ttot, bres.DetectedBySignature, diagnosed, len(probes))
}
