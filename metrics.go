package fsct

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/obs"
)

// Observability facade. The flow is uninstrumented by default; attach a
// collector to make it account for itself:
//
//	col := fsct.NewCollector()
//	rep, _ := fsct.RunFlow(d, fsct.FlowParams{Obs: col})
//	fmt.Print(fsct.FormatMetrics(rep.Metrics))
//
// The same collector can be shared across RunFlow, ScreenFaultsOpt and
// SimulateFaultsOpt calls; Snapshot (or Report.Metrics) freezes it into
// plain JSON-ready data.

// Collector gathers phase timings, counters, histograms and worker-pool
// utilization across a run. A nil *Collector is a valid no-op sink.
type Collector = obs.Collector

// Metrics is a frozen, JSON-ready snapshot of a Collector.
type Metrics = obs.Metrics

// NewCollector returns an enabled metrics collector.
func NewCollector() *Collector { return obs.New() }

// PublishMetrics exports col's live snapshot as the expvar variable
// "fsct_metrics" (visible on /debug/vars of a ServeDebug server) and as
// the OpenMetrics exposition ServeDebug serves at /metrics. Calling it
// again rebinds both to the new collector.
func PublishMetrics(col *Collector) { obs.Publish(col) }

// ServeDebug starts an HTTP server on addr exposing the standard
// net/http/pprof profiles under /debug/pprof/, expvar (including any
// published collector) under /debug/vars, and a Prometheus/OpenMetrics
// text rendering of the published collector's live snapshot at
// /metrics. The server runs its own mux — nothing registered on
// http.DefaultServeMux leaks onto it. It returns once the listener is
// bound; serving continues in the background. Close (or Shutdown) the
// returned server to stop it; its Addr field carries the bound address,
// so addr ":0" works for tests.
func ServeDebug(addr string) (*http.Server, error) { return obs.ServeDebug(addr) }

// WriteOpenMetrics renders a metrics snapshot in the OpenMetrics text
// exposition format (counters, phase/pool gauges, and native cumulative
// histogram buckets), ending with the mandatory # EOF terminator.
func WriteOpenMetrics(w io.Writer, m *Metrics) error { return obs.WriteOpenMetrics(w, m) }

// Journal is the flow's flight recorder: a bounded in-memory event
// buffer that phases, worker pools, screening, ATPG, fault simulation
// and the artifact cache emit structured events into. Attach one to a
// Collector with SetJournal; a nil *Journal is a valid no-op sink.
type Journal = journal.Recorder

// JournalEvent is one recorded flight-recorder event.
type JournalEvent = journal.Event

// NewJournal returns a flight recorder holding up to capacity events
// (<= 0 selects the default, 65536). Overflow drops new events but
// keeps counting them.
func NewJournal(capacity int) *Journal { return journal.New(capacity) }

// WriteJournalTrace serializes journal events (Journal.Snapshot) in
// Chrome trace-event JSON format, loadable by chrome://tracing and
// Perfetto. dropped (Journal.Dropped) is annotated in the timeline.
func WriteJournalTrace(w io.Writer, events []JournalEvent, dropped int64) error {
	return journal.WriteTrace(w, events, dropped)
}

// Provenance is the journal-derived explanation of what the flow
// decided about one fault; see ExplainFault.
type Provenance = core.Provenance

// ExplainFault replays a journal snapshot and explains fault f: its
// screening category with the implicating nets and chain locations,
// every ATPG attempt targeted at it, and its detection, if any.
func ExplainFault(d *Design, events []JournalEvent, f Fault) *Provenance {
	return core.BuildProvenance(d.C, events, f)
}

// FormatMetrics renders a metrics snapshot as an indented text block:
// per-phase wall times with their share of the total, sorted counters,
// histogram summaries and worker-pool utilization.
func FormatMetrics(m *Metrics) string {
	if m == nil {
		return "metrics: (none)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "metrics: wall=%s\n", round(time.Duration(m.WallNS)))
	if len(m.Phases) > 0 {
		b.WriteString("  phases:\n")
		for _, p := range m.Phases {
			share := 0.0
			if m.WallNS > 0 {
				share = 100 * float64(p.WallNS) / float64(m.WallNS)
			}
			fmt.Fprintf(&b, "    %-24s %10s  %5.1f%%\n",
				p.Name, round(time.Duration(p.WallNS)), share)
		}
	}
	if len(m.Counters) > 0 {
		b.WriteString("  counters:\n")
		for _, name := range sortedKeys(m.Counters) {
			fmt.Fprintf(&b, "    %-32s %12d\n", name, m.Counters[name])
		}
	}
	if len(m.Histograms) > 0 {
		b.WriteString("  histograms:\n")
		for _, name := range sortedKeys(m.Histograms) {
			h := m.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = float64(h.Sum) / float64(h.Count)
			}
			fmt.Fprintf(&b, "    %-32s count=%d sum=%d max=%d mean=%.1f p50=%d p95=%d p99=%d\n",
				name, h.Count, h.Sum, h.Max, mean, h.P50, h.P95, h.P99)
		}
	}
	if len(m.Pools) > 0 {
		b.WriteString("  pools:\n")
		for _, name := range sortedKeys(m.Pools) {
			p := m.Pools[name]
			fmt.Fprintf(&b, "    %-16s util=%5.1f%%  calls=%d  workers=%d  wall=%s\n",
				name, 100*p.Utilization, p.Calls, len(p.Workers), round(time.Duration(p.WallNS)))
			for i, w := range p.Workers {
				fmt.Fprintf(&b, "      worker %-2d busy=%-10s items=%d\n",
					i, round(time.Duration(w.BusyNS)), w.Items)
			}
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
