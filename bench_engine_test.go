package fsct

// TestEmitEngineBench writes BENCH_engine.json: the cache-on/off
// ablation for the shared circuit-artifact cache (internal/engine) and
// per-backend fault-simulation timings under the unified evaluator
// interface, so the engine layer's effect on the Table-3 flow is pinned
// next to BENCH_baseline.json.
//
// Like TestEmitBench it is opt-in — a plain `go test ./...` skips it:
//
//	FSCT_EMIT_BENCH=1 go test -run TestEmitEngineBench .

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
)

// benchRandSeq generates a deterministic random functional stimulus —
// the cmd/faultsim -random workload — for the hybrid comparison rows.
func benchRandSeq(c *Circuit, cycles int, seed uint64) Sequence {
	rng := seed*2862933555777941757 + 3037000493
	seq := make(Sequence, cycles)
	for t := range seq {
		pi := make([]Value, len(c.Inputs))
		for i := range pi {
			rng = rng*6364136223846793005 + 1442695040888963407
			pi[i] = Value((rng >> 33) & 1)
		}
		seq[t] = pi
	}
	return seq
}

type engineFlowEntry struct {
	Circuit string       `json:"circuit"`
	Cached  benchMeasure `json:"flow_cached"`
	Bypass  benchMeasure `json:"flow_bypass"`
}

// engineHybridEntry compares the hybrid fault evaluator against the
// compiled sweep on one circuit under a random functional stimulus (the
// cmd/faultsim -random workload). Speedup is compiled over hybrid wall
// time; below the size crossover (see EXPERIMENTS.md) it dips under 1,
// which is why Auto only picks hybrid above ~4096 signals.
type engineHybridEntry struct {
	Circuit  string       `json:"circuit"`
	Scale    float64      `json:"scale"`
	Cycles   int          `json:"cycles"`
	Faults   int          `json:"faults"`
	Compiled benchMeasure `json:"compiled"`
	Hybrid   benchMeasure `json:"hybrid"`
	Speedup  float64      `json:"speedup"`
}

type engineBench struct {
	Note       string                  `json:"note"`
	GoVersion  string                  `json:"go_version"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Scale      float64                 `json:"scale"`
	Flow       []engineFlowEntry       `json:"flow"`
	Backends   map[string]benchMeasure `json:"faultsim_backends"`
	Hybrid     []engineHybridEntry     `json:"faultsim_hybrid"`
	// Headline ratio: summed bypass flow time over summed cached flow
	// time (per-circuit rows above are the source of truth).
	FlowCacheSpeedup float64 `json:"flow_cache_speedup"`
}

func TestEmitEngineBench(t *testing.T) {
	if os.Getenv("FSCT_EMIT_BENCH") == "" {
		t.Skip("set FSCT_EMIT_BENCH=1 to measure and write BENCH_engine.json")
	}
	out := engineBench{
		Note: "Cache ablation for the shared circuit-artifact cache: flow_cached reuses " +
			"one warm engine cache across iterations (the default-cache behavior of " +
			"repeated runs on one circuit); flow_bypass rebuilds every derived artifact " +
			"per phase. Backend rows force one evaluator each on the largest circuit at " +
			"bench scale (below the hybrid crossover — event and hybrid are deliberately " +
			"out of their regime there). faultsim_hybrid rows compare hybrid against " +
			"compiled at the crossover scale under random functional stimulus.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      benchScale,
		Backends:   map[string]benchMeasure{},
	}

	var cachedNs, bypassNs int64
	for _, name := range []string{"s9234", "s38584"} {
		p := MustProfile(name).Scale(benchScale)
		c := GenerateCircuit(p, 1)
		d, err := InsertScan(c, ScanOptions{NumChains: DefaultChains(len(c.FFs)), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cache := NewEngineCache()
		e := engineFlowEntry{Circuit: name}
		e.Cached = measure(func() {
			if _, err := RunFlow(d, FlowParams{Engine: cache}); err != nil {
				t.Fatal(err)
			}
		})
		e.Bypass = measure(func() {
			if _, err := RunFlow(d, FlowParams{Engine: NewEngineBypass()}); err != nil {
				t.Fatal(err)
			}
		})
		cachedNs += e.Cached.NsPerOp
		bypassNs += e.Bypass.NsPerOp
		out.Flow = append(out.Flow, e)
	}
	if cachedNs > 0 {
		out.FlowCacheSpeedup = float64(bypassNs) / float64(cachedNs)
	}

	d := mustBenchDesign(t, "s38584")
	faults := CollapsedFaults(d.C)
	seq := Sequence(d.AlternatingSequence(8))
	for _, b := range []EvalBackend{EvalCompiled, EvalPacked, EvalEvent, EvalHybrid} {
		out.Backends[b.String()] = measure(func() {
			SimulateFaultsOpt(d.C, seq, faults, SimOptions{Eval: b})
		})
	}

	// Hybrid-vs-compiled rows at the size crossover: the delta path's
	// per-fault cost tracks divergence, not circuit size, so it needs a
	// big enough circuit for the compiled sweep's per-fault share to
	// exceed it. s9234 at this scale sits below the crossover (speedup
	// < 1 — the reason for Auto's size gate), s38584 above it.
	const hybridScale = 0.2
	const hybridCycles = 256
	for _, name := range []string{"s9234", "s38584"} {
		p := MustProfile(name).Scale(hybridScale)
		c := GenerateCircuit(p, 1)
		hd, err := InsertScan(c, ScanOptions{NumChains: DefaultChains(len(c.FFs)), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		hf := CollapsedFaults(hd.C)
		hseq := benchRandSeq(hd.C, hybridCycles, 1)
		e := engineHybridEntry{Circuit: name, Scale: hybridScale, Cycles: hybridCycles, Faults: len(hf)}
		e.Compiled = measure(func() {
			SimulateFaultsOpt(hd.C, hseq, hf, SimOptions{Eval: EvalCompiled})
		})
		e.Hybrid = measure(func() {
			SimulateFaultsOpt(hd.C, hseq, hf, SimOptions{Eval: EvalHybrid})
		})
		if e.Hybrid.NsPerOp > 0 {
			e.Speedup = float64(e.Compiled.NsPerOp) / float64(e.Hybrid.NsPerOp)
		}
		out.Hybrid = append(out.Hybrid, e)
	}

	f, err := os.Create("BENCH_engine.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		t.Fatal(err)
	}
	t.Logf("flow cache speedup (bypass/cached): %.2fx", out.FlowCacheSpeedup)
}
