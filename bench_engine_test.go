package fsct

// TestEmitEngineBench writes BENCH_engine.json: the cache-on/off
// ablation for the shared circuit-artifact cache (internal/engine) and
// per-backend fault-simulation timings under the unified evaluator
// interface, so the engine layer's effect on the Table-3 flow is pinned
// next to BENCH_baseline.json.
//
// Like TestEmitBench it is opt-in — a plain `go test ./...` skips it:
//
//	FSCT_EMIT_BENCH=1 go test -run TestEmitEngineBench .

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
)

type engineFlowEntry struct {
	Circuit string       `json:"circuit"`
	Cached  benchMeasure `json:"flow_cached"`
	Bypass  benchMeasure `json:"flow_bypass"`
}

type engineBench struct {
	Note       string                  `json:"note"`
	GoVersion  string                  `json:"go_version"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Scale      float64                 `json:"scale"`
	Flow       []engineFlowEntry       `json:"flow"`
	Backends   map[string]benchMeasure `json:"faultsim_backends"`
	// Headline ratio: summed bypass flow time over summed cached flow
	// time (per-circuit rows above are the source of truth).
	FlowCacheSpeedup float64 `json:"flow_cache_speedup"`
}

func TestEmitEngineBench(t *testing.T) {
	if os.Getenv("FSCT_EMIT_BENCH") == "" {
		t.Skip("set FSCT_EMIT_BENCH=1 to measure and write BENCH_engine.json")
	}
	out := engineBench{
		Note: "Cache ablation for the shared circuit-artifact cache: flow_cached reuses " +
			"one warm engine cache across iterations (the default-cache behavior of " +
			"repeated runs on one circuit); flow_bypass rebuilds every derived artifact " +
			"per phase. Backend rows force one evaluator each on the largest circuit.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      benchScale,
		Backends:   map[string]benchMeasure{},
	}

	var cachedNs, bypassNs int64
	for _, name := range []string{"s9234", "s38584"} {
		p := MustProfile(name).Scale(benchScale)
		c := GenerateCircuit(p, 1)
		d, err := InsertScan(c, ScanOptions{NumChains: DefaultChains(len(c.FFs)), Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cache := NewEngineCache()
		e := engineFlowEntry{Circuit: name}
		e.Cached = measure(func() {
			if _, err := RunFlow(d, FlowParams{Engine: cache}); err != nil {
				t.Fatal(err)
			}
		})
		e.Bypass = measure(func() {
			if _, err := RunFlow(d, FlowParams{Engine: NewEngineBypass()}); err != nil {
				t.Fatal(err)
			}
		})
		cachedNs += e.Cached.NsPerOp
		bypassNs += e.Bypass.NsPerOp
		out.Flow = append(out.Flow, e)
	}
	if cachedNs > 0 {
		out.FlowCacheSpeedup = float64(bypassNs) / float64(cachedNs)
	}

	d := mustBenchDesign(t, "s38584")
	faults := CollapsedFaults(d.C)
	seq := Sequence(d.AlternatingSequence(8))
	for _, b := range []EvalBackend{EvalCompiled, EvalPacked, EvalEvent} {
		out.Backends[b.String()] = measure(func() {
			SimulateFaultsOpt(d.C, seq, faults, SimOptions{Eval: b})
		})
	}

	f, err := os.Create("BENCH_engine.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		t.Fatal(err)
	}
	t.Logf("flow cache speedup (bypass/cached): %.2fx", out.FlowCacheSpeedup)
}
