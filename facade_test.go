package fsct

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeSequenceRoundTrip(t *testing.T) {
	c := S27()
	seq := Sequence{
		{V0, V1, VX, V0},
		{V1, V1, V0, V0},
	}
	var buf bytes.Buffer
	if err := WriteSequence(&buf, c, seq); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSequence(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0][1] != V1 || back[0][2] != VX {
		t.Errorf("round trip mangled sequence: %v", back)
	}
}

func TestFacadeVerilog(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, S27()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "module s27") {
		t.Error("Verilog export malformed")
	}
}

func TestFacadeDictionary(t *testing.T) {
	c := GenerateCircuit(MustProfile("s1423").Scale(0.1), 4)
	d, err := InsertScan(c, ScanOptions{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var affecting []Fault
	for _, s := range ScreenFaults(d, CollapsedFaults(d.C)) {
		if s.Cat != CatUnaffecting {
			affecting = append(affecting, s.Fault)
		}
	}
	dict := BuildDictionary(d, affecting, 5)
	if dict.GoodSignature() == 0 {
		t.Error("good signature is zero")
	}
}

func TestFacadeTestability(t *testing.T) {
	ta, model, err := AnalyzeTestability(S27(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ta.CC0) != len(model.Signals) {
		t.Error("testability size mismatch")
	}
	hardest := ta.Hardest(model, 2)
	if len(hardest) != 2 {
		t.Errorf("hardest returned %d", len(hardest))
	}
}

func TestFacadePartialScanSelection(t *testing.T) {
	c := GenerateCircuit(MustProfile("s1423").Scale(0.15), 6)
	sel := SelectPartialScan(c, 0.3)
	if len(sel) == 0 {
		t.Fatal("empty selection")
	}
	d, err := InsertScan(c, ScanOptions{NumChains: 1, Seed: 1, ScanFFs: sel})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Partial() && len(sel) < len(c.FFs) {
		t.Error("partial design not flagged")
	}
}

func TestWriteReportJSON(t *testing.T) {
	rep := smallReport(t, "s1423", 1, 1)
	var buf bytes.Buffer
	if err := WriteReportJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"Circuit"`, `"Faults"`, `"Step2"`, `"Profile"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
}

func TestFacadeCompactVectors(t *testing.T) {
	c := GenerateCircuit(MustProfile("s1423").Scale(0.1), 4)
	d, err := InsertScan(c, ScanOptions{NumChains: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	faults := CollapsedFaults(d.C)[:40]
	vectors := make([]ScanVector, 6)
	for i := range vectors {
		vectors[i] = ScanVector{FFs: map[SignalID]Value{}, PIs: map[SignalID]Value{}}
		for j, ff := range d.C.FFs {
			vectors[i].FFs[ff] = Value((i + j) % 2)
		}
	}
	res := CompactVectors(d, vectors, faults)
	if res.After > res.Before {
		t.Error("compaction grew the vector set")
	}
}

func TestDominanceFaultsFacade(t *testing.T) {
	c := S27()
	col := CollapsedFaults(c)
	dom := DominanceFaults(c)
	if len(dom) == 0 || len(dom) >= len(col) {
		t.Errorf("dominance %d vs collapsed %d", len(dom), len(col))
	}
}
