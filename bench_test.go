package fsct

// Benchmark harness regenerating every table and figure of the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Benchmarks run the suite at benchScale of the published circuit sizes
// so the whole harness completes in minutes; cmd/fsctest reproduces the
// tables at any scale up to full size. Shapes, not absolute numbers, are
// the reproduction target (the paper ran on a SPARCstation 4).

import (
	"fmt"
	"testing"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/satpg"
)

const benchScale = 0.04

func benchDesign(b *testing.B, name string, chains int) *Design {
	b.Helper()
	p := MustProfile(name).Scale(benchScale)
	c := GenerateCircuit(p, 1)
	if chains == 0 {
		chains = DefaultChains(len(c.FFs))
	}
	d, err := InsertScan(c, ScanOptions{NumChains: chains, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkTable1Suite regenerates Table 1: building each suite circuit,
// inserting its functional scan chains, and sizing its fault list.
func BenchmarkTable1Suite(b *testing.B) {
	for _, p := range Suite() {
		b.Run(p.Name, func(b *testing.B) {
			sp := p.Scale(benchScale)
			for i := 0; i < b.N; i++ {
				c := GenerateCircuit(sp, 1)
				d, err := InsertScan(c, ScanOptions{NumChains: DefaultChains(len(c.FFs)), Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				faults := CollapsedFaults(d.C)
				if i == 0 {
					st := d.C.Stat()
					b.ReportMetric(float64(st.Gates), "gates")
					b.ReportMetric(float64(st.FFs), "FFs")
					b.ReportMetric(float64(len(faults)), "faults")
					b.ReportMetric(float64(len(d.Chains)), "chains")
				}
			}
		})
	}
}

// BenchmarkTable2Screening regenerates Table 2: the forward-implication
// screening that splits chain-affecting faults into easy and hard.
func BenchmarkTable2Screening(b *testing.B) {
	for _, p := range Suite() {
		b.Run(p.Name, func(b *testing.B) {
			d := benchDesign(b, p.Name, 0)
			faults := CollapsedFaults(d.C)
			b.ResetTimer()
			var easy, hard int
			for i := 0; i < b.N; i++ {
				easy, hard = 0, 0
				for _, s := range ScreenFaults(d, faults) {
					switch s.Cat {
					case CatEasy:
						easy++
					case CatHard:
						hard++
					}
				}
			}
			b.ReportMetric(float64(easy), "easy")
			b.ReportMetric(float64(hard), "hard")
			b.ReportMetric(100*float64(easy+hard)/float64(len(faults)), "affect%")
		})
	}
}

// BenchmarkTable3Flow regenerates Table 3: the full detection pipeline
// (alternating test, comb ATPG + sequential fault simulation, grouped
// sequential ATPG) per suite circuit.
func BenchmarkTable3Flow(b *testing.B) {
	for _, p := range Suite() {
		b.Run(p.Name, func(b *testing.B) {
			d := benchDesign(b, p.Name, 0)
			b.ResetTimer()
			var rep *Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = RunFlow(d, FlowParams{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Step2.Detected), "s2det")
			b.ReportMetric(float64(rep.Step2.Undetectable+rep.Step3.Undetectable), "undetbl")
			b.ReportMetric(float64(rep.Undetected()), "undet")
		})
	}
}

// BenchmarkFig5Profile regenerates Figure 5: the step-2 test set's
// detection profile on the largest circuit (the paper plots s38584).
func BenchmarkFig5Profile(b *testing.B) {
	d := benchDesign(b, "s38584", 0)
	b.ResetTimer()
	var rep *Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = RunFlow(d, FlowParams{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(rep.Profile) > 0 {
		total := rep.Profile[len(rep.Profile)-1]
		// How early the curve saturates: vectors needed for 90% of the
		// final detections (the paper's point: a small prefix suffices).
		at90 := 0
		for i, v := range rep.Profile {
			if float64(v) >= 0.9*float64(total) {
				at90 = i
				break
			}
		}
		b.ReportMetric(float64(len(rep.Profile)-1), "vectors")
		b.ReportMetric(float64(at90), "vec@90%")
	}
}

// BenchmarkScaleStability runs one circuit profile at several scales
// and reports the screening shape at each — the evidence that the
// scaled-down suite runs measure the same phenomena as full size.
func BenchmarkScaleStability(b *testing.B) {
	for _, scale := range []float64{0.05, 0.1, 0.2, 0.4} {
		b.Run(fmt.Sprintf("scale%.2f", scale), func(b *testing.B) {
			p := MustProfile("s9234").Scale(scale)
			var affect, hard float64
			for i := 0; i < b.N; i++ {
				c := GenerateCircuit(p, 1)
				d, err := InsertScan(c, ScanOptions{NumChains: 1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				faults := CollapsedFaults(d.C)
				e, h := 0, 0
				for _, s := range ScreenFaults(d, faults) {
					switch s.Cat {
					case CatEasy:
						e++
					case CatHard:
						h++
					}
				}
				affect = 100 * float64(e+h) / float64(len(faults))
				hard = 100 * float64(h) / float64(len(faults))
			}
			b.ReportMetric(affect, "affect%")
			b.ReportMetric(hard, "hard%")
		})
	}
}

// BenchmarkAblationDistParams sweeps the grouping distances: one large
// window (few, weakly-enhanced models) versus many tight windows.
func BenchmarkAblationDistParams(b *testing.B) {
	d := benchDesign(b, "s38417", 0)
	maxChain := d.MaxChainLen()
	for _, cfg := range []struct {
		name  string
		scale float64
	}{{"paper", 1}, {"half", 0.5}, {"double", 2}} {
		b.Run(cfg.name, func(b *testing.B) {
			params := FlowParams{
				LargeDist: max(1, int(cfg.scale*0.6*float64(maxChain))),
				MedDist:   max(1, int(cfg.scale*0.25*float64(maxChain))),
				Dist:      max(1, int(cfg.scale*0.15*float64(maxChain))),
			}
			var rep *Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = RunFlow(d, params)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.COCircuits+rep.FinalCOCircuits), "circuits")
			b.ReportMetric(float64(rep.Undetected()), "undet")
		})
	}
}

// BenchmarkAblationOrdering measures how chain ordering (the flexibility
// the paper leaves to the designer) moves faults between categories.
func BenchmarkAblationOrdering(b *testing.B) {
	p := MustProfile("s9234").Scale(benchScale)
	c := GenerateCircuit(p, 1)
	for seed := int64(1); seed <= 3; seed++ {
		b.Run(fmt.Sprintf("order%d", seed), func(b *testing.B) {
			var hard int
			for i := 0; i < b.N; i++ {
				d, err := InsertScan(c, ScanOptions{NumChains: 1, Seed: seed})
				if err != nil {
					b.Fatal(err)
				}
				hard = 0
				for _, s := range ScreenFaults(d, CollapsedFaults(d.C)) {
					if s.Cat == CatHard {
						hard++
					}
				}
			}
			b.ReportMetric(float64(hard), "hard")
		})
	}
}

// BenchmarkAblationChains compares 1/2/4 scan chains on one circuit:
// shorter shift windows against more multi-chain (group-1) faults.
func BenchmarkAblationChains(b *testing.B) {
	p := MustProfile("s13207").Scale(benchScale * 2)
	c := GenerateCircuit(p, 1)
	for _, chains := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("chains%d", chains), func(b *testing.B) {
			d, err := InsertScan(c, ScanOptions{NumChains: chains, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var rep *Report
			for i := 0; i < b.N; i++ {
				rep, err = RunFlow(d, FlowParams{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(d.MaxChainLen()), "maxchain")
			b.ReportMetric(float64(rep.Undetected()), "undet")
		})
	}
}

// BenchmarkAblationCompaction measures the step-2 per-vector fault
// dropping: without it PODEM runs for every hard fault and the vector
// set balloons.
func BenchmarkAblationCompaction(b *testing.B) {
	d := benchDesign(b, "s13207", 0)
	for _, cfg := range []struct {
		name string
		off  bool
	}{{"with-compaction", false}, {"no-compaction", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var rep *Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = RunFlow(d, FlowParams{NoCompaction: cfg.off})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Step2Vectors), "vectors")
			b.ReportMetric(float64(rep.Step2.Detected), "s2det")
		})
	}
}

// BenchmarkAblationPodemVsSat compares the structural PODEM engine with
// the SAT-based baseline (Larrabee-style miter + DPLL) on the same
// scan-mode fault population.
func BenchmarkAblationPodemVsSat(b *testing.B) {
	d := benchDesign(b, "s5378", 1)
	cm, err := atpg.BuildCombModel(d.C)
	if err != nil {
		b.Fatal(err)
	}
	fixed := map[SignalID]Value{}
	for k, v := range d.Assignments {
		fixed[k] = v
	}
	m, err := atpg.NewModel(cm.C, fixed)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Collapsed(cm.C)
	if len(faults) > 120 {
		faults = faults[:120]
	}
	b.Run("podem", func(b *testing.B) {
		eng := atpg.NewEngine(m)
		var found int
		for i := 0; i < b.N; i++ {
			found = 0
			for _, f := range faults {
				if eng.Generate(f, 5000).Status == atpg.Found {
					found++
				}
			}
		}
		b.ReportMetric(float64(found), "found")
	})
	b.Run("sat", func(b *testing.B) {
		var found int
		for i := 0; i < b.N; i++ {
			found = 0
			for _, f := range faults {
				r, err := satpg.Generate(m, f, 20000)
				if err != nil {
					b.Fatal(err)
				}
				if r.Status == atpg.Found {
					found++
				}
			}
		}
		b.ReportMetric(float64(found), "found")
	})
}

// BenchmarkScreen measures the screening engine across evaluator
// backends and worker counts on the scaled suite's largest circuit.
// "map-serial" is the original single-threaded map-lookup engine;
// "compiled-serial" isolates the compiled-evaluator speedup; the wN
// variants add fault-axis sharding on top.
func BenchmarkScreen(b *testing.B) {
	d := benchDesign(b, "s38584", 0)
	faults := CollapsedFaults(d.C)
	for _, cfg := range []struct {
		name string
		opts ScreenOptions
	}{
		{"map-serial", ScreenOptions{Workers: 1, MapEval: true}},
		{"compiled-serial", ScreenOptions{Workers: 1}},
		{"compiled-w4", ScreenOptions{Workers: 4}},
		{"compiled-w8", ScreenOptions{Workers: 8}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ScreenFaultsOpt(d, faults, cfg.opts)
			}
		})
	}
}

// BenchmarkFaultSim measures sequential fault simulation of the
// alternating sequence across backends and worker counts (same axes as
// BenchmarkScreen; "scalar-serial" is the one-fault-at-a-time reference
// machine, the floor every packed variant is measured against).
func BenchmarkFaultSim(b *testing.B) {
	d := benchDesign(b, "s38584", 0)
	faults := fault.Collapsed(d.C)
	seq := faultsim.Sequence(d.AlternatingSequence(8))
	b.Run("scalar-serial", func(b *testing.B) {
		few := faults
		if len(few) > 128 {
			few = few[:128] // the scalar machine is far too slow for the full list
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			faultsim.RunSerial(d.C, seq, few, faultsim.Options{})
		}
	})
	for _, cfg := range []struct {
		name string
		opts faultsim.Options
	}{
		{"map-serial", faultsim.Options{Workers: 1, MapEval: true}},
		{"compiled-serial", faultsim.Options{Workers: 1}},
		{"compiled-w4", faultsim.Options{Workers: 4}},
		{"compiled-w8", faultsim.Options{Workers: 8}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				faultsim.Run(d.C, seq, faults, cfg.opts)
			}
		})
	}
}

// BenchmarkAblationSerialVsParallelFaultSim compares the 63-lane packed
// fault simulator against the scalar reference on the same workload.
func BenchmarkAblationSerialVsParallelFaultSim(b *testing.B) {
	d := benchDesign(b, "s5378", 1)
	faults := fault.Collapsed(d.C)
	if len(faults) > 256 {
		faults = faults[:256]
	}
	seq := faultsim.Sequence(d.AlternatingSequence(8))
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			faultsim.Run(d.C, seq, faults, faultsim.Options{})
		}
	})
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			faultsim.RunSerial(d.C, seq, faults, faultsim.Options{})
		}
	})
}

// BenchmarkAblationSkipStep2 motivates the pipeline: sequential ATPG
// alone (step 3 for everything) versus the paper's screening flow.
func BenchmarkAblationSkipStep2(b *testing.B) {
	d := benchDesign(b, "s9234", 0)
	for _, cfg := range []struct {
		name string
		skip bool
	}{{"full-pipeline", false}, {"no-step2", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			var rep *Report
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = RunFlow(d, FlowParams{SkipStep2: cfg.skip})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.Step2.Detected+rep.Step3.Detected), "det")
			b.ReportMetric(float64(rep.COCircuits+rep.FinalCOCircuits), "circuits")
		})
	}
}
