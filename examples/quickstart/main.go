// Quickstart: generate a small circuit, insert a functional scan chain
// with TPI, run the paper's three-step scan-chain testing flow, and
// print the report.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A small synthetic circuit in the shape of the ISCAS'89 s1423
	// benchmark, at 20% of its published size.
	profile := fsct.MustProfile("s1423").Scale(0.2)
	circuit := fsct.GenerateCircuit(profile, 1)
	st := circuit.Stat()
	fmt.Printf("generated %s: %d gates, %d flip-flops, %d PIs, %d POs\n",
		circuit.Name, st.Gates, st.FFs, st.Inputs, st.Outputs)

	// Insert functional scan: TPI sensitizes flip-flop-to-flip-flop
	// paths through the mission logic; the rest fall back to inserted
	// mux links.
	design, err := fsct.InsertScan(circuit, fsct.ScanOptions{NumChains: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	functional, inserted := design.LinkStats()
	fmt.Printf("scan inserted: %d chains, %d functional links, %d inserted links, %d test points\n",
		len(design.Chains), functional, inserted, len(design.TestPoints))

	// Run the flow: screening, alternating sequence, combinational ATPG
	// with sequential fault simulation, grouped sequential ATPG.
	report, err := fsct.RunFlow(design, fsct.FlowParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(fsct.FormatReport(report))

	if report.Undetected() == 0 {
		fmt.Println("\nevery chain-affecting fault is detected or proven undetectable —")
		fmt.Println("the functional scan chain can be trusted for subsequent testing.")
	}
}
