// Diagnosis plays failure analyst: a device with a hidden stuck-at
// fault fails its functional scan chain tests; the fault dictionary
// matches the observed responses and localizes the corruption to chain
// segments — the screening analysis run in reverse.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/fault"
)

func main() {
	circuit := fsct.GenerateCircuit(fsct.MustProfile("s3330").Scale(0.12), 21)
	design, err := fsct.InsertScan(circuit, fsct.ScanOptions{NumChains: 2, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Candidate faults: everything the screening says can touch a chain.
	all := fsct.CollapsedFaults(design.C)
	var affecting []fault.Fault
	for _, s := range fsct.ScreenFaults(design, all) {
		if s.Cat != fsct.CatUnaffecting {
			affecting = append(affecting, s.Fault)
		}
	}
	fmt.Printf("circuit %s: %d candidate chain faults in the dictionary\n",
		design.C.Name, len(affecting))

	dict := diagnose.Build(design, affecting, diagnose.DefaultSequences(design, 99))

	// The "silicon": pick a hidden fault the dictionary does not know we
	// chose, then diagnose it from responses alone.
	hidden := affecting[len(affecting)/3]
	fmt.Printf("hidden defect (unknown to the analyst): %s\n\n", hidden.Describe(design.C))

	device := &diagnose.SimulatedDevice{C: design.C, Hidden: &hidden}
	sig := dict.Observe(device)
	if sig == dict.GoodSignature() {
		fmt.Println("device passes the diagnostic set — defect not observable here;")
		fmt.Println("escalate to the full ATPG flow (cmd/fsctest).")
		return
	}

	matches := dict.Match(sig)
	fmt.Printf("response signature %016x matches %d candidate fault(s):\n", uint64(sig), len(matches))
	for _, m := range matches {
		marker := ""
		if m == hidden {
			marker = "   <-- the actual defect"
		}
		fmt.Printf("  %s%s\n", m.Describe(design.C), marker)
	}

	fmt.Println("\nlocalized corruption:")
	for _, sus := range dict.Localize(sig) {
		ch := &design.Chains[sus.Chain]
		fmt.Printf("  chain %d, segments %d..%d (of %d), category %v\n",
			sus.Chain, sus.LoSeg, sus.HiSeg, ch.Len(), core.Category(sus.Category))
	}
	fmt.Println("\nphysical failure analysis can now start at those chain links.")
}
