// Partialscan demonstrates the paper's partial-scan setting (its
// reference [3], Cheng & Agrawal): select a feedback-breaking subset of
// flip-flops, chain only those, and test the functional chain with the
// random-vector variant of step 2 ("in a partial scan environment, we
// can use a test set of random vectors") followed by grouped sequential
// ATPG.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	circuit := fsct.GenerateCircuit(fsct.MustProfile("s9234").Scale(0.08), 13)
	st := circuit.Stat()
	fmt.Printf("circuit %s: %d gates, %d flip-flops\n", circuit.Name, st.Gates, st.FFs)

	selection := fsct.SelectPartialScan(circuit, 0.4)
	fmt.Printf("partial-scan selection: %d of %d flip-flops (feedback-breaking + top-up)\n\n",
		len(selection), st.FFs)

	for _, cfg := range []struct {
		name string
		ffs  []fsct.SignalID
	}{
		{"full scan", nil},
		{"partial scan", selection},
	} {
		design, err := fsct.InsertScan(circuit, fsct.ScanOptions{
			NumChains: 1, Seed: 2, ScanFFs: cfg.ffs,
		})
		if err != nil {
			log.Fatal(err)
		}
		report, err := fsct.RunFlow(design, fsct.FlowParams{})
		if err != nil {
			log.Fatal(err)
		}
		mode := "comb ATPG"
		if design.Partial() {
			mode = fmt.Sprintf("%d random vectors", report.Step2Vectors)
		}
		fmt.Printf("%s: chain %d FFs, %d faults, %d affecting (easy %d / hard %d)\n",
			cfg.name, design.MaxChainLen(), report.Faults, report.Affecting(),
			report.Easy, report.Hard)
		fmt.Printf("  step 2 (%s): det=%d undetectable=%d\n",
			mode, report.Step2.Detected, report.Step2.Undetectable)
		fmt.Printf("  step 3: det=%d undetectable=%d | undetected=%d\n\n",
			report.Step3.Detected, report.Step3.Undetectable, report.Undetected())
	}
	fmt.Println("partial scan shrinks the chain (and the shift overhead) at the")
	fmt.Println("price of random-only step 2 and no combinational redundancy proofs.")
}
