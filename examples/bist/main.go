// Bist runs the scan-chain test the built-in-self-test way (the paper's
// related work [2] applies functional scan inside BIST): an LFSR drives
// the scan-in pins and free inputs, a MISR compacts every output into a
// single signature, and one compare decides pass/fail. The example
// measures what the signature buys and what it costs (aliasing) against
// the per-cycle compare and against the plain alternating shift test.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/bist"
	"repro/internal/fault"
)

func main() {
	circuit := fsct.GenerateCircuit(fsct.MustProfile("s5378").Scale(0.1), 17)
	design, err := fsct.InsertScan(circuit, fsct.ScanOptions{NumChains: 1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	var affecting []fault.Fault
	for _, s := range fsct.ScreenFaults(design, fsct.CollapsedFaults(design.C)) {
		if s.Cat != fsct.CatUnaffecting {
			affecting = append(affecting, s.Fault)
		}
	}
	fmt.Printf("circuit %s: %d chain-affecting faults\n", design.C.Name, len(affecting))

	cfg := bist.Config{MISRWidth: 32}
	res, err := bist.Run(design, affecting, cfg)
	if err != nil {
		log.Fatal(err)
	}
	golden, _ := bist.GoldenSignature(design, cfg)
	fmt.Printf("golden signature: %08x\n\n", golden)

	alt := fsct.Sequence(design.AlternatingSequence(8))
	altRes := fsct.SimulateFaults(design.C, alt, affecting)

	fmt.Printf("%-34s %8s\n", "method", "detected")
	fmt.Printf("%-34s %8d\n", "alternating shift + compare", altRes.NumDetected())
	fmt.Printf("%-34s %8d\n", "LFSR stimulus + per-cycle compare", res.DetectedByCompare)
	fmt.Printf("%-34s %8d  (aliased: %d)\n", "LFSR stimulus + MISR signature", res.DetectedBySignature, res.Aliased)

	fmt.Println("\nthe signature keeps essentially all compare detections (32-bit")
	fmt.Println("MISR aliasing ~ 2^-32) while reducing the pass/fail decision to")
	fmt.Println("one register compare — the BIST trade the paper's reference [2]")
	fmt.Println("builds on. The category-2 escapes still need the full flow.")
}
