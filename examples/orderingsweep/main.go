// Orderingsweep explores the chain-ordering flexibility the paper leaves
// to the designer ("different orderings will lead to faults affecting
// the scan chain in different locations, and thus potentially increasing
// or decreasing the fault coverage"): it inserts scan with several
// orderings (seeds) on the same circuit and compares the screening
// split, the share of functional links, and the flow outcome.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	profile := fsct.MustProfile("s3330").Scale(0.15)
	circuit := fsct.GenerateCircuit(profile, 7)
	st := circuit.Stat()
	fmt.Printf("circuit %s: %d gates, %d flip-flops\n\n", circuit.Name, st.Gates, st.FFs)

	fmt.Printf("%-6s %6s %6s %7s %7s %8s %8s %10s\n",
		"seed", "func%", "tps", "easy", "hard", "s2 det", "s3 det", "undetected")
	for seed := int64(1); seed <= 5; seed++ {
		design, err := fsct.InsertScan(circuit, fsct.ScanOptions{NumChains: 1, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		report, err := fsct.RunFlow(design, fsct.FlowParams{})
		if err != nil {
			log.Fatal(err)
		}
		functional, inserted := design.LinkStats()
		fmt.Printf("%-6d %5.1f%% %6d %7d %7d %8d %8d %10d\n",
			seed,
			100*float64(functional)/float64(functional+inserted),
			len(design.TestPoints),
			report.Easy, report.Hard,
			report.Step2.Detected, report.Step3.Detected,
			report.Undetected())
	}
	fmt.Println("\nthe ordering changes which faults touch the chain and where,")
	fmt.Println("shifting work between the alternating test, step 2 and step 3.")

	best, seed, costs, err := fsct.OptimizeScanOrdering(circuit,
		fsct.ScanOptions{NumChains: 1}, []int64{1, 2, 3, 4, 5})
	if err != nil {
		log.Fatal(err)
	}
	functional, inserted := best.LinkStats()
	fmt.Printf("\nordering optimizer: candidate costs %v -> seed %d wins "+
		"(%d functional / %d inserted links, %d test points)\n",
		costs, seed, functional, inserted, len(best.TestPoints))
}
