// Faultescape reproduces the paper's Figure-2 motivation end to end: it
// finds a concrete stuck-at fault that corrupts a functional scan chain
// yet passes the classic alternating 0011… shift test, shows the escape
// cycle by cycle at the scan-out, and then shows the paper's flow
// producing a test that catches it.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A mid-sized synthetic circuit with one functional scan chain.
	circuit := fsct.GenerateCircuit(fsct.MustProfile("s5378").Scale(0.08), 3)
	design, err := fsct.InsertScan(circuit, fsct.ScanOptions{NumChains: 1, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	faults := fsct.CollapsedFaults(design.C)
	screened := fsct.ScreenFaults(design, faults)
	var hard []fsct.Fault
	for _, s := range screened {
		if s.Cat == fsct.CatHard {
			hard = append(hard, s.Fault)
		}
	}
	fmt.Printf("circuit %s: %d faults, %d are category-2 (hard) chain faults\n",
		design.C.Name, len(faults), len(hard))

	// Fault-simulate the alternating shift test over the hard faults.
	alt := fsct.Sequence(design.AlternatingSequence(8))
	res := fsct.SimulateFaults(design.C, alt, hard)
	escapes := res.Undetected()
	if len(escapes) == 0 {
		fmt.Println("no hard fault escapes the alternating test on this seed;")
		fmt.Println("try another seed — escapes are the common case on larger circuits")
		return
	}
	victim := hard[escapes[0]]
	fmt.Printf("\nESCAPE: %s corrupts the scan chain but the %d-cycle\n",
		victim.Describe(design.C), len(alt))
	fmt.Printf("alternating sequence never observes a definite mismatch\n")
	fmt.Printf("(the paper's Figure 2: the corrupted chain still shifts a\n")
	fmt.Printf("pattern the test cannot distinguish from the good one).\n")

	// Now run the real flow and verify the victim is handled.
	report, err := fsct.RunFlow(design, fsct.FlowParams{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nflow result: step2 det=%d undetectable=%d; step3 det=%d undetectable=%d; undetected=%d\n",
		report.Step2.Detected, report.Step2.Undetectable,
		report.Step3.Detected, report.Step3.Undetectable, report.Undetected())

	still := false
	for _, f := range report.UndetectedFaults {
		if f == victim {
			still = true
		}
	}
	if still {
		fmt.Printf("the escape %s remained undetected (rare; raise effort limits)\n",
			victim.Describe(design.C))
	} else {
		fmt.Printf("the escape %s is covered by the flow — either detected by a\n",
			victim.Describe(design.C))
		fmt.Println("generated test or proven undetectable in scan mode.")
	}
}
