// Multichain studies the chain-count trade-off the paper applies to its
// larger circuits ("we use multiple scan chains for the larger circuits
// to reduce the length of the scan chain to a reasonable size"): same
// circuit, 1 / 2 / 4 chains, comparing chain length, test length, the
// grouping-parameter defaults, and the flow outcome per configuration.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	profile := fsct.MustProfile("s13207").Scale(0.12)
	circuit := fsct.GenerateCircuit(profile, 11)
	st := circuit.Stat()
	fmt.Printf("circuit %s: %d gates, %d flip-flops\n\n", circuit.Name, st.Gates, st.FFs)

	for _, chains := range []int{1, 2, 4} {
		design, err := fsct.InsertScan(circuit, fsct.ScanOptions{NumChains: chains, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		report, err := fsct.RunFlow(design, fsct.FlowParams{})
		if err != nil {
			log.Fatal(err)
		}
		altLen := 2*design.MaxChainLen() + 8
		// Step-2 sequence: leading flush + one window per vector + flush-out.
		testCycles := (report.Step2Vectors + 2) * design.MaxChainLen()
		fmt.Printf("chains=%d:\n", chains)
		fmt.Printf("  longest chain %d; alternating test %d cycles; step-2 test %d cycles (%d vectors)\n",
			design.MaxChainLen(), altLen, testCycles, report.Step2Vectors)
		fmt.Printf("  affecting=%d (easy %d / hard %d)\n",
			report.Affecting(), report.Easy, report.Hard)
		fmt.Printf("  step2 det=%d undetectable=%d | step3 circuits=%d+%d det=%d undetectable=%d | undetected=%d\n",
			report.Step2.Detected, report.Step2.Undetectable,
			report.COCircuits, report.FinalCOCircuits,
			report.Step3.Detected, report.Step3.Undetectable, report.Undetected())
		fmt.Println()
	}
	fmt.Println("more chains: shorter shift windows (cheaper tests, shorter")
	fmt.Println("sequences) but more multi-chain faults pinned into group 1.")
}
