package fsct

import (
	"bytes"
	"strings"
	"testing"
)

func smallReport(t *testing.T, name string, chains int, seed int64) *Report {
	t.Helper()
	rep, _, err := Experiment{
		Profile: MustProfile(name),
		Scale:   0.04,
		Chains:  chains,
		Seed:    seed,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestSuiteHasTwelve(t *testing.T) {
	if len(Suite()) != 12 {
		t.Fatalf("suite has %d entries", len(Suite()))
	}
}

func TestMustProfilePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProfile of unknown name did not panic")
		}
	}()
	MustProfile("s0")
}

func TestS27Embedded(t *testing.T) {
	c := S27()
	st := c.Stat()
	if st.Gates != 10 || st.FFs != 3 {
		t.Errorf("s27 stats %+v", st)
	}
}

func TestBenchRoundTripViaFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBench(&buf, S27()); err != nil {
		t.Fatal(err)
	}
	c, err := ParseBench(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if c.Stat() != S27().Stat() {
		t.Error("facade round trip changed the circuit")
	}
}

func TestDefaultChains(t *testing.T) {
	cases := []struct{ ffs, want int }{
		{10, 1}, {250, 1}, {251, 2}, {700, 2}, {701, 3}, {1200, 3}, {1201, 4}, {1500, 4}, {1501, 5},
	}
	for _, c := range cases {
		if got := DefaultChains(c.ffs); got != c.want {
			t.Errorf("DefaultChains(%d) = %d, want %d", c.ffs, got, c.want)
		}
	}
}

func TestExperimentRun(t *testing.T) {
	rep := smallReport(t, "s1423", 0, 1)
	if rep.Faults == 0 || rep.Affecting() == 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if rep.Undetected() > rep.Affecting()/5 {
		t.Errorf("undetected %d of %d affecting", rep.Undetected(), rep.Affecting())
	}
}

func TestTablesRender(t *testing.T) {
	reports := []*Report{
		smallReport(t, "s1423", 1, 1),
		smallReport(t, "s3330", 1, 1),
	}
	t1 := Table1(reports)
	if !strings.Contains(t1, "s1423") || !strings.Contains(t1, "total") {
		t.Errorf("Table1 output malformed:\n%s", t1)
	}
	t2 := Table2(reports)
	if !strings.Contains(t2, "#easy") || !strings.Contains(t2, "%") {
		t.Errorf("Table2 output malformed:\n%s", t2)
	}
	t3 := Table3(reports)
	if !strings.Contains(t3, "Headline") || !strings.Contains(t3, "undetected") {
		t.Errorf("Table3 output malformed:\n%s", t3)
	}
	for _, r := range reports {
		out := FormatReport(r)
		if !strings.Contains(out, r.Circuit) || !strings.Contains(out, "step 2") {
			t.Errorf("FormatReport malformed:\n%s", out)
		}
	}
}

func TestFigure5Render(t *testing.T) {
	rep := smallReport(t, "s13207", 0, 1)
	out := Figure5(rep)
	if !strings.Contains(out, "Figure 5") {
		t.Errorf("Figure5 output malformed:\n%s", out)
	}
	// Render with an empty profile too.
	empty := &Report{Circuit: "x"}
	if !strings.Contains(Figure5(empty), "no step-2 vectors") {
		t.Error("Figure5 on empty profile malformed")
	}
}

func TestScreenAndSimulateFacade(t *testing.T) {
	c := GenerateCircuit(MustProfile("s1423").Scale(0.1), 2)
	d, err := InsertScan(c, ScanOptions{NumChains: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	faults := CollapsedFaults(d.C)
	scr := ScreenFaults(d, faults)
	if len(scr) != len(faults) {
		t.Fatal("screening lost faults")
	}
	var easy []Fault
	for _, s := range scr {
		if s.Cat == CatEasy {
			easy = append(easy, s.Fault)
		}
	}
	if len(easy) == 0 {
		t.Fatal("no easy faults")
	}
	res := SimulateFaults(d.C, Sequence(d.AlternatingSequence(8)), easy)
	if res.NumDetected() == 0 {
		t.Error("alternating sequence detected nothing")
	}
}

// TestReproductionShape is the repository-level integration test: run a
// scaled-down version of the whole suite and assert the paper's shape
// results hold.
func TestReproductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite run in -short mode")
	}
	var totalFaults, affecting, hard, undetected int
	for _, p := range Suite()[:6] { // the six smaller circuits keep this fast
		rep, _, err := Experiment{Profile: p, Scale: 0.05, Seed: 1}.Run()
		if err != nil {
			t.Fatal(err)
		}
		totalFaults += rep.Faults
		affecting += rep.Affecting()
		hard += rep.Hard
		undetected += rep.Undetected()
	}
	affectFrac := float64(affecting) / float64(totalFaults)
	hardFrac := float64(hard) / float64(totalFaults)
	undetFrac := float64(undetected) / float64(totalFaults)
	t.Logf("affecting=%.1f%% hard=%.1f%% undetected=%.3f%%",
		100*affectFrac, 100*hardFrac, 100*undetFrac)
	// Paper: 24.8% affecting, 3.2% hard, 0.006% undetected. Shape bands:
	if affectFrac < 0.05 || affectFrac > 0.5 {
		t.Errorf("affecting fraction %.3f out of band", affectFrac)
	}
	if hardFrac < 0.002 || hardFrac > 0.15 {
		t.Errorf("hard fraction %.3f out of band", hardFrac)
	}
	if undetFrac > 0.005 {
		t.Errorf("undetected fraction %.4f out of band", undetFrac)
	}
	if hard >= affecting {
		t.Error("hard faults should be a small subset of affecting faults")
	}
}
