package fsct

// TestEmitBench writes BENCH_baseline.json: wall-time and allocation
// measurements for the Table-1 (build + scan insertion) and Table-2
// (screening) suites plus the fault-simulation engine configurations,
// so future PRs have a perf trajectory to compare against.
//
// It is opt-in — the measurement loop takes minutes and pins the CPU —
// so a plain `go test ./...` skips it:
//
//	FSCT_EMIT_BENCH=1 go test -run TestEmitBench .

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
)

type benchMeasure struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

type table1Entry struct {
	Circuit string       `json:"circuit"`
	Gates   int          `json:"gates"`
	FFs     int          `json:"ffs"`
	Faults  int          `json:"faults"`
	Chains  int          `json:"chains"`
	Build   benchMeasure `json:"build"`
}

type table2Entry struct {
	Circuit        string       `json:"circuit"`
	Easy           int          `json:"easy"`
	Hard           int          `json:"hard"`
	ScreenMap      benchMeasure `json:"screen_map_serial"`
	ScreenCompiled benchMeasure `json:"screen_compiled_serial"`
	ScreenParallel benchMeasure `json:"screen_compiled_w8"`
}

type baseline struct {
	Note       string                  `json:"note"`
	GoVersion  string                  `json:"go_version"`
	GOMAXPROCS int                     `json:"gomaxprocs"`
	Scale      float64                 `json:"scale"`
	Table1     []table1Entry           `json:"table1"`
	Table2     []table2Entry           `json:"table2"`
	FaultSim   map[string]benchMeasure `json:"faultsim"`
	// Headline ratios (per-circuit data above is the source of truth).
	ScreenCompiledSpeedup   float64 `json:"screen_compiled_speedup_1t"`
	FaultSimCompiledSpeedup float64 `json:"faultsim_compiled_speedup_1t"`
	FaultSimW8Speedup       float64 `json:"faultsim_w8_speedup_vs_serial"`
}

func measure(f func()) benchMeasure {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f()
		}
	})
	return benchMeasure{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

func TestEmitBench(t *testing.T) {
	if os.Getenv("FSCT_EMIT_BENCH") == "" {
		t.Skip("set FSCT_EMIT_BENCH=1 to measure and write BENCH_baseline.json")
	}
	out := baseline{
		Note: "Suite measured at the bench scale; shapes, not absolute numbers, are the " +
			"reproduction target. Parallel (w8) rows only show wall-clock gains when " +
			"GOMAXPROCS cores are actually available.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      benchScale,
		FaultSim:   map[string]benchMeasure{},
	}

	for _, p := range Suite() {
		sp := p.Scale(benchScale)
		// Table 1: circuit build + scan insertion + fault list sizing.
		var faults []Fault
		var d *Design
		build := measure(func() {
			c := GenerateCircuit(sp, 1)
			var err error
			d, err = InsertScan(c, ScanOptions{NumChains: DefaultChains(len(c.FFs)), Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			faults = CollapsedFaults(d.C)
		})
		st := d.C.Stat()
		out.Table1 = append(out.Table1, table1Entry{
			Circuit: p.Name, Gates: st.Gates, FFs: st.FFs,
			Faults: len(faults), Chains: len(d.Chains), Build: build,
		})

		// Table 2: screening per engine configuration.
		easy, hard := 0, 0
		for _, s := range ScreenFaults(d, faults) {
			switch s.Cat {
			case CatEasy:
				easy++
			case CatHard:
				hard++
			}
		}
		e2 := table2Entry{Circuit: p.Name, Easy: easy, Hard: hard}
		e2.ScreenMap = measure(func() {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1, MapEval: true})
		})
		e2.ScreenCompiled = measure(func() {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1})
		})
		e2.ScreenParallel = measure(func() {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 8})
		})
		out.Table2 = append(out.Table2, e2)
	}

	// Fault-simulation engine configurations on the largest circuit.
	d := mustBenchDesign(t, "s38584")
	faults := fault.Collapsed(d.C)
	seq := faultsim.Sequence(d.AlternatingSequence(8))
	few := faults
	if len(few) > 128 {
		few = few[:128]
	}
	out.FaultSim["scalar_serial_128faults"] = measure(func() {
		faultsim.RunSerial(d.C, seq, few, faultsim.Options{})
	})
	out.FaultSim["map_serial"] = measure(func() {
		faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 1, MapEval: true})
	})
	out.FaultSim["compiled_serial"] = measure(func() {
		faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 1})
	})
	out.FaultSim["compiled_w4"] = measure(func() {
		faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 4})
	})
	out.FaultSim["compiled_w8"] = measure(func() {
		faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 8})
	})

	var mapNs, compNs int64
	for _, e := range out.Table2 {
		mapNs += e.ScreenMap.NsPerOp
		compNs += e.ScreenCompiled.NsPerOp
	}
	if compNs > 0 {
		out.ScreenCompiledSpeedup = float64(mapNs) / float64(compNs)
	}
	if ns := out.FaultSim["compiled_serial"].NsPerOp; ns > 0 {
		out.FaultSimCompiledSpeedup = float64(out.FaultSim["map_serial"].NsPerOp) / float64(ns)
	}
	if ns := out.FaultSim["compiled_w8"].NsPerOp; ns > 0 {
		out.FaultSimW8Speedup = float64(out.FaultSim["compiled_serial"].NsPerOp) / float64(ns)
	}

	f, err := os.Create("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		t.Fatal(err)
	}
	t.Logf("screening compiled speedup (1 thread): %.2fx", out.ScreenCompiledSpeedup)
	t.Logf("faultsim compiled speedup (1 thread): %.2fx", out.FaultSimCompiledSpeedup)
	t.Logf("faultsim w8 speedup vs compiled-serial: %.2fx", out.FaultSimW8Speedup)
}

func mustBenchDesign(t *testing.T, name string) *Design {
	t.Helper()
	p := MustProfile(name).Scale(benchScale)
	c := GenerateCircuit(p, 1)
	d, err := InsertScan(c, ScanOptions{NumChains: DefaultChains(len(c.FFs)), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}
