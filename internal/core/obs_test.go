package core

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/obs"
)

// TestRunWithCollector pins the observability contract of the full flow:
// an enabled collector yields a Report.Metrics snapshot with all four
// phases, the per-category screening counters, ATPG statistics and
// worker-pool records — and the instrumented run produces the exact same
// functional Report as an uninstrumented one.
func TestRunWithCollector(t *testing.T) {
	d := s27Design(t, 1)

	plain, err := Run(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	// A fresh artifact cache so the compiles happen under this
	// collector (the shared default cache may already hold s27).
	rep, err := Run(d, Params{Obs: col, Engine: engine.New()})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Metrics == nil {
		t.Fatal("Report.Metrics nil despite enabled collector")
	}
	m := rep.Metrics
	phases := map[string]bool{}
	for _, p := range m.Phases {
		phases[p.Name] = true
		if p.WallNS < 0 {
			t.Errorf("phase %s has negative wall time", p.Name)
		}
	}
	for _, want := range []string{"screen", "step1.alternating", "step2", "step3"} {
		if !phases[want] {
			t.Errorf("phase %q missing from metrics (got %v)", want, m.Phases)
		}
	}

	if got := m.Counters["screen.faults"]; got != int64(rep.Faults) {
		t.Errorf("screen.faults = %d, want %d", got, rep.Faults)
	}
	if got := m.Counters["screen.easy"]; got != int64(rep.Easy) {
		t.Errorf("screen.easy = %d, want %d", got, rep.Easy)
	}
	if got := m.Counters["screen.hard"]; got != int64(rep.Hard) {
		t.Errorf("screen.hard = %d, want %d", got, rep.Hard)
	}
	if got := m.Counters["step1.confirmed"]; got != int64(rep.EasyConfirmed) {
		t.Errorf("step1.confirmed = %d, want %d", got, rep.EasyConfirmed)
	}
	if m.Counters["faultsim.runs"] == 0 {
		t.Error("faultsim.runs not counted")
	}
	if m.Counters["sim.compile.count"] == 0 {
		t.Error("sim.compile.count not counted")
	}
	if m.Counters["atpg.comb.generated"] == 0 {
		t.Error("atpg.comb.generated not counted")
	}
	if _, ok := m.Pools["screen"]; !ok {
		t.Error("screen pool record missing")
	}
	if _, ok := m.Pools["faultsim"]; !ok {
		t.Error("faultsim pool record missing")
	}

	// Functional output must be untouched by instrumentation (CPU
	// fields are wall times and naturally differ).
	sameStep := func(a, b StepStats) bool {
		return a.Detected == b.Detected && a.Undetectable == b.Undetectable && a.Undetected == b.Undetected
	}
	if rep.Easy != plain.Easy || rep.Hard != plain.Hard ||
		!sameStep(rep.Step2, plain.Step2) || !sameStep(rep.Step3, plain.Step3) ||
		rep.Undetected() != plain.Undetected() {
		t.Errorf("instrumented run changed the report: %+v vs %+v", rep, plain)
	}
}

// TestScreenOptNilCollector pins that the nil collector path stays the
// plain par.Do path and produces identical verdicts.
func TestScreenOptNilCollector(t *testing.T) {
	d := s27Design(t, 1)
	faults := fault.Collapsed(d.C)
	a := ScreenOpt(d, faults, ScreenOptions{Workers: 2})
	col := obs.New()
	b := ScreenOpt(d, faults, ScreenOptions{Workers: 2, Obs: col})
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i].Cat != b[i].Cat {
			t.Fatalf("fault %d: cat %v vs %v", i, a[i].Cat, b[i].Cat)
		}
	}
	m := col.Snapshot()
	if m.Counters["screen.faults"] != int64(len(faults)) {
		t.Errorf("screen.faults = %d, want %d", m.Counters["screen.faults"], len(faults))
	}
	if m.Counters["screen.easy"]+m.Counters["screen.hard"]+m.Counters["screen.unaffecting"] != int64(len(faults)) {
		t.Error("screen category counters do not sum to total")
	}
}
