package core

// Flight-recorder plumbing shared by the flow phases: the fault
// identity packing and the per-attempt ATPG span helper. The journal
// rides on the obs.Collector already threaded through every phase
// (Params.Obs / Options.Obs), so no phase signature changes to carry
// it.

import (
	"time"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/journal"
)

// journalKey packs a fault into the journal's process-wide identity so
// flight-recorder events can be matched back to fault list entries.
func journalKey(f fault.Fault) journal.FaultKey {
	return journal.NewFaultKey(int(f.Signal), int(f.Gate), f.Pin, uint8(f.Stuck))
}

// noteATPG is the no-op returned by timeATPG when no recorder is
// attached, shared so the disabled path allocates nothing.
var noteATPG = func(atpg.Status, int) {}

// timeATPG starts timing one ATPG attempt against the original
// (pre-model-mapping) fault f; call the returned func with the
// attempt's outcome to emit the journal span. With no recorder
// attached it returns a shared no-op without reading the clock.
func timeATPG(rec *journal.Recorder, prefix string, f fault.Fault) func(status atpg.Status, backtracks int) {
	if !rec.Enabled() {
		return noteATPG
	}
	t0 := time.Now()
	return func(status atpg.Status, backtracks int) {
		rec.Emit(journal.ATPG(prefix, journalKey(f), int(status), backtracks, time.Since(t0)))
	}
}
