package core

import (
	"testing"
)

func TestChainNets(t *testing.T) {
	d := s27Design(t, 1)
	nets := ChainNets(d)
	if len(nets) == 0 {
		t.Fatal("no chain nets")
	}
	seen := map[string]bool{}
	for _, n := range nets {
		name := d.C.NameOf(n)
		if seen[name] {
			t.Errorf("duplicate chain net %s", name)
		}
		seen[name] = true
	}
	// Every flip-flop must be there.
	for _, ff := range d.C.FFs {
		if !seen[d.C.NameOf(ff)] {
			t.Errorf("chain nets missing FF %s", d.C.NameOf(ff))
		}
	}
}

// TestChainTransitionCoverageHigh: the alternating test must catch the
// overwhelming majority of transition faults on the chain path — both
// edges pass through every link each period.
func TestChainTransitionCoverageHigh(t *testing.T) {
	for _, chains := range []int{1, 2} {
		d := s27Design(t, chains)
		det, total, und := ChainTransitionCoverage(d, 12)
		if total == 0 {
			t.Fatal("no transition faults enumerated")
		}
		cov := float64(det) / float64(total)
		t.Logf("chains=%d: %d/%d chain transition faults (%.0f%%), undetected: %d",
			chains, det, total, 100*cov, len(und))
		if cov < 0.9 {
			t.Errorf("chains=%d: transition coverage only %.2f", chains, cov)
		}
		if det+len(und) != total {
			t.Error("accounting broken")
		}
	}
}

func TestChainTransitionCoverageGenerated(t *testing.T) {
	d := genDesign(t, 250, 14, 2, 5)
	det, total, _ := ChainTransitionCoverage(d, 12)
	if total == 0 || det == 0 {
		t.Fatalf("degenerate coverage %d/%d", det, total)
	}
	if float64(det) < 0.8*float64(total) {
		t.Errorf("transition coverage %d/%d too low", det, total)
	}
}
