package core

import (
	"context"

	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// ChainNets collects every on-path net of the design's chains: the
// flip-flop outputs and the sensitized path gates between them — the
// nets whose timing the shift test exercises every cycle.
func ChainNets(d *scan.Design) []netlist.SignalID {
	seen := map[netlist.SignalID]bool{}
	var nets []netlist.SignalID
	add := func(n netlist.SignalID) {
		if !seen[n] {
			seen[n] = true
			nets = append(nets, n)
		}
	}
	for ci := range d.Chains {
		ch := &d.Chains[ci]
		for _, ff := range ch.FFs {
			add(ff)
		}
		for si := range ch.Segment {
			for _, p := range ch.Segment[si].Path {
				add(p)
			}
		}
	}
	return nets
}

// ChainTransitionCoverage measures the delay-test side effect of the
// shift test: the alternating 0011… pattern launches both edges through
// every chain net, so it doubles as a two-pattern (transition fault)
// test for the chain itself. Returns detections over both slow-to-rise
// and slow-to-fall faults on every on-path net.
//
// This extends the paper (which tests stuck-at faults only) in the
// direction its own motivation points: functional scan exists partly to
// keep scan hardware off critical paths, so the chain's timing is worth
// checking too.
func ChainTransitionCoverage(d *scan.Design, extraCycles int) (detected, total int, undetected []faultsim.TransitionFault) {
	return ChainTransitionCoverageOpt(d, extraCycles, 1)
}

// ChainTransitionCoverageOpt is ChainTransitionCoverage with the fault
// axis sharded across workers goroutines (0 = GOMAXPROCS, 1 = serial);
// the result is identical at any width.
func ChainTransitionCoverageOpt(d *scan.Design, extraCycles, workers int) (detected, total int, undetected []faultsim.TransitionFault) {
	detected, total, undetected, _ = ChainTransitionCoverageCtx(nil, d, extraCycles, workers)
	return detected, total, undetected
}

// ChainTransitionCoverageCtx is ChainTransitionCoverageOpt with
// cooperative cancellation: faults not simulated when ctx fires count
// as undetected in the partial result and the context error is
// returned. A nil context behaves like context.Background.
func ChainTransitionCoverageCtx(ctx context.Context, d *scan.Design, extraCycles, workers int) (detected, total int, undetected []faultsim.TransitionFault, err error) {
	faults := faultsim.ChainTransitionFaults(ChainNets(d))
	total = len(faults)
	if total == 0 {
		return 0, 0, nil, nil
	}
	// Two periods of the alternating pattern after a definite-fill
	// preamble, so every transition launches from a known state.
	alt := d.AlternatingSequence(extraCycles)
	res, err := faultsim.RunTransitionCtx(ctx, d.C, faultsim.Sequence(alt), faults, faultsim.Options{Workers: workers})
	for i, at := range res.DetectedAt {
		if at >= 0 {
			detected++
		} else {
			undetected = append(undetected, faults[i])
		}
	}
	return detected, total, undetected, err
}
