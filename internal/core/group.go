package core

import (
	"context"
	"slices"

	"repro/internal/atpg"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/seqatpg"
)

// tryVectorFills converts vector v with its don't-care flip-flop bits
// filled first with zeros, then with deterministic pseudo-random
// patterns, fault-simulating each single-vector sequence until one
// detects f. The fill changes the chain data surrounding the corrupted
// capture, and with it whether the effect survives the shift-out.
func tryVectorFills(ctx context.Context, d *scan.Design, f fault.Fault, v scan.Vector, tries int, p Params) (bool, error) {
	rng := uint64(f.Signal)<<40 ^ uint64(f.Gate)<<16 ^ uint64(f.Pin)<<8 ^ uint64(f.Stuck) ^ 0x9e3779b97f4a7c15
	next := func() logic.V {
		rng = rng*6364136223846793005 + 1442695040888963407
		return logic.V((rng >> 33) & 1)
	}
	for try := 0; try < tries; try++ {
		vv := scan.Vector{FFs: make(map[netlist.SignalID]logic.V, len(d.C.FFs)), PIs: v.PIs}
		for k, val := range v.FFs {
			vv.FFs[k] = val
		}
		if try > 0 {
			for _, ff := range d.C.FFs {
				if _, ok := vv.FFs[ff]; !ok {
					vv.FFs[ff] = next()
				}
			}
		}
		seq := faultsim.Sequence(d.ConvertVectors([]scan.Vector{vv}))
		fr, err := faultsim.RunCtx(ctx, d.C, seq, []fault.Fault{f},
			faultsim.Options{Eval: p.Eval, Cache: p.Engine, Obs: p.Obs})
		if err != nil {
			return false, err
		}
		if fr.DetectedAt[0] >= 0 {
			return true, nil
		}
	}
	return false, nil
}

// coModel describes one increased-controllability/observability circuit
// (the paper's n-m.C,o-p.O): which flip-flops are treated as directly
// controllable and which D pins as directly observable, plus the faults
// to target on it.
type coModel struct {
	ctrl, obs map[netlist.SignalID]bool
	frames    int
	faults    []Screened
}

// span returns max(l_i) - min(l_j) of a single-chain fault.
func span(s *Screened) int {
	first, last, _ := s.Span()
	return last.Seg - first.Seg
}

// buildCO derives the enhanced sets for a fault cluster on one chain:
// the chain's flip-flops before location firstSeg are controllable, the
// ones from location lastSeg on are observable (their D pins are where
// the last corruption enters), and every flip-flop of an unaffected
// chain is both.
func buildCO(d *scan.Design, chain, firstSeg, lastSeg int, affected map[int]bool) (ctrl, obs map[netlist.SignalID]bool) {
	ctrl = make(map[netlist.SignalID]bool)
	obs = make(map[netlist.SignalID]bool)
	for ci := range d.Chains {
		ch := &d.Chains[ci]
		if ci != chain && !affected[ci] {
			for _, ff := range ch.FFs {
				ctrl[ff] = true
				obs[ff] = true
			}
			continue
		}
		if ci != chain {
			continue // affected other chain: no enhancement there
		}
		for pos, ff := range ch.FFs {
			if pos < firstSeg {
				ctrl[ff] = true
			}
			if pos >= lastSeg && lastSeg < ch.Len() {
				obs[ff] = true
			}
		}
	}
	return ctrl, obs
}

// planGroups implements the paper's grouping (Section 5): multi-chain
// and wide-span faults form group 1 (individual models), medium spans
// form group 2 (one model per seed fault, compatible faults ride along),
// and the rest are partitioned into minimal DIST-wide clusters.
func planGroups(d *scan.Design, remaining []Screened, p Params) []coModel {
	var models []coModel
	frames := func(sp int) int {
		f := sp + 2
		if f > p.MaxFrames {
			f = p.MaxFrames
		}
		if f < 2 {
			f = 2
		}
		return f
	}

	var group1, group2 []Screened
	perChain := make(map[int][]Screened) // group 3, keyed by chain
	for _, s := range remaining {
		if len(s.Locs) == 0 {
			// Defensive: treat as group 1 with no enhancement.
			group1 = append(group1, s)
			continue
		}
		first, _, multi := s.Span()
		switch {
		case multi:
			group1 = append(group1, s)
		case len(s.Locs) > 1 && span(&s) >= p.LargeDist:
			group1 = append(group1, s)
		case len(s.Locs) > 1 && span(&s) >= p.MedDist:
			group2 = append(group2, s)
		default:
			perChain[first.Chain] = append(perChain[first.Chain], s)
		}
	}

	affectedChains := func(s *Screened) map[int]bool {
		m := map[int]bool{}
		for _, l := range s.Locs {
			m[l.Chain] = true
		}
		return m
	}

	// Group 1: one maximally-enhanced model per fault.
	for _, s := range group1 {
		if len(s.Locs) == 0 {
			models = append(models, coModel{frames: frames(0), faults: []Screened{s}})
			continue
		}
		first, last, multi := s.Span()
		aff := affectedChains(&s)
		var ctrl, obs map[netlist.SignalID]bool
		if multi {
			// Enhance only the unaffected chains.
			ctrl, obs = buildCO(d, -1, 0, 0, aff)
		} else {
			ctrl, obs = buildCO(d, first.Chain, first.Seg, last.Seg, aff)
		}
		models = append(models, coModel{ctrl: ctrl, obs: obs, frames: frames(span(&s)), faults: []Screened{s}})
	}

	// Group 2: a model per seed fault; compatible group-2/3 faults of the
	// same chain whose span fits inside the seed's window join it.
	taken := make(map[*Screened]bool)
	slices.SortStableFunc(group2, func(a, b Screened) int { return span(&b) - span(&a) })
	for i := range group2 {
		s := &group2[i]
		if taken[s] {
			continue
		}
		taken[s] = true
		first, last, _ := s.Span()
		aff := affectedChains(s)
		ctrl, obs := buildCO(d, first.Chain, first.Seg, last.Seg, aff)
		m := coModel{ctrl: ctrl, obs: obs, frames: frames(span(s)), faults: []Screened{*s}}
		for j := i + 1; j < len(group2); j++ {
			o := &group2[j]
			of, ol, om := o.Span()
			if !taken[o] && !om && of.Chain == first.Chain && of.Seg >= first.Seg && ol.Seg <= last.Seg {
				taken[o] = true
				m.faults = append(m.faults, *o)
			}
		}
		models = append(models, m)
	}

	// Group 3: per chain, minimal number of DIST-wide windows (greedy
	// interval cover over sorted first-locations).
	for chain, faults := range perChain {
		slices.SortStableFunc(faults, func(a, b Screened) int {
			fa, _, _ := a.Span()
			fb, _, _ := b.Span()
			return fa.Seg - fb.Seg
		})
		i := 0
		for i < len(faults) {
			first, last, _ := faults[i].Span()
			lo := first.Seg
			hi := last.Seg
			cluster := []Screened{faults[i]}
			j := i + 1
			for j < len(faults) {
				_, jl, _ := faults[j].Span()
				nhi := hi
				if jl.Seg > nhi {
					nhi = jl.Seg
				}
				if nhi-lo > p.Dist {
					break
				}
				hi = nhi
				cluster = append(cluster, faults[j])
				j++
			}
			aff := map[int]bool{chain: true}
			ctrl, obs := buildCO(d, chain, lo, hi, aff)
			models = append(models, coModel{ctrl: ctrl, obs: obs, frames: frames(hi - lo), faults: cluster})
			i = j
		}
	}
	return models
}

// runStep3 runs grouped sequential ATPG with confirmation fault
// simulation, then a final per-fault pass with a larger effort budget.
//
// Undetectability is only ever claimed on a sound basis: combinational
// redundancy of the scan-mode model (which implies sequential
// undetectability, Section 4) proven with the large final backtrack
// budget. Exhausting a bounded-frame enhanced model is NOT such a proof
// — the enhanced model under-approximates what long shift sequences can
// set up — so those faults stay "undetected".
func runStep3(ctx context.Context, d *scan.Design, remaining []Screened, p Params, rep *Report) error {
	if len(remaining) == 0 {
		return nil
	}
	rec := p.Obs.Journal()
	models := planGroups(d, remaining, p)
	rep.COCircuits = len(models)

	// Shared scan-mode combinational model for redundancy proofs and
	// final-pass vector retries. In a partial-scan design the model
	// would wrongly treat non-scan flip-flops as loadable and their D
	// pins as observable, so both the proofs and the retries are
	// disabled there (the paper's partial-scan setting relies on random
	// vectors and sequential ATPG only). The model and SCOAP tables come
	// from the artifact cache — step 2 asked for the same (circuit,
	// fixed assignment) pair, so nothing is recomputed here.
	var combEng *atpg.Engine
	var cm *atpg.CombModel
	if !d.Partial() {
		arts := engine.Resolve(p.Engine).ForObs(d.C, p.Obs)
		var err error
		cm, err = arts.CombModel()
		if err != nil {
			return err
		}
		fixed := make(map[netlist.SignalID]logic.V, len(d.Assignments))
		for k, v := range d.Assignments {
			fixed[k] = v
		}
		combModel, tables, err := arts.CombSearch(fixed)
		if err != nil {
			return err
		}
		combEng = atpg.NewEngineTables(combModel, tables)
		combEng.Instrument(p.Obs, "atpg.final")
	}

	status := make(map[fault.Fault]byte) // 0 open, 1 detected, 2 undetectable
	var finalQueue []Screened
	for _, m := range models {
		tm, err := seqatpg.Build(d, m.ctrl, m.obs, m.frames)
		if err != nil {
			return err
		}
		tm.Instrument(p.Obs, "atpg.seq")
		for _, s := range m.faults {
			if status[s.Fault] != 0 {
				continue
			}
			done := timeATPG(rec, "atpg.seq", s.Fault)
			res, err := tm.GenerateCtx(ctx, s.Fault, p.SeqBacktracks)
			if err != nil {
				return err
			}
			done(res.Status, res.Backtracks)
			switch res.Status {
			case atpg.Found:
				fr, err := faultsim.RunCtx(ctx, d.C, faultsim.Sequence(res.Sequence),
					[]fault.Fault{s.Fault}, faultsim.Options{Eval: p.Eval, Cache: p.Engine, Obs: p.Obs})
				if err != nil {
					return err
				}
				if fr.DetectedAt[0] >= 0 {
					status[s.Fault] = 1
				} else {
					rep.TranslationMiss++
					finalQueue = append(finalQueue, s)
				}
			default:
				finalQueue = append(finalQueue, s)
			}
		}
	}

	// Final pass: target each leftover fault individually — first a
	// deep combinational attempt (redundancy proof or a fresh vector),
	// then maximally-enhanced sequential ATPG with the large budget.
	for _, s := range finalQueue {
		if status[s.Fault] != 0 {
			continue
		}
		var cres atpg.Result
		cres.Status = atpg.Aborted
		if combEng != nil {
			done := timeATPG(rec, "atpg.final", s.Fault)
			var err error
			cres, err = combEng.GenerateCtx(ctx, cm.MapFault(s.Fault), p.FinalBacktracks)
			if err != nil {
				return err
			}
			done(cres.Status, cres.Backtracks)
		}
		switch cres.Status {
		case atpg.Redundant:
			status[s.Fault] = 2
			continue
		case atpg.Found:
			// A fresh single vector, simulated on its own: the step-2
			// set may simply have masked this fault's effect during
			// scan-out. Whether the corrupted capture survives the shift
			// to the scan-out depends on the surrounding chain data, so
			// the don't-care bits are retried with several random fills.
			v := scan.Vector{
				FFs: make(map[netlist.SignalID]logic.V),
				PIs: make(map[netlist.SignalID]logic.V),
			}
			for in, val := range cres.Assignment {
				if d.C.IsFF(in) {
					v.FFs[in] = val
				} else {
					v.PIs[in] = val
				}
			}
			hit, err := tryVectorFills(ctx, d, s.Fault, v, 9, p)
			if err != nil {
				return err
			}
			if hit {
				status[s.Fault] = 1
				continue
			}
		}
		var ctrl, obs map[netlist.SignalID]bool
		fr := 2
		if len(s.Locs) > 0 {
			first, last, multi := s.Span()
			aff := map[int]bool{}
			for _, l := range s.Locs {
				aff[l.Chain] = true
			}
			if multi {
				ctrl, obs = buildCO(d, -1, 0, 0, aff)
				fr = p.MaxFrames
			} else {
				ctrl, obs = buildCO(d, first.Chain, first.Seg, last.Seg, aff)
				fr = span(&s) + 2
			}
		}
		if fr > p.MaxFrames+2 {
			fr = p.MaxFrames + 2
		}
		rep.FinalCOCircuits++
		tm, err := seqatpg.Build(d, ctrl, obs, fr)
		if err != nil {
			return err
		}
		tm.Instrument(p.Obs, "atpg.seq")
		done := timeATPG(rec, "atpg.seq", s.Fault)
		res, err := tm.GenerateCtx(ctx, s.Fault, p.FinalBacktracks)
		if err != nil {
			return err
		}
		done(res.Status, res.Backtracks)
		if res.Status == atpg.Found {
			fsr, err := faultsim.RunCtx(ctx, d.C, faultsim.Sequence(res.Sequence),
				[]fault.Fault{s.Fault}, faultsim.Options{Eval: p.Eval, Cache: p.Engine, Obs: p.Obs})
			if err != nil {
				return err
			}
			if fsr.DetectedAt[0] >= 0 {
				status[s.Fault] = 1
			} else {
				rep.TranslationMiss++
			}
		}
		// Redundant here means only "no test within the bounded enhanced
		// model" — not a proof; the fault stays undetected.
	}

	// Last resort before declaring faults undetected: a burst of random
	// scan-mode vectors. Faults whose activation state can only be
	// established THROUGH their own corrupted segment resist directed
	// generation (the models treat those flip-flops as uncontrollable),
	// but a lucky random load may still set it up.
	var open []fault.Fault
	var openIdx []int
	for i := range remaining {
		if status[remaining[i].Fault] == 0 {
			open = append(open, remaining[i].Fault)
			openIdx = append(openIdx, i)
		}
	}
	if len(open) > 0 {
		seq := randomSequence(d, 120*d.MaxChainLen()+512, 0x5eed)
		fr, err := faultsim.RunCtx(ctx, d.C, seq, open, p.simOptions(true))
		if err != nil {
			return err
		}
		rescued := int64(0)
		for k := range open {
			if fr.DetectedAt[k] >= 0 {
				status[remaining[openIdx[k]].Fault] = 1
				rescued++
			}
		}
		p.Obs.Counter("step3.random_rescued").Add(rescued)
	}

	for _, s := range remaining {
		switch status[s.Fault] {
		case 1:
			rep.Step3.Detected++
		case 2:
			rep.Step3.Undetectable++
		default:
			rep.Step3.Undetected++
			rep.UndetectedFaults = append(rep.UndetectedFaults, s.Fault)
		}
	}
	return nil
}

// randomSequence builds a scan-mode input sequence with random values on
// every unpinned input (scan-ins included), deterministic in seed.
func randomSequence(d *scan.Design, cycles int, seed uint64) faultsim.Sequence {
	rng := seed
	next := func() logic.V {
		rng = rng*6364136223846793005 + 1442695040888963407
		return logic.V((rng >> 33) & 1)
	}
	seq := make(faultsim.Sequence, cycles)
	for t := range seq {
		pi := d.BaselinePI()
		for i, in := range d.C.Inputs {
			if _, pinned := d.Assignments[in]; !pinned {
				pi[i] = next()
			}
		}
		seq[t] = pi
	}
	return seq
}
