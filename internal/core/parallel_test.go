package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/tpi"
)

// TestScreenDeterministicAcrossWorkers pins the sharded screener's
// determinism contract: identical []Screened (categories AND location
// lists) for workers = 1, 4 and GOMAXPROCS, with either evaluator.
func TestScreenDeterministicAcrossWorkers(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "sdet", PIs: 10, POs: 8, FFs: 40, Gates: 600}, 3)
	d, err := tpi.Insert(c, tpi.Options{NumChains: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapsed(d.C)
	ref := ScreenOpt(d, faults, ScreenOptions{Workers: 1})
	for _, mapEval := range []bool{false, true} {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0), 0} {
			got := ScreenOpt(d, faults, ScreenOptions{Workers: workers, MapEval: mapEval})
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("workers=%d mapEval=%v: screening output differs from serial reference",
					workers, mapEval)
			}
		}
	}
}

// TestFlowDeterministicAcrossWorkers runs the full three-step flow at
// several worker widths and requires identical reports (detections,
// undetected fault lists, profiles — everything except CPU times).
func TestFlowDeterministicAcrossWorkers(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "fdet", PIs: 8, POs: 6, FFs: 30, Gates: 400}, 5)
	d, err := tpi.Insert(c, tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	strip := func(r *Report) Report {
		s := *r
		s.ScreenCPU = 0
		s.Step2.CPU = 0
		s.Step3.CPU = 0
		return s
	}
	ref, err := Run(d, Params{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got, err := Run(d, Params{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(strip(ref), strip(got)) {
			t.Fatalf("workers=%d: flow report differs from serial reference", workers)
		}
	}
}

// TestFaultsimDeterminismViaFlowSequences exercises faultsim.Run across
// widths on a real scan-design workload (the alternating sequence), the
// stimulus the flow actually feeds it.
func TestFaultsimDeterminismViaFlowSequences(t *testing.T) {
	d := s27Design(t, 1)
	faults := fault.Collapsed(d.C)
	alt := faultsim.Sequence(d.AlternatingSequence(8))
	ref := faultsim.Run(d.C, alt, faults, faultsim.Options{Workers: 1})
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := faultsim.Run(d.C, alt, faults, faultsim.Options{Workers: workers})
		if !reflect.DeepEqual(ref.DetectedAt, got.DetectedAt) {
			t.Fatalf("workers=%d: alternating-sequence detections differ", workers)
		}
	}
}
