// Package core implements the paper's functional scan chain testing
// methodology: identify the faults that affect the scan chain by forward
// implication (Section 3), detect the easy ones with the alternating
// sequence (step 1), run combinational ATPG plus sequential fault
// simulation in scan mode (step 2, Section 4), and finish the stragglers
// with grouped sequential ATPG on enhanced controllability/observability
// circuit models (step 3, Section 5).
package core

import (
	"context"
	"slices"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/scan"
	"repro/internal/sim"
)

// Category classifies how a fault relates to the scan chain (paper
// Section 3).
type Category uint8

// Fault categories.
const (
	// Cat3: the fault does not affect the scan chain.
	Cat3 Category = iota
	// Cat1 (easy): under the fault some net on the scan path is pinned
	// to a constant — the alternating sequence detects it.
	Cat1
	// Cat2 (hard, f_hard): under the fault a side input of the scan
	// path becomes unknown — the alternating sequence may miss it.
	Cat2
)

func (c Category) String() string {
	switch c {
	case Cat1:
		return "easy"
	case Cat2:
		return "hard"
	default:
		return "unaffecting"
	}
}

// Location is one place a fault touches a chain: segment Seg of chain
// Chain (the link loading the chain's FF at position Seg). Seg equal to
// the chain length denotes the scan-out tap after the last flip-flop.
type Location struct {
	Chain, Seg int
}

// Screened is the screening verdict for one fault.
type Screened struct {
	Fault fault.Fault
	Cat   Category
	Locs  []Location // all touch points, sorted by (chain, seg)
}

// Span returns the first/last location and whether the fault touches
// more than one chain.
func (s *Screened) Span() (first, last Location, multiChain bool) {
	if len(s.Locs) == 0 {
		return Location{}, Location{}, false
	}
	first, last = s.Locs[0], s.Locs[len(s.Locs)-1]
	multiChain = first.Chain != last.Chain
	return
}

// ScreenOptions tunes the screening engine's execution.
type ScreenOptions struct {
	// Workers shards the 63-fault batches across this many goroutines,
	// each owning a private packed evaluator. 0 selects GOMAXPROCS; 1
	// forces serial. Output is identical at any width.
	Workers int
	// MapEval selects the map-based reference evaluator (ablation).
	//
	// Deprecated: set Eval to engine.Packed instead. MapEval is only
	// consulted while Eval is engine.Auto.
	MapEval bool
	// Eval selects the combinational evaluator backend (engine.Auto
	// picks the compiled one).
	Eval engine.Backend
	// Cache supplies the shared circuit-artifact cache. Nil selects
	// engine.Default().
	Cache *engine.Cache
	// Obs, when non-nil, receives screen.* counters (faults, batches,
	// per-category verdicts) and the "screen" worker-pool utilization.
	Obs *obs.Collector
}

// backend resolves the configured combinational backend, honouring the
// deprecated MapEval switch.
func (o ScreenOptions) backend() engine.Backend {
	b := o.Eval
	if b == engine.Auto && o.MapEval {
		b = engine.Packed
	}
	return b.ResolveComb()
}

// Screen computes the forward-implication categorization of every fault
// against the scan design with default options (parallel, compiled
// evaluator); see ScreenOpt.
func Screen(d *scan.Design, faults []fault.Fault) []Screened {
	return ScreenOpt(d, faults, ScreenOptions{})
}

// ScreenOpt computes the forward-implication categorization of every
// fault against the scan design: one three-valued scan-mode evaluation
// per fault (batched 63 wide), comparing on-path nets (X in the good
// circuit; a definite value under the fault means category 1) and side
// inputs (definite non-controlling in the good circuit; X under the
// fault means category 2). Batches are sharded across workers; each
// fault's verdict lives in its own output slot, so the result does not
// depend on the worker count.
func ScreenOpt(d *scan.Design, faults []fault.Fault, opts ScreenOptions) []Screened {
	out, _ := ScreenOptCtx(nil, d, faults, opts)
	return out
}

// ScreenOptCtx is ScreenOpt with cooperative cancellation: workers stop
// claiming fault batches once ctx is cancelled (bounded by one in-flight
// batch per worker), all workers are joined, and the context error is
// returned with the partial verdicts. Faults whose batch never ran keep
// the Cat3 default. A nil context behaves like context.Background.
func ScreenOptCtx(ctx context.Context, d *scan.Design, faults []fault.Fault, opts ScreenOptions) ([]Screened, error) {
	c := d.C
	out := make([]Screened, len(faults))
	for i := range out {
		out[i] = Screened{Fault: faults[i], Cat: Cat3}
	}

	// Per-segment net lists, precomputed once.
	type segNets struct {
		loc   Location
		path  []netlist.SignalID
		sides []netlist.SignalID
	}
	var segs []segNets
	type qNet struct {
		net netlist.SignalID
		loc Location
	}
	var qs []qNet
	for ci := range d.Chains {
		ch := &d.Chains[ci]
		for si := range ch.Segment {
			sn := segNets{loc: Location{ci, si}}
			sn.path = ch.Segment[si].Path
			for _, s := range ch.Segment[si].Sides {
				sn.sides = append(sn.sides, c.Signals[s.Gate].Fanin[s.Pin])
			}
			segs = append(segs, sn)
		}
		for pos, ff := range ch.FFs {
			loc := Location{ci, pos + 1} // Q corrupt => corruption enters the next link
			qs = append(qs, qNet{ff, loc})
		}
	}

	// FF D-pin branch faults corrupt the captured value directly:
	// category 1 at that flip-flop's segment.
	ffLoc := make(map[netlist.SignalID]Location)
	for ci := range d.Chains {
		for pos, ff := range d.Chains[ci].FFs {
			ffLoc[ff] = Location{ci, pos}
		}
	}

	// Scan-mode input words, shared read-only by every worker.
	inW := make([]logic.Word, 0, len(d.Assignments))
	inID := make([]netlist.SignalID, 0, len(d.Assignments))
	for _, in := range c.Inputs {
		if v, ok := d.Assignments[in]; ok {
			inID = append(inID, in)
			inW = append(inW, logic.WordAll(v))
		}
	}

	batches := par.Chunks(len(faults), 63)
	workers := par.Workers(opts.Workers)
	if workers > len(batches) {
		workers = len(batches)
	}
	col := opts.Obs
	rec := col.Journal()
	backend := opts.backend()
	arts := engine.Resolve(opts.Cache).ForObs(c, col)
	if backend == engine.Compiled {
		arts.Program(col) // materialize (and account) the shared program up front
	}
	type wstate struct {
		eval engine.CombEvaluator
		injs []sim.LaneInject
		// Per-lane verdict accumulators, reused across batches: locations
		// collect here and are copied into the output as one exact-size
		// arena per batch, instead of growing each fault's slice through
		// repeated small reallocations.
		locs [63][]Location
		cats [63]Category
	}
	states := par.NewPerWorker(workers, func() *wstate {
		return &wstate{injs: make([]sim.LaneInject, 0, 63), eval: engine.NewCombEvaluator(backend, arts, col)}
	})
	body := func(worker, bi int) {
		st := states.Get(worker)
		base, n := batches[bi].Lo, batches[bi].Len()
		st.injs = st.injs[:0]
		for k := 0; k < n; k++ {
			st.injs = append(st.injs, sim.LaneInject{Inject: faults[base+k].Inject(), Lane: uint(k + 1)})
			st.locs[k] = st.locs[k][:0]
			st.cats[k] = Cat3
		}
		eval := st.eval
		eval.SetInjections(st.injs)
		eval.ClearX()
		vals := eval.Words()
		for i, in := range inID {
			vals[in] = inW[i]
		}
		eval.Eval()

		laneMask := (uint64(1)<<uint(n+1) - 1) &^ 1
		// net is the implicating net — the on-path or side-input signal
		// whose faulty value triggered the verdict; it flows into the
		// journal so provenance can name the evidence.
		addLoc := func(lanes uint64, loc Location, cat Category, net netlist.SignalID) {
			for k := 0; k < n; k++ {
				if lanes&(uint64(1)<<uint(k+1)) == 0 {
					continue
				}
				if cat > st.cats[k] {
					st.cats[k] = cat
				}
				st.locs[k] = append(st.locs[k], loc)
				if rec.Enabled() {
					ev := journal.Classify(journalKey(faults[base+k]), int(cat), loc.Chain, loc.Seg, int64(net))
					ev.Worker = int32(worker)
					rec.Emit(ev)
				}
			}
		}
		// On-path nets pinned definite -> category 1.
		for _, sn := range segs {
			for _, p := range sn.path {
				if lanes := vals[p].Known() & laneMask; lanes != 0 {
					addLoc(lanes, sn.loc, Cat1, p)
				}
			}
			for _, sd := range sn.sides {
				w := vals[sd]
				// Good value is definite (design invariant); a lane gone
				// X is category 2; a lane flipped shows up on-path.
				if lanes := ^w.Known() & laneMask; lanes != 0 {
					addLoc(lanes, sn.loc, Cat2, sd)
				}
			}
		}
		// Flip-flop Q stems pinned definite -> category 1 at the next link.
		for _, q := range qs {
			if lanes := vals[q.net].Known() & laneMask; lanes != 0 {
				addLoc(lanes, q.loc, Cat1, q.net)
			}
		}

		// Publish the batch verdicts: one shared arena sized to the exact
		// location count, sliced per fault (full slice expressions keep a
		// later append from clobbering a neighbour).
		total := 0
		for k := 0; k < n; k++ {
			total += len(st.locs[k])
		}
		if total == 0 {
			return
		}
		arena := make([]Location, 0, total)
		for k := 0; k < n; k++ {
			if len(st.locs[k]) == 0 {
				continue
			}
			lo := len(arena)
			arena = append(arena, st.locs[k]...)
			s := &out[base+k]
			s.Cat = st.cats[k]
			s.Locs = arena[lo:len(arena):len(arena)]
		}
	}
	var err error
	if col.Enabled() {
		col.Counter("screen.faults").Add(int64(len(faults)))
		col.Counter("screen.batches").Add(int64(len(batches)))
		err = par.DoPoolCtx(ctx, workers, len(batches), "screen", col, body)
	} else {
		err = par.DoCtx(ctx, workers, len(batches), body)
	}

	// FF D-pin branch faults (invisible to net-value comparison).
	for i := range out {
		f := out[i].Fault
		if !f.IsStem() && c.IsFF(f.Gate) {
			if loc, ok := ffLoc[f.Gate]; ok {
				if out[i].Cat < Cat1 {
					out[i].Cat = Cat1
				}
				out[i].Locs = append(out[i].Locs, loc)
				if rec.Enabled() {
					ev := journal.Classify(journalKey(f), int(Cat1), loc.Chain, loc.Seg, int64(f.Gate))
					ev.Worker = -1 // serial post-pass, flow thread
					rec.Emit(ev)
				}
			}
		}
	}

	for i := range out {
		locs := out[i].Locs
		if len(locs) < 2 {
			continue
		}
		slices.SortFunc(locs, func(a, b Location) int {
			if a.Chain != b.Chain {
				return a.Chain - b.Chain
			}
			return a.Seg - b.Seg
		})
		// Deduplicate.
		dst := locs[:0]
		for j, l := range locs {
			if j == 0 || l != locs[j-1] {
				dst = append(dst, l)
			}
		}
		out[i].Locs = dst
	}
	if col.Enabled() {
		var n1, n2, n3 int64
		for i := range out {
			switch out[i].Cat {
			case Cat1:
				n1++
			case Cat2:
				n2++
			default:
				n3++
			}
		}
		col.Counter("screen.easy").Add(n1)
		col.Counter("screen.hard").Add(n2)
		col.Counter("screen.unaffecting").Add(n3)
		col.Tracef("screen: %d faults -> %d easy, %d hard, %d unaffecting", len(out), n1, n2, n3)
	}
	return out, err
}
