package core

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// buildStep2Vectors replicates the step-2 generation (without dropping)
// to get a deliberately redundant vector set.
func buildStep2Vectors(t *testing.T, d *scan.Design, hard []Screened) []scan.Vector {
	t.Helper()
	cm, err := atpg.BuildCombModel(d.C)
	if err != nil {
		t.Fatal(err)
	}
	fixed := map[netlist.SignalID]logic.V{}
	for k, v := range d.Assignments {
		fixed[k] = v
	}
	m, err := atpg.NewModel(cm.C, fixed)
	if err != nil {
		t.Fatal(err)
	}
	eng := atpg.NewEngine(m)
	var vectors []scan.Vector
	for _, s := range hard {
		res := eng.Generate(cm.MapFault(s.Fault), 1000)
		if res.Status != atpg.Found {
			continue
		}
		v := scan.Vector{FFs: map[netlist.SignalID]logic.V{}, PIs: map[netlist.SignalID]logic.V{}}
		for in, val := range res.Assignment {
			if d.C.IsFF(in) {
				v.FFs[in] = val
			} else {
				v.PIs[in] = val
			}
		}
		vectors = append(vectors, v)
	}
	return vectors
}

func TestCompactVectorsKeepsCoverage(t *testing.T) {
	d := genDesign(t, 220, 12, 1, 8)
	var hard []Screened
	for _, s := range Screen(d, fault.Collapsed(d.C)) {
		if s.Cat == Cat2 {
			hard = append(hard, s)
		}
	}
	if len(hard) < 4 {
		t.Skip("too few hard faults")
	}
	vectors := buildStep2Vectors(t, d, hard)
	// Duplicate the set to guarantee redundancy.
	vectors = append(vectors, vectors...)

	hf := make([]fault.Fault, len(hard))
	for i := range hard {
		hf[i] = hard[i].Fault
	}
	before := faultsim.Run(d.C, faultsim.Sequence(d.ConvertVectors(vectors)), hf, faultsim.Options{})

	res := CompactVectors(d, vectors, hf)
	if res.After > res.Before {
		t.Fatalf("compaction grew the set: %d -> %d", res.Before, res.After)
	}
	after := faultsim.Run(d.C, faultsim.Sequence(d.ConvertVectors(res.Vectors)), hf, faultsim.Options{})
	if after.NumDetected() < before.NumDetected() {
		t.Errorf("compaction lost coverage: %d -> %d", before.NumDetected(), after.NumDetected())
	}
	t.Logf("vectors %d -> %d, coverage %d/%d", res.Before, res.After, after.NumDetected(), len(hf))
	if res.After >= res.Before && res.Before > 4 {
		t.Error("doubled vector set not compacted at all")
	}
}

func TestCompactVectorsDegenerate(t *testing.T) {
	d := s27Design(t, 1)
	res := CompactVectors(d, nil, nil)
	if res.Before != 0 || res.After != 0 {
		t.Error("empty set mishandled")
	}
	one := []scan.Vector{{}}
	res = CompactVectors(d, one, fault.Collapsed(d.C)[:3])
	if res.After != 1 {
		t.Error("single vector dropped")
	}
}
