package core

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/tpi"
)

// canonicalReport serializes a report with its wall-clock fields zeroed,
// so two functionally identical runs compare byte-identical.
func canonicalReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	r := *rep
	r.ScreenCPU = 0
	r.Step2.CPU = 0
	r.Step3.CPU = 0
	r.Metrics = nil
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(&r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFlowDeterministicAcrossCacheAndWorkers pins the tentpole's
// behavioral contract: the flow's functional output is byte-identical
// whether artifacts come out of a shared cache or are rebuilt cold per
// phase, and at any worker width.
func TestFlowDeterministicAcrossCacheAndWorkers(t *testing.T) {
	widths := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, name := range []string{"s1423", "s5378"} {
		p, err := gen.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p = p.Scale(0.04)
		c := gen.Generate(p, 1)
		d, err := tpi.Insert(c, tpi.Options{NumChains: 2, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}

		var want []byte
		for _, cold := range []bool{false, true} {
			for _, w := range widths {
				cache := engine.New()
				if cold {
					cache = engine.Bypass()
				}
				rep, err := Run(d, Params{Workers: w, Engine: cache})
				if err != nil {
					t.Fatalf("%s cold=%v workers=%d: %v", name, cold, w, err)
				}
				got := canonicalReport(t, rep)
				if want == nil {
					want = got
					continue
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s: report differs at cold=%v workers=%d", name, cold, w)
				}
			}
		}
	}
}

// TestFlowCompileOncePerCircuit asserts the cache's headline effect: one
// full flow run compiles exactly two programs — the scan circuit and its
// combinational ATPG model — no matter how many phases, fault-simulation
// calls and dropper workers consume them; and a second run over a warm
// cache compiles nothing.
func TestFlowCompileOncePerCircuit(t *testing.T) {
	d := genDesign(t, 300, 24, 2, 8)
	cache := engine.New()

	col := obs.New()
	if _, err := Run(d, Params{Workers: 4, Obs: col, Engine: cache}); err != nil {
		t.Fatal(err)
	}
	if got := col.Snapshot().Counters["sim.compile.count"]; got != 2 {
		t.Errorf("cold run compiled %d programs, want 2 (scan circuit + comb model)", got)
	}

	col2 := obs.New()
	if _, err := Run(d, Params{Workers: 4, Obs: col2, Engine: cache}); err != nil {
		t.Fatal(err)
	}
	if got := col2.Snapshot().Counters["sim.compile.count"]; got != 0 {
		t.Errorf("warm run compiled %d programs, want 0", got)
	}
}
