package core

import (
	"context"
	"fmt"
	"slices"
	"time"

	"repro/internal/atpg"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/scan"
)

// Params tunes the three-step flow. Zero values select the paper's
// settings.
type Params struct {
	// Grouping distances (paper Section 6). When zero they default to
	// LARGE_DIST = max(0.6*maxsize, 50), MED_DIST = max(0.25*maxsize, 25)
	// and DIST = max(0.15*maxsize, 20) with maxsize the longest chain.
	LargeDist, MedDist, Dist int

	AltExtraCycles  int // extra cycles appended to the alternating test (default 8)
	CombBacktracks  int // PODEM backtrack limit in step 2 (default 250)
	SeqBacktracks   int // PODEM backtrack limit in step 3 groups (default 400)
	FinalBacktracks int // PODEM backtrack limit for f_final (default 25000)
	MaxFrames       int // frame cap for unrolled models (default 5)

	// SimulateAlternatingOnHard additionally fault-simulates the
	// alternating sequence on category-2 faults and drops any detected
	// ones before step 2 (an optimization the paper does not apply;
	// off by default for fidelity).
	SimulateAlternatingOnHard bool

	// SkipStep2 sends every hard fault straight to the grouped
	// sequential ATPG, bypassing combinational ATPG + sequential fault
	// simulation. This is the ablation that motivates the paper's
	// pipeline: step 3 alone is far more expensive.
	SkipStep2 bool

	// NoCompaction disables the per-vector fault dropping in step 2:
	// PODEM then runs for every hard fault and the vector set grows
	// accordingly (ablation for the compaction design choice).
	NoCompaction bool

	// RandomVectors replaces step 2's combinational ATPG with a random
	// scan-mode test set of this many shift windows — the paper's
	// prescription for partial scan ("in a partial scan environment, we
	// can use a test set of random vectors"), where the combinational
	// model cannot assume every flip-flop is loadable. Partial-scan
	// designs use this path automatically (auto-sized when 0); full-scan
	// designs use it only when set explicitly.
	RandomVectors int

	// Workers shards the fault axis of screening and every fault
	// simulation across this many goroutines (0 = GOMAXPROCS, 1 =
	// serial). Reports are identical at any width.
	Workers int

	// Eval selects the simulation backend for screening, fault
	// simulation and the step-2 dropper (engine.Auto picks per phase).
	Eval engine.Backend

	// Engine supplies the shared circuit-artifact cache every phase
	// draws derived structures from (compiled programs, collapsed fault
	// lists, combinational models, SCOAP tables). Nil selects the
	// process-wide engine.Default(); engine.Bypass() forces a cold
	// rebuild in every phase (ablation — the report is byte-identical
	// either way).
	Engine *engine.Cache

	// Obs, when non-nil, collects run metrics: per-phase wall time
	// (screen, step1.alternating, step2, step3), per-category fault
	// counters, ATPG engine statistics (atpg.comb.*, atpg.seq.*,
	// atpg.final.*), fault-simulation and worker-pool activity. The
	// final snapshot lands in Report.Metrics. Nil (the default) keeps
	// the flow uninstrumented at ~zero cost.
	Obs *obs.Collector
}

func (p Params) withDefaults(maxChain int) Params {
	maxOf := func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}
	if p.LargeDist == 0 {
		p.LargeDist = maxOf(int(0.6*float64(maxChain)), 50)
	}
	if p.MedDist == 0 {
		p.MedDist = maxOf(int(0.25*float64(maxChain)), 25)
	}
	if p.Dist == 0 {
		p.Dist = maxOf(int(0.15*float64(maxChain)), 20)
	}
	if p.AltExtraCycles == 0 {
		p.AltExtraCycles = 8
	}
	if p.CombBacktracks == 0 {
		p.CombBacktracks = 250
	}
	if p.SeqBacktracks == 0 {
		p.SeqBacktracks = 400
	}
	if p.FinalBacktracks == 0 {
		p.FinalBacktracks = 25000
	}
	if p.MaxFrames == 0 {
		p.MaxFrames = 5
	}
	return p
}

// StepStats aggregates one flow step's outcome.
type StepStats struct {
	Detected     int
	Undetectable int
	Undetected   int
	CPU          time.Duration
}

// Report is the per-circuit result, mirroring the paper's Tables 1-3 and
// Figure 5.
type Report struct {
	Circuit string
	Gates   int
	FFs     int
	Faults  int // total considered faults (collapsed, scan-mode circuit)
	Chains  int

	// StructuralHash is the scan-mode circuit's structural digest — the
	// engine cache key — identifying the exact structure this report
	// describes, so runs can be correlated across processes and
	// machines (the run ledger stores it per record).
	StructuralHash uint64 `json:"structural_hash,omitempty"`

	// Screening (Table 2).
	Easy      int // category 1
	Hard      int // category 2 (f_hard)
	ScreenCPU time.Duration

	// Step 1: alternating sequence verification.
	EasyConfirmed int // category-1 faults actually caught by the alternating test
	EasyEscapes   int // category-1 faults it missed (appended to f_hard)

	// Step 2: combinational ATPG + sequential fault simulation (Table 3
	// left half) over f_hard.
	Step2        StepStats
	Step2Vectors int

	// Step 3: grouped sequential ATPG (Table 3 right half).
	COCircuits      int // increased-C/O circuits built for groups 1-3
	FinalCOCircuits int // circuits built for the final per-fault pass
	Step3           StepStats
	TranslationMiss int // generated-but-unconfirmed sequential tests

	// Figure 5: cumulative faults detected after each simulated vector
	// of the step-2 test set.
	Profile []int

	// Remaining undetected faults, for inspection.
	UndetectedFaults []fault.Fault

	// Metrics is the observability snapshot for this run; nil unless
	// Params.Obs was set.
	Metrics *obs.Metrics `json:"Metrics,omitempty"`

	// Provenance holds journal-replay explanations for the faults the
	// caller asked about (fsctest -why); nil otherwise.
	Provenance []*Provenance `json:"provenance,omitempty"`
}

// Undetected returns the final number of undetected chain-affecting
// faults (the paper's headline metric).
func (r *Report) Undetected() int { return len(r.UndetectedFaults) }

// Affecting returns the number of faults that affect the scan chain.
func (r *Report) Affecting() int { return r.Easy + r.Hard }

// simOptions assembles the fault-simulation options the flow's phases
// share, threading the evaluator backend and artifact cache through.
func (p Params) simOptions(stopEarly bool) faultsim.Options {
	return faultsim.Options{
		StopWhenAllDetected: stopEarly,
		Workers:             p.Workers,
		Eval:                p.Eval,
		Cache:               p.Engine,
		Obs:                 p.Obs,
	}
}

// Run executes the full methodology on a scan design.
func Run(d *scan.Design, p Params) (*Report, error) {
	return RunCtx(nil, d, p)
}

// RunCtx is Run with cooperative cancellation. Cancellation is observed
// at fault-batch and ATPG-backtrack boundaries; when ctx fires the flow
// stops where it is, and returns the partially filled report alongside
// an error wrapping the context error — counters and phase results
// accumulated so far are valid, later phases simply report zero. The
// report is non-nil whenever the design verifies. A nil context behaves
// like context.Background.
func RunCtx(ctx context.Context, d *scan.Design, p Params) (*Report, error) {
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("core: design does not verify: %v", err)
	}
	p = p.withDefaults(d.MaxChainLen())
	st := d.C.Stat()
	rep := &Report{
		Circuit:        d.C.Name,
		Gates:          st.Gates,
		FFs:            st.FFs,
		Chains:         len(d.Chains),
		StructuralHash: d.C.StructuralHash(),
	}
	col := p.Obs
	finish := func(err error) (*Report, error) {
		if col.Enabled() {
			rep.Metrics = col.Snapshot()
		}
		if err != nil {
			return rep, fmt.Errorf("core: flow interrupted: %w", err)
		}
		return rep, nil
	}

	arts := engine.Resolve(p.Engine).ForObs(d.C, p.Obs)
	faults := arts.CollapsedFaults()
	rep.Faults = len(faults)

	// ---- Screening (Section 3) ----
	span := col.Phase("screen")
	t0 := time.Now()
	screened, err := ScreenOptCtx(ctx, d, faults, ScreenOptions{Workers: p.Workers, Eval: p.Eval, Cache: p.Engine, Obs: col})
	rep.ScreenCPU = time.Since(t0)
	span.End()
	if err != nil {
		return finish(err)
	}

	var easy, hard []Screened
	for _, s := range screened {
		switch s.Cat {
		case Cat1:
			easy = append(easy, s)
		case Cat2:
			hard = append(hard, s)
		}
	}
	rep.Easy, rep.Hard = len(easy), len(hard)

	// ---- Step 1: alternating sequence ----
	span = col.Phase("step1.alternating")
	alt := faultsim.Sequence(d.AlternatingSequence(p.AltExtraCycles))
	easyFaults := make([]fault.Fault, len(easy))
	for i := range easy {
		easyFaults[i] = easy[i].Fault
	}
	altRes, err := faultsim.RunCtx(ctx, d.C, alt, easyFaults, p.simOptions(false))
	if err != nil {
		span.End()
		return finish(err)
	}
	rep.EasyConfirmed = altRes.NumDetected()
	for _, i := range altRes.Undetected() {
		// Safety net: a category-1 fault the alternating sequence missed
		// is handed to the later steps rather than assumed covered.
		hard = append(hard, easy[i])
		rep.EasyEscapes++
	}
	if p.SimulateAlternatingOnHard && len(hard) > 0 {
		hf := make([]fault.Fault, len(hard))
		for i := range hard {
			hf[i] = hard[i].Fault
		}
		hres, herr := faultsim.RunCtx(ctx, d.C, alt, hf, p.simOptions(false))
		if herr != nil {
			span.End()
			return finish(herr)
		}
		var keep []Screened
		for i := range hard {
			if hres.DetectedAt[i] < 0 {
				keep = append(keep, hard[i])
			} else {
				rep.Step2.Detected++ // credited to the cheap phase
			}
		}
		hard = keep
	}
	span.End()
	if col.Enabled() {
		col.Counter("step1.confirmed").Add(int64(rep.EasyConfirmed))
		col.Counter("step1.escapes").Add(int64(rep.EasyEscapes))
		col.Tracef("step1: %d/%d easy faults confirmed by the alternating test, %d escapes rejoin f_hard",
			rep.EasyConfirmed, len(easyFaults), rep.EasyEscapes)
	}

	// ---- Step 2: combinational ATPG + sequential fault simulation ----
	span = col.Phase("step2")
	t0 = time.Now()
	var remaining []Screened
	switch {
	case p.SkipStep2:
		remaining = hard
		rep.Step2.Undetected = len(hard)
	case p.RandomVectors > 0 || d.Partial():
		remaining, err = runStep2Random(ctx, d, hard, p, rep)
	default:
		remaining, err = runStep2(ctx, d, hard, p, rep)
	}
	rep.Step2.CPU = time.Since(t0)
	span.End()
	if err != nil {
		return finish(err)
	}
	if col.Enabled() {
		col.Counter("step2.detected").Add(int64(rep.Step2.Detected))
		col.Counter("step2.undetectable").Add(int64(rep.Step2.Undetectable))
		col.Counter("step2.vectors").Add(int64(rep.Step2Vectors))
		col.Tracef("step2: %d detected, %d proven undetectable, %d vectors, %d faults remain",
			rep.Step2.Detected, rep.Step2.Undetectable, rep.Step2Vectors, len(remaining))
	}

	// ---- Step 3: grouped sequential ATPG with enhanced C/O ----
	span = col.Phase("step3")
	t0 = time.Now()
	err = runStep3(ctx, d, remaining, p, rep)
	rep.Step3.CPU = time.Since(t0)
	span.End()
	if err != nil {
		return finish(err)
	}
	if col.Enabled() {
		col.Counter("step3.detected").Add(int64(rep.Step3.Detected))
		col.Counter("step3.undetectable").Add(int64(rep.Step3.Undetectable))
		col.Counter("step3.undetected").Add(int64(rep.Step3.Undetected))
		col.Counter("step3.models").Add(int64(rep.COCircuits))
		col.Counter("step3.final_models").Add(int64(rep.FinalCOCircuits))
		col.Counter("step3.translation_miss").Add(int64(rep.TranslationMiss))
		col.Tracef("step3: %d detected, %d undetectable, %d undetected over %d+%d C/O models",
			rep.Step3.Detected, rep.Step3.Undetectable, rep.Step3.Undetected,
			rep.COCircuits, rep.FinalCOCircuits)
	}
	return finish(nil)
}

// runStep2Random is the paper's partial-scan variant of step 2: a
// random scan-mode test set fault-simulated sequentially with fault
// dropping. Random vectors cannot prove undetectability, so everything
// undetected moves on to step 3.
func runStep2Random(ctx context.Context, d *scan.Design, hard []Screened, p Params, rep *Report) ([]Screened, error) {
	if len(hard) == 0 {
		return nil, nil
	}
	L := d.MaxChainLen()
	nVec := p.RandomVectors
	if nVec == 0 {
		nVec = 2 * len(hard)
		if nVec < 128 {
			nVec = 128
		}
		if nVec > 2048 {
			nVec = 2048
		}
	}
	rep.Step2Vectors = nVec
	seq := randomSequence(d, (nVec+1)*L, 0x7a11d5eed)
	hf := make([]fault.Fault, len(hard))
	for i := range hard {
		hf[i] = hard[i].Fault
	}
	res, err := faultsim.RunCtx(ctx, d.C, seq, hf, p.simOptions(true))
	if err != nil {
		return nil, err
	}

	if L > 0 {
		bounds := make([]int, nVec+1)
		for i := range bounds {
			bounds[i] = i * L
		}
		rep.Profile = res.Profile(bounds)
	}
	var remaining []Screened
	for i := range hard {
		if res.DetectedAt[i] >= 0 {
			rep.Step2.Detected++
		} else {
			remaining = append(remaining, hard[i])
		}
	}
	rep.Step2.Undetected = len(remaining)
	return remaining, nil
}

// runStep2 targets f_hard with PODEM on the scan-mode combinational
// model, converts the vectors to a scan sequence, and fault-simulates
// the whole sequence sequentially; it returns the still-undetected
// screened faults.
func runStep2(ctx context.Context, d *scan.Design, hard []Screened, p Params, rep *Report) ([]Screened, error) {
	if len(hard) == 0 {
		return nil, nil
	}
	arts := engine.Resolve(p.Engine).ForObs(d.C, p.Obs)
	cm, err := arts.CombModel()
	if err != nil {
		return nil, err
	}
	fixed := make(map[netlist.SignalID]logic.V, len(d.Assignments))
	for k, v := range d.Assignments {
		fixed[k] = v // PI IDs carry over into the comb model
	}
	// The model and its SCOAP tables come from the cache: step 3's final
	// pass asks for the same (circuit, fixed assignment) pair and shares
	// one controllability/observability computation with this call.
	model, tables, err := arts.CombSearch(fixed)
	if err != nil {
		return nil, err
	}
	eng := atpg.NewEngineTables(model, tables)
	eng.Instrument(p.Obs, "atpg.comb")

	// Static compaction: after each generated vector, a one-cycle packed
	// fault simulation of the combinational model drops every hard fault
	// the vector already covers, so PODEM only runs for still-uncovered
	// faults and the vector set stays small (the paper's Figure 5 makes
	// the same point: the early vectors carry almost all detections).
	dropper := newCombDropper(d, cm, hard, p.Workers, p.Eval, p.Engine, p.Obs)

	rec := p.Obs.Journal()
	redundant := make([]bool, len(hard))
	var vectors []scan.Vector
	for i := range hard {
		if !p.NoCompaction && dropper.covered.Get(i) {
			continue
		}
		done := timeATPG(rec, "atpg.comb", hard[i].Fault)
		res, gerr := eng.GenerateCtx(ctx, cm.MapFault(hard[i].Fault), p.CombBacktracks)
		if gerr != nil {
			return nil, gerr
		}
		done(res.Status, res.Backtracks)
		switch res.Status {
		case atpg.Found:
			v := scan.Vector{
				FFs: make(map[netlist.SignalID]logic.V),
				PIs: make(map[netlist.SignalID]logic.V),
			}
			for in, val := range res.Assignment {
				// Model inputs are original PIs and FF outputs (same IDs).
				if d.C.IsFF(in) {
					v.FFs[in] = val
				} else {
					v.PIs[in] = val
				}
			}
			vectors = append(vectors, v)
			dropper.drop(v)
		case atpg.Redundant:
			// Combinationally undetectable in scan mode implies
			// sequentially undetectable (paper Section 4).
			redundant[i] = true
			rep.Step2.Undetectable++
		}
	}
	rep.Step2Vectors = len(vectors)

	seq := faultsim.Sequence(d.ConvertVectors(vectors))
	// Simulate faults ordered by predicted covering vector so each
	// packed batch finishes (and early-exits) as soon as possible.
	perm := make([]int, len(hard))
	for i := range perm {
		perm[i] = i
	}
	slices.SortStableFunc(perm, func(a, b int) int {
		ca, cb := dropper.coveredAt[a], dropper.coveredAt[b]
		if ca < 0 {
			ca = 1 << 30
		}
		if cb < 0 {
			cb = 1 << 30
		}
		return ca - cb
	})
	hf := make([]fault.Fault, len(hard))
	for i, pi := range perm {
		hf[i] = hard[pi].Fault
	}
	permRes, err := faultsim.RunCtx(ctx, d.C, seq, hf, p.simOptions(true))
	if err != nil {
		return nil, err
	}
	res := &faultsim.Result{DetectedAt: make([]int, len(hard))}
	for i, pi := range perm {
		res.DetectedAt[pi] = permRes.DetectedAt[i]
	}

	// Figure 5 profile: cumulative detections per simulated vector.
	L := d.MaxChainLen()
	if L > 0 && len(seq) > 0 {
		nv := len(seq) / L
		bounds := make([]int, nv+1)
		for i := range bounds {
			bounds[i] = i * L
		}
		rep.Profile = res.Profile(bounds)
	}

	var remaining []Screened
	for i := range hard {
		switch {
		case redundant[i]:
			// Proven combinationally redundant, hence sequentially
			// undetectable; counted above. (The proof is trusted over
			// simulation: a detection here would indicate an engine bug,
			// which the unit tests guard against.)
		case res.DetectedAt[i] >= 0:
			rep.Step2.Detected++
		default:
			remaining = append(remaining, hard[i])
		}
	}
	rep.Step2.Undetected = len(remaining)
	return remaining, nil
}
