package core

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
	"repro/internal/tpi"
)

func s27Design(t *testing.T, chains int) *scan.Design {
	t.Helper()
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: chains, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func genDesign(t *testing.T, gates, ffs, chains int, seed int64) *scan.Design {
	t.Helper()
	c := gen.Generate(gen.Profile{Name: "coret", PIs: 8, POs: 6, FFs: ffs, Gates: gates}, seed)
	d, err := tpi.Insert(c, tpi.Options{NumChains: chains, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestScreenBasicInvariants(t *testing.T) {
	d := s27Design(t, 1)
	faults := fault.Collapsed(d.C)
	scr := Screen(d, faults)
	if len(scr) != len(faults) {
		t.Fatalf("screened %d of %d", len(scr), len(faults))
	}
	counts := map[Category]int{}
	for _, s := range scr {
		counts[s.Cat]++
		if s.Cat != Cat3 && len(s.Locs) == 0 && !isFFDBranch(d, s.Fault) {
			t.Errorf("fault %s categorized %v without locations", s.Fault.Describe(d.C), s.Cat)
		}
		for i := 1; i < len(s.Locs); i++ {
			a, b := s.Locs[i-1], s.Locs[i]
			if b.Chain < a.Chain || (b.Chain == a.Chain && b.Seg <= a.Seg) {
				t.Errorf("locations not sorted/deduped: %v", s.Locs)
			}
		}
	}
	if counts[Cat1] == 0 {
		t.Error("no easy faults found — screening is broken")
	}
	if counts[Cat1]+counts[Cat2]+counts[Cat3] != len(faults) {
		t.Error("category counts do not add up")
	}
	t.Logf("easy=%d hard=%d unaffecting=%d", counts[Cat1], counts[Cat2], counts[Cat3])
}

func isFFDBranch(d *scan.Design, f fault.Fault) bool {
	return !f.IsStem() && d.C.IsFF(f.Gate)
}

// TestScreenChainStemIsCat1: a stuck fault directly on a chain path net
// must be category 1 (or 2 if it also unknowns a side input elsewhere).
func TestScreenChainStemIsCat1(t *testing.T) {
	d := s27Design(t, 1)
	ch := &d.Chains[0]
	pathNet := ch.Segment[0].Path[0]
	faults := []fault.Fault{
		{Signal: pathNet, Gate: netlist.None, Pin: -1, Stuck: logic.Zero},
		{Signal: pathNet, Gate: netlist.None, Pin: -1, Stuck: logic.One},
	}
	for _, s := range Screen(d, faults) {
		if s.Cat == Cat3 {
			t.Errorf("on-path fault %s screened as unaffecting", s.Fault.Describe(d.C))
		}
	}
}

// TestScreenScanModeStuckAt0: scan_mode s-a-0 disconnects every inserted
// link — it must affect the chain.
func TestScreenScanModeStuckAt0(t *testing.T) {
	d := s27Design(t, 1)
	f := fault.Fault{Signal: d.ScanModePI, Gate: netlist.None, Pin: -1, Stuck: logic.Zero}
	s := Screen(d, []fault.Fault{f})[0]
	if s.Cat == Cat3 {
		t.Error("scan_mode s-a-0 screened as unaffecting")
	}
}

// TestScreenCat1DetectedByAlternating is the paper's core claim for
// category 1: the alternating sequence detects these faults.
func TestScreenCat1DetectedByAlternating(t *testing.T) {
	for _, chains := range []int{1, 2} {
		d := s27Design(t, chains)
		scr := Screen(d, fault.Collapsed(d.C))
		var cat1 []fault.Fault
		for _, s := range scr {
			if s.Cat == Cat1 {
				cat1 = append(cat1, s.Fault)
			}
		}
		alt := faultsim.Sequence(d.AlternatingSequence(8))
		res := faultsim.Run(d.C, alt, cat1, faultsim.Options{})
		missed := len(res.Undetected())
		if float64(missed) > 0.1*float64(len(cat1)) {
			t.Errorf("chains=%d: alternating sequence missed %d of %d category-1 faults",
				chains, missed, len(cat1))
		}
	}
}

// TestScreenCat3Unaffecting: category-3 faults must not change the scan
// chain behaviour — shifting a pattern through the faulty chain gives
// the same scan-out trace as the fault-free chain.
func TestScreenCat3Unaffecting(t *testing.T) {
	d := s27Design(t, 1)
	scr := Screen(d, fault.Collapsed(d.C))
	var cat3 []fault.Fault
	for _, s := range scr {
		if s.Cat == Cat3 {
			cat3 = append(cat3, s.Fault)
		}
	}
	if len(cat3) == 0 {
		t.Skip("no category-3 faults")
	}
	// Observe ONLY the scan-out: build sequences and compare the scan-out
	// PO lane-by-lane. Category 3 faults may still hit mission POs, so
	// detection at other POs is fine; the chain itself must shift clean.
	alt := d.AlternatingSequence(8)
	soIdx := -1
	for i, o := range d.C.Outputs {
		if o == d.Chains[0].ScanOut() {
			soIdx = i
		}
	}
	if soIdx < 0 {
		t.Fatal("no scan-out PO")
	}
	// Simulate good and faulty machines, compare the scan-out only.
	good := traceOutput(d, alt, nil, soIdx)
	for _, f := range cat3 {
		inj := f.Inject()
		bad := traceOutput(d, alt, &inj, soIdx)
		for cyc := range good {
			if good[cyc].Known() && bad[cyc].Known() && good[cyc] != bad[cyc] {
				t.Errorf("category-3 fault %s corrupts scan-out at cycle %d",
					f.Describe(d.C), cyc)
				break
			}
		}
	}
}

func traceOutput(d *scan.Design, seq [][]logic.V, inj *sim.Inject, outIdx int) []logic.V {
	s := sim.NewSeq(d.C)
	var out []logic.V
	var po []logic.V
	for _, pi := range seq {
		po = s.Cycle(pi, inj, po)
		out = append(out, po[outIdx])
	}
	return out
}

// TestRunS27 executes the whole flow on s27 and checks the headline
// shape: every chain-affecting fault ends up detected or proven
// undetectable, with at most a tiny residue.
func TestRunS27(t *testing.T) {
	for _, chains := range []int{1, 2} {
		d := s27Design(t, chains)
		rep, err := Run(d, Params{})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("chains=%d: faults=%d easy=%d hard=%d s2=%+v s3=%+v undetected=%d",
			chains, rep.Faults, rep.Easy, rep.Hard, rep.Step2, rep.Step3, rep.Undetected())
		if rep.Easy == 0 {
			t.Error("no easy faults")
		}
		accounted := rep.Step2.Detected + rep.Step2.Undetectable + rep.Step2.Undetected
		if rep.Hard+rep.EasyEscapes != accounted {
			t.Errorf("step-2 accounting: hard=%d escapes=%d but accounted=%d",
				rep.Hard, rep.EasyEscapes, accounted)
		}
		s3total := rep.Step3.Detected + rep.Step3.Undetectable + rep.Step3.Undetected
		if s3total != rep.Step2.Undetected {
			t.Errorf("step-3 accounting: %d != step-2 undetected %d", s3total, rep.Step2.Undetected)
		}
		if frac := float64(rep.Undetected()) / float64(rep.Faults); frac > 0.02 {
			t.Errorf("undetected fraction %.4f too high", frac)
		}
	}
}

// TestRunGenerated runs the flow end to end on a generated circuit with
// multiple chains.
func TestRunGenerated(t *testing.T) {
	d := genDesign(t, 250, 14, 2, 5)
	rep, err := Run(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("faults=%d affecting=%d (%.1f%%) hard=%d (%.1f%%) undetected=%d",
		rep.Faults, rep.Affecting(), 100*float64(rep.Affecting())/float64(rep.Faults),
		rep.Hard, 100*float64(rep.Hard)/float64(rep.Faults), rep.Undetected())
	if rep.Affecting() == 0 {
		t.Fatal("no faults affect the chain")
	}
	if rep.Undetected() > rep.Affecting()/10 {
		t.Errorf("undetected %d of %d affecting — flow not effective", rep.Undetected(), rep.Affecting())
	}
	if len(rep.Profile) > 1 {
		for i := 1; i < len(rep.Profile); i++ {
			if rep.Profile[i] < rep.Profile[i-1] {
				t.Error("profile not monotone")
			}
		}
	}
}

// TestUndetectableClaimsSound: on s27, every fault the flow reports as
// undetectable must resist a long random scan-mode sequence.
func TestUndetectableClaimsSound(t *testing.T) {
	d := s27Design(t, 1)
	faults := fault.Collapsed(d.C)
	scr := Screen(d, faults)
	var hard []fault.Fault
	for _, s := range scr {
		if s.Cat == Cat2 {
			hard = append(hard, s.Fault)
		}
	}
	rep, err := Run(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	undetectable := rep.Step2.Undetectable + rep.Step3.Undetectable
	if undetectable == 0 {
		t.Skip("no undetectable faults on this design")
	}
	// Random-sequence cross-check on all hard faults: any fault detected
	// by random vectors is clearly not undetectable; the flow must have
	// detected it too.
	seq := randomScanSequence(d, 600, 99)
	res := faultsim.Run(d.C, seq, hard, faultsim.Options{})
	detectedByRandom := res.NumDetected()
	flowDetected := rep.Step2.Detected + rep.Step3.Detected
	if flowDetected < detectedByRandom {
		t.Errorf("flow detected %d hard faults but random found %d", flowDetected, detectedByRandom)
	}
}

func randomScanSequence(d *scan.Design, cycles int, seed int64) faultsim.Sequence {
	rnd := uint64(seed)
	next := func() logic.V {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		return logic.V((rnd >> 33) % 2)
	}
	seq := make(faultsim.Sequence, cycles)
	for t := range seq {
		pi := d.BaselinePI()
		for i, in := range d.C.Inputs {
			if _, pinned := d.Assignments[in]; !pinned {
				pi[i] = next()
			}
		}
		seq[t] = pi
	}
	return seq
}
