package core

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// TestDropperMatchesGroundTruth: the dropper's covered-set after one
// vector must equal a one-cycle fault simulation of the combinational
// model under the same input fill.
func TestDropperMatchesGroundTruth(t *testing.T) {
	d := s27Design(t, 1)
	faults := fault.Collapsed(d.C)
	screened := Screen(d, faults)
	var hard []Screened
	for _, s := range screened {
		if s.Cat == Cat2 {
			hard = append(hard, s)
		}
	}
	if len(hard) == 0 {
		t.Skip("no hard faults")
	}
	cm, err := atpg.BuildCombModel(d.C)
	if err != nil {
		t.Fatal(err)
	}
	cd := newCombDropper(d, cm, hard, 0, engine.Auto, nil, nil)

	// A fully-specified vector: all FFs 1, all free PIs 1.
	vec := scan.Vector{
		FFs: map[netlist.SignalID]logic.V{},
		PIs: map[netlist.SignalID]logic.V{},
	}
	for _, ff := range d.C.FFs {
		vec.FFs[ff] = logic.One
	}
	for _, in := range d.C.Inputs {
		if _, pinned := d.Assignments[in]; !pinned {
			vec.PIs[in] = logic.One
		}
	}
	cd.drop(vec)

	// Ground truth: single-cycle fault sim of the comb model with the
	// same values (assignments pinned, everything else 1 except
	// scan-ins, which the dropper fills with the vector's don't-care
	// default of... the vector assigned 1 to free PIs and FFs only, so
	// scan-ins stay 0 per the baseline fill).
	pi := make([]logic.V, len(cm.C.Inputs))
	for i, in := range cm.C.Inputs {
		if av, ok := d.Assignments[in]; ok {
			pi[i] = av
		} else if v, ok := vec.FFs[in]; ok {
			pi[i] = v
		} else if v, ok := vec.PIs[in]; ok {
			pi[i] = v
		} else {
			pi[i] = logic.Zero
		}
	}
	mf := make([]fault.Fault, len(hard))
	for i := range hard {
		mf[i] = cm.MapFault(hard[i].Fault)
	}
	res := faultsim.Run(cm.C, faultsim.Sequence{pi}, mf, faultsim.Options{})
	for i := range hard {
		want := res.DetectedAt[i] >= 0
		if cd.covered.Get(i) != want {
			t.Errorf("fault %s: dropper=%v ground truth=%v",
				hard[i].Fault.Describe(d.C), cd.covered.Get(i), want)
		}
		if cd.covered.Get(i) && cd.coveredAt[i] != 0 {
			t.Errorf("coveredAt = %d, want 0", cd.coveredAt[i])
		}
	}
}
