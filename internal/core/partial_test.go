package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/tpi"
)

// TestRunPartialScan exercises the full flow on a partial-scan design:
// step 2 must take the random-vector path and never claim
// undetectability, and the accounting must still close.
func TestRunPartialScan(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "part", PIs: 8, POs: 6, FFs: 16, Gates: 220}, 6)
	sel := tpi.SelectPartialScan(c, 0.5)
	if len(sel) == 0 || len(sel) == len(c.FFs) {
		t.Fatalf("selection %d of %d not partial", len(sel), len(c.FFs))
	}
	d, err := tpi.Insert(c, tpi.Options{NumChains: 1, Seed: 2, ScanFFs: sel})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("partial: faults=%d affecting=%d step2=%+v step3=%+v undetected=%d vectors=%d",
		rep.Faults, rep.Affecting(), rep.Step2, rep.Step3, rep.Undetected(), rep.Step2Vectors)

	if rep.Step2.Undetectable != 0 {
		t.Error("random step 2 claimed undetectable faults")
	}
	if rep.Step3.Undetectable != 0 {
		t.Error("partial-scan step 3 claimed undetectable faults (comb proofs are unsound there)")
	}
	if rep.Step2Vectors == 0 {
		t.Error("random vector count not reported")
	}
	accounted := rep.Step2.Detected + rep.Step2.Undetected
	if accounted != rep.Hard+rep.EasyEscapes {
		t.Errorf("step-2 accounting %d != hard %d + escapes %d", accounted, rep.Hard, rep.EasyEscapes)
	}
	s3 := rep.Step3.Detected + rep.Step3.Undetectable + rep.Step3.Undetected
	if s3 != rep.Step2.Undetected {
		t.Errorf("step-3 accounting %d != %d", s3, rep.Step2.Undetected)
	}
}

// TestRandomVectorsOnFullScan: explicitly requesting random vectors on a
// full-scan design must work and detect a solid share of hard faults.
func TestRandomVectorsOnFullScan(t *testing.T) {
	d := s27Design(t, 1)
	rep, err := Run(d, Params{RandomVectors: 300})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Step2Vectors != 300 {
		t.Errorf("vectors = %d, want 300", rep.Step2Vectors)
	}
	if rep.Step2.Undetectable != 0 {
		t.Error("random vectors cannot prove undetectability")
	}
	if rep.Step2.Detected == 0 {
		t.Error("random vectors detected nothing")
	}
}
