package core

import (
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/scan"
)

// CompactResult reports a vector-set compaction.
type CompactResult struct {
	Before, After int
	Vectors       []scan.Vector
}

// CompactVectors performs static test-set compaction on a step-2 vector
// set: it fault-simulates the converted sequence, attributes each
// fault's first detection to the vector whose response window caught
// it, drops every vector that owns no first detection, and verifies by
// re-simulation that coverage did not drop (restoring the original set
// if it somehow did — window overlap makes attribution conservative,
// not exact).
//
// The paper's Figure 5 observation — most detections happen in the
// first few vectors — is exactly why this pass pays off: the long tail
// of vectors usually owns nothing.
func CompactVectors(d *scan.Design, vectors []scan.Vector, faults []fault.Fault) CompactResult {
	if len(vectors) <= 1 || len(faults) == 0 {
		return CompactResult{Before: len(vectors), After: len(vectors), Vectors: vectors}
	}
	L := d.MaxChainLen()
	seq := faultsim.Sequence(d.ConvertVectors(vectors))
	base := faultsim.Run(d.C, seq, faults, faultsim.Options{})
	baseDet := base.NumDetected()

	// Attribution: the sequence is [flush | w0 | w1 | … | flush-out];
	// a detection at cycle c inside window k (starting at L*(1+k))
	// happens while vector k-1's loaded state is live and vector k is
	// shifting in — both contribute, so both are kept.
	owns := make([]bool, len(vectors))
	for _, c := range base.DetectedAt {
		if c < 0 {
			continue
		}
		w := c/L - 1 // window index; -1 = leading flush
		for _, k := range []int{w - 1, w} {
			if k >= 0 && k < len(vectors) {
				owns[k] = true
			}
		}
	}
	var kept []scan.Vector
	for k, v := range vectors {
		if owns[k] {
			kept = append(kept, v)
		}
	}
	if len(kept) == len(vectors) {
		return CompactResult{Before: len(vectors), After: len(vectors), Vectors: vectors}
	}
	// Verify.
	seq2 := faultsim.Sequence(d.ConvertVectors(kept))
	again := faultsim.Run(d.C, seq2, faults, faultsim.Options{})
	if again.NumDetected() < baseDet {
		return CompactResult{Before: len(vectors), After: len(vectors), Vectors: vectors}
	}
	return CompactResult{Before: len(vectors), After: len(kept), Vectors: kept}
}
