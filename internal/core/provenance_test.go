package core

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/obs"
)

// flowJournal runs the full flow on the single-chain s27 design with a
// flight recorder attached and returns the design's fault list, the
// screening verdicts and the journal snapshot.
func flowJournal(t *testing.T) ([]fault.Fault, []Screened, []journal.Event) {
	t.Helper()
	d := s27Design(t, 1)
	col := obs.New()
	rec := journal.New(0)
	col.SetJournal(rec)
	faults := fault.Collapsed(d.C)
	scr := ScreenOpt(d, faults, ScreenOptions{Workers: 1})
	if _, err := Run(d, Params{Workers: 1, Obs: col}); err != nil {
		t.Fatal(err)
	}
	return faults, scr, rec.Snapshot()
}

// TestProvenanceGolden pins the -why rendering for the first
// category-2 fault of the s27 design: the category with its evidence
// (chain interval and implicating net), the ATPG attempts, and the
// detection. The format is a user-facing contract; it deliberately
// carries no timestamps so the output is identical across runs.
func TestProvenanceGolden(t *testing.T) {
	_, scr, events := flowJournal(t)
	var hard *Screened
	for i := range scr {
		if scr[i].Cat == Cat2 {
			hard = &scr[i]
			break
		}
	}
	if hard == nil {
		t.Fatal("s27 screening found no category-2 fault")
	}
	d := s27Design(t, 1)
	p := BuildProvenance(d.C, events, hard.Fault)
	got := p.Format()
	want := `fault scan_mode s-a-0
  category: hard
    chain 0 seg 0 via net mux0_f (hard)
    chain 0 seg 0 via net mux0_s (easy)
    chain 0 seg 1 via net tp0 (hard)
    chain 0 seg 2 via net mux1_f (hard)
    chain 0 seg 2 via net mux1_s (easy)
  atpg.comb: found (2 backtracks)
  detected: cycle 7 (step2)
`
	if got != want {
		t.Errorf("provenance golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestProvenanceUnmentionedFault: a fault the journal never saw gets
// the explicit empty explanation rather than fabricated evidence.
func TestProvenanceUnmentionedFault(t *testing.T) {
	d := s27Design(t, 1)
	f := fault.Collapsed(d.C)[0]
	p := BuildProvenance(d.C, nil, f)
	if p.Events != 0 {
		t.Errorf("events = %d, want 0", p.Events)
	}
	if p.DetectedCycle != -1 {
		t.Errorf("detected cycle = %d, want -1", p.DetectedCycle)
	}
	if !strings.Contains(p.Format(), "no journal events") {
		t.Errorf("format does not flag the empty journal:\n%s", p.Format())
	}
}

// TestProvenanceCategoriesAgree: for every fault, replaying the journal
// must reconstruct the same category screening computed.
func TestProvenanceCategoriesAgree(t *testing.T) {
	faults, scr, events := flowJournal(t)
	d := s27Design(t, 1)
	for i, f := range faults {
		p := BuildProvenance(d.C, events, f)
		if p.Category != scr[i].Cat.String() {
			t.Errorf("fault %s: journal category %s, screening %s",
				f.Describe(d.C), p.Category, scr[i].Cat)
		}
	}
}
