package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/journal"
	"repro/internal/obs"
)

// countCtx is a context that reports itself cancelled after its Err
// budget is spent: deterministic mid-flow cancellation without timing
// races. Every cancellation checkpoint in the flow calls Err, so the
// budget directly selects how deep the run gets.
type countCtx struct {
	context.Context
	budget int64
	done   chan struct{}
	once   sync.Once
}

func newCountCtx(budget int64) *countCtx {
	return &countCtx{Context: context.Background(), budget: budget, done: make(chan struct{})}
}

func (c *countCtx) Err() error {
	if atomic.AddInt64(&c.budget, -1) < 0 {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *countCtx) Done() <-chan struct{} { return c.done }

// checkGoroutines fails the test if the goroutine count has not settled
// back to its pre-run level (cancelled runs must still join all
// workers).
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func cancelledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// TestRunCtxCancelledUpFront: a dead context still yields a non-nil
// (empty) report and a wrapped context.Canceled.
func TestRunCtxCancelledUpFront(t *testing.T) {
	d := s27Design(t, 1)
	before := runtime.NumGoroutine()
	rep, err := RunCtx(cancelledCtx(), d, Params{})
	if rep == nil {
		t.Fatal("cancelled run returned a nil report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	checkGoroutines(t, before)
}

// TestRunCtxCancelMidFlow sweeps the cancellation budget so the flow is
// interrupted at every stage boundary — mid-screen, mid-fault-sim,
// mid-ATPG — and must always hand back a partial report, a wrapped
// context.Canceled, and no leaked workers.
func TestRunCtxCancelMidFlow(t *testing.T) {
	d := genDesign(t, 300, 24, 2, 8)
	// An uncancelled reference to know the full budget and expected output.
	full, err := Run(d, Params{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{1, 3, 10, 40, 150, 600} {
		before := runtime.NumGoroutine()
		ctx := newCountCtx(budget)
		rep, err := RunCtx(ctx, d, Params{Workers: 2})
		if rep == nil {
			t.Fatalf("budget %d: nil report", budget)
		}
		if err == nil {
			// Budget larger than the flow's checkpoint count: it ran to
			// completion; the result must match the reference.
			if rep.Undetected() != full.Undetected() {
				t.Errorf("budget %d: complete run diverged", budget)
			}
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d: err = %v, want context.Canceled", budget, err)
		}
		if rep.Faults == 0 {
			t.Errorf("budget %d: partial report carries no circuit facts", budget)
		}
		checkGoroutines(t, before)
	}
}

// TestScreenCtxCancel: cancellation inside screening surfaces the
// context error and still returns the (partially categorized) slice.
func TestScreenCtxCancel(t *testing.T) {
	d := genDesign(t, 300, 24, 2, 8)
	faults := fault.Collapsed(d.C)
	before := runtime.NumGoroutine()
	out, err := ScreenOptCtx(cancelledCtx(), d, faults, ScreenOptions{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != len(faults) {
		t.Errorf("partial screen has %d entries, want %d", len(out), len(faults))
	}
	checkGoroutines(t, before)
}

// TestFaultsimCtxCancel: cancellation inside fault simulation returns
// promptly with the context error; unsimulated faults stay undetected.
func TestFaultsimCtxCancel(t *testing.T) {
	d := genDesign(t, 300, 24, 2, 8)
	faults := fault.Collapsed(d.C)
	seq := faultsim.Sequence(d.AlternatingSequence(8))
	before := runtime.NumGoroutine()
	res, err := faultsim.RunCtx(cancelledCtx(), d.C, seq, faults, faultsim.Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, at := range res.DetectedAt {
		if at != -1 {
			t.Fatalf("fault %d marked detected at %d under immediate cancel", i, at)
		}
	}
	checkGoroutines(t, before)

	// Mid-run cancellation keeps whatever detections completed.
	ctx := newCountCtx(3)
	res, err = faultsim.RunCtx(ctx, d.C, seq, faults, faultsim.Options{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("mid-run cancel dropped the partial result")
	}
}

// TestTransitionCtxCancel covers the transition-fault engine's
// cancellation path through the core wrapper.
func TestTransitionCtxCancel(t *testing.T) {
	d := genDesign(t, 300, 24, 2, 8)
	det, total, undet, err := ChainTransitionCoverageCtx(cancelledCtx(), d, 8, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if det != 0 || len(undet) != total {
		t.Errorf("cancelled transition run claims %d detections (total %d, undet %d)",
			det, total, len(undet))
	}
}

// TestCancelJournalFlush is the flight recorder's interruption
// contract: however deep a run is cancelled (this sweeps the budget
// across mid-screen, mid-fault-sim and mid-ATPG boundaries, like
// TestRunCtxCancelMidFlow), every phase opened in the journal must be
// closed — the flow ends its span on each error return — and the
// snapshot collected so far must export as a loadable Chrome trace.
// This is exactly what the CLIs rely on when SIGINT interrupts a run
// with -tracefile set.
func TestCancelJournalFlush(t *testing.T) {
	d := genDesign(t, 300, 24, 2, 8)
	for _, budget := range []int64{1, 3, 10, 40, 150} {
		col := obs.New()
		rec := journal.New(0)
		col.SetJournal(rec)
		_, err := RunCtx(newCountCtx(budget), d, Params{Workers: 2, Obs: col})
		if err == nil {
			continue // budget outlasted the flow's checkpoints
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("budget %d: err = %v, want context.Canceled", budget, err)
		}
		events := rec.Snapshot()
		open := map[string]int{}
		for _, e := range events {
			switch e.Kind {
			case journal.KindPhaseBegin:
				open[e.Arg]++
			case journal.KindPhaseEnd:
				open[e.Arg]--
			}
		}
		for name, n := range open {
			if n != 0 {
				t.Errorf("budget %d: phase %q left %d span(s) open after cancel", budget, name, n)
			}
		}
		var buf bytes.Buffer
		if err := journal.WriteTrace(&buf, events, rec.Dropped()); err != nil {
			t.Fatalf("budget %d: WriteTrace: %v", budget, err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("budget %d: trace of interrupted run is not valid JSON: %v", budget, err)
		}
		if len(doc.TraceEvents) == 0 {
			t.Errorf("budget %d: interrupted trace carries no events", budget)
		}
	}
}

// TestRunCtxNilMatchesRun: a nil context is context.Background — the
// ctx-free wrappers and the Ctx entry points produce the same report.
func TestRunCtxNilMatchesRun(t *testing.T) {
	d := s27Design(t, 1)
	a, err := Run(d, Params{Engine: engine.Bypass()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(nil, d, Params{Engine: engine.Bypass()})
	if err != nil {
		t.Fatal(err)
	}
	if string(canonicalReport(t, a)) != string(canonicalReport(t, b)) {
		t.Error("RunCtx(nil) diverged from Run")
	}
}
