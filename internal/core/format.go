package core

import (
	"fmt"
	"strings"
	"time"
)

// FormatReport renders one circuit's full flow report — the seven-line
// per-circuit block fsctest -v prints and flow jobs return. It lives
// here (not in the facade) so the task layer and the daemon share the
// single rendering.
func FormatReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s: %d gates, %d FFs, %d chains, %d faults\n",
		r.Circuit, r.Gates, r.FFs, r.Chains, r.Faults)
	fmt.Fprintf(&b, "  screening: easy=%d (%.1f%%)  hard=%d (%.1f%%)  affecting=%d (%.1f%%)  [%s]\n",
		r.Easy, formatPct(r.Easy, r.Faults), r.Hard, formatPct(r.Hard, r.Faults),
		r.Affecting(), formatPct(r.Affecting(), r.Faults), formatDuration(r.ScreenCPU))
	fmt.Fprintf(&b, "  step 1: alternating sequence confirmed %d/%d easy faults (%d escapes)\n",
		r.EasyConfirmed, r.Easy, r.EasyEscapes)
	fmt.Fprintf(&b, "  step 2: %d vectors; det=%d undetectable=%d undetected=%d  [%s]\n",
		r.Step2Vectors, r.Step2.Detected, r.Step2.Undetectable, r.Step2.Undetected, formatDuration(r.Step2.CPU))
	fmt.Fprintf(&b, "  step 3: %d+%d C/O circuits; det=%d undetectable=%d undetected=%d  [%s]\n",
		r.COCircuits, r.FinalCOCircuits, r.Step3.Detected, r.Step3.Undetectable,
		r.Step3.Undetected, formatDuration(r.Step3.CPU))
	fmt.Fprintf(&b, "  undetected: %d = %.4f%% of faults = %.4f%% of affecting\n",
		r.Undetected(), formatPct(r.Undetected(), r.Faults), formatPct(r.Undetected(), r.Affecting()))
	return b.String()
}

// formatPct is a zero-safe percentage.
func formatPct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// formatDuration rounds a wall time to a scale-appropriate precision.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(10 * time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Microsecond).String()
	}
}
