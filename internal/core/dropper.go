package core

import (
	"repro/internal/atpg"
	"repro/internal/engine"
	"repro/internal/logic"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/scan"
	"repro/internal/sim"
)

// combDropper fault-simulates single vectors on the scan-mode
// combinational model (63 faults per packed pass) to predict which hard
// faults a vector covers. Predictions only skip ATPG work: the real
// sequential fault simulation still decides detection.
//
// The 63-fault batches of one drop call are sharded across workers;
// covered is an atomic bit set shared by all of them (each fault lives
// in exactly one batch, so the only concurrency is set-versus-read
// across different faults, which the bit set makes safe).
type combDropper struct {
	d       *scan.Design
	cm      *atpg.CombModel
	hard    []Screened
	covered *par.BitSet
	// coveredAt records the index of the vector predicted to cover each
	// fault (-1 when none): sorting faults by it lets the sequential
	// fault simulator finish each 63-lane batch early.
	coveredAt []int
	nVectors  int
	workers   int
	arts      *engine.Artifacts
	backend   engine.Backend
	col       *obs.Collector
	evals     []engine.CombEvaluator // one per worker, lazily created
	injbuf    [][]sim.LaneInject
	base      []logic.V // per model input: vector-independent fill
	pending   []int     // reused scratch: still-uncovered fault indices
	inW       []logic.Word
	predCtr   *obs.Counter // step2.drop.predicted (nil-safe)
}

func newCombDropper(d *scan.Design, cm *atpg.CombModel, hard []Screened, workers int, backend engine.Backend, cache *engine.Cache, col *obs.Collector) *combDropper {
	workers = par.Workers(workers)
	backend = backend.ResolveComb()
	arts := engine.Resolve(cache).ForObs(cm.C, col)
	if backend == engine.Compiled {
		arts.Program(col) // materialize (and account) the shared program up front
	}
	cd := &combDropper{
		d:         d,
		cm:        cm,
		hard:      hard,
		covered:   par.NewBitSet(len(hard)),
		coveredAt: make([]int, len(hard)),
		workers:   workers,
		arts:      arts,
		backend:   backend,
		col:       col,
		predCtr:   col.Counter("step2.drop.predicted"),
		evals:     make([]engine.CombEvaluator, workers),
		injbuf:    make([][]sim.LaneInject, workers),
		base:      make([]logic.V, len(cm.C.Inputs)),
		inW:       make([]logic.Word, len(cm.C.Inputs)),
	}
	for i := range cd.coveredAt {
		cd.coveredAt[i] = -1
	}
	for i, in := range cm.C.Inputs {
		if v, ok := d.Assignments[in]; ok {
			cd.base[i] = v
		} else {
			// Free mission inputs, scan-ins and flip-flop pseudo-inputs
			// all load zero when the vector leaves them unassigned,
			// matching ConvertVectors' don't-care fill.
			cd.base[i] = logic.Zero
		}
	}
	return cd
}

// drop marks every still-uncovered fault that vector v detects on the
// combinational model.
func (cd *combDropper) drop(v scan.Vector) {
	vecIdx := cd.nVectors
	cd.nVectors++
	c := cd.cm.C
	cd.pending = cd.pending[:0]
	for i := range cd.hard {
		if !cd.covered.Get(i) {
			cd.pending = append(cd.pending, i)
		}
	}
	pending := cd.pending
	// Input words for this vector, shared read-only by every worker.
	for i, in := range c.Inputs {
		val := cd.base[i]
		if vv, ok := v.FFs[in]; ok && vv.Known() {
			val = vv
		} else if vv, ok := v.PIs[in]; ok && vv.Known() {
			val = vv
		}
		cd.inW[i] = logic.WordAll(val)
	}

	batches := par.Chunks(len(pending), 63)
	workers := cd.workers
	if workers > len(batches) {
		workers = len(batches)
	}
	par.Do(workers, len(batches), func(worker, bi int) {
		eval := cd.evals[worker]
		if eval == nil {
			eval = engine.NewCombEvaluator(cd.backend, cd.arts, cd.col)
			cd.evals[worker] = eval
			cd.injbuf[worker] = make([]sim.LaneInject, 0, 63)
		}
		base, n := batches[bi].Lo, batches[bi].Len()
		injs := cd.injbuf[worker][:0]
		for k := 0; k < n; k++ {
			f := cd.cm.MapFault(cd.hard[pending[base+k]].Fault)
			injs = append(injs, sim.LaneInject{Inject: f.Inject(), Lane: uint(k + 1)})
		}
		cd.injbuf[worker] = injs
		eval.SetInjections(injs)
		eval.ClearX()
		vals := eval.Words()
		for i, in := range c.Inputs {
			vals[in] = cd.inW[i]
		}
		eval.Eval()
		laneMask := (uint64(1)<<uint(n+1) - 1) &^ 1
		var det uint64
		for _, o := range c.Outputs {
			w := vals[o]
			switch w.Get(0) {
			case logic.One:
				det |= w.Zeros & laneMask
			case logic.Zero:
				det |= w.Ones & laneMask
			}
		}
		newly := int64(0)
		for k := 0; k < n; k++ {
			if det&(uint64(1)<<uint(k+1)) != 0 {
				if cd.covered.Set(pending[base+k]) {
					newly++
				}
				cd.coveredAt[pending[base+k]] = vecIdx
			}
		}
		cd.predCtr.Add(newly)
	})
}
