package core

import (
	"repro/internal/atpg"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/sim"
)

// combDropper fault-simulates single vectors on the scan-mode
// combinational model (63 faults per packed pass) to predict which hard
// faults a vector covers. Predictions only skip ATPG work: the real
// sequential fault simulation still decides detection.
type combDropper struct {
	d       *scan.Design
	cm      *atpg.CombModel
	hard    []Screened
	covered []bool
	// coveredAt records the index of the vector predicted to cover each
	// fault (-1 when none): sorting faults by it lets the sequential
	// fault simulator finish each 63-lane batch early.
	coveredAt []int
	nVectors  int
	eval      *sim.PackedComb
	base      []logic.V // per model input: vector-independent fill
}

func newCombDropper(d *scan.Design, cm *atpg.CombModel, hard []Screened) *combDropper {
	cd := &combDropper{
		d:         d,
		cm:        cm,
		hard:      hard,
		covered:   make([]bool, len(hard)),
		coveredAt: make([]int, len(hard)),
		eval:      sim.NewPackedComb(cm.C),
		base:      make([]logic.V, len(cm.C.Inputs)),
	}
	for i := range cd.coveredAt {
		cd.coveredAt[i] = -1
	}
	for i, in := range cm.C.Inputs {
		if v, ok := d.Assignments[in]; ok {
			cd.base[i] = v
		} else {
			// Free mission inputs, scan-ins and flip-flop pseudo-inputs
			// all load zero when the vector leaves them unassigned,
			// matching ConvertVectors' don't-care fill.
			cd.base[i] = logic.Zero
		}
	}
	return cd
}

// drop marks every still-uncovered fault that vector v detects on the
// combinational model.
func (cd *combDropper) drop(v scan.Vector) {
	vecIdx := cd.nVectors
	cd.nVectors++
	c := cd.cm.C
	var pending []int
	for i := range cd.hard {
		if !cd.covered[i] {
			pending = append(pending, i)
		}
	}
	for base := 0; base < len(pending); base += 63 {
		n := len(pending) - base
		if n > 63 {
			n = 63
		}
		injs := make([]sim.LaneInject, 0, n)
		for k := 0; k < n; k++ {
			f := cd.cm.MapFault(cd.hard[pending[base+k]].Fault)
			injs = append(injs, sim.LaneInject{Inject: f.Inject(), Lane: uint(k + 1)})
		}
		cd.eval.SetInjections(injs)
		cd.eval.ClearX()
		for i, in := range c.Inputs {
			val := cd.base[i]
			if vv, ok := v.FFs[in]; ok && vv.Known() {
				val = vv
			} else if vv, ok := v.PIs[in]; ok && vv.Known() {
				val = vv
			}
			cd.eval.Vals[in] = logic.WordAll(val)
		}
		cd.eval.Eval()
		laneMask := (uint64(1)<<uint(n+1) - 1) &^ 1
		var det uint64
		for _, o := range c.Outputs {
			w := cd.eval.Vals[o]
			switch w.Get(0) {
			case logic.One:
				det |= w.Zeros & laneMask
			case logic.Zero:
				det |= w.Ones & laneMask
			}
		}
		for k := 0; k < n; k++ {
			if det&(uint64(1)<<uint(k+1)) != 0 {
				cd.covered[pending[base+k]] = true
				cd.coveredAt[pending[base+k]] = vecIdx
			}
		}
	}
}
