package core

// Fault provenance: replay the flight-recorder journal of a run and
// explain what the flow decided about one fault and why — its screening
// category with the implicating net and chain interval, every ATPG
// attempt made on it, and (if detected) the detecting cycle and the
// phase it fell in. This is the "-why <fault>" answer of fsctest and
// the `provenance` section of the JSON report.

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/netlist"
)

// Provenance is the journal-derived explanation for one fault.
type Provenance struct {
	Fault    string `json:"fault"`
	Category string `json:"category"`

	// Evidence lists the screening verdicts: each entry is one chain
	// location the fault touches, with the net whose faulty value
	// implicated it.
	Evidence []ProvenanceEvidence `json:"evidence,omitempty"`

	// Attempts lists every ATPG run targeted at the fault, in order.
	Attempts []ProvenanceAttempt `json:"atpg,omitempty"`

	// DetectedCycle is the first detecting cycle of the earliest
	// detection event, or -1 if the journal holds none.
	DetectedCycle int `json:"detected_cycle"`
	// DetectPhase names the flow phase whose interval contains the
	// detection ("" when undetected or unattributable).
	DetectPhase string `json:"detect_phase,omitempty"`

	// Events counts the journal events that mention the fault.
	Events int `json:"events"`
}

// ProvenanceEvidence is one screening verdict location.
type ProvenanceEvidence struct {
	Category string `json:"category"`
	Chain    int    `json:"chain"`
	Seg      int    `json:"seg"`
	Net      string `json:"net"`
}

// ProvenanceAttempt is one ATPG run targeted at the fault.
type ProvenanceAttempt struct {
	Engine     string `json:"engine"` // counter prefix: atpg.comb / atpg.seq / atpg.final
	Status     string `json:"status"`
	Backtracks int    `json:"backtracks"`
}

// BuildProvenance replays a journal snapshot and assembles the
// provenance of fault f in circuit c. It always returns a value; an
// empty journal (or one that never mentions f) yields Events == 0 with
// category "unaffecting" — with no classification event the screening
// default stands.
func BuildProvenance(c *netlist.Circuit, events []journal.Event, f fault.Fault) *Provenance {
	key := int64(journalKey(f))
	p := &Provenance{
		Fault:         f.Describe(c),
		Category:      Cat3.String(),
		DetectedCycle: -1,
	}

	// Closed phase intervals, for attributing instants to phases.
	type interval struct {
		name     string
		from, to int64
	}
	var phases []interval
	for _, e := range events {
		if e.Kind == journal.KindPhaseEnd {
			phases = append(phases, interval{e.Arg, e.TNS, e.TNS + e.DurNS})
		}
	}
	phaseAt := func(tns int64) string {
		// Innermost match wins: phases do not nest in this flow, but a
		// later (tighter) interval is the better attribution either way.
		name := ""
		for _, iv := range phases {
			if tns >= iv.from && tns <= iv.to {
				name = iv.name
			}
		}
		return name
	}

	cat := Cat3
	for _, e := range events {
		if e.A != key {
			continue
		}
		switch e.Kind {
		case journal.KindClassify:
			p.Events++
			if ec := Category(e.B); ec > cat {
				cat = ec
			}
			chain, seg := journal.UnpackLoc(e.C)
			p.Evidence = append(p.Evidence, ProvenanceEvidence{
				Category: Category(e.B).String(),
				Chain:    chain,
				Seg:      seg,
				Net:      c.NameOf(netlist.SignalID(e.D)),
			})
		case journal.KindATPG:
			p.Events++
			p.Attempts = append(p.Attempts, ProvenanceAttempt{
				Engine:     e.Arg,
				Status:     atpg.Status(e.B).String(),
				Backtracks: int(e.C),
			})
		case journal.KindDetect:
			p.Events++
			if p.DetectedCycle < 0 || int(e.B) < p.DetectedCycle {
				p.DetectedCycle = int(e.B)
				p.DetectPhase = phaseAt(e.TNS)
			}
		}
	}
	p.Category = cat.String()

	// Deduplicate evidence (the same location/net pair recurs when
	// several path nets of one segment implicate the fault).
	sort.SliceStable(p.Evidence, func(a, b int) bool {
		x, y := p.Evidence[a], p.Evidence[b]
		if x.Chain != y.Chain {
			return x.Chain < y.Chain
		}
		if x.Seg != y.Seg {
			return x.Seg < y.Seg
		}
		return x.Net < y.Net
	})
	dst := p.Evidence[:0]
	for i, ev := range p.Evidence {
		if i == 0 || ev != p.Evidence[i-1] {
			dst = append(dst, ev)
		}
	}
	p.Evidence = dst
	return p
}

// Format renders the provenance for terminals. The output carries no
// timestamps or durations, so it is stable across runs and pinned by a
// golden test.
func (p *Provenance) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault %s\n", p.Fault)
	if p.Events == 0 {
		b.WriteString("  no journal events: fault never implicated (run with a journal enabled?)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  category: %s\n", p.Category)
	for _, ev := range p.Evidence {
		fmt.Fprintf(&b, "    chain %d seg %d via net %s (%s)\n", ev.Chain, ev.Seg, ev.Net, ev.Category)
	}
	for _, at := range p.Attempts {
		fmt.Fprintf(&b, "  %s: %s (%d backtracks)\n", at.Engine, at.Status, at.Backtracks)
	}
	if p.DetectedCycle >= 0 {
		if p.DetectPhase != "" {
			fmt.Fprintf(&b, "  detected: cycle %d (%s)\n", p.DetectedCycle, p.DetectPhase)
		} else {
			fmt.Fprintf(&b, "  detected: cycle %d\n", p.DetectedCycle)
		}
	} else {
		b.WriteString("  detected: never\n")
	}
	return b.String()
}
