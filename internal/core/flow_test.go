package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
)

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults(400)
	if p.LargeDist != 240 || p.MedDist != 100 || p.Dist != 60 {
		t.Errorf("distance defaults for maxchain=400: %d/%d/%d", p.LargeDist, p.MedDist, p.Dist)
	}
	p = Params{}.withDefaults(10)
	if p.LargeDist != 50 || p.MedDist != 25 || p.Dist != 20 {
		t.Errorf("distance floors: %d/%d/%d", p.LargeDist, p.MedDist, p.Dist)
	}
	if p.CombBacktracks == 0 || p.SeqBacktracks == 0 || p.FinalBacktracks == 0 || p.MaxFrames == 0 {
		t.Error("effort defaults missing")
	}
	// Explicit values are preserved.
	q := Params{LargeDist: 7, Dist: 3}.withDefaults(400)
	if q.LargeDist != 7 || q.Dist != 3 {
		t.Error("explicit distances overridden")
	}
}

func TestSkipStep2RoutesEverythingToStep3(t *testing.T) {
	d := s27Design(t, 1)
	rep, err := Run(d, Params{SkipStep2: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Step2.Detected != 0 || rep.Step2Vectors != 0 {
		t.Errorf("step 2 ran despite SkipStep2: %+v", rep.Step2)
	}
	s3 := rep.Step3.Detected + rep.Step3.Undetectable + rep.Step3.Undetected
	if s3 != rep.Hard+rep.EasyEscapes {
		t.Errorf("step 3 accounted %d, want %d", s3, rep.Hard+rep.EasyEscapes)
	}
}

func TestSimulateAlternatingOnHard(t *testing.T) {
	d := s27Design(t, 1)
	base, err := Run(d, Params{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(d, Params{SimulateAlternatingOnHard: true})
	if err != nil {
		t.Fatal(err)
	}
	// Total coverage must not drop; the alternating-dropped faults are
	// credited to step 2.
	baseDet := base.Step2.Detected + base.Step3.Detected
	optDet := opt.Step2.Detected + opt.Step3.Detected
	if optDet < baseDet {
		t.Errorf("alternating-on-hard lowered detections: %d < %d", optDet, baseDet)
	}
	if opt.Undetected() > base.Undetected() {
		t.Errorf("alternating-on-hard raised undetected: %d > %d", opt.Undetected(), base.Undetected())
	}
}

func TestSpanHelpers(t *testing.T) {
	s := Screened{Locs: []Location{{0, 3}, {0, 9}, {1, 2}}}
	first, last, multi := s.Span()
	if first != (Location{0, 3}) || last != (Location{1, 2}) || !multi {
		t.Errorf("Span = %v %v %v", first, last, multi)
	}
	empty := Screened{}
	if _, _, m := empty.Span(); m {
		t.Error("empty Span claims multi-chain")
	}
}

func TestTryVectorFillsDeterministic(t *testing.T) {
	d := s27Design(t, 1)
	// A fault known detectable by loading: pick a chain path stem fault.
	p := d.Chains[0].Segment[1].Path[0]
	f := fault.Fault{Signal: p, Gate: netlist.None, Pin: -1, Stuck: logic.One}
	v := scanVector()
	a, err := tryVectorFills(nil, d, f, v, 4, Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := tryVectorFills(nil, d, f, v, 4, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("tryVectorFills nondeterministic")
	}
}

func scanVector() (v scan.Vector) {
	v.FFs = map[netlist.SignalID]logic.V{}
	v.PIs = map[netlist.SignalID]logic.V{}
	return v
}

func TestReportAccessors(t *testing.T) {
	r := &Report{Easy: 3, Hard: 2, UndetectedFaults: make([]fault.Fault, 1)}
	if r.Affecting() != 5 || r.Undetected() != 1 {
		t.Error("report accessors wrong")
	}
}

func TestCategoryString(t *testing.T) {
	if Cat1.String() != "easy" || Cat2.String() != "hard" || Cat3.String() != "unaffecting" {
		t.Error("category strings wrong")
	}
}
