package satpg

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/tpi"
)

// detects replays an assignment on the combinational circuit and checks
// a definite output difference under the fault.
func detects(c *netlist.Circuit, fixed, asn map[netlist.SignalID]logic.V, f fault.Fault) bool {
	run := func(inj *sim.Inject) []logic.V {
		e := sim.NewComb(c)
		e.ClearX()
		for _, in := range c.Inputs {
			if v, ok := fixed[in]; ok {
				e.Vals[in] = v
			} else if v, ok := asn[in]; ok {
				e.Vals[in] = v
			}
		}
		e.Eval(inj)
		return e.Outputs(nil)
	}
	good := run(nil)
	inj := f.Inject()
	bad := run(&inj)
	for i := range good {
		if good[i].Known() && bad[i].Known() && good[i] != bad[i] {
			return true
		}
	}
	return false
}

// TestSatAgreesWithPodem is the cross-validation property: on every
// collapsed fault of several models, the SAT engine and PODEM must
// reach the same testable/redundant verdict, and every SAT vector must
// detect its fault in simulation.
func TestSatAgreesWithPodem(t *testing.T) {
	models := []*atpg.Model{}

	// c17.
	c17src := `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
	c17, err := bench.ParseString(c17src, "c17")
	if err != nil {
		t.Fatal(err)
	}
	m17, _ := atpg.NewModel(c17, nil)
	models = append(models, m17)

	// Redundant logic.
	redSrc := `
INPUT(a)
INPUT(b)
OUTPUT(z)
na = NOT(a)
y = OR(a, na)
z = AND(y, b)
`
	red, err := bench.ParseString(redSrc, "red")
	if err != nil {
		t.Fatal(err)
	}
	mred, _ := atpg.NewModel(red, nil)
	models = append(models, mred)

	// s27 scan-mode comb model (with TPI pins).
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := atpg.BuildCombModel(d.C)
	if err != nil {
		t.Fatal(err)
	}
	fixed := map[netlist.SignalID]logic.V{}
	for k, v := range d.Assignments {
		fixed[k] = v
	}
	ms27, _ := atpg.NewModel(cm.C, fixed)
	models = append(models, ms27)

	for _, m := range models {
		eng := atpg.NewEngine(m)
		for _, f := range fault.Collapsed(m.C) {
			p := eng.Generate(f, 100000)
			s, err := Generate(m, f, 200000)
			if err != nil {
				t.Fatal(err)
			}
			if p.Status == atpg.Aborted || s.Status == atpg.Aborted {
				continue // no verdict to compare
			}
			if p.Status != s.Status {
				t.Errorf("%s: fault %s: PODEM=%v SAT=%v",
					m.C.Name, f.Describe(m.C), p.Status, s.Status)
				continue
			}
			if s.Status == atpg.Found && !detects(m.C, m.Fixed, s.Assignment, f) {
				t.Errorf("%s: SAT vector for %s does not detect it", m.C.Name, f.Describe(m.C))
			}
		}
	}
}

// TestSatOnGeneratedCircuit runs the agreement check on a generated
// full-scan comb model with pinned inputs.
func TestSatOnGeneratedCircuit(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "satg", PIs: 6, POs: 5, FFs: 8, Gates: 110}, 3)
	d, err := tpi.Insert(c, tpi.Options{NumChains: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := atpg.BuildCombModel(d.C)
	if err != nil {
		t.Fatal(err)
	}
	fixed := map[netlist.SignalID]logic.V{}
	for k, v := range d.Assignments {
		fixed[k] = v
	}
	m, _ := atpg.NewModel(cm.C, fixed)
	eng := atpg.NewEngine(m)
	faults := fault.Collapsed(m.C)
	if len(faults) > 150 {
		faults = faults[:150]
	}
	agree := 0
	for _, f := range faults {
		p := eng.Generate(f, 50000)
		s, err := Generate(m, f, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if p.Status == atpg.Aborted || s.Status == atpg.Aborted {
			continue
		}
		if p.Status != s.Status {
			t.Errorf("fault %s: PODEM=%v SAT=%v", f.Describe(m.C), p.Status, s.Status)
		} else {
			agree++
		}
	}
	if agree == 0 {
		t.Fatal("no verdicts compared")
	}
	t.Logf("%d verdicts agree", agree)
}

func TestSatRejectsXPinned(t *testing.T) {
	c, _ := bench.ParseString("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "x")
	b, _ := c.Lookup("b")
	m, _ := atpg.NewModel(c, map[netlist.SignalID]logic.V{b: logic.X})
	y, _ := c.Lookup("y")
	if _, err := Generate(m, fault.Fault{Signal: y, Gate: netlist.None, Pin: -1, Stuck: logic.One}, 100); err == nil {
		t.Error("X-pinned model accepted")
	}
}
