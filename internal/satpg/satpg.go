package satpg

import (
	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Result mirrors the PODEM result type: found (with a vector), proven
// redundant, or aborted on the conflict budget.
type Result struct {
	Status     atpg.Status
	Assignment map[netlist.SignalID]logic.V
	Conflicts  int
}

// Generate decides testability of fault f on the combinational model by
// SAT. conflictLimit bounds the chronological search.
func Generate(m *atpg.Model, f fault.Fault, conflictLimit int) (Result, error) {
	phi, free, err := encode(m, f)
	if err != nil {
		return Result{}, err
	}
	d := newDPLL(phi, conflictLimit)
	switch d.solve() {
	case unsat:
		return Result{Status: atpg.Redundant, Conflicts: d.conflicts}, nil
	case aborted:
		return Result{Status: atpg.Aborted, Conflicts: d.conflicts}, nil
	}
	asn := make(map[netlist.SignalID]logic.V, len(free))
	for in, v := range free {
		switch d.assign[v] {
		case 1:
			asn[in] = logic.One
		case -1:
			asn[in] = logic.Zero
		}
	}
	return Result{Status: atpg.Found, Assignment: asn, Conflicts: d.conflicts}, nil
}
