// Package satpg implements test generation via Boolean satisfiability
// (Larrabee, "Test pattern generation using Boolean satisfiability",
// IEEE TCAD 1992) as an independent baseline for the PODEM engine: the
// fault-free and faulty circuits are Tseitin-encoded into CNF, a miter
// asserts that some observed output differs, and a small DPLL solver
// decides testability. SAT yields a test vector; UNSAT proves the fault
// combinationally redundant. The two engines must agree — a
// cross-validation property the tests enforce.
package satpg

import (
	"fmt"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// cnf accumulates clauses; literals are ±var, variables start at 1.
type cnf struct {
	nVars   int
	clauses [][]int
}

func (c *cnf) newVar() int {
	c.nVars++
	return c.nVars
}

func (c *cnf) add(lits ...int) {
	cl := make([]int, len(lits))
	copy(cl, lits)
	c.clauses = append(c.clauses, cl)
}

// gateCNF encodes y = op(xs) for the basic operators.
func (c *cnf) gateCNF(op logic.Op, y int, xs []int) error {
	switch op {
	case logic.OpBuf:
		c.add(-y, xs[0])
		c.add(y, -xs[0])
	case logic.OpNot:
		c.add(-y, -xs[0])
		c.add(y, xs[0])
	case logic.OpAnd, logic.OpNand:
		out := y
		if op == logic.OpNand {
			n := c.newVar() // n = AND(xs), y = ¬n
			c.add(-y, -n)
			c.add(y, n)
			out = n
		}
		long := make([]int, 0, len(xs)+1)
		long = append(long, out)
		for _, x := range xs {
			c.add(-out, x)
			long = append(long, -x)
		}
		c.add(long...)
	case logic.OpOr, logic.OpNor:
		out := y
		if op == logic.OpNor {
			n := c.newVar()
			c.add(-y, -n)
			c.add(y, n)
			out = n
		}
		long := make([]int, 0, len(xs)+1)
		long = append(long, -out)
		for _, x := range xs {
			c.add(out, -x)
			long = append(long, x)
		}
		c.add(long...)
	case logic.OpXor, logic.OpXnor:
		acc := xs[0]
		for _, x := range xs[1:] {
			z := c.newVar()
			c.xorCNF(z, acc, x)
			acc = z
		}
		if op == logic.OpXnor {
			c.add(-y, -acc)
			c.add(y, acc)
		} else {
			c.add(-y, acc)
			c.add(y, -acc)
		}
	case logic.OpConst0:
		c.add(-y)
	case logic.OpConst1:
		c.add(y)
	default:
		return fmt.Errorf("satpg: cannot encode op %v", op)
	}
	return nil
}

// xorCNF encodes z = a XOR b.
func (c *cnf) xorCNF(z, a, b int) {
	c.add(-z, a, b)
	c.add(-z, -a, -b)
	c.add(z, -a, b)
	c.add(z, a, -b)
}

// Encoder builds the dual-machine CNF for one model+fault.
type Encoder struct {
	m *atpg.Model

	goodVar []int                    // per signal
	cone    map[netlist.SignalID]int // faulty-machine var per cone signal
}

// encode returns the CNF and the free-input variable map.
func encode(m *atpg.Model, f fault.Fault) (*cnf, map[netlist.SignalID]int, error) {
	c := m.C
	phi := &cnf{}
	goodVar := make([]int, len(c.Signals))
	for i := range goodVar {
		goodVar[i] = phi.newVar()
	}
	// Fixed inputs as unit clauses; a pinned-X input cannot be encoded
	// two-valued.
	for _, in := range c.Inputs {
		if v, ok := m.Fixed[in]; ok {
			switch v {
			case logic.One:
				phi.add(goodVar[in])
			case logic.Zero:
				phi.add(-goodVar[in])
			default:
				return nil, nil, fmt.Errorf("satpg: input %s pinned to X", c.NameOf(in))
			}
		}
	}
	// Good-machine gate clauses.
	for _, g := range c.Order {
		s := &c.Signals[g]
		xs := make([]int, len(s.Fanin))
		for i, fi := range s.Fanin {
			xs[i] = goodVar[fi]
		}
		if err := phi.gateCNF(s.Op, goodVar[g], xs); err != nil {
			return nil, nil, err
		}
	}

	// Faulty machine: only the fault cone gets its own variables.
	coneSet := map[netlist.SignalID]bool{}
	var stack []netlist.SignalID
	push := func(s netlist.SignalID) {
		if !coneSet[s] {
			coneSet[s] = true
			stack = append(stack, s)
		}
	}
	if f.IsStem() {
		push(f.Signal)
	} else {
		push(f.Gate)
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range c.Fanouts[s] {
			push(fo)
		}
	}
	coneVar := make(map[netlist.SignalID]int, len(coneSet))
	for s := range coneSet {
		coneVar[s] = phi.newVar()
	}
	fvar := func(s netlist.SignalID) int {
		if v, ok := coneVar[s]; ok {
			return v
		}
		return goodVar[s]
	}
	stuckLit := func(v int, stuck logic.V) {
		if stuck == logic.One {
			phi.add(v)
		} else {
			phi.add(-v)
		}
	}
	if f.IsStem() {
		stuckLit(coneVar[f.Signal], f.Stuck)
	}
	for _, g := range c.Order {
		if _, inCone := coneVar[g]; !inCone {
			continue
		}
		if f.IsStem() && g == f.Signal {
			continue // value pinned above
		}
		s := &c.Signals[g]
		xs := make([]int, len(s.Fanin))
		for i, fi := range s.Fanin {
			xs[i] = fvar(fi)
			if !f.IsStem() && f.Gate == g && f.Pin == i {
				// Branch fault: this pin reads the stuck constant.
				sv := phi.newVar()
				stuckLit(sv, f.Stuck)
				xs[i] = sv
			}
		}
		if err := phi.gateCNF(s.Op, coneVar[g], xs); err != nil {
			return nil, nil, err
		}
	}

	// Miter: some observed output in the cone differs.
	var diff []int
	for _, o := range c.Outputs {
		fv, inCone := coneVar[o]
		if !inCone {
			continue
		}
		d := phi.newVar()
		phi.xorCNF(d, goodVar[o], fv)
		diff = append(diff, d)
	}
	if len(diff) == 0 {
		// The fault cannot reach any output: UNSAT by construction.
		phi.add() // empty clause
	} else {
		phi.add(diff...)
	}

	free := make(map[netlist.SignalID]int)
	for _, in := range c.Inputs {
		if _, fixed := m.Fixed[in]; !fixed {
			free[in] = goodVar[in]
		}
	}
	return phi, free, nil
}
