package satpg

// dpll is a compact chronological-backtracking SAT solver with unit
// propagation over occurrence lists — ample for the CNFs test
// generation produces on this suite, and simple enough to trust as a
// cross-check oracle.
type dpll struct {
	nVars   int
	clauses [][]int
	occ     [][]int // literal index -> clause indices (lit>0: 2v, lit<0: 2v+1)

	assign []int8 // 0 unknown, +1 true, -1 false
	trail  []int  // assigned vars in order
	level  []int  // trail length at each decision

	conflicts int
	limit     int
}

func litIdx(lit int) int {
	if lit > 0 {
		return 2 * lit
	}
	return -2*lit + 1
}

func newDPLL(phi *cnf, conflictLimit int) *dpll {
	d := &dpll{
		nVars:   phi.nVars,
		clauses: phi.clauses,
		occ:     make([][]int, 2*phi.nVars+2),
		assign:  make([]int8, phi.nVars+1),
		limit:   conflictLimit,
	}
	for ci, cl := range phi.clauses {
		for _, lit := range cl {
			idx := litIdx(lit)
			d.occ[idx] = append(d.occ[idx], ci)
		}
	}
	return d
}

// value of a literal: +1 satisfied, -1 falsified, 0 unknown.
func (d *dpll) val(lit int) int8 {
	v := d.assign[abs(lit)]
	if v == 0 {
		return 0
	}
	if (lit > 0) == (v > 0) {
		return 1
	}
	return -1
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// push assigns a literal true and propagates; returns false on conflict.
func (d *dpll) push(lit int) bool {
	switch d.val(lit) {
	case 1:
		return true
	case -1:
		return false
	}
	v := abs(lit)
	if lit > 0 {
		d.assign[v] = 1
	} else {
		d.assign[v] = -1
	}
	d.trail = append(d.trail, v)
	// Propagate through clauses watching the falsified literal.
	for _, ci := range d.occ[litIdx(-lit)] {
		cl := d.clauses[ci]
		sat := false
		var unit int
		unknown := 0
		for _, l := range cl {
			switch d.val(l) {
			case 1:
				sat = true
			case 0:
				unknown++
				unit = l
			}
			if sat {
				break
			}
		}
		if sat {
			continue
		}
		if unknown == 0 {
			return false
		}
		if unknown == 1 {
			if !d.push(unit) {
				return false
			}
		}
	}
	return true
}

func (d *dpll) backtrackTo(mark int) {
	for len(d.trail) > mark {
		v := d.trail[len(d.trail)-1]
		d.trail = d.trail[:len(d.trail)-1]
		d.assign[v] = 0
	}
}

// status of the solve.
type status int

const (
	sat status = iota
	unsat
	aborted
)

// solve runs DPLL; on SAT the assignment is available via d.assign.
func (d *dpll) solve() status {
	// Initial unit clauses (and the empty clause).
	for _, cl := range d.clauses {
		if len(cl) == 0 {
			return unsat
		}
		if len(cl) == 1 {
			if !d.push(cl[0]) {
				return unsat
			}
		}
	}
	return d.search()
}

func (d *dpll) search() status {
	v := d.pickVar()
	if v == 0 {
		// All variables assigned... or at least no unassigned var left
		// in any unsatisfied clause; verify.
		if d.allSat() {
			return sat
		}
		return unsat
	}
	for _, sign := range []int{1, -1} {
		mark := len(d.trail)
		if d.push(v * sign) {
			switch st := d.search(); st {
			case sat, aborted:
				return st
			}
		}
		d.backtrackTo(mark)
		d.conflicts++
		if d.conflicts > d.limit {
			return aborted
		}
	}
	return unsat
}

// pickVar chooses the first unassigned variable appearing in an
// unsatisfied clause (0 when none).
func (d *dpll) pickVar() int {
	for _, cl := range d.clauses {
		satC := false
		cand := 0
		for _, l := range cl {
			switch d.val(l) {
			case 1:
				satC = true
			case 0:
				if cand == 0 {
					cand = abs(l)
				}
			}
			if satC {
				break
			}
		}
		if !satC && cand != 0 {
			return cand
		}
	}
	return 0
}

func (d *dpll) allSat() bool {
	for _, cl := range d.clauses {
		ok := false
		for _, l := range cl {
			if d.val(l) == 1 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
