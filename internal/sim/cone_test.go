package sim

import (
	"math/rand"
	"slices"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/netlist"
)

func sigByName(t *testing.T, c *netlist.Circuit) map[string]netlist.SignalID {
	t.Helper()
	m := make(map[string]netlist.SignalID, len(c.Signals))
	for id := range c.Signals {
		m[c.Signals[id].Name] = netlist.SignalID(id)
	}
	return m
}

// refCone is the uncapped map-based reference: the fanout closure of
// root, crossing flip-flop boundaries.
func refCone(c *netlist.Circuit, root netlist.SignalID) map[netlist.SignalID]bool {
	seen := map[netlist.SignalID]bool{root: true}
	stack := []netlist.SignalID{root}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range c.Fanouts[s] {
			if !seen[fo] {
				seen[fo] = true
				stack = append(stack, fo)
			}
		}
	}
	return seen
}

// TestConeIndexGoldenS27 pins the exact influence-cone sets of
// representative s27 signals, derived by hand from the netlist: the
// closure crosses flip-flops (a corrupted capture resurfaces on Q), so
// the feedback loops G10→G5→G11 and G13→G7→G12 pull most of the
// circuit into most cones.
func TestConeIndexGoldenS27(t *testing.T) {
	c := bench.MustS27()
	ids := sigByName(t, c)
	idx := NewConeIndex(c, 0)

	golden := map[string][]string{
		// PO with no fanout: the cone is the root alone.
		"G17": {"G17"},
		// G0 feeds G14, and from there the G8/G9/G11 cluster — but the
		// G12/G13/G7 loop is only reachable from G1, G2 or G7.
		"G0": {"G0", "G14", "G8", "G10", "G15", "G16", "G9", "G11", "G17", "G6", "G5"},
		// G1 enters through G12 and reaches everything except G14 (whose
		// only fanin is G0) and the other PIs.
		"G1": {"G1", "G5", "G6", "G7", "G8", "G9", "G10", "G11", "G12", "G13", "G15", "G16", "G17"},
		"G3": {"G3", "G16", "G9", "G11", "G17", "G6", "G10", "G8", "G15", "G5"},
		"G13": {"G13", "G7", "G12", "G15", "G9", "G11", "G17", "G6", "G10", "G8",
			"G16", "G5"},
	}
	for name, wantNames := range golden {
		root := ids[name]
		want := make([]netlist.SignalID, 0, len(wantNames))
		for _, n := range wantNames {
			id, ok := ids[n]
			if !ok {
				t.Fatalf("golden set for %s names unknown signal %s", name, n)
			}
			want = append(want, id)
		}
		slices.Sort(want)
		if got := idx.Size(root); got != len(want) {
			t.Errorf("Size(%s) = %d, want %d", name, got, len(want))
		}
		got := slices.Clone(idx.Members(root))
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Errorf("Members(%s) = %v, want %v", name, got, want)
		}
	}
}

// TestConeIndexMatchesReference cross-checks every signal's cone set,
// per-kind views and topological gate order against the uncapped
// reference closure, on s27 and randomized sequential circuits.
func TestConeIndexMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	circuits := []*netlist.Circuit{bench.MustS27()}
	for trial := 0; trial < 4; trial++ {
		circuits = append(circuits, gen.Generate(gen.Profile{
			Name: "cone", PIs: 4 + r.Intn(5), POs: 3 + r.Intn(4),
			FFs: 4 + r.Intn(10), Gates: 60 + r.Intn(120),
		}, int64(300+trial)))
	}
	for _, c := range circuits {
		idx := NewConeIndex(c, 0)
		rank := make(map[netlist.SignalID]int, len(c.Order))
		for i, g := range c.Order {
			rank[g] = i
		}
		for id := range c.Signals {
			s := netlist.SignalID(id)
			ref := refCone(c, s)
			if len(ref) > idx.Cap() {
				if idx.Size(s) != -1 || len(idx.Members(s)) != 0 {
					t.Errorf("%s/%s: closure %d > cap but not marked overflowed",
						c.Name, c.Signals[id].Name, len(ref))
				}
				continue
			}
			if got := idx.Size(s); got != len(ref) {
				t.Errorf("%s/%s: Size = %d, want %d", c.Name, c.Signals[id].Name, got, len(ref))
			}
			var wantGates, wantFFs, wantOuts int
			for m := range ref {
				if !slices.Contains(idx.Members(s), m) {
					t.Errorf("%s/%s: member %s missing", c.Name, c.Signals[id].Name, c.Signals[m].Name)
				}
				if c.IsGate(m) {
					wantGates++
				}
				if c.IsFF(m) {
					wantFFs++
				}
				if slices.Contains(c.Outputs, m) {
					wantOuts++
				}
			}
			gates := idx.Gates(s)
			if len(gates) != wantGates || len(idx.FFs(s)) != wantFFs || len(idx.Outs(s)) != wantOuts {
				t.Errorf("%s/%s: per-kind view sizes gates=%d ffs=%d outs=%d, want %d/%d/%d",
					c.Name, c.Signals[id].Name, len(gates), len(idx.FFs(s)), len(idx.Outs(s)),
					wantGates, wantFFs, wantOuts)
			}
			for i := 1; i < len(gates); i++ {
				if rank[gates[i-1]] >= rank[gates[i]] {
					t.Errorf("%s/%s: Gates not in topological order", c.Name, c.Signals[id].Name)
					break
				}
			}
			for _, fi := range idx.FFs(s) {
				if !ref[c.FFs[fi]] {
					t.Errorf("%s/%s: FFs lists non-member", c.Name, c.Signals[id].Name)
				}
			}
			for _, oi := range idx.Outs(s) {
				if !ref[c.Outputs[oi]] {
					t.Errorf("%s/%s: Outs lists non-member", c.Name, c.Signals[id].Name)
				}
			}
		}
	}
}

// TestConeIndexCap pins the overflow contract for small caps: signals
// whose closure exceeds the cap store nothing, the rest are exact.
func TestConeIndexCap(t *testing.T) {
	c := bench.MustS27()
	idx := NewConeIndex(c, 4)
	if idx.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", idx.Cap())
	}
	for id := range c.Signals {
		s := netlist.SignalID(id)
		ref := refCone(c, s)
		switch {
		case len(ref) > 4:
			if idx.Size(s) != -1 || len(idx.Members(s)) != 0 {
				t.Errorf("%s: closure %d not marked overflowed at cap 4", c.Signals[id].Name, len(ref))
			}
		default:
			if idx.Size(s) != len(ref) {
				t.Errorf("%s: Size = %d, want %d", c.Signals[id].Name, idx.Size(s), len(ref))
			}
		}
	}
}

func TestConeRoot(t *testing.T) {
	c := bench.MustS27()
	ids := sigByName(t, c)
	stem := Inject{Signal: ids["G8"], Gate: netlist.None, Pin: -1}
	if got := ConeRoot(stem); got != ids["G8"] {
		t.Errorf("stem ConeRoot = %v, want G8", got)
	}
	branch := Inject{Signal: ids["G14"], Gate: ids["G8"], Pin: 0}
	if got := ConeRoot(branch); got != ids["G8"] {
		t.Errorf("branch ConeRoot = %v, want consuming gate G8", got)
	}
}
