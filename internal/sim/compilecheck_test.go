package sim

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestCompileCheckedRejectsUnknownOp pins the compile-time opcode
// validation: a gate whose operator is outside the logic.Op set fails at
// CompileChecked (with the gate named in the error) instead of panicking
// mid-evaluation, and the panicking Compile wrapper surfaces the same
// error.
func TestCompileCheckedRejectsUnknownOp(t *testing.T) {
	c := netlist.New("badop")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	g, err := c.AddGate("g", logic.OpAnd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput(g); err != nil {
		t.Fatal(err)
	}
	c.MustFinalize()

	// Corrupt the operator the way only externally-constructed Signals
	// could: the netlist builders never produce an invalid op.
	c.Signals[g].Op = logic.Op(250)

	if _, err := CompileChecked(c); err == nil {
		t.Fatal("CompileChecked accepted an unknown op")
	} else if !strings.Contains(err.Error(), `"g"`) {
		t.Errorf("error does not name the offending gate: %v", err)
	}

	defer func() {
		if recover() == nil {
			t.Error("Compile did not panic on an unknown op")
		}
	}()
	Compile(c)
}

// TestCompileCheckedValid is the complement: every defined operator
// compiles cleanly.
func TestCompileCheckedValid(t *testing.T) {
	c := netlist.New("goodops")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	for _, op := range []logic.Op{
		logic.OpBuf, logic.OpNot, logic.OpAnd, logic.OpNand,
		logic.OpOr, logic.OpNor, logic.OpXor, logic.OpXnor,
	} {
		fanin := []netlist.SignalID{a, b}
		if op == logic.OpBuf || op == logic.OpNot {
			fanin = fanin[:1]
		}
		g, err := c.AddGate("g_"+op.String(), op, fanin...)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.MarkOutput(g); err != nil {
			t.Fatal(err)
		}
	}
	c.MustFinalize()
	if _, err := CompileChecked(c); err != nil {
		t.Fatalf("CompileChecked rejected a valid circuit: %v", err)
	}
}
