package sim

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// randInjections builds a random lane-injection set over the circuit:
// stem faults on arbitrary signals and branch faults on valid
// (gate/FF, pin) pairs, several sharing sites and lanes so the merge
// logic is exercised.
func randInjections(r *rand.Rand, c *netlist.Circuit, n int) []LaneInject {
	var sites []netlist.SignalID
	for id := range c.Signals {
		sites = append(sites, netlist.SignalID(id))
	}
	injs := make([]LaneInject, 0, n)
	for len(injs) < n {
		lane := uint(1 + r.Intn(63))
		val := logic.V(r.Intn(2))
		if r.Intn(8) == 0 {
			val = logic.X
		}
		s := sites[r.Intn(len(sites))]
		sig := &c.Signals[s]
		if len(sig.Fanin) > 0 && r.Intn(2) == 0 {
			pin := r.Intn(len(sig.Fanin))
			injs = append(injs, LaneInject{
				Inject: Inject{Signal: sig.Fanin[pin], Gate: s, Pin: pin, Value: val},
				Lane:   lane,
			})
		} else {
			injs = append(injs, LaneInject{
				Inject: Inject{Signal: s, Gate: netlist.None, Pin: -1, Value: val},
				Lane:   lane,
			})
		}
	}
	return injs
}

func randWord(r *rand.Rand) logic.Word {
	ones := r.Uint64()
	zeros := r.Uint64() &^ ones
	return logic.Word{Ones: ones, Zeros: zeros}
}

// TestCompiledMatchesPackedComb cross-checks the compiled combinational
// evaluator against the map-based reference on randomized circuits,
// inputs and injection sets.
func TestCompiledMatchesPackedComb(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		c := gen.Generate(gen.Profile{
			Name: "xcheck", PIs: 4 + r.Intn(8), POs: 3 + r.Intn(6),
			FFs: 5 + r.Intn(12), Gates: 60 + r.Intn(200),
		}, int64(100+trial))
		ref := NewPackedComb(c)
		cmp := NewCompiledComb(c)
		for round := 0; round < 6; round++ {
			injs := randInjections(r, c, r.Intn(64))
			ref.SetInjections(injs)
			cmp.SetInjections(injs)
			ref.ClearX()
			cmp.ClearX()
			for _, in := range c.Inputs {
				w := randWord(r)
				ref.Vals[in] = w
				cmp.Vals[in] = w
			}
			for _, ff := range c.FFs {
				w := randWord(r)
				ref.Vals[ff] = w
				cmp.Vals[ff] = w
			}
			ref.Eval()
			cmp.Eval()
			for id := range c.Signals {
				if !ref.Vals[id].Eq(cmp.Vals[id]) {
					t.Fatalf("trial %d round %d: signal %s: packed %+v compiled %+v",
						trial, round, c.NameOf(netlist.SignalID(id)), ref.Vals[id], cmp.Vals[id])
				}
			}
			for _, ff := range c.FFs {
				if a, b := ref.FFNext(ff), cmp.FFNext(ff); !a.Eq(b) {
					t.Fatalf("trial %d round %d: FFNext(%s): packed %+v compiled %+v",
						trial, round, c.NameOf(ff), a, b)
				}
			}
		}
	}
}

// TestCompiledSeqMatchesPackedSeq runs multi-cycle sequences with
// injection swaps mid-stream on both sequential simulators.
func TestCompiledSeqMatchesPackedSeq(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		c := gen.Generate(gen.Profile{
			Name: "seqxcheck", PIs: 5, POs: 4, FFs: 8 + r.Intn(10), Gates: 120,
		}, int64(300+trial))
		ref := NewPackedSeq(c)
		cmp := NewCompiledSeq(c)
		injs := randInjections(r, c, 40)
		ref.SetInjections(injs)
		cmp.SetInjections(injs)
		ref.ResetX()
		cmp.ResetX()
		pi := make([]logic.Word, len(c.Inputs))
		var poA, poB []logic.Word
		for cyc := 0; cyc < 40; cyc++ {
			if cyc == 20 {
				// Swap the fault set mid-sequence: state carries over.
				injs = randInjections(r, c, 30)
				ref.SetInjections(injs)
				cmp.SetInjections(injs)
			}
			for i := range pi {
				pi[i] = logic.WordAll(logic.V(r.Intn(2)))
			}
			poA = ref.Cycle(pi, poA)
			poB = cmp.Cycle(pi, poB)
			for o := range poA {
				if !poA[o].Eq(poB[o]) {
					t.Fatalf("trial %d cycle %d output %d: packed %+v compiled %+v",
						trial, cyc, o, poA[o], poB[o])
				}
			}
			for i := range c.FFs {
				if a, b := ref.StateWord(i), cmp.StateWord(i); !a.Eq(b) {
					t.Fatalf("trial %d cycle %d FF %d: state diverged", trial, cyc, i)
				}
			}
		}
	}
}

// TestCompiledSharedProgram pins that evaluators sharing one Program do
// not interfere — the property the parallel workers rely on.
func TestCompiledSharedProgram(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	c := gen.Generate(gen.Profile{Name: "share", PIs: 5, POs: 4, FFs: 6, Gates: 80}, 7)
	p := Compile(c)
	a := NewCompiledCombFrom(p)
	b := NewCompiledCombFrom(p)
	injs := randInjections(r, c, 20)
	a.SetInjections(injs)
	// b keeps no injections: must behave like a fault-free evaluator.
	a.ClearX()
	b.ClearX()
	for _, in := range c.Inputs {
		w := randWord(r)
		a.Vals[in] = w
		b.Vals[in] = w
	}
	for _, ff := range c.FFs {
		a.Vals[ff] = logic.WordAll(logic.Zero)
		b.Vals[ff] = logic.WordAll(logic.Zero)
	}
	a.Eval()
	b.Eval()
	ref := NewPackedComb(c)
	ref.ClearX()
	for _, in := range c.Inputs {
		ref.Vals[in] = b.Vals[in]
	}
	for _, ff := range c.FFs {
		ref.Vals[ff] = logic.WordAll(logic.Zero)
	}
	ref.Eval()
	for id := range c.Signals {
		if !ref.Vals[id].Eq(b.Vals[id]) {
			t.Fatalf("shared-program evaluator b polluted at signal %d", id)
		}
	}
}

func BenchmarkPackedVsCompiledEval(b *testing.B) {
	c := gen.Generate(gen.Profile{Name: "evbench", PIs: 30, POs: 20, FFs: 100, Gates: 3000}, 9)
	r := rand.New(rand.NewSource(51))
	injs := randInjections(r, c, 63)
	pi := make([]logic.Word, len(c.Inputs))
	for i := range pi {
		pi[i] = randWord(r)
	}
	b.Run("map", func(b *testing.B) {
		e := NewPackedComb(c)
		e.SetInjections(injs)
		for i := 0; i < b.N; i++ {
			e.ClearX()
			for j, in := range c.Inputs {
				e.Vals[in] = pi[j]
			}
			e.Eval()
		}
	})
	b.Run("compiled", func(b *testing.B) {
		e := NewCompiledComb(c)
		e.SetInjections(injs)
		for i := 0; i < b.N; i++ {
			e.ClearX()
			for j, in := range c.Inputs {
				e.Vals[in] = pi[j]
			}
			e.Eval()
		}
	})
}
