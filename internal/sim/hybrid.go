package sim

import (
	"math"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// DeltaSeq is the fast path of the hybrid fault evaluator: it simulates
// faults one at a time against a shared fault-free baseline (a compiled
// machine), propagating only the DIFFERENCE between the faulty and the
// fault-free circuit. Per cycle and per fault the work is proportional
// to the fault's actual divergence — the set of nets whose faulty value
// differs from the baseline — not to the circuit size, so quiet faults
// and faults detected early cost almost nothing.
//
// The per-cycle divergence of a fault whose static influence cone (see
// ConeIndex) holds at most thr signals can never evaluate more than thr
// gates, so small-cone faults are guaranteed residents of this path.
// Faults with larger cones are admitted optimistically: the moment a
// single cycle evaluates more than thr gates the fault is abandoned
// (reported as overflowed) and the caller re-simulates it on the
// compiled 64-lane sweep, which is cheaper for broadly diverging
// faults. The overflow decision depends only on (fault, sequence,
// initial state), never on batching or worker count, so hybrid results
// are byte-identical to the compiled backend at any parallelism.
//
// Detection semantics match the packed simulators exactly: a fault is
// detected at the first cycle where some primary output carries a
// definite value in the baseline and the opposite definite value in the
// faulty machine; X never detects.
type DeltaSeq struct {
	p    *Program
	base *CompiledSeq

	// Per-(fault,cycle) epoch-stamped scratch: fv[s] is the faulty value
	// of signal s where fvEp[s] matches the current epoch, otherwise the
	// faulty machine agrees with the baseline.
	fv    []logic.V
	fvEp  []uint32
	inQ   []uint32 // gate already scheduled this epoch
	capEp []uint32 // FF (by FFs index) already in the capture list
	epoch uint32

	buckets  [][]netlist.SignalID // level-indexed event queue
	loLvl    int                  // occupied level range of buckets
	hiLvl    int
	pending  int     // scheduled-but-undrained gate count
	capture  []int32 // FFs (by FFs index) whose D input diverged
	maxLevel int

	ffIdx  []int32 // signal -> index into C.FFs, or -1
	outIdx []int32 // signal -> index into C.Outputs, or -1

	detected bool
	evals    int

	poW    []logic.Word
	faults []deltaFault
	live   []*deltaFault
}

// diffEntry is one flip-flop whose faulty captured state differs from
// the baseline's: the sparse state diff carried between cycles.
type diffEntry struct {
	ff int32 // index into C.FFs
	v  logic.V
}

type deltaFault struct {
	inj  Inject
	idx  int // caller slot
	diff []diffEntry
	next []diffEntry
}

// Step outcome of one fault-cycle.
const (
	stepLive = iota
	stepDetected
	stepOverflowed
)

// NewDeltaSeq builds a delta simulator sharing an existing compiled
// program. One DeltaSeq serves any number of Run calls; it is not safe
// for concurrent use (parallel fault-simulation workers own one each).
func NewDeltaSeq(p *Program) *DeltaSeq {
	c := p.C
	maxLevel := 0
	for _, l := range c.Level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	d := &DeltaSeq{
		p:        p,
		base:     NewCompiledSeqFrom(p),
		fv:       make([]logic.V, len(c.Signals)),
		fvEp:     make([]uint32, len(c.Signals)),
		inQ:      make([]uint32, len(c.Signals)),
		capEp:    make([]uint32, len(c.FFs)),
		buckets:  make([][]netlist.SignalID, maxLevel+1),
		maxLevel: maxLevel,
		ffIdx:    make([]int32, len(c.Signals)),
		outIdx:   make([]int32, len(c.Signals)),
	}
	for i := range d.ffIdx {
		d.ffIdx[i], d.outIdx[i] = -1, -1
	}
	for i, ff := range c.FFs {
		d.ffIdx[ff] = int32(i)
	}
	for i, o := range c.Outputs {
		d.outIdx[o] = int32(i)
	}
	return d
}

// bump advances the scratch epoch, clearing the stamp arrays on the
// (effectively unreachable) wrap so a stale stamp can never alias.
func (d *DeltaSeq) bump() {
	if d.epoch == math.MaxUint32 {
		clear(d.fvEp)
		clear(d.inQ)
		clear(d.capEp)
		d.epoch = 0
	}
	d.epoch++
}

// val reads signal s of the faulty machine: its stamped delta value, or
// the baseline where the machines agree.
func (d *DeltaSeq) val(s netlist.SignalID) logic.V {
	if d.fvEp[s] == d.epoch {
		return d.fv[s]
	}
	return d.base.Vals[s].Get(0)
}

// schedule queues gate g for evaluation this cycle.
func (d *DeltaSeq) schedule(g netlist.SignalID) {
	if d.inQ[g] == d.epoch {
		return
	}
	d.inQ[g] = d.epoch
	lvl := d.p.C.Level[g]
	d.buckets[lvl] = append(d.buckets[lvl], g)
	if d.pending == 0 || lvl < d.loLvl {
		d.loLvl = lvl
	}
	if d.pending == 0 || lvl > d.hiLvl {
		d.hiLvl = lvl
	}
	d.pending++
}

// put stamps the faulty value of s and, when it diverges from the
// baseline, schedules s's consumers and checks detection at primary
// outputs. Divergence includes known-vs-X differences (they propagate
// but cannot detect).
func (d *DeltaSeq) put(s netlist.SignalID, v logic.V) {
	if d.fvEp[s] == d.epoch && d.fv[s] == v {
		return
	}
	d.fvEp[s] = d.epoch
	d.fv[s] = v
	vb := d.base.Vals[s].Get(0)
	if v == vb {
		return
	}
	if oi := d.outIdx[s]; oi >= 0 && vb.Known() && v.Known() {
		d.detected = true
		return
	}
	c := d.p.C
	for _, fo := range c.Fanouts[s] {
		if fi := d.ffIdx[fo]; fi >= 0 {
			if d.capEp[fi] != d.epoch {
				d.capEp[fi] = d.epoch
				d.capture = append(d.capture, fi)
			}
			continue
		}
		d.schedule(fo)
	}
}

// abort discards the in-flight cycle state after a detection or an
// overflow: the fault leaves the delta path, so nothing needs to stay
// consistent.
func (d *DeltaSeq) abort() {
	if d.pending > 0 {
		for lvl := d.loLvl; lvl <= d.hiLvl; lvl++ {
			d.buckets[lvl] = d.buckets[lvl][:0]
		}
		d.pending = 0
	}
	d.capture = d.capture[:0]
}

// step advances one fault by one cycle against the already-advanced
// baseline. thr is the per-cycle gate-evaluation budget.
func (d *DeltaSeq) step(f *deltaFault, thr int) int {
	c := d.p.C
	// Quiet-cycle fast path: a stem fault with no carried state diff and
	// a baseline that already agrees with the forced value cannot diverge
	// anywhere this cycle — the whole machine equals the baseline, so the
	// captured state does too.
	if f.inj.IsStem() && len(f.diff) == 0 && d.base.Vals[f.inj.Signal].Get(0) == f.inj.Value {
		return stepLive
	}
	d.bump()
	d.detected = false
	d.evals = 0
	d.pending = 0
	inj := &f.inj
	stem := inj.IsStem()

	// Present the cycle-start divergences: the sparse faulty-state diff
	// and the fault site itself. A stem fault pins its signal's value
	// outright (for FF sites that overrides any captured diff).
	if stem {
		d.put(inj.Signal, inj.Value)
	}
	for _, e := range f.diff {
		ff := c.FFs[e.ff]
		if stem && inj.Signal == ff {
			continue
		}
		d.put(ff, e.v)
	}
	if !stem && !c.IsFF(inj.Gate) {
		// A branch fault on a gate pin re-evaluates its consumer every
		// cycle: the override may diverge the gate even when no input
		// changed. (FF D-pin branches act at capture below.)
		d.schedule(inj.Gate)
	}
	if d.detected {
		d.abort()
		return stepDetected
	}

	// Drain the event queue in level order.
	var buf [12]logic.V
	for lvl := d.loLvl; lvl <= d.hiLvl && d.pending > 0; lvl++ {
		bucket := d.buckets[lvl]
		for i := 0; i < len(bucket); i++ {
			g := bucket[i]
			s := &c.Signals[g]
			in := buf[:0]
			for pin, fan := range s.Fanin {
				v := d.val(fan)
				if !stem && inj.Gate == g && inj.Pin == pin {
					v = inj.Value
				}
				in = append(in, v)
			}
			v := s.Op.Eval(in)
			if stem && inj.Signal == g {
				v = inj.Value
			}
			d.evals++
			d.put(g, v)
			if d.detected {
				d.pending -= len(bucket) - i
				d.buckets[lvl] = d.buckets[lvl][:0]
				d.abort()
				return stepDetected
			}
		}
		d.pending -= len(bucket)
		d.buckets[lvl] = d.buckets[lvl][:0]
		if d.evals > thr {
			d.abort()
			return stepOverflowed
		}
	}

	// Capture: rebuild the state diff for the next cycle from the FFs
	// whose D input diverged this cycle (plus a D-pin branch fault's
	// victim, which the override may diverge on its own).
	if !stem && c.IsFF(inj.Gate) && inj.Pin == 0 {
		if fi := d.ffIdx[inj.Gate]; fi >= 0 && d.capEp[fi] != d.epoch {
			d.capEp[fi] = d.epoch
			d.capture = append(d.capture, fi)
		}
	}
	f.next = f.next[:0]
	for _, fi := range d.capture {
		ff := c.FFs[fi]
		dv := d.val(c.Signals[ff].Fanin[0])
		if !stem && inj.Gate == ff && inj.Pin == 0 {
			dv = inj.Value
		}
		if dv != d.base.StateWord(int(fi)).Get(0) {
			f.next = append(f.next, diffEntry{ff: fi, v: dv})
		}
	}
	d.capture = d.capture[:0]
	f.diff, f.next = f.next, f.diff
	return stepLive
}

// Run simulates every injection in injs (one fault each) over the
// broadcast stimulus seqW, against an initial state (nil means all-X,
// one value per FF otherwise, applied to baseline and faulty machines
// alike). It writes the first detection cycle (or -1) into det[i] and
// sets over[i] for faults abandoned to the full-width sweep; det
// entries of overflowed faults are meaningless. det and over must have
// at least len(injs) entries. It returns the number of baseline cycles
// executed — the loop ends early once every fault is detected or
// overflowed, which cannot change any verdict.
func (d *DeltaSeq) Run(injs []Inject, seqW [][]logic.Word, initState []logic.V, thr int, det []int, over []bool) int {
	d.base.SetInjections(nil)
	d.base.ResetX()
	for i, v := range initState {
		d.base.SetStateWord(i, logic.WordAll(v))
	}
	for len(d.faults) < len(injs) {
		d.faults = append(d.faults, deltaFault{})
	}
	d.live = d.live[:0]
	for i := range injs {
		f := &d.faults[i]
		f.inj = injs[i]
		f.idx = i
		f.diff = f.diff[:0]
		det[i] = -1
		over[i] = false
		d.live = append(d.live, f)
	}
	ran := 0
	for cyc := 0; cyc < len(seqW) && len(d.live) > 0; cyc++ {
		d.poW = d.base.Cycle(seqW[cyc], d.poW)
		ran++
		for li := 0; li < len(d.live); {
			f := d.live[li]
			switch d.step(f, thr) {
			case stepDetected:
				det[f.idx] = cyc
			case stepOverflowed:
				over[f.idx] = true
			default:
				li++
				continue
			}
			last := len(d.live) - 1
			d.live[li] = d.live[last]
			d.live = d.live[:last]
		}
	}
	return ran
}
