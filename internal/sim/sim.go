// Package sim evaluates circuits under three-valued logic: levelized
// combinational evaluation, multi-cycle sequential simulation, and
// 64-lane packed variants used by the parallel-fault simulator.
//
// Fault injection is expressed with Inject values so the fault package
// can map its stuck-at fault sites onto the simulator without a
// dependency cycle.
package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// Inject describes a stuck-at override applied during evaluation.
//
// A stem fault (Gate == netlist.None) forces the value of Signal itself,
// affecting every consumer. A branch fault (Gate != None) forces the
// value seen by one consumer pin only: gate Gate reads Value on fanin
// position Pin instead of the true value of Signal.
type Inject struct {
	Signal netlist.SignalID // faulty net (stem faults) or branch source
	Gate   netlist.SignalID // consuming gate or FF for branch faults; None for stem
	Pin    int              // fanin position within Gate; -1 for stem
	Value  logic.V          // the stuck value
}

// IsStem reports whether the injection is a stem fault.
func (in Inject) IsStem() bool { return in.Gate == netlist.None }

// Comb is a reusable levelized combinational evaluator.
type Comb struct {
	C    *netlist.Circuit
	Vals []logic.V // indexed by SignalID; caller presets PIs and FF outputs
}

// NewComb returns an evaluator with all values X.
func NewComb(c *netlist.Circuit) *Comb {
	return &Comb{C: c, Vals: make([]logic.V, len(c.Signals))}
}

// ClearX resets every signal value to X.
func (e *Comb) ClearX() {
	for i := range e.Vals {
		e.Vals[i] = logic.X
	}
}

// Eval evaluates all gates in topological order. PIs and FF outputs must
// already be set in Vals. inj may be nil for fault-free evaluation.
func (e *Comb) Eval(inj *Inject) {
	c := e.C
	if inj != nil && inj.IsStem() && !c.IsGate(inj.Signal) {
		e.Vals[inj.Signal] = inj.Value
	}
	var buf [8]logic.V
	for _, g := range c.Order {
		s := &c.Signals[g]
		in := buf[:0]
		for pin, f := range s.Fanin {
			v := e.Vals[f]
			if inj != nil && !inj.IsStem() && inj.Gate == g && inj.Pin == pin {
				v = inj.Value
			}
			in = append(in, v)
		}
		v := s.Op.Eval(in)
		if inj != nil && inj.IsStem() && inj.Signal == g {
			v = inj.Value
		}
		e.Vals[g] = v
	}
}

// FFNext returns the value presented at the D pin of flip-flop ff,
// honouring a branch injection on that pin.
func (e *Comb) FFNext(ff netlist.SignalID, inj *Inject) logic.V {
	if inj != nil && !inj.IsStem() && inj.Gate == ff && inj.Pin == 0 {
		return inj.Value
	}
	return e.Vals[e.C.Signals[ff].Fanin[0]]
}

// Outputs copies the current primary-output values into dst (allocating
// when dst is nil or too short) and returns it.
func (e *Comb) Outputs(dst []logic.V) []logic.V {
	if cap(dst) < len(e.C.Outputs) {
		dst = make([]logic.V, len(e.C.Outputs))
	}
	dst = dst[:len(e.C.Outputs)]
	for i, o := range e.C.Outputs {
		dst[i] = e.Vals[o]
	}
	return dst
}

// Seq is a cycle-accurate sequential simulator holding flip-flop state
// between calls.
type Seq struct {
	Comb
	state []logic.V // per c.FFs index
}

// NewSeq returns a sequential simulator with all state X.
func NewSeq(c *netlist.Circuit) *Seq {
	s := &Seq{Comb: *NewComb(c), state: make([]logic.V, len(c.FFs))}
	s.ResetX()
	return s
}

// ResetX sets every flip-flop to X (power-on state).
func (s *Seq) ResetX() {
	for i := range s.state {
		s.state[i] = logic.X
	}
}

// SetState overwrites the flip-flop state (one value per c.FFs entry).
func (s *Seq) SetState(st []logic.V) {
	copy(s.state, st)
}

// State returns the current flip-flop state (aliased; copy to keep).
func (s *Seq) State() []logic.V { return s.state }

// Cycle applies one clock cycle: load pi (one value per c.Inputs entry),
// evaluate the combinational logic, capture the new state, and return the
// primary output values observed before the clock edge. po is reused
// storage as in Comb.Outputs.
func (s *Seq) Cycle(pi []logic.V, inj *Inject, po []logic.V) []logic.V {
	c := s.C
	for i, in := range c.Inputs {
		s.Vals[in] = pi[i]
	}
	for i, ff := range c.FFs {
		s.Vals[ff] = s.state[i]
	}
	s.Eval(inj)
	po = s.Outputs(po)
	for i, ff := range c.FFs {
		s.state[i] = s.FFNext(ff, inj)
	}
	return po
}
