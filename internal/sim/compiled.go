package sim

import (
	"fmt"
	"unsafe"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// This file is the compiled packed evaluator: the circuit is levelized
// once into a flat instruction stream, and the per-eval injection maps
// of PackedComb are replaced by dense per-signal patches built at
// SetInjections time. Two things make the inner loop branch-light:
//
//   - gate evaluation walks a contiguous []instr / flat fanin slice
//     instead of chasing per-signal Fanin slices through c.Signals;
//   - an injection is pre-merged into a three-mask patch (clear/ones/
//     zeros), so applying any number of same-site lane injections is
//     four bit operations instead of a per-lane Set loop, and the
//     "does this signal carry an injection" test is a dense slice load
//     instead of a map lookup.
//
// PackedComb stays as the map-based reference implementation; the
// cross-check tests in compiled_test.go and internal/faultsim pin the
// two to identical outputs.

// instr is one compiled gate evaluation: op applied to the fanin IDs
// in Program.fanin[inLo:inHi], result stored at signal out.
type instr struct {
	op         logic.Op
	inLo, inHi int32
	out        netlist.SignalID
}

// Program is the compiled, immutable form of a circuit's combinational
// logic. One Program can back any number of CompiledComb/CompiledSeq
// instances concurrently — parallel fault-simulation workers compile
// once and share it.
type Program struct {
	C      *netlist.Circuit
	code   []instr
	fanin  []netlist.SignalID
	isGate []bool // dense IsGate, avoiding Signals loads on the stem path
}

// SizeBytes estimates the program's resident footprint — the
// instruction stream, the flattened fanin table and the gate mask —
// for byte-budgeted caches. The backing circuit is not counted; its
// owner accounts for it.
func (p *Program) SizeBytes() int64 {
	return int64(unsafe.Sizeof(*p)) +
		int64(cap(p.code))*int64(unsafe.Sizeof(instr{})) +
		int64(cap(p.fanin))*int64(unsafe.Sizeof(netlist.SignalID(0))) +
		int64(cap(p.isGate))
}

// Compile levelizes c (using the topological order Finalize computed)
// into a flat instruction stream. It panics when the circuit carries an
// unknown gate operator; circuits built through the netlist package
// cannot (logic.ParseOp and the generators only produce valid ops), so
// callers holding externally-constructed Signals should prefer
// CompileChecked.
func Compile(c *netlist.Circuit) *Program {
	p, err := CompileChecked(c)
	if err != nil {
		panic(err)
	}
	return p
}

// CompileChecked is Compile with opcode validation: any gate whose
// operator is outside the defined logic.Op set yields an error here, at
// compile time, so the instruction-stream evaluators never meet an
// unknown op mid-evaluation (the runtime panic in evalDirect is an
// unreachable invariant, not an error path).
func CompileChecked(c *netlist.Circuit) (*Program, error) {
	for _, g := range c.Order {
		if op := c.Signals[g].Op; !op.Valid() {
			return nil, fmt.Errorf("sim: compile %s: gate %q has unknown op %v",
				c.Name, c.Signals[g].Name, op)
		}
	}
	p := &Program{
		C:      c,
		code:   make([]instr, 0, len(c.Order)),
		isGate: make([]bool, len(c.Signals)),
	}
	nFanin := 0
	for _, g := range c.Order {
		nFanin += len(c.Signals[g].Fanin)
	}
	p.fanin = make([]netlist.SignalID, 0, nFanin)
	for _, g := range c.Order {
		s := &c.Signals[g]
		lo := int32(len(p.fanin))
		p.fanin = append(p.fanin, s.Fanin...)
		p.code = append(p.code, instr{op: s.Op, inLo: lo, inHi: int32(len(p.fanin)), out: g})
	}
	for id := range c.Signals {
		p.isGate[id] = c.Signals[id].Kind == netlist.KindGate
	}
	return p, nil
}

// patch is the merged effect of every stem injection on one signal (or
// every branch injection on one pin): lanes in clear are forced, with
// ones/zeros carrying the forced plane bits.
type patch struct {
	clear, ones, zeros uint64
}

func (p *patch) add(lane uint, v logic.V) {
	bit := uint64(1) << lane
	p.clear |= bit
	p.ones &^= bit
	p.zeros &^= bit
	switch v {
	case logic.One:
		p.ones |= bit
	case logic.Zero:
		p.zeros |= bit
	}
}

func (p patch) apply(w logic.Word) logic.Word {
	return logic.Word{
		Ones:  w.Ones&^p.clear | p.ones,
		Zeros: w.Zeros&^p.clear | p.zeros,
	}
}

// pinPatch is a branch patch on one fanin pin of a gate or flip-flop.
type pinPatch struct {
	pin int
	patch
}

// CompiledComb is the compiled analogue of PackedComb: same lane
// semantics, dense injection bookkeeping.
type CompiledComb struct {
	P    *Program
	Vals []logic.Word

	stem    []patch      // per signal; clear == 0 means no stem injection
	branch  [][]pinPatch // per consuming gate/FF; empty means none
	touched []netlist.SignalID
}

// NewCompiledComb compiles c and returns an evaluator with all lanes X.
func NewCompiledComb(c *netlist.Circuit) *CompiledComb {
	return NewCompiledCombFrom(Compile(c))
}

// NewCompiledCombFrom returns an evaluator sharing an existing program.
func NewCompiledCombFrom(p *Program) *CompiledComb {
	return &CompiledComb{
		P:      p,
		Vals:   make([]logic.Word, len(p.C.Signals)),
		stem:   make([]patch, len(p.C.Signals)),
		branch: make([][]pinPatch, len(p.C.Signals)),
	}
}

// SetInjections installs the per-lane fault set for subsequent Eval
// calls, replacing any previous set. Lane 0 should be left fault-free
// to serve as the reference machine.
func (e *CompiledComb) SetInjections(injs []LaneInject) {
	for _, t := range e.touched {
		e.stem[t] = patch{}
		e.branch[t] = e.branch[t][:0]
	}
	e.touched = e.touched[:0]
	for _, li := range injs {
		if li.IsStem() {
			if e.stem[li.Signal].clear == 0 && len(e.branch[li.Signal]) == 0 {
				e.touched = append(e.touched, li.Signal)
			}
			e.stem[li.Signal].add(li.Lane, li.Value)
			continue
		}
		if e.stem[li.Gate].clear == 0 && len(e.branch[li.Gate]) == 0 {
			e.touched = append(e.touched, li.Gate)
		}
		pps := e.branch[li.Gate]
		merged := false
		for i := range pps {
			if pps[i].pin == li.Pin {
				pps[i].add(li.Lane, li.Value)
				merged = true
				break
			}
		}
		if !merged {
			pp := pinPatch{pin: li.Pin}
			pp.add(li.Lane, li.Value)
			e.branch[li.Gate] = append(pps, pp)
		}
	}
}

// Words returns the per-signal value slice (aliased, indexed by
// SignalID), mirroring PackedComb.Words.
func (e *CompiledComb) Words() []logic.Word { return e.Vals }

// ClearX resets every signal word to all-lanes-X.
func (e *CompiledComb) ClearX() {
	clear(e.Vals)
}

// Eval evaluates the compiled instruction stream across all lanes,
// applying the installed injections. PIs and FF outputs must be preset.
func (e *CompiledComb) Eval() {
	p := e.P
	// Stem injections on PIs and FF outputs take effect before gate eval.
	for _, t := range e.touched {
		if pt := e.stem[t]; pt.clear != 0 && !p.isGate[t] {
			e.Vals[t] = pt.apply(e.Vals[t])
		}
	}
	vals := e.Vals
	fanin := p.fanin
	var buf [8]logic.Word
	for i := range p.code {
		ins := &p.code[i]
		in := fanin[ins.inLo:ins.inHi]
		var w logic.Word
		if br := e.branch[ins.out]; len(br) != 0 {
			// Injection path: materialize the patched fanin words.
			tmp := buf[:0]
			for _, f := range in {
				tmp = append(tmp, vals[f])
			}
			for _, pp := range br {
				tmp[pp.pin] = pp.apply(tmp[pp.pin])
			}
			w = ins.op.EvalWord(tmp)
		} else {
			w = evalDirect(ins.op, vals, in)
		}
		if pt := e.stem[ins.out]; pt.clear != 0 {
			w = pt.apply(w)
		}
		vals[ins.out] = w
	}
}

// evalDirect evaluates op over the fanin signals without copying the
// input words — the hot path for the (overwhelming) injection-free case.
// The trailing panic is an unreachable invariant: CompileChecked rejects
// unknown operators before any instruction is emitted.
func evalDirect(op logic.Op, vals []logic.Word, in []netlist.SignalID) logic.Word {
	switch op {
	case logic.OpBuf:
		return vals[in[0]]
	case logic.OpNot:
		return vals[in[0]].Not()
	case logic.OpAnd, logic.OpNand:
		acc := vals[in[0]]
		for _, f := range in[1:] {
			o := vals[f]
			acc = logic.Word{Ones: acc.Ones & o.Ones, Zeros: acc.Zeros | o.Zeros}
		}
		if op == logic.OpNand {
			return acc.Not()
		}
		return acc
	case logic.OpOr, logic.OpNor:
		acc := vals[in[0]]
		for _, f := range in[1:] {
			o := vals[f]
			acc = logic.Word{Ones: acc.Ones | o.Ones, Zeros: acc.Zeros & o.Zeros}
		}
		if op == logic.OpNor {
			return acc.Not()
		}
		return acc
	case logic.OpXor, logic.OpXnor:
		acc := vals[in[0]]
		for _, f := range in[1:] {
			acc = acc.Xor(vals[f])
		}
		if op == logic.OpXnor {
			return acc.Not()
		}
		return acc
	case logic.OpConst0:
		return logic.WordAll(logic.Zero)
	case logic.OpConst1:
		return logic.WordAll(logic.One)
	}
	panic("sim: compiled eval of unknown op")
}

// FFNext returns the packed value presented at the D pin of flip-flop
// ff, honouring branch injections on that pin.
func (e *CompiledComb) FFNext(ff netlist.SignalID) logic.Word {
	w := e.Vals[e.P.C.Signals[ff].Fanin[0]]
	if br := e.branch[ff]; len(br) != 0 {
		for _, pp := range br {
			if pp.pin == 0 {
				w = pp.apply(w)
			}
		}
	}
	return w
}

// CompiledSeq is the compiled 64-lane sequential simulator, the drop-in
// analogue of PackedSeq.
type CompiledSeq struct {
	CompiledComb
	state []logic.Word
}

// NewCompiledSeq compiles c and returns a sequential simulator with all
// state X.
func NewCompiledSeq(c *netlist.Circuit) *CompiledSeq {
	return NewCompiledSeqFrom(Compile(c))
}

// NewCompiledSeqFrom returns a sequential simulator sharing an existing
// program.
func NewCompiledSeqFrom(p *Program) *CompiledSeq {
	return &CompiledSeq{
		CompiledComb: *NewCompiledCombFrom(p),
		state:        make([]logic.Word, len(p.C.FFs)),
	}
}

// ResetX sets every flip-flop to X in all lanes.
func (s *CompiledSeq) ResetX() {
	clear(s.state)
}

// SetStateWord overwrites the packed state of one flip-flop (by index
// into c.FFs).
func (s *CompiledSeq) SetStateWord(ffIndex int, w logic.Word) {
	s.state[ffIndex] = w
}

// StateWord returns the packed state of one flip-flop (by c.FFs index).
func (s *CompiledSeq) StateWord(ffIndex int) logic.Word { return s.state[ffIndex] }

// Cycle applies one clock, mirroring PackedSeq.Cycle.
func (s *CompiledSeq) Cycle(pi []logic.Word, po []logic.Word) []logic.Word {
	c := s.P.C
	for i, in := range c.Inputs {
		s.Vals[in] = pi[i]
	}
	for i, ff := range c.FFs {
		s.Vals[ff] = s.state[i]
	}
	s.Eval()
	if cap(po) < len(c.Outputs) {
		po = make([]logic.Word, len(c.Outputs))
	}
	po = po[:len(c.Outputs)]
	for i, o := range c.Outputs {
		po[i] = s.Vals[o]
	}
	for i, ff := range c.FFs {
		s.state[i] = s.FFNext(ff)
	}
	return po
}
