package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// LaneInject is a stuck-at override confined to one lane of a packed
// simulation. The parallel-fault simulator places the fault-free machine
// in lane 0 and one faulty machine per remaining lane.
type LaneInject struct {
	Inject
	Lane uint // 0..63
}

func (li LaneInject) mask() uint64 { return uint64(1) << li.Lane }

// applyStem forces lane Lane of w to Value.
func (li LaneInject) applyStem(w logic.Word) logic.Word {
	return w.Set(li.Lane, li.Value)
}

// PackedComb is the 64-lane analogue of Comb. All lanes evaluate the same
// circuit structure; injections differentiate lanes.
type PackedComb struct {
	C    *netlist.Circuit
	Vals []logic.Word

	stem   map[netlist.SignalID][]LaneInject // stem injections by signal
	branch map[netlist.SignalID][]LaneInject // branch injections by consuming gate/FF
}

// NewPackedComb returns a packed evaluator with all lanes X.
func NewPackedComb(c *netlist.Circuit) *PackedComb {
	return &PackedComb{
		C:      c,
		Vals:   make([]logic.Word, len(c.Signals)),
		stem:   make(map[netlist.SignalID][]LaneInject),
		branch: make(map[netlist.SignalID][]LaneInject),
	}
}

// SetInjections installs the per-lane fault set for subsequent Eval
// calls, replacing any previous set. Lane 0 should be left fault-free to
// serve as the reference machine.
func (e *PackedComb) SetInjections(injs []LaneInject) {
	clear(e.stem)
	clear(e.branch)
	for _, li := range injs {
		if li.IsStem() {
			e.stem[li.Signal] = append(e.stem[li.Signal], li)
		} else {
			e.branch[li.Gate] = append(e.branch[li.Gate], li)
		}
	}
}

// Words returns the per-signal value slice (aliased, indexed by
// SignalID) — the field access point shared with CompiledComb so
// callers can hold either backend behind one interface.
func (e *PackedComb) Words() []logic.Word { return e.Vals }

// ClearX resets every signal word to all-lanes-X.
func (e *PackedComb) ClearX() {
	for i := range e.Vals {
		e.Vals[i] = logic.Word{}
	}
}

// Eval evaluates all gates in topological order across all lanes,
// applying the installed injections. PIs and FF outputs must be preset.
func (e *PackedComb) Eval() {
	c := e.C
	// Stem faults on PIs and FF outputs take effect before gate eval.
	for sig, lis := range e.stem {
		if !c.IsGate(sig) {
			w := e.Vals[sig]
			for _, li := range lis {
				w = li.applyStem(w)
			}
			e.Vals[sig] = w
		}
	}
	var buf [8]logic.Word
	for _, g := range c.Order {
		s := &c.Signals[g]
		in := buf[:0]
		for _, f := range s.Fanin {
			in = append(in, e.Vals[f])
		}
		if lis, ok := e.branch[g]; ok {
			for _, li := range lis {
				in[li.Pin] = li.applyStem(in[li.Pin])
			}
		}
		w := s.Op.EvalWord(in)
		if lis, ok := e.stem[g]; ok {
			for _, li := range lis {
				w = li.applyStem(w)
			}
		}
		e.Vals[g] = w
	}
}

// FFNext returns the packed value presented at the D pin of flip-flop ff,
// honouring branch injections on that pin.
func (e *PackedComb) FFNext(ff netlist.SignalID) logic.Word {
	w := e.Vals[e.C.Signals[ff].Fanin[0]]
	if lis, ok := e.branch[ff]; ok {
		for _, li := range lis {
			if li.Pin == 0 {
				w = li.applyStem(w)
			}
		}
	}
	return w
}

// PackedSeq is the 64-lane sequential simulator.
type PackedSeq struct {
	PackedComb
	state []logic.Word
}

// NewPackedSeq returns a packed sequential simulator with all state X.
func NewPackedSeq(c *netlist.Circuit) *PackedSeq {
	return &PackedSeq{PackedComb: *NewPackedComb(c), state: make([]logic.Word, len(c.FFs))}
}

// ResetX sets every flip-flop to X in all lanes.
func (s *PackedSeq) ResetX() {
	for i := range s.state {
		s.state[i] = logic.Word{}
	}
}

// SetStateWord overwrites the packed state of one flip-flop (by index
// into c.FFs).
func (s *PackedSeq) SetStateWord(ffIndex int, w logic.Word) {
	s.state[ffIndex] = w
}

// StateWord returns the packed state of one flip-flop (by c.FFs index).
func (s *PackedSeq) StateWord(ffIndex int) logic.Word { return s.state[ffIndex] }

// Cycle applies one clock: pi carries one Word per primary input (the
// same pattern is normally broadcast to all lanes with logic.WordAll).
// It returns the packed primary-output values via po (reused storage).
func (s *PackedSeq) Cycle(pi []logic.Word, po []logic.Word) []logic.Word {
	c := s.C
	for i, in := range c.Inputs {
		s.Vals[in] = pi[i]
	}
	for i, ff := range c.FFs {
		s.Vals[ff] = s.state[i]
	}
	s.Eval()
	if cap(po) < len(c.Outputs) {
		po = make([]logic.Word, len(c.Outputs))
	}
	po = po[:len(c.Outputs)]
	for i, o := range c.Outputs {
		po[i] = s.Vals[o]
	}
	for i, ff := range c.FFs {
		s.state[i] = s.FFNext(ff)
	}
	return po
}
