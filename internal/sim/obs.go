package sim

// Observability hooks for the simulation layer. The evaluators stay
// obs-free on their hot paths; what the metrics layer wants from sim is
// compile activity (how many programs, how big, how long) — per-cycle
// and per-batch event counting lives in the callers, which already own
// the loops and can count at batch granularity for free.

import (
	"time"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// NumInstr returns the number of compiled gate-evaluation instructions
// (one per gate, in topological order).
func (p *Program) NumInstr() int { return len(p.code) }

// NumSignals returns the size of the compiled circuit's signal space.
func (p *Program) NumSignals() int { return len(p.isGate) }

// CompileObs is Compile plus metrics: when col is enabled it records
// the compile count, cumulative compile wall time and cumulative
// instruction count under the sim.compile.* counters. With a nil
// collector it is exactly Compile.
func CompileObs(c *netlist.Circuit, col *obs.Collector) *Program {
	if !col.Enabled() {
		return Compile(c)
	}
	t0 := time.Now()
	p := Compile(c)
	col.Counter("sim.compile.count").Inc()
	col.Counter("sim.compile.ns").Add(time.Since(t0).Nanoseconds())
	col.Counter("sim.compile.instrs").Add(int64(p.NumInstr()))
	return p
}
