package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// TestEventMatchesLevelized is the equivalence property: the
// event-driven simulator must reproduce Seq's PO trace and state cycle
// for cycle, fault-free and under every kind of injection.
func TestEventMatchesLevelized(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	circuits := []*netlist.Circuit{
		bench.MustS27(),
		gen.Generate(gen.Profile{Name: "ev", PIs: 6, POs: 5, FFs: 12, Gates: 180}, 9),
	}
	for _, c := range circuits {
		injs := []*Inject{nil}
		for k := 0; k < 6; k++ {
			sig := netlist.SignalID(r.Intn(len(c.Signals)))
			in := &Inject{Signal: sig, Gate: netlist.None, Pin: -1, Value: logic.V(r.Intn(2))}
			if len(c.Fanouts[sig]) > 0 && r.Intn(2) == 0 {
				g := c.Fanouts[sig][r.Intn(len(c.Fanouts[sig]))]
				for pin, f := range c.Signals[g].Fanin {
					if f == sig {
						in = &Inject{Signal: sig, Gate: g, Pin: pin, Value: logic.V(r.Intn(2))}
						break
					}
				}
			}
			injs = append(injs, in)
		}
		for _, inj := range injs {
			ref := NewSeq(c)
			ev := NewEventSeq(c)
			ev.SetInjection(inj)
			st := make([]logic.V, len(c.FFs))
			for i := range st {
				st[i] = logic.V(r.Intn(3))
			}
			ref.SetState(st)
			ev.SetState(st)

			pi := make([]logic.V, len(c.Inputs))
			var poR, poE []logic.V
			for cyc := 0; cyc < 60; cyc++ {
				// Low-activity stimulus: mostly repeat the previous
				// values (the event simulator's target workload).
				for i := range pi {
					if cyc == 0 || r.Intn(4) == 0 {
						pi[i] = logic.V(r.Intn(3))
					}
				}
				poR = ref.Cycle(pi, inj, poR)
				poE = ev.Cycle(pi, poE)
				for o := range poR {
					if poR[o] != poE[o] {
						t.Fatalf("%s inj=%+v cycle %d PO %d: event %v, levelized %v",
							c.Name, inj, cyc, o, poE[o], poR[o])
					}
				}
				refSt, evSt := ref.State(), ev.State()
				for i := range refSt {
					if refSt[i] != evSt[i] {
						t.Fatalf("%s inj=%+v cycle %d FF %d: event %v, levelized %v",
							c.Name, inj, cyc, i, evSt[i], refSt[i])
					}
				}
			}
		}
	}
}

// TestEventInjectionChangeReprimes: swapping the injection mid-run must
// still match a fresh levelized simulation from the same state.
func TestEventInjectionChangeReprimes(t *testing.T) {
	c := bench.MustS27()
	ev := NewEventSeq(c)
	zero := make([]logic.V, len(c.FFs))
	ev.SetState(zero)
	pi := make([]logic.V, len(c.Inputs))
	for cyc := 0; cyc < 5; cyc++ {
		ev.Cycle(pi, nil)
	}
	g8, _ := c.Lookup("G8")
	inj := &Inject{Signal: g8, Gate: netlist.None, Pin: -1, Value: logic.One}
	ev.SetInjection(inj)

	ref := NewSeq(c)
	ref.SetState(ev.State())
	var poR, poE []logic.V
	for cyc := 0; cyc < 20; cyc++ {
		poR = ref.Cycle(pi, inj, poR)
		poE = ev.Cycle(pi, poE)
		for o := range poR {
			if poR[o] != poE[o] {
				t.Fatalf("cycle %d PO %d: %v vs %v", cyc, o, poE[o], poR[o])
			}
		}
	}
}

// BenchmarkEventVsLevelized shows the activity win on a shift-like
// workload (constant inputs, state churn only).
func BenchmarkEventVsLevelized(b *testing.B) {
	c := gen.Generate(gen.Profile{Name: "evb", PIs: 10, POs: 8, FFs: 60, Gates: 3000}, 4)
	pi := make([]logic.V, len(c.Inputs))
	b.Run("levelized", func(b *testing.B) {
		s := NewSeq(c)
		var po []logic.V
		for i := 0; i < b.N; i++ {
			po = s.Cycle(pi, nil, po)
		}
	})
	b.Run("event", func(b *testing.B) {
		s := NewEventSeq(c)
		var po []logic.V
		for i := 0; i < b.N; i++ {
			po = s.Cycle(pi, po)
		}
	})
}
