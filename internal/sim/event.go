package sim

import (
	"repro/internal/logic"
	"repro/internal/netlist"
)

// EventSeq is an event-driven sequential simulator: between cycles it
// only re-evaluates the fanout cones of inputs and flip-flops whose
// values actually changed, which beats the levelized full sweep of Seq
// when circuit activity is low (long shift tests with quiet mission
// inputs are exactly that workload — see the simulator benchmark).
//
// Semantics are identical to Seq cycle for cycle, fault injection
// included; the equivalence is property-tested.
type EventSeq struct {
	C    *netlist.Circuit
	vals []logic.V
	next []logic.V // captured D values

	inj *Inject

	buckets  [][]netlist.SignalID
	inQueue  []bool
	maxLevel int
	primed   bool
}

// NewEventSeq builds an event-driven simulator with all values X.
func NewEventSeq(c *netlist.Circuit) *EventSeq {
	maxLevel := 0
	for _, l := range c.Level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	e := &EventSeq{
		C:        c,
		vals:     make([]logic.V, len(c.Signals)),
		next:     make([]logic.V, len(c.FFs)),
		buckets:  make([][]netlist.SignalID, maxLevel+1),
		inQueue:  make([]bool, len(c.Signals)),
		maxLevel: maxLevel,
	}
	for i := range e.vals {
		e.vals[i] = logic.X
	}
	for i := range e.next {
		e.next[i] = logic.X
	}
	return e
}

// SetState overwrites the flip-flop state that the NEXT Cycle will
// present on the flip-flop outputs — the same contract as Seq.SetState.
func (e *EventSeq) SetState(st []logic.V) {
	copy(e.next, st)
}

// State returns the flip-flop state the next cycle will load (the same
// contract as Seq.State after a Cycle call).
func (e *EventSeq) State() []logic.V {
	out := make([]logic.V, len(e.next))
	copy(out, e.next)
	return out
}

// SetInjection installs the fault for subsequent cycles (nil clears).
// Changing the injection forces a full re-evaluation on the next cycle.
func (e *EventSeq) SetInjection(inj *Inject) {
	e.inj = inj
	e.primed = false
}

func (e *EventSeq) schedule(s netlist.SignalID) {
	for _, fo := range e.C.Fanouts[s] {
		if e.C.Signals[fo].Kind == netlist.KindGate && !e.inQueue[fo] {
			e.inQueue[fo] = true
			e.buckets[e.C.Level[fo]] = append(e.buckets[e.C.Level[fo]], fo)
		}
	}
}

// Cycle applies one clock with the same contract as Seq.Cycle.
func (e *EventSeq) Cycle(pi []logic.V, po []logic.V) []logic.V {
	c := e.C
	if !e.primed {
		// First cycle (or injection change): schedule everything.
		for _, g := range c.Order {
			if !e.inQueue[g] {
				e.inQueue[g] = true
				e.buckets[c.Level[g]] = append(e.buckets[c.Level[g]], g)
			}
		}
		e.primed = true
	}
	for i, in := range c.Inputs {
		v := pi[i]
		if e.inj != nil && e.inj.IsStem() && e.inj.Signal == in {
			// The stem fault pins the input; value changes are moot but
			// the faulty value must be stable from the first cycle.
			v = e.inj.Value
		}
		if e.vals[in] != v {
			e.vals[in] = v
			e.schedule(in)
		}
	}
	// FF outputs take the previously captured D values.
	for i, ff := range c.FFs {
		v := e.next[i]
		if e.inj != nil && e.inj.IsStem() && e.inj.Signal == ff {
			v = e.inj.Value
		}
		if e.vals[ff] != v {
			e.vals[ff] = v
			e.schedule(ff)
		}
	}
	// Event-driven levelized propagation.
	var buf [12]logic.V
	for lvl := 1; lvl <= e.maxLevel; lvl++ {
		bucket := e.buckets[lvl]
		for i := 0; i < len(bucket); i++ {
			g := bucket[i]
			e.inQueue[g] = false
			s := &c.Signals[g]
			in := buf[:0]
			for pin, f := range s.Fanin {
				v := e.vals[f]
				if e.inj != nil && !e.inj.IsStem() && e.inj.Gate == g && e.inj.Pin == pin {
					v = e.inj.Value
				}
				in = append(in, v)
			}
			v := s.Op.Eval(in)
			if e.inj != nil && e.inj.IsStem() && e.inj.Signal == g {
				v = e.inj.Value
			}
			if v != e.vals[g] {
				e.vals[g] = v
				e.schedule(g)
			}
		}
		e.buckets[lvl] = e.buckets[lvl][:0]
	}
	// Observe outputs, capture D values.
	if cap(po) < len(c.Outputs) {
		po = make([]logic.V, len(c.Outputs))
	}
	po = po[:len(c.Outputs)]
	for i, o := range c.Outputs {
		po[i] = e.vals[o]
	}
	for i, ff := range c.FFs {
		d := e.vals[c.Signals[ff].Fanin[0]]
		if e.inj != nil && !e.inj.IsStem() && e.inj.Gate == ff && e.inj.Pin == 0 {
			d = e.inj.Value
		}
		e.next[i] = d
	}
	return po
}
