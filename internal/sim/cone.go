package sim

import (
	"slices"
	"unsafe"

	"repro/internal/netlist"
)

// DefaultConeCap bounds the cone sets a ConeIndex stores. Closures
// larger than the cap are marked overflowed (Size reports -1) and store
// no set: such faults always take the full 64-lane sweep, so the index
// never pays the memory for them. Runtime small-cone thresholds clamp
// to the cap of the index they query.
const DefaultConeCap = 256

// ConeIndex precomputes, per signal, the capped static influence cone:
// every signal reachable from it through fanout edges, crossing
// flip-flop boundaries (a corrupted D capture surfaces on the Q output
// one cycle later and keeps propagating through the FF's consumers).
// A fault can only ever perturb signals inside its site's cone, so a
// fault whose cone is small is exactly re-simulated by sweeping those
// few signals against a fault-free baseline — the fast path of the
// hybrid evaluator backend.
//
// The index is immutable after construction and safe for concurrent
// readers; the engine layer caches one per circuit structure.
type ConeIndex struct {
	c   *netlist.Circuit
	cap int

	size []int32 // per signal; -1 = closure exceeds cap, no set stored

	// Per-signal cone sets, carved out of shared arenas and located by
	// the offset tables (off[s]:off[s+1]); overflowed signals own empty
	// ranges.
	members []netlist.SignalID // every cone signal, root included
	gates   []netlist.SignalID // cone gates in topological (Order-rank) order
	ffs     []int32            // cone flip-flops, as indexes into c.FFs
	outs    []int32            // cone outputs, as indexes into c.Outputs

	memberOff, gateOff, ffOff, outOff []int32
}

// NewConeIndex builds the cone index of c with the given set-size cap
// (0 selects DefaultConeCap). Construction is a capped DFS per signal:
// worst case O(signals x cap) time, and the stored sets total well under
// signals x cap entries because overflowed signals store nothing.
func NewConeIndex(c *netlist.Circuit, capN int) *ConeIndex {
	if capN <= 0 {
		capN = DefaultConeCap
	}
	n := len(c.Signals)
	x := &ConeIndex{
		c:         c,
		cap:       capN,
		size:      make([]int32, n),
		memberOff: make([]int32, n+1),
		gateOff:   make([]int32, n+1),
		ffOff:     make([]int32, n+1),
		outOff:    make([]int32, n+1),
	}

	// Order rank for the topological sort of cone gates, FF and output
	// indexes for the per-kind views.
	rank := make([]int32, n)
	for i, g := range c.Order {
		rank[g] = int32(i)
	}
	ffIdx := make([]int32, n)
	outIdx := make([]int32, n)
	for i := range ffIdx {
		ffIdx[i], outIdx[i] = -1, -1
	}
	for i, ff := range c.FFs {
		ffIdx[ff] = int32(i)
	}
	for i, o := range c.Outputs {
		outIdx[o] = int32(i)
	}

	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	var stack, set []netlist.SignalID
	var gateSet []netlist.SignalID
	for root := 0; root < n; root++ {
		r := netlist.SignalID(root)
		stack = append(stack[:0], r)
		set = set[:0]
		seen[root] = int32(root)
		over := false
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			set = append(set, s)
			if len(set) > capN {
				over = true
				break
			}
			for _, fo := range c.Fanouts[s] {
				if seen[fo] != int32(root) {
					seen[fo] = int32(root)
					stack = append(stack, fo)
				}
			}
		}
		if over {
			x.size[root] = -1
			// seen entries for this root are simply left behind; the
			// next root's stamp supersedes them.
		} else {
			x.size[root] = int32(len(set))
			gateSet = gateSet[:0]
			for _, s := range set {
				if c.IsGate(s) {
					gateSet = append(gateSet, s)
				}
				if fi := ffIdx[s]; fi >= 0 {
					x.ffs = append(x.ffs, fi)
				}
				if oi := outIdx[s]; oi >= 0 {
					x.outs = append(x.outs, oi)
				}
			}
			slices.SortFunc(gateSet, func(a, b netlist.SignalID) int {
				return int(rank[a]) - int(rank[b])
			})
			x.members = append(x.members, set...)
			x.gates = append(x.gates, gateSet...)
		}
		x.memberOff[root+1] = int32(len(x.members))
		x.gateOff[root+1] = int32(len(x.gates))
		x.ffOff[root+1] = int32(len(x.ffs))
		x.outOff[root+1] = int32(len(x.outs))
	}
	return x
}

// Circuit returns the circuit the index describes.
func (x *ConeIndex) Circuit() *netlist.Circuit { return x.c }

// SizeBytes estimates the index's resident footprint (the shared cone
// arenas and their offset tables) for byte-budgeted caches. The
// circuit is not counted; its owner accounts for it.
func (x *ConeIndex) SizeBytes() int64 {
	idBytes := int64(unsafe.Sizeof(netlist.SignalID(0)))
	return int64(unsafe.Sizeof(*x)) +
		int64(cap(x.size)+cap(x.ffs)+cap(x.outs))*4 +
		int64(cap(x.memberOff)+cap(x.gateOff)+cap(x.ffOff)+cap(x.outOff))*4 +
		int64(cap(x.members)+cap(x.gates))*idBytes
}

// Cap returns the set-size cap the index was built with.
func (x *ConeIndex) Cap() int { return x.cap }

// Size returns the influence-cone size of signal s (root included), or
// -1 when the closure exceeds the index cap.
func (x *ConeIndex) Size(s netlist.SignalID) int { return int(x.size[s]) }

// Members returns every signal in s's cone, root included (unordered).
// Empty for overflowed signals; callers must not mutate the slice.
func (x *ConeIndex) Members(s netlist.SignalID) []netlist.SignalID {
	return x.members[x.memberOff[s]:x.memberOff[s+1]]
}

// Gates returns the cone's combinational gates in topological order.
func (x *ConeIndex) Gates(s netlist.SignalID) []netlist.SignalID {
	return x.gates[x.gateOff[s]:x.gateOff[s+1]]
}

// FFs returns the cone's flip-flops as indexes into the circuit's FFs
// slice.
func (x *ConeIndex) FFs(s netlist.SignalID) []int32 {
	return x.ffs[x.ffOff[s]:x.ffOff[s+1]]
}

// Outs returns the cone's primary outputs as indexes into the circuit's
// Outputs slice — the only observation points a fault rooted at s can
// ever disturb.
func (x *ConeIndex) Outs(s netlist.SignalID) []int32 {
	return x.outs[x.outOff[s]:x.outOff[s+1]]
}

// ConeRoot maps an injection to its cone root: the signal where the
// fault effect enters the circuit. A stem fault perturbs its signal for
// every consumer; a branch fault is first visible at the consuming gate
// or flip-flop output.
func ConeRoot(inj Inject) netlist.SignalID {
	if inj.IsStem() {
		return inj.Signal
	}
	return inj.Gate
}
