package sim

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// mux builds y = a AND sel OR b AND !sel with named internal signals.
func mux(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("mux")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	sel, _ := c.AddInput("sel")
	nsel, _ := c.AddGate("nsel", logic.OpNot, sel)
	t1, _ := c.AddGate("t1", logic.OpAnd, a, sel)
	t2, _ := c.AddGate("t2", logic.OpAnd, b, nsel)
	y, _ := c.AddGate("y", logic.OpOr, t1, t2)
	if err := c.MarkOutput(y); err != nil {
		t.Fatal(err)
	}
	c.MustFinalize()
	return c
}

func setPI(e *Comb, name string, v logic.V) {
	id, ok := e.C.Lookup(name)
	if !ok {
		panic("no signal " + name)
	}
	e.Vals[id] = v
}

func get(e *Comb, name string) logic.V {
	id, _ := e.C.Lookup(name)
	return e.Vals[id]
}

func TestCombMux(t *testing.T) {
	c := mux(t)
	e := NewComb(c)
	cases := []struct{ a, b, sel, want logic.V }{
		{logic.One, logic.Zero, logic.One, logic.One},
		{logic.One, logic.Zero, logic.Zero, logic.Zero},
		{logic.Zero, logic.One, logic.Zero, logic.One},
		{logic.X, logic.One, logic.Zero, logic.One},   // unselected X ignored
		{logic.X, logic.One, logic.One, logic.X},      // selected X propagates
		{logic.One, logic.One, logic.X, logic.X},      // both 1, but 3-valued sim is pessimistic on reconvergent X
		{logic.One, logic.Zero, logic.X, logic.X},     // sel X, differs
		{logic.Zero, logic.Zero, logic.X, logic.Zero}, // both 0
	}
	for _, cs := range cases {
		e.ClearX()
		setPI(e, "a", cs.a)
		setPI(e, "b", cs.b)
		setPI(e, "sel", cs.sel)
		e.Eval(nil)
		if got := get(e, "y"); got != cs.want {
			t.Errorf("mux(a=%v b=%v sel=%v) = %v, want %v", cs.a, cs.b, cs.sel, got, cs.want)
		}
	}
}

func TestCombStemInjection(t *testing.T) {
	c := mux(t)
	e := NewComb(c)
	t1, _ := c.Lookup("t1")
	e.ClearX()
	setPI(e, "a", logic.One)
	setPI(e, "b", logic.Zero)
	setPI(e, "sel", logic.One)
	// t1 would be 1; stem s-a-0 forces it and y drops to 0.
	e.Eval(&Inject{Signal: t1, Gate: netlist.None, Pin: -1, Value: logic.Zero})
	if got := get(e, "y"); got != logic.Zero {
		t.Errorf("y under t1 s-a-0 = %v, want 0", got)
	}
}

func TestCombBranchInjection(t *testing.T) {
	// Branch fault affects only one consumer: build fanout b -> (g1, g2).
	c := netlist.New("br")
	b, _ := c.AddInput("b")
	g1, _ := c.AddGate("g1", logic.OpBuf, b)
	g2, _ := c.AddGate("g2", logic.OpBuf, b)
	_ = c.MarkOutput(g1)
	_ = c.MarkOutput(g2)
	c.MustFinalize()
	e := NewComb(c)
	e.ClearX()
	e.Vals[b] = logic.One
	// Branch b->g1 s-a-0: g1 reads 0, g2 still reads the true 1.
	e.Eval(&Inject{Signal: b, Gate: g1, Pin: 0, Value: logic.Zero})
	if e.Vals[g1] != logic.Zero || e.Vals[g2] != logic.One {
		t.Errorf("branch fault: g1=%v g2=%v", e.Vals[g1], e.Vals[g2])
	}
}

func TestCombPIStemInjection(t *testing.T) {
	c := mux(t)
	e := NewComb(c)
	a, _ := c.Lookup("a")
	e.ClearX()
	setPI(e, "a", logic.One)
	setPI(e, "b", logic.Zero)
	setPI(e, "sel", logic.One)
	e.Eval(&Inject{Signal: a, Gate: netlist.None, Pin: -1, Value: logic.Zero})
	if got := get(e, "y"); got != logic.Zero {
		t.Errorf("y under a s-a-0 = %v, want 0", got)
	}
}

// TestSeqS27KnownTrace drives the embedded s27 with a fixed input
// sequence from the all-zero state and checks the hand-computed trace.
func TestSeqS27KnownTrace(t *testing.T) {
	c := bench.MustS27()
	s := NewSeq(c)
	s.SetState([]logic.V{logic.Zero, logic.Zero, logic.Zero}) // G5,G6,G7

	// With G0..G3 = 0 and state 0: G14=1, G8=AND(1,0)=0, G12=NOR(0,0)=1,
	// G15=OR(1,0)=1, G16=OR(0,0)=0, G9=NAND(0,1)=1, G11=NOR(0,1)=0,
	// G10=NOR(1,0)=0, G13=NOR(0,1)=0, G17=NOT(0)=1.
	pi := []logic.V{logic.Zero, logic.Zero, logic.Zero, logic.Zero}
	po := s.Cycle(pi, nil, nil)
	if po[0] != logic.One {
		t.Errorf("cycle 1: G17 = %v, want 1", po[0])
	}
	st := s.State()
	want := []logic.V{logic.Zero, logic.Zero, logic.Zero} // G10,G11,G13
	for i := range want {
		if st[i] != want[i] {
			t.Errorf("state[%d] = %v, want %v", i, st[i], want[i])
		}
	}

	// Now G0=1: G14=0, G8=0, G12=1, G15=1, G16=0, G9=1, G11=NOR(0,1)=0,
	// G10=NOR(0,0)=1, G13=NOR(0,1)=0, G17=1.
	pi = []logic.V{logic.One, logic.Zero, logic.Zero, logic.Zero}
	po = s.Cycle(pi, nil, po)
	if po[0] != logic.One {
		t.Errorf("cycle 2: G17 = %v, want 1", po[0])
	}
	st = s.State()
	if st[0] != logic.One || st[1] != logic.Zero || st[2] != logic.Zero {
		t.Errorf("cycle 2 state = %v, want [1 0 0]", st)
	}
}

func TestSeqXState(t *testing.T) {
	c := bench.MustS27()
	s := NewSeq(c)
	// From the X state every PO can be X but must never be a wrong
	// definite value; just check the simulator runs and state stays
	// three-valued.
	pi := []logic.V{logic.Zero, logic.Zero, logic.Zero, logic.Zero}
	po := s.Cycle(pi, nil, nil)
	if po[0] != logic.X && !po[0].Known() {
		t.Errorf("bad PO value %v", po[0])
	}
}

// TestPackedMatchesScalar is the central equivalence property: a packed
// sequential simulation with per-lane injections must agree lane-by-lane
// with independent scalar simulations.
func TestPackedMatchesScalar(t *testing.T) {
	c := bench.MustS27()
	r := rand.New(rand.NewSource(7))

	// Build a set of random injections over lanes 1..7.
	injs := []LaneInject{}
	for lane := uint(1); lane <= 7; lane++ {
		sig := netlist.SignalID(r.Intn(len(c.Signals)))
		li := LaneInject{Lane: lane}
		li.Value = logic.V(r.Intn(2))
		if r.Intn(2) == 0 || len(c.Fanouts[sig]) == 0 {
			li.Signal, li.Gate, li.Pin = sig, netlist.None, -1
		} else {
			g := c.Fanouts[sig][r.Intn(len(c.Fanouts[sig]))]
			pin := 0
			for p, f := range c.Signals[g].Fanin {
				if f == sig {
					pin = p
					break
				}
			}
			li.Signal, li.Gate, li.Pin = sig, g, pin
		}
		injs = append(injs, li)
	}

	ps := NewPackedSeq(c)
	ps.SetInjections(injs)
	ps.ResetX()

	scalars := make([]*Seq, 8)
	scalarInj := make([]*Inject, 8)
	for i := range scalars {
		scalars[i] = NewSeq(c)
	}
	for _, li := range injs {
		in := li.Inject
		scalarInj[li.Lane] = &in
	}

	const cycles = 40
	piW := make([]logic.Word, len(c.Inputs))
	piS := make([]logic.V, len(c.Inputs))
	var poW []logic.Word
	var poS []logic.V
	for cyc := 0; cyc < cycles; cyc++ {
		for i := range piS {
			piS[i] = logic.V(r.Intn(3)) // includes X
			piW[i] = logic.WordAll(piS[i])
		}
		poW = ps.Cycle(piW, poW)
		for lane := 0; lane < 8; lane++ {
			poS = scalars[lane].Cycle(piS, scalarInj[lane], poS)
			for o := range poS {
				if got := poW[o].Get(uint(lane)); got != poS[o] {
					t.Fatalf("cycle %d lane %d PO %d: packed %v scalar %v (inj %+v)",
						cyc, lane, o, got, poS[o], scalarInj[lane])
				}
			}
			for fi := range c.FFs {
				if got := ps.state[fi].Get(uint(lane)); got != scalars[lane].State()[fi] {
					t.Fatalf("cycle %d lane %d FF %d: packed %v scalar %v",
						cyc, lane, fi, got, scalars[lane].State()[fi])
				}
			}
		}
	}
}

func TestFFBranchInjection(t *testing.T) {
	// Fault on a FF D pin: state captures the stuck value, the signal
	// driving D is unaffected.
	c := netlist.New("ffd")
	a, _ := c.AddInput("a")
	ff, _ := c.AddFF("ff")
	_ = c.SetFFInput(ff, a)
	out, _ := c.AddGate("out", logic.OpBuf, ff)
	_ = c.MarkOutput(out)
	c.MustFinalize()

	s := NewSeq(c)
	s.SetState([]logic.V{logic.Zero})
	inj := &Inject{Signal: a, Gate: ff, Pin: 0, Value: logic.One}
	po := s.Cycle([]logic.V{logic.Zero}, inj, nil)
	if po[0] != logic.Zero {
		t.Errorf("PO before capture = %v, want 0", po[0])
	}
	po = s.Cycle([]logic.V{logic.Zero}, inj, po)
	if po[0] != logic.One {
		t.Errorf("PO after faulty capture = %v, want 1", po[0])
	}
}
