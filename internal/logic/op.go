package logic

import "fmt"

// Op identifies a combinational gate function. The set matches what the
// ISCAS'89 .bench format and the NAND/NOR technology mapping used by the
// paper require, plus the constant drivers TPI introduces.
type Op uint8

// Gate operators.
const (
	OpBuf Op = iota // single-input buffer
	OpNot           // inverter
	OpAnd
	OpNand
	OpOr
	OpNor
	OpXor
	OpXnor
	OpConst0 // constant 0 driver (no inputs)
	OpConst1 // constant 1 driver (no inputs)
)

var opNames = [...]string{
	OpBuf:    "BUF",
	OpNot:    "NOT",
	OpAnd:    "AND",
	OpNand:   "NAND",
	OpOr:     "OR",
	OpNor:    "NOR",
	OpXor:    "XOR",
	OpXnor:   "XNOR",
	OpConst0: "CONST0",
	OpConst1: "CONST1",
}

// Valid reports whether op is one of the defined gate operators. Every
// evaluator in the tree assumes valid operators on its hot path; the
// compile-time check in sim.CompileChecked uses this to reject a
// malformed circuit up front instead of panicking mid-evaluation.
func (op Op) Valid() bool { return int(op) < len(opNames) }

// String returns the .bench-style name of the operator.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// ParseOp parses a .bench-style gate name (case-insensitive match on the
// canonical upper-case forms).
func ParseOp(s string) (Op, error) {
	for op, name := range opNames {
		if s == name {
			return Op(op), nil
		}
	}
	return OpBuf, fmt.Errorf("logic: unknown gate op %q", s)
}

// Controlling returns the controlling input value of op and whether the
// operator has one. A controlling value at any input fixes the output
// regardless of the other inputs (0 for AND/NAND, 1 for OR/NOR).
func (op Op) Controlling() (V, bool) {
	switch op {
	case OpAnd, OpNand:
		return Zero, true
	case OpOr, OpNor:
		return One, true
	}
	return X, false
}

// NonControlling returns the non-controlling input value of op and
// whether the operator has one. Side inputs of a functional scan path
// must be held at this value for the path to be sensitized.
func (op Op) NonControlling() (V, bool) {
	c, ok := op.Controlling()
	if !ok {
		return X, false
	}
	return c.Not(), true
}

// Inverting reports whether the operator inverts the sensitized path
// through it (NOT, NAND, NOR, XNOR). For XOR/XNOR the answer depends on
// the side-input values; Inverting reports the polarity when all side
// inputs are at logic 0 for XOR and is therefore only used for parity
// bookkeeping on sensitized paths whose side inputs are justified
// constants (the scan package folds actual XOR side values separately).
func (op Op) Inverting() bool {
	switch op {
	case OpNot, OpNand, OpNor, OpXnor:
		return true
	}
	return false
}

// Arity returns the (min, max) number of inputs the operator accepts;
// max < 0 means unbounded.
func (op Op) Arity() (min, max int) {
	switch op {
	case OpBuf, OpNot:
		return 1, 1
	case OpConst0, OpConst1:
		return 0, 0
	case OpXor, OpXnor:
		return 2, -1
	default:
		return 1, -1
	}
}

// Eval evaluates op over the given input values using three-valued logic.
func (op Op) Eval(in []V) V {
	switch op {
	case OpBuf:
		return in[0]
	case OpNot:
		return in[0].Not()
	case OpConst0:
		return Zero
	case OpConst1:
		return One
	case OpAnd, OpNand:
		acc := One
		for _, v := range in {
			acc = acc.And(v)
			if acc == Zero {
				break
			}
		}
		if op == OpNand {
			return acc.Not()
		}
		return acc
	case OpOr, OpNor:
		acc := Zero
		for _, v := range in {
			acc = acc.Or(v)
			if acc == One {
				break
			}
		}
		if op == OpNor {
			return acc.Not()
		}
		return acc
	case OpXor, OpXnor:
		acc := Zero
		for _, v := range in {
			acc = acc.Xor(v)
			if acc == X {
				return X
			}
		}
		if op == OpXnor {
			return acc.Not()
		}
		return acc
	}
	panic(fmt.Sprintf("logic: Eval of unknown op %v", op))
}
