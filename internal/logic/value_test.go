package logic

import "testing"

func TestValueStrings(t *testing.T) {
	cases := []struct {
		v    V
		want string
	}{{Zero, "0"}, {One, "1"}, {X, "X"}}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", uint8(c.v), got, c.want)
		}
	}
	if got := V(7).String(); got != "V(7)" {
		t.Errorf("invalid value String() = %q", got)
	}
}

func TestKnown(t *testing.T) {
	if !Zero.Known() || !One.Known() {
		t.Error("0 and 1 must be known")
	}
	if X.Known() {
		t.Error("X must not be known")
	}
}

func TestNotTable(t *testing.T) {
	if Zero.Not() != One || One.Not() != Zero || X.Not() != X {
		t.Error("Not truth table wrong")
	}
}

func TestAndTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{Zero, Zero, Zero}, {Zero, One, Zero}, {Zero, X, Zero},
		{One, Zero, Zero}, {One, One, One}, {One, X, X},
		{X, Zero, Zero}, {X, One, X}, {X, X, X},
	}
	for _, c := range cases {
		if got := c.a.And(c.b); got != c.want {
			t.Errorf("%v AND %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{Zero, Zero, Zero}, {Zero, One, One}, {Zero, X, X},
		{One, Zero, One}, {One, One, One}, {One, X, One},
		{X, Zero, X}, {X, One, One}, {X, X, X},
	}
	for _, c := range cases {
		if got := c.a.Or(c.b); got != c.want {
			t.Errorf("%v OR %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestXorTable(t *testing.T) {
	cases := []struct{ a, b, want V }{
		{Zero, Zero, Zero}, {Zero, One, One}, {Zero, X, X},
		{One, Zero, One}, {One, One, Zero}, {One, X, X},
		{X, Zero, X}, {X, One, X}, {X, X, X},
	}
	for _, c := range cases {
		if got := c.a.Xor(c.b); got != c.want {
			t.Errorf("%v XOR %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestFromBoolAndBool(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Error("FromBool wrong")
	}
	if One.Bool() != true || Zero.Bool() != false {
		t.Error("Bool wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("Bool of X must panic")
		}
	}()
	_ = X.Bool()
}

func TestParseV(t *testing.T) {
	for _, c := range []struct {
		s    string
		want V
	}{{"0", Zero}, {"1", One}, {"x", X}, {"X", X}} {
		got, err := ParseV(c.s)
		if err != nil || got != c.want {
			t.Errorf("ParseV(%q) = %v, %v", c.s, got, err)
		}
	}
	if _, err := ParseV("2"); err == nil {
		t.Error("ParseV(2) should fail")
	}
}
