package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randWord builds a valid random Word.
func randWord(r *rand.Rand) Word {
	ones := r.Uint64()
	zeros := r.Uint64() &^ ones
	return Word{Ones: ones, Zeros: zeros}
}

func TestWordAllGet(t *testing.T) {
	for _, v := range []V{Zero, One, X} {
		w := WordAll(v)
		if !w.Valid() {
			t.Fatalf("WordAll(%v) invalid", v)
		}
		for i := uint(0); i < 64; i++ {
			if w.Get(i) != v {
				t.Fatalf("WordAll(%v).Get(%d) = %v", v, i, w.Get(i))
			}
		}
	}
}

func TestWordSetGet(t *testing.T) {
	w := WordAll(X)
	w = w.Set(3, One).Set(17, Zero).Set(63, One).Set(3, Zero)
	if w.Get(3) != Zero || w.Get(17) != Zero || w.Get(63) != One || w.Get(0) != X {
		t.Errorf("Set/Get mismatch: %+v", w)
	}
	if !w.Valid() {
		t.Error("word invalid after Set")
	}
}

// TestWordOpsMatchScalar is the core property test: every packed
// operation must agree lane-by-lane with the scalar three-valued ops.
func TestWordOpsMatchScalar(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randWord(r), randWord(r)
		and, or, xor, not := a.And(b), a.Or(b), a.Xor(b), a.Not()
		if !and.Valid() || !or.Valid() || !xor.Valid() || !not.Valid() {
			return false
		}
		for i := uint(0); i < 64; i++ {
			av, bv := a.Get(i), b.Get(i)
			if and.Get(i) != av.And(bv) || or.Get(i) != av.Or(bv) ||
				xor.Get(i) != av.Xor(bv) || not.Get(i) != av.Not() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWordDiff(t *testing.T) {
	a := WordAll(X).Set(0, One).Set(1, Zero).Set(2, One).Set(3, One)
	b := WordAll(X).Set(0, Zero).Set(1, One).Set(2, One).Set(4, One)
	// Lanes 0 and 1 hold opposite definite values; lane 2 equal; lanes
	// 3/4 have an X on one side.
	if d := a.Diff(b); d != 0b11 {
		t.Errorf("Diff = %b, want 11", d)
	}
}

func TestWordEq(t *testing.T) {
	a := WordAll(X).Set(5, One)
	b := WordAll(X).Set(5, One)
	if !a.Eq(b) {
		t.Error("equal words not Eq")
	}
	if a.Eq(b.Set(6, Zero)) {
		t.Error("different words Eq")
	}
}

// TestEvalWordMatchesEval checks packed gate evaluation against scalar
// gate evaluation for every operator over random packed inputs.
func TestEvalWordMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ops := []Op{OpBuf, OpNot, OpAnd, OpNand, OpOr, OpNor, OpXor, OpXnor, OpConst0, OpConst1}
	for _, op := range ops {
		minA, _ := op.Arity()
		for trial := 0; trial < 50; trial++ {
			n := minA
			if n > 0 {
				n = minA + r.Intn(3)
			}
			if op == OpBuf || op == OpNot {
				n = 1
			}
			in := make([]Word, n)
			for i := range in {
				in[i] = randWord(r)
			}
			got := op.EvalWord(in)
			if !got.Valid() {
				t.Fatalf("%v.EvalWord produced invalid word", op)
			}
			sc := make([]V, n)
			for lane := uint(0); lane < 64; lane++ {
				for i := range in {
					sc[i] = in[i].Get(lane)
				}
				if want := op.Eval(sc); got.Get(lane) != want {
					t.Fatalf("%v lane %d: packed %v, scalar %v (in %v)",
						op, lane, got.Get(lane), want, sc)
				}
			}
		}
	}
}
