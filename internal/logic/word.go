package logic

// Word holds 64 three-valued values in a two-plane encoding: bit i of
// Ones is set when pattern i carries 1, bit i of Zeros when it carries 0,
// and neither when it carries X. A bit must never be set in both planes.
//
// Words drive the parallel-pattern fault simulator: one Word per signal
// evaluates 64 test patterns per gate visit.
type Word struct {
	Ones  uint64
	Zeros uint64
}

// WordAll returns a Word carrying v in all 64 lanes.
func WordAll(v V) Word {
	switch v {
	case Zero:
		return Word{Zeros: ^uint64(0)}
	case One:
		return Word{Ones: ^uint64(0)}
	}
	return Word{}
}

// Get returns the value in lane i (0 <= i < 64).
func (w Word) Get(i uint) V {
	bit := uint64(1) << i
	switch {
	case w.Ones&bit != 0:
		return One
	case w.Zeros&bit != 0:
		return Zero
	default:
		return X
	}
}

// Set returns w with lane i set to v.
func (w Word) Set(i uint, v V) Word {
	bit := uint64(1) << i
	w.Ones &^= bit
	w.Zeros &^= bit
	switch v {
	case One:
		w.Ones |= bit
	case Zero:
		w.Zeros |= bit
	}
	return w
}

// Valid reports whether no lane is set in both planes.
func (w Word) Valid() bool { return w.Ones&w.Zeros == 0 }

// Known returns a mask of the lanes holding a definite 0 or 1.
func (w Word) Known() uint64 { return w.Ones | w.Zeros }

// Not returns the lane-wise complement.
func (w Word) Not() Word { return Word{Ones: w.Zeros, Zeros: w.Ones} }

// And returns the lane-wise three-valued conjunction.
func (w Word) And(o Word) Word {
	return Word{Ones: w.Ones & o.Ones, Zeros: w.Zeros | o.Zeros}
}

// Or returns the lane-wise three-valued disjunction.
func (w Word) Or(o Word) Word {
	return Word{Ones: w.Ones | o.Ones, Zeros: w.Zeros & o.Zeros}
}

// Xor returns the lane-wise three-valued exclusive-or.
func (w Word) Xor(o Word) Word {
	known := w.Known() & o.Known()
	diff := (w.Ones ^ o.Ones) & known
	return Word{Ones: diff, Zeros: known &^ diff}
}

// Diff returns a mask of lanes where w and o hold opposite definite
// values — the lanes on which a fault effect is observable.
func (w Word) Diff(o Word) uint64 {
	return (w.Ones & o.Zeros) | (w.Zeros & o.Ones)
}

// Eq reports whether the two words encode identical lane values.
func (w Word) Eq(o Word) bool { return w.Ones == o.Ones && w.Zeros == o.Zeros }

// EvalWord evaluates op over packed input words using three-valued logic.
func (op Op) EvalWord(in []Word) Word {
	switch op {
	case OpBuf:
		return in[0]
	case OpNot:
		return in[0].Not()
	case OpConst0:
		return WordAll(Zero)
	case OpConst1:
		return WordAll(One)
	case OpAnd, OpNand:
		acc := WordAll(One)
		for _, w := range in {
			acc = acc.And(w)
		}
		if op == OpNand {
			return acc.Not()
		}
		return acc
	case OpOr, OpNor:
		acc := WordAll(Zero)
		for _, w := range in {
			acc = acc.Or(w)
		}
		if op == OpNor {
			return acc.Not()
		}
		return acc
	case OpXor, OpXnor:
		acc := WordAll(Zero)
		for _, w := range in {
			acc = acc.Xor(w)
		}
		if op == OpXnor {
			return acc.Not()
		}
		return acc
	}
	panic("logic: EvalWord of unknown op")
}
