package logic

import "testing"

func allV() []V { return []V{Zero, One, X} }

func TestOpStringParseRoundTrip(t *testing.T) {
	ops := []Op{OpBuf, OpNot, OpAnd, OpNand, OpOr, OpNor, OpXor, OpXnor, OpConst0, OpConst1}
	for _, op := range ops {
		got, err := ParseOp(op.String())
		if err != nil || got != op {
			t.Errorf("ParseOp(%v.String()) = %v, %v", op, got, err)
		}
	}
	if _, err := ParseOp("MAJ"); err == nil {
		t.Error("ParseOp of unknown name should fail")
	}
}

func TestControlling(t *testing.T) {
	cases := []struct {
		op Op
		c  V
		ok bool
	}{
		{OpAnd, Zero, true}, {OpNand, Zero, true},
		{OpOr, One, true}, {OpNor, One, true},
		{OpXor, X, false}, {OpNot, X, false}, {OpBuf, X, false},
	}
	for _, cse := range cases {
		c, ok := cse.op.Controlling()
		if ok != cse.ok || (ok && c != cse.c) {
			t.Errorf("%v.Controlling() = %v,%v", cse.op, c, ok)
		}
		nc, nok := cse.op.NonControlling()
		if nok != cse.ok || (nok && nc != cse.c.Not()) {
			t.Errorf("%v.NonControlling() = %v,%v", cse.op, nc, nok)
		}
	}
}

func TestInverting(t *testing.T) {
	inv := map[Op]bool{OpNot: true, OpNand: true, OpNor: true, OpXnor: true,
		OpBuf: false, OpAnd: false, OpOr: false, OpXor: false}
	for op, want := range inv {
		if op.Inverting() != want {
			t.Errorf("%v.Inverting() = %v, want %v", op, op.Inverting(), want)
		}
	}
}

// TestEvalAgainstBoolean checks each op against its Boolean definition on
// all fully-known input combinations up to 3 inputs.
func TestEvalAgainstBoolean(t *testing.T) {
	boolDef := map[Op]func([]bool) bool{
		OpBuf: func(in []bool) bool { return in[0] },
		OpNot: func(in []bool) bool { return !in[0] },
		OpAnd: func(in []bool) bool {
			r := true
			for _, b := range in {
				r = r && b
			}
			return r
		},
		OpNand: func(in []bool) bool {
			r := true
			for _, b := range in {
				r = r && b
			}
			return !r
		},
		OpOr: func(in []bool) bool {
			r := false
			for _, b := range in {
				r = r || b
			}
			return r
		},
		OpNor: func(in []bool) bool {
			r := false
			for _, b := range in {
				r = r || b
			}
			return !r
		},
		OpXor: func(in []bool) bool {
			r := false
			for _, b := range in {
				r = r != b
			}
			return r
		},
		OpXnor: func(in []bool) bool {
			r := false
			for _, b := range in {
				r = r != b
			}
			return !r
		},
	}
	for op, def := range boolDef {
		minA, _ := op.Arity()
		for n := minA; n <= 3; n++ {
			if n == 0 {
				continue
			}
			for mask := 0; mask < 1<<n; mask++ {
				bs := make([]bool, n)
				vs := make([]V, n)
				for i := range bs {
					bs[i] = mask&(1<<i) != 0
					vs[i] = FromBool(bs[i])
				}
				want := FromBool(def(bs))
				if got := op.Eval(vs); got != want {
					t.Errorf("%v.Eval(%v) = %v, want %v", op, vs, got, want)
				}
			}
		}
	}
}

// TestEvalXPessimism checks that X inputs never produce a wrong definite
// output: if Eval returns 0/1 with some X inputs, then every completion
// of the X inputs must produce that same value.
func TestEvalXPessimism(t *testing.T) {
	ops := []Op{OpBuf, OpNot, OpAnd, OpNand, OpOr, OpNor, OpXor, OpXnor}
	for _, op := range ops {
		minA, _ := op.Arity()
		n := minA
		if n < 2 {
			n = 2
		}
		if op == OpBuf || op == OpNot {
			n = 1
		}
		var walk func(in []V)
		walk = func(in []V) {
			if len(in) == n {
				got := op.Eval(in)
				if got == X {
					return
				}
				// Enumerate all completions of X positions.
				var complete func(i int, cur []V)
				complete = func(i int, cur []V) {
					if i == n {
						if op.Eval(cur) != got {
							t.Errorf("%v.Eval(%v)=%v but completion %v gives %v",
								op, in, got, cur, op.Eval(cur))
						}
						return
					}
					if in[i] == X {
						for _, v := range []V{Zero, One} {
							cur[i] = v
							complete(i+1, cur)
						}
						cur[i] = X
					} else {
						cur[i] = in[i]
						complete(i+1, cur)
					}
				}
				complete(0, make([]V, n))
				return
			}
			for _, v := range allV() {
				walk(append(in, v))
			}
		}
		walk(nil)
	}
}

func TestEvalConsts(t *testing.T) {
	if OpConst0.Eval(nil) != Zero || OpConst1.Eval(nil) != One {
		t.Error("constant ops wrong")
	}
}

func TestArity(t *testing.T) {
	if mn, mx := OpNot.Arity(); mn != 1 || mx != 1 {
		t.Errorf("NOT arity %d,%d", mn, mx)
	}
	if mn, mx := OpAnd.Arity(); mn != 1 || mx != -1 {
		t.Errorf("AND arity %d,%d", mn, mx)
	}
	if mn, mx := OpConst1.Arity(); mn != 0 || mx != 0 {
		t.Errorf("CONST1 arity %d,%d", mn, mx)
	}
	if mn, mx := OpXor.Arity(); mn != 2 || mx != -1 {
		t.Errorf("XOR arity %d,%d", mn, mx)
	}
}
