// Package logic implements the three-valued (0, 1, X) logic system used
// throughout the scan-chain testing flow: scalar values, gate evaluation,
// controlling-value queries, and 64-wide packed vectors for parallel
// simulation.
//
// The unknown value X models both uninitialized flip-flops and the
// arbitrary data carried by the scan chain during shift; the paper's
// fault-screening step (Section 3) is defined entirely in terms of how
// scan-mode constants move between {0, 1, X} under a fault.
package logic

import "fmt"

// V is a three-valued logic value.
type V uint8

// The three logic values. Zero and One are the Boolean constants; X is
// the unknown/unassigned value.
const (
	Zero V = iota
	One
	X
)

// String returns "0", "1" or "X".
func (v V) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	default:
		return fmt.Sprintf("V(%d)", uint8(v))
	}
}

// Known reports whether v is a definite Boolean value (0 or 1).
func (v V) Known() bool { return v == Zero || v == One }

// Not returns the three-valued complement of v. X inverts to X.
func (v V) Not() V {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// And returns the three-valued conjunction of v and w.
func (v V) And(w V) V {
	if v == Zero || w == Zero {
		return Zero
	}
	if v == One && w == One {
		return One
	}
	return X
}

// Or returns the three-valued disjunction of v and w.
func (v V) Or(w V) V {
	if v == One || w == One {
		return One
	}
	if v == Zero && w == Zero {
		return Zero
	}
	return X
}

// Xor returns the three-valued exclusive-or of v and w.
func (v V) Xor(w V) V {
	if !v.Known() || !w.Known() {
		return X
	}
	if v == w {
		return Zero
	}
	return One
}

// FromBool converts a Go bool to a logic value.
func FromBool(b bool) V {
	if b {
		return One
	}
	return Zero
}

// Bool converts a known value to a Go bool; it panics on X. Use Known
// first when the value may be unknown.
func (v V) Bool() bool {
	switch v {
	case Zero:
		return false
	case One:
		return true
	}
	panic("logic: Bool of X")
}

// ParseV parses "0", "1", "x" or "X".
func ParseV(s string) (V, error) {
	switch s {
	case "0":
		return Zero, nil
	case "1":
		return One, nil
	case "x", "X":
		return X, nil
	}
	return X, fmt.Errorf("logic: cannot parse %q as a value", s)
}
