// Package journal is the flow's flight recorder: a bounded, concurrency-
// safe buffer of structured events that the phases, worker pools,
// screening engine, ATPG engines, fault simulator and artifact cache
// emit into while a run executes. Where the metrics layer (internal/obs)
// answers "how much", the journal answers "when and why": every event is
// stamped against one run origin, so consumers can reconstruct the full
// timeline of a run after the fact.
//
// Three consumers sit on top of the recorder:
//
//   - WriteTrace exports the event buffer in the Chrome trace-event
//     format, so phase and per-worker timelines open directly in
//     chrome://tracing or Perfetto;
//   - Progress subscribes to events live and renders a throttled
//     rate/ETA line per phase on a terminal;
//   - provenance replay (internal/core) scans the buffer to explain a
//     single fault's classification, ATPG attempts and detection.
//
// The recorder follows the same cost discipline as internal/obs: a nil
// *Recorder is the disabled recorder — Emit on it returns immediately —
// and hot paths resolve the recorder once, outside their loops, so the
// disabled cost is one nil check per batch-level event site. The buffer
// is bounded: events past the capacity are counted (Dropped) rather
// than stored, so a runaway emitter can cost memory at most once.
package journal

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the event payload.
type Kind uint8

// Event kinds. The payload fields A-D are kind-specific; Arg carries
// the event's name (phase, pool, engine prefix) and should be an
// interned/constant string so emission does not allocate.
const (
	// KindNote is a freeform annotation; Arg is the text.
	KindNote Kind = iota
	// KindPhaseBegin marks a phase opening; Arg is the phase name.
	KindPhaseBegin
	// KindPhaseEnd marks a phase closing; Arg is the phase name, DurNS
	// the phase wall time (TNS is the phase start, like all span events).
	KindPhaseEnd
	// KindBatch is one completed worker-pool work item: Arg the pool
	// name, Worker the dense worker ID, A the item index, B the total
	// item count of the pool invocation, DurNS the item's wall time.
	KindBatch
	// KindClassify is one screening verdict contribution: A the fault
	// key, B the category (1 or 2), C the packed chain/segment location
	// (LocChainSeg), D the implicating net (on-path net pinned definite
	// for category 1, side input gone X for category 2).
	KindClassify
	// KindATPG is one completed test-generation attempt: Arg the engine
	// prefix (atpg.comb, atpg.seq, atpg.final), A the fault key (or -1
	// when the attempt has no single original-fault identity), B the
	// result status (atpg.Status numeric value), C the backtrack count,
	// DurNS the attempt's wall time.
	KindATPG
	// KindDetect is one fault detection during fault simulation: A the
	// fault key, B the detecting cycle within the simulated sequence.
	KindDetect
	// KindCache is one artifact-cache lookup: Arg the cache name, A 1
	// for a hit and 0 for a miss.
	KindCache
	// KindUnitBegin marks a task work-unit opening: A the unit index,
	// B the plan's unit count, C and D the unit's fault-axis slice
	// bounds Lo and Hi (D is -1 while the whole-axis sentinel is
	// unresolved). The tracing layer (internal/trace) turns a
	// begin/end pair into one unit span under the run's root span.
	KindUnitBegin
	// KindUnitEnd marks a task work-unit closing; payload as
	// KindUnitBegin with the axis slice resolved, DurNS the unit's
	// wall time (TNS the unit start, like all span events).
	KindUnitEnd
)

func (k Kind) String() string {
	switch k {
	case KindNote:
		return "note"
	case KindPhaseBegin:
		return "phase_begin"
	case KindPhaseEnd:
		return "phase_end"
	case KindBatch:
		return "batch"
	case KindClassify:
		return "classify"
	case KindATPG:
		return "atpg"
	case KindDetect:
		return "detect"
	case KindCache:
		return "cache"
	case KindUnitBegin:
		return "unit_begin"
	case KindUnitEnd:
		return "unit_end"
	}
	return "unknown"
}

// Event is one journal entry. TNS is the event's start offset from the
// recorder origin in nanoseconds (Emit stamps it); DurNS is the span
// length for span-like events and zero for instants. A-D carry the
// kind-specific payload.
type Event struct {
	TNS    int64
	DurNS  int64
	A      int64
	B      int64
	C      int64
	D      int64
	Kind   Kind
	Worker int32
	Arg    string
}

// DefaultCapacity bounds a recorder constructed with capacity <= 0:
// 64Ki events (~4 MiB). Large flows overflow the tail counters into
// Dropped rather than growing without bound.
const DefaultCapacity = 1 << 16

// Recorder is a bounded event buffer with one monotonic origin. The
// zero value is not used: New returns an enabled recorder, and a nil
// *Recorder is the disabled one (Emit and the accessors are no-ops).
// Emit is safe for concurrent use.
type Recorder struct {
	start time.Time

	mu      sync.Mutex
	events  []Event
	dropped int64

	observer atomic.Pointer[func(Event)]
}

// New returns an enabled recorder whose clock starts now. capacity <= 0
// selects DefaultCapacity.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{start: time.Now(), events: make([]Event, 0, capacity)}
}

// Enabled reports whether the recorder actually records (false for the
// nil recorder).
func (r *Recorder) Enabled() bool { return r != nil }

// Emit records one event, stamping its TNS so that TNS is the event's
// start: the current offset minus the event's DurNS. Events beyond the
// capacity increment Dropped instead of being stored; the observer (if
// any) still sees them. No-op on the nil recorder.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	e.TNS = time.Since(r.start).Nanoseconds() - e.DurNS
	r.mu.Lock()
	if len(r.events) < cap(r.events) {
		r.events = append(r.events, e)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
	if fn := r.observer.Load(); fn != nil {
		(*fn)(e)
	}
}

// SetObserver installs fn to be called synchronously on every Emit
// (after the event is recorded), replacing any previous observer. Pass
// nil to detach. The observer must be fast and must not call back into
// the recorder. No-op on the nil recorder.
func (r *Recorder) SetObserver(fn func(Event)) {
	if r == nil {
		return
	}
	if fn == nil {
		r.observer.Store(nil)
		return
	}
	r.observer.Store(&fn)
}

// Snapshot returns a copy of the recorded events in emission order.
// Returns nil on the nil recorder.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Since returns a copy of the recorded events from index i on (in
// emission order), or nil when i is at or past the end. Incremental
// consumers — the SSE bridge of the service layer — poll it with their
// own cursor instead of re-copying the whole buffer via Snapshot.
// Returns nil on the nil recorder.
func (r *Recorder) Since(i int) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i < 0 {
		i = 0
	}
	if i >= len(r.events) {
		return nil
	}
	return append([]Event(nil), r.events[i:]...)
}

// Len returns the number of stored events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Dropped returns how many events overflowed the capacity.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Capacity returns the recorder's fixed event capacity (0 for nil).
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return cap(r.events)
}

// Origin returns the wall-clock instant of the recorder's clock
// origin — the moment event offsets are measured from. Trace
// exporters use it to place the run's spans on the absolute
// timeline. Returns the zero time on the nil recorder.
func (r *Recorder) Origin() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Elapsed returns the offset from the recorder origin to now.
func (r *Recorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// ---- Event constructors ----
//
// These keep the payload packing in one place; emitters call
// rec.Emit(journal.Batch(...)) style.

// Note builds a freeform annotation event.
func Note(text string) Event { return Event{Kind: KindNote, Arg: text} }

// PhaseBegin builds a phase-open event.
func PhaseBegin(name string) Event { return Event{Kind: KindPhaseBegin, Arg: name} }

// PhaseEnd builds a phase-close event spanning dur.
func PhaseEnd(name string, dur time.Duration) Event {
	return Event{Kind: KindPhaseEnd, Arg: name, DurNS: dur.Nanoseconds()}
}

// Batch builds a worker-pool item event: item index of total, run by
// worker, taking dur.
func Batch(pool string, worker, index, total int, dur time.Duration) Event {
	return Event{Kind: KindBatch, Arg: pool, Worker: int32(worker),
		A: int64(index), B: int64(total), DurNS: dur.Nanoseconds()}
}

// Classify builds a screening-verdict event for the fault key: category
// cat at chain/seg, implicated by net.
func Classify(fk FaultKey, cat int, chain, seg int, net int64) Event {
	return Event{Kind: KindClassify, A: int64(fk), B: int64(cat),
		C: LocChainSeg(chain, seg), D: net}
}

// ATPG builds a test-generation-attempt event under the engine prefix:
// status and backtracks for the fault key (pass FaultKey(-1) when the
// attempt has no original-fault identity), spanning dur.
func ATPG(prefix string, fk FaultKey, status, backtracks int, dur time.Duration) Event {
	return Event{Kind: KindATPG, Arg: prefix, A: int64(fk), B: int64(status),
		C: int64(backtracks), DurNS: dur.Nanoseconds()}
}

// Detect builds a fault-detection event: fault key detected at cycle.
func Detect(fk FaultKey, cycle int) Event {
	return Event{Kind: KindDetect, A: int64(fk), B: int64(cycle)}
}

// Cache builds an artifact-cache lookup event.
func Cache(name string, hit bool) Event {
	a := int64(0)
	if hit {
		a = 1
	}
	return Event{Kind: KindCache, Arg: name, A: a}
}

// UnitBegin builds a work-unit-open event: unit index of the plan's
// count units, covering fault-axis slice [lo, hi) (hi -1 while the
// whole-axis sentinel is unresolved).
func UnitBegin(index, count, lo, hi int) Event {
	return Event{Kind: KindUnitBegin, A: int64(index), B: int64(count),
		C: int64(lo), D: int64(hi)}
}

// UnitEnd builds a work-unit-close event spanning dur; the payload
// mirrors UnitBegin with the axis slice resolved.
func UnitEnd(index, count, lo, hi int, dur time.Duration) Event {
	return Event{Kind: KindUnitEnd, A: int64(index), B: int64(count),
		C: int64(lo), D: int64(hi), DurNS: dur.Nanoseconds()}
}

// LocChainSeg packs a chain/segment location into one payload field
// (chain in the high bits, segment in the low 24).
func LocChainSeg(chain, seg int) int64 {
	return int64(chain)<<24 | int64(seg&0xffffff)
}

// UnpackLoc reverses LocChainSeg.
func UnpackLoc(v int64) (chain, seg int) {
	return int(v >> 24), int(v & 0xffffff)
}

// FaultKey is a packed single-stuck-at fault identity, stable within one
// circuit: the faulty signal, the consuming gate and pin for branch
// faults, and the stuck value. It exists so journal events can name a
// fault without depending on the fault package; the packing assumes
// signal and gate IDs below 2^24 (16M signals — far above any circuit
// this repo simulates).
type FaultKey int64

// NewFaultKey packs a fault identity. For stem faults pass gate = -1 and
// pin = -1 (the encodings of netlist.None and the stem pin).
func NewFaultKey(signal, gate, pin int, stuck uint8) FaultKey {
	return FaultKey(int64(signal&0xffffff)<<34 |
		int64((gate+1)&0xffffff)<<10 |
		int64((pin+1)&0xff)<<2 |
		int64(stuck&3))
}

// Unpack reverses NewFaultKey.
func (fk FaultKey) Unpack() (signal, gate, pin int, stuck uint8) {
	v := int64(fk)
	return int(v >> 34 & 0xffffff),
		int(v>>10&0xffffff) - 1,
		int(v>>2&0xff) - 1,
		uint8(v & 3)
}
