package journal

// Live progress reporting: a Progress subscribes to a recorder's event
// stream (Recorder.SetObserver) and renders a throttled one-line status
// per phase — items done over total, rate, and the ETA extrapolated
// from the rate so far. On a terminal the line rewrites in place
// (carriage return); on a pipe it degrades to occasional plain lines so
// logs stay readable. Long silent runs become
//
//	screen: 512/2876 batches 48%  12843/s  ETA 0.2s
//
// instead of nothing.

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Progress renders live run progress from journal events. Construct
// with NewProgress and install with rec.SetObserver(p.Observe). Safe
// for concurrent Observe calls.
type Progress struct {
	w         io.Writer
	tty       bool
	minPeriod time.Duration
	now       func() time.Time // injectable clock for tests

	mu        sync.Mutex
	phase     string
	pools     map[string]*poolProgress
	lastPrint time.Time
	lineOpen  bool // a \r-rewritten line is on screen (tty only)
}

type poolProgress struct {
	done     int64
	total    int64
	firstTNS int64 // TNS of the first batch observed
	lastTNS  int64 // end offset of the latest batch
}

// NewProgress returns a reporter writing to w. tty selects in-place
// line rewriting; off-terminal output is throttled harder. A typical
// caller detects tty by checking whether stderr is a character device.
func NewProgress(w io.Writer, tty bool) *Progress {
	period := 2 * time.Second
	if tty {
		period = 150 * time.Millisecond
	}
	return &Progress{
		w:         w,
		tty:       tty,
		minPeriod: period,
		now:       time.Now,
		pools:     make(map[string]*poolProgress),
	}
}

// Observe consumes one journal event; install it as the recorder's
// observer. No-op on the nil reporter.
func (p *Progress) Observe(e Event) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	switch e.Kind {
	case KindPhaseBegin:
		p.phase = e.Arg
		p.pools = make(map[string]*poolProgress)
		p.printLocked(fmt.Sprintf("%s: ...", e.Arg))
	case KindPhaseEnd:
		if p.phase == e.Arg || p.phase == "" {
			p.phase = ""
			p.printLocked(fmt.Sprintf("%s: done in %s", e.Arg,
				time.Duration(e.DurNS).Round(time.Millisecond)))
			p.endLineLocked()
		}
	case KindBatch:
		pp := p.pools[e.Arg]
		if pp == nil {
			pp = &poolProgress{firstTNS: e.TNS}
			p.pools[e.Arg] = pp
		}
		pp.done++
		pp.total = e.B
		if end := e.TNS + e.DurNS; end > pp.lastTNS {
			pp.lastTNS = end
		}
		if now := p.now(); now.Sub(p.lastPrint) >= p.minPeriod {
			p.printLocked(p.renderLocked(e.Arg, pp))
		}
	}
}

// renderLocked formats the status line for one pool. Rate and ETA come
// from the event timestamps, not the wall clock, so replaying a journal
// renders the same lines.
func (p *Progress) renderLocked(pool string, pp *poolProgress) string {
	var b strings.Builder
	if p.phase != "" {
		fmt.Fprintf(&b, "%s: ", p.phase)
	} else {
		fmt.Fprintf(&b, "%s: ", pool)
	}
	fmt.Fprintf(&b, "%d/%d batches", pp.done, pp.total)
	if pp.total > 0 {
		fmt.Fprintf(&b, " %d%%", 100*pp.done/pp.total)
	}
	elapsed := time.Duration(pp.lastTNS - pp.firstTNS)
	if elapsed > 0 && pp.done > 0 {
		rate := float64(pp.done) / elapsed.Seconds()
		fmt.Fprintf(&b, "  %.0f/s", rate)
		if remain := pp.total - pp.done; remain > 0 && rate > 0 {
			eta := time.Duration(float64(remain)/rate*1e9) * time.Nanosecond
			fmt.Fprintf(&b, "  ETA %s", eta.Round(100*time.Millisecond))
		}
	}
	return b.String()
}

// printLocked writes one status line. On a tty the line overwrites the
// previous one; elsewhere each print is its own plain line (throttling
// is the caller's job).
func (p *Progress) printLocked(line string) {
	p.lastPrint = p.now()
	if p.tty {
		// Pad to wipe leftovers from a longer previous line.
		fmt.Fprintf(p.w, "\r%-78s", line)
		p.lineOpen = true
		return
	}
	fmt.Fprintln(p.w, line)
}

// endLineLocked terminates an in-place line so subsequent regular
// output starts on a fresh row.
func (p *Progress) endLineLocked() {
	if p.tty && p.lineOpen {
		fmt.Fprintln(p.w)
		p.lineOpen = false
	}
}

// Flush terminates any in-place status line; call once after the run
// (and before printing reports). No-op off-terminal and on nil.
func (p *Progress) Flush() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.endLineLocked()
}
