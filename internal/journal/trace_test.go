package journal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// traceFile mirrors the Chrome trace-event JSON Object Format for
// validation: a traceEvents array of maps plus displayTimeUnit.
type traceFile struct {
	TraceEvents     []map[string]any `json:"traceEvents"`
	DisplayTimeUnit string           `json:"displayTimeUnit"`
}

// fixedEvents is a hand-stamped timeline (WriteTrace reads TNS/DurNS
// from the events, so constructing them directly gives a deterministic
// trace).
func fixedEvents() []Event {
	fk := NewFaultKey(42, -1, -1, 1)
	return []Event{
		{Kind: KindPhaseBegin, Arg: "screen", TNS: 1000},
		{Kind: KindCache, Arg: "engine", A: 0, TNS: 1500},
		{Kind: KindBatch, Arg: "screen", Worker: 0, A: 0, B: 2, TNS: 2000, DurNS: 500_000},
		{Kind: KindBatch, Arg: "screen", Worker: 1, A: 1, B: 2, TNS: 2500, DurNS: 400_000},
		{Kind: KindClassify, A: int64(fk), B: 2, C: LocChainSeg(0, 3), D: 7, Worker: 1, TNS: 300_000},
		{Kind: KindPhaseEnd, Arg: "screen", TNS: 1000, DurNS: 600_000},
		{Kind: KindATPG, Arg: "atpg.comb", A: int64(fk), B: 0, C: 12, TNS: 700_000, DurNS: 90_000},
		{Kind: KindDetect, A: int64(fk), B: 17, Worker: 0, TNS: 900_000},
		{Kind: KindPhaseBegin, Arg: "step2", TNS: 950_000}, // interrupted: never closed
		{Kind: KindNote, Arg: "cancelled", TNS: 980_000},
	}
}

// TestWriteTraceSchema validates the exported JSON against the Chrome
// trace-event schema requirements: well-formed JSON, and for every
// event the required keys (ph, pid, tid, name, ts) with ph from the
// set the exporter uses, dur present exactly on complete events, and a
// scope on instant events.
func TestWriteTraceSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, fixedEvents(), 3); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var phases, batches, instants int
	for i, e := range tf.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "M", "X", "i":
		default:
			t.Fatalf("event %d: ph = %q not in {M,X,i}", i, ph)
		}
		for _, key := range []string{"pid", "tid", "name"} {
			if _, ok := e[key]; !ok {
				t.Fatalf("event %d (%v): missing %q", i, e, key)
			}
		}
		if ph == "M" {
			continue // metadata rows carry no timestamp
		}
		ts, ok := e["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d: bad ts %v", i, e["ts"])
		}
		switch ph {
		case "X":
			if _, ok := e["dur"].(float64); !ok {
				t.Fatalf("event %d: complete event without dur", i)
			}
			if e["cat"] == "phase" {
				phases++
			}
			if e["cat"] == "pool" {
				batches++
			}
		case "i":
			if s, _ := e["s"].(string); s != "t" {
				t.Fatalf("event %d: instant scope = %v", i, e["s"])
			}
			instants++
		}
	}
	if phases != 1 {
		t.Errorf("phase spans = %d, want 1 (only the closed phase)", phases)
	}
	if batches != 2 {
		t.Errorf("batch spans = %d, want 2", batches)
	}
	// classify + detect + cache + note + unclosed-phase marker + dropped marker
	if instants != 6 {
		t.Errorf("instant events = %d, want 6", instants)
	}
	if !strings.Contains(buf.String(), "journal dropped 3 events") {
		t.Error("dropped-events marker missing")
	}
}

// TestWriteTraceGolden pins the exact serialization of a minimal fixed
// timeline: the exporter's output is a parsing contract for scripts, so
// format changes must be deliberate.
func TestWriteTraceGolden(t *testing.T) {
	events := []Event{
		{Kind: KindPhaseBegin, Arg: "screen", TNS: 1000},
		{Kind: KindBatch, Arg: "screen", Worker: 0, A: 0, B: 1, TNS: 2000, DurNS: 500_000},
		{Kind: KindPhaseEnd, Arg: "screen", TNS: 1000, DurNS: 600_000},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events, 0); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"fsct"}},
{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"flow"}},
{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"worker 0"}},
{"ph":"X","pid":1,"tid":1,"name":"screen","cat":"pool","ts":2.000,"dur":500.000,"args":{"index":0,"total":1}},
{"ph":"X","pid":1,"tid":0,"name":"screen","cat":"phase","ts":1.000,"dur":600.000,"args":{}}
],"displayTimeUnit":"ms"}
`
	if got := buf.String(); got != want {
		t.Errorf("trace golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteTraceCancelGolden pins the exported partial timeline of a
// sharded run canceled mid-flow: unit 0 completed (its nested phase
// closed and drawn as a span), unit 1 was interrupted inside a nested
// phase — the unit and its outer phase never closed and must surface
// as "(unclosed)" instant markers while the inner phase that did
// close still renders as a span. The exact bytes are pinned because
// operators diff partial traces from interrupted runs.
func TestWriteTraceCancelGolden(t *testing.T) {
	events := []Event{
		{Kind: KindUnitBegin, A: 0, B: 2, C: 0, D: 63, TNS: 1000},
		{Kind: KindPhaseBegin, Arg: "faultsim.seq", TNS: 2000},
		{Kind: KindPhaseEnd, Arg: "faultsim.seq", TNS: 2000, DurNS: 400_000},
		{Kind: KindUnitEnd, A: 0, B: 2, C: 0, D: 63, TNS: 1000, DurNS: 500_000},
		{Kind: KindUnitBegin, A: 1, B: 2, C: 63, D: 126, TNS: 600_000},
		{Kind: KindPhaseBegin, Arg: "faultsim.seq", TNS: 610_000},
		{Kind: KindPhaseBegin, Arg: "faultsim.compile", TNS: 620_000},
		{Kind: KindPhaseEnd, Arg: "faultsim.compile", TNS: 620_000, DurNS: 30_000},
		{Kind: KindNote, Arg: "canceled", TNS: 700_000},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events, 0); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"ph":"M","pid":1,"tid":0,"name":"process_name","args":{"name":"fsct"}},
{"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"flow"}},
{"ph":"X","pid":1,"tid":0,"name":"faultsim.seq","cat":"phase","ts":2.000,"dur":400.000,"args":{}},
{"ph":"X","pid":1,"tid":0,"name":"unit 0","cat":"unit","ts":1.000,"dur":500.000,"args":{"count":2,"lo":0,"hi":63}},
{"ph":"i","pid":1,"tid":0,"name":"unit 1 (unclosed)","cat":"unit","ts":600.000,"s":"t","args":{}},
{"ph":"i","pid":1,"tid":0,"name":"faultsim.seq (unclosed)","cat":"phase","ts":610.000,"s":"t","args":{}},
{"ph":"X","pid":1,"tid":0,"name":"faultsim.compile","cat":"phase","ts":620.000,"dur":30.000,"args":{}},
{"ph":"i","pid":1,"tid":0,"name":"canceled","cat":"note","ts":700.000,"s":"t","args":{}}
],"displayTimeUnit":"ms"}
`
	if got := buf.String(); got != want {
		t.Errorf("cancel golden mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestWriteTraceEmpty: an empty journal still yields a valid trace.
func TestWriteTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, nil, 0); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
}

// TestWriteTraceLiveRecorder: a trace exported from a recorder fed the
// normal way (Emit) is schema-valid too.
func TestWriteTraceLiveRecorder(t *testing.T) {
	r := New(64)
	r.Emit(PhaseBegin("p"))
	r.Emit(Batch("pool", 2, 0, 4, 100*time.Microsecond))
	r.Emit(PhaseEnd("p", time.Millisecond))
	var buf bytes.Buffer
	if err := WriteTrace(&buf, r.Snapshot(), r.Dropped()); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("live trace invalid: %v", err)
	}
	// 3 metadata rows (process, flow thread, worker 2 thread) + 1 batch
	// span + 1 phase span.
	if len(tf.TraceEvents) != 5 {
		t.Errorf("got %d rows, want 5", len(tf.TraceEvents))
	}
}
