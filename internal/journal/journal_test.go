package journal

import (
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsValidSink(t *testing.T) {
	var r *Recorder
	r.Emit(Note("ignored"))
	r.SetObserver(func(Event) { t.Fatal("observer on nil recorder") })
	if r.Enabled() || r.Len() != 0 || r.Dropped() != 0 || r.Capacity() != 0 {
		t.Error("nil recorder reports non-zero state")
	}
	if r.Snapshot() != nil {
		t.Error("nil recorder snapshot not nil")
	}
}

func TestEmitStampsAndOrders(t *testing.T) {
	r := New(16)
	r.Emit(PhaseBegin("screen"))
	r.Emit(PhaseEnd("screen", 5*time.Millisecond))
	ev := r.Snapshot()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	if ev[0].Kind != KindPhaseBegin || ev[1].Kind != KindPhaseEnd {
		t.Fatalf("kinds = %v, %v", ev[0].Kind, ev[1].Kind)
	}
	if ev[0].TNS < 0 {
		t.Errorf("begin TNS = %d, want >= 0", ev[0].TNS)
	}
	// End events are stamped at their start: TNS = emit offset - DurNS,
	// which here predates the begin event's emission.
	if ev[1].DurNS != (5 * time.Millisecond).Nanoseconds() {
		t.Errorf("end DurNS = %d", ev[1].DurNS)
	}
	if ev[1].TNS+ev[1].DurNS < ev[0].TNS {
		t.Errorf("end of span (%d) before begin stamp (%d)", ev[1].TNS+ev[1].DurNS, ev[0].TNS)
	}
}

func TestBoundedCapacityCountsDrops(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Emit(Detect(NewFaultKey(i, -1, -1, 0), i))
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	if r.Capacity() != 4 {
		t.Errorf("Capacity = %d, want 4", r.Capacity())
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := New(1 << 12)
	var wg sync.WaitGroup
	const workers, per = 8, 400
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Emit(Batch("pool", w, i, per, time.Microsecond))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Len() + int(r.Dropped()); got != workers*per {
		t.Errorf("recorded+dropped = %d, want %d", got, workers*per)
	}
}

func TestObserverSeesEveryEvent(t *testing.T) {
	r := New(2) // smaller than the emission count: observer still sees all
	var n int
	var mu sync.Mutex
	r.SetObserver(func(Event) { mu.Lock(); n++; mu.Unlock() })
	for i := 0; i < 5; i++ {
		r.Emit(Note("x"))
	}
	if n != 5 {
		t.Errorf("observer saw %d events, want 5", n)
	}
	r.SetObserver(nil)
	r.Emit(Note("y"))
	if n != 5 {
		t.Error("detached observer still called")
	}
}

func TestFaultKeyRoundTrip(t *testing.T) {
	cases := []struct {
		signal, gate, pin int
		stuck             uint8
	}{
		{0, -1, -1, 0},           // stem s-a-0 on signal 0
		{17, -1, -1, 1},          // stem s-a-1
		{12345, 678, 3, 1},       // branch fault
		{1 << 23, 1 << 22, 7, 0}, // near the packing bounds
	}
	for _, c := range cases {
		fk := NewFaultKey(c.signal, c.gate, c.pin, c.stuck)
		s, g, p, v := fk.Unpack()
		if s != c.signal || g != c.gate || p != c.pin || v != c.stuck {
			t.Errorf("round trip %+v -> (%d,%d,%d,%d)", c, s, g, p, v)
		}
	}
}

func TestLocChainSegRoundTrip(t *testing.T) {
	for _, c := range [][2]int{{0, 0}, {3, 17}, {12, 1 << 20}} {
		chain, seg := UnpackLoc(LocChainSeg(c[0], c[1]))
		if chain != c[0] || seg != c[1] {
			t.Errorf("loc round trip %v -> (%d,%d)", c, chain, seg)
		}
	}
}
