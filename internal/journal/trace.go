package journal

// Chrome trace-event export: the journal's timeline serialized in the
// trace-event JSON format (the "JSON Object Format" with a traceEvents
// array), loadable directly by chrome://tracing and by Perfetto's
// legacy-trace importer.
//
// Mapping:
//
//   - phase spans (KindPhaseEnd, which carries start+duration) become
//     complete ("X") events on the flow thread (tid 0);
//   - task unit spans (KindUnitEnd) become "X" events on the flow
//     thread under the "unit" category, so the per-unit decomposition
//     of a sharded run frames its phases;
//   - worker batch spans become "X" events on the worker's own thread
//     (tid = worker+1), named after their pool;
//   - ATPG attempt spans become "X" events on the flow thread under
//     their engine prefix;
//   - everything else (phase and unit begins for never-closed spans,
//     classify, detect, cache, note) becomes thread-scoped instant
//     ("i") events.
//
// Timestamps are microseconds from the recorder origin, as the format
// requires.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// TraceProcessName is the process name metadata emitted into traces.
const TraceProcessName = "fsct"

// WriteTrace serializes events (as returned by Recorder.Snapshot) in
// Chrome trace-event format. dropped, when non-zero, is recorded as an
// instant event at the end of the timeline so a truncated journal is
// visible in the viewer.
func WriteTrace(w io.Writer, events []Event, dropped int64) error {
	bw := bufio.NewWriter(w)
	tw := traceWriter{w: bw}
	tw.open()

	// Process/thread naming metadata. Worker thread IDs are emitted
	// lazily as they appear; collect them first so metadata precedes
	// the samples.
	tw.meta(`"process_name"`, 0, fmt.Sprintf(`{"name":%q}`, TraceProcessName))
	tw.meta(`"thread_name"`, 0, `{"name":"flow"}`)
	seen := map[int32]bool{}
	for _, e := range events {
		if e.Kind == KindBatch && !seen[e.Worker] {
			seen[e.Worker] = true
			tw.meta(`"thread_name"`, int(e.Worker)+1,
				fmt.Sprintf(`{"name":"worker %d"}`, e.Worker))
		}
	}

	endNS := int64(0)
	closed := map[string]int{}     // phase name -> KindPhaseEnd count
	closedUnits := map[int64]int{} // unit index -> KindUnitEnd count
	for _, e := range events {
		if e.Kind == KindPhaseEnd {
			closed[e.Arg]++
		}
		if e.Kind == KindUnitEnd {
			closedUnits[e.A]++
		}
		if t := e.TNS + e.DurNS; t > endNS {
			endNS = t
		}
	}
	for _, e := range events {
		switch e.Kind {
		case KindPhaseEnd:
			tw.complete(e.Arg, "phase", 0, e.TNS, e.DurNS, "")
		case KindPhaseBegin:
			// Closed phases are drawn by their end event; a begin with no
			// matching end (interrupted run) shows as an instant marker.
			if closed[e.Arg] > 0 {
				closed[e.Arg]--
				continue
			}
			tw.instant(e.Arg+" (unclosed)", "phase", 0, e.TNS, "")
		case KindUnitEnd:
			args := fmt.Sprintf(`{"count":%d,"lo":%d,"hi":%d}`, e.B, e.C, e.D)
			tw.complete(fmt.Sprintf("unit %d", e.A), "unit", 0, e.TNS, e.DurNS, args)
		case KindUnitBegin:
			// Closed units are drawn by their end event; a begin with no
			// matching end (interrupted run) shows as an instant marker.
			if closedUnits[e.A] > 0 {
				closedUnits[e.A]--
				continue
			}
			tw.instant(fmt.Sprintf("unit %d (unclosed)", e.A), "unit", 0, e.TNS, "")
		case KindBatch:
			args := fmt.Sprintf(`{"index":%d,"total":%d}`, e.A, e.B)
			tw.complete(e.Arg, "pool", int(e.Worker)+1, e.TNS, e.DurNS, args)
		case KindATPG:
			args := fmt.Sprintf(`{"fault":%d,"status":%d,"backtracks":%d}`, e.A, e.B, e.C)
			tw.complete(e.Arg, "atpg", 0, e.TNS, e.DurNS, args)
		case KindClassify:
			chain, seg := UnpackLoc(e.C)
			args := fmt.Sprintf(`{"fault":%d,"category":%d,"chain":%d,"seg":%d,"net":%d}`,
				e.A, e.B, chain, seg, e.D)
			tw.instant("classify", "screen", int(e.Worker)+1, e.TNS, args)
		case KindDetect:
			args := fmt.Sprintf(`{"fault":%d,"cycle":%d}`, e.A, e.B)
			tw.instant("detect", "faultsim", int(e.Worker)+1, e.TNS, args)
		case KindCache:
			verdict := "miss"
			if e.A != 0 {
				verdict = "hit"
			}
			tw.instant(e.Arg+" "+verdict, "cache", 0, e.TNS, "")
		default:
			tw.instant(e.Arg, "note", 0, e.TNS, "")
		}
	}
	if dropped > 0 {
		tw.instant(fmt.Sprintf("journal dropped %d events", dropped), "note", 0, endNS, "")
	}
	tw.close()
	if tw.err != nil {
		return tw.err
	}
	return bw.Flush()
}

// traceWriter emits the JSON by hand: every row has the same small
// shape, and hand-writing keeps the exporter allocation-light and the
// output stable for the golden test.
type traceWriter struct {
	w     io.Writer
	err   error
	first bool
}

func (t *traceWriter) open() {
	t.first = true
	t.printf(`{"traceEvents":[`)
}

func (t *traceWriter) close() {
	t.printf("\n],\"displayTimeUnit\":\"ms\"}\n")
}

func (t *traceWriter) printf(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func (t *traceWriter) row(body string) {
	sep := ",\n"
	if t.first {
		sep = "\n"
		t.first = false
	}
	t.printf("%s%s", sep, body)
}

// usec renders a nanosecond offset as microseconds with sub-μs decimals
// preserved (the format's ts/dur unit).
func usec(ns int64) string {
	return strconv.FormatFloat(float64(ns)/1e3, 'f', 3, 64)
}

func (t *traceWriter) meta(name string, tid int, args string) {
	t.row(fmt.Sprintf(`{"ph":"M","pid":1,"tid":%d,"name":%s,"args":%s}`, tid, name, args))
}

func (t *traceWriter) complete(name, cat string, tid int, tns, durNS int64, args string) {
	if args == "" {
		args = "{}"
	}
	t.row(fmt.Sprintf(`{"ph":"X","pid":1,"tid":%d,"name":%q,"cat":%q,"ts":%s,"dur":%s,"args":%s}`,
		tid, name, cat, usec(tns), usec(durNS), args))
}

func (t *traceWriter) instant(name, cat string, tid int, tns int64, args string) {
	if args == "" {
		args = "{}"
	}
	t.row(fmt.Sprintf(`{"ph":"i","pid":1,"tid":%d,"name":%q,"cat":%q,"ts":%s,"s":"t","args":%s}`,
		tid, name, cat, usec(tns), args))
}
