package journal

import (
	"strings"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading, making throttling
// deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (f *fakeClock) now() time.Time {
	f.t = f.t.Add(f.step)
	return f.t
}

func TestProgressPlainLines(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b, false)
	clk := &fakeClock{t: time.Unix(0, 0), step: 3 * time.Second} // always past minPeriod
	p.now = clk.now

	p.Observe(Event{Kind: KindPhaseBegin, Arg: "screen", TNS: 0})
	p.Observe(Event{Kind: KindBatch, Arg: "screen", A: 0, B: 4, TNS: 0, DurNS: 1e6})
	p.Observe(Event{Kind: KindBatch, Arg: "screen", A: 1, B: 4, TNS: 1e6, DurNS: 1e6})
	p.Observe(Event{Kind: KindPhaseEnd, Arg: "screen", TNS: 0, DurNS: 4e6})
	p.Flush()

	out := b.String()
	for _, want := range []string{
		"screen: ...",
		"2/4 batches 50%",
		"/s",  // a rate is rendered
		"ETA", // and an ETA while work remains
		"screen: done in 4ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\r") {
		t.Error("plain (non-tty) output uses carriage returns")
	}
}

func TestProgressThrottles(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b, false) // minPeriod 2s off-tty
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	p.now = clk.now

	p.Observe(Event{Kind: KindPhaseBegin, Arg: "p", TNS: 0})
	for i := 0; i < 1000; i++ {
		p.Observe(Event{Kind: KindBatch, Arg: "p", A: int64(i), B: 1000,
			TNS: int64(i) * 1000, DurNS: 1000})
	}
	// 1000 batch events at 1ms apart never cross the 2s min period, so
	// only the phase-begin line prints.
	if lines := strings.Count(b.String(), "\n"); lines != 1 {
		t.Errorf("throttled progress printed %d lines, want 1:\n%s", lines, b.String())
	}
}

func TestProgressTTYRewritesInPlace(t *testing.T) {
	var b strings.Builder
	p := NewProgress(&b, true)
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Second}
	p.now = clk.now

	p.Observe(Event{Kind: KindPhaseBegin, Arg: "p", TNS: 0})
	p.Observe(Event{Kind: KindBatch, Arg: "p", A: 0, B: 2, TNS: 0, DurNS: 1e6})
	p.Observe(Event{Kind: KindPhaseEnd, Arg: "p", TNS: 0, DurNS: 2e6})
	p.Flush()

	out := b.String()
	if !strings.Contains(out, "\r") {
		t.Error("tty output never rewrites in place")
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("tty output not terminated by Flush/phase end")
	}
}

func TestProgressNil(t *testing.T) {
	var p *Progress
	p.Observe(Event{Kind: KindBatch})
	p.Flush() // must not panic
}
