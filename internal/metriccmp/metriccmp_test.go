package metriccmp

import (
	"strings"
	"testing"
)

const baseline = `{
  "note": "text leaves are ignored",
  "go_version": "go1.24.0",
  "scale": 0.04,
  "flow": [
    {"circuit": "s9234", "build": {"ns_per_op": 1000000, "bytes_per_op": 200000, "allocs_per_op": 1500}},
    {"circuit": "s38584", "build": {"ns_per_op": 30000000, "bytes_per_op": 1000000, "allocs_per_op": 9000}}
  ],
  "backends": {
    "compiled": {"ns_per_op": 60000000, "bytes_per_op": 240000, "allocs_per_op": 2000}
  },
  "flow_cache_speedup": 1.10
}`

// perturb returns the baseline with one literal value substituted.
func perturb(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(baseline, old) {
		t.Fatalf("baseline does not contain %q", old)
	}
	return strings.Replace(baseline, old, new, 1)
}

func TestFlattenLabelsArraysByCircuit(t *testing.T) {
	res, err := Diff([]byte(baseline), []byte(baseline), BenchThresholds)
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, d := range res.Deltas {
		keys[d.Key] = true
	}
	for _, want := range []string{
		"flow.s9234.build.ns_per_op",
		"flow.s38584.build.allocs_per_op",
		"backends.compiled.bytes_per_op",
	} {
		if !keys[want] {
			t.Errorf("flattened keys missing %s (have %v)", want, keys)
		}
	}
	// 2 circuits x 3 metrics + 1 backend x 3 metrics; scale and
	// flow_cache_speedup are not metric leaves.
	if len(res.Deltas) != 9 {
		t.Errorf("compared %d metrics, want 9", len(res.Deltas))
	}
	if keys["scale"] || keys["flow_cache_speedup"] {
		t.Error("non-metric numeric leaves must not be compared")
	}
}

func TestIdenticalFilesHaveNoRegressions(t *testing.T) {
	res, err := Diff([]byte(baseline), []byte(baseline), BenchThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Regressions()); n != 0 {
		t.Errorf("identical files produced %d regressions", n)
	}
}

// TestInjectedRegressionFails is the acceptance gate: a candidate with
// one metric pushed past its threshold must come back regressed (the
// CLI then exits nonzero unless -warn).
func TestInjectedRegressionFails(t *testing.T) {
	// allocs threshold is 5%; +100% is an unambiguous regression.
	cand := perturb(t, `"allocs_per_op": 1500`, `"allocs_per_op": 3000`)
	res, err := Diff([]byte(baseline), []byte(cand), BenchThresholds)
	if err != nil {
		t.Fatal(err)
	}
	regs := res.Regressions()
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly one", regs)
	}
	if regs[0].Key != "flow.s9234.build.allocs_per_op" {
		t.Errorf("regressed key = %s", regs[0].Key)
	}
	var b strings.Builder
	if n := Report(&b, res, false); n != 1 {
		t.Errorf("Report returned %d, want 1", n)
	}
	if !strings.Contains(b.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", b.String())
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	// ns threshold is 25%; +10% must pass.
	cand := perturb(t, `"ns_per_op": 1000000`, `"ns_per_op": 1100000`)
	res, err := Diff([]byte(baseline), []byte(cand), BenchThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Regressions()); n != 0 {
		t.Errorf("+10%% ns_per_op regressed (%d), threshold is 25%%", n)
	}
}

func TestImprovementIsNotARegression(t *testing.T) {
	cand := perturb(t, `"bytes_per_op": 1000000`, `"bytes_per_op": 400000`)
	res, err := Diff([]byte(baseline), []byte(cand), BenchThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Regressions()); n != 0 {
		t.Errorf("a 60%% improvement counted as regression (%d)", n)
	}
}

func TestMissingAndAddedAreReportedNotFailed(t *testing.T) {
	cand := perturb(t, `"compiled"`, `"packed"`)
	res, err := Diff([]byte(baseline), []byte(cand), BenchThresholds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Missing) != 3 || len(res.Added) != 3 {
		t.Fatalf("missing=%v added=%v, want 3 each", res.Missing, res.Added)
	}
	if n := len(res.Regressions()); n != 0 {
		t.Errorf("renamed section counted as %d regressions", n)
	}
	var b strings.Builder
	Report(&b, res, false)
	if !strings.Contains(b.String(), "only in baseline") || !strings.Contains(b.String(), "only in candidate") {
		t.Errorf("report does not surface missing/added keys:\n%s", b.String())
	}
}

func TestDiffRejectsMalformedJSON(t *testing.T) {
	if _, err := Diff([]byte("{"), []byte(baseline), BenchThresholds); err == nil {
		t.Error("malformed baseline accepted")
	}
	if _, err := Diff([]byte(baseline), []byte("}"), BenchThresholds); err == nil {
		t.Error("malformed candidate accepted")
	}
}

// TestExactKeyThresholdWins pins the two-level threshold lookup the
// ledger gate relies on: a full dotted key overrides the final-segment
// family entry, and full keys match leaves the family map would skip.
func TestExactKeyThresholdWins(t *testing.T) {
	oldM := map[string]float64{
		"a.ns_per_op":                  100,
		"metrics.counters.cache.hits":  10,
		"metrics.counters.cache.total": 50,
	}
	newM := map[string]float64{
		"a.ns_per_op":                  160, // +60%
		"metrics.counters.cache.hits":  11,  // +10%
		"metrics.counters.cache.total": 80,  // +60%, no threshold
	}
	th := map[string]float64{
		"ns_per_op":                   0.25,
		"a.ns_per_op":                 1.0, // exact key loosens the family bound
		"metrics.counters.cache.hits": 0.05,
	}
	res := Compare(oldM, newM, th)
	if len(res.Deltas) != 2 {
		t.Fatalf("compared %d leaves, want 2 (cache.total has no threshold): %+v", len(res.Deltas), res.Deltas)
	}
	regs := res.Regressions()
	if len(regs) != 1 || regs[0].Key != "metrics.counters.cache.hits" {
		t.Fatalf("regressions = %+v, want exactly cache.hits (exact-key 100%% allowance covers ns)", regs)
	}
}

// TestDriftIsTwoSided: Drifted flags movement in either direction,
// Regressed only increases.
func TestDriftIsTwoSided(t *testing.T) {
	oldM := map[string]float64{"run.coverage": 100}
	newM := map[string]float64{"run.coverage": 60} // -40%
	res := Compare(oldM, newM, map[string]float64{"coverage": 0.1})
	if len(res.Regressions()) != 0 {
		t.Error("a decrease must not be a regression")
	}
	drifts := res.Drifts()
	if len(drifts) != 1 || drifts[0].Key != "run.coverage" {
		t.Fatalf("drifts = %+v, want the coverage drop flagged", drifts)
	}
}

func TestFlattenValue(t *testing.T) {
	type inner struct {
		Name string `json:"name"`
		N    int64  `json:"n"`
	}
	doc := struct {
		Wall  int64   `json:"wall_ns"`
		Items []inner `json:"items"`
	}{Wall: 42, Items: []inner{{Name: "screen", N: 7}}}
	m, err := FlattenValue(doc)
	if err != nil {
		t.Fatal(err)
	}
	if m["wall_ns"] != 42 || m["items.screen.n"] != 7 {
		t.Fatalf("flattened = %v", m)
	}
}
