// Package metriccmp compares flattened numeric metric documents against
// per-metric regression thresholds. It is the shared core of two
// regression gates: cmd/benchdiff (benchmark baselines, BENCH_*.json)
// and cmd/fsctstats check (cross-run drift against the run ledger).
//
// The comparison works on flattened documents: every numeric leaf of a
// JSON document becomes a dotted key ("flow.s9234.flow_cached.
// ns_per_op"), array elements are labeled by their "circuit" or "name"
// field when they have one (their index otherwise), and only leaves
// with a threshold are compared — structural numbers like gate counts
// ride along in the files but are not performance metrics.
//
// Thresholds are matched per leaf: an exact full-key entry wins
// ("metrics.counters.engine.cache.misses"), otherwise the final path
// segment is tried ("ns_per_op"), so benchmark gates can key a whole
// family of leaves by metric name while ledger gates pin individual
// counters.
package metriccmp

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchThresholds is the allowed relative increase per benchmark metric
// before a delta counts as a regression. Wall time is the noisiest (CI
// machines vary), allocation counts the most deterministic.
var BenchThresholds = map[string]float64{
	"ns_per_op":     0.25,
	"bytes_per_op":  0.10,
	"allocs_per_op": 0.05,
}

// Delta is one compared metric leaf.
type Delta struct {
	Key      string  // flattened path
	Old, New float64 // baseline and candidate values
	Ratio    float64 // (New-Old)/Old; +0.10 = 10% worse
	Allowed  float64 // threshold for this metric
}

// Regressed reports whether the delta exceeds its allowance (increases
// only; improvements never regress).
func (d Delta) Regressed() bool { return d.Ratio > d.Allowed }

// Drifted reports whether the delta moved beyond its allowance in
// either direction — the cross-run notion of instability, where a
// coverage drop is as suspicious as a runtime rise.
func (d Delta) Drifted() bool { return d.Ratio > d.Allowed || d.Ratio < -d.Allowed }

// Result is a full baseline/candidate comparison.
type Result struct {
	Deltas  []Delta  // every compared leaf, sorted by key
	Missing []string // metric leaves only in the baseline
	Added   []string // metric leaves only in the candidate
}

// Regressions returns the deltas that exceed their allowance.
func (r *Result) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regressed() {
			out = append(out, d)
		}
	}
	return out
}

// Drifts returns the deltas that moved beyond their allowance in either
// direction.
func (r *Result) Drifts() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Drifted() {
			out = append(out, d)
		}
	}
	return out
}

// Flatten reduces a decoded JSON document to its numeric leaves keyed
// by dotted path.
func Flatten(doc any) map[string]float64 {
	out := map[string]float64{}
	flatten("", doc, out)
	return out
}

// FlattenValue marshals v through JSON and flattens the result — the
// one-step form for typed snapshot values (obs.Metrics, ledger
// records).
func FlattenValue(v any) (map[string]float64, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, err
	}
	return Flatten(doc), nil
}

func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			flatten(joinKey(prefix, k), val, out)
		}
	case []any:
		for i, val := range x {
			key := strconv.Itoa(i)
			if m, ok := val.(map[string]any); ok {
				if name, ok := m["circuit"].(string); ok {
					key = name
				} else if name, ok := m["name"].(string); ok {
					key = name
				}
			}
			flatten(joinKey(prefix, key), val, out)
		}
	case float64:
		out[prefix] = x
	}
}

func joinKey(prefix, k string) string {
	if prefix == "" {
		return k
	}
	return prefix + "." + k
}

// metricOf returns the final path segment — the metric name family
// thresholds are keyed by.
func metricOf(key string) string {
	if i := strings.LastIndexByte(key, '.'); i >= 0 {
		return key[i+1:]
	}
	return key
}

// ThresholdFor resolves the threshold governing a flattened key: an
// exact full-key entry wins, then the final path segment. The second
// return is false when neither matches (the leaf is not a metric).
func ThresholdFor(key string, thresholds map[string]float64) (float64, bool) {
	if t, ok := thresholds[key]; ok {
		return t, true
	}
	t, ok := thresholds[metricOf(key)]
	return t, ok
}

// Compare matches the metric leaves of two flattened documents against
// the thresholds (see ThresholdFor for the key matching). Leaves
// without a threshold are ignored; leaves present on only one side are
// reported, not failed — adding a benchmark must not read as a
// regression.
func Compare(oldM, newM map[string]float64, thresholds map[string]float64) *Result {
	res := &Result{}
	for key, ov := range oldM {
		allowed, isMetric := ThresholdFor(key, thresholds)
		if !isMetric {
			continue
		}
		nv, ok := newM[key]
		if !ok {
			res.Missing = append(res.Missing, key)
			continue
		}
		ratio := 0.0
		if ov != 0 {
			ratio = (nv - ov) / ov
		} else if nv != 0 {
			ratio = 1 // from zero to anything: flag it
		}
		res.Deltas = append(res.Deltas, Delta{Key: key, Old: ov, New: nv, Ratio: ratio, Allowed: allowed})
	}
	for key := range newM {
		if _, isMetric := ThresholdFor(key, thresholds); !isMetric {
			continue
		}
		if _, ok := oldM[key]; !ok {
			res.Added = append(res.Added, key)
		}
	}
	sort.Slice(res.Deltas, func(i, j int) bool { return res.Deltas[i].Key < res.Deltas[j].Key })
	sort.Strings(res.Missing)
	sort.Strings(res.Added)
	return res
}

// Diff decodes and compares two benchmark JSON documents.
func Diff(oldDoc, newDoc []byte, thresholds map[string]float64) (*Result, error) {
	var ov, nv any
	if err := json.Unmarshal(oldDoc, &ov); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(newDoc, &nv); err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}
	return Compare(Flatten(ov), Flatten(nv), thresholds), nil
}

// Report renders the comparison: regressions always, every delta with
// verbose, and the one-line summary. It returns the number of
// regressions.
func Report(w io.Writer, res *Result, verbose bool) int {
	improved := 0
	for _, d := range res.Deltas {
		if d.Ratio < 0 {
			improved++
		}
		if d.Regressed() || verbose {
			status := "ok"
			if d.Regressed() {
				status = "REGRESSION"
			}
			fmt.Fprintf(w, "  %-52s %14.0f -> %-14.0f %+6.1f%%  (allowed %+.1f%%)  %s\n",
				d.Key, d.Old, d.New, 100*d.Ratio, 100*d.Allowed, status)
		}
	}
	for _, k := range res.Missing {
		fmt.Fprintf(w, "  %-52s only in baseline\n", k)
	}
	for _, k := range res.Added {
		fmt.Fprintf(w, "  %-52s only in candidate\n", k)
	}
	regressed := len(res.Regressions())
	fmt.Fprintf(w, "%d metrics compared: %d regressed, %d improved, %d missing, %d added\n",
		len(res.Deltas), regressed, improved, len(res.Missing), len(res.Added))
	return regressed
}
