// Package obs is the flow's observability layer: monotonic phase
// timers, atomic counters, power-of-two histograms and worker-pool
// utilization samples, collected into a machine-readable Metrics
// snapshot (the `metrics` block of a run report, the `-metrics` output
// of the CLIs, and the expvar export of ServeDebug).
//
// The design constraint is that instrumentation must cost ~nothing when
// it is off, because it sits next to the compiled-evaluator hot paths
// that PR 1 fought for. Everything follows the nil-sink pattern:
//
//   - a nil *Collector is the disabled collector — every method on it
//     is a no-op returning nil handles;
//   - a nil *Counter / *Histogram / *Span is a valid sink — Add, Inc,
//     Observe and End on nil receivers return immediately.
//
// Hot code therefore resolves its handles once, outside the loops
//
//	ctr := col.Counter("faultsim.cycles") // nil when col == nil
//	for ... { ctr.Add(int64(n)) }         // nil check, nothing else
//
// and per-event cost when disabled is a predictable nil-receiver branch.
// Batch-level call sites (one Add per 63-fault batch, not per gate
// evaluation) keep even the enabled cost out of the inner loops; the
// root-package BenchmarkObsOverhead pins both properties.
//
// A Collector is safe for concurrent use: counters and histograms are
// atomic, and the phase/pool bookkeeping takes a mutex on the (cold)
// registration paths only.
package obs

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
)

// Collector accumulates one run's metrics. The zero value is not used
// directly: New returns an enabled collector, and a nil *Collector is
// the disabled one.
type Collector struct {
	start time.Time // monotonic run origin

	traceMu sync.Mutex
	trace   io.Writer

	jr atomic.Pointer[journal.Recorder]

	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
	phases   []phase
	pools    map[string]*pool
	marks    map[string]struct{}
}

type phase struct {
	name  string
	start time.Duration // offset from Collector.start
	wall  time.Duration // 0 while still open
	open  bool
}

type pool struct {
	wall    time.Duration
	calls   int64
	workers []WorkerStat
}

// WorkerStat is one worker's contribution to one (or several merged)
// pool invocations: time spent inside the work loop and the number of
// work items it claimed.
type WorkerStat struct {
	Busy  time.Duration
	Items int64
}

// New returns an enabled collector whose clock starts now.
func New() *Collector {
	return &Collector{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
		pools:    make(map[string]*pool),
	}
}

// Enabled reports whether the collector actually records (false for the
// nil collector).
func (c *Collector) Enabled() bool { return c != nil }

// SetTrace directs live phase-tracing output (one line per phase start
// and end, stamped with the offset from the collector's origin) to w.
// Pass nil to disable. No-op on the nil collector.
func (c *Collector) SetTrace(w io.Writer) {
	if c == nil {
		return
	}
	c.traceMu.Lock()
	c.trace = w
	c.traceMu.Unlock()
}

// Tracef writes one stamped line to the trace writer, if any.
func (c *Collector) Tracef(format string, args ...any) {
	if c == nil {
		return
	}
	c.traceMu.Lock()
	if c.trace != nil {
		fmt.Fprintf(c.trace, "[%10.4fs] %s\n",
			time.Since(c.start).Seconds(), fmt.Sprintf(format, args...))
	}
	c.traceMu.Unlock()
}

// SetJournal attaches a flight-recorder journal: phase spans recorded
// through this collector are mirrored into it as events, and
// instrumented layers reach it through Journal() for their own event
// kinds (worker batches, classifications, detections, cache probes).
// Pass nil to detach. No-op on the nil collector.
//
// Several collectors may share one recorder (the CLIs run one
// collector per circuit but one journal per process): every event is
// stamped against the recorder's own origin, so the merged timeline
// stays consistent.
func (c *Collector) SetJournal(r *journal.Recorder) {
	if c == nil {
		return
	}
	c.jr.Store(r)
}

// Journal returns the attached flight recorder. Nil — a valid no-op
// sink — when none is attached or on the nil collector. Like Counter,
// resolve it once outside hot loops.
func (c *Collector) Journal() *journal.Recorder {
	if c == nil {
		return nil
	}
	return c.jr.Load()
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a valid sink) on the nil collector. Intended to be called once
// per run per name, outside hot loops.
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr := c.counters[name]
	if ctr == nil {
		ctr = &Counter{}
		c.counters[name] = ctr
	}
	return ctr
}

// MarkOnce records key in the collector's first-seen set and reports
// whether this call was the first for that key. It lets instrumented
// layers count an outcome once per run rather than once per occurrence
// — the engine cache uses it so a run's repeated probes of one circuit
// structure register a single hit or miss instead of inflating the hit
// rate with every lookup. Returns false on the nil collector (nothing
// is ever "first" on the disabled collector).
func (c *Collector) MarkOnce(key string) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.marks == nil {
		c.marks = make(map[string]struct{})
	}
	if _, ok := c.marks[key]; ok {
		return false
	}
	c.marks[key] = struct{}{}
	return true
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil (a valid sink) on the nil collector.
func (c *Collector) Histogram(name string) *Histogram {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := c.hists[name]
	if h == nil {
		h = &Histogram{}
		c.hists[name] = h
	}
	return h
}

// Phase opens a named phase span and returns its handle; call End when
// the phase completes. Phases are recorded in open order. Returns nil
// (whose End is a no-op) on the nil collector.
func (c *Collector) Phase(name string) *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	idx := len(c.phases)
	c.phases = append(c.phases, phase{name: name, start: time.Since(c.start), open: true})
	c.mu.Unlock()
	c.Tracef("phase %s: start", name)
	c.Journal().Emit(journal.PhaseBegin(name))
	return &Span{c: c, idx: idx, t0: time.Now()}
}

// Span is an open phase interval.
type Span struct {
	c    *Collector
	idx  int
	t0   time.Time
	done atomic.Bool
}

// End closes the span and returns its wall time. Safe on a nil span and
// idempotent (later calls return the recorded duration unchanged).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	if !s.done.CompareAndSwap(false, true) {
		s.c.mu.Lock()
		d := s.c.phases[s.idx].wall
		s.c.mu.Unlock()
		return d
	}
	d := time.Since(s.t0)
	s.c.mu.Lock()
	s.c.phases[s.idx].wall = d
	s.c.phases[s.idx].open = false
	s.c.mu.Unlock()
	name := s.c.phaseName(s.idx)
	s.c.Tracef("phase %s: end (%s)", name, d.Round(time.Microsecond))
	s.c.Journal().Emit(journal.PhaseEnd(name, d))
	return d
}

func (c *Collector) phaseName(idx int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.phases[idx].name
}

// RecordPool merges one worker-pool invocation into the named pool's
// accumulated statistics: wall is the invocation's elapsed time, stats
// holds one entry per dense worker ID. Repeated invocations (for
// example every fault-simulation call of a flow) accumulate per worker
// index.
func (c *Collector) RecordPool(name string, wall time.Duration, stats []WorkerStat) {
	if c == nil || len(stats) == 0 {
		return
	}
	c.mu.Lock()
	p := c.pools[name]
	if p == nil {
		p = &pool{}
		c.pools[name] = p
	}
	p.wall += wall
	p.calls++
	for len(p.workers) < len(stats) {
		p.workers = append(p.workers, WorkerStat{})
	}
	for i, s := range stats {
		p.workers[i].Busy += s.Busy
		p.workers[i].Items += s.Items
	}
	c.mu.Unlock()
}

// Counter is a monotonically increasing atomic counter. The nil counter
// is a valid sink: Add and Inc on it are no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (ct *Counter) Add(n int64) {
	if ct == nil {
		return
	}
	ct.v.Add(n)
}

// Inc increments the counter by one.
func (ct *Counter) Inc() { ct.Add(1) }

// Value returns the current count (0 on the nil counter).
func (ct *Counter) Value() int64 {
	if ct == nil {
		return 0
	}
	return ct.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// v == 0 and bucket i >= 1 holds 2^(i-1) <= v < 2^i; the last bucket
// absorbs everything larger.
const histBuckets = 33

// Histogram is a histogram-style summary over non-negative int64
// observations with power-of-two buckets, plus count/sum/max. The nil
// histogram is a valid sink.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Snapshot freezes the collector's current state into a plain-data
// Metrics value, ready for JSON encoding or FormatMetrics. Open phases
// are reported with their wall time so far. Returns nil on the nil
// collector.
func (c *Collector) Snapshot() *Metrics {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &Metrics{
		WallNS:   time.Since(c.start).Nanoseconds(),
		Counters: make(map[string]int64, len(c.counters)),
	}
	for _, ph := range c.phases {
		wall := ph.wall
		if ph.open {
			wall = time.Since(c.start) - ph.start
		}
		m.Phases = append(m.Phases, PhaseMetric{
			Name:    ph.name,
			StartNS: ph.start.Nanoseconds(),
			WallNS:  wall.Nanoseconds(),
		})
	}
	for name, ctr := range c.counters {
		m.Counters[name] = ctr.Value()
	}
	// An attached flight recorder contributes its overwrite count: a
	// non-zero journal.dropped_events warns that the event timeline (and
	// everything derived from it, like live unit-progress estimates) is
	// missing its oldest entries.
	if rec := c.jr.Load(); rec != nil {
		m.Counters["journal.dropped_events"] = rec.Dropped()
	}
	if len(c.hists) > 0 {
		m.Histograms = make(map[string]HistogramMetric, len(c.hists))
		for name, h := range c.hists {
			hm := HistogramMetric{
				Count: h.count.Load(),
				Sum:   h.sum.Load(),
				Max:   h.max.Load(),
			}
			for b := 0; b < histBuckets; b++ {
				n := h.buckets[b].Load()
				if n == 0 {
					continue
				}
				le := int64(-1) // last bucket: unbounded
				if b < histBuckets-1 {
					le = (int64(1) << uint(b)) - 1
				}
				hm.Buckets = append(hm.Buckets, HistogramBucket{Le: le, Count: n})
			}
			hm.P50 = hm.Quantile(0.50)
			hm.P95 = hm.Quantile(0.95)
			hm.P99 = hm.Quantile(0.99)
			m.Histograms[name] = hm
		}
	}
	if len(c.pools) > 0 {
		m.Pools = make(map[string]PoolMetric, len(c.pools))
		for name, p := range c.pools {
			pm := PoolMetric{WallNS: p.wall.Nanoseconds(), Calls: p.calls}
			var busy time.Duration
			for _, w := range p.workers {
				pm.Workers = append(pm.Workers, WorkerMetric{
					BusyNS: w.Busy.Nanoseconds(),
					Items:  w.Items,
				})
				busy += w.Busy
			}
			if p.wall > 0 && len(p.workers) > 0 {
				pm.Utilization = float64(busy) / (float64(p.wall) * float64(len(p.workers)))
			}
			m.Pools[name] = pm
		}
	}
	return m
}

// CounterNames returns the sorted names of all registered counters
// (diagnostics and tests).
func (c *Collector) CounterNames() []string {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.counters))
	for n := range c.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
