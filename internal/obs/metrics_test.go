package obs

import "testing"

// Quantile edge cases over the frozen bucket representation. The happy
// path (uniform 1..100) lives in TestHistogramQuantiles; these pin the
// degenerate shapes that bucket interpolation gets wrong first.

func TestQuantileEmptyHistogram(t *testing.T) {
	var empty HistogramMetric
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
		}
	}
	// A registered-but-never-observed histogram snapshots to the same.
	c := New()
	c.Histogram("idle")
	hm := c.Snapshot().Histograms["idle"]
	if hm.Count != 0 || hm.P50 != 0 || hm.P95 != 0 || hm.P99 != 0 {
		t.Errorf("unobserved histogram quantiles non-zero: %+v", hm)
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	for _, v := range []int64{0, 1, 7, 4096} {
		c := New()
		c.Histogram("one").Observe(v)
		hm := c.Snapshot().Histograms["one"]
		for _, q := range []float64{0.001, 0.5, 0.95, 0.99, 1} {
			if got := hm.Quantile(q); got != v {
				t.Errorf("Observe(%d): Quantile(%g) = %d, want %d", v, q, got, v)
			}
		}
		if hm.P50 != v || hm.P95 != v || hm.P99 != v {
			t.Errorf("Observe(%d): snapshot quantiles %+v", v, hm)
		}
	}
}

func TestQuantileAllInOneBucket(t *testing.T) {
	c := New()
	h := c.Histogram("b")
	// All of [16,31] lands in one power-of-two bucket (le 31).
	for v := int64(16); v <= 31; v++ {
		h.Observe(v)
	}
	hm := c.Snapshot().Histograms["b"]
	if len(hm.Buckets) != 1 || hm.Buckets[0].Le != 31 {
		t.Fatalf("expected one bucket le=31, got %+v", hm.Buckets)
	}
	last := int64(-1)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		got := hm.Quantile(q)
		if got < 16 || got > 31 {
			t.Errorf("Quantile(%g) = %d, outside the only bucket [16,31]", q, got)
		}
		if got < last {
			t.Errorf("Quantile(%g) = %d not monotone (prev %d)", q, got, last)
		}
		last = got
	}
	if got := hm.Quantile(1); got != 31 {
		t.Errorf("Quantile(1) = %d, want the exact max 31", got)
	}
}

func TestQuantileBeyondLastBucketBoundary(t *testing.T) {
	// Values with bits.Len64 >= 33 overflow into the unbounded bucket
	// (Le -1 in the snapshot). The estimate must stay within [1, Max]
	// and hit the exact recorded max at the top.
	c := New()
	h := c.Histogram("huge")
	const big = int64(1) << 40
	h.Observe(big)
	hm := c.Snapshot().Histograms["huge"]
	if len(hm.Buckets) != 1 || hm.Buckets[0].Le != -1 {
		t.Fatalf("expected only the overflow bucket, got %+v", hm.Buckets)
	}
	if got := hm.Quantile(1); got != big {
		t.Errorf("Quantile(1) = %d, want max %d", got, big)
	}
	if got := hm.Quantile(0.5); got <= 0 || got > big {
		t.Errorf("Quantile(0.5) = %d, want within (0,%d]", got, big)
	}

	// Mixed: small values plus one overflow observation. The overflow
	// bucket's range starts past the last finite boundary, so mid
	// quantiles stay small and only the top rank reaches the max.
	c2 := New()
	h2 := c2.Histogram("mix")
	for v := int64(1); v <= 9; v++ {
		h2.Observe(v)
	}
	h2.Observe(big)
	m2 := c2.Snapshot().Histograms["mix"]
	if got := m2.Quantile(0.5); got < 1 || got > 9 {
		t.Errorf("mixed Quantile(0.5) = %d, want within the small values [1,9]", got)
	}
	if got := m2.Quantile(1); got != big {
		t.Errorf("mixed Quantile(1) = %d, want max %d", got, big)
	}
	if m2.Max != big || m2.Count != 10 {
		t.Fatalf("snapshot summary wrong: %+v", m2)
	}
}
