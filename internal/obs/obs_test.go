package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsValidSink(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector must report disabled")
	}
	// Every operation must be a no-op, not a panic.
	c.SetTrace(nil)
	c.Tracef("ignored %d", 1)
	ctr := c.Counter("x")
	ctr.Add(5)
	ctr.Inc()
	if ctr.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	h := c.Histogram("h")
	h.Observe(42)
	sp := c.Phase("p")
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
	c.RecordPool("pool", time.Second, []WorkerStat{{Busy: time.Second, Items: 1}})
	if c.Snapshot() != nil {
		t.Fatal("nil collector snapshot must be nil")
	}
	if c.CounterNames() != nil {
		t.Fatal("nil collector has no counter names")
	}
}

func TestCountersAndHistogram(t *testing.T) {
	c := New()
	a := c.Counter("a")
	a.Add(3)
	a.Inc()
	if c.Counter("a") != a {
		t.Fatal("Counter must return the same instance per name")
	}
	if got := a.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	h := c.Histogram("bt")
	for _, v := range []int64{0, 1, 2, 3, 100, -7} {
		h.Observe(v)
	}
	m := c.Snapshot()
	if m.Counters["a"] != 4 {
		t.Fatalf("snapshot counter = %d, want 4", m.Counters["a"])
	}
	hm := m.Histograms["bt"]
	if hm.Count != 6 || hm.Sum != 106 || hm.Max != 100 {
		t.Fatalf("histogram summary = %+v", hm)
	}
	var n int64
	for _, b := range hm.Buckets {
		n += b.Count
	}
	if n != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", n)
	}
	// 0 and the clamped -7 land in the v == 0 bucket (le 0).
	if hm.Buckets[0].Le != 0 || hm.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket = %+v", hm.Buckets[0])
	}
}

func TestHistogramQuantiles(t *testing.T) {
	c := New()
	h := c.Histogram("q")
	// 100 observations 1..100: quantiles are known up to bucket
	// resolution (power-of-two buckets interpolate within a factor of 2).
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	hm := c.Snapshot().Histograms["q"]
	if hm.P50 <= 0 || hm.P95 <= 0 || hm.P99 <= 0 {
		t.Fatalf("snapshot did not fill quantiles: %+v", hm)
	}
	if hm.P50 > hm.P95 || hm.P95 > hm.P99 {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", hm.P50, hm.P95, hm.P99)
	}
	// True p50 = 50; the containing bucket is [32,63].
	if hm.P50 < 32 || hm.P50 > 63 {
		t.Errorf("p50 = %d, want within its bucket [32,63]", hm.P50)
	}
	// True p99 = 99; the containing bucket [64,127] is clamped to Max.
	if hm.P99 < 64 || hm.P99 > 100 {
		t.Errorf("p99 = %d, want within [64,100]", hm.P99)
	}
	if got := hm.Quantile(1.0); got != 100 {
		t.Errorf("Quantile(1.0) = %d, want the max 100", got)
	}

	// Exact cases: a single-value histogram hits that value at every q.
	c2 := New()
	c2.Histogram("one").Observe(7)
	one := c2.Snapshot().Histograms["one"]
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 7 {
			t.Errorf("single-value Quantile(%g) = %d, want 7", q, got)
		}
	}

	// Degenerate inputs return 0 rather than panicking.
	var empty HistogramMetric
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
	if got := one.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %d, want 0", got)
	}
}

func TestPhasesAndPools(t *testing.T) {
	c := New()
	sp := c.Phase("screen")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatal("phase duration must be positive")
	}
	if again := sp.End(); again != d {
		t.Fatalf("End not idempotent: %v then %v", d, again)
	}
	open := c.Phase("step2") // left open on purpose
	_ = open
	c.RecordPool("faultsim", 10*time.Millisecond, []WorkerStat{
		{Busy: 8 * time.Millisecond, Items: 5},
		{Busy: 6 * time.Millisecond, Items: 3},
	})
	c.RecordPool("faultsim", 10*time.Millisecond, []WorkerStat{
		{Busy: 10 * time.Millisecond, Items: 7},
	})
	m := c.Snapshot()
	if len(m.Phases) != 2 || m.Phases[0].Name != "screen" || m.Phases[1].Name != "step2" {
		t.Fatalf("phases = %+v", m.Phases)
	}
	if m.Phases[1].WallNS <= 0 {
		t.Fatal("open phase must report wall time so far")
	}
	p := m.Pools["faultsim"]
	if p.Calls != 2 || len(p.Workers) != 2 {
		t.Fatalf("pool = %+v", p)
	}
	if p.Workers[0].Items != 12 || p.Workers[1].Items != 3 {
		t.Fatalf("worker merge wrong: %+v", p.Workers)
	}
	// utilization = 24ms busy / (20ms wall * 2 workers) = 0.6
	if p.Utilization < 0.55 || p.Utilization > 0.65 {
		t.Fatalf("utilization = %f, want ~0.6", p.Utilization)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := New()
	ctr := c.Counter("n")
	h := c.Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				ctr.Inc()
				h.Observe(int64(i))
				c.Counter("n").Inc()
			}
		}()
	}
	wg.Wait()
	if got := ctr.Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
	if got := c.Snapshot().Histograms["h"].Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestTraceOutput(t *testing.T) {
	c := New()
	var b strings.Builder
	c.SetTrace(&b)
	c.Phase("screen").End()
	c.Tracef("custom %s", "line")
	out := b.String()
	for _, want := range []string{"phase screen: start", "phase screen: end", "custom line"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	c := New()
	c.Counter("screen.easy").Add(10)
	c.Phase("screen").End()
	c.Histogram("atpg.backtracks").Observe(17)
	c.RecordPool("screen", time.Millisecond, []WorkerStat{{Busy: time.Millisecond, Items: 4}})
	raw, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["screen.easy"] != 10 || len(back.Phases) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Histograms["atpg.backtracks"].Sum != 17 {
		t.Fatalf("histogram lost: %+v", back.Histograms)
	}
}

func TestCounterNamesSorted(t *testing.T) {
	c := New()
	c.Counter("b")
	c.Counter("a")
	c.Counter("c")
	names := c.CounterNames()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestPublishAndServeDebug(t *testing.T) {
	c := New()
	c.Counter("x").Add(7)
	Publish(c)
	// Replacing and clearing must not panic (expvar re-publish guard).
	Publish(New())
	Publish(c)
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	if srv.Addr == "" || strings.HasSuffix(srv.Addr, ":0") {
		t.Fatalf("server Addr %q does not carry the bound port", srv.Addr)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", srv.Addr))
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "fsct_metrics") {
		t.Error("/debug/vars does not export the published collector")
	}
}

// TestServeDebugClose: closing the returned server frees the listener,
// so tests and long-lived processes can tear the debug surface down
// instead of leaking it for the life of the process.
func TestServeDebugClose(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	addr := srv.Addr
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The port is free again: binding it anew must succeed. The release
	// happens on the background Serve goroutine, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv2, err := ServeDebug(addr)
		if err == nil {
			srv2.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s after Close: %v", addr, err)
		}
		time.Sleep(time.Millisecond)
	}
}
