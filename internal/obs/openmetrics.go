package obs

// Prometheus / OpenMetrics text exposition of a Metrics snapshot, so
// standard scrapers can track a long-running process: counters become
// counter families, phases and pools become labeled gauges, and the
// power-of-two histograms behind the p50/p95/p99 estimates are exported
// as native cumulative prometheus histograms — the scraper's quantile
// math sees exactly the buckets Quantile interpolates over. ServeDebug
// serves this at /metrics for the currently published collector.

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteOpenMetrics renders the snapshot in the OpenMetrics text format
// (also parseable as Prometheus text format 0.0.4): HELP/TYPE headers
// per family, `fsct_`-prefixed names with dots mapped to underscores,
// native cumulative histogram buckets with `le` labels, and the
// mandatory terminal `# EOF`. A nil snapshot renders as an empty (but
// valid) exposition. Output is deterministic: families and label values
// are emitted in sorted order.
func WriteOpenMetrics(w io.Writer, m *Metrics) error {
	ew := &errWriter{w: w}
	if m != nil {
		writeWall(ew, m)
		writePhases(ew, m)
		writeCounters(ew, m)
		writeHistograms(ew, m)
		writePools(ew, m)
	}
	ew.printf("# EOF\n")
	return ew.err
}

// errWriter latches the first write error so the emitters above stay
// linear instead of threading errors through every Fprintf.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// promName maps a dotted metric name onto the prometheus name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*, prefixed with the exporter namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("fsct_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func writeWall(w *errWriter, m *Metrics) {
	w.printf("# HELP fsct_run_wall_seconds Wall time from collector creation to this snapshot.\n")
	w.printf("# TYPE fsct_run_wall_seconds gauge\n")
	w.printf("fsct_run_wall_seconds %g\n", float64(m.WallNS)/1e9)
}

func writePhases(w *errWriter, m *Metrics) {
	if len(m.Phases) == 0 {
		return
	}
	// A snapshot may hold several spans of the same phase name; a
	// prometheus family must not repeat a label set, so merge them.
	wall := map[string]int64{}
	var names []string
	for _, ph := range m.Phases {
		if _, ok := wall[ph.Name]; !ok {
			names = append(names, ph.Name)
		}
		wall[ph.Name] += ph.WallNS
	}
	sort.Strings(names)
	w.printf("# HELP fsct_phase_seconds Accumulated wall time per recorded flow phase.\n")
	w.printf("# TYPE fsct_phase_seconds gauge\n")
	for _, n := range names {
		w.printf("fsct_phase_seconds{phase=%q} %g\n", promLabel(n), float64(wall[n])/1e9)
	}
}

func writeCounters(w *errWriter, m *Metrics) {
	names := make([]string, 0, len(m.Counters))
	for n := range m.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := promName(n)
		w.printf("# HELP %s Counter %q.\n", fam, n)
		w.printf("# TYPE %s counter\n", fam)
		w.printf("%s_total %d\n", fam, m.Counters[n])
	}
}

func writeHistograms(w *errWriter, m *Metrics) {
	names := make([]string, 0, len(m.Histograms))
	for n := range m.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := m.Histograms[n]
		fam := promName(n)
		w.printf("# HELP %s Histogram %q (power-of-two buckets).\n", fam, n)
		w.printf("# TYPE %s histogram\n", fam)
		var cum int64
		for _, b := range h.Buckets {
			if b.Le < 0 {
				// The unbounded overflow bucket is the +Inf line below.
				continue
			}
			cum += b.Count
			w.printf("%s_bucket{le=\"%d\"} %d\n", fam, b.Le, cum)
		}
		w.printf("%s_bucket{le=\"+Inf\"} %d\n", fam, h.Count)
		w.printf("%s_sum %d\n", fam, h.Sum)
		w.printf("%s_count %d\n", fam, h.Count)
	}
}

func writePools(w *errWriter, m *Metrics) {
	if len(m.Pools) == 0 {
		return
	}
	names := make([]string, 0, len(m.Pools))
	for n := range m.Pools {
		names = append(names, n)
	}
	sort.Strings(names)
	w.printf("# HELP fsct_pool_utilization Fraction of pool worker-seconds spent working.\n")
	w.printf("# TYPE fsct_pool_utilization gauge\n")
	for _, n := range names {
		w.printf("fsct_pool_utilization{pool=%q} %g\n", promLabel(n), m.Pools[n].Utilization)
	}
	w.printf("# HELP fsct_pool_wall_seconds Accumulated pool invocation wall time.\n")
	w.printf("# TYPE fsct_pool_wall_seconds gauge\n")
	for _, n := range names {
		w.printf("fsct_pool_wall_seconds{pool=%q} %g\n", promLabel(n), float64(m.Pools[n].WallNS)/1e9)
	}
	w.printf("# HELP fsct_pool_calls Pool invocations recorded.\n")
	w.printf("# TYPE fsct_pool_calls counter\n")
	for _, n := range names {
		w.printf("fsct_pool_calls_total{pool=%q} %d\n", promLabel(n), m.Pools[n].Calls)
	}
	w.printf("# HELP fsct_pool_workers Workers observed in the pool.\n")
	w.printf("# TYPE fsct_pool_workers gauge\n")
	for _, n := range names {
		w.printf("fsct_pool_workers{pool=%q} %d\n", promLabel(n), len(m.Pools[n].Workers))
	}
}
