package obs

// Opt-in HTTP debug surface for long runs: net/http/pprof profiles and
// an expvar export of the currently published collector. Nothing here
// runs unless a CLI passes -debug <addr>; the blank pprof import only
// registers handlers on the default mux, it starts no goroutines.

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
	"sync/atomic"
)

var (
	published   atomic.Pointer[Collector]
	publishOnce sync.Once
)

// Publish makes c the collector exported as the expvar variable
// "fsct_metrics" (a Metrics snapshot taken on every scrape). Calling it
// again replaces the published collector — a flow that runs several
// circuits republishes per circuit. Publishing nil clears the export.
func Publish(c *Collector) {
	published.Store(c)
	publishOnce.Do(func() {
		expvar.Publish("fsct_metrics", expvar.Func(func() any {
			return published.Load().Snapshot()
		}))
	})
}

// ServeDebug starts an HTTP server on addr (in the background) serving
// the default mux: /debug/pprof/* from net/http/pprof and /debug/vars
// from expvar, including the collector published with Publish. The
// listen error is returned synchronously; serve errors after that are
// ignored (the process is shutting down). The returned server's Addr
// holds the bound address (useful with addr ":0"), and Close/Shutdown
// stops it — tests that spin up a debug surface can tear it down
// instead of leaking the listener for the life of the process.
func ServeDebug(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: http.DefaultServeMux}
	go func() {
		_ = srv.Serve(ln)
	}()
	return srv, nil
}
