package obs

// Opt-in HTTP debug surface for long runs: net/http/pprof profiles, an
// expvar export of the currently published collector, and an
// OpenMetrics rendering of its live snapshot at /metrics. Nothing here
// runs unless a CLI passes -debug <addr>.
//
// Each ServeDebug call builds its own mux rather than serving
// http.DefaultServeMux: the debug surface must expose exactly its own
// endpoints, not whatever the process (or a test binary) happened to
// hang on the global mux, and two debug servers in one process must not
// see each other's registrations. (Importing net/http/pprof still
// registers handlers on the default mux as a side effect — that is the
// stdlib's doing — but no ServeDebug server serves that mux.)

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

var (
	published   atomic.Pointer[Collector]
	publishOnce sync.Once
)

// Publish makes c the collector exported as the expvar variable
// "fsct_metrics" (a Metrics snapshot taken on every scrape) and served
// at /metrics by ServeDebug servers. Calling it again replaces the
// published collector — a flow that runs several circuits republishes
// per circuit. Publishing nil clears the export.
func Publish(c *Collector) {
	published.Store(c)
	publishOnce.Do(func() {
		expvar.Publish("fsct_metrics", expvar.Func(func() any {
			return published.Load().Snapshot()
		}))
	})
}

// MetricsHandler serves the published collector's live snapshot in the
// OpenMetrics text format (see WriteOpenMetrics). With no collector
// published it serves a valid empty exposition, so scrapers stay green
// across the gap before the first Publish.
func MetricsHandler(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	_ = WriteOpenMetrics(w, published.Load().Snapshot())
}

// debugMux builds the explicit handler set of one debug server, keeping
// the paths the default mux would have offered (/debug/pprof/*,
// /debug/vars) plus the /metrics exposition.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", MetricsHandler)
	return mux
}

// ServeDebug starts an HTTP server on addr (in the background) serving
// its own mux: /debug/pprof/* from net/http/pprof, /debug/vars from
// expvar (including the collector published with Publish), and
// /metrics as an OpenMetrics exposition of that collector's live
// snapshot. The listen error is returned synchronously; serve errors
// after that are ignored (the process is shutting down). The returned
// server's Addr holds the bound address (useful with addr ":0"), and
// Close/Shutdown stops it — tests that spin up a debug surface can
// tear it down instead of leaking the listener for the life of the
// process.
func ServeDebug(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug server: %w", err)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: debugMux()}
	go func() {
		_ = srv.Serve(ln)
	}()
	return srv, nil
}
