package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServeDebugUsesOwnMux pins the isolation contract: the debug
// server serves exactly its own endpoints, not http.DefaultServeMux —
// a handler registered globally by the process (or another test) must
// not leak onto the debug surface, while the classic /debug paths keep
// working.
func TestServeDebugUsesOwnMux(t *testing.T) {
	http.HandleFunc("/sentinel-not-a-debug-endpoint", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "leaked")
	})
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()

	if code, body := get(t, srv.Addr, "/sentinel-not-a-debug-endpoint"); code == http.StatusOK && strings.Contains(body, "leaked") {
		t.Error("default-mux handler leaked onto the debug server")
	}
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/metrics"} {
		if code, _ := get(t, srv.Addr, path); code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, code)
		}
	}
}

// TestSequentialServersDoNotInterfere: a second ServeDebug server after
// the first is closed (and while it is up) serves the full endpoint
// set — per-server muxes mean no duplicate-registration panic and no
// shared handler state between servers.
func TestSequentialServersDoNotInterfere(t *testing.T) {
	check := func(addr string) {
		t.Helper()
		for _, path := range []string{"/debug/pprof/", "/debug/vars", "/metrics"} {
			if code, _ := get(t, addr, path); code != http.StatusOK {
				t.Errorf("GET %s on %s = %d, want 200", path, addr, code)
			}
		}
	}

	srv1, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("first ServeDebug: %v", err)
	}
	check(srv1.Addr)

	// Overlapping: a second server while the first is still up.
	srv2, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("second (concurrent) ServeDebug: %v", err)
	}
	check(srv2.Addr)
	check(srv1.Addr)
	if err := srv1.Close(); err != nil {
		t.Fatalf("Close first: %v", err)
	}

	// Sequential: the survivor still works after its sibling is gone.
	check(srv2.Addr)
	srv2.Close()
}
