package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
)

// exposition renders a populated snapshot for the format tests.
func exposition(t *testing.T) (*Metrics, string) {
	t.Helper()
	c := New()
	c.Counter("engine.cache.hits").Add(9)
	c.Counter("screen.easy").Add(120)
	h := c.Histogram("atpg.backtracks")
	for _, v := range []int64{0, 1, 2, 3, 7, 100, 5000} {
		h.Observe(v)
	}
	c.Phase("screen").End()
	c.Phase("screen").End() // repeated phase: families must not repeat label sets
	c.Phase("step2").End()
	c.RecordPool("faultsim", 10*time.Millisecond, []WorkerStat{
		{Busy: 9 * time.Millisecond, Items: 63},
		{Busy: 6 * time.Millisecond, Items: 41},
	})
	m := c.Snapshot()
	var b strings.Builder
	if err := WriteOpenMetrics(&b, m); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	return m, b.String()
}

// TestOpenMetricsFormatSanity is the acceptance gate on the exposition:
// HELP/TYPE headers for every family, counter samples under the _total
// convention, histogram buckets cumulative and monotone with _sum and
// _count matching the snapshot, and the terminal # EOF.
func TestOpenMetricsFormatSanity(t *testing.T) {
	m, out := exposition(t)

	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("exposition must end with # EOF:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE fsct_run_wall_seconds gauge",
		"# HELP fsct_engine_cache_hits",
		"# TYPE fsct_engine_cache_hits counter",
		"fsct_engine_cache_hits_total 9",
		"fsct_screen_easy_total 120",
		"# TYPE fsct_atpg_backtracks histogram",
		"# TYPE fsct_phase_seconds gauge",
		`fsct_pool_utilization{pool="faultsim"}`,
		`fsct_pool_calls_total{pool="faultsim"} 1`,
		`fsct_pool_workers{pool="faultsim"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Every TYPE family appears exactly once, and every sample line's
	// family has a TYPE header.
	types := map[string]int{}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]]++
		}
	}
	for fam, n := range types {
		if n != 1 {
			t.Errorf("family %s declared %d times", fam, n)
		}
	}
	if _, ok := types["fsct_phase_seconds"]; !ok {
		t.Error("repeated phase names must merge into one family")
	}
	if c := strings.Count(out, `{phase="screen"}`); c != 1 {
		t.Errorf("label set {phase=screen} appears %d times, want 1 (merged)", c)
	}

	// Histogram buckets: cumulative, monotone non-decreasing, le values
	// increasing, +Inf equals _count, _sum/_count match the snapshot.
	hm := m.Histograms["atpg.backtracks"]
	var (
		prevCum int64 = -1
		prevLe  int64 = -1
		lastCum int64
		buckets int
	)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "fsct_atpg_backtracks_bucket{le=") {
			continue
		}
		buckets++
		var leStr string
		var cum int64
		if _, err := fmt.Sscanf(line, "fsct_atpg_backtracks_bucket{le=%q} %d", &leStr, &cum); err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if cum < prevCum {
			t.Fatalf("bucket counts not cumulative-monotone at %q (%d after %d)", line, cum, prevCum)
		}
		if leStr != "+Inf" {
			le, err := strconv.ParseInt(leStr, 10, 64)
			if err != nil || le <= prevLe {
				t.Fatalf("bucket boundaries not increasing at %q", line)
			}
			prevLe = le
		}
		prevCum, lastCum = cum, cum
	}
	if buckets < 2 {
		t.Fatalf("histogram rendered only %d bucket lines:\n%s", buckets, out)
	}
	if lastCum != hm.Count {
		t.Errorf("+Inf bucket = %d, want snapshot count %d", lastCum, hm.Count)
	}
	if !strings.Contains(out, fmt.Sprintf("fsct_atpg_backtracks_sum %d\n", hm.Sum)) {
		t.Errorf("_sum does not match snapshot sum %d:\n%s", hm.Sum, out)
	}
	if !strings.Contains(out, fmt.Sprintf("fsct_atpg_backtracks_count %d\n", hm.Count)) {
		t.Errorf("_count does not match snapshot count %d:\n%s", hm.Count, out)
	}
}

// TestOpenMetricsZeroObservationHistogram pins the degenerate
// exposition: a histogram that was declared but never observed must
// still render a complete, parseable family — one +Inf bucket at 0 and
// zero _sum/_count — not vanish or emit bogus buckets.
func TestOpenMetricsZeroObservationHistogram(t *testing.T) {
	c := New()
	c.Histogram("atpg.backtracks") // declared, zero observations
	var b strings.Builder
	if err := WriteOpenMetrics(&b, c.Snapshot()); err != nil {
		t.Fatalf("WriteOpenMetrics: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE fsct_atpg_backtracks histogram",
		`fsct_atpg_backtracks_bucket{le="+Inf"} 0`,
		"fsct_atpg_backtracks_sum 0",
		"fsct_atpg_backtracks_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-observation exposition missing %q:\n%s", want, out)
		}
	}
	// No bounded bucket lines: every bucket is empty, so only the +Inf
	// terminator appears.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "fsct_atpg_backtracks_bucket{le=") &&
			!strings.Contains(line, "+Inf") {
			t.Errorf("zero-observation histogram rendered bounded bucket %q", line)
		}
	}
}

// TestOpenMetricsJournalDropped pins satellite wiring: an attached
// flight recorder's overwrite count surfaces as a counter in Snapshot
// and therefore as fsct_journal_dropped_events_total in the exposition.
func TestOpenMetricsJournalDropped(t *testing.T) {
	c := New()
	rec := journal.New(4)
	c.SetJournal(rec)
	for i := 0; i < 7; i++ { // capacity 4: three oldest events overwritten
		rec.Emit(journal.Note("n"))
	}
	m := c.Snapshot()
	if got := m.Counters["journal.dropped_events"]; got != 3 {
		t.Fatalf("journal.dropped_events = %d, want 3", got)
	}
	var b strings.Builder
	if err := WriteOpenMetrics(&b, m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "fsct_journal_dropped_events_total 3") {
		t.Fatalf("exposition missing fsct_journal_dropped_events_total:\n%s", b.String())
	}
}

func TestOpenMetricsNilSnapshot(t *testing.T) {
	var b strings.Builder
	if err := WriteOpenMetrics(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "# EOF\n" {
		t.Fatalf("nil snapshot exposition = %q, want bare # EOF", b.String())
	}
}

// TestMetricsEndpoint scrapes /metrics on a live debug server — the
// curl path of the acceptance criteria.
func TestMetricsEndpoint(t *testing.T) {
	c := New()
	c.Counter("screen.hard").Add(33)
	Publish(c)
	defer Publish(nil)
	srv, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Errorf("Content-Type = %q, want an openmetrics-text type", ct)
	}
	out := string(body)
	if !strings.Contains(out, "fsct_screen_hard_total 33") {
		t.Errorf("/metrics does not expose the published collector:\n%s", out)
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("/metrics exposition does not end with # EOF")
	}
}
