package obs

// This file defines the frozen, JSON-ready snapshot types. They carry
// no behaviour beyond encoding: a Metrics value is plain data that a
// run report embeds (core.Report.Metrics), the CLIs emit with
// -metrics, and ServeDebug exports over expvar.

// Metrics is a frozen snapshot of a Collector.
type Metrics struct {
	// WallNS is the nanoseconds elapsed from collector creation to the
	// snapshot.
	WallNS int64 `json:"wall_ns"`
	// Phases lists the recorded phase spans in open order.
	Phases []PhaseMetric `json:"phases,omitempty"`
	// Counters holds every registered counter by name.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Histograms holds every registered histogram by name.
	Histograms map[string]HistogramMetric `json:"histograms,omitempty"`
	// Pools holds accumulated worker-pool utilization by pool name.
	Pools map[string]PoolMetric `json:"pools,omitempty"`
}

// PhaseMetric is one phase span: wall time and the offset of its start
// from the collector's origin.
type PhaseMetric struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	WallNS  int64  `json:"wall_ns"`
}

// HistogramMetric summarizes one histogram: observation count, sum and
// maximum, plus the non-empty power-of-two buckets.
type HistogramMetric struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket counts observations v <= Le; Le == -1 marks the
// unbounded overflow bucket.
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// PoolMetric is the accumulated utilization of one worker pool across
// every recorded invocation: total pool wall time, invocation count and
// per-worker busy time / item counts. Utilization is the fraction of
// the pool's total worker-seconds actually spent working
// (sum(busy) / (wall * len(workers))); a value well below 1 with
// uneven Workers entries is the load-imbalance signature.
type PoolMetric struct {
	WallNS      int64          `json:"wall_ns"`
	Calls       int64          `json:"calls"`
	Utilization float64        `json:"utilization"`
	Workers     []WorkerMetric `json:"workers,omitempty"`
}

// WorkerMetric is one worker's accumulated busy time and item count.
type WorkerMetric struct {
	BusyNS int64 `json:"busy_ns"`
	Items  int64 `json:"items"`
}
