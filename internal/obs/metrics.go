package obs

// This file defines the frozen, JSON-ready snapshot types. They carry
// no behaviour beyond encoding (and quantile estimation over the frozen
// buckets): a Metrics value is plain data that a run report embeds
// (core.Report.Metrics), the CLIs emit with -metrics, and ServeDebug
// exports over expvar.

import "math"

// Metrics is a frozen snapshot of a Collector.
type Metrics struct {
	// WallNS is the nanoseconds elapsed from collector creation to the
	// snapshot.
	WallNS int64 `json:"wall_ns"`
	// Phases lists the recorded phase spans in open order.
	Phases []PhaseMetric `json:"phases,omitempty"`
	// Counters holds every registered counter by name.
	Counters map[string]int64 `json:"counters,omitempty"`
	// Histograms holds every registered histogram by name.
	Histograms map[string]HistogramMetric `json:"histograms,omitempty"`
	// Pools holds accumulated worker-pool utilization by pool name.
	Pools map[string]PoolMetric `json:"pools,omitempty"`
}

// PhaseMetric is one phase span: wall time and the offset of its start
// from the collector's origin.
type PhaseMetric struct {
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	WallNS  int64  `json:"wall_ns"`
}

// HistogramMetric summarizes one histogram: observation count, sum and
// maximum, the non-empty power-of-two buckets, and the p50/p95/p99
// quantiles estimated from them at snapshot time (see Quantile for the
// estimation and its error bound).
type HistogramMetric struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	P50     int64             `json:"p50,omitempty"`
	P95     int64             `json:"p95,omitempty"`
	P99     int64             `json:"p99,omitempty"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket counts observations v <= Le; Le == -1 marks the
// unbounded overflow bucket.
type HistogramBucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// Quantile estimates the q-quantile (0 < q <= 1) of the recorded
// distribution from the frozen buckets: the observation at rank
// ceil(q*Count) is located by cumulative bucket count and linearly
// interpolated across its bucket's value range, so the estimate is
// exact at bucket boundaries and off by at most the bucket width
// (power-of-two buckets: a factor of two) inside one. The top of the
// distribution is clamped to the exact recorded Max. Returns 0 on an
// empty histogram.
func (h HistogramMetric) Quantile(q float64) int64 {
	if h.Count <= 0 || len(h.Buckets) == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum, prevLe int64
	for _, b := range h.Buckets {
		// Bucket b covers [2^(k-1), 2^k-1] for Le = 2^k-1; the overflow
		// bucket (Le -1) starts past the last finite boundary.
		lo := (b.Le + 1) / 2
		hi := b.Le
		if b.Le == -1 {
			lo = prevLe + 1
			hi = h.Max
		}
		if hi > h.Max {
			hi = h.Max
		}
		if lo > hi {
			lo = hi
		}
		if rank <= cum+b.Count {
			frac := float64(rank-cum) / float64(b.Count)
			return lo + int64(frac*float64(hi-lo)+0.5)
		}
		cum += b.Count
		prevLe = b.Le
	}
	return h.Max
}

// PoolMetric is the accumulated utilization of one worker pool across
// every recorded invocation: total pool wall time, invocation count and
// per-worker busy time / item counts. Utilization is the fraction of
// the pool's total worker-seconds actually spent working
// (sum(busy) / (wall * len(workers))); a value well below 1 with
// uneven Workers entries is the load-imbalance signature.
type PoolMetric struct {
	WallNS      int64          `json:"wall_ns"`
	Calls       int64          `json:"calls"`
	Utilization float64        `json:"utilization"`
	Workers     []WorkerMetric `json:"workers,omitempty"`
}

// WorkerMetric is one worker's accumulated busy time and item count.
type WorkerMetric struct {
	BusyNS int64 `json:"busy_ns"`
	Items  int64 `json:"items"`
}
