package netlist

import (
	"testing"

	"repro/internal/logic"
)

// buildToy constructs the tiny sequential circuit used across the tests:
//
//	a, b : inputs
//	g1 = NAND(a, b)
//	ff1 = DFF(g1)
//	g2 = OR(ff1, b)
//	ff2 = DFF(g2)
//	out = NOT(ff2)  (PO)
func buildToy(t *testing.T) *Circuit {
	t.Helper()
	c := New("toy")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	g1, _ := c.AddGate("g1", logic.OpNand, a, b)
	ff1, _ := c.AddFF("ff1")
	if err := c.SetFFInput(ff1, g1); err != nil {
		t.Fatal(err)
	}
	g2, _ := c.AddGate("g2", logic.OpOr, ff1, b)
	ff2, _ := c.AddFF("ff2")
	if err := c.SetFFInput(ff2, g2); err != nil {
		t.Fatal(err)
	}
	out, _ := c.AddGate("out", logic.OpNot, ff2)
	if err := c.MarkOutput(out); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildAndFinalize(t *testing.T) {
	c := buildToy(t)
	st := c.Stat()
	if st.Inputs != 2 || st.Outputs != 1 || st.FFs != 2 || st.Gates != 3 {
		t.Errorf("stats = %+v", st)
	}
	if !c.Finalized() {
		t.Error("not finalized")
	}
	if len(c.Order) != 3 {
		t.Errorf("order length %d", len(c.Order))
	}
}

func TestDuplicateName(t *testing.T) {
	c := New("dup")
	if _, err := c.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddInput("a"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := c.AddInput(""); err == nil {
		t.Error("empty name accepted")
	}
}

func TestLookup(t *testing.T) {
	c := buildToy(t)
	id, ok := c.Lookup("g2")
	if !ok || c.NameOf(id) != "g2" || !c.IsGate(id) {
		t.Error("lookup g2 failed")
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Error("lookup of missing signal succeeded")
	}
}

func TestKindPredicates(t *testing.T) {
	c := buildToy(t)
	a, _ := c.Lookup("a")
	ff1, _ := c.Lookup("ff1")
	g1, _ := c.Lookup("g1")
	if !c.IsPI(a) || c.IsFF(a) || c.IsGate(a) {
		t.Error("a kind wrong")
	}
	if !c.IsFF(ff1) || c.IsPI(ff1) {
		t.Error("ff1 kind wrong")
	}
	if !c.IsGate(g1) {
		t.Error("g1 kind wrong")
	}
}

func TestUnconnectedFFRejected(t *testing.T) {
	c := New("bad")
	_, _ = c.AddFF("ff")
	if err := c.Finalize(); err == nil {
		t.Error("finalize accepted unconnected FF")
	}
}

func TestCombinationalCycleRejected(t *testing.T) {
	c := New("cyc")
	a, _ := c.AddInput("a")
	// g1 and g2 form a combinational loop; pre-declare via FF trick is not
	// possible for gates, so wire g1 -> g2 -> g1 by editing fanin.
	g1, _ := c.AddGate("g1", logic.OpAnd, a, a)
	g2, _ := c.AddGate("g2", logic.OpAnd, g1, a)
	c.Signals[g1].Fanin[1] = g2
	if err := c.Finalize(); err == nil {
		t.Error("finalize accepted combinational cycle")
	}
}

func TestFFCutBreaksCycle(t *testing.T) {
	// A sequential loop through a FF must be fine.
	c := New("seqloop")
	ff, _ := c.AddFF("ff")
	g, _ := c.AddGate("g", logic.OpNot, ff)
	if err := c.SetFFInput(ff, g); err != nil {
		t.Fatal(err)
	}
	if err := c.Finalize(); err != nil {
		t.Errorf("sequential loop rejected: %v", err)
	}
}

func TestLevels(t *testing.T) {
	c := buildToy(t)
	g1, _ := c.Lookup("g1")
	g2, _ := c.Lookup("g2")
	out, _ := c.Lookup("out")
	a, _ := c.Lookup("a")
	if c.Level[a] != 0 || c.Level[g1] != 1 || c.Level[g2] != 1 || c.Level[out] != 1 {
		t.Errorf("levels: a=%d g1=%d g2=%d out=%d", c.Level[a], c.Level[g1], c.Level[g2], c.Level[out])
	}
	// Deeper chain.
	d := New("deep")
	x, _ := d.AddInput("x")
	prev := x
	var ids []SignalID
	for i := 0; i < 5; i++ {
		g, _ := d.AddGate(string(rune('p'+i)), logic.OpNot, prev)
		ids = append(ids, g)
		prev = g
	}
	_ = d.MarkOutput(prev)
	d.MustFinalize()
	for i, g := range ids {
		if d.Level[g] != i+1 {
			t.Errorf("level of stage %d = %d", i, d.Level[g])
		}
	}
}

func TestFanouts(t *testing.T) {
	c := buildToy(t)
	b, _ := c.Lookup("b")
	if len(c.Fanouts[b]) != 2 {
		t.Errorf("fanout of b = %v", c.Fanouts[b])
	}
}

func TestClone(t *testing.T) {
	c := buildToy(t)
	cl := c.Clone()
	if cl.Finalized() {
		t.Error("clone should not be finalized")
	}
	if err := cl.Finalize(); err != nil {
		t.Fatal(err)
	}
	if cl.Stat() != c.Stat() {
		t.Error("clone stats differ")
	}
	// Mutating the clone must not affect the original.
	g1, _ := cl.Lookup("g1")
	a, _ := cl.Lookup("a")
	cl.Signals[g1].Fanin[1] = a
	origG1, _ := c.Lookup("g1")
	borig, _ := c.Lookup("b")
	if c.Signals[origG1].Fanin[1] != borig {
		t.Error("clone mutation leaked into original")
	}
}

func TestFanoutCone(t *testing.T) {
	c := buildToy(t)
	b, _ := c.Lookup("b")
	cone := c.FanoutCone(b)
	// b feeds g1 and g2; g1 feeds ff1 (cut there), g2 feeds ff2 (cut).
	names := map[string]bool{}
	for _, id := range cone {
		names[c.NameOf(id)] = true
	}
	for _, want := range []string{"b", "g1", "g2", "ff1", "ff2"} {
		if !names[want] {
			t.Errorf("fanout cone of b missing %s (got %v)", want, names)
		}
	}
	if names["out"] {
		t.Error("fanout cone of b crossed FF boundary to out")
	}
}

func TestFaninCone(t *testing.T) {
	c := buildToy(t)
	g2, _ := c.Lookup("g2")
	cone := c.FaninCone(g2)
	names := map[string]bool{}
	for _, id := range cone {
		names[c.NameOf(id)] = true
	}
	for _, want := range []string{"g2", "ff1", "b"} {
		if !names[want] {
			t.Errorf("fanin cone of g2 missing %s", want)
		}
	}
	if names["g1"] {
		t.Error("fanin cone of g2 crossed FF boundary to g1")
	}
}

func TestAddGateArityChecks(t *testing.T) {
	c := New("ar")
	a, _ := c.AddInput("a")
	if _, err := c.AddGate("bad", logic.OpNot, a, a); err == nil {
		t.Error("NOT with 2 inputs accepted")
	}
	if _, err := c.AddGate("bad2", logic.OpXor, a); err == nil {
		t.Error("XOR with 1 input accepted")
	}
	if _, err := c.AddGate("bad3", logic.OpAnd, SignalID(99)); err == nil {
		t.Error("invalid fanin accepted")
	}
}

func TestMarkOutputValidates(t *testing.T) {
	c := New("o")
	if err := c.MarkOutput(SignalID(3)); err == nil {
		t.Error("invalid output accepted")
	}
}

func TestSetFFInputValidates(t *testing.T) {
	c := New("s")
	a, _ := c.AddInput("a")
	if err := c.SetFFInput(a, a); err == nil {
		t.Error("SetFFInput on non-FF accepted")
	}
	ff, _ := c.AddFF("ff")
	if err := c.SetFFInput(ff, SignalID(77)); err == nil {
		t.Error("SetFFInput with bad signal accepted")
	}
}
