// Package netlist defines the gate-level sequential circuit model shared
// by every stage of the flow: simulation, fault modelling, ATPG, test
// point insertion and scan-chain construction.
//
// A circuit is a set of signals. Every signal is driven by exactly one of
// a primary input, a D flip-flop, or a combinational gate; the signal is
// simultaneously the driver's output net. This mirrors the ISCAS'89
// .bench view of a circuit and keeps fault sites, simulation values and
// structural traversals indexed by one dense integer space.
package netlist

import (
	"fmt"
	"sort"
	"sync/atomic"
	"unsafe"

	"repro/internal/logic"
)

// SignalID indexes a signal within its circuit.
type SignalID int32

// None is the invalid signal ID.
const None SignalID = -1

// Kind distinguishes the three driver classes of a signal.
type Kind uint8

// Signal driver kinds.
const (
	KindInput Kind = iota // primary input
	KindFF                // D flip-flop output (Q)
	KindGate              // combinational gate output
)

func (k Kind) String() string {
	switch k {
	case KindInput:
		return "INPUT"
	case KindFF:
		return "DFF"
	case KindGate:
		return "GATE"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Signal is one net and its driver.
type Signal struct {
	Name  string
	Kind  Kind
	Op    logic.Op   // valid when Kind == KindGate
	Fanin []SignalID // gate inputs; for KindFF, Fanin[0] is the D input
}

// Circuit is a gate-level sequential netlist. Construct with New and the
// Add* methods, then call Finalize before using any derived structure.
type Circuit struct {
	Name    string
	Signals []Signal
	Outputs []SignalID // primary outputs (references into Signals)

	// Derived by Finalize.
	Inputs  []SignalID   // all KindInput signals in declaration order
	FFs     []SignalID   // all KindFF signals in declaration order
	Fanouts [][]SignalID // consumers of each signal (gates and FFs)
	Level   []int        // combinational level: PIs/FFs at 0, gates at 1+max(fanin)
	Order   []SignalID   // gate signals in topological (level) order

	byName    map[string]SignalID
	finalized bool

	// Lazily memoized StructuralHash. Atomic because concurrent readers
	// of a finalized (immutable) circuit — e.g. engine-cache lookups from
	// parallel workers — may race to fill the memo; they all compute the
	// same value, and the valid flag is published only after the hash.
	structHash  atomic.Uint64
	structValid atomic.Bool
}

// New returns an empty circuit with the given name.
func New(name string) *Circuit {
	return &Circuit{Name: name, byName: make(map[string]SignalID)}
}

func (c *Circuit) addSignal(s Signal) (SignalID, error) {
	if s.Name == "" {
		return None, fmt.Errorf("netlist: empty signal name")
	}
	if _, dup := c.byName[s.Name]; dup {
		return None, fmt.Errorf("netlist: duplicate signal %q", s.Name)
	}
	id := SignalID(len(c.Signals))
	c.Signals = append(c.Signals, s)
	c.byName[s.Name] = id
	c.finalized = false
	c.structValid.Store(false)
	return id, nil
}

// AddInput declares a primary input signal.
func (c *Circuit) AddInput(name string) (SignalID, error) {
	return c.addSignal(Signal{Name: name, Kind: KindInput})
}

// AddFF declares a flip-flop output signal. Its D input starts
// unconnected; set it later with SetFFInput (flip-flop feedback loops
// require two-phase construction).
func (c *Circuit) AddFF(name string) (SignalID, error) {
	return c.addSignal(Signal{Name: name, Kind: KindFF, Fanin: []SignalID{None}})
}

// AddGate declares a combinational gate and returns its output signal.
func (c *Circuit) AddGate(name string, op logic.Op, fanin ...SignalID) (SignalID, error) {
	minA, maxA := op.Arity()
	if len(fanin) < minA || (maxA >= 0 && len(fanin) > maxA) {
		return None, fmt.Errorf("netlist: gate %q: op %v cannot take %d inputs", name, op, len(fanin))
	}
	for _, f := range fanin {
		if !c.valid(f) {
			return None, fmt.Errorf("netlist: gate %q: invalid fanin %d", name, f)
		}
	}
	fi := make([]SignalID, len(fanin))
	copy(fi, fanin)
	return c.addSignal(Signal{Name: name, Kind: KindGate, Op: op, Fanin: fi})
}

// AddGateForward is AddGate for reconstruction paths where fanin IDs may
// reference signals that are appended later (e.g. rebuilding a mutated
// circuit in original ID order). Arity is checked now; fanin validity is
// deferred to Finalize.
func (c *Circuit) AddGateForward(name string, op logic.Op, fanin ...SignalID) (SignalID, error) {
	minA, maxA := op.Arity()
	if len(fanin) < minA || (maxA >= 0 && len(fanin) > maxA) {
		return None, fmt.Errorf("netlist: gate %q: op %v cannot take %d inputs", name, op, len(fanin))
	}
	fi := make([]SignalID, len(fanin))
	copy(fi, fanin)
	return c.addSignal(Signal{Name: name, Kind: KindGate, Op: op, Fanin: fi})
}

// SetFFInput connects the D input of flip-flop ff to signal d.
func (c *Circuit) SetFFInput(ff, d SignalID) error {
	if !c.valid(ff) || c.Signals[ff].Kind != KindFF {
		return fmt.Errorf("netlist: SetFFInput: %d is not a flip-flop", ff)
	}
	if !c.valid(d) {
		return fmt.Errorf("netlist: SetFFInput: invalid D signal %d", d)
	}
	c.Signals[ff].Fanin[0] = d
	c.finalized = false
	c.structValid.Store(false)
	return nil
}

// MarkOutput declares signal s as a primary output.
func (c *Circuit) MarkOutput(s SignalID) error {
	if !c.valid(s) {
		return fmt.Errorf("netlist: MarkOutput: invalid signal %d", s)
	}
	c.Outputs = append(c.Outputs, s)
	c.finalized = false
	c.structValid.Store(false)
	return nil
}

func (c *Circuit) valid(s SignalID) bool {
	return s >= 0 && int(s) < len(c.Signals)
}

// Lookup returns the signal with the given name.
func (c *Circuit) Lookup(name string) (SignalID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// NameOf returns the name of signal s.
func (c *Circuit) NameOf(s SignalID) string { return c.Signals[s].Name }

// IsPI reports whether s is a primary input.
func (c *Circuit) IsPI(s SignalID) bool { return c.Signals[s].Kind == KindInput }

// IsFF reports whether s is a flip-flop output.
func (c *Circuit) IsFF(s SignalID) bool { return c.Signals[s].Kind == KindFF }

// IsGate reports whether s is a combinational gate output.
func (c *Circuit) IsGate(s SignalID) bool { return c.Signals[s].Kind == KindGate }

// NumGates returns the number of combinational gates.
func (c *Circuit) NumGates() int {
	n := 0
	for i := range c.Signals {
		if c.Signals[i].Kind == KindGate {
			n++
		}
	}
	return n
}

// Finalize validates the circuit and computes the derived structures
// (input/FF lists, fanouts, levels, topological order). It must be called
// after construction or mutation and before simulation or traversal.
func (c *Circuit) Finalize() error {
	n := len(c.Signals)
	c.Inputs = c.Inputs[:0]
	c.FFs = c.FFs[:0]
	c.Fanouts = make([][]SignalID, n)
	c.Level = make([]int, n)
	c.Order = c.Order[:0]

	for id := SignalID(0); int(id) < n; id++ {
		s := &c.Signals[id]
		switch s.Kind {
		case KindInput:
			c.Inputs = append(c.Inputs, id)
		case KindFF:
			if len(s.Fanin) != 1 || s.Fanin[0] == None {
				return fmt.Errorf("netlist: flip-flop %q has no D input", s.Name)
			}
			c.FFs = append(c.FFs, id)
		case KindGate:
			minA, maxA := s.Op.Arity()
			if len(s.Fanin) < minA || (maxA >= 0 && len(s.Fanin) > maxA) {
				return fmt.Errorf("netlist: gate %q: bad arity %d for %v", s.Name, len(s.Fanin), s.Op)
			}
		}
		for _, f := range s.Fanin {
			if !c.valid(f) {
				return fmt.Errorf("netlist: signal %q: invalid fanin", s.Name)
			}
		}
	}
	for _, o := range c.Outputs {
		if !c.valid(o) {
			return fmt.Errorf("netlist: invalid primary output %d", o)
		}
	}

	// Levelize gates with Kahn's algorithm over combinational edges only
	// (FF boundaries cut the graph). A leftover gate means a
	// combinational cycle.
	indeg := make([]int, n)
	for id := SignalID(0); int(id) < n; id++ {
		s := &c.Signals[id]
		for pin, f := range s.Fanin {
			c.Fanouts[f] = append(c.Fanouts[f], id)
			_ = pin
			if s.Kind == KindGate && c.Signals[f].Kind == KindGate {
				indeg[id]++
			}
		}
	}
	queue := make([]SignalID, 0, n)
	for id := SignalID(0); int(id) < n; id++ {
		if c.Signals[id].Kind == KindGate && indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		processed++
		lvl := 0
		for _, f := range c.Signals[id].Fanin {
			if l := c.Level[f]; l >= lvl {
				lvl = l
			}
		}
		c.Level[id] = lvl + 1
		c.Order = append(c.Order, id)
		for _, fo := range c.Fanouts[id] {
			if c.Signals[fo].Kind == KindGate {
				indeg[fo]--
				if indeg[fo] == 0 {
					queue = append(queue, fo)
				}
			}
		}
	}
	if processed != c.NumGates() {
		return fmt.Errorf("netlist: %s: combinational cycle detected", c.Name)
	}
	// Order is already topological; make it deterministic level order for
	// reproducible traversals.
	sort.SliceStable(c.Order, func(i, j int) bool {
		a, b := c.Order[i], c.Order[j]
		if c.Level[a] != c.Level[b] {
			return c.Level[a] < c.Level[b]
		}
		return a < b
	})
	c.finalized = true
	return nil
}

// Finalized reports whether Finalize has run since the last mutation.
func (c *Circuit) Finalized() bool { return c.finalized }

// StructuralHash returns an FNV-64a digest of the circuit structure:
// every signal's kind, operator and fanin IDs plus the primary-output
// list. Names do not participate — two circuits with identical IDs,
// drivers and outputs hash equal even if their nets are named
// differently, and every derived artifact (levelization, compiled
// programs, fault lists, ATPG models) depends only on that structure.
//
// The hash is computed lazily and cached; any mutation (adding a
// signal, connecting a flip-flop, marking an output) invalidates the
// cached value, so the engine-layer artifact cache keyed by this hash
// never serves artifacts of a stale structure.
func (c *Circuit) StructuralHash() uint64 {
	if c.structValid.Load() {
		return c.structHash.Load()
	}
	const (
		offset64 = 1469598103934665603
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(len(c.Signals)))
	for i := range c.Signals {
		s := &c.Signals[i]
		mix(uint64(s.Kind)<<8 | uint64(s.Op))
		mix(uint64(len(s.Fanin)))
		for _, f := range s.Fanin {
			mix(uint64(uint32(f)) + 1)
		}
	}
	mix(uint64(len(c.Outputs)))
	for _, o := range c.Outputs {
		mix(uint64(uint32(o)) + 1)
	}
	c.structHash.Store(h)
	c.structValid.Store(true)
	return h
}

// MustFinalize is Finalize that panics on error; for tests and generators
// building known-good structures.
func (c *Circuit) MustFinalize() {
	if err := c.Finalize(); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the circuit. The copy is not finalized.
func (c *Circuit) Clone() *Circuit {
	nc := New(c.Name)
	nc.Signals = make([]Signal, len(c.Signals))
	for i, s := range c.Signals {
		ns := s
		ns.Fanin = append([]SignalID(nil), s.Fanin...)
		nc.Signals[i] = ns
		nc.byName[s.Name] = SignalID(i)
	}
	nc.Outputs = append([]SignalID(nil), c.Outputs...)
	return nc
}

// FanoutCone returns the set of signals reachable from s through
// combinational fanout, including s itself, stopping at FF boundaries
// (FF signals reached via their D pin are included but not expanded).
func (c *Circuit) FanoutCone(s SignalID) []SignalID {
	seen := make(map[SignalID]bool)
	var cone []SignalID
	stack := []SignalID{s}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		cone = append(cone, id)
		if id != s && c.Signals[id].Kind == KindFF {
			continue // cut at sequential boundary
		}
		stack = append(stack, c.Fanouts[id]...)
	}
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
	return cone
}

// FaninCone returns the set of signals feeding s through combinational
// logic, including s itself, stopping at PIs and FF outputs.
func (c *Circuit) FaninCone(s SignalID) []SignalID {
	seen := make(map[SignalID]bool)
	var cone []SignalID
	stack := []SignalID{s}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] {
			continue
		}
		seen[id] = true
		cone = append(cone, id)
		if id != s && c.Signals[id].Kind != KindGate {
			continue
		}
		if c.Signals[id].Kind == KindGate || id == s {
			stack = append(stack, c.Signals[id].Fanin...)
		}
	}
	sort.Slice(cone, func(i, j int) bool { return cone[i] < cone[j] })
	return cone
}

// SizeBytes estimates the circuit's resident memory footprint: the
// signal table (names and fanin lists), the derived structures
// Finalize builds, and the name index. It is an accounting estimate
// for byte-budgeted caches (the engine artifact cache charges every
// entry's retained structures against its budget), not an exact
// allocator measurement.
func (c *Circuit) SizeBytes() int64 {
	const (
		sliceHeader = 24 // slice header retained per nested slice
		mapEntry    = 48 // rough per-entry map overhead (bucket share)
	)
	idBytes := int64(unsafe.Sizeof(SignalID(0)))
	n := int64(unsafe.Sizeof(*c))
	n += int64(cap(c.Signals)) * int64(unsafe.Sizeof(Signal{}))
	for i := range c.Signals {
		s := &c.Signals[i]
		n += int64(len(s.Name)) + int64(cap(s.Fanin))*idBytes
	}
	n += int64(cap(c.Outputs)+cap(c.Inputs)+cap(c.FFs)+cap(c.Order)) * idBytes
	n += int64(cap(c.Level)) * int64(unsafe.Sizeof(int(0)))
	n += int64(cap(c.Fanouts)) * sliceHeader
	for _, f := range c.Fanouts {
		n += int64(cap(f)) * idBytes
	}
	for name := range c.byName {
		n += int64(len(name)) + mapEntry
	}
	return n
}

// Stats summarizes circuit size for reports.
type Stats struct {
	Inputs, Outputs, FFs, Gates int
	MaxLevel                    int
}

// Stat computes summary statistics; the circuit must be finalized.
func (c *Circuit) Stat() Stats {
	st := Stats{
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		FFs:     len(c.FFs),
		Gates:   c.NumGates(),
	}
	for _, l := range c.Level {
		if l > st.MaxLevel {
			st.MaxLevel = l
		}
	}
	return st
}
