package telemetry

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/task"
)

// fakeClock is a manually advanced clock shared by a tracker and its
// watchdog.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// simUnits builds an n-unit faultsim plan over a span-per-unit fault
// axis.
func simUnits(n, span int) []task.Unit {
	sp := task.Spec{Kind: task.KindFaultSim, Circuit: "s27"}
	units := make([]task.Unit, n)
	for i := range units {
		units[i] = task.Unit{Spec: sp, Index: i, Count: n, Lo: i * span, Hi: (i + 1) * span}
	}
	return units
}

// simPartial builds the matching finished partial with det detections.
func simPartial(u task.Unit, axis, det int) *task.Partial {
	p := &task.Partial{
		Kind: task.KindFaultSim, Index: u.Index, Count: u.Count,
		Lo: u.Lo, Hi: u.Hi, Faults: axis, Circuit: u.Spec.Circuit,
	}
	p.DetectedAt = make([]int, u.Hi-u.Lo)
	for i := range p.DetectedAt {
		if i < det {
			p.DetectedAt[i] = i
		} else {
			p.DetectedAt[i] = -1
		}
	}
	return p
}

func TestTrackerETAZeroUnits(t *testing.T) {
	tr := NewRunTracker(Info{RunID: "r0", Kind: "faultsim"}, nil)
	clk := newFakeClock()
	tr.setNow(clk.now)
	s := tr.Snapshot()
	if s.UnitsTotal != 0 || s.FaultsTotal != 0 || s.FaultsDone != 0 {
		t.Fatalf("empty tracker snapshot = %+v, want zeros", s)
	}
	if s.ETANS != 0 || s.Throughput != 0 {
		t.Fatalf("empty tracker ETA %d / throughput %v, want 0", s.ETANS, s.Throughput)
	}
	if len(s.Units) != 0 {
		t.Fatalf("empty tracker lists %d units", len(s.Units))
	}
}

func TestTrackerETASingleUnit(t *testing.T) {
	tr := NewRunTracker(Info{RunID: "r1", Kind: "faultsim"}, nil)
	clk := newFakeClock()
	tr.setNow(clk.now)

	// Single whole-axis unit (Hi = -1): the span is unknown until the
	// partial lands.
	u := task.Unit{Spec: task.Spec{Kind: task.KindFaultSim, Circuit: "s27"}, Index: 0, Count: 1, Lo: 0, Hi: -1}
	tr.UnitStarted(u)
	s := tr.Snapshot()
	if s.UnitsRunning != 1 || s.UnitsTotal != 1 {
		t.Fatalf("running snapshot = %+v", s)
	}
	if s.FaultsTotal != 0 {
		t.Fatalf("whole-axis unit before finish reports FaultsTotal %d, want 0 (unknown)", s.FaultsTotal)
	}

	clk.advance(2 * time.Second)
	p := simPartial(task.Unit{Spec: u.Spec, Index: 0, Count: 1, Lo: 0, Hi: 126}, 126, 100)
	tr.UnitFinished(u, p, nil)

	s = tr.Snapshot()
	if s.UnitsDone != 1 || s.UnitsRunning != 0 {
		t.Fatalf("finished snapshot = %+v", s)
	}
	if s.FaultsTotal != 126 || s.FaultsDone != 126 {
		t.Fatalf("faults total/done = %d/%d, want 126/126", s.FaultsTotal, s.FaultsDone)
	}
	if s.Detected != 100 {
		t.Fatalf("detected = %d, want 100", s.Detected)
	}
	// 126 faults over 2s = 63 faults/s; nothing remains, so no ETA.
	if got, want := s.Throughput, 63.0; got != want {
		t.Fatalf("throughput = %v, want %v", got, want)
	}
	if s.ETANS != 0 {
		t.Fatalf("finished run ETA = %d, want 0", s.ETANS)
	}
}

func TestTrackerETAManyUnitsWithStraggler(t *testing.T) {
	tr := NewRunTracker(Info{RunID: "rN", JobID: "7", Kind: "faultsim"}, nil)
	clk := newFakeClock()
	tr.setNow(clk.now)

	const n, span = 4, 63
	units := simUnits(n, span)
	tr.SetPlan(units)

	s := tr.Snapshot()
	if s.UnitsTotal != n || s.FaultsTotal != n*span {
		t.Fatalf("planned snapshot = %+v, want %d units / %d faults", s, n, n*span)
	}

	// Units 0 and 1 finish at a steady 63 faults/s.
	for i := 0; i < 2; i++ {
		tr.UnitStarted(units[i])
		clk.advance(time.Second)
		tr.UnitFinished(units[i], simPartial(units[i], n*span, span/2), nil)
	}
	s = tr.Snapshot()
	if s.UnitsDone != 2 || s.FaultsDone != 2*span {
		t.Fatalf("after 2 units: %+v", s)
	}
	if got, want := s.Throughput, 63.0; got != want {
		t.Fatalf("throughput = %v, want %v (identical unit rates keep the EWMA fixed)", got, want)
	}
	// 126 faults remain at 63 faults/s: two seconds out.
	if got, want := s.ETANS, (2 * time.Second).Nanoseconds(); got != want {
		t.Fatalf("ETA = %v, want %v", time.Duration(got), time.Duration(want))
	}

	// Unit 2 becomes the artificial straggler: it starts, reports one
	// batch, then goes silent past the threshold.
	wd := NewWatchdog(10*time.Second, time.Second, nil)
	wd.now = clk.now
	wd.Register(tr)
	tr.UnitStarted(units[2])
	tr.Observe(journal.Batch("faultsim", 0, 0, span, time.Millisecond))
	if st := wd.Sweep(); len(st) != 0 {
		t.Fatalf("fresh unit flagged as stalled: %+v", st)
	}
	clk.advance(11 * time.Second)
	st := wd.Sweep()
	if len(st) != 1 || st[0].Unit != 2 || st[0].RunID != "rN" || st[0].JobID != "7" {
		t.Fatalf("sweep past threshold = %+v, want unit 2 of run rN job 7", st)
	}
	if st[0].Idle < 11*time.Second {
		t.Fatalf("stall idle = %v, want >= 11s", st[0].Idle)
	}
	if again := wd.Sweep(); len(again) != 0 {
		t.Fatalf("second sweep re-reported the same stall: %+v", again)
	}

	s = tr.Snapshot()
	if s.UnitsStalled != 1 || !s.Units[2].Stalled {
		t.Fatalf("snapshot does not carry the stall flag: %+v", s)
	}
	// The straggler's one observed batch bounds its live estimate.
	if got := s.Units[2].Done; got != span {
		t.Fatalf("straggler live done = %d, want %d (one %d-wide batch, clamped)", got, span, span)
	}
	// ETA ignores wall-clock idled away: remaining work is still priced
	// at the finished units' rate.
	if got, want := s.ETANS, (time.Second).Nanoseconds(); got != want {
		t.Fatalf("ETA with straggler = %v, want %v (63 unfinished faults at 63/s)", time.Duration(got), time.Duration(want))
	}

	// Progress clears the flag...
	tr.Observe(journal.Detect(1, 5))
	s = tr.Snapshot()
	if s.UnitsStalled != 0 || s.Units[2].Stalled {
		t.Fatalf("stall flag survived progress: %+v", s)
	}
	if s.Units[2].Detected != 1 {
		t.Fatalf("live detected = %d, want 1", s.Units[2].Detected)
	}

	// ...and finishing the run zeroes the ETA with exact sums.
	tr.UnitFinished(units[2], simPartial(units[2], n*span, 0), nil)
	tr.UnitStarted(units[3])
	clk.advance(time.Second)
	tr.UnitFinished(units[3], simPartial(units[3], n*span, span), nil)
	wd.Unregister(tr)
	s = tr.Snapshot()
	if s.UnitsDone != n || s.FaultsDone != n*span || s.ETANS != 0 {
		t.Fatalf("final snapshot = %+v", s)
	}
	if want := span/2 + span/2 + 0 + span; s.Detected != want {
		t.Fatalf("final detected = %d, want %d", s.Detected, want)
	}
}

func TestTrackerAsTaskTracker(t *testing.T) {
	// RunTracker must satisfy task.Tracker and survive the context
	// round-trip Execute uses.
	var tr task.Tracker = NewRunTracker(Info{RunID: "ctx"}, nil)
	ctx := task.WithTracker(context.Background(), tr)
	if got := task.TrackerFrom(ctx); got != tr {
		t.Fatalf("TrackerFrom returned %v, want the installed tracker", got)
	}
	// A typed-nil tracker stays a safe no-op through every method.
	var nilTr *RunTracker
	nilTr.UnitStarted(task.Unit{})
	nilTr.UnitFinished(task.Unit{}, nil, nil)
	nilTr.Observe(journal.Event{})
	if s := nilTr.Snapshot(); s != nil {
		t.Fatalf("nil tracker snapshot = %+v, want nil", s)
	}
}

func TestTrackerUnitFailureAndChangeHook(t *testing.T) {
	var buf bytes.Buffer
	// Callers hand the tracker a logger already stamped with run_id (the
	// obsflags session and fsctd both do); mirror that contract here.
	logger := slog.New(slog.NewTextHandler(&buf, nil)).With(slog.String(KeyRunID, "rf"))
	tr := NewRunTracker(Info{RunID: "rf", JobID: "9"}, logger)
	clk := newFakeClock()
	tr.setNow(clk.now)
	bumps := 0
	tr.SetOnChange(func() { bumps++ })

	units := simUnits(2, 63)
	tr.SetPlan(units)
	tr.UnitStarted(units[0])
	clk.advance(time.Second)
	tr.UnitFinished(units[0], nil, fmt.Errorf("boom"))

	s := tr.Snapshot()
	if s.Units[0].Error != "boom" {
		t.Fatalf("unit error = %q, want boom", s.Units[0].Error)
	}
	if s.Throughput != 0 {
		t.Fatalf("failed unit fed the EWMA: %v", s.Throughput)
	}
	if bumps != 2 {
		t.Fatalf("change hook fired %d times, want 2 (start + finish)", bumps)
	}
	out := buf.String()
	for _, want := range []string{"unit failed", "run_id=rf", "job_id=9", "unit_id=0", "error=boom"} {
		if !strings.Contains(out, want) {
			t.Fatalf("log output missing %q:\n%s", want, out)
		}
	}
}

func TestWatchdogDefaultsAndDisable(t *testing.T) {
	wd := NewWatchdog(0, 0, nil)
	if wd.Threshold() != DefaultStallThreshold {
		t.Fatalf("threshold = %v, want default %v", wd.Threshold(), DefaultStallThreshold)
	}
	off := NewWatchdog(-1, 0, nil)
	tr := NewRunTracker(Info{RunID: "off"}, nil)
	clk := newFakeClock()
	tr.setNow(clk.now)
	off.now = clk.now
	off.Register(tr)
	units := simUnits(1, 63)
	tr.UnitStarted(units[0])
	clk.advance(time.Hour)
	if st := off.Sweep(); st != nil {
		t.Fatalf("disabled watchdog flagged %+v", st)
	}
}

func TestWatchdogRunLoop(t *testing.T) {
	wd := NewWatchdog(time.Hour, time.Millisecond, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { wd.Run(ctx); close(done) }()
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("watchdog loop did not stop on cancel")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		" Error ": slog.LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted a bogus level")
	}
}

func TestNewRunIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewRunID()
		if seen[id] {
			t.Fatalf("duplicate run id %q", id)
		}
		seen[id] = true
	}
}

func TestFanout(t *testing.T) {
	var a, b bytes.Buffer
	h := Fanout(
		slog.NewTextHandler(&a, &slog.HandlerOptions{Level: slog.LevelInfo}),
		slog.NewJSONHandler(&b, &slog.HandlerOptions{Level: slog.LevelWarn}),
	)
	log := slog.New(h).With(slog.String(KeyRunID, "fo"))
	log.Info("only text")
	log.Warn("both")
	if at := a.String(); !strings.Contains(at, "only text") || !strings.Contains(at, "both") {
		t.Fatalf("text sink missing records:\n%s", at)
	}
	bt := b.String()
	if strings.Contains(bt, "only text") {
		t.Fatalf("json sink got a record below its level:\n%s", bt)
	}
	if !strings.Contains(bt, `"both"`) || !strings.Contains(bt, `"run_id":"fo"`) {
		t.Fatalf("json sink missing warn record with attrs:\n%s", bt)
	}
	if Fanout() != (discardHandler{}) {
		t.Fatal("empty fanout is not the discard handler")
	}
	if d := Discard(); d.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("discard logger claims to be enabled")
	}
}
