// Package telemetry is the unit-level observability layer over the task
// pipeline: where internal/obs aggregates a whole run and
// internal/journal records its event timeline, telemetry answers the
// operational questions a live run raises — which work-units are in
// flight, how far along is each one, is any of them stuck, and when
// will the run finish.
//
// Three pieces compose:
//
//   - RunTracker implements task.Tracker and accounts every task.Unit
//     of one run: start/finish timestamps, a live faults-done estimate
//     fed by the run's journal events (pool batches, detections, ATPG
//     attempts), exact per-unit totals folded in from the finished
//     Partial, a throughput EWMA and the ETA derived from it;
//   - Watchdog sweeps registered trackers on an interval and flags any
//     running unit whose last progress heartbeat is older than the
//     stall threshold — the seed of straggler re-dispatch: a flagged
//     unit is exactly the unit a coordinator would re-ship;
//   - the log helpers (NewRunID, ParseLevel, Fanout, Discard) back the
//     CLIs' -log/-logfile flags with slog-based structured logging
//     whose lines carry correlated run_id/job_id/unit_id attributes.
//
// Everything is cheap when unused: a nil *RunTracker is a valid no-op
// tracker, the discard logger drops records before formatting, and the
// journal observer does constant work per event under one short mutex.
package telemetry

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/task"
)

// ewmaAlpha weights the newest unit's throughput sample in the
// exponential moving average: high enough to track a phase change
// within a few units, low enough that one outlier unit does not swing
// the ETA.
const ewmaAlpha = 0.4

// unitState is one unit's mutable accounting.
type unitState struct {
	index   int
	lo, hi  int // resolved span; hi = -1 while unknown (whole-axis unit)
	started time.Time
	finish  time.Time
	last    time.Time // last progress heartbeat (any journal event)
	items   int       // pool batch items observed (live estimate input)
	atpg    int       // ATPG attempt events observed
	liveDet int       // detections observed live
	done    int       // exact faults covered, set on finish
	det     int       // exact detections/hits, set on finish
	running bool
	over    bool // finished
	stalled bool
	errMsg  string
}

// faults returns the unit's span, or 0 while unknown.
func (u *unitState) faults() int {
	if u.hi < 0 {
		return 0
	}
	return u.hi - u.lo
}

// doneEstimate is the unit's faults-done figure: exact once finished,
// otherwise estimated from observed pool batches (each covers up to one
// BatchWidth-wide fault batch) and ATPG attempts (one per fault),
// clamped to the unit's span.
func (u *unitState) doneEstimate() int {
	if u.over {
		return u.done
	}
	est := u.items * task.BatchWidth
	if u.atpg > est {
		est = u.atpg
	}
	if f := u.faults(); f > 0 && est > f {
		est = f
	}
	return est
}

// detected returns the unit's detection count: exact once finished,
// live-observed before.
func (u *unitState) detected() int {
	if u.over {
		return u.det
	}
	return u.liveDet
}

// Info names a run for its tracker: the identity attributes stamped on
// every log line and carried in every snapshot.
type Info struct {
	// RunID correlates the run's log lines (KeyRunID).
	RunID string
	// JobID is the daemon job identifier, when the run is a daemon job.
	JobID string
	// Kind and Circuit describe the job.
	Kind    string
	Circuit string
	// TraceID is the run's distributed-trace identity (KeyTraceID),
	// when the run carries one: the hex form of trace.TraceID.
	TraceID string
}

// RunTracker tracks every task.Unit of one run. It implements
// task.Tracker (thread it with task.WithTracker) and consumes the
// run's journal events via Observe (attach it to the run's recorder),
// which doubles as the per-unit progress heartbeat the watchdog checks.
// A nil *RunTracker is a valid no-op tracker. Safe for concurrent use.
type RunTracker struct {
	info Info
	log  *slog.Logger
	now  func() time.Time // injectable clock (tests)
	onCh func()           // change hook (live SSE hub), may be nil

	mu     sync.Mutex
	units  map[int]*unitState
	count  int // plan's unit count, once known
	cur    int // index of the running unit, -1 when none
	ewma   float64
	doneN  int // finished units
	doneF  int // exact faults covered by finished units
	detN   int // exact detections by finished units
	axis   int // full fault-axis length, once known
	closed bool
}

// NewRunTracker returns a tracker for one run. logger nil selects the
// discard logger; a non-nil logger should already carry the run_id
// attribute (the tracker stamps only job_id and unit_id).
func NewRunTracker(info Info, logger *slog.Logger) *RunTracker {
	if logger == nil {
		logger = Discard()
	}
	// The logger is expected to carry run_id already (the obsflags
	// session and the daemon both stamp it process-wide); the tracker
	// adds only its own scope.
	if info.JobID != "" {
		logger = logger.With(slog.String(KeyJobID, info.JobID))
	}
	if info.TraceID != "" {
		logger = logger.With(slog.String(KeyTraceID, info.TraceID))
	}
	return &RunTracker{
		info:  info,
		log:   logger,
		now:   time.Now,
		cur:   -1,
		units: make(map[int]*unitState),
	}
}

// SetOnChange installs fn to be called (without the tracker lock held)
// after every unit lifecycle or stall transition — the daemon bumps its
// live-stream hub with it. Call before the run starts.
func (t *RunTracker) SetOnChange(fn func()) {
	if t == nil {
		return
	}
	t.onCh = fn
}

// setNow injects a clock (tests).
func (t *RunTracker) setNow(now func() time.Time) { t.now = now }

// SetPlan pre-registers a plan's units so snapshots show the whole
// shard map — spans and all — before any unit has started. Optional:
// trackers learn units lazily from UnitStarted otherwise.
func (t *RunTracker) SetPlan(units []task.Unit) {
	if t == nil || len(units) == 0 {
		return
	}
	t.mu.Lock()
	t.count = units[0].Count
	for _, u := range units {
		t.unitLocked(u)
	}
	t.mu.Unlock()
}

// unitLocked returns (creating if needed) the state slot for u.
func (t *RunTracker) unitLocked(u task.Unit) *unitState {
	st := t.units[u.Index]
	if st == nil {
		st = &unitState{index: u.Index, lo: u.Lo, hi: u.Hi}
		t.units[u.Index] = st
	}
	if u.Count > t.count {
		t.count = u.Count
	}
	return st
}

// UnitStarted implements task.Tracker: the unit becomes the tracker's
// current heartbeat target.
func (t *RunTracker) UnitStarted(u task.Unit) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	st := t.unitLocked(u)
	st.running, st.over, st.stalled = true, false, false
	st.started, st.last = now, now
	t.cur = u.Index
	t.mu.Unlock()
	t.log.Info("unit started",
		slog.Int(KeyUnitID, u.Index), slog.Int("units", u.Count),
		slog.String("kind", u.Spec.Kind), slog.String("circuit", u.Spec.Circuit),
		slog.Int("lo", u.Lo), slog.Int("hi", u.Hi))
	t.changed()
}

// UnitFinished implements task.Tracker: the unit's exact totals replace
// the live estimates and fold into the run's throughput EWMA.
func (t *RunTracker) UnitFinished(u task.Unit, p *task.Partial, err error) {
	if t == nil {
		return
	}
	now := t.now()
	t.mu.Lock()
	st := t.unitLocked(u)
	wasOver := st.over
	st.running, st.over, st.stalled = false, true, false
	st.finish, st.last = now, now
	if p != nil {
		st.lo, st.hi = p.Lo, p.Hi
		st.done = p.Hi - p.Lo
		st.det = partialHits(p)
		if p.Faults > t.axis {
			t.axis = p.Faults
		}
	}
	if err != nil {
		st.errMsg = err.Error()
	}
	if t.cur == u.Index {
		t.cur = -1
	}
	if !wasOver {
		t.doneN++
		t.doneF += st.done
		t.detN += st.det
		if wall := st.finish.Sub(st.started); wall > 0 && st.done > 0 && err == nil {
			rate := float64(st.done) / wall.Seconds()
			if t.ewma == 0 {
				t.ewma = rate
			} else {
				t.ewma = ewmaAlpha*rate + (1-ewmaAlpha)*t.ewma
			}
		}
	}
	wall := st.finish.Sub(st.started)
	t.mu.Unlock()
	attrs := []any{
		slog.Int(KeyUnitID, u.Index),
		slog.Int("faults", st.done), slog.Int("detected", st.det),
		slog.Duration("wall", wall),
	}
	switch {
	case err == nil:
		t.log.Info("unit finished", attrs...)
	case errors.Is(err, context.Canceled):
		t.log.Info("unit canceled", attrs...)
	default:
		t.log.Warn("unit failed", append(attrs, slog.String("error", err.Error()))...)
	}
	t.changed()
}

// Observe consumes one journal event as the current unit's progress
// heartbeat: pool batches and ATPG attempts advance the faults-done
// estimate, detections advance the live detection count, and any event
// clears a stall flag (the unit provably moved). Attach it to the run's
// recorder (chain it with other observers as needed); it does constant
// work under one short mutex, so it is safe on the hot emit path.
func (t *RunTracker) Observe(e journal.Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	st := t.units[t.cur]
	if st == nil || !st.running {
		t.mu.Unlock()
		return
	}
	st.last = t.now()
	resumed := st.stalled
	st.stalled = false
	switch e.Kind {
	case journal.KindBatch:
		st.items++
	case journal.KindATPG:
		st.atpg++
	case journal.KindDetect:
		st.liveDet++
	}
	idx := st.index
	t.mu.Unlock()
	if resumed {
		t.log.Info("unit resumed", slog.Int(KeyUnitID, idx))
		t.changed()
	}
}

// markStalls flags every running unit whose last heartbeat is older
// than threshold and returns the newly flagged unit indices with their
// idle durations. The watchdog calls it on every sweep; already-flagged
// units are not re-reported.
func (t *RunTracker) markStalls(now time.Time, threshold time.Duration) []Stall {
	if t == nil || threshold <= 0 {
		return nil
	}
	var out []Stall
	t.mu.Lock()
	for _, st := range t.units {
		if !st.running || st.stalled {
			continue
		}
		if idle := now.Sub(st.last); idle > threshold {
			st.stalled = true
			out = append(out, Stall{
				RunID: t.info.RunID, JobID: t.info.JobID,
				Unit: st.index, Idle: idle,
			})
		}
	}
	t.mu.Unlock()
	if len(out) > 0 {
		t.changed()
	}
	return out
}

// changed fires the change hook, if any.
func (t *RunTracker) changed() {
	if t.onCh != nil {
		t.onCh()
	}
}

// partialHits distills a finished partial's per-kind "hits" figure —
// the number the dashboard's detected column shows: fault detections
// (faultsim), chain-affecting verdicts (screen), generated tests
// (atpg), resolved candidates (diagnose), detected affecting faults
// (flow).
func partialHits(p *task.Partial) int {
	switch p.Kind {
	case task.KindFaultSim:
		n := 0
		for _, d := range p.DetectedAt {
			if d >= 0 {
				n++
			}
		}
		return n
	case task.KindScreen:
		return p.Easy + p.Hard
	case task.KindATPG:
		return p.Found
	case task.KindDiagnose:
		return p.Exact + p.Ambiguous
	case task.KindFlow:
		if p.Report != nil {
			return p.Report.Affecting() - p.Report.Undetected()
		}
	}
	return 0
}

// Stall identifies one newly stalled unit.
type Stall struct {
	// RunID and JobID identify the run the unit belongs to.
	RunID string `json:"run_id,omitempty"`
	JobID string `json:"job_id,omitempty"`
	// Unit is the stalled unit's index.
	Unit int `json:"unit"`
	// Idle is how long the unit had made no progress when flagged.
	Idle time.Duration `json:"idle_ns"`
}

// UnitSnapshot is one unit's frozen state inside a Snapshot.
type UnitSnapshot struct {
	// Index is the unit's position in its plan.
	Index int `json:"index"`
	// Lo and Hi bound the unit's fault-axis slice (Hi -1 = not yet
	// resolved).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Faults is the unit's span (0 while unknown); Done the faults
	// evaluated so far (estimated live, exact once finished); Detected
	// the unit's per-kind hits.
	Faults   int `json:"faults"`
	Done     int `json:"done"`
	Detected int `json:"detected"`
	// Running, Finished and Stalled are the unit's lifecycle flags.
	Running  bool `json:"running,omitempty"`
	Finished bool `json:"finished,omitempty"`
	Stalled  bool `json:"stalled,omitempty"`
	// WallNS is the unit's execution time so far (final once finished);
	// IdleNS the age of its last progress heartbeat (running units).
	WallNS int64 `json:"wall_ns,omitempty"`
	IdleNS int64 `json:"idle_ns,omitempty"`
	// Error carries the unit's failure, if any.
	Error string `json:"error,omitempty"`
}

// Snapshot is a frozen view of one run's unit progress: the JSON body
// of the daemon's /api/v1/live entries and the input of the fsctstats
// watch dashboard.
type Snapshot struct {
	// RunID, JobID, Kind, Circuit and TraceID echo the tracker's Info.
	RunID   string `json:"run_id,omitempty"`
	JobID   string `json:"job_id,omitempty"`
	Kind    string `json:"kind,omitempty"`
	Circuit string `json:"circuit,omitempty"`
	TraceID string `json:"trace_id,omitempty"`
	// UnitsTotal is the plan's unit count (0 while unknown);
	// UnitsDone/UnitsRunning/UnitsStalled partition the known units.
	UnitsTotal   int `json:"units_total"`
	UnitsDone    int `json:"units_done"`
	UnitsRunning int `json:"units_running"`
	UnitsStalled int `json:"units_stalled"`
	// FaultsTotal sums the known unit spans (the full axis once every
	// span is resolved); FaultsDone and Detected sum the per-unit
	// figures, so a finished run's sums equal the merged report's
	// totals.
	FaultsTotal int `json:"faults_total"`
	FaultsDone  int `json:"faults_done"`
	Detected    int `json:"detected"`
	// Throughput is the faults-per-second EWMA over finished units;
	// ETANS the remaining-work estimate derived from it (0 = unknown).
	Throughput float64 `json:"throughput_fps,omitempty"`
	ETANS      int64   `json:"eta_ns,omitempty"`
	// Units lists the per-unit states in index order.
	Units []UnitSnapshot `json:"units,omitempty"`
}

// Snapshot freezes the tracker's current state. Nil receiver returns
// nil.
func (t *RunTracker) Snapshot() *Snapshot {
	if t == nil {
		return nil
	}
	now := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Snapshot{
		RunID: t.info.RunID, JobID: t.info.JobID,
		Kind: t.info.Kind, Circuit: t.info.Circuit,
		TraceID:    t.info.TraceID,
		UnitsTotal: t.count,
	}
	for i := 0; i < t.count || len(s.Units) < len(t.units); i++ {
		st := t.units[i]
		if st == nil {
			if i >= t.count {
				break
			}
			s.Units = append(s.Units, UnitSnapshot{Index: i, Hi: -1})
			continue
		}
		us := UnitSnapshot{
			Index: st.index, Lo: st.lo, Hi: st.hi,
			Faults: st.faults(), Done: st.doneEstimate(), Detected: st.detected(),
			Running: st.running, Finished: st.over, Stalled: st.stalled,
			Error: st.errMsg,
		}
		switch {
		case st.over:
			us.WallNS = st.finish.Sub(st.started).Nanoseconds()
		case st.running:
			us.WallNS = now.Sub(st.started).Nanoseconds()
			us.IdleNS = now.Sub(st.last).Nanoseconds()
		}
		s.Units = append(s.Units, us)
		s.FaultsTotal += us.Faults
		s.FaultsDone += us.Done
		s.Detected += us.Detected
		if us.Finished {
			s.UnitsDone++
		}
		if us.Running {
			s.UnitsRunning++
		}
		if us.Stalled {
			s.UnitsStalled++
		}
	}
	if t.axis > s.FaultsTotal {
		s.FaultsTotal = t.axis
	}
	s.Throughput = t.ewma
	if remaining := s.FaultsTotal - s.FaultsDone; remaining > 0 && t.ewma > 0 {
		s.ETANS = int64(float64(remaining) / t.ewma * 1e9)
	}
	return s
}
