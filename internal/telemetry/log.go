package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// Canonical attribute keys for correlated structured logs. Every log
// line a run emits carries the run's identity under these keys, so one
// `grep run_id=...` (or a structured query over the JSON stream)
// reassembles a single run's story across process, job and unit logs.
const (
	// KeyRunID correlates every line of one process run (batch CLI) or
	// one daemon process lifetime.
	KeyRunID = "run_id"
	// KeyJobID correlates the lines of one daemon job.
	KeyJobID = "job_id"
	// KeyUnitID correlates the lines of one work-unit within a job.
	KeyUnitID = "unit_id"
	// KeyTraceID correlates log lines with the run's distributed trace
	// (internal/trace): the 32-hex-digit W3C trace ID.
	KeyTraceID = "trace_id"
)

// runIDCounter disambiguates run IDs minted within one nanosecond tick
// (tests mint many back to back).
var runIDCounter atomic.Uint64

// NewRunID mints a compact, process-unique run identifier: the wall
// clock and PID keep it unique across processes on one machine, the
// counter keeps it unique within a process. It is an identity for log
// correlation, not a secret — no randomness source is consulted.
func NewRunID() string {
	n := runIDCounter.Add(1)
	return fmt.Sprintf("%x-%x-%x", time.Now().UnixNano(), os.Getpid(), n)
}

// ParseLevel resolves a -log flag value onto a slog level. Accepted
// values (case-insensitive): debug, info, warn, error.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}

// Discard returns a logger that drops everything — the disabled logger
// the flag layer hands out when neither -log nor -logfile is set, so
// call sites log unconditionally instead of nil-checking.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// discardHandler is a slog.Handler that is disabled at every level.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Fanout composes handlers: a record goes to every handler enabled for
// its level, and attrs/groups distribute to all of them. The flag layer
// uses it to drive -log (human-readable stderr) and -logfile (JSON
// file) from one logger. Zero handlers yield the discard handler.
func Fanout(handlers ...slog.Handler) slog.Handler {
	if len(handlers) == 0 {
		return discardHandler{}
	}
	if len(handlers) == 1 {
		return handlers[0]
	}
	return fanoutHandler(handlers)
}

type fanoutHandler []slog.Handler

func (f fanoutHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	for _, h := range f {
		if h.Enabled(ctx, lvl) {
			return true
		}
	}
	return false
}

func (f fanoutHandler) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range f {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (f fanoutHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(fanoutHandler, len(f))
	for i, h := range f {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (f fanoutHandler) WithGroup(name string) slog.Handler {
	out := make(fanoutHandler, len(f))
	for i, h := range f {
		out[i] = h.WithGroup(name)
	}
	return out
}
