package telemetry

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// DefaultStallThreshold is the no-progress age past which a running
// unit is flagged as a straggler when the operator does not override it
// (fsctd -stall). Long enough that a legitimately slow fault batch on
// the big circuits does not trip it, short enough that a wedged unit
// surfaces within one dashboard glance.
const DefaultStallThreshold = 30 * time.Second

// Watchdog periodically sweeps a set of RunTrackers and flags units
// whose progress heartbeat has gone quiet for longer than the stall
// threshold. Flagging is sticky until the unit emits again (Observe
// clears it) or finishes; each transition is logged once and surfaces
// in snapshots as the unit's Stalled bit. Safe for concurrent use.
type Watchdog struct {
	threshold time.Duration
	interval  time.Duration
	log       *slog.Logger
	now       func() time.Time // injectable clock (tests)

	// OnStall, when non-nil, is called (outside the watchdog lock) with
	// each sweep's newly flagged units — the daemon bumps its live hub
	// with it. Set before Run.
	OnStall func([]Stall)

	mu       sync.Mutex
	trackers map[*RunTracker]struct{}
}

// NewWatchdog returns a watchdog flagging units idle longer than
// threshold (0 selects DefaultStallThreshold; negative disables
// flagging), sweeping every interval when driven by Run (0 selects
// threshold/4). logger nil selects the discard logger.
func NewWatchdog(threshold, interval time.Duration, logger *slog.Logger) *Watchdog {
	if threshold == 0 {
		threshold = DefaultStallThreshold
	}
	if interval <= 0 {
		interval = threshold / 4
		if interval <= 0 {
			interval = time.Second
		}
	}
	if logger == nil {
		logger = Discard()
	}
	return &Watchdog{
		threshold: threshold,
		interval:  interval,
		log:       logger,
		now:       time.Now,
		trackers:  make(map[*RunTracker]struct{}),
	}
}

// Threshold returns the stall threshold the watchdog flags at.
func (w *Watchdog) Threshold() time.Duration { return w.threshold }

// Register adds a run's tracker to the sweep set. Unregister it when
// the run ends.
func (w *Watchdog) Register(t *RunTracker) {
	if w == nil || t == nil {
		return
	}
	w.mu.Lock()
	w.trackers[t] = struct{}{}
	w.mu.Unlock()
}

// Unregister removes a tracker from the sweep set.
func (w *Watchdog) Unregister(t *RunTracker) {
	if w == nil || t == nil {
		return
	}
	w.mu.Lock()
	delete(w.trackers, t)
	w.mu.Unlock()
}

// Sweep checks every registered tracker once and returns the units it
// newly flagged, logging a warning per straggler. Run calls it on the
// tick; tests call it directly with a fake clock.
func (w *Watchdog) Sweep() []Stall {
	if w == nil || w.threshold < 0 {
		return nil
	}
	now := w.now()
	w.mu.Lock()
	ts := make([]*RunTracker, 0, len(w.trackers))
	for t := range w.trackers {
		ts = append(ts, t)
	}
	w.mu.Unlock()
	var all []Stall
	for _, t := range ts {
		all = append(all, t.markStalls(now, w.threshold)...)
	}
	for _, s := range all {
		// The watchdog's logger carries the process run_id already; the
		// stall's own job scope is what the line must add.
		w.log.Warn("unit stalled",
			slog.String(KeyJobID, s.JobID), slog.Int(KeyUnitID, s.Unit),
			slog.Duration("idle", s.Idle), slog.Duration("threshold", w.threshold))
	}
	if len(all) > 0 && w.OnStall != nil {
		w.OnStall(all)
	}
	return all
}

// Run sweeps on the watchdog's interval until ctx is canceled. The
// daemon runs one watchdog goroutine for all jobs.
func (w *Watchdog) Run(ctx context.Context) {
	tick := time.NewTicker(w.interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			w.Sweep()
		}
	}
}
