package bench

import (
	"bytes"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim"
)

// TestRoundTripGeneratedProperty: for a spread of generated circuits,
// write → parse must preserve structure and, more importantly,
// behaviour: identical sequential traces on a fixed input sequence.
func TestRoundTripGeneratedProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := gen.Profile{Name: "rt", PIs: 5, POs: 4, FFs: 8, Gates: 80 + 20*int(seed)}
		orig := gen.Generate(p, seed)

		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatal(err)
		}
		back, err := ParseString(buf.String(), "rt")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back.Stat() != orig.Stat() {
			t.Fatalf("seed %d: stats changed: %+v vs %+v", seed, back.Stat(), orig.Stat())
		}

		// Behavioural equivalence on a deterministic input sequence.
		so := sim.NewSeq(orig)
		sb := sim.NewSeq(back)
		zero := make([]logic.V, len(orig.FFs))
		so.SetState(zero)
		sb.SetState(zero)
		rng := uint64(seed) * 0x9e3779b97f4a7c15
		pi := make([]logic.V, len(orig.Inputs))
		pib := make([]logic.V, len(back.Inputs))
		var poO, poB []logic.V
		for cyc := 0; cyc < 30; cyc++ {
			for i := range pi {
				rng = rng*6364136223846793005 + 1442695040888963407
				pi[i] = logic.V((rng >> 33) & 1)
			}
			// Input order may differ; map by name.
			for i, in := range back.Inputs {
				oid, ok := orig.Lookup(back.NameOf(in))
				if !ok {
					t.Fatalf("input %s lost", back.NameOf(in))
				}
				for j, oin := range orig.Inputs {
					if oin == oid {
						pib[i] = pi[j]
					}
				}
			}
			poO = so.Cycle(pi, nil, poO)
			poB = sb.Cycle(pib, nil, poB)
			for o := range poO {
				if poO[o] != poB[o] {
					t.Fatalf("seed %d cycle %d: PO %d differs after round trip", seed, cyc, o)
				}
			}
		}
	}
}
