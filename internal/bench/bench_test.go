package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestParseS27(t *testing.T) {
	c := MustS27()
	st := c.Stat()
	if st.Inputs != 4 || st.Outputs != 1 || st.FFs != 3 || st.Gates != 10 {
		t.Fatalf("s27 stats = %+v", st)
	}
	g11, ok := c.Lookup("G11")
	if !ok {
		t.Fatal("G11 missing")
	}
	if c.Signals[g11].Op != logic.OpNor || len(c.Signals[g11].Fanin) != 2 {
		t.Errorf("G11 = %v(%d inputs)", c.Signals[g11].Op, len(c.Signals[g11].Fanin))
	}
	// G6 = DFF(G11): flip-flop wiring.
	g6, _ := c.Lookup("G6")
	if !c.IsFF(g6) || c.Signals[g6].Fanin[0] != g11 {
		t.Error("G6 DFF wiring wrong")
	}
}

func TestRoundTrip(t *testing.T) {
	c := MustS27()
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseString(buf.String(), "s27rt")
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, buf.String())
	}
	if c2.Stat() != c.Stat() {
		t.Errorf("round-trip stats differ: %+v vs %+v", c2.Stat(), c.Stat())
	}
	// Same gate functions per name.
	for _, s := range c.Signals {
		id2, ok := c2.Lookup(s.Name)
		if !ok {
			t.Fatalf("signal %s lost in round trip", s.Name)
		}
		s2 := c2.Signals[id2]
		if s2.Kind != s.Kind || s2.Op != s.Op || len(s2.Fanin) != len(s.Fanin) {
			t.Errorf("signal %s changed: %+v vs %+v", s.Name, s2, s)
		}
		for i, f := range s.Fanin {
			if c.NameOf(f) != c2.NameOf(s2.Fanin[i]) {
				t.Errorf("signal %s fanin %d: %s vs %s", s.Name, i, c.NameOf(f), c2.NameOf(s2.Fanin[i]))
			}
		}
	}
}

func TestParseForwardReference(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
y = AND(w, a)
w = NOT(a)
`
	c, err := ParseString(src, "fwd")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 2 {
		t.Errorf("gates = %d", c.NumGates())
	}
}

func TestParseConstGate(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
one = CONST1()
y = AND(a, one)
`
	c, err := ParseString(src, "const")
	if err != nil {
		t.Fatal(err)
	}
	one, _ := c.Lookup("one")
	if c.Signals[one].Op != logic.OpConst1 {
		t.Error("CONST1 not parsed")
	}
	var buf bytes.Buffer
	if err := Write(&buf, c); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseString(buf.String(), "const2"); err != nil {
		t.Errorf("const round trip: %v", err)
	}
}

func TestParseCommentsAndCase(t *testing.T) {
	src := "# header\ninput(a)\noutput(y)\ny = not(a) # trailing comment\n"
	c, err := ParseString(src, "case")
	if err != nil {
		t.Fatal(err)
	}
	if c.NumGates() != 1 {
		t.Errorf("gates = %d", c.NumGates())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"INPUT(a",                           // missing paren
		"INPUT(a)\nINPUT(a)",                // duplicate input
		"INPUT(a)\ny = ",                    // empty rhs
		"INPUT(a)\ny AND(a)",                // missing =
		"INPUT(a)\ny = MAJ(a)",              // unknown op
		"INPUT(a)\ny = AND(a, )",            // empty arg
		"INPUT(a)\nOUTPUT(z)\ny = NOT(a)",   // undefined output
		"INPUT(a)\ny = DFF(a, a)",           // DFF arity
		"INPUT(a)\ny = AND(q, a)",           // undefined signal
		"INPUT(a)\nx = NOT(y)\ny = NOT(x)",  // combinational cycle
		"INPUT(a)\nOUTPUT(y)\ny = NOT(a,b)", // NOT arity
	}
	for _, src := range bad {
		if _, err := ParseString(src, "bad"); err == nil {
			t.Errorf("accepted invalid source %q", src)
		}
	}
}

func TestWriteHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, MustS27()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "4 inputs  1 outputs  3 D-type flipflops  10 gates") {
		t.Errorf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "G5 = DFF(G10)") {
		t.Errorf("DFF line missing:\n%s", out)
	}
}
