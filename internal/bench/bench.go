// Package bench reads and writes circuits in the ISCAS'89 .bench netlist
// format, the interchange format the original benchmarks (and the paper's
// SIS-mapped versions of them) are distributed in.
//
// Supported syntax:
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	q = DFF(d)
//	y = NAND(a, b, c)     # also AND OR NOR NOT BUF BUFF XOR XNOR
//
// Flip-flop D inputs may reference signals defined later in the file, as
// the original benchmarks do.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

type pending struct {
	name   string
	op     string
	args   []string
	lineNo int
}

// Parse reads a .bench description and returns the finalized circuit.
func Parse(r io.Reader, name string) (*netlist.Circuit, error) {
	c := netlist.New(name)
	var (
		defs    []pending
		outputs []string
		inputs  = map[string]bool{}
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "INPUT(") || strings.HasPrefix(line, "input("):
			arg, err := insideParens(line[len("INPUT("):], lineNo)
			if err != nil {
				return nil, err
			}
			if inputs[arg] {
				return nil, fmt.Errorf("bench: line %d: duplicate INPUT(%s)", lineNo, arg)
			}
			inputs[arg] = true
			if _, err := c.AddInput(arg); err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", lineNo, err)
			}
		case strings.HasPrefix(line, "OUTPUT(") || strings.HasPrefix(line, "output("):
			arg, err := insideParens(line[len("OUTPUT("):], lineNo)
			if err != nil {
				return nil, err
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bench: line %d: cannot parse %q", lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op, args, err := splitCall(rhs, lineNo)
			if err != nil {
				return nil, err
			}
			defs = append(defs, pending{name: lhs, op: op, args: args, lineNo: lineNo})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: %v", err)
	}

	// First pass: declare all flip-flops so forward references resolve.
	for _, d := range defs {
		if d.op == "DFF" {
			if len(d.args) != 1 {
				return nil, fmt.Errorf("bench: line %d: DFF takes one input", d.lineNo)
			}
			if _, err := c.AddFF(d.name); err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", d.lineNo, err)
			}
		}
	}
	// Second pass: gates in dependency order (multiple sweeps; gate
	// definitions in .bench may be in any order).
	remaining := make([]pending, 0, len(defs))
	for _, d := range defs {
		if d.op != "DFF" {
			remaining = append(remaining, d)
		}
	}
	for len(remaining) > 0 {
		progress := false
		next := remaining[:0]
		for _, d := range remaining {
			ids, ok := resolveAll(c, d.args)
			if !ok {
				next = append(next, d)
				continue
			}
			op, err := parseBenchOp(d.op)
			if err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", d.lineNo, err)
			}
			if _, err := c.AddGate(d.name, op, ids...); err != nil {
				return nil, fmt.Errorf("bench: line %d: %v", d.lineNo, err)
			}
			progress = true
		}
		remaining = next
		if !progress {
			return nil, fmt.Errorf("bench: line %d: unresolvable reference in %q (cycle or undefined signal)",
				remaining[0].lineNo, remaining[0].name)
		}
	}
	// Connect flip-flop D inputs.
	for _, d := range defs {
		if d.op != "DFF" {
			continue
		}
		ff, _ := c.Lookup(d.name)
		din, ok := c.Lookup(d.args[0])
		if !ok {
			return nil, fmt.Errorf("bench: line %d: DFF %s: undefined D input %q", d.lineNo, d.name, d.args[0])
		}
		if err := c.SetFFInput(ff, din); err != nil {
			return nil, fmt.Errorf("bench: line %d: %v", d.lineNo, err)
		}
	}
	for _, o := range outputs {
		id, ok := c.Lookup(o)
		if !ok {
			return nil, fmt.Errorf("bench: undefined OUTPUT(%s)", o)
		}
		if err := c.MarkOutput(id); err != nil {
			return nil, err
		}
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return c, nil
}

// ParseString is Parse over a string.
func ParseString(s, name string) (*netlist.Circuit, error) {
	return Parse(strings.NewReader(s), name)
}

func insideParens(rest string, lineNo int) (string, error) {
	i := strings.IndexByte(rest, ')')
	if i < 0 {
		return "", fmt.Errorf("bench: line %d: missing ')'", lineNo)
	}
	arg := strings.TrimSpace(rest[:i])
	if arg == "" {
		return "", fmt.Errorf("bench: line %d: empty argument", lineNo)
	}
	return arg, nil
}

func splitCall(rhs string, lineNo int) (op string, args []string, err error) {
	open := strings.IndexByte(rhs, '(')
	closeP := strings.LastIndexByte(rhs, ')')
	if open < 0 || closeP < open {
		return "", nil, fmt.Errorf("bench: line %d: cannot parse gate %q", lineNo, rhs)
	}
	op = strings.ToUpper(strings.TrimSpace(rhs[:open]))
	inner := strings.TrimSpace(rhs[open+1 : closeP])
	if inner == "" {
		return op, nil, nil // zero-input gate (CONST0/CONST1)
	}
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, fmt.Errorf("bench: line %d: empty gate argument", lineNo)
		}
		args = append(args, a)
	}
	return op, args, nil
}

func parseBenchOp(op string) (logic.Op, error) {
	switch op {
	case "BUFF", "BUF":
		return logic.OpBuf, nil
	case "NOT", "INV":
		return logic.OpNot, nil
	}
	return logic.ParseOp(op)
}

func resolveAll(c *netlist.Circuit, names []string) ([]netlist.SignalID, bool) {
	ids := make([]netlist.SignalID, len(names))
	for i, n := range names {
		id, ok := c.Lookup(n)
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

// Write emits the circuit in .bench format. Gates are written in
// topological order; flip-flops and outputs keep declaration order.
func Write(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", c.Name)
	st := c.Stat()
	fmt.Fprintf(bw, "# %d inputs  %d outputs  %d D-type flipflops  %d gates\n",
		st.Inputs, st.Outputs, st.FFs, st.Gates)
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", c.NameOf(in))
	}
	for _, o := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", c.NameOf(o))
	}
	fmt.Fprintln(bw)
	for _, ff := range c.FFs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", c.NameOf(ff), c.NameOf(c.Signals[ff].Fanin[0]))
	}
	order := append([]netlist.SignalID(nil), c.Order...)
	sort.SliceStable(order, func(i, j int) bool {
		if c.Level[order[i]] != c.Level[order[j]] {
			return c.Level[order[i]] < c.Level[order[j]]
		}
		return order[i] < order[j]
	})
	for _, g := range order {
		s := &c.Signals[g]
		names := make([]string, len(s.Fanin))
		for i, f := range s.Fanin {
			names[i] = c.NameOf(f)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", s.Name, benchOpName(s.Op), strings.Join(names, ", "))
	}
	return bw.Flush()
}

func benchOpName(op logic.Op) string {
	switch op {
	case logic.OpBuf:
		return "BUFF"
	}
	return op.String()
}
