package bench

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// WriteVerilog emits the circuit as a structural gate-level Verilog
// module (primitive gates plus a positive-edge D flip-flop always
// block), so generated benchmarks and scan-inserted designs can be fed
// to synthesis or simulation tools outside this repository.
func WriteVerilog(w io.Writer, c *netlist.Circuit) error {
	bw := bufio.NewWriter(w)
	name := sanitizeVerilog(c.Name)
	fmt.Fprintf(bw, "// generated from %s\nmodule %s (clk", c.Name, name)
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, ", %s", sanitizeVerilog(c.NameOf(in)))
	}
	seenPO := map[netlist.SignalID]bool{}
	var pos []netlist.SignalID
	for _, o := range c.Outputs {
		if seenPO[o] {
			continue
		}
		seenPO[o] = true
		pos = append(pos, o)
		fmt.Fprintf(bw, ", %s_po", sanitizeVerilog(c.NameOf(o)))
	}
	fmt.Fprintf(bw, ");\n  input clk;\n")
	for _, in := range c.Inputs {
		fmt.Fprintf(bw, "  input %s;\n", sanitizeVerilog(c.NameOf(in)))
	}
	for _, o := range pos {
		fmt.Fprintf(bw, "  output %s_po;\n", sanitizeVerilog(c.NameOf(o)))
	}
	for _, ff := range c.FFs {
		fmt.Fprintf(bw, "  reg %s;\n", sanitizeVerilog(c.NameOf(ff)))
	}
	for _, g := range c.Order {
		fmt.Fprintf(bw, "  wire %s;\n", sanitizeVerilog(c.NameOf(g)))
	}

	for _, g := range c.Order {
		s := &c.Signals[g]
		out := sanitizeVerilog(s.Name)
		ins := make([]string, len(s.Fanin))
		for i, f := range s.Fanin {
			ins[i] = sanitizeVerilog(c.NameOf(f))
		}
		switch s.Op {
		case logic.OpBuf:
			fmt.Fprintf(bw, "  buf (%s, %s);\n", out, ins[0])
		case logic.OpNot:
			fmt.Fprintf(bw, "  not (%s, %s);\n", out, ins[0])
		case logic.OpConst0:
			fmt.Fprintf(bw, "  assign %s = 1'b0;\n", out)
		case logic.OpConst1:
			fmt.Fprintf(bw, "  assign %s = 1'b1;\n", out)
		default:
			prim := map[logic.Op]string{
				logic.OpAnd: "and", logic.OpNand: "nand",
				logic.OpOr: "or", logic.OpNor: "nor",
				logic.OpXor: "xor", logic.OpXnor: "xnor",
			}[s.Op]
			if prim == "" {
				return fmt.Errorf("bench: cannot export op %v to Verilog", s.Op)
			}
			if len(ins) == 1 {
				// Degenerate 1-input gates: AND/OR/XOR pass through,
				// NAND/NOR/XNOR invert.
				if s.Op.Inverting() {
					fmt.Fprintf(bw, "  not (%s, %s);\n", out, ins[0])
				} else {
					fmt.Fprintf(bw, "  buf (%s, %s);\n", out, ins[0])
				}
			} else {
				fmt.Fprintf(bw, "  %s (%s, %s);\n", prim, out, strings.Join(ins, ", "))
			}
		}
	}

	if len(c.FFs) > 0 {
		fmt.Fprintf(bw, "  always @(posedge clk) begin\n")
		for _, ff := range c.FFs {
			fmt.Fprintf(bw, "    %s <= %s;\n",
				sanitizeVerilog(c.NameOf(ff)), sanitizeVerilog(c.NameOf(c.Signals[ff].Fanin[0])))
		}
		fmt.Fprintf(bw, "  end\n")
	}
	for _, o := range pos {
		fmt.Fprintf(bw, "  assign %s_po = %s;\n",
			sanitizeVerilog(c.NameOf(o)), sanitizeVerilog(c.NameOf(o)))
	}
	fmt.Fprintf(bw, "endmodule\n")
	return bw.Flush()
}

// sanitizeVerilog maps a netlist name to a legal Verilog identifier.
func sanitizeVerilog(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			fmt.Fprintf(&b, "_%02x", r)
		}
	}
	s := b.String()
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		s = "n" + s
	}
	return s
}
