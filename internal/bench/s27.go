package bench

import "repro/internal/netlist"

// S27 is the real ISCAS'89 s27 benchmark, embedded verbatim. It is the
// ground-truth circuit for unit and integration tests: small enough to
// verify exhaustively, yet it contains sequential feedback, reconvergent
// fanout and inverting gates.
const S27 = `# s27: ISCAS'89 sequential benchmark
# 4 inputs 1 output 3 D-type flipflops 10 gates
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
`

// MustS27 parses the embedded s27 benchmark; it panics on failure (the
// text is a compile-time constant, so failure is a programming error).
func MustS27() *netlist.Circuit {
	c, err := ParseString(S27, "s27")
	if err != nil {
		panic("bench: embedded s27 does not parse: " + err.Error())
	}
	return c
}
