package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
)

func TestWriteVerilogS27(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, MustS27()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"module s27 (clk",
		"input G0;",
		"reg G5;",
		"nand (G9, G16, G15);",
		"always @(posedge clk)",
		"G5 <= G10;",
		"assign G17_po = G17;",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Verilog output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteVerilogGenerated(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "v", PIs: 4, POs: 3, FFs: 6, Gates: 60}, 2)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, c); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "endmodule") != 1 {
		t.Error("malformed module")
	}
	// Every gate appears exactly once as a wire.
	if got := strings.Count(out, "  wire "); got != c.NumGates() {
		t.Errorf("%d wires for %d gates", got, c.NumGates())
	}
}

func TestWriteVerilogDeterministic(t *testing.T) {
	c := MustS27()
	var a, b bytes.Buffer
	if err := WriteVerilog(&a, c); err != nil {
		t.Fatal(err)
	}
	if err := WriteVerilog(&b, c); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Verilog output nondeterministic")
	}
}

func TestSanitizeVerilog(t *testing.T) {
	cases := map[string]string{
		"G17":    "G17",
		"1abc":   "_31abc", // leading digit escaped to its hex code
		"a.b":    "a_2eb",
		"":       "n",
		"mux0_s": "mux0_s",
		"sig@3":  "sig_403",
	}
	for in, want := range cases {
		if got := sanitizeVerilog(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
