package gen

import (
	"testing"

	"repro/internal/netlist"
)

func TestSuiteProfiles(t *testing.T) {
	suite := Suite()
	if len(suite) != 12 {
		t.Fatalf("suite has %d profiles, want 12", len(suite))
	}
	names := map[string]bool{}
	for _, p := range suite {
		if names[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		names[p.Name] = true
		if p.PIs <= 0 || p.POs <= 0 || p.FFs <= 0 || p.Gates <= 0 {
			t.Errorf("profile %s has non-positive sizes: %+v", p.Name, p)
		}
	}
	if !names["s38584"] || !names["s1423"] {
		t.Error("expected benchmark names missing")
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("s5378")
	if err != nil || p.FFs != 179 {
		t.Errorf("ProfileByName(s5378) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("s0"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenerateMatchesProfile(t *testing.T) {
	p := Profile{Name: "t", PIs: 8, POs: 6, FFs: 20, Gates: 300}
	c := Generate(p, 1)
	st := c.Stat()
	if st.Inputs != p.PIs || st.Outputs != p.POs || st.FFs != p.FFs {
		t.Errorf("stats %+v vs profile %+v", st, p)
	}
	// Gate count may exceed the target by the small dangling-collector
	// fix-up, never undershoot by more than that.
	if st.Gates < p.Gates || st.Gates > p.Gates+4 {
		t.Errorf("gates = %d, want about %d", st.Gates, p.Gates)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Name: "d", PIs: 6, POs: 4, FFs: 12, Gates: 150}
	a := Generate(p, 42)
	b := Generate(p, 42)
	if len(a.Signals) != len(b.Signals) {
		t.Fatal("different signal counts for same seed")
	}
	for i := range a.Signals {
		sa, sb := a.Signals[i], b.Signals[i]
		if sa.Name != sb.Name || sa.Kind != sb.Kind || sa.Op != sb.Op || len(sa.Fanin) != len(sb.Fanin) {
			t.Fatalf("signal %d differs: %+v vs %+v", i, sa, sb)
		}
		for j := range sa.Fanin {
			if sa.Fanin[j] != sb.Fanin[j] {
				t.Fatalf("signal %d fanin differs", i)
			}
		}
	}
	cdiff := Generate(p, 43)
	same := len(cdiff.Signals) == len(a.Signals)
	if same {
		differs := false
		for i := range a.Signals {
			if len(a.Signals[i].Fanin) != len(cdiff.Signals[i].Fanin) {
				differs = true
				break
			}
			for j := range a.Signals[i].Fanin {
				if a.Signals[i].Fanin[j] != cdiff.Signals[i].Fanin[j] {
					differs = true
					break
				}
			}
		}
		if !differs {
			t.Error("different seeds produced identical netlists")
		}
	}
}

func TestGenerateNoDangling(t *testing.T) {
	p := Profile{Name: "nd", PIs: 8, POs: 5, FFs: 16, Gates: 400}
	c := Generate(p, 3)
	isPO := map[netlist.SignalID]bool{}
	for _, o := range c.Outputs {
		isPO[o] = true
	}
	dangling := 0
	for id := netlist.SignalID(0); int(id) < len(c.Signals); id++ {
		if c.IsGate(id) && len(c.Fanouts[id]) == 0 && !isPO[id] {
			dangling++
		}
	}
	if dangling > 0 {
		t.Errorf("%d dangling gates remain", dangling)
	}
}

func TestGenerateSuiteSmallScale(t *testing.T) {
	// Every suite profile must generate a valid circuit at 2% scale.
	for _, p := range Suite() {
		sp := p.Scale(0.02)
		c := Generate(sp, 9)
		if !c.Finalized() {
			t.Fatalf("%s not finalized", p.Name)
		}
		st := c.Stat()
		if st.Gates < 20 || st.FFs < 4 {
			t.Errorf("%s scaled too small: %+v", p.Name, st)
		}
		if st.MaxLevel < 3 {
			t.Errorf("%s has trivial depth %d", p.Name, st.MaxLevel)
		}
	}
}

func TestScaleKeepsFullProfile(t *testing.T) {
	p, _ := ProfileByName("s9234")
	if p.Scale(1.0) != p {
		t.Error("Scale(1.0) changed the profile")
	}
	s := p.Scale(0.1)
	if s.Gates >= p.Gates || s.FFs >= p.FFs {
		t.Error("Scale(0.1) did not shrink")
	}
}

func TestGenerateFullSizeLargest(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size generation in -short mode")
	}
	p, _ := ProfileByName("s38417")
	c := Generate(p, 1)
	st := c.Stat()
	if st.Gates < p.Gates {
		t.Errorf("gates = %d < %d", st.Gates, p.Gates)
	}
	if st.MaxLevel > 200 {
		t.Errorf("depth %d unrealistically large", st.MaxLevel)
	}
}
