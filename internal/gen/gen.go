// Package gen produces deterministic synthetic sequential benchmark
// circuits with the published size profiles of the twelve largest
// ISCAS'89 circuits.
//
// The original benchmark netlists (and the paper's SIS-optimized,
// NAND/NOR-mapped versions of them) are not redistributable inside this
// repository, so the experiments run on structurally comparable
// synthetic circuits instead: same primary-input/output counts, same
// flip-flop counts, same gate counts, a NAND/NOR/INV-dominated gate mix
// matching the paper's technology mapping, bounded logic depth, local
// fanin bias and reconvergent fanout. DESIGN.md documents why this
// substitution preserves the behaviour the paper measures.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Profile describes the target size of a generated circuit.
type Profile struct {
	Name   string
	PIs    int
	POs    int
	FFs    int
	Gates  int
	Levels int // target combinational depth; 0 picks a size-based default
}

// Suite returns the profiles of the twelve largest ISCAS'89 benchmarks
// (canonical published sizes), the paper's test suite.
func Suite() []Profile {
	return []Profile{
		{Name: "s1423", PIs: 17, POs: 5, FFs: 74, Gates: 657},
		{Name: "s3271", PIs: 26, POs: 14, FFs: 116, Gates: 1572},
		{Name: "s3330", PIs: 40, POs: 73, FFs: 132, Gates: 1789},
		{Name: "s3384", PIs: 43, POs: 26, FFs: 183, Gates: 1685},
		{Name: "s4863", PIs: 49, POs: 16, FFs: 104, Gates: 2342},
		{Name: "s5378", PIs: 35, POs: 49, FFs: 179, Gates: 2779},
		{Name: "s9234", PIs: 36, POs: 39, FFs: 211, Gates: 5597},
		{Name: "s13207", PIs: 62, POs: 152, FFs: 638, Gates: 7951},
		{Name: "s15850", PIs: 77, POs: 150, FFs: 534, Gates: 9772},
		{Name: "s35932", PIs: 35, POs: 320, FFs: 1728, Gates: 16065},
		{Name: "s38417", PIs: 28, POs: 106, FFs: 1636, Gates: 22179},
		{Name: "s38584", PIs: 38, POs: 304, FFs: 1426, Gates: 19253},
	}
}

// ProfileByName returns the suite profile with the given name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("gen: no profile named %q", name)
}

// Scale returns a proportionally shrunken copy of p (factor in (0,1]),
// keeping sane minimums. Used to run the full flow quickly in tests and
// short benchmarks while preserving each circuit's shape.
func (p Profile) Scale(factor float64) Profile {
	if factor >= 1 {
		return p
	}
	sc := func(n int, min int) int {
		v := int(float64(n) * factor)
		if v < min {
			v = min
		}
		return v
	}
	return Profile{
		Name:   p.Name,
		PIs:    sc(p.PIs, 3),
		POs:    sc(p.POs, 2),
		FFs:    sc(p.FFs, 4),
		Gates:  sc(p.Gates, 20),
		Levels: p.Levels,
	}
}

// Generate builds a synthetic circuit matching profile p. The same
// (p, seed) pair always yields the identical netlist.
func Generate(p Profile, seed int64) *netlist.Circuit {
	r := rand.New(rand.NewSource(seed))
	c := netlist.New(p.Name)

	levels := p.Levels
	if levels == 0 {
		switch {
		case p.Gates < 1000:
			levels = 14
		case p.Gates < 6000:
			levels = 20
		default:
			levels = 26
		}
	}

	// Level 0 sources: primary inputs and flip-flop outputs.
	var sources []netlist.SignalID
	for i := 0; i < p.PIs; i++ {
		id, err := c.AddInput(fmt.Sprintf("pi%d", i))
		must(err)
		sources = append(sources, id)
	}
	ffs := make([]netlist.SignalID, p.FFs)
	for i := range ffs {
		id, err := c.AddFF(fmt.Sprintf("ff%d", i))
		must(err)
		ffs[i] = id
		sources = append(sources, id)
	}

	// Combinational cloud, organized in levels. Each gate draws inputs
	// from the previous level with high probability (local structure),
	// from any earlier level occasionally (reconvergence and long wires),
	// and from the level-0 sources for the rest.
	perLevel := p.Gates / levels
	if perLevel < 1 {
		perLevel = 1
	}
	byLevel := make([][]netlist.SignalID, 1, levels+1)
	byLevel[0] = sources
	gateNo := 0
	built := 0
	for lvl := 1; built < p.Gates; lvl++ {
		n := perLevel
		if rem := p.Gates - built; lvl == levels || rem < n {
			n = rem
		}
		cur := make([]netlist.SignalID, 0, n)
		for i := 0; i < n; i++ {
			op, fanin := pickGate(r)
			ins := make([]netlist.SignalID, 0, fanin)
			seen := map[netlist.SignalID]bool{}
			for len(ins) < fanin {
				var src netlist.SignalID
				switch x := r.Float64(); {
				case x < 0.55 && len(byLevel[lvl-1]) > 0:
					src = byLevel[lvl-1][r.Intn(len(byLevel[lvl-1]))]
				case x < 0.80 && lvl >= 2:
					l := 1 + r.Intn(lvl-1)
					if len(byLevel[l]) == 0 {
						continue
					}
					src = byLevel[l][r.Intn(len(byLevel[l]))]
				default:
					src = sources[r.Intn(len(sources))]
				}
				if seen[src] {
					continue
				}
				seen[src] = true
				ins = append(ins, src)
			}
			id, err := c.AddGate(fmt.Sprintf("g%d", gateNo), op, ins...)
			must(err)
			gateNo++
			cur = append(cur, id)
			built++
		}
		byLevel = append(byLevel, cur)
	}

	// Flip-flop D inputs and primary outputs come from the deepest
	// levels, preferring signals that nothing consumes yet so that
	// little logic dangles.
	deep := make([]netlist.SignalID, 0)
	for l := len(byLevel) - 1; l >= 1 && len(deep) < p.FFs+p.POs+64; l-- {
		deep = append(deep, byLevel[l]...)
	}
	r.Shuffle(len(deep), func(i, j int) { deep[i], deep[j] = deep[j], deep[i] })
	di := 0
	nextDeep := func() netlist.SignalID {
		id := deep[di%len(deep)]
		di++
		return id
	}
	for _, ff := range ffs {
		must(c.SetFFInput(ff, nextDeep()))
	}
	for i := 0; i < p.POs; i++ {
		must(c.MarkOutput(nextDeep()))
	}

	c.MustFinalize()
	fixDangling(c, r)
	c.MustFinalize()
	return c
}

// pickGate samples a gate operator and fanin count with a NAND/NOR
// dominated mix, matching the paper's nand-nor library mapping.
func pickGate(r *rand.Rand) (logic.Op, int) {
	switch x := r.Float64(); {
	case x < 0.38:
		return logic.OpNand, 2 + r.Intn(3)
	case x < 0.66:
		return logic.OpNor, 2 + r.Intn(2)
	case x < 0.82:
		return logic.OpNot, 1
	case x < 0.92:
		return logic.OpAnd, 2 + r.Intn(2)
	default:
		return logic.OpOr, 2 + r.Intn(2)
	}
}

// fixDangling reconnects gate outputs that nothing consumes (and are not
// primary outputs) by appending them as extra inputs to gates at
// strictly deeper levels, which cannot create a combinational cycle.
// A handful of deepest-level stragglers may remain; they are folded into
// the D input of flip-flop 0 through a collector gate.
func fixDangling(c *netlist.Circuit, r *rand.Rand) {
	isPO := make(map[netlist.SignalID]bool, len(c.Outputs))
	for _, o := range c.Outputs {
		isPO[o] = true
	}
	var dangling []netlist.SignalID
	for id := netlist.SignalID(0); int(id) < len(c.Signals); id++ {
		if c.IsGate(id) && len(c.Fanouts[id]) == 0 && !isPO[id] {
			dangling = append(dangling, id)
		}
	}
	if len(dangling) == 0 {
		return
	}
	// Index gates by level for quick deeper-gate lookup.
	maxLevel := 0
	for _, l := range c.Level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	byLevel := make([][]netlist.SignalID, maxLevel+1)
	for _, g := range c.Order {
		s := &c.Signals[g]
		// Only variadic gates can take an extra input.
		if s.Op == logic.OpNot || s.Op == logic.OpBuf {
			continue
		}
		byLevel[c.Level[g]] = append(byLevel[c.Level[g]], g)
	}
	var leftovers []netlist.SignalID
	for _, d := range dangling {
		attached := false
		for try := 0; try < 8 && !attached; try++ {
			lvl := c.Level[d] + 1 + r.Intn(maxLevel-c.Level[d]+1)
			if lvl > maxLevel || len(byLevel[lvl]) == 0 {
				continue
			}
			g := byLevel[lvl][r.Intn(len(byLevel[lvl]))]
			c.Signals[g].Fanin = append(c.Signals[g].Fanin, d)
			attached = true
		}
		if !attached {
			leftovers = append(leftovers, d)
		}
	}
	if len(leftovers) > 0 && len(c.FFs) > 0 {
		ff := c.FFs[0]
		oldD := c.Signals[ff].Fanin[0]
		coll, err := c.AddGate("g_collect", logic.OpNand, leftovers...)
		must(err)
		nd, err := c.AddGate("g_collect_and", logic.OpAnd, oldD, coll)
		must(err)
		must(c.SetFFInput(ff, nd))
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
