// Package faultsim runs fault simulation of test sequences: a serial
// reference simulator, a 63-fault parallel machine simulator built on
// the packed evaluator, and a hybrid strategy that runs each fault on a
// per-fault delta simulator against a shared fault-free baseline and
// demotes broadly-diverging faults back to the packed sweep. Detection
// means a primary output carries a definite value in the fault-free
// machine and the opposite definite value in the faulty machine at the
// same cycle; an X never detects. Every strategy produces identical
// results at any worker count.
//
// Combinational fault simulation falls out as the special case of a
// circuit with no flip-flops and one-cycle sequences.
package faultsim

import (
	"context"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// Sequence is a test sequence: one primary-input assignment per cycle,
// each with one value per circuit input (in c.Inputs order).
type Sequence [][]logic.V

// hybridUnit is the number of faults one hybrid work unit carries. Each
// unit pays one fault-free baseline re-simulation, amortized across its
// faults, so larger units waste less baseline work — but units are also
// the parallel grain, so they must stay numerous enough to spread
// across workers.
const hybridUnit = 256

// Options configures a fault-simulation run.
type Options struct {
	// InitState is the initial flip-flop state (per c.FFs entry). Nil
	// means all-X (power-on).
	InitState []logic.V
	// StopWhenAllDetected ends each batch early once every fault in it
	// has been detected.
	StopWhenAllDetected bool
	// Workers is the number of goroutines sharding the fault axis
	// (each owns a private packed simulator and processes whole
	// 63-fault batches). 0 selects runtime.GOMAXPROCS; 1 forces the
	// serial path. Results are identical at any width.
	Workers int
	// MapEval selects the map-based reference evaluator instead of the
	// compiled one (ablation; slower).
	//
	// Deprecated: set Eval to engine.Packed instead. MapEval is kept as
	// a synonym and only consulted while Eval is engine.Auto.
	MapEval bool
	// Eval selects the simulation backend. engine.Auto (the zero value)
	// picks per run: hybrid for full-width passes on larger sequential
	// circuits, the event-driven scalar path for near-empty batches on
	// large circuits, and the compiled evaluator otherwise.
	Eval engine.Backend
	// ConeThreshold is the hybrid strategy's per-cycle gate-evaluation
	// budget: faults whose divergence exceeds it in any cycle are
	// demoted to the compiled sweep. 0 selects the circuit-scaled
	// engine.ConeThresholdFor default. Ignored by the other backends. The
	// demotion decision depends only on the fault, the sequence and the
	// initial state, so results stay identical at any worker count.
	ConeThreshold int
	// Cache supplies the shared circuit-artifact cache the compiled
	// program is drawn from. Nil selects engine.Default().
	Cache *engine.Cache
	// Obs, when non-nil, receives run metrics: faultsim.* counters
	// (runs by evaluator kind, batches, executed cycles, detections,
	// early exits, hybrid fast-path occupancy) and per-worker
	// utilization under the "faultsim" (sweep) and "faultsim.delta"
	// (hybrid fast path) pools. A nil collector costs one pointer test
	// per batch.
	Obs *obs.Collector
}

// backend resolves the configured evaluator backend for circuit c given
// the run shape, honouring the deprecated MapEval switch.
func (o Options) backend(c *netlist.Circuit, lanes, cycles int) engine.Backend {
	b := o.Eval
	if b == engine.Auto && o.MapEval {
		b = engine.Packed
	}
	return b.ResolveSeq(c, engine.Hint{Lanes: lanes, Cycles: cycles})
}

// Result reports, for each fault (by index into the input fault slice),
// the first cycle at which it was detected, or -1.
type Result struct {
	DetectedAt []int
}

// NumDetected counts the detected faults.
func (r *Result) NumDetected() int {
	n := 0
	for _, d := range r.DetectedAt {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Undetected returns the indices of undetected faults.
func (r *Result) Undetected() []int {
	u := make([]int, 0, len(r.DetectedAt)-r.NumDetected())
	for i, d := range r.DetectedAt {
		if d < 0 {
			u = append(u, i)
		}
	}
	return u
}

// Profile returns the cumulative number of detected faults after each
// cycle boundary in bounds (ascending cycle counts), the Figure-5 curve.
func (r *Result) Profile(bounds []int) []int {
	out := make([]int, len(bounds))
	for i, b := range bounds {
		n := 0
		for _, d := range r.DetectedAt {
			if d >= 0 && d < b {
				n++
			}
		}
		out[i] = n
	}
	return out
}

// Run simulates seq against every fault using the packed simulator, 63
// faulty machines at a time with the fault-free machine in lane 0.
// Batches are sharded across opts.Workers goroutines; each worker owns
// a private simulator and writes detections only into its batch's slice
// range, so the result is identical at any worker count.
func Run(c *netlist.Circuit, seq Sequence, faults []fault.Fault, opts Options) *Result {
	res, _ := RunCtx(nil, c, seq, faults, opts)
	return res
}

// RunCtx is Run with cooperative cancellation: workers stop claiming
// fault batches once ctx is cancelled (an in-flight batch finishes — at
// most one sequence application per worker runs after the cancel), all
// workers are joined, and the context error is returned alongside the
// partial result. Detections recorded before the cancel are valid; the
// remaining faults simply stay undetected in the result. A nil context
// behaves like context.Background.
func RunCtx(ctx context.Context, c *netlist.Circuit, seq Sequence, faults []fault.Fault, opts Options) (*Result, error) {
	res := &Result{DetectedAt: make([]int, len(faults))}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}
	if len(seq) == 0 || len(faults) == 0 {
		if ctx != nil {
			return res, ctx.Err()
		}
		return res, nil
	}

	seqW := broadcastSeq(c, seq)

	col := opts.Obs
	lanes := len(faults)
	if lanes > 63 {
		lanes = 63
	}
	backend := opts.backend(c, lanes, len(seq))
	if col.Enabled() {
		col.Counter("faultsim.runs").Inc()
		name := backend.String()
		if backend == engine.Packed {
			name = "map" // historical counter name for the map-based evaluator
		}
		col.Counter("faultsim.eval." + name).Inc()
		col.Counter("faultsim.faults").Add(int64(len(faults)))
	}
	arts := engine.Resolve(opts.Cache).ForObs(c, col)

	var err error
	if backend == engine.Hybrid {
		err = runHybrid(ctx, seqW, faults, opts, res, col, arts)
	} else {
		if backend == engine.Compiled {
			arts.Program(col) // materialize (and account) the shared program up front
		}
		err = runSweep(ctx, backend, seqW, faults, nil, opts, res, col, arts)
	}
	if col.Enabled() {
		col.Counter("faultsim.detected").Add(int64(res.NumDetected()))
	}
	return res, err
}

// broadcastSeq expands the scalar stimulus to packed all-lanes words
// once, in a single backing allocation; every worker reads it.
func broadcastSeq(c *netlist.Circuit, seq Sequence) [][]logic.Word {
	stride := len(c.Inputs)
	flat := make([]logic.Word, len(seq)*stride)
	seqW := make([][]logic.Word, len(seq))
	for cyc, pi := range seq {
		w := flat[cyc*stride : (cyc+1)*stride : (cyc+1)*stride]
		for i := range w {
			w[i] = logic.WordAll(pi[i])
		}
		seqW[cyc] = w
	}
	return seqW
}

// runSweep is the packed 63-faults-per-batch simulation shared by the
// direct backends and the hybrid strategy's demotion pass. idxs selects
// the faults to simulate (indices into faults, ascending); nil means
// all of them. Detections are recorded under the fault's original
// index, and each batch writes only its own result slots, so the
// outcome is identical at any worker count.
func runSweep(ctx context.Context, backend engine.Backend, seqW [][]logic.Word, faults []fault.Fault, idxs []int, opts Options, res *Result, col *obs.Collector, arts *engine.Artifacts) error {
	total := len(idxs)
	if idxs == nil {
		total = len(faults)
	}
	if total == 0 {
		if ctx != nil {
			return ctx.Err()
		}
		return nil
	}
	batches := par.Chunks(total, 63)
	workers := par.Workers(opts.Workers)
	if workers > len(batches) {
		workers = len(batches)
	}
	if col.Enabled() {
		col.Counter("faultsim.batches").Add(int64(len(batches)))
	}
	cycleCtr := col.Counter("faultsim.cycles")
	earlyCtr := col.Counter("faultsim.early_exits")
	rec := col.Journal()

	type wstate struct {
		ps   engine.Evaluator
		poW  []logic.Word
		injs []sim.LaneInject
		fidx []int // absolute fault index per lane-1-based batch slot
	}
	states := par.NewPerWorker(workers, func() *wstate {
		return &wstate{
			ps:   engine.NewSeqEvaluator(backend, arts, col),
			injs: make([]sim.LaneInject, 0, 63),
			fidx: make([]int, 0, 63),
		}
	})
	body := func(worker, bi int) {
		st := states.Get(worker)
		base, n := batches[bi].Lo, batches[bi].Len()
		st.injs = st.injs[:0]
		st.fidx = st.fidx[:0]
		for k := 0; k < n; k++ {
			fi := base + k
			if idxs != nil {
				fi = idxs[base+k]
			}
			st.fidx = append(st.fidx, fi)
			st.injs = append(st.injs, sim.LaneInject{Inject: faults[fi].Inject(), Lane: uint(k + 1)})
		}
		ps := st.ps
		ps.SetInjections(st.injs)
		ps.ResetX()
		if opts.InitState != nil {
			for i, v := range opts.InitState {
				ps.SetStateWord(i, logic.WordAll(v))
			}
		}

		allMask := (uint64(1)<<uint(n+1) - 1) &^ 1 // lanes 1..n
		detected := uint64(0)
		ran := 0
		for cyc, piW := range seqW {
			st.poW = ps.Cycle(piW, st.poW)
			ran++
			for _, w := range st.poW {
				switch w.Get(0) {
				case logic.One:
					detected |= noteDetections(res, rec, faults, worker, st.fidx, w.Zeros&allMask&^detected, cyc)
				case logic.Zero:
					detected |= noteDetections(res, rec, faults, worker, st.fidx, w.Ones&allMask&^detected, cyc)
				}
			}
			if opts.StopWhenAllDetected && detected == allMask {
				earlyCtr.Inc()
				break
			}
		}
		cycleCtr.Add(int64(ran))
	}
	if col.Enabled() {
		return par.DoPoolCtx(ctx, workers, len(batches), "faultsim", col, body)
	}
	return par.DoCtx(ctx, workers, len(batches), body)
}

// runHybrid is the hybrid strategy: faults run one at a time on a
// per-worker delta simulator (sim.DeltaSeq) against a shared compiled
// baseline, in units of hybridUnit faults (one baseline re-simulation
// per unit). Faults whose per-cycle divergence exceeds the cone
// threshold are demoted — their verdicts come exclusively from a second
// compiled 63-lane sweep over just those faults. Demotion depends only
// on (fault, sequence, initial state), and both passes write only their
// own result slots, so the outcome is byte-identical to the compiled
// backend at any worker count or unit size.
func runHybrid(ctx context.Context, seqW [][]logic.Word, faults []fault.Fault, opts Options, res *Result, col *obs.Collector, arts *engine.Artifacts) error {
	cones := arts.Cones(col)
	prog := arts.Program(col)
	thr := opts.ConeThreshold
	if thr <= 0 {
		thr = engine.ConeThresholdFor(prog.C)
	}

	units := par.Chunks(len(faults), hybridUnit)
	workers := par.Workers(opts.Workers)
	if workers > len(units) {
		workers = len(units)
	}
	cycleCtr := col.Counter("faultsim.cycles")
	earlyCtr := col.Counter("faultsim.early_exits")
	rec := col.Journal()

	// Per-fault demotion flags: each unit writes only its own slots, so
	// concurrent workers never contend.
	demoted := make([]bool, len(faults))

	type hstate struct {
		d    *sim.DeltaSeq
		injs []sim.Inject
		det  []int
		over []bool
	}
	states := par.NewPerWorker(workers, func() *hstate {
		return &hstate{d: sim.NewDeltaSeq(prog)}
	})
	body := func(worker, ui int) {
		st := states.Get(worker)
		u := units[ui]
		n := u.Len()
		st.injs = st.injs[:0]
		for i := u.Lo; i < u.Hi; i++ {
			st.injs = append(st.injs, faults[i].Inject())
		}
		if cap(st.det) < n {
			st.det = make([]int, n)
			st.over = make([]bool, n)
		}
		det, over := st.det[:n], st.over[:n]
		ran := st.d.Run(st.injs, seqW, opts.InitState, thr, det, over)
		cycleCtr.Add(int64(ran))
		if ran < len(seqW) {
			earlyCtr.Inc()
		}
		for k := 0; k < n; k++ {
			fi := u.Lo + k
			if over[k] {
				demoted[fi] = true
				continue
			}
			if det[k] < 0 {
				continue
			}
			res.DetectedAt[fi] = det[k]
			if rec.Enabled() {
				f := faults[fi]
				ev := journal.Detect(journal.NewFaultKey(int(f.Signal), int(f.Gate), f.Pin, uint8(f.Stuck)), det[k])
				ev.Worker = int32(worker)
				rec.Emit(ev)
			}
		}
	}
	var err error
	if col.Enabled() {
		err = par.DoPoolCtx(ctx, workers, len(units), "faultsim.delta", col, body)
	} else {
		err = par.DoCtx(ctx, workers, len(units), body)
	}

	swept := make([]int, 0, len(faults)/8)
	for fi, d := range demoted {
		if d {
			swept = append(swept, fi)
		}
	}
	if col.Enabled() {
		col.Counter("faultsim.hybrid.cone_faults").Add(int64(len(faults) - len(swept)))
		col.Counter("faultsim.hybrid.swept_faults").Add(int64(len(swept)))
		small := 0
		for i := range faults {
			if s := cones.Size(sim.ConeRoot(faults[i].Inject())); s >= 0 && s <= thr {
				small++
			}
		}
		col.Counter("faultsim.hybrid.static_small").Add(int64(small))
	}
	if err != nil {
		// Cancelled mid-fast-path: unclaimed units never set demotion
		// flags, so their faults simply stay undetected, matching the
		// partial-result contract.
		return err
	}
	return runSweep(ctx, engine.Compiled, seqW, faults, swept, opts, res, col, arts)
}

// noteDetections records the first-detection cycle for every fault whose
// lane bit is set in newly (fidx maps batch slots to absolute fault
// indices), mirroring each into the flight recorder (rec nil when no
// journal is attached — the common case costs one nil test per
// newly-detected fault).
func noteDetections(res *Result, rec *journal.Recorder, faults []fault.Fault, worker int, fidx []int, newly uint64, cyc int) uint64 {
	if newly == 0 {
		return 0
	}
	for k, fi := range fidx {
		if newly&(uint64(1)<<uint(k+1)) != 0 {
			res.DetectedAt[fi] = cyc
			if rec.Enabled() {
				f := faults[fi]
				ev := journal.Detect(journal.NewFaultKey(int(f.Signal), int(f.Gate), f.Pin, uint8(f.Stuck)), cyc)
				ev.Worker = int32(worker)
				rec.Emit(ev)
			}
		}
	}
	return newly
}

// RunSerial is the reference implementation: one scalar simulation per
// fault. It must agree with Run; the parallel/serial equivalence is a
// property test and an ablation benchmark.
func RunSerial(c *netlist.Circuit, seq Sequence, faults []fault.Fault, opts Options) *Result {
	res := &Result{DetectedAt: make([]int, len(faults))}
	good := goodTrace(c, seq, opts)
	for fi, f := range faults {
		res.DetectedAt[fi] = -1
		inj := f.Inject()
		s := sim.NewSeq(c)
		if opts.InitState != nil {
			s.SetState(opts.InitState)
		}
		var po []logic.V
	cycles:
		for cyc, pi := range seq {
			po = s.Cycle(pi, &inj, po)
			for o, v := range po {
				g := good[cyc][o]
				if g.Known() && v.Known() && g != v {
					res.DetectedAt[fi] = cyc
					break cycles
				}
			}
		}
	}
	return res
}

func goodTrace(c *netlist.Circuit, seq Sequence, opts Options) [][]logic.V {
	s := sim.NewSeq(c)
	if opts.InitState != nil {
		s.SetState(opts.InitState)
	}
	out := make([][]logic.V, len(seq))
	for cyc, pi := range seq {
		po := s.Cycle(pi, nil, nil)
		out[cyc] = append([]logic.V(nil), po...)
	}
	return out
}
