// Package faultsim runs fault simulation of test sequences: a serial
// reference simulator and a 63-fault parallel machine simulator built on
// the packed evaluator. Detection means a primary output carries a
// definite value in the fault-free machine and the opposite definite
// value in the faulty machine at the same cycle; an X never detects.
//
// Combinational fault simulation falls out as the special case of a
// circuit with no flip-flops and one-cycle sequences.
package faultsim

import (
	"context"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// Sequence is a test sequence: one primary-input assignment per cycle,
// each with one value per circuit input (in c.Inputs order).
type Sequence [][]logic.V

// Options configures a fault-simulation run.
type Options struct {
	// InitState is the initial flip-flop state (per c.FFs entry). Nil
	// means all-X (power-on).
	InitState []logic.V
	// StopWhenAllDetected ends each batch early once every fault in it
	// has been detected.
	StopWhenAllDetected bool
	// Workers is the number of goroutines sharding the fault axis
	// (each owns a private packed simulator and processes whole
	// 63-fault batches). 0 selects runtime.GOMAXPROCS; 1 forces the
	// serial path. Results are identical at any width.
	Workers int
	// MapEval selects the map-based reference evaluator instead of the
	// compiled one (ablation; slower).
	//
	// Deprecated: set Eval to engine.Packed instead. MapEval is kept as
	// a synonym and only consulted while Eval is engine.Auto.
	MapEval bool
	// Eval selects the simulation backend. engine.Auto (the zero value)
	// picks per run: the compiled evaluator normally, the event-driven
	// scalar path for near-empty batches on large circuits.
	Eval engine.Backend
	// Cache supplies the shared circuit-artifact cache the compiled
	// program is drawn from. Nil selects engine.Default().
	Cache *engine.Cache
	// Obs, when non-nil, receives run metrics: faultsim.* counters
	// (runs by evaluator kind, batches, executed cycles, detections,
	// early exits) and per-worker utilization under the "faultsim"
	// pool. A nil collector costs one pointer test per batch.
	Obs *obs.Collector
}

// backend resolves the configured evaluator backend for circuit c given
// the run shape, honouring the deprecated MapEval switch.
func (o Options) backend(c *netlist.Circuit, lanes, cycles int) engine.Backend {
	b := o.Eval
	if b == engine.Auto && o.MapEval {
		b = engine.Packed
	}
	return b.ResolveSeq(c, engine.Hint{Lanes: lanes, Cycles: cycles})
}

// Result reports, for each fault (by index into the input fault slice),
// the first cycle at which it was detected, or -1.
type Result struct {
	DetectedAt []int
}

// NumDetected counts the detected faults.
func (r *Result) NumDetected() int {
	n := 0
	for _, d := range r.DetectedAt {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Undetected returns the indices of undetected faults.
func (r *Result) Undetected() []int {
	u := make([]int, 0, len(r.DetectedAt)-r.NumDetected())
	for i, d := range r.DetectedAt {
		if d < 0 {
			u = append(u, i)
		}
	}
	return u
}

// Profile returns the cumulative number of detected faults after each
// cycle boundary in bounds (ascending cycle counts), the Figure-5 curve.
func (r *Result) Profile(bounds []int) []int {
	out := make([]int, len(bounds))
	for i, b := range bounds {
		n := 0
		for _, d := range r.DetectedAt {
			if d >= 0 && d < b {
				n++
			}
		}
		out[i] = n
	}
	return out
}

// Run simulates seq against every fault using the packed simulator, 63
// faulty machines at a time with the fault-free machine in lane 0.
// Batches are sharded across opts.Workers goroutines; each worker owns
// a private simulator and writes detections only into its batch's slice
// range, so the result is identical at any worker count.
func Run(c *netlist.Circuit, seq Sequence, faults []fault.Fault, opts Options) *Result {
	res, _ := RunCtx(nil, c, seq, faults, opts)
	return res
}

// RunCtx is Run with cooperative cancellation: workers stop claiming
// fault batches once ctx is cancelled (an in-flight batch finishes — at
// most one sequence application per worker runs after the cancel), all
// workers are joined, and the context error is returned alongside the
// partial result. Detections recorded before the cancel are valid; the
// remaining faults simply stay undetected in the result. A nil context
// behaves like context.Background.
func RunCtx(ctx context.Context, c *netlist.Circuit, seq Sequence, faults []fault.Fault, opts Options) (*Result, error) {
	res := &Result{DetectedAt: make([]int, len(faults))}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}
	if len(seq) == 0 || len(faults) == 0 {
		if ctx != nil {
			return res, ctx.Err()
		}
		return res, nil
	}

	// Broadcast the stimulus to packed words once; every worker reads it.
	seqW := make([][]logic.Word, len(seq))
	for cyc, pi := range seq {
		w := make([]logic.Word, len(pi))
		for i, v := range pi {
			w[i] = logic.WordAll(v)
		}
		seqW[cyc] = w
	}

	batches := par.Chunks(len(faults), 63)
	workers := par.Workers(opts.Workers)
	if workers > len(batches) {
		workers = len(batches)
	}
	col := opts.Obs
	lanes := len(faults)
	if lanes > 63 {
		lanes = 63
	}
	backend := opts.backend(c, lanes, len(seq))
	if col.Enabled() {
		col.Counter("faultsim.runs").Inc()
		name := backend.String()
		if backend == engine.Packed {
			name = "map" // historical counter name for the map-based evaluator
		}
		col.Counter("faultsim.eval." + name).Inc()
		col.Counter("faultsim.faults").Add(int64(len(faults)))
		col.Counter("faultsim.batches").Add(int64(len(batches)))
	}
	cycleCtr := col.Counter("faultsim.cycles")
	earlyCtr := col.Counter("faultsim.early_exits")
	rec := col.Journal()
	arts := engine.Resolve(opts.Cache).ForObs(c, col)
	if backend == engine.Compiled {
		arts.Program(col) // materialize (and account) the shared program up front
	}

	type wstate struct {
		ps   engine.Evaluator
		poW  []logic.Word
		injs []sim.LaneInject
	}
	states := make([]*wstate, workers)
	body := func(worker, bi int) {
		st := states[worker]
		if st == nil {
			st = &wstate{injs: make([]sim.LaneInject, 0, 63)}
			st.ps = engine.NewSeqEvaluator(backend, arts, col)
			states[worker] = st
		}
		base, n := batches[bi].Lo, batches[bi].Len()
		st.injs = st.injs[:0]
		for k := 0; k < n; k++ {
			st.injs = append(st.injs, sim.LaneInject{Inject: faults[base+k].Inject(), Lane: uint(k + 1)})
		}
		ps := st.ps
		ps.SetInjections(st.injs)
		ps.ResetX()
		if opts.InitState != nil {
			for i, v := range opts.InitState {
				ps.SetStateWord(i, logic.WordAll(v))
			}
		}

		allMask := (uint64(1)<<uint(n+1) - 1) &^ 1 // lanes 1..n
		detected := uint64(0)
		ran := 0
		for cyc, piW := range seqW {
			st.poW = ps.Cycle(piW, st.poW)
			ran++
			for _, w := range st.poW {
				switch w.Get(0) {
				case logic.One:
					detected |= noteDetections(res, rec, faults, worker, base, n, w.Zeros&allMask&^detected, cyc)
				case logic.Zero:
					detected |= noteDetections(res, rec, faults, worker, base, n, w.Ones&allMask&^detected, cyc)
				}
			}
			if opts.StopWhenAllDetected && detected == allMask {
				earlyCtr.Inc()
				break
			}
		}
		cycleCtr.Add(int64(ran))
	}
	var err error
	if col.Enabled() {
		err = par.DoPoolCtx(ctx, workers, len(batches), "faultsim", col, body)
		col.Counter("faultsim.detected").Add(int64(res.NumDetected()))
	} else {
		err = par.DoCtx(ctx, workers, len(batches), body)
	}
	return res, err
}

// noteDetections records the first-detection cycle for every fault whose
// lane bit is set in newly, mirroring each into the flight recorder (rec
// nil when no journal is attached — the common case costs one nil test
// per newly-detected fault).
func noteDetections(res *Result, rec *journal.Recorder, faults []fault.Fault, worker, base, n int, newly uint64, cyc int) uint64 {
	if newly == 0 {
		return 0
	}
	for k := 0; k < n; k++ {
		if newly&(uint64(1)<<uint(k+1)) != 0 {
			res.DetectedAt[base+k] = cyc
			if rec.Enabled() {
				f := faults[base+k]
				ev := journal.Detect(journal.NewFaultKey(int(f.Signal), int(f.Gate), f.Pin, uint8(f.Stuck)), cyc)
				ev.Worker = int32(worker)
				rec.Emit(ev)
			}
		}
	}
	return newly
}

// RunSerial is the reference implementation: one scalar simulation per
// fault. It must agree with Run; the parallel/serial equivalence is a
// property test and an ablation benchmark.
func RunSerial(c *netlist.Circuit, seq Sequence, faults []fault.Fault, opts Options) *Result {
	res := &Result{DetectedAt: make([]int, len(faults))}
	good := goodTrace(c, seq, opts)
	for fi, f := range faults {
		res.DetectedAt[fi] = -1
		inj := f.Inject()
		s := sim.NewSeq(c)
		if opts.InitState != nil {
			s.SetState(opts.InitState)
		}
		var po []logic.V
	cycles:
		for cyc, pi := range seq {
			po = s.Cycle(pi, &inj, po)
			for o, v := range po {
				g := good[cyc][o]
				if g.Known() && v.Known() && g != v {
					res.DetectedAt[fi] = cyc
					break cycles
				}
			}
		}
	}
	return res
}

func goodTrace(c *netlist.Circuit, seq Sequence, opts Options) [][]logic.V {
	s := sim.NewSeq(c)
	if opts.InitState != nil {
		s.SetState(opts.InitState)
	}
	out := make([][]logic.V, len(seq))
	for cyc, pi := range seq {
		po := s.Cycle(pi, nil, nil)
		out[cyc] = append([]logic.V(nil), po...)
	}
	return out
}
