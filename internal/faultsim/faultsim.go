// Package faultsim runs fault simulation of test sequences: a serial
// reference simulator and a 63-fault parallel machine simulator built on
// the packed evaluator. Detection means a primary output carries a
// definite value in the fault-free machine and the opposite definite
// value in the faulty machine at the same cycle; an X never detects.
//
// Combinational fault simulation falls out as the special case of a
// circuit with no flip-flops and one-cycle sequences.
package faultsim

import (
	"time"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/sim"
)

// Sequence is a test sequence: one primary-input assignment per cycle,
// each with one value per circuit input (in c.Inputs order).
type Sequence [][]logic.V

// Options configures a fault-simulation run.
type Options struct {
	// InitState is the initial flip-flop state (per c.FFs entry). Nil
	// means all-X (power-on).
	InitState []logic.V
	// StopWhenAllDetected ends each batch early once every fault in it
	// has been detected.
	StopWhenAllDetected bool
	// Workers is the number of goroutines sharding the fault axis
	// (each owns a private packed simulator and processes whole
	// 63-fault batches). 0 selects runtime.GOMAXPROCS; 1 forces the
	// serial path. Results are identical at any width.
	Workers int
	// MapEval selects the map-based reference evaluator instead of the
	// compiled one (ablation; slower).
	MapEval bool
	// Obs, when non-nil, receives run metrics: faultsim.* counters
	// (runs by evaluator kind, batches, executed cycles, detections,
	// early exits) and per-worker utilization under the "faultsim"
	// pool. A nil collector costs one pointer test per batch.
	Obs *obs.Collector
}

// Result reports, for each fault (by index into the input fault slice),
// the first cycle at which it was detected, or -1.
type Result struct {
	DetectedAt []int
}

// NumDetected counts the detected faults.
func (r *Result) NumDetected() int {
	n := 0
	for _, d := range r.DetectedAt {
		if d >= 0 {
			n++
		}
	}
	return n
}

// Undetected returns the indices of undetected faults.
func (r *Result) Undetected() []int {
	u := make([]int, 0, len(r.DetectedAt)-r.NumDetected())
	for i, d := range r.DetectedAt {
		if d < 0 {
			u = append(u, i)
		}
	}
	return u
}

// Profile returns the cumulative number of detected faults after each
// cycle boundary in bounds (ascending cycle counts), the Figure-5 curve.
func (r *Result) Profile(bounds []int) []int {
	out := make([]int, len(bounds))
	for i, b := range bounds {
		n := 0
		for _, d := range r.DetectedAt {
			if d >= 0 && d < b {
				n++
			}
		}
		out[i] = n
	}
	return out
}

// packedSeq is the lane-parallel sequential simulator contract both the
// map-based reference (sim.PackedSeq) and the compiled backend
// (sim.CompiledSeq) satisfy.
type packedSeq interface {
	SetInjections([]sim.LaneInject)
	ResetX()
	SetStateWord(int, logic.Word)
	Cycle([]logic.Word, []logic.Word) []logic.Word
}

// Run simulates seq against every fault using the packed simulator, 63
// faulty machines at a time with the fault-free machine in lane 0.
// Batches are sharded across opts.Workers goroutines; each worker owns
// a private simulator and writes detections only into its batch's slice
// range, so the result is identical at any worker count.
func Run(c *netlist.Circuit, seq Sequence, faults []fault.Fault, opts Options) *Result {
	res := &Result{DetectedAt: make([]int, len(faults))}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}
	if len(seq) == 0 || len(faults) == 0 {
		return res
	}

	// Broadcast the stimulus to packed words once; every worker reads it.
	seqW := make([][]logic.Word, len(seq))
	for cyc, pi := range seq {
		w := make([]logic.Word, len(pi))
		for i, v := range pi {
			w[i] = logic.WordAll(v)
		}
		seqW[cyc] = w
	}

	batches := par.Chunks(len(faults), 63)
	workers := par.Workers(opts.Workers)
	if workers > len(batches) {
		workers = len(batches)
	}
	col := opts.Obs
	if col.Enabled() {
		col.Counter("faultsim.runs").Inc()
		if opts.MapEval {
			col.Counter("faultsim.eval.map").Inc()
		} else {
			col.Counter("faultsim.eval.compiled").Inc()
		}
		col.Counter("faultsim.faults").Add(int64(len(faults)))
		col.Counter("faultsim.batches").Add(int64(len(batches)))
	}
	cycleCtr := col.Counter("faultsim.cycles")
	earlyCtr := col.Counter("faultsim.early_exits")
	var prog *sim.Program
	if !opts.MapEval {
		prog = sim.CompileObs(c, col) // shared, immutable
	}

	type wstate struct {
		ps   packedSeq
		poW  []logic.Word
		injs []sim.LaneInject
	}
	states := make([]*wstate, workers)
	body := func(worker, bi int) {
		st := states[worker]
		if st == nil {
			st = &wstate{injs: make([]sim.LaneInject, 0, 63)}
			if opts.MapEval {
				st.ps = sim.NewPackedSeq(c)
			} else {
				st.ps = sim.NewCompiledSeqFrom(prog)
			}
			states[worker] = st
		}
		base, n := batches[bi].Lo, batches[bi].Len()
		st.injs = st.injs[:0]
		for k := 0; k < n; k++ {
			st.injs = append(st.injs, sim.LaneInject{Inject: faults[base+k].Inject(), Lane: uint(k + 1)})
		}
		ps := st.ps
		ps.SetInjections(st.injs)
		ps.ResetX()
		if opts.InitState != nil {
			for i, v := range opts.InitState {
				ps.SetStateWord(i, logic.WordAll(v))
			}
		}

		allMask := (uint64(1)<<uint(n+1) - 1) &^ 1 // lanes 1..n
		detected := uint64(0)
		ran := 0
		for cyc, piW := range seqW {
			st.poW = ps.Cycle(piW, st.poW)
			ran++
			for _, w := range st.poW {
				switch w.Get(0) {
				case logic.One:
					detected |= noteDetections(res, base, n, w.Zeros&allMask&^detected, cyc)
				case logic.Zero:
					detected |= noteDetections(res, base, n, w.Ones&allMask&^detected, cyc)
				}
			}
			if opts.StopWhenAllDetected && detected == allMask {
				earlyCtr.Inc()
				break
			}
		}
		cycleCtr.Add(int64(ran))
	}
	if col.Enabled() {
		t0 := time.Now()
		stats := par.DoTimed(workers, len(batches), body)
		col.RecordPool("faultsim", time.Since(t0), stats)
		col.Counter("faultsim.detected").Add(int64(res.NumDetected()))
	} else {
		par.Do(workers, len(batches), body)
	}
	return res
}

func noteDetections(res *Result, base, n int, newly uint64, cyc int) uint64 {
	if newly == 0 {
		return 0
	}
	for k := 0; k < n; k++ {
		if newly&(uint64(1)<<uint(k+1)) != 0 {
			res.DetectedAt[base+k] = cyc
		}
	}
	return newly
}

// RunSerial is the reference implementation: one scalar simulation per
// fault. It must agree with Run; the parallel/serial equivalence is a
// property test and an ablation benchmark.
func RunSerial(c *netlist.Circuit, seq Sequence, faults []fault.Fault, opts Options) *Result {
	res := &Result{DetectedAt: make([]int, len(faults))}
	good := goodTrace(c, seq, opts)
	for fi, f := range faults {
		res.DetectedAt[fi] = -1
		inj := f.Inject()
		s := sim.NewSeq(c)
		if opts.InitState != nil {
			s.SetState(opts.InitState)
		}
		var po []logic.V
	cycles:
		for cyc, pi := range seq {
			po = s.Cycle(pi, &inj, po)
			for o, v := range po {
				g := good[cyc][o]
				if g.Known() && v.Known() && g != v {
					res.DetectedAt[fi] = cyc
					break cycles
				}
			}
		}
	}
	return res
}

func goodTrace(c *netlist.Circuit, seq Sequence, opts Options) [][]logic.V {
	s := sim.NewSeq(c)
	if opts.InitState != nil {
		s.SetState(opts.InitState)
	}
	out := make([][]logic.V, len(seq))
	for cyc, pi := range seq {
		po := s.Cycle(pi, nil, nil)
		out[cyc] = append([]logic.V(nil), po...)
	}
	return out
}
