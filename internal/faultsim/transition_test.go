package faultsim

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// wire builds in -> DFF -> out so the chain behaviour of a single net
// is fully predictable.
func wire(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(`
INPUT(a)
OUTPUT(y)
ff = DFF(b)
b = BUFF(a)
y = BUFF(ff)
`, "wire")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func seqOf(bits string) Sequence {
	seq := make(Sequence, len(bits))
	for i, ch := range bits {
		v := logic.Zero
		if ch == '1' {
			v = logic.One
		}
		seq[i] = []logic.V{v}
	}
	return seq
}

func TestTransitionSlowToRiseDetected(t *testing.T) {
	c := wire(t)
	b, _ := c.Lookup("b")
	f := TransitionFault{Signal: b, Gate: netlist.None, Pin: -1, SlowRise: true}
	// 0,0,1,1: the 0->1 edge at cycle 2 arrives a cycle late in the
	// faulty machine; y shows the difference at cycle 3.
	res := RunTransition(c, seqOf("0011"), []TransitionFault{f}, Options{
		InitState: []logic.V{logic.Zero},
	})
	if res.DetectedAt[0] != 3 {
		t.Errorf("slow-to-rise detected at %d, want 3", res.DetectedAt[0])
	}
	// A constant-0 stream never exercises the rising edge: undetected.
	res = RunTransition(c, seqOf("000000"), []TransitionFault{f}, Options{
		InitState: []logic.V{logic.Zero},
	})
	if res.DetectedAt[0] != -1 {
		t.Errorf("slow-to-rise detected without a rising edge (cycle %d)", res.DetectedAt[0])
	}
}

func TestTransitionSlowToFall(t *testing.T) {
	c := wire(t)
	b, _ := c.Lookup("b")
	f := TransitionFault{Signal: b, Gate: netlist.None, Pin: -1, SlowRise: false}
	res := RunTransition(c, seqOf("1100"), []TransitionFault{f}, Options{
		InitState: []logic.V{logic.One},
	})
	if res.DetectedAt[0] < 0 {
		t.Error("slow-to-fall escaped a falling edge")
	}
	// Rising edges do not trigger a slow-to-fall fault.
	res = RunTransition(c, seqOf("0011"), []TransitionFault{f}, Options{
		InitState: []logic.V{logic.Zero},
	})
	if res.DetectedAt[0] >= 0 {
		t.Error("slow-to-fall detected by a rising-only stream")
	}
}

// TestAlternatingCoversChainTransitions: the period-4 alternating
// sequence launches both edges through every chain net, so (on the
// fault-free-elsewhere chain) it detects every transition fault on the
// chain path. This is the delay-test analogue of the paper's category-1
// argument.
func TestAlternatingCoversChainTransitions(t *testing.T) {
	// Built via the real TPI on s27 in the integration test below; here
	// use the plain wire chain with the canonical pattern.
	c := wire(t)
	b, _ := c.Lookup("b")
	faults := ChainTransitionFaults([]netlist.SignalID{b})
	if len(faults) != 2 {
		t.Fatalf("ChainTransitionFaults produced %d", len(faults))
	}
	res := RunTransition(c, seqOf("00110011"), faults, Options{
		InitState: []logic.V{logic.Zero},
	})
	for i, at := range res.DetectedAt {
		if at < 0 {
			t.Errorf("chain transition fault %d escaped the alternating pattern", i)
		}
	}
}

func TestTransitionBranchFault(t *testing.T) {
	// Fanout a -> (g1, g2); delay only the g1 branch.
	c, err := bench.ParseString(`
INPUT(a)
OUTPUT(y)
OUTPUT(z)
y = BUFF(a)
z = BUFF(a)
`, "br")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := c.Lookup("a")
	y, _ := c.Lookup("y")
	f := TransitionFault{Signal: a, Gate: y, Pin: 0, SlowRise: true}
	seq := seqOf("0011")
	res := RunTransition(c, seq, []TransitionFault{f}, Options{})
	if res.DetectedAt[0] != 2 {
		t.Errorf("branch transition detected at %d, want 2", res.DetectedAt[0])
	}
}
