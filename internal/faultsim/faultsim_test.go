package faultsim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func randSeq(r *rand.Rand, nPI, cycles int, withX bool) Sequence {
	seq := make(Sequence, cycles)
	for c := range seq {
		v := make([]logic.V, nPI)
		for i := range v {
			if withX && r.Intn(8) == 0 {
				v[i] = logic.X
			} else {
				v[i] = logic.V(r.Intn(2))
			}
		}
		seq[c] = v
	}
	return seq
}

// TestParallelMatchesSerial cross-checks the packed 63-lane simulator
// against the scalar reference over the full collapsed fault list of
// s27 and of a generated circuit.
func TestParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, tc := range []struct {
		name string
	}{{"s27"}, {"gen"}} {
		c := bench.MustS27()
		if tc.name == "gen" {
			c = gen.Generate(gen.Profile{Name: "fsim", PIs: 6, POs: 5, FFs: 10, Gates: 120}, 5)
		}
		faults := fault.Collapsed(c)
		seq := randSeq(r, len(c.Inputs), 50, true)
		opts := Options{}
		par := Run(c, seq, faults, opts)
		ser := RunSerial(c, seq, faults, opts)
		if len(par.DetectedAt) != len(ser.DetectedAt) {
			t.Fatalf("%s: result sizes differ", tc.name)
		}
		for i := range par.DetectedAt {
			if par.DetectedAt[i] != ser.DetectedAt[i] {
				t.Errorf("%s: fault %d (%s): parallel %d, serial %d",
					tc.name, i, faults[i].Describe(c), par.DetectedAt[i], ser.DetectedAt[i])
			}
		}
	}
}

// TestCompiledMatchesMapEvaluator cross-checks the compiled evaluator
// backend against the map-based reference over whole fault-simulation
// runs on randomized circuits and sequences (the faultsim-level
// counterpart of the sim-package evaluator cross-check).
func TestCompiledMatchesMapEvaluator(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 6; trial++ {
		c := gen.Generate(gen.Profile{
			Name: "xev", PIs: 4 + r.Intn(6), POs: 4 + r.Intn(4),
			FFs: 6 + r.Intn(12), Gates: 80 + r.Intn(160),
		}, int64(40+trial))
		faults := fault.Collapsed(c)
		seq := randSeq(r, len(c.Inputs), 40, true)
		mapRes := Run(c, seq, faults, Options{Workers: 1, MapEval: true})
		compRes := Run(c, seq, faults, Options{Workers: 1})
		for i := range mapRes.DetectedAt {
			if mapRes.DetectedAt[i] != compRes.DetectedAt[i] {
				t.Errorf("trial %d fault %d (%s): map %d, compiled %d",
					trial, i, faults[i].Describe(c), mapRes.DetectedAt[i], compRes.DetectedAt[i])
			}
		}
	}
}

// TestRunDeterministicAcrossWorkers pins the sharding determinism
// contract: identical Result for workers = 1, 4 and GOMAXPROCS, with
// either evaluator backend, with and without early stop.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	c := gen.Generate(gen.Profile{Name: "det", PIs: 8, POs: 6, FFs: 20, Gates: 400}, 77)
	faults := fault.Collapsed(c)
	seq := randSeq(r, len(c.Inputs), 60, true)
	for _, mapEval := range []bool{false, true} {
		for _, stop := range []bool{false, true} {
			ref := Run(c, seq, faults, Options{Workers: 1, MapEval: mapEval, StopWhenAllDetected: stop})
			for _, workers := range []int{4, runtime.GOMAXPROCS(0), 0} {
				got := Run(c, seq, faults, Options{Workers: workers, MapEval: mapEval, StopWhenAllDetected: stop})
				if !reflect.DeepEqual(ref.DetectedAt, got.DetectedAt) {
					t.Fatalf("mapEval=%v stop=%v: workers=%d result differs from serial",
						mapEval, stop, workers)
				}
			}
		}
	}
}

func TestParallelMatchesSerialWithInitState(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	c := bench.MustS27()
	faults := fault.Collapsed(c)
	seq := randSeq(r, len(c.Inputs), 30, false)
	opts := Options{InitState: []logic.V{logic.Zero, logic.One, logic.Zero}}
	par := Run(c, seq, faults, opts)
	ser := RunSerial(c, seq, faults, opts)
	for i := range par.DetectedAt {
		if par.DetectedAt[i] != ser.DetectedAt[i] {
			t.Errorf("fault %d: parallel %d serial %d", i, par.DetectedAt[i], ser.DetectedAt[i])
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	c := bench.MustS27()
	res := Run(c, nil, fault.Collapsed(c), Options{})
	if res.NumDetected() != 0 {
		t.Error("detected faults with empty sequence")
	}
	res = Run(c, randSeq(rand.New(rand.NewSource(1)), len(c.Inputs), 5, false), nil, Options{})
	if len(res.DetectedAt) != 0 {
		t.Error("non-empty result for empty fault list")
	}
}

func TestCoverageReasonable(t *testing.T) {
	// Long random sequences should detect a solid majority of s27
	// faults (classic result: random patterns reach high coverage on
	// small circuits).
	r := rand.New(rand.NewSource(3))
	c := bench.MustS27()
	faults := fault.Collapsed(c)
	seq := randSeq(r, len(c.Inputs), 400, false)
	res := Run(c, seq, faults, Options{})
	cov := float64(res.NumDetected()) / float64(len(faults))
	if cov < 0.80 {
		t.Errorf("random coverage only %.2f", cov)
	}
	if len(res.Undetected())+res.NumDetected() != len(faults) {
		t.Error("undetected+detected != total")
	}
}

func TestDetectionCycleIsFirst(t *testing.T) {
	// Serial reference: detection cycle reported must be the first cycle
	// with a definite mismatch; verify monotonicity of Profile.
	r := rand.New(rand.NewSource(17))
	c := bench.MustS27()
	faults := fault.Collapsed(c)
	seq := randSeq(r, len(c.Inputs), 60, false)
	res := Run(c, seq, faults, Options{})
	bounds := []int{0, 10, 20, 40, 60}
	prof := res.Profile(bounds)
	for i := 1; i < len(prof); i++ {
		if prof[i] < prof[i-1] {
			t.Errorf("profile not monotone: %v", prof)
		}
	}
	if prof[0] != 0 {
		t.Errorf("profile at bound 0 = %d", prof[0])
	}
	if prof[len(prof)-1] != res.NumDetected() {
		t.Errorf("profile end %d != detected %d", prof[len(prof)-1], res.NumDetected())
	}
}

func TestStopWhenAllDetected(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	c := bench.MustS27()
	faults := fault.Collapsed(c)[:10]
	seq := randSeq(r, len(c.Inputs), 300, false)
	a := Run(c, seq, faults, Options{})
	b := Run(c, seq, faults, Options{StopWhenAllDetected: true})
	for i := range a.DetectedAt {
		if a.DetectedAt[i] != b.DetectedAt[i] {
			t.Errorf("early stop changed detection of fault %d", i)
		}
	}
}

func TestCombinationalAsZeroFFCircuit(t *testing.T) {
	// A circuit without flip-flops: every "cycle" is an independent
	// vector; check a stuck PI fault is caught by the right vector.
	c := genComb(t)
	faults := fault.Collapsed(c)
	seq := Sequence{
		{logic.Zero, logic.Zero},
		{logic.One, logic.One},
	}
	res := Run(c, seq, faults, Options{})
	if res.NumDetected() == 0 {
		t.Error("no combinational faults detected")
	}
}

func genComb(t *testing.T) *netlist.Circuit {
	t.Helper()
	c, err := bench.ParseString(`
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`, "comb")
	if err != nil {
		t.Fatal(err)
	}
	return c
}
