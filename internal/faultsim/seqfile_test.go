package faultsim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
)

func TestSequenceRoundTrip(t *testing.T) {
	c := bench.MustS27()
	r := rand.New(rand.NewSource(5))
	seq := randSeq(r, len(c.Inputs), 20, true)
	var buf bytes.Buffer
	if err := WriteSequence(&buf, c, seq); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSequence(&buf, c)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if len(back) != len(seq) {
		t.Fatalf("length %d vs %d", len(back), len(seq))
	}
	for cyc := range seq {
		for i := range seq[cyc] {
			if back[cyc][i] != seq[cyc][i] {
				t.Fatalf("cycle %d input %d: %v vs %v", cyc, i, back[cyc][i], seq[cyc][i])
			}
		}
	}
}

func TestReadSequencePermutesColumns(t *testing.T) {
	c := bench.MustS27() // inputs G0 G1 G2 G3
	src := "inputs G3 G2 G1 G0\n1000\n"
	seq, err := ReadSequence(strings.NewReader(src), c)
	if err != nil {
		t.Fatal(err)
	}
	// Column 0 is G3=1; circuit order is G0..G3.
	want := []logic.V{logic.Zero, logic.Zero, logic.Zero, logic.One}
	for i, v := range want {
		if seq[0][i] != v {
			t.Errorf("input %d = %v, want %v", i, seq[0][i], v)
		}
	}
}

func TestReadSequenceErrors(t *testing.T) {
	c := bench.MustS27()
	bad := []string{
		"0101\n",                     // vector before header
		"inputs G0 G1\n01\n",         // too few inputs
		"inputs G0 G1 G2 Gz\n0000\n", // unknown input
		"inputs G0 G1 G2 G3\n01\n",   // short vector
		"inputs G0 G1 G2 G3\n01i0\n", // bad char
	}
	for _, src := range bad {
		if _, err := ReadSequence(strings.NewReader(src), c); err == nil {
			t.Errorf("accepted invalid sequence %q", src)
		}
	}
}

func TestWriteSequenceRejectsBadWidth(t *testing.T) {
	c := bench.MustS27()
	var buf bytes.Buffer
	if err := WriteSequence(&buf, c, Sequence{{logic.Zero}}); err == nil {
		t.Error("accepted wrong-width vector")
	}
}
