package faultsim

import (
	"context"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/par"
)

// TransitionFault is a gross-delay fault: when the site's value makes a
// transition in the slow direction, the new value arrives one clock
// late (the classic slow-to-rise / slow-to-fall model). The paper's
// motivation for functional scan includes the chain's timing (it can
// remove the scan mux from critical paths), and shift testing creates
// launch/capture pairs on every chain net for free — this model makes
// that testable.
type TransitionFault struct {
	Signal   netlist.SignalID // faulty net (stem) or branch source
	Gate     netlist.SignalID // consumer for branch faults; netlist.None for stem
	Pin      int              // -1 for stem
	SlowRise bool             // true: 0->1 late; false: 1->0 late
}

// IsStem reports whether the fault sits on the whole net.
func (f TransitionFault) IsStem() bool { return f.Gate == netlist.None }

// slowDirectionDelayed returns the externally visible value given the
// previous and currently computed site values.
func (f TransitionFault) delayed(prev, now logic.V) logic.V {
	if !prev.Known() || !now.Known() || prev == now {
		return now
	}
	if f.SlowRise && now == logic.One {
		return prev // rising edge arrives late
	}
	if !f.SlowRise && now == logic.Zero {
		return prev // falling edge arrives late
	}
	return now
}

// transitionMachine simulates one faulty machine with the delay model:
// a plain levelized evaluation whose site output is the delayed view of
// the underlying value.
type transitionMachine struct {
	c     *netlist.Circuit
	f     TransitionFault
	vals  []logic.V
	state []logic.V
	prev  logic.V // underlying site value at the previous cycle
}

func newTransitionMachine(c *netlist.Circuit, f TransitionFault) *transitionMachine {
	m := &transitionMachine{
		c:     c,
		f:     f,
		vals:  make([]logic.V, len(c.Signals)),
		state: make([]logic.V, len(c.FFs)),
		prev:  logic.X,
	}
	for i := range m.state {
		m.state[i] = logic.X
	}
	return m
}

func (m *transitionMachine) cycle(pi []logic.V, po []logic.V) []logic.V {
	c := m.c
	for i := range m.vals {
		m.vals[i] = logic.X
	}
	for i, in := range c.Inputs {
		m.vals[in] = pi[i]
	}
	for i, ff := range c.FFs {
		m.vals[ff] = m.state[i]
	}
	// underlying is the site's true (undelayed) value this cycle; prev
	// is last cycle's. The delayed view replaces the site value at its
	// point of consumption.
	underlying := logic.X
	prev := m.prev
	siteIsGate := m.f.IsStem() && c.IsGate(m.f.Signal)
	if m.f.IsStem() && !siteIsGate {
		underlying = m.vals[m.f.Signal]
		m.vals[m.f.Signal] = m.f.delayed(prev, underlying)
	}
	var buf [12]logic.V
	for _, g := range c.Order {
		s := &c.Signals[g]
		in := buf[:0]
		for pin, fi := range s.Fanin {
			v := m.vals[fi]
			if !m.f.IsStem() && m.f.Gate == g && m.f.Pin == pin {
				// Branch fault: the delayed view of the source net as
				// seen by this pin only.
				underlying = v
				v = m.f.delayed(prev, underlying)
			}
			in = append(in, v)
		}
		v := s.Op.Eval(in)
		if siteIsGate && m.f.Signal == g {
			underlying = v
			v = m.f.delayed(prev, underlying)
		}
		m.vals[g] = v
	}

	if cap(po) < len(c.Outputs) {
		po = make([]logic.V, len(c.Outputs))
	}
	po = po[:len(c.Outputs)]
	for i, o := range c.Outputs {
		po[i] = m.vals[o]
	}
	for i, ff := range c.FFs {
		d := m.vals[c.Signals[ff].Fanin[0]]
		if !m.f.IsStem() && m.f.Gate == ff && m.f.Pin == 0 {
			underlying = d
			d = m.f.delayed(prev, d)
		}
		m.state[i] = d
	}
	m.prev = underlying
	return po
}

// RunTransition simulates seq against every transition fault and
// reports the first cycle with a definite primary-output mismatch
// versus the fault-free machine. Transition machines carry per-cycle
// site history, so there is no packed (63-lane) variant; instead the
// fault axis itself is sharded across opts.Workers goroutines, each
// fault owning its machine and its result slot (identical output at
// any worker count).
func RunTransition(c *netlist.Circuit, seq Sequence, faults []TransitionFault, opts Options) *Result {
	res, _ := RunTransitionCtx(nil, c, seq, faults, opts)
	return res
}

// RunTransitionCtx is RunTransition with the cancellation semantics of
// RunCtx: faults not yet simulated when ctx fires stay at -1 in the
// partial result, every worker is joined, and the context error is
// returned. Fault slots are pre-marked undetected before the workers
// start so a cancelled run never leaves zero-valued (cycle-0) entries.
func RunTransitionCtx(ctx context.Context, c *netlist.Circuit, seq Sequence, faults []TransitionFault, opts Options) (*Result, error) {
	res := &Result{DetectedAt: make([]int, len(faults))}
	for i := range res.DetectedAt {
		res.DetectedAt[i] = -1
	}
	good := goodTrace(c, seq, opts)
	err := par.DoCtx(ctx, par.Workers(opts.Workers), len(faults), func(_, fi int) {
		m := newTransitionMachine(c, faults[fi])
		if opts.InitState != nil {
			copy(m.state, opts.InitState)
		}
		var po []logic.V
	cycles:
		for cyc, pi := range seq {
			po = m.cycle(pi, po)
			for o, v := range po {
				g := good[cyc][o]
				if g.Known() && v.Known() && g != v {
					res.DetectedAt[fi] = cyc
					break cycles
				}
			}
		}
	})
	return res, err
}

// ChainTransitionFaults enumerates both transition faults on every
// signal of the given nets (typically the on-path nets of a scan
// design's chains).
func ChainTransitionFaults(nets []netlist.SignalID) []TransitionFault {
	var out []TransitionFault
	for _, n := range nets {
		out = append(out,
			TransitionFault{Signal: n, Gate: netlist.None, Pin: -1, SlowRise: true},
			TransitionFault{Signal: n, Gate: netlist.None, Pin: -1, SlowRise: false},
		)
	}
	return out
}
