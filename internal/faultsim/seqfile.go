package faultsim

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// WriteSequence emits a test sequence in a simple text format: a header
// line naming the circuit inputs in vector order, then one line of
// 0/1/X characters per cycle. Comments start with '#'.
func WriteSequence(w io.Writer, c *netlist.Circuit, seq Sequence) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# scan-mode test sequence: %d cycles, %d inputs\n", len(seq), len(c.Inputs))
	names := make([]string, len(c.Inputs))
	for i, in := range c.Inputs {
		names[i] = c.NameOf(in)
	}
	fmt.Fprintf(bw, "inputs %s\n", strings.Join(names, " "))
	line := make([]byte, len(c.Inputs))
	for _, pi := range seq {
		if len(pi) != len(c.Inputs) {
			return fmt.Errorf("faultsim: cycle has %d values, want %d", len(pi), len(c.Inputs))
		}
		for i, v := range pi {
			switch v {
			case logic.Zero:
				line[i] = '0'
			case logic.One:
				line[i] = '1'
			default:
				line[i] = 'X'
			}
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadSequence parses the WriteSequence format. The header's input
// names must match the circuit's inputs (any order); values are
// permuted into the circuit's input order.
func ReadSequence(r io.Reader, c *netlist.Circuit) (Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	var perm []int // file column -> circuit input index
	var seq Sequence
	lineNo := 0
	index := make(map[string]int, len(c.Inputs))
	for i, in := range c.Inputs {
		index[c.NameOf(in)] = i
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "inputs ") {
			names := strings.Fields(line)[1:]
			if len(names) != len(c.Inputs) {
				return nil, fmt.Errorf("faultsim: line %d: %d inputs named, circuit has %d",
					lineNo, len(names), len(c.Inputs))
			}
			perm = make([]int, len(names))
			for col, n := range names {
				idx, ok := index[n]
				if !ok {
					return nil, fmt.Errorf("faultsim: line %d: unknown input %q", lineNo, n)
				}
				perm[col] = idx
			}
			continue
		}
		if perm == nil {
			return nil, fmt.Errorf("faultsim: line %d: vector before 'inputs' header", lineNo)
		}
		if len(line) != len(perm) {
			return nil, fmt.Errorf("faultsim: line %d: %d values, want %d", lineNo, len(line), len(perm))
		}
		pi := make([]logic.V, len(c.Inputs))
		for col := range pi {
			pi[col] = logic.X
		}
		for col, ch := range []byte(line) {
			var v logic.V
			switch ch {
			case '0':
				v = logic.Zero
			case '1':
				v = logic.One
			case 'x', 'X':
				v = logic.X
			default:
				return nil, fmt.Errorf("faultsim: line %d: bad value %q", lineNo, ch)
			}
			pi[perm[col]] = v
		}
		seq = append(seq, pi)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return seq, nil
}
