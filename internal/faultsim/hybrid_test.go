package faultsim

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim"
)

// TestHybridMatchesCompiled is the core byte-identity pin: the hybrid
// strategy must produce exactly the compiled backend's DetectedAt slice
// on s27 and randomized sequential circuits, across cone thresholds
// that force everything onto the delta path (huge), everything off it
// (tiny), and the tuned default in between.
func TestHybridMatchesCompiled(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		c := bench.MustS27()
		name := "s27"
		if trial > 0 {
			c = gen.Generate(gen.Profile{
				Name: "hyb", PIs: 4 + r.Intn(6), POs: 3 + r.Intn(4),
				FFs: 5 + r.Intn(14), Gates: 80 + r.Intn(200),
			}, int64(500+trial))
			name = c.Name
		}
		faults := fault.Collapsed(c)
		seq := randSeq(r, len(c.Inputs), 30+r.Intn(40), true)
		ref := Run(c, seq, faults, Options{Eval: engine.Compiled})
		for _, thr := range []int{1, 4, engine.DefaultConeThreshold, 1 << 20} {
			got := Run(c, seq, faults, Options{Eval: engine.Hybrid, ConeThreshold: thr})
			if !reflect.DeepEqual(ref.DetectedAt, got.DetectedAt) {
				for i := range ref.DetectedAt {
					if ref.DetectedAt[i] != got.DetectedAt[i] {
						t.Errorf("%s thr=%d fault %d (%s): compiled %d, hybrid %d",
							name, thr, i, faults[i].Describe(c), ref.DetectedAt[i], got.DetectedAt[i])
					}
				}
				t.Fatalf("%s: hybrid diverged from compiled at thr=%d", name, thr)
			}
		}
	}
}

// randState returns a random definite flip-flop state vector.
func randState(r *rand.Rand, n int) []logic.V {
	st := make([]logic.V, n)
	for i := range st {
		st[i] = logic.V(r.Intn(2))
	}
	return st
}

// TestHybridMatchesCompiledWithInitState covers the preset-state path
// (scan-loaded flip-flops) through both hybrid phases.
func TestHybridMatchesCompiledWithInitState(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	c := gen.Generate(gen.Profile{Name: "hybst", PIs: 6, POs: 5, FFs: 12, Gates: 150}, 9)
	faults := fault.Collapsed(c)
	seq := randSeq(r, len(c.Inputs), 40, false)
	init := randState(r, len(c.FFs))
	ref := Run(c, seq, faults, Options{Eval: engine.Compiled, InitState: init})
	got := Run(c, seq, faults, Options{Eval: engine.Hybrid, InitState: init})
	if !reflect.DeepEqual(ref.DetectedAt, got.DetectedAt) {
		t.Fatal("hybrid with InitState diverged from compiled")
	}
}

// TestHybridDeterministicAcrossWorkers pins the sharding contract for
// the hybrid strategy: identical results at every worker count, with
// and without early stop, at demotion-heavy and demotion-free
// thresholds.
func TestHybridDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	c := gen.Generate(gen.Profile{Name: "hybdet", PIs: 8, POs: 6, FFs: 20, Gates: 400}, 78)
	faults := fault.Collapsed(c)
	seq := randSeq(r, len(c.Inputs), 60, true)
	for _, thr := range []int{2, engine.DefaultConeThreshold, 1 << 20} {
		for _, stop := range []bool{false, true} {
			ref := Run(c, seq, faults, Options{
				Eval: engine.Hybrid, ConeThreshold: thr, Workers: 1, StopWhenAllDetected: stop,
			})
			for _, workers := range []int{2, 7, runtime.GOMAXPROCS(0), 0} {
				got := Run(c, seq, faults, Options{
					Eval: engine.Hybrid, ConeThreshold: thr, Workers: workers, StopWhenAllDetected: stop,
				})
				if !reflect.DeepEqual(ref.DetectedAt, got.DetectedAt) {
					t.Fatalf("thr=%d stop=%v: workers=%d result differs from workers=1", thr, stop, workers)
				}
			}
		}
	}
}

// TestHybridSmallConeNeverDemoted pins the admission guarantee: a fault
// whose static influence cone fits the threshold can never exceed the
// per-cycle budget, so the delta path must keep it for the whole run.
func TestHybridSmallConeNeverDemoted(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	c := gen.Generate(gen.Profile{Name: "hybad", PIs: 6, POs: 5, FFs: 10, Gates: 120}, 12)
	faults := fault.Collapsed(c)
	seq := randSeq(r, len(c.Inputs), 50, true)
	seqW := broadcastSeq(c, seq)
	idx := sim.NewConeIndex(c, 0)
	const thr = 24
	d := sim.NewDeltaSeq(sim.Compile(c))
	injs := make([]sim.Inject, len(faults))
	for i := range faults {
		injs[i] = faults[i].Inject()
	}
	det := make([]int, len(faults))
	over := make([]bool, len(faults))
	d.Run(injs, seqW, nil, thr, det, over)
	for i, f := range faults {
		if s := idx.Size(sim.ConeRoot(injs[i])); s >= 0 && s <= thr && over[i] {
			t.Errorf("fault %d (%s): cone %d <= thr %d but demoted", i, f.Describe(c), s, thr)
		}
	}
}

// FuzzHybridMatchesCompiled is the fuzz-style randomized-circuit
// equivalence check: any (circuit seed, sequence seed, threshold)
// triple must yield identical hybrid and compiled verdicts. `go test`
// runs the seed corpus; `go test -fuzz=FuzzHybridMatchesCompiled`
// explores further.
func FuzzHybridMatchesCompiled(f *testing.F) {
	f.Add(int64(1), int64(2), 8)
	f.Add(int64(3), int64(5), 1)
	f.Add(int64(7), int64(11), 1<<16)
	f.Fuzz(func(t *testing.T, circSeed, seqSeed int64, thr int) {
		if thr < 1 || thr > 1<<20 {
			t.Skip()
		}
		cr := rand.New(rand.NewSource(circSeed))
		c := gen.Generate(gen.Profile{
			Name: "fuzz", PIs: 3 + cr.Intn(6), POs: 2 + cr.Intn(5),
			FFs: 2 + cr.Intn(12), Gates: 30 + cr.Intn(150),
		}, circSeed)
		faults := fault.Collapsed(c)
		seq := randSeq(rand.New(rand.NewSource(seqSeed)), len(c.Inputs), 25, true)
		ref := Run(c, seq, faults, Options{Eval: engine.Compiled})
		got := Run(c, seq, faults, Options{Eval: engine.Hybrid, ConeThreshold: thr})
		if !reflect.DeepEqual(ref.DetectedAt, got.DetectedAt) {
			t.Fatalf("hybrid diverged: circSeed=%d seqSeed=%d thr=%d", circSeed, seqSeed, thr)
		}
	})
}
