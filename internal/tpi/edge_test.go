package tpi

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// isolated builds a circuit whose flip-flops only see their own
// feedback — no combinational paths between different flip-flops exist,
// so every link must fall back to inserted muxes.
func isolated(t *testing.T, n int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("isolated")
	a, err := c.AddInput("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		ff, _ := c.AddFF(ffName(i))
		g, _ := c.AddGate(gName(i), logic.OpXor, ff, a)
		if err := c.SetFFInput(ff, g); err != nil {
			t.Fatal(err)
		}
		_ = c.MarkOutput(g)
	}
	c.MustFinalize()
	return c
}

func ffName(i int) string { return "f" + string(rune('a'+i)) }
func gName(i int) string  { return "g" + string(rune('a'+i)) }

func TestInsertAllMuxFallback(t *testing.T) {
	c := isolated(t, 5)
	d, err := Insert(c, Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	functional, inserted := d.LinkStats()
	if functional != 0 || inserted != 5 {
		t.Errorf("links = %d functional, %d inserted; want 0/5", functional, inserted)
	}
	if err := d.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Shifting must still work.
	want := map[netlist.SignalID]logic.V{}
	for i, ff := range d.C.FFs {
		want[ff] = logic.V(i % 2)
	}
	seq := d.LoadSequence(want)
	s := sim.NewSeq(d.C)
	for _, pi := range seq {
		s.Cycle(pi, nil, nil)
	}
	for i, ff := range d.C.FFs {
		if s.State()[i] != want[ff] {
			t.Errorf("FF %s loaded %v, want %v", d.C.NameOf(ff), s.State()[i], want[ff])
		}
	}
}

func TestInsertSingleFF(t *testing.T) {
	c := isolated(t, 1)
	d, err := Insert(c, Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Chains) != 1 || d.Chains[0].Len() != 1 {
		t.Errorf("chains = %+v", d.Chains)
	}
}

func TestInsertMoreChainsThanFFs(t *testing.T) {
	c := isolated(t, 3)
	d, err := Insert(c, Options{NumChains: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Chains) > 3 {
		t.Errorf("%d chains for 3 FFs", len(d.Chains))
	}
	total := 0
	for i := range d.Chains {
		total += d.Chains[i].Len()
	}
	if total != 3 {
		t.Errorf("chains cover %d FFs", total)
	}
}

func TestInsertDoesNotMutateOriginal(t *testing.T) {
	orig := bench.MustS27()
	before := orig.Stat()
	sigs := len(orig.Signals)
	if _, err := Insert(orig, Options{NumChains: 1, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if orig.Stat() != before || len(orig.Signals) != sigs {
		t.Error("Insert mutated the input circuit")
	}
}

// TestTestPointTransparency: every inserted test point must be
// transparent in normal mode — guaranteed by construction
// (OR(n, scan_mode=0) = n, AND(n, !scan_mode=1) = n) — and forcing in
// scan mode.
func TestTestPointTransparency(t *testing.T) {
	c := bench.MustS27()
	d, err := Insert(c, Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.TestPoints) == 0 {
		t.Skip("no test points inserted on this seed")
	}
	e := sim.NewComb(d.C)
	for _, mode := range []logic.V{logic.Zero, logic.One} {
		e.ClearX()
		for _, in := range d.C.Inputs {
			e.Vals[in] = logic.Zero
		}
		e.Vals[d.ScanModePI] = mode
		e.Eval(nil)
		for _, tp := range d.TestPoints {
			src := d.C.Signals[tp].Fanin[0]
			if mode == logic.Zero {
				if e.Vals[tp] != e.Vals[src] {
					t.Errorf("test point %s not transparent in normal mode", d.C.NameOf(tp))
				}
			} else {
				if !e.Vals[tp].Known() {
					t.Errorf("test point %s not forcing in scan mode", d.C.NameOf(tp))
				}
			}
		}
	}
}
