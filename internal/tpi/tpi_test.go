package tpi

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

func insertS27(t *testing.T, chains int) *scan.Design {
	t.Helper()
	d, err := Insert(bench.MustS27(), Options{NumChains: chains, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func genCircuit(t *testing.T, gates, ffs int, seed int64) *netlist.Circuit {
	t.Helper()
	return gen.Generate(gen.Profile{
		Name: "tpit", PIs: 8, POs: 6, FFs: ffs, Gates: gates,
	}, seed)
}

func TestInsertCoversAllFFs(t *testing.T) {
	d := insertS27(t, 1)
	if len(d.Chains) != 1 {
		t.Fatalf("chains = %d", len(d.Chains))
	}
	seen := map[netlist.SignalID]bool{}
	for _, ff := range d.Chains[0].FFs {
		if seen[ff] {
			t.Errorf("FF %s appears twice", d.C.NameOf(ff))
		}
		seen[ff] = true
	}
	if len(seen) != len(d.C.FFs) {
		t.Errorf("chain covers %d of %d FFs", len(seen), len(d.C.FFs))
	}
	if err := d.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestInsertMultipleChains(t *testing.T) {
	c := genCircuit(t, 200, 12, 3)
	d, err := Insert(c, Options{NumChains: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Chains) != 3 {
		t.Fatalf("chains = %d", len(d.Chains))
	}
	total := 0
	for i := range d.Chains {
		total += d.Chains[i].Len()
		if d.Chains[i].ScanIn == netlist.None {
			t.Error("chain without scan-in")
		}
	}
	if total != 12 {
		t.Errorf("FFs on chains = %d, want 12", total)
	}
}

// TestNormalModePreserved: with scan_mode=0 the scan design must behave
// exactly like the original circuit (same PO trace and state evolution).
func TestNormalModePreserved(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		orig := genCircuit(t, 150, 10, seed)
		d, err := Insert(orig, Options{NumChains: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(seed * 7))

		so := sim.NewSeq(orig)
		sn := sim.NewSeq(d.C)
		zero := make([]logic.V, len(orig.FFs))
		so.SetState(zero)
		// The design has the same FFs (same IDs order) — start equal.
		sn.SetState(zero)

		nOrigPO := len(orig.Outputs)
		piO := make([]logic.V, len(orig.Inputs))
		piN := make([]logic.V, len(d.C.Inputs))
		var poO, poN []logic.V
		for cyc := 0; cyc < 40; cyc++ {
			for i := range piO {
				piO[i] = logic.V(r.Intn(2))
			}
			for i, in := range d.C.Inputs {
				if in == d.ScanModePI {
					piN[i] = logic.Zero
				} else if int(in) < len(orig.Signals) && orig.IsPI(in) {
					// Shared mission input: same index order as original.
					piN[i] = piO[i]
				} else {
					piN[i] = logic.V(r.Intn(2)) // scan-in pins: noise
				}
			}
			poO = so.Cycle(piO, nil, poO)
			poN = sn.Cycle(piN, nil, poN)
			for o := 0; o < nOrigPO; o++ {
				if poO[o] != poN[o] {
					t.Fatalf("seed %d cycle %d: PO %d differs in normal mode: %v vs %v",
						seed, cyc, o, poO[o], poN[o])
				}
			}
			for i := range orig.FFs {
				if so.State()[i] != sn.State()[i] {
					t.Fatalf("seed %d cycle %d: FF %d state differs: %v vs %v",
						seed, cyc, i, so.State()[i], sn.State()[i])
				}
			}
		}
	}
}

// TestShiftLoadsState: shifting a random target state in through the
// functional chain must leave exactly that state in the flip-flops.
func TestShiftLoadsState(t *testing.T) {
	for _, tc := range []struct {
		name string
		d    *scan.Design
		seed int64
	}{
		{"s27-1chain", insertS27(t, 1), 5},
		{"s27-2chain", insertS27(t, 2), 6},
	} {
		d := tc.d
		r := rand.New(rand.NewSource(tc.seed))
		want := map[netlist.SignalID]logic.V{}
		for _, ff := range d.C.FFs {
			want[ff] = logic.V(r.Intn(2))
		}
		seq := d.LoadSequence(want)
		s := sim.NewSeq(d.C)
		var po []logic.V
		for _, pi := range seq {
			po = s.Cycle(pi, nil, po)
		}
		for i, ff := range d.C.FFs {
			if got := s.State()[i]; got != want[ff] {
				t.Errorf("%s: FF %s loaded %v, want %v", tc.name, d.C.NameOf(ff), got, want[ff])
			}
		}
	}
}

func TestShiftLoadsStateGenerated(t *testing.T) {
	c := genCircuit(t, 300, 16, 11)
	d, err := Insert(c, Options{NumChains: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		want := map[netlist.SignalID]logic.V{}
		for _, ff := range d.C.FFs {
			want[ff] = logic.V(r.Intn(2))
		}
		seq := d.LoadSequence(want)
		s := sim.NewSeq(d.C)
		var po []logic.V
		for _, pi := range seq {
			po = s.Cycle(pi, nil, po)
		}
		for i, ff := range d.C.FFs {
			if got := s.State()[i]; got != want[ff] {
				t.Fatalf("trial %d: FF %s loaded %v, want %v", trial, d.C.NameOf(ff), got, want[ff])
			}
		}
	}
}

// TestFunctionalLinksFound: on generated circuits TPI should sensitize a
// meaningful share of links through mission logic rather than falling
// back to muxes everywhere.
func TestFunctionalLinksFound(t *testing.T) {
	c := genCircuit(t, 400, 20, 9)
	d, err := Insert(c, Options{NumChains: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	functional, inserted := d.LinkStats()
	t.Logf("functional=%d inserted=%d testpoints=%d", functional, inserted, len(d.TestPoints))
	if functional == 0 {
		t.Error("no functional links established")
	}
	_ = inserted
}

// TestScanOutObservesShiftedPattern: drive the alternating sequence and
// check each chain's scan-out reproduces the scan-in pattern delayed by
// the chain length and corrected for parity.
func TestScanOutObservesShiftedPattern(t *testing.T) {
	d := insertS27(t, 1)
	ch := &d.Chains[0]
	L := ch.Len()
	seq := d.AlternatingSequence(8)
	s := sim.NewSeq(d.C)
	var po []logic.V
	// Index of scan-out in outputs.
	outIdx := -1
	for i, o := range d.C.Outputs {
		if o == ch.ScanOut() {
			outIdx = i
		}
	}
	if outIdx < 0 {
		t.Fatal("scan-out not a PO")
	}
	parity := ch.ParityTo(L - 1)
	siIdx, _ := d.InputIndex(ch.ScanIn)
	for cyc, pi := range seq {
		po = s.Cycle(pi, nil, po)
		// After the pipeline fills, scan-out at cycle t equals the bit
		// injected at cycle t-L+... : the bit captured into the last FF
		// at end of cycle k is visible on its Q during cycle k+1.
		inj := cyc - L
		if inj >= 0 {
			want := seq[inj][siIdx]
			if parity {
				want = want.Not()
			}
			if got := po[outIdx]; got != want {
				t.Fatalf("cycle %d: scan-out %v, want %v (inject cycle %d)", cyc, got, want, inj)
			}
		}
	}
}

func TestInsertRejectsNoFFs(t *testing.T) {
	c, _ := bench.ParseString("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "comb")
	if _, err := Insert(c, Options{}); err == nil {
		t.Error("Insert accepted a circuit without flip-flops")
	}
}

func TestConvertVectorsAppliesPIValues(t *testing.T) {
	d := insertS27(t, 1)
	// Choose a mission PI and verify its value appears in the window
	// following the vector's load.
	var missionPI netlist.SignalID = netlist.None
	for _, in := range d.C.Inputs {
		if _, pinned := d.Assignments[in]; pinned {
			continue
		}
		isScanIn := false
		for i := range d.Chains {
			if d.Chains[i].ScanIn == in {
				isScanIn = true
			}
		}
		if !isScanIn {
			missionPI = in
			break
		}
	}
	if missionPI == netlist.None {
		t.Skip("no free mission PI")
	}
	v := scan.Vector{
		FFs: map[netlist.SignalID]logic.V{},
		PIs: map[netlist.SignalID]logic.V{missionPI: logic.One},
	}
	seq := d.ConvertVectors([]scan.Vector{v})
	L := d.MaxChainLen()
	if len(seq) != 3*L { // flush + load + response/flush-out window
		t.Fatalf("sequence length %d, want %d", len(seq), 3*L)
	}
	idx, _ := d.InputIndex(missionPI)
	for t2 := 0; t2 < 2*L; t2++ {
		if seq[t2][idx] != logic.Zero {
			t.Errorf("cycle %d: PI should be baseline 0 during flush/load, got %v", t2, seq[t2][idx])
		}
		if seq[2*L+t2/2][idx] != logic.One {
			t.Errorf("cycle %d: PI should hold vector value 1, got %v", 2*L+t2/2, seq[2*L+t2/2][idx])
		}
	}
}

func TestParityToConsistent(t *testing.T) {
	d := insertS27(t, 1)
	ch := &d.Chains[0]
	p := false
	for i := range ch.Segment {
		if ch.Segment[i].Invert {
			p = !p
		}
		if ch.ParityTo(i) != p {
			t.Errorf("ParityTo(%d) = %v, want %v", i, ch.ParityTo(i), p)
		}
	}
}
