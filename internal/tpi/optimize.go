package tpi

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/scan"
)

// Cost scores a design for ordering optimization: inserted gates are
// what TPI exists to avoid, so the cost is the fallback-link gate count
// plus the test points (the paper compares exactly this overhead against
// conventional MUXed scan).
func Cost(d *scan.Design) int {
	_, inserted := d.LinkStats()
	return 3*inserted + len(d.TestPoints)
}

// OptimizeOrdering explores the chain-ordering freedom the paper leaves
// to the designer: it runs scan insertion across the given seeds and
// returns the cheapest design (fewest inserted gates), its seed, and
// the cost of every candidate for reporting.
func OptimizeOrdering(c *netlist.Circuit, opts Options, seeds []int64) (*scan.Design, int64, []int, error) {
	if len(seeds) == 0 {
		return nil, 0, nil, fmt.Errorf("tpi: OptimizeOrdering needs at least one seed")
	}
	var (
		best     *scan.Design
		bestSeed int64
		costs    = make([]int, len(seeds))
	)
	for i, seed := range seeds {
		o := opts
		o.Seed = seed
		d, err := Insert(c, o)
		if err != nil {
			return nil, 0, nil, err
		}
		costs[i] = Cost(d)
		if best == nil || costs[i] < Cost(best) {
			best, bestSeed = d, seed
		}
	}
	return best, bestSeed, costs, nil
}
