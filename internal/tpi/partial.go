package tpi

import (
	"sort"

	"repro/internal/netlist"
)

// SelectPartialScan picks a subset of flip-flops for partial scan by
// breaking sequential feedback loops, in the spirit of Cheng & Agrawal
// ("A partial scan method for sequential circuits with feedback", IEEE
// ToC 1990, the paper's reference [3]): compute the flip-flop dependency
// graph (FF -> FF combinational reachability), then greedily remove the
// flip-flop on the most feedback until the graph is acyclic — a minimum
// feedback vertex set approximation. Self-loops force selection.
//
// minFraction (0..1) tops the selection up with the highest-degree
// remaining flip-flops so at least that share of flip-flops is scanned.
func SelectPartialScan(c *netlist.Circuit, minFraction float64) []netlist.SignalID {
	n := len(c.FFs)
	if n == 0 {
		return nil
	}
	idx := make(map[netlist.SignalID]int, n)
	for i, ff := range c.FFs {
		idx[ff] = i
	}

	// FF dependency graph over combinational paths.
	adj := make([][]int, n)
	for i, ff := range c.FFs {
		seen := map[netlist.SignalID]bool{}
		stack := []netlist.SignalID{ff}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, fo := range c.Fanouts[s] {
				if seen[fo] {
					continue
				}
				seen[fo] = true
				if c.IsFF(fo) {
					adj[i] = append(adj[i], idx[fo])
					continue
				}
				if c.IsGate(fo) {
					stack = append(stack, fo)
				}
			}
		}
		// The D pin counts too (a gate feeding this FF's D).
		// (Covered: Fanouts of intermediate gates include FFs via D pins.)
	}

	removed := make([]bool, n)
	selected := []int{}

	// Self-loops must be cut.
	for i := range adj {
		for _, j := range adj[i] {
			if j == i && !removed[i] {
				removed[i] = true
				selected = append(selected, i)
			}
		}
	}

	// Greedy: while a cycle exists, remove the vertex with the highest
	// in+out degree within the remaining graph.
	for {
		cyc := findCycle(adj, removed)
		if cyc == nil {
			break
		}
		best, bestDeg := cyc[0], -1
		for _, v := range cyc {
			deg := 0
			for _, w := range adj[v] {
				if !removed[w] {
					deg++
				}
			}
			for u := range adj {
				if removed[u] {
					continue
				}
				for _, w := range adj[u] {
					if w == v {
						deg++
					}
				}
			}
			if deg > bestDeg {
				best, bestDeg = v, deg
			}
		}
		removed[best] = true
		selected = append(selected, best)
	}

	// Top up to the requested fraction with the busiest leftovers.
	want := int(minFraction * float64(n))
	if want > n {
		want = n
	}
	if len(selected) < want {
		type cand struct{ v, deg int }
		var cands []cand
		for v := range adj {
			if removed[v] {
				continue
			}
			cands = append(cands, cand{v, len(adj[v])})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].deg != cands[j].deg {
				return cands[i].deg > cands[j].deg
			}
			return cands[i].v < cands[j].v
		})
		for _, cd := range cands {
			if len(selected) >= want {
				break
			}
			removed[cd.v] = true
			selected = append(selected, cd.v)
		}
	}

	sort.Ints(selected)
	out := make([]netlist.SignalID, len(selected))
	for i, v := range selected {
		out[i] = c.FFs[v]
	}
	return out
}

// findCycle returns one directed cycle among non-removed vertices, or
// nil if the remaining graph is acyclic.
func findCycle(adj [][]int, removed []bool) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]int, len(adj))
	parent := make([]int, len(adj))
	for i := range parent {
		parent[i] = -1
	}
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = gray
		for _, w := range adj[v] {
			if removed[w] {
				continue
			}
			switch color[w] {
			case white:
				parent[w] = v
				if dfs(w) {
					return true
				}
			case gray:
				// Found a back edge w -> ... -> v -> w.
				cycle = []int{w}
				for x := v; x != w && x != -1; x = parent[x] {
					cycle = append(cycle, x)
				}
				return true
			}
		}
		color[v] = black
		return false
	}
	for v := range adj {
		if !removed[v] && color[v] == white {
			if dfs(v) {
				return cycle
			}
		}
	}
	return nil
}
