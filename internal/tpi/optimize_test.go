package tpi

import (
	"testing"

	"repro/internal/gen"
)

func TestOptimizeOrderingPicksCheapest(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "opt", PIs: 8, POs: 6, FFs: 18, Gates: 320}, 7)
	seeds := []int64{1, 2, 3, 4, 5}
	best, seed, costs, err := OptimizeOrdering(c, Options{NumChains: 1}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(seeds) {
		t.Fatalf("costs = %v", costs)
	}
	bc := Cost(best)
	for i, cost := range costs {
		if cost < bc {
			t.Errorf("seed %d cost %d beats chosen %d (seed %d)", seeds[i], cost, bc, seed)
		}
	}
	// The chosen seed must reproduce the chosen cost.
	d, err := Insert(c, Options{NumChains: 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if Cost(d) != bc {
		t.Errorf("re-running chosen seed gives cost %d, expected %d", Cost(d), bc)
	}
	t.Logf("costs=%v chosen seed=%d cost=%d", costs, seed, bc)
}

func TestOptimizeOrderingValidates(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "optv", PIs: 4, POs: 3, FFs: 6, Gates: 60}, 1)
	if _, _, _, err := OptimizeOrdering(c, Options{}, nil); err == nil {
		t.Error("accepted empty seed list")
	}
}
