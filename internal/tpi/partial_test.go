package tpi

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestSelectPartialScanBreaksAllLoops(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		c := gen.Generate(gen.Profile{Name: "ps", PIs: 6, POs: 4, FFs: 24, Gates: 300}, seed)
		sel := SelectPartialScan(c, 0)
		selSet := map[netlist.SignalID]bool{}
		for _, ff := range sel {
			selSet[ff] = true
		}
		// Rebuild the FF graph over the non-selected flip-flops and
		// check it is acyclic.
		idx := map[netlist.SignalID]int{}
		var rest []netlist.SignalID
		for _, ff := range c.FFs {
			if !selSet[ff] {
				idx[ff] = len(rest)
				rest = append(rest, ff)
			}
		}
		adj := make([][]int, len(rest))
		for i, ff := range rest {
			seen := map[netlist.SignalID]bool{}
			stack := []netlist.SignalID{ff}
			for len(stack) > 0 {
				s := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, fo := range c.Fanouts[s] {
					if seen[fo] {
						continue
					}
					seen[fo] = true
					if c.IsFF(fo) {
						if j, ok := idx[fo]; ok {
							adj[i] = append(adj[i], j)
						}
						continue
					}
					if c.IsGate(fo) {
						stack = append(stack, fo)
					}
				}
			}
		}
		if cyc := findCycle(adj, make([]bool, len(rest))); cyc != nil {
			t.Errorf("seed %d: sequential loop remains after selection", seed)
		}
	}
}

func TestSelectPartialScanFraction(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "psf", PIs: 6, POs: 4, FFs: 20, Gates: 200}, 4)
	sel := SelectPartialScan(c, 0.75)
	if len(sel) < 15 {
		t.Errorf("selection %d below requested fraction", len(sel))
	}
	if len(sel) > 20 {
		t.Errorf("selection %d exceeds FF count", len(sel))
	}
	// Deterministic.
	sel2 := SelectPartialScan(c, 0.75)
	if len(sel) != len(sel2) {
		t.Fatal("selection nondeterministic")
	}
	for i := range sel {
		if sel[i] != sel2[i] {
			t.Fatal("selection nondeterministic")
		}
	}
}

func TestInsertPartialScan(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "pins", PIs: 8, POs: 6, FFs: 18, Gates: 250}, 5)
	sel := SelectPartialScan(c, 0.5)
	d, err := Insert(c, Options{NumChains: 1, Seed: 1, ScanFFs: sel})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Partial() {
		t.Fatal("design not marked partial")
	}
	if d.Chains[0].Len() != len(sel) {
		t.Errorf("chain covers %d FFs, want %d", d.Chains[0].Len(), len(sel))
	}
	if len(d.NonScan)+len(sel) != len(c.FFs) {
		t.Errorf("NonScan %d + scanned %d != %d", len(d.NonScan), len(sel), len(c.FFs))
	}
	// Non-scan flip-flops keep their mission D input wiring through... a
	// functional path: their D must NOT be one of the inserted mux gates.
	for _, ff := range d.NonScan {
		dsrc := d.C.Signals[ff].Fanin[0]
		name := d.C.NameOf(dsrc)
		if len(name) >= 3 && name[:3] == "mux" {
			t.Errorf("non-scan FF %s rewired to %s", d.C.NameOf(ff), name)
		}
	}
	if err := d.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// Loading the scanned subset still works.
	want := map[netlist.SignalID]logic.V{}
	for i, ff := range d.Chains[0].FFs {
		want[ff] = logic.V(i % 2)
	}
	seq := d.LoadSequence(want)
	s := sim.NewSeq(d.C)
	for _, pi := range seq {
		s.Cycle(pi, nil, nil)
	}
	for i, ff := range d.C.FFs {
		if w, ok := want[ff]; ok && s.State()[i] != w {
			t.Errorf("scanned FF %s loaded %v, want %v", d.C.NameOf(ff), s.State()[i], w)
		}
	}
}

func TestInsertRejectsBadScanFFs(t *testing.T) {
	c := bench.MustS27()
	g, _ := c.Lookup("G14") // a gate, not a FF
	if _, err := Insert(c, Options{ScanFFs: []netlist.SignalID{g}}); err == nil {
		t.Error("Insert accepted a non-FF in ScanFFs")
	}
	if _, err := Insert(c, Options{ScanFFs: []netlist.SignalID{}}); err == nil {
		t.Error("Insert accepted an empty ScanFFs")
	}
}
