package tpi

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
)

// maxTestPointsPerLink bounds how many test points a single functional
// link may spend before the cheaper MUX fallback wins.
const maxTestPointsPerLink = 3

// plannedTP is a branch test point decided during a link attempt and
// materialized only if the whole link commits.
type plannedTP struct {
	gate  netlist.SignalID
	pin   int
	force logic.V
}

// tryFunctionalLink attempts to establish a sensitized path from q's
// output to the D input of ff. On success it returns the committed
// segment; on failure the builder state is unchanged.
func (b *builder) tryFunctionalLink(q, ff netlist.SignalID) (scan.Segment, bool) {
	dsrc := b.c.Signals[ff].Fanin[0]
	paths := b.enumeratePaths(q, dsrc)
	for _, path := range paths {
		if seg, ok := b.trySensitize(q, ff, path); ok {
			return seg, true
		}
	}
	return scan.Segment{}, false
}

// enumeratePaths finds up to MaxPathsTried simple gate paths from q to
// target by depth-first search, shortest alternatives first. Candidate
// path nets must currently be X in scan mode (definite nets cannot
// carry shift data) and must not belong to an established segment.
func (b *builder) enumeratePaths(q, target netlist.SignalID) [][]netlist.SignalID {
	var paths [][]netlist.SignalID
	var cur []netlist.SignalID
	onCur := map[netlist.SignalID]bool{q: true}

	var dfs func(sig netlist.SignalID, depth int)
	dfs = func(sig netlist.SignalID, depth int) {
		if len(paths) >= b.opts.MaxPathsTried || depth > b.opts.MaxPathLen {
			return
		}
		for _, fo := range b.c.Fanouts[sig] {
			if len(paths) >= b.opts.MaxPathsTried {
				return
			}
			if !b.c.IsGate(fo) || onCur[fo] || b.protected[fo] || b.val(fo) != logic.X {
				continue
			}
			op := b.c.Signals[fo].Op
			if op == logic.OpConst0 || op == logic.OpConst1 {
				continue
			}
			cur = append(cur, fo)
			if fo == target {
				paths = append(paths, append([]netlist.SignalID(nil), cur...))
			} else {
				onCur[fo] = true
				dfs(fo, depth+1)
				delete(onCur, fo)
			}
			cur = cur[:len(cur)-1]
		}
	}
	dfs(q, 1)
	return paths
}

// trySensitize attempts to force every side input of the path to a
// non-controlling value via existing constants, new PI assignments, or
// planned test points. All effects are rolled back on failure.
func (b *builder) trySensitize(q, ff netlist.SignalID, path []netlist.SignalID) (scan.Segment, bool) {
	saved := make(map[netlist.SignalID]logic.V, len(b.assignments))
	for k, v := range b.assignments {
		saved[k] = v
	}
	rollback := func() {
		b.assignments = saved
		b.propagate()
	}

	var (
		sides   []scan.SideInput
		planned []plannedTP
		invert  bool
	)
	prev := q
	for _, g := range path {
		s := &b.c.Signals[g]
		pathPin := -1
		for pin, f := range s.Fanin {
			if f == prev && pathPin < 0 {
				pathPin = pin
				continue
			}
			// Side input: needs a constant.
			want, resolved, tp, ok := b.ensureSide(g, pin, s.Op, planned)
			if !ok {
				rollback()
				return scan.Segment{}, false
			}
			if tp != nil {
				if len(planned) >= maxTestPointsPerLink {
					rollback()
					return scan.Segment{}, false
				}
				planned = append(planned, *tp)
			}
			sides = append(sides, scan.SideInput{Gate: g, Pin: pin, Want: want})
			if resolved == logic.One && (s.Op == logic.OpXor || s.Op == logic.OpXnor) {
				invert = !invert
			}
		}
		if pathPin < 0 {
			rollback()
			return scan.Segment{}, false
		}
		switch s.Op {
		case logic.OpNot, logic.OpNand, logic.OpNor, logic.OpXnor:
			invert = !invert
		}
		prev = g
	}

	// Verify the link under the final propagation BEFORE materializing
	// test points, so failure leaves no circuit mutation behind.
	// Test-point-forced sides are skipped: the forcing gate pins them by
	// construction.
	b.propagate()
	tpPinned := make(map[[2]int]bool, len(planned))
	for _, tp := range planned {
		tpPinned[[2]int{int(tp.gate), tp.pin}] = true
	}
	for _, si := range sides {
		if tpPinned[[2]int{int(si.Gate), si.Pin}] {
			continue
		}
		net := b.c.Signals[si.Gate].Fanin[si.Pin]
		if b.val(net) != si.Want {
			rollback()
			return scan.Segment{}, false
		}
	}
	for _, p := range path {
		if b.val(p) != logic.X {
			rollback()
			return scan.Segment{}, false
		}
	}
	for _, tp := range planned {
		if _, err := b.insertTestPoint(tp); err != nil {
			rollback()
			return scan.Segment{}, false
		}
	}
	if len(planned) > 0 {
		if err := b.refresh(); err != nil {
			rollback()
			return scan.Segment{}, false
		}
	}

	for _, p := range path {
		b.protected[p] = true
	}
	return scan.Segment{
		To:     ff,
		Path:   append([]netlist.SignalID(nil), path...),
		Sides:  sides,
		Invert: invert,
		Kind:   scan.Functional,
	}, true
}

// ensureSide makes pin pin of gate g read a constant during scan mode.
// It returns the value the segment records as required (want), the
// resolved constant (for XOR parity), and optionally a planned test
// point. For AND/NAND/OR/NOR the constant must be the non-controlling
// value; for XOR/XNOR any constant works.
func (b *builder) ensureSide(g netlist.SignalID, pin int, op logic.Op, planned []plannedTP) (want, resolved logic.V, tp *plannedTP, ok bool) {
	net := b.c.Signals[g].Fanin[pin]
	// A test point already planned for this exact pin wins.
	for i := range planned {
		if planned[i].gate == g && planned[i].pin == pin {
			return planned[i].force, planned[i].force, nil, true
		}
	}
	nc, hasNC := op.NonControlling()
	cur := b.val(net)
	if hasNC {
		if cur == nc {
			return nc, nc, nil, true
		}
		if cur == logic.X && b.justify(net, nc) {
			return nc, nc, nil, true
		}
		return nc, nc, &plannedTP{gate: g, pin: pin, force: nc}, true
	}
	// XOR/XNOR side: any constant sensitizes; prefer the current value,
	// then justification to 0 or 1, then a forcing point to 0.
	if cur.Known() {
		return cur, cur, nil, true
	}
	if b.justify(net, logic.Zero) {
		return logic.Zero, logic.Zero, nil, true
	}
	if b.justify(net, logic.One) {
		return logic.One, logic.One, nil, true
	}
	return logic.Zero, logic.Zero, &plannedTP{gate: g, pin: pin, force: logic.Zero}, true
}

// justify tries to force net to value v with additional primary-input
// assignments. On success the assignments are committed and propagated;
// on failure the builder state is unchanged.
func (b *builder) justify(net netlist.SignalID, v logic.V) bool {
	acc := make(map[netlist.SignalID]logic.V)
	if !b.propose(net, v, b.opts.JustifyDepth, acc) {
		return false
	}
	if len(acc) == 0 {
		return b.val(net) == v
	}
	saved := make(map[netlist.SignalID]logic.V, len(b.assignments))
	for k, vv := range b.assignments {
		saved[k] = vv
	}
	for k, vv := range acc {
		b.assignments[k] = vv
	}
	b.propagate()
	if b.val(net) != v {
		b.assignments = saved
		b.propagate()
		return false
	}
	return true
}

// propose recursively collects primary-input assignments that would set
// net to v, based on the current propagation. It is structural and
// optimistic; justify verifies the result by re-propagation.
func (b *builder) propose(net netlist.SignalID, v logic.V, depth int, acc map[netlist.SignalID]logic.V) bool {
	if cur := b.val(net); cur == v {
		return true
	} else if cur != logic.X {
		return false
	}
	if prev, ok := acc[net]; ok {
		return prev == v
	}
	s := &b.c.Signals[net]
	switch s.Kind {
	case netlist.KindInput:
		if b.reserved[net] {
			return false
		}
		if prev, ok := b.assignments[net]; ok {
			return prev == v
		}
		acc[net] = v
		return true
	case netlist.KindFF:
		return false
	}
	if depth <= 0 {
		return false
	}
	op := s.Op
	switch op {
	case logic.OpBuf:
		return b.propose(s.Fanin[0], v, depth-1, acc)
	case logic.OpNot:
		return b.propose(s.Fanin[0], v.Not(), depth-1, acc)
	case logic.OpConst0, logic.OpConst1:
		return false // value is fixed and != v (checked above)
	case logic.OpXor, logic.OpXnor:
		return false
	}
	ctrl, _ := op.Controlling()
	controlledOut := ctrl
	if op.Inverting() {
		controlledOut = ctrl.Not()
	}
	if v == controlledOut {
		// One controlling input suffices: try each in turn with a
		// scratch copy so failed branches leave no residue.
		for _, f := range s.Fanin {
			scratch := make(map[netlist.SignalID]logic.V, len(acc))
			for k, vv := range acc {
				scratch[k] = vv
			}
			if b.propose(f, ctrl, depth-1, scratch) {
				for k, vv := range scratch {
					acc[k] = vv
				}
				return true
			}
		}
		return false
	}
	// All inputs must be non-controlling.
	for _, f := range s.Fanin {
		if !b.propose(f, ctrl.Not(), depth-1, acc) {
			return false
		}
	}
	return true
}

// insertTestPoint materializes a branch test point: pin tp.pin of gate
// tp.gate is rewired through a forcing gate that pins it to tp.force
// during scan mode and is transparent otherwise.
func (b *builder) insertTestPoint(tp plannedTP) (netlist.SignalID, error) {
	net := b.c.Signals[tp.gate].Fanin[tp.pin]
	name := fmt.Sprintf("tp%d", b.tpCounter)
	b.tpCounter++
	var g netlist.SignalID
	var err error
	if tp.force == logic.One {
		g, err = b.c.AddGate(name, logic.OpOr, net, b.scanMode)
	} else {
		g, err = b.c.AddGate(name, logic.OpAnd, net, b.nsm)
	}
	if err != nil {
		return netlist.None, err
	}
	b.c.Signals[tp.gate].Fanin[tp.pin] = g
	b.testPoints = append(b.testPoints, g)
	return g, nil
}
