// Package tpi implements test point insertion for functional scan
// (Lin, Marek-Sadowska, Cheng, Lee — DAC'97), the technique the paper
// builds on: establish scan paths through mission combinational logic by
// forcing the side inputs of a chosen flip-flop-to-flip-flop path to
// non-controlling values during scan mode, using primary-input
// assignments where possible and inserted test points otherwise.
//
// When no functional path between two flip-flops can be sensitized, the
// link falls back to inserted multiplexer gates (the conventional
// MUXed-scan construction); head segments always use the inserted form
// to bring in the dedicated scan-in pin. Either way the result is a
// uniform scan.Design whose every link is a sensitized combinational
// path — which is exactly what makes testing the chain itself
// non-trivial and motivates the paper.
package tpi

import (
	"fmt"
	"math/rand"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/sim"
)

// Options tunes scan insertion.
type Options struct {
	NumChains     int   // number of scan chains (min 1)
	MaxPathLen    int   // maximum gates on a functional path (default 8)
	MaxPathsTried int   // DFS path candidates examined per link (default 12)
	JustifyDepth  int   // recursion depth for PI-assignment justification (default 24)
	MaxCandidates int   // candidate successors kept per flip-flop (default 16)
	ConeCap       int   // forward-cone exploration cap per flip-flop (default 600)
	Seed          int64 // tie-breaking randomness

	// ScanFFs restricts the chains to this flip-flop subset (partial
	// scan); the rest keep their mission D input and are recorded in
	// Design.NonScan. Nil selects every flip-flop (full scan). Use
	// SelectPartialScan for a feedback-breaking subset.
	ScanFFs []netlist.SignalID
}

func (o Options) withDefaults(nFF int) Options {
	if o.NumChains < 1 {
		o.NumChains = 1
	}
	if o.NumChains > nFF {
		o.NumChains = nFF
	}
	if o.MaxPathLen == 0 {
		o.MaxPathLen = 8
	}
	if o.MaxPathsTried == 0 {
		o.MaxPathsTried = 12
	}
	if o.JustifyDepth == 0 {
		o.JustifyDepth = 24
	}
	if o.MaxCandidates == 0 {
		o.MaxCandidates = 16
	}
	if o.ConeCap == 0 {
		o.ConeCap = 600
	}
	return o
}

type builder struct {
	opts Options
	c    *netlist.Circuit
	r    *rand.Rand

	scanMode netlist.SignalID
	nsm      netlist.SignalID // NOT(scan_mode), shared by 0-forcing points and fallback muxes

	assignments map[netlist.SignalID]logic.V
	reserved    map[netlist.SignalID]bool // inputs justification may not touch (scan-ins)
	protected   map[netlist.SignalID]bool // on-path nets
	testPoints  []netlist.SignalID

	eval *sim.Comb // scan-mode constant propagation state

	muxCounter int
	tpCounter  int
}

// Insert builds a functional scan design for circuit orig. orig is not
// modified.
func Insert(orig *netlist.Circuit, opts Options) (*scan.Design, error) {
	if len(orig.FFs) == 0 {
		return nil, fmt.Errorf("tpi: circuit %q has no flip-flops", orig.Name)
	}
	scanSet := make(map[netlist.SignalID]bool, len(orig.FFs))
	if opts.ScanFFs == nil {
		for _, ff := range orig.FFs {
			scanSet[ff] = true
		}
	} else {
		if len(opts.ScanFFs) == 0 {
			return nil, fmt.Errorf("tpi: empty ScanFFs selection")
		}
		for _, ff := range opts.ScanFFs {
			if int(ff) >= len(orig.Signals) || !orig.IsFF(ff) {
				return nil, fmt.Errorf("tpi: ScanFFs entry %d is not a flip-flop", ff)
			}
			scanSet[ff] = true
		}
	}
	opts = opts.withDefaults(len(scanSet))

	b := &builder{
		opts:        opts,
		c:           orig.Clone(),
		r:           rand.New(rand.NewSource(opts.Seed)),
		assignments: make(map[netlist.SignalID]logic.V),
		reserved:    make(map[netlist.SignalID]bool),
		protected:   make(map[netlist.SignalID]bool),
	}
	var err error
	if b.scanMode, err = b.c.AddInput("scan_mode"); err != nil {
		return nil, err
	}
	if b.nsm, err = b.c.AddGate("scan_mode_n", logic.OpNot, b.scanMode); err != nil {
		return nil, err
	}
	b.assignments[b.scanMode] = logic.One
	if err := b.refresh(); err != nil {
		return nil, err
	}

	candidates := b.successorCandidates(orig)
	chains, err := b.buildChains(candidates, scanSet)
	if err != nil {
		return nil, err
	}
	var nonScan []netlist.SignalID
	for _, ff := range b.c.FFs {
		if !scanSet[ff] {
			nonScan = append(nonScan, ff)
		}
	}

	// Scan-out pins: the last flip-flop of each chain becomes a primary
	// output unless it already is one.
	isPO := make(map[netlist.SignalID]bool, len(b.c.Outputs))
	for _, o := range b.c.Outputs {
		isPO[o] = true
	}
	for i := range chains {
		so := chains[i].ScanOut()
		if !isPO[so] {
			if err := b.c.MarkOutput(so); err != nil {
				return nil, err
			}
			isPO[so] = true
		}
	}
	if err := b.c.Finalize(); err != nil {
		return nil, err
	}

	d := &scan.Design{
		C:           b.c,
		Assignments: b.assignments,
		ScanModePI:  b.scanMode,
		Chains:      chains,
		TestPoints:  b.testPoints,
		NonScan:     nonScan,
	}
	d.Init()
	if err := d.Verify(); err != nil {
		return nil, fmt.Errorf("tpi: inconsistent design: %v", err)
	}
	return d, nil
}

// refresh re-finalizes the circuit after mutation and recomputes the
// scan-mode constant propagation (assigned inputs constant, free inputs
// and flip-flop outputs X).
func (b *builder) refresh() error {
	if err := b.c.Finalize(); err != nil {
		return err
	}
	b.eval = sim.NewComb(b.c)
	b.propagate()
	return nil
}

func (b *builder) propagate() {
	b.eval.ClearX()
	for _, in := range b.c.Inputs {
		if v, ok := b.assignments[in]; ok {
			b.eval.Vals[in] = v
		}
	}
	b.eval.Eval(nil)
}

func (b *builder) val(s netlist.SignalID) logic.V { return b.eval.Vals[s] }

// successorCandidates finds, per flip-flop, the flip-flops whose D cone
// its output reaches within MaxPathLen gates — the functional-link
// candidates, nearest first.
func (b *builder) successorCandidates(orig *netlist.Circuit) map[netlist.SignalID][]netlist.SignalID {
	dsrcOf := make(map[netlist.SignalID][]netlist.SignalID) // D-source signal -> FFs
	for _, ff := range orig.FFs {
		d := orig.Signals[ff].Fanin[0]
		dsrcOf[d] = append(dsrcOf[d], ff)
	}
	out := make(map[netlist.SignalID][]netlist.SignalID, len(orig.FFs))
	type qe struct {
		sig  netlist.SignalID
		dist int
	}
	for _, q := range orig.FFs {
		seen := map[netlist.SignalID]bool{q: true}
		queue := []qe{{q, 0}}
		visited := 0
		var cands []netlist.SignalID
		have := map[netlist.SignalID]bool{}
		for len(queue) > 0 && visited < b.opts.ConeCap && len(cands) < b.opts.MaxCandidates {
			cur := queue[0]
			queue = queue[1:]
			visited++
			for _, fo := range orig.Fanouts[cur.sig] {
				if seen[fo] || !orig.IsGate(fo) || cur.dist+1 > b.opts.MaxPathLen {
					continue
				}
				seen[fo] = true
				for _, ff := range dsrcOf[fo] {
					if ff != q && !have[ff] {
						have[ff] = true
						cands = append(cands, ff)
					}
				}
				queue = append(queue, qe{fo, cur.dist + 1})
			}
		}
		out[q] = cands
	}
	return out
}

// buildChains partitions the scan-selected flip-flops into chains,
// preferring functional links to candidates and falling back to
// inserted muxes.
func (b *builder) buildChains(candidates map[netlist.SignalID][]netlist.SignalID, scanSet map[netlist.SignalID]bool) ([]scan.Chain, error) {
	used := make(map[netlist.SignalID]bool)
	remaining := len(scanSet)
	var chains []scan.Chain

	// The paper leaves the ordering of flip-flops without functional
	// links to the designer; the seed picks one such ordering, so
	// different seeds explore the flexibility (examples/orderingsweep).
	order := make([]netlist.SignalID, 0, len(scanSet))
	for _, ff := range b.c.FFs {
		if scanSet[ff] {
			order = append(order, ff)
		}
	}
	b.r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	nextUnused := func() netlist.SignalID {
		for _, ff := range order {
			if !used[ff] {
				return ff
			}
		}
		return netlist.None
	}

	for ci := 0; ci < b.opts.NumChains && remaining > 0; ci++ {
		target := remaining / (b.opts.NumChains - ci)
		if target < 1 {
			target = 1
		}
		start := nextUnused()
		used[start] = true
		remaining--

		scanIn, err := b.c.AddInput(fmt.Sprintf("scan_in%d", ci))
		if err != nil {
			return nil, err
		}
		b.reserved[scanIn] = true
		if err := b.refresh(); err != nil {
			return nil, err
		}
		head, err := b.insertMuxLink(scanIn, start)
		if err != nil {
			return nil, err
		}
		ch := scan.Chain{ID: ci, ScanIn: scanIn, FFs: []netlist.SignalID{start}, Segment: []scan.Segment{head}}

		for ch.Len() < target && remaining > 0 {
			cur := ch.FFs[ch.Len()-1]
			var next netlist.SignalID = netlist.None
			var seg scan.Segment
			for _, cand := range candidates[cur] {
				if used[cand] || !scanSet[cand] {
					continue
				}
				if s, ok := b.tryFunctionalLink(cur, cand); ok {
					next, seg = cand, s
					break
				}
			}
			if next == netlist.None {
				next = nextUnused()
				s, err := b.insertMuxLink(cur, next)
				if err != nil {
					return nil, err
				}
				seg = s
			}
			used[next] = true
			remaining--
			ch.FFs = append(ch.FFs, next)
			ch.Segment = append(ch.Segment, seg)
		}
		chains = append(chains, ch)
	}
	return chains, nil
}

// insertMuxLink builds the conventional scan link from source signal src
// (a flip-flop Q or a scan-in pin) into ff's D through inserted gates:
//
//	d' = OR(AND(src, scan_mode), AND(oldD, !scan_mode))
//
// The AND/OR pair is itself a sensitized functional path in scan mode,
// so it is described as a Segment like any other.
func (b *builder) insertMuxLink(src, ff netlist.SignalID) (scan.Segment, error) {
	oldD := b.c.Signals[ff].Fanin[0]
	n := b.muxCounter
	b.muxCounter++
	andScan, err := b.c.AddGate(fmt.Sprintf("mux%d_s", n), logic.OpAnd, src, b.scanMode)
	if err != nil {
		return scan.Segment{}, err
	}
	andFunc, err := b.c.AddGate(fmt.Sprintf("mux%d_f", n), logic.OpAnd, oldD, b.nsm)
	if err != nil {
		return scan.Segment{}, err
	}
	orG, err := b.c.AddGate(fmt.Sprintf("mux%d_o", n), logic.OpOr, andScan, andFunc)
	if err != nil {
		return scan.Segment{}, err
	}
	if err := b.c.SetFFInput(ff, orG); err != nil {
		return scan.Segment{}, err
	}
	if err := b.refresh(); err != nil {
		return scan.Segment{}, err
	}
	b.protected[andScan] = true
	b.protected[orG] = true
	return scan.Segment{
		To:   ff,
		Path: []netlist.SignalID{andScan, orG},
		Sides: []scan.SideInput{
			{Gate: andScan, Pin: 1, Want: logic.One}, // scan_mode
			{Gate: orG, Pin: 1, Want: logic.Zero},    // functional branch gated off
		},
		Invert: false,
		Kind:   scan.Inserted,
	}, nil
}
