// OTLP/JSON export and import. The wire shape is the OpenTelemetry
// OTLP trace payload (resourceSpans -> scopeSpans -> spans) encoded
// per the protobuf-JSON mapping — hex IDs, stringified uint64 nanos —
// hand-built with encoding/json so the repo takes no OpenTelemetry
// dependency. The reader accepts what the writer produces (one
// resource, string-valued attributes); it is a round-trip and
// analysis loader, not a general OTLP consumer.

package trace

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Trace bundles an assembled span set with its identity and resource
// attributes, ready for export. OriginNS is the wall-clock unix-nano
// instant of span offset 0 (the journal recorder's clock origin);
// zero means unknown and exports offsets as absolute times.
type Trace struct {
	Ctx      Context
	Parent   SpanID // inbound parent of the root span; zero if none
	OriginNS int64
	Resource []Attr
	Spans    []Span // root first, as returned by Assemble
}

// scopeName identifies this exporter in the OTLP scope block.
const scopeName = "repro/internal/trace"

// otlpSpanKindInternal is the OTLP SpanKind enum value for internal
// spans; the fsct-specific kind travels as the fsct.kind attribute.
const otlpSpanKindInternal = 1

// The otlp* structs mirror the OTLP/JSON payload shape.
type otlpDoc struct {
	ResourceSpans []otlpResourceSpans `json:"resourceSpans"`
}

type otlpResourceSpans struct {
	Resource   otlpResource     `json:"resource"`
	ScopeSpans []otlpScopeSpans `json:"scopeSpans"`
}

type otlpResource struct {
	Attributes []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpScopeSpans struct {
	Scope otlpScope  `json:"scope"`
	Spans []otlpSpan `json:"spans"`
}

type otlpScope struct {
	Name string `json:"name"`
}

type otlpSpan struct {
	TraceID      string         `json:"traceId"`
	SpanID       string         `json:"spanId"`
	ParentSpanID string         `json:"parentSpanId,omitempty"`
	Name         string         `json:"name"`
	Kind         int            `json:"kind"`
	StartNano    string         `json:"startTimeUnixNano"`
	EndNano      string         `json:"endTimeUnixNano"`
	Attributes   []otlpKeyValue `json:"attributes,omitempty"`
}

type otlpKeyValue struct {
	Key   string       `json:"key"`
	Value otlpAnyValue `json:"value"`
}

type otlpAnyValue struct {
	StringValue string `json:"stringValue"`
}

// WriteOTLP serializes the trace as one OTLP/JSON resource-spans
// payload: the trace's resource attributes, one scope, every span
// with its fsct.kind attribute and (for administratively closed
// spans) unclosed=true.
func WriteOTLP(w io.Writer, tr Trace) error {
	spans := make([]otlpSpan, 0, len(tr.Spans))
	for _, sp := range tr.Spans {
		attrs := make([]otlpKeyValue, 0, len(sp.Attrs)+2)
		attrs = append(attrs, otlpKeyValue{Key: "fsct.kind", Value: otlpAnyValue{sp.Kind}})
		for _, a := range sp.Attrs {
			attrs = append(attrs, otlpKeyValue{Key: a.Key, Value: otlpAnyValue{a.Value}})
		}
		if sp.Unclosed {
			attrs = append(attrs, otlpKeyValue{Key: "unclosed", Value: otlpAnyValue{"true"}})
		}
		o := otlpSpan{
			TraceID:    tr.Ctx.Trace.String(),
			SpanID:     sp.ID.String(),
			Name:       sp.Name,
			Kind:       otlpSpanKindInternal,
			StartNano:  strconv.FormatInt(tr.OriginNS+sp.StartNS, 10),
			EndNano:    strconv.FormatInt(tr.OriginNS+sp.EndNS, 10),
			Attributes: attrs,
		}
		if !sp.Parent.IsZero() {
			o.ParentSpanID = sp.Parent.String()
		}
		spans = append(spans, o)
	}
	res := make([]otlpKeyValue, 0, len(tr.Resource))
	for _, a := range tr.Resource {
		res = append(res, otlpKeyValue{Key: a.Key, Value: otlpAnyValue{a.Value}})
	}
	doc := otlpDoc{ResourceSpans: []otlpResourceSpans{{
		Resource:   otlpResource{Attributes: res},
		ScopeSpans: []otlpScopeSpans{{Scope: otlpScope{Name: scopeName}, Spans: spans}},
	}}}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// ReadOTLP loads a trace written by WriteOTLP: the first resource's
// attributes and every span across its scopes. The root span is the
// first span whose parent is absent or not in the payload; the
// trace's origin is the earliest span start, so span offsets come
// back relative to it regardless of the exporter's OriginNS.
func ReadOTLP(r io.Reader) (Trace, error) {
	var tr Trace
	var doc otlpDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return tr, fmt.Errorf("trace: OTLP decode: %w", err)
	}
	if len(doc.ResourceSpans) == 0 {
		return tr, fmt.Errorf("trace: OTLP payload has no resourceSpans")
	}
	rs := doc.ResourceSpans[0]
	for _, kv := range rs.Resource.Attributes {
		tr.Resource = append(tr.Resource, Attr{Key: kv.Key, Value: kv.Value.StringValue})
	}
	var raw []otlpSpan
	for _, ss := range rs.ScopeSpans {
		raw = append(raw, ss.Spans...)
	}
	if len(raw) == 0 {
		return tr, fmt.Errorf("trace: OTLP payload has no spans")
	}

	origin := int64(0)
	starts := make([]int64, len(raw))
	ends := make([]int64, len(raw))
	ids := make(map[SpanID]bool, len(raw))
	for i, o := range raw {
		var err error
		if starts[i], err = strconv.ParseInt(o.StartNano, 10, 64); err != nil {
			return tr, fmt.Errorf("trace: span %s: bad startTimeUnixNano: %v", o.SpanID, err)
		}
		if ends[i], err = strconv.ParseInt(o.EndNano, 10, 64); err != nil {
			return tr, fmt.Errorf("trace: span %s: bad endTimeUnixNano: %v", o.SpanID, err)
		}
		if i == 0 || starts[i] < origin {
			origin = starts[i]
		}
		id, err := parseSpanID(o.SpanID)
		if err != nil {
			return tr, err
		}
		ids[id] = true
	}
	tr.OriginNS = origin

	rootSeen := false
	for i, o := range raw {
		sp := Span{Name: o.Name, StartNS: starts[i] - origin, EndNS: ends[i] - origin}
		var err error
		if sp.ID, err = parseSpanID(o.SpanID); err != nil {
			return tr, err
		}
		if o.ParentSpanID != "" {
			if sp.Parent, err = parseSpanID(o.ParentSpanID); err != nil {
				return tr, err
			}
		}
		for _, kv := range o.Attributes {
			switch kv.Key {
			case "fsct.kind":
				sp.Kind = kv.Value.StringValue
			case "unclosed":
				sp.Unclosed = kv.Value.StringValue == "true"
			default:
				sp.Attrs = append(sp.Attrs, Attr{Key: kv.Key, Value: kv.Value.StringValue})
			}
		}
		if !rootSeen && (sp.Parent.IsZero() || !ids[sp.Parent]) {
			rootSeen = true
			if len(o.TraceID) == 32 {
				hex.Decode(tr.Ctx.Trace[:], []byte(o.TraceID))
			}
			tr.Ctx.Span = sp.ID
			tr.Ctx.Flags = FlagSampled
			tr.Parent = sp.Parent
		}
		tr.Spans = append(tr.Spans, sp)
	}
	return tr, nil
}

// parseSpanID decodes a 16-hex-digit OTLP span ID.
func parseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("trace: span ID %q: want 16 hex digits", s)
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return id, fmt.Errorf("trace: span ID %q: %v", s, err)
	}
	return id, nil
}
