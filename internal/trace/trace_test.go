package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/journal"
)

// mustParse parses a traceparent or fails the test.
func mustParse(t *testing.T, h string) Context {
	t.Helper()
	c, err := Parse(h)
	if err != nil {
		t.Fatalf("Parse(%q): %v", h, err)
	}
	return c
}

func TestParseRoundTrip(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	c := mustParse(t, h)
	if got := c.Traceparent(); got != h {
		t.Errorf("round trip = %q, want %q", got, h)
	}
	if c.Trace.String() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("trace ID = %s", c.Trace)
	}
	if c.Span.String() != "00f067aa0ba902b7" {
		t.Errorf("span ID = %s", c.Span)
	}
	if c.Flags != FlagSampled {
		t.Errorf("flags = %#x", c.Flags)
	}
	if !c.Valid() {
		t.Error("parsed context not Valid")
	}
}

func TestParseLenientAndStrict(t *testing.T) {
	// A future version with a trailing vendor field parses (forward
	// compatibility); whitespace is trimmed.
	if _, err := Parse("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); err != nil {
		t.Errorf("future version rejected: %v", err)
	}
	if _, err := Parse(" 00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01 "); err != nil {
		t.Errorf("padded header rejected: %v", err)
	}
	bad := []string{
		"",
		"not-a-header",
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",       // version ff
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 with extra field
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",       // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",       // zero span
		"00-4bf92f3577b34da6-00f067aa0ba902b7-01",                       // short trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa-01",               // short span
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",       // bad hex
	}
	for _, h := range bad {
		if _, err := Parse(h); err == nil {
			t.Errorf("Parse(%q) accepted, want error", h)
		}
	}
}

func TestNewContext(t *testing.T) {
	a, b := NewContext(), NewContext()
	if !a.Valid() || !b.Valid() {
		t.Fatal("fresh contexts must be valid")
	}
	if a.Trace == b.Trace || a.Span == b.Span {
		t.Error("fresh contexts collide")
	}
	if a.Flags&FlagSampled == 0 {
		t.Error("fresh context not sampled")
	}
	back := mustParse(t, a.Traceparent())
	if back != a {
		t.Errorf("traceparent round trip: got %+v want %+v", back, a)
	}
}

// unitTimeline is a two-unit sharded run: unit 0 with a closed phase
// holding one pool item and one ATPG attempt, unit 1 canceled inside
// an open phase.
func unitTimeline() []journal.Event {
	return []journal.Event{
		{Kind: journal.KindUnitBegin, A: 0, B: 2, C: 0, D: 63, TNS: 1_000},
		{Kind: journal.KindPhaseBegin, Arg: "faultsim.seq", TNS: 2_000},
		{Kind: journal.KindBatch, Arg: "faultsim", Worker: 1, A: 0, B: 4, TNS: 3_000, DurNS: 50_000},
		{Kind: journal.KindATPG, Arg: "atpg.comb", A: 7, B: 0, C: 3, TNS: 60_000, DurNS: 20_000},
		{Kind: journal.KindClassify, A: 7, B: 1, TNS: 70_000}, // instant: no span
		{Kind: journal.KindPhaseEnd, Arg: "faultsim.seq", TNS: 2_000, DurNS: 98_000},
		{Kind: journal.KindUnitEnd, A: 0, B: 2, C: 0, D: 63, TNS: 1_000, DurNS: 100_000},
		{Kind: journal.KindUnitBegin, A: 1, B: 2, C: 63, D: 126, TNS: 110_000},
		{Kind: journal.KindPhaseBegin, Arg: "faultsim.seq", TNS: 111_000},
	}
}

func TestAssembleTree(t *testing.T) {
	ctx := mustParse(t, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	var parent SpanID
	parent[7] = 0xaa
	spans := Assemble(ctx, parent, "job j000001", unitTimeline(), 150_000)

	// root + unit0 + phase + pool + atpg + unit1 + open phase = 7
	if len(spans) != 7 {
		t.Fatalf("got %d spans, want 7: %+v", len(spans), spans)
	}
	root := spans[0]
	if root.Kind != SpanRoot || root.ID != ctx.Span || root.Parent != parent {
		t.Errorf("root span = %+v", root)
	}
	if root.StartNS != 0 || root.EndNS != 150_000 {
		t.Errorf("root interval = [%d,%d]", root.StartNS, root.EndNS)
	}
	find := func(name, kind string, unclosed bool) Span {
		t.Helper()
		for _, sp := range spans {
			if sp.Name == name && sp.Kind == kind && sp.Unclosed == unclosed {
				return sp
			}
		}
		t.Fatalf("no span %s/%s (unclosed=%v) in %+v", name, kind, unclosed, spans)
		return Span{}
	}
	u0 := find("unit 0", SpanUnit, false)
	if u0.Parent != root.ID {
		t.Errorf("unit 0 parents to %s, want root %s", u0.Parent, root.ID)
	}
	if u0.StartNS != 1_000 || u0.EndNS != 101_000 {
		t.Errorf("unit 0 = %+v", u0)
	}
	ph := find("faultsim.seq", SpanPhase, false)
	if ph.Parent != u0.ID {
		t.Errorf("closed phase parents to %s, want unit 0 %s", ph.Parent, u0.ID)
	}
	pool := find("faultsim", SpanPool, false)
	if pool.Parent != ph.ID {
		t.Errorf("pool item parents to %s, want its phase %s", pool.Parent, ph.ID)
	}
	atpg := find("atpg.comb", SpanATPG, false)
	if atpg.Parent != ph.ID {
		t.Errorf("ATPG attempt parents to %s, want its phase %s", atpg.Parent, ph.ID)
	}
	u1 := find("unit 1", SpanUnit, true)
	if !u1.Unclosed || u1.EndNS != 150_000 {
		t.Errorf("canceled unit 1 = %+v (want unclosed, end at timeline end)", u1)
	}
	// All span IDs unique and nonzero.
	seen := map[SpanID]bool{}
	for _, sp := range spans {
		if sp.ID.IsZero() || seen[sp.ID] {
			t.Errorf("span %q: bad or duplicate ID %s", sp.Name, sp.ID)
		}
		seen[sp.ID] = true
	}
	// Deterministic: same inputs, same spans.
	again := Assemble(ctx, parent, "job j000001", unitTimeline(), 150_000)
	if !reflect.DeepEqual(spans, again) {
		t.Error("Assemble is not deterministic")
	}
}

func TestAssembleLostEvents(t *testing.T) {
	ctx := NewContext()
	// End events without begins (begins dropped at the buffer cap).
	events := []journal.Event{
		{Kind: journal.KindPhaseEnd, Arg: "screen", TNS: 1_000, DurNS: 10_000},
		{Kind: journal.KindUnitEnd, A: 3, B: 4, C: 189, D: 252, TNS: 20_000, DurNS: 5_000},
	}
	spans := Assemble(ctx, SpanID{}, "run", events, 0)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for _, sp := range spans[1:] {
		if sp.Parent != spans[0].ID {
			t.Errorf("orphan %q parents to %s, want root", sp.Name, sp.Parent)
		}
		if sp.Unclosed {
			t.Errorf("synthesized span %q marked unclosed", sp.Name)
		}
	}
	if spans[0].EndNS != 25_000 {
		t.Errorf("root end = %d, want raised to cover latest event (25000)", spans[0].EndNS)
	}
}

func TestOTLPRoundTrip(t *testing.T) {
	ctx := mustParse(t, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	var parent SpanID
	parent[0] = 0x11
	spans := Assemble(ctx, parent, "fsctest", unitTimeline(), 150_000)
	tr := Trace{
		Ctx: ctx, Parent: parent,
		Resource: []Attr{{"run_id", "r-1"}, {"circuit", "s3384"}},
		Spans:    spans,
	}
	var buf bytes.Buffer
	if err := WriteOTLP(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"resourceSpans"`) {
		t.Fatal("payload missing resourceSpans")
	}
	got, err := ReadOTLP(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Ctx.Trace != ctx.Trace || got.Ctx.Span != ctx.Span {
		t.Errorf("context: got %+v, want %+v", got.Ctx, ctx)
	}
	if got.Parent != parent {
		t.Errorf("root parent: got %s, want %s", got.Parent, parent)
	}
	if !reflect.DeepEqual(got.Resource, tr.Resource) {
		t.Errorf("resource: got %+v, want %+v", got.Resource, tr.Resource)
	}
	if len(got.Spans) != len(spans) {
		t.Fatalf("got %d spans, want %d", len(got.Spans), len(spans))
	}
	for i, sp := range got.Spans {
		want := spans[i]
		// Pool/ATPG leaves have no Attrs slice after round trip only if
		// they had none; compare the identity and interval fields.
		if sp.Name != want.Name || sp.Kind != want.Kind || sp.ID != want.ID ||
			sp.Parent != want.Parent || sp.StartNS != want.StartNS ||
			sp.EndNS != want.EndNS || sp.Unclosed != want.Unclosed {
			t.Errorf("span %d: got %+v, want %+v", i, sp, want)
		}
	}
}

func TestReadOTLPErrors(t *testing.T) {
	for _, in := range []string{"", "{}", `{"resourceSpans":[]}`,
		`{"resourceSpans":[{"scopeSpans":[{"spans":[]}]}]}`} {
		if _, err := ReadOTLP(strings.NewReader(in)); err == nil {
			t.Errorf("ReadOTLP(%q) accepted, want error", in)
		}
	}
}

// parallelUnits builds a synthetic 3-unit trace shaped like a future
// cross-process sharded run: units overlap in time and the slowest
// one (unit 1) finishes last, so the critical path must descend into
// it and its dominant phase.
func parallelUnits() []Span {
	id := func(b byte) SpanID { return SpanID{7: b} }
	return []Span{
		{Name: "job j000042", Kind: SpanRoot, ID: id(1), StartNS: 0, EndNS: 1_000_000},
		{Name: "unit 0", Kind: SpanUnit, ID: id(2), Parent: id(1), StartNS: 10_000, EndNS: 400_000},
		{Name: "unit 1", Kind: SpanUnit, ID: id(3), Parent: id(1), StartNS: 10_000, EndNS: 990_000},
		{Name: "unit 2", Kind: SpanUnit, ID: id(4), Parent: id(1), StartNS: 10_000, EndNS: 600_000},
		{Name: "faultsim.seq", Kind: SpanPhase, ID: id(5), Parent: id(3), StartNS: 20_000, EndNS: 970_000},
		{Name: "faultsim", Kind: SpanPool, ID: id(6), Parent: id(5), StartNS: 30_000, EndNS: 500_000},
		{Name: "faultsim", Kind: SpanPool, ID: id(7), Parent: id(5), StartNS: 400_000, EndNS: 960_000},
		{Name: "faultsim.seq", Kind: SpanPhase, ID: id(8), Parent: id(2), StartNS: 20_000, EndNS: 390_000},
	}
}

func TestBuildTreeAndCriticalPath(t *testing.T) {
	root := BuildTree(parallelUnits())
	if root == nil || root.Span.Name != "job j000042" {
		t.Fatalf("root = %+v", root)
	}
	if len(root.Children) != 3 {
		t.Fatalf("root has %d children, want 3 units", len(root.Children))
	}
	path := CriticalPath(root)
	var names []string
	for _, n := range path {
		names = append(names, n.Span.Name)
	}
	want := []string{"job j000042", "unit 1", "faultsim.seq", "faultsim"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("critical path = %v, want %v", names, want)
	}
	// The chain must end at the last pool item of the slowest unit.
	if last := path[len(path)-1].Span; last.EndNS != 960_000 {
		t.Errorf("critical path tail ends at %d, want 960000", last.EndNS)
	}
}

func TestSelfNS(t *testing.T) {
	root := BuildTree(parallelUnits())
	// unit 1's phase: duration 950_000, children cover [30k,500k] and
	// [400k,960k] -> union [30k,960k] = 930_000; self = 20_000.
	var phase *Node
	for _, u := range root.Children {
		if u.Span.Name == "unit 1" {
			phase = u.Children[0]
		}
	}
	if phase == nil {
		t.Fatal("unit 1 phase not found")
	}
	if got := SelfNS(phase); got != 20_000 {
		t.Errorf("phase self time = %d, want 20000", got)
	}
	// A leaf's self time is its full duration.
	leaf := phase.Children[0]
	if got := SelfNS(leaf); got != leaf.Span.DurNS() {
		t.Errorf("leaf self = %d, want %d", got, leaf.Span.DurNS())
	}
	// Root: children (units) cover [10k,990k] = 980_000 of 1_000_000.
	if got := SelfNS(root); got != 20_000 {
		t.Errorf("root self = %d, want 20000", got)
	}
}

func TestDeriveSpanStability(t *testing.T) {
	ctx := mustParse(t, "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	a := deriveSpan(ctx.Trace, ctx.Span, 1)
	b := deriveSpan(ctx.Trace, ctx.Span, 1)
	c := deriveSpan(ctx.Trace, ctx.Span, 2)
	if a != b {
		t.Error("deriveSpan not deterministic")
	}
	if a == c {
		t.Error("deriveSpan collides across sequence numbers")
	}
	if a.IsZero() || c.IsZero() {
		t.Error("derived span ID is zero")
	}
}
