// Package trace gives runs a distributed identity: W3C trace-context
// (traceparent) encoding and parsing, and the upgrade path from the
// journal's span-shaped events to real spans with parent linkage.
//
// The model is deliberately small. A Context names one position in a
// distributed trace (128-bit trace ID, 64-bit span ID, sampling
// flags) and travels as the `traceparent` header of the W3C Trace
// Context specification — inbound on fsctd job submissions, outbound
// stamped through task.Spec so future cross-process shards join the
// same trace. Assemble replays a journal event buffer into a span
// tree under such a context: one root span per CLI invocation or
// daemon job, a child span per task unit, nested phase spans, and
// leaf spans for worker-pool items and ATPG attempts. The OTLP
// writer (otlp.go) serializes the result in the OpenTelemetry
// OTLP/JSON shape without importing any OpenTelemetry code, and the
// analysis helpers (critpath.go) answer the operator questions —
// critical path, self time, stragglers — that motivate tracing in
// the first place.
//
// Everything here is offline: spans are assembled from the journal
// after (or during) a run, never allocated on hot paths, so the
// tracing layer adds zero cost to execution beyond the journal
// events the flow already emits.
package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/journal"
)

// TraceID is a 128-bit trace identity shared by every span of one
// distributed trace. The all-zero value is invalid per the W3C spec.
type TraceID [16]byte

// IsZero reports whether the trace ID is the invalid all-zero value.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a 64-bit span identity, unique within its trace. The
// all-zero value is invalid as an identity and doubles as "no parent"
// in parent-linkage fields.
type SpanID [8]byte

// IsZero reports whether the span ID is the all-zero value.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// FlagSampled is the trace-flags bit indicating the caller recorded
// this trace; contexts minted here always set it.
const FlagSampled = 0x01

// Context is one position in a distributed trace: the trace it
// belongs to, the span that owns the current operation, and the W3C
// trace flags. The zero Context is "no trace" (Valid reports false).
type Context struct {
	Trace TraceID
	Span  SpanID
	Flags byte
}

// Valid reports whether the context carries a usable identity: a
// nonzero trace ID and a nonzero span ID.
func (c Context) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// Traceparent renders the context as a W3C traceparent header value,
// version 00: "00-<32 hex trace>-<16 hex span>-<2 hex flags>".
func (c Context) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-%02x", c.Trace, c.Span, c.Flags)
}

// NewContext mints a fresh root context — random trace and span IDs,
// sampled — for a run that was not handed an inbound traceparent.
func NewContext() Context {
	var c Context
	mustRand(c.Trace[:])
	mustRand(c.Span[:])
	c.Flags = FlagSampled
	return c
}

// NewSpanID mints a fresh random span ID, used when a run joins an
// existing trace and needs its own span under the inbound parent.
func NewSpanID() SpanID {
	var s SpanID
	mustRand(s[:])
	return s
}

// mustRand fills b from crypto/rand, retrying the (theoretical)
// all-zero draw; rand.Read never fails on supported platforms.
func mustRand(b []byte) {
	for {
		if _, err := rand.Read(b); err != nil {
			panic("trace: crypto/rand failed: " + err.Error())
		}
		for _, v := range b {
			if v != 0 {
				return
			}
		}
	}
}

// Parse decodes a W3C traceparent header value. It accepts version 00
// exactly and tolerates higher versions (per the spec's forward-
// compatibility rule) by reading the leading version-00 fields;
// version ff, malformed hex, wrong field lengths and all-zero trace
// or span IDs are errors. Callers on lenient paths (inbound HTTP
// headers) should ignore the error and proceed untraced; strict paths
// (task.Spec validation) surface it.
func Parse(header string) (Context, error) {
	var c Context
	h := strings.TrimSpace(header)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return c, fmt.Errorf("trace: traceparent %q: want version-traceid-spanid-flags", h)
	}
	ver, err := hexByte(parts[0])
	if err != nil {
		return c, fmt.Errorf("trace: traceparent %q: bad version: %v", h, err)
	}
	if ver == 0xff {
		return c, fmt.Errorf("trace: traceparent %q: version ff is invalid", h)
	}
	if ver == 0 && len(parts) != 4 {
		return c, fmt.Errorf("trace: traceparent %q: version 00 takes exactly four fields", h)
	}
	if len(parts[1]) != 32 {
		return c, fmt.Errorf("trace: traceparent %q: trace ID must be 32 hex digits", h)
	}
	if _, err := hex.Decode(c.Trace[:], []byte(parts[1])); err != nil {
		return c, fmt.Errorf("trace: traceparent %q: bad trace ID: %v", h, err)
	}
	if len(parts[2]) != 16 {
		return c, fmt.Errorf("trace: traceparent %q: span ID must be 16 hex digits", h)
	}
	if _, err := hex.Decode(c.Span[:], []byte(parts[2])); err != nil {
		return c, fmt.Errorf("trace: traceparent %q: bad span ID: %v", h, err)
	}
	if c.Trace.IsZero() || c.Span.IsZero() {
		return c, fmt.Errorf("trace: traceparent %q: all-zero IDs are invalid", h)
	}
	if c.Flags, err = hexByte(parts[3]); err != nil {
		return c, fmt.Errorf("trace: traceparent %q: bad flags: %v", h, err)
	}
	return c, nil
}

// hexByte decodes exactly two lowercase-or-uppercase hex digits.
func hexByte(s string) (byte, error) {
	if len(s) != 2 {
		return 0, fmt.Errorf("want 2 hex digits, got %q", s)
	}
	var b [1]byte
	if _, err := hex.Decode(b[:], []byte(s)); err != nil {
		return 0, err
	}
	return b[0], nil
}

// Attr is one string-valued span or resource attribute.
type Attr struct {
	Key   string
	Value string
}

// Span kinds, stored in Span.Kind and exported as the fsct.kind
// attribute: the root (CLI invocation or daemon job), one task unit,
// one instrumented phase, one worker-pool item, one ATPG attempt.
const (
	SpanRoot  = "root"
	SpanUnit  = "unit"
	SpanPhase = "phase"
	SpanPool  = "pool"
	SpanATPG  = "atpg"
)

// Span is one assembled span. Start and end are nanosecond offsets
// from the trace origin (the journal recorder's clock origin), not
// wall-clock times; the OTLP writer adds the origin back in. Parent
// is zero only for a root span with no inbound context.
type Span struct {
	Name     string
	Kind     string
	ID       SpanID
	Parent   SpanID
	StartNS  int64
	EndNS    int64
	Unclosed bool // closed administratively at trace end (cancel, crash)
	Attrs    []Attr
}

// DurNS returns the span's wall time in nanoseconds.
func (s Span) DurNS() int64 { return s.EndNS - s.StartNS }

// Assemble upgrades a journal event buffer into a span tree under the
// given context: spans[0] is the root span (named rootName, ID
// ctx.Span, parented to the inbound parent when nonzero) covering
// [0, endNS]; unit begin/end events become unit spans under the root;
// phase begin/end events become nested phase spans; worker-pool items
// and ATPG attempts become leaf spans under the innermost open span.
// Instant events (notes, classifications, detections, cache lookups)
// carry no duration and are skipped.
//
// endNS is the timeline end (the recorder's elapsed offset); it is
// raised to cover the latest event if events outrun it. Spans still
// open when the buffer ends — a canceled or crashed run — are closed
// at their parent's end and marked Unclosed, so partial traces remain
// well-formed trees.
//
// Span IDs are derived deterministically from the context and the
// assembly sequence (deriveSpan), so re-assembling the same buffer
// under the same context yields identical spans.
func Assemble(ctx Context, parent SpanID, rootName string, events []journal.Event, endNS int64) []Span {
	for _, e := range events {
		if end := e.TNS + e.DurNS; end > endNS {
			endNS = end
		}
	}
	spans := make([]Span, 1, len(events)/2+1)
	spans[0] = Span{Name: rootName, Kind: SpanRoot, ID: ctx.Span, Parent: parent, EndNS: endNS}

	var seq uint64
	next := func() SpanID {
		seq++
		return deriveSpan(ctx.Trace, ctx.Span, seq)
	}
	// stack holds the indices of the open span chain; stack[0] is the
	// root. Open spans have EndNS < 0 until closed.
	stack := []int{0}
	top := func() *Span { return &spans[stack[len(stack)-1]] }
	// closeAbove closes every open span stacked above position keep at
	// offset t, marking it unclosed: its end event never arrived
	// (dropped, or the run was canceled inside it).
	closeAbove := func(keep int, t int64) {
		for len(stack) > keep+1 {
			sp := &spans[stack[len(stack)-1]]
			if sp.EndNS < 0 {
				sp.EndNS = t
				sp.Unclosed = true
			}
			stack = stack[:len(stack)-1]
		}
	}

	for _, e := range events {
		switch e.Kind {
		case journal.KindUnitBegin:
			// Units never nest; an open unit here means its end event
			// was lost. Unwind to the root before opening the next.
			closeAbove(0, e.TNS)
			spans = append(spans, Span{
				Name: "unit " + strconv.FormatInt(e.A, 10), Kind: SpanUnit,
				ID: next(), Parent: spans[0].ID,
				StartNS: e.TNS, EndNS: -1, Attrs: unitAttrs(e),
			})
			stack = append(stack, len(spans)-1)
		case journal.KindUnitEnd:
			name := "unit " + strconv.FormatInt(e.A, 10)
			if k := openIndex(spans, stack, SpanUnit, name); k >= 0 {
				end := e.TNS + e.DurNS
				closeAbove(k, end)
				sp := &spans[stack[k]]
				sp.EndNS = end
				sp.Attrs = unitAttrs(e) // lo/hi now resolved
				stack = stack[:k]
			} else {
				// Begin event lost: synthesize the closed unit span.
				spans = append(spans, Span{
					Name: name, Kind: SpanUnit, ID: next(), Parent: spans[0].ID,
					StartNS: e.TNS, EndNS: e.TNS + e.DurNS, Attrs: unitAttrs(e),
				})
			}
		case journal.KindPhaseBegin:
			spans = append(spans, Span{
				Name: e.Arg, Kind: SpanPhase, ID: next(), Parent: top().ID,
				StartNS: e.TNS, EndNS: -1,
			})
			stack = append(stack, len(spans)-1)
		case journal.KindPhaseEnd:
			if k := openIndex(spans, stack, SpanPhase, e.Arg); k >= 0 {
				end := e.TNS + e.DurNS
				closeAbove(k, end)
				spans[stack[k]].EndNS = end
				stack = stack[:k]
			} else {
				// No matching open phase (begin dropped): the end event
				// carries the full span; record it closed.
				spans = append(spans, Span{
					Name: e.Arg, Kind: SpanPhase, ID: next(), Parent: top().ID,
					StartNS: e.TNS, EndNS: e.TNS + e.DurNS,
				})
			}
		case journal.KindBatch:
			spans = append(spans, Span{
				Name: e.Arg, Kind: SpanPool, ID: next(), Parent: top().ID,
				StartNS: e.TNS, EndNS: e.TNS + e.DurNS,
				Attrs: []Attr{{"worker", strconv.FormatInt(int64(e.Worker), 10)}},
			})
		case journal.KindATPG:
			spans = append(spans, Span{
				Name: e.Arg, Kind: SpanATPG, ID: next(), Parent: top().ID,
				StartNS: e.TNS, EndNS: e.TNS + e.DurNS,
			})
		}
	}
	closeAbove(0, endNS)
	return spans
}

// openIndex finds the topmost open span of the given kind and name on
// the stack (searching innermost-first, skipping the root) and
// returns its stack position, or -1.
func openIndex(spans []Span, stack []int, kind, name string) int {
	for k := len(stack) - 1; k >= 1; k-- {
		sp := &spans[stack[k]]
		if sp.EndNS < 0 && sp.Kind == kind && sp.Name == name {
			return k
		}
	}
	return -1
}

// unitAttrs renders a unit event's payload (index, plan unit count,
// fault-axis slice) as span attributes; hi is -1 until the executor
// resolves the whole-axis sentinel.
func unitAttrs(e journal.Event) []Attr {
	return []Attr{
		{"unit.index", strconv.FormatInt(e.A, 10)},
		{"unit.count", strconv.FormatInt(e.B, 10)},
		{"unit.lo", strconv.FormatInt(e.C, 10)},
		{"unit.hi", strconv.FormatInt(e.D, 10)},
	}
}

// deriveSpan returns the deterministic span ID for assembly step seq
// of the trace rooted at (t, root): FNV-1a over the two identities
// and the sequence number, with the all-zero output (never observed,
// but invalid) patched to a nonzero value. Determinism matters
// because a trace may be assembled more than once — live via the HTTP
// endpoint and again at export — and both views must agree.
func deriveSpan(t TraceID, root SpanID, seq uint64) SpanID {
	h := fnv.New64a()
	h.Write(t[:])
	h.Write(root[:])
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seq >> (8 * i))
	}
	h.Write(b[:])
	var s SpanID
	v := h.Sum64()
	for i := 0; i < 8; i++ {
		s[i] = byte(v >> (8 * i))
	}
	if s.IsZero() {
		s[7] = 1
	}
	return s
}
