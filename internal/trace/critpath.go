// Critical-path analysis over an assembled span tree: the operator
// questions a trace exists to answer. BuildTree resolves parent
// linkage into a tree, CriticalPath walks the last-finisher chain
// (the spans that gated the run's wall time), and SelfNS splits a
// span's duration into own work vs time covered by children — the
// inputs for straggler attribution and per-phase self/child
// accounting in fsctstats trace.

package trace

import "sort"

// Node is one span resolved into the trace's tree, children ordered
// by start offset.
type Node struct {
	Span     *Span
	Children []*Node
}

// BuildTree links spans (as returned by Assemble or ReadOTLP) into a
// tree and returns the root: the first span whose parent is absent
// from the set. Later parentless spans and spans whose parent is
// missing — possible in truncated traces — attach under the root so
// no span is silently lost. Returns nil on an empty slice.
func BuildTree(spans []Span) *Node {
	if len(spans) == 0 {
		return nil
	}
	nodes := make([]*Node, len(spans))
	byID := make(map[SpanID]*Node, len(spans))
	for i := range spans {
		nodes[i] = &Node{Span: &spans[i]}
		byID[spans[i].ID] = nodes[i]
	}
	var root *Node
	for i, n := range nodes {
		p := spans[i].Parent
		if parent, ok := byID[p]; ok && parent != n && !p.IsZero() {
			parent.Children = append(parent.Children, n)
			continue
		}
		if root == nil {
			root = n
		} else {
			root.Children = append(root.Children, n)
		}
	}
	var order func(n *Node)
	order = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool {
			return n.Children[i].Span.StartNS < n.Children[j].Span.StartNS
		})
		for _, c := range n.Children {
			order(c)
		}
	}
	if root != nil {
		order(root)
	}
	return root
}

// CriticalPath returns the last-finisher chain from the root down to
// a leaf: at every level, the child whose span ends last (ties broken
// toward the later start). That chain is the set of spans that gated
// the trace's wall time — shortening any other span cannot finish the
// run earlier. Returns nil on a nil root.
func CriticalPath(root *Node) []*Node {
	if root == nil {
		return nil
	}
	path := []*Node{root}
	n := root
	for len(n.Children) > 0 {
		best := n.Children[0]
		for _, c := range n.Children[1:] {
			if c.Span.EndNS > best.Span.EndNS ||
				(c.Span.EndNS == best.Span.EndNS && c.Span.StartNS > best.Span.StartNS) {
				best = c
			}
		}
		path = append(path, best)
		n = best
	}
	return path
}

// SelfNS returns the span's self time: its duration minus the union
// of its children's intervals (clamped to the span, overlaps counted
// once). For a phase, this is the time the phase spent outside its
// instrumented sub-spans — merge work, serialization, scheduling.
func SelfNS(n *Node) int64 {
	if n == nil {
		return 0
	}
	type iv struct{ lo, hi int64 }
	ivs := make([]iv, 0, len(n.Children))
	for _, c := range n.Children {
		lo, hi := c.Span.StartNS, c.Span.EndNS
		if lo < n.Span.StartNS {
			lo = n.Span.StartNS
		}
		if hi > n.Span.EndNS {
			hi = n.Span.EndNS
		}
		if hi > lo {
			ivs = append(ivs, iv{lo, hi})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered int64
	var curLo, curHi int64
	for i, v := range ivs {
		if i == 0 || v.lo > curHi {
			covered += curHi - curLo
			curLo, curHi = v.lo, v.hi
			continue
		}
		if v.hi > curHi {
			curHi = v.hi
		}
	}
	covered += curHi - curLo
	self := n.Span.DurNS() - covered
	if self < 0 {
		self = 0
	}
	return self
}
