package diagnose

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/scan"
	"repro/internal/tpi"
)

func buildDesign(t *testing.T, chains int) *scan.Design {
	t.Helper()
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: chains, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiagnoseRoundTrip: for every chain-affecting fault, a simulated
// failing device must match its own dictionary entry, and the localized
// suspects must cover the fault's true locations.
func TestDiagnoseRoundTrip(t *testing.T) {
	d := buildDesign(t, 1)
	all := fault.Collapsed(d.C)
	screened := core.Screen(d, all)
	var affecting []fault.Fault
	truth := map[fault.Fault][]core.Location{}
	for _, s := range screened {
		if s.Cat != core.Cat3 {
			affecting = append(affecting, s.Fault)
			truth[s.Fault] = s.Locs
		}
	}
	dict := Build(d, affecting, DefaultSequences(d, 7))

	diagnosable := 0
	for _, f := range affecting {
		hidden := f
		sig := dict.Observe(&SimulatedDevice{C: d.C, Hidden: &hidden})
		if sig == dict.GoodSignature() {
			// The fault does not show on the diagnostic set — it cannot
			// be diagnosed by response matching (it may need the full
			// ATPG flow even to detect).
			continue
		}
		diagnosable++
		matches := dict.Match(sig)
		found := false
		for _, m := range matches {
			if m == f {
				found = true
			}
		}
		if !found {
			t.Errorf("fault %s not among its own matches", f.Describe(d.C))
			continue
		}
		suspects := dict.Localize(sig)
		if len(truth[f]) == 0 {
			continue
		}
		for _, loc := range truth[f] {
			covered := false
			for _, sus := range suspects {
				if sus.Chain == loc.Chain && sus.LoSeg <= loc.Seg && loc.Seg <= sus.HiSeg {
					covered = true
				}
			}
			if !covered {
				t.Errorf("fault %s: true location %+v not covered by suspects %+v",
					f.Describe(d.C), loc, suspects)
			}
		}
	}
	if diagnosable < len(affecting)/2 {
		t.Errorf("only %d of %d affecting faults diagnosable", diagnosable, len(affecting))
	}
}

func TestGoodDeviceMatchesGoodSignature(t *testing.T) {
	d := buildDesign(t, 1)
	dict := Build(d, fault.Collapsed(d.C)[:10], DefaultSequences(d, 3))
	sig := dict.Observe(&SimulatedDevice{C: d.C})
	if sig != dict.GoodSignature() {
		t.Error("fault-free device does not match the good signature")
	}
	if len(dict.Match(sig)) > 0 {
		// A fault whose behaviour equals fault-free on the diagnostic
		// set would collide; s27's first ten faults should not.
		t.Log("note: some candidate faults are indistinguishable from fault-free")
	}
}

// TestEquivalentFaultsShareSignature: two faults made equivalent by
// construction must land in the same dictionary bucket.
func TestEquivalentFaultsShareSignature(t *testing.T) {
	d := buildDesign(t, 1)
	all := fault.All(d.C) // uncollapsed: contains equivalent pairs
	dict := Build(d, all, DefaultSequences(d, 5))
	seen := map[Signature]int{}
	for _, s := range dict.sigs {
		seen[s]++
	}
	collided := 0
	for _, n := range seen {
		if n > 1 {
			collided += n
		}
	}
	if collided == 0 {
		t.Error("no equivalent faults share a signature — suspicious for an uncollapsed list")
	}
}

func TestDiagnoseMultiChain(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "diag", PIs: 6, POs: 5, FFs: 10, Gates: 140}, 3)
	d, err := tpi.Insert(c, tpi.Options{NumChains: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	all := fault.Collapsed(d.C)
	screened := core.Screen(d, all)
	var affecting []fault.Fault
	for _, s := range screened {
		if s.Cat != core.Cat3 {
			affecting = append(affecting, s.Fault)
		}
	}
	dict := Build(d, affecting, DefaultSequences(d, 11))
	hits := 0
	for _, f := range affecting {
		hidden := f
		sig := dict.Observe(&SimulatedDevice{C: d.C, Hidden: &hidden})
		if sig == dict.GoodSignature() {
			continue
		}
		for _, m := range dict.Match(sig) {
			if m == f {
				hits++
				break
			}
		}
	}
	if hits == 0 {
		t.Error("no faults diagnosed on the generated design")
	}
}

func TestEmptyDictionary(t *testing.T) {
	d := buildDesign(t, 1)
	dict := Build(d, nil, DefaultSequences(d, 1))
	if got := dict.Match(dict.GoodSignature()); len(got) != 0 {
		t.Errorf("empty dictionary matched %d faults", len(got))
	}
	if dict.Localize(Signature(12345)) != nil {
		t.Error("unknown signature localized")
	}
}

// TestBuildOptWorkerInvariance pins the determinism contract: the
// dictionary (per-fault signatures and the good reference) is
// byte-identical at any worker count, on a circuit large enough for
// several 63-fault batches.
func TestBuildOptWorkerInvariance(t *testing.T) {
	c := gen.Generate(gen.Suite()[0].Scale(0.2), 3)
	d, err := tpi.Insert(c, tpi.Options{NumChains: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var affecting []fault.Fault
	for _, s := range core.Screen(d, fault.Collapsed(d.C)) {
		if s.Cat != core.Cat3 {
			affecting = append(affecting, s.Fault)
		}
	}
	if len(affecting) < 64 {
		t.Fatalf("want >63 affecting faults for a multi-batch test, got %d", len(affecting))
	}
	seqs := DefaultSequences(d, 7)
	ref := BuildOpt(d, affecting, seqs, 1)
	for _, w := range []int{2, 4, 0} {
		got := BuildOpt(d, affecting, seqs, w)
		if got.good != ref.good {
			t.Errorf("workers=%d: good signature %016x != %016x", w, got.good, ref.good)
		}
		for i := range affecting {
			if got.sigs[i] != ref.sigs[i] {
				t.Fatalf("workers=%d: fault %d signature differs", w, i)
			}
		}
	}
}
