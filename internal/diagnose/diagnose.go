// Package diagnose locates scan-chain corruption: given a functional
// scan design and the observed responses of a failing device, it matches
// the observation against a fault dictionary built by parallel fault
// simulation and reports the candidate faults together with the chain
// locations they corrupt (from the screening analysis).
//
// This is the natural companion to the paper's methodology: the
// screening step already computes, per fault, *where* the chain is
// affected; the dictionary turns that map around — from observed
// misbehaviour back to suspect segments — which is what a failure
// analyst needs when a functional scan chain fails in silicon.
package diagnose

import (
	"context"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/scan"
	"repro/internal/sim"
)

// Signature is a compact digest of a device's response to the
// diagnostic sequences: an FNV-64 hash over every (cycle, output) value.
type Signature uint64

// Dictionary maps response signatures to candidate faults.
type Dictionary struct {
	Design *scan.Design
	Faults []fault.Fault
	Seqs   [][][]logic.V // diagnostic test sequences

	sigs   []Signature // per fault
	byHash map[Signature][]int
	good   Signature
}

// DefaultSequences returns the diagnostic stimulus set: the alternating
// shift test plus deterministic pseudo-random scan-mode sequences.
func DefaultSequences(d *scan.Design, seed uint64) [][][]logic.V {
	seqs := [][][]logic.V{d.AlternatingSequence(8)}
	rng := seed | 1
	next := func() logic.V {
		rng = rng*6364136223846793005 + 1442695040888963407
		return logic.V((rng >> 33) & 1)
	}
	for k := 0; k < 2; k++ {
		n := 3*d.MaxChainLen() + 32
		seq := make([][]logic.V, n)
		for t := range seq {
			pi := d.BaselinePI()
			for i, in := range d.C.Inputs {
				if _, pinned := d.Assignments[in]; !pinned {
					pi[i] = next()
				}
			}
			seq[t] = pi
		}
		seqs = append(seqs, seq)
	}
	return seqs
}

// Build simulates every candidate fault against the diagnostic
// sequences (63 machines per packed pass) and indexes the signatures.
// It is BuildOpt at the serial width.
func Build(d *scan.Design, faults []fault.Fault, seqs [][][]logic.V) *Dictionary {
	return BuildOpt(d, faults, seqs, 1)
}

// BuildOpt is Build with the 63-fault batches sharded across workers
// goroutines (0 = GOMAXPROCS, 1 = serial). Every fault's hash state
// lives in its own slot and a fault belongs to exactly one batch, so
// the dictionary is identical at any worker count; the fault-free
// machine is hashed by whichever worker runs the first batch (every
// batch's lane 0 simulates the same fault-free device).
func BuildOpt(d *scan.Design, faults []fault.Fault, seqs [][][]logic.V, workers int) *Dictionary {
	dict, _ := BuildOptCtx(nil, d, faults, seqs, workers)
	return dict
}

// BuildOptCtx is BuildOpt with cooperative cancellation: workers stop
// claiming fault batches once ctx fires and the context error is
// returned. A cancelled build yields a dictionary whose unsimulated
// faults carry the empty-trace signature — callers should discard it
// when err is non-nil. The compiled program is drawn from the shared
// artifact cache, so building a dictionary for a circuit the flow
// already ran on costs no recompilation.
func BuildOptCtx(ctx context.Context, d *scan.Design, faults []fault.Fault, seqs [][][]logic.V, workers int) (*Dictionary, error) {
	return BuildObsCtx(ctx, d, faults, seqs, workers, nil)
}

// BuildObsCtx is BuildOptCtx with observability: when col is non-nil
// the build's worker pool reports utilization (and, with a journal
// attached, per-batch flight-recorder events) under the "diagnose"
// pool, and the artifact-cache probe is accounted. A nil collector
// makes it exactly BuildOptCtx.
func BuildObsCtx(ctx context.Context, d *scan.Design, faults []fault.Fault, seqs [][][]logic.V, workers int, col *obs.Collector) (*Dictionary, error) {
	dict := &Dictionary{
		Design: d,
		Faults: faults,
		Seqs:   seqs,
		sigs:   make([]Signature, len(faults)),
		byHash: make(map[Signature][]int),
	}
	hashers := make([]hasher, len(faults)+1) // last entry: fault-free machine

	// Broadcast the stimulus to packed words once; every worker reads it.
	seqW := make([][][]logic.Word, len(seqs))
	for si, seq := range seqs {
		seqW[si] = make([][]logic.Word, len(seq))
		for t, pi := range seq {
			w := make([]logic.Word, len(pi))
			for i, v := range pi {
				w[i] = logic.WordAll(v)
			}
			seqW[si][t] = w
		}
	}

	prog := engine.Default().ForObs(d.C, col).Program(col)
	batches := par.Chunks(len(faults), 63)
	workers = par.Workers(workers)
	if workers > len(batches) {
		workers = len(batches)
	}
	type wstate struct {
		ps   *sim.CompiledSeq
		poW  []logic.Word
		injs []sim.LaneInject
	}
	states := make([]*wstate, workers)
	runBatch := func(st *wstate, base, n int, hashGood bool) {
		st.injs = st.injs[:0]
		for k := 0; k < n; k++ {
			st.injs = append(st.injs, sim.LaneInject{Inject: faults[base+k].Inject(), Lane: uint(k + 1)})
		}
		ps := st.ps
		ps.SetInjections(st.injs)
		for _, seq := range seqW {
			ps.ResetX()
			for _, piW := range seq {
				st.poW = ps.Cycle(piW, st.poW)
				for _, w := range st.poW {
					if hashGood {
						hashers[len(faults)].add(w.Get(0))
					}
					for k := 0; k < n; k++ {
						hashers[base+k].add(w.Get(uint(k + 1)))
					}
				}
			}
		}
	}
	var err error
	if len(batches) == 0 {
		// No candidates: still hash the fault-free reference.
		runBatch(&wstate{ps: sim.NewCompiledSeqFrom(prog)}, 0, 0, true)
		if ctx != nil {
			err = ctx.Err()
		}
	} else {
		body := func(worker, bi int) {
			st := states[worker]
			if st == nil {
				st = &wstate{ps: sim.NewCompiledSeqFrom(prog), injs: make([]sim.LaneInject, 0, 63)}
				states[worker] = st
			}
			runBatch(st, batches[bi].Lo, batches[bi].Len(), bi == 0)
		}
		if col.Enabled() {
			err = par.DoPoolCtx(ctx, workers, len(batches), "diagnose", col, body)
		} else {
			err = par.DoCtx(ctx, workers, len(batches), body)
		}
	}
	for i := range faults {
		s := Signature(hashers[i].sum())
		dict.sigs[i] = s
		dict.byHash[s] = append(dict.byHash[s], i)
	}
	dict.good = Signature(hashers[len(faults)].sum())
	return dict, err
}

type hasher struct {
	h     uint64
	init  bool
	count int
}

func (h *hasher) add(v logic.V) {
	if !h.init {
		h.h = 1469598103934665603 // FNV offset basis
		h.init = true
	}
	h.h ^= uint64(v) + 1
	h.h *= 1099511628211
	h.count++
}

func (h *hasher) sum() uint64 {
	if !h.init {
		f := fnv.New64a()
		return f.Sum64()
	}
	return h.h
}

// Observe computes the signature of a device under test. The device is
// abstracted as a response function so tests can plug in a simulated
// faulty machine and real flows could plug in tester data.
type Device interface {
	// Respond returns the primary-output trace for a sequence, one
	// value per (cycle, output).
	Respond(seq [][]logic.V) [][]logic.V
}

// Observe runs the dictionary's sequences on the device and hashes the
// responses.
func (dict *Dictionary) Observe(dev Device) Signature {
	var h hasher
	for _, seq := range dict.Seqs {
		for _, po := range dev.Respond(seq) {
			for _, v := range po {
				h.add(v)
			}
		}
	}
	return Signature(h.sum())
}

// GoodSignature is the fault-free reference signature.
func (dict *Dictionary) GoodSignature() Signature { return dict.good }

// Match returns the candidate faults whose signature equals the
// observation (fault equivalence naturally yields several).
func (dict *Dictionary) Match(s Signature) []fault.Fault {
	var out []fault.Fault
	for _, i := range dict.byHash[s] {
		out = append(out, dict.Faults[i])
	}
	return out
}

// Suspect is a localized corruption site.
type Suspect struct {
	Chain    int
	LoSeg    int
	HiSeg    int
	Faults   []fault.Fault
	Category core.Category
}

// Localize matches the observation and folds the screening locations of
// every matched fault into per-chain segment ranges — the repair/FA
// starting point.
func (dict *Dictionary) Localize(s Signature) []Suspect {
	matches := dict.Match(s)
	if len(matches) == 0 {
		return nil
	}
	screened := core.Screen(dict.Design, matches)
	byChain := map[int]*Suspect{}
	for _, sc := range screened {
		for _, loc := range sc.Locs {
			sus, ok := byChain[loc.Chain]
			if !ok {
				sus = &Suspect{Chain: loc.Chain, LoSeg: loc.Seg, HiSeg: loc.Seg}
				byChain[loc.Chain] = sus
			}
			if loc.Seg < sus.LoSeg {
				sus.LoSeg = loc.Seg
			}
			if loc.Seg > sus.HiSeg {
				sus.HiSeg = loc.Seg
			}
			if sc.Cat > sus.Category {
				sus.Category = sc.Cat
			}
		}
	}
	var out []Suspect
	for ci := 0; ci < len(dict.Design.Chains); ci++ {
		if sus, ok := byChain[ci]; ok {
			sus.Faults = matches
			out = append(out, *sus)
		}
	}
	return out
}

// SimulatedDevice wraps a circuit with a hidden injected fault — the
// test double for a failing die.
type SimulatedDevice struct {
	C      *netlist.Circuit
	Hidden *fault.Fault // nil = fault-free device
}

// Respond implements Device by scalar simulation.
func (sd *SimulatedDevice) Respond(seq [][]logic.V) [][]logic.V {
	s := sim.NewSeq(sd.C)
	var inj *sim.Inject
	if sd.Hidden != nil {
		in := sd.Hidden.Inject()
		inj = &in
	}
	out := make([][]logic.V, 0, len(seq))
	var po []logic.V
	for _, pi := range seq {
		po = s.Cycle(pi, inj, po)
		out = append(out, append([]logic.V(nil), po...))
	}
	return out
}
