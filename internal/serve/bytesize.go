package serve

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteSize parses a human byte-size string for the cache-budget
// flag: a number with an optional suffix K / M / G / T (each also
// accepted as KB/KiB, MB/MiB, ...). All suffixes are binary (powers of
// 1024) — this sizes a memory budget, where binary units are what
// operators mean. The number may be fractional ("1.5GiB"); a bare
// number is bytes; "0" means unbounded.
func ParseByteSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("empty byte size")
	}
	upper := strings.ToUpper(t)
	upper = strings.TrimSuffix(upper, "B")
	mult := int64(1)
	switch {
	case strings.HasSuffix(upper, "KI"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "KI")
	case strings.HasSuffix(upper, "MI"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "MI")
	case strings.HasSuffix(upper, "GI"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "GI")
	case strings.HasSuffix(upper, "TI"):
		mult, upper = 1<<40, strings.TrimSuffix(upper, "TI")
	case strings.HasSuffix(upper, "K"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "K")
	case strings.HasSuffix(upper, "M"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "M")
	case strings.HasSuffix(upper, "G"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "G")
	case strings.HasSuffix(upper, "T"):
		mult, upper = 1<<40, strings.TrimSuffix(upper, "T")
	}
	num := strings.TrimSpace(upper)
	if num == "" {
		return 0, fmt.Errorf("byte size %q has no number", s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return int64(v * float64(mult)), nil
}
