package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/task"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Job kinds, re-exported from the task layer. Each maps onto the run
// path the matching batch CLI uses, so a job's text report is
// byte-identical to the CLI's output for the same spec.
const (
	// KindFlow runs the paper's three-step flow (cmd/fsctest).
	KindFlow = task.KindFlow
	// KindScreen runs scan-chain fault screening alone.
	KindScreen = task.KindScreen
	// KindATPG runs combinational PODEM over the scan-mode model.
	KindATPG = task.KindATPG
	// KindFaultSim fault-simulates a random sequence (cmd/faultsim).
	KindFaultSim = task.KindFaultSim
	// KindDiagnose builds the fault dictionary and reports resolution
	// statistics (cmd/diagnose -stats).
	KindDiagnose = task.KindDiagnose
)

// Spec is a job submission: the task layer's serializable job
// description. Zero optional fields select the batch CLIs' defaults
// (task.DefaultsFor). The daemon runs exactly what task.Run runs, so
// reports are byte-identical to the CLIs'.
type Spec = task.Spec

// FormatScreen renders a screening job's report. Kept as a re-export
// so clients (and the e2e tests) can reproduce the daemon's output
// from a direct facade call.
func FormatScreen(name string, screened []core.Screened) string {
	return task.FormatScreen(name, screened)
}

// RandomSequence generates the deterministic random stimulus the
// faultsim CLI uses for -random: same seed, same generator, same
// sequence — a faultsim job's coverage line is byte-identical to the
// CLI's. Kept as a re-export for the e2e tests.
func RandomSequence(c *netlist.Circuit, seed int64, cycles int) faultsim.Sequence {
	return task.RandomSequence(c, seed, cycles)
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states: queued -> running -> done | failed | canceled
// (queued jobs can go straight to canceled).
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (st Status) Terminal() bool {
	return st == StatusDone || st == StatusFailed || st == StatusCanceled
}

// Job is one admitted submission: its spec, its private flight
// recorder (the SSE source), its cancellation handle and its mutable
// lifecycle state. Execution itself lives in internal/task; the Job
// only wraps queue position, status and streaming.
type Job struct {
	id        string
	seq       int64
	spec      Spec
	submitted time.Time

	ctx    context.Context
	cancel context.CancelFunc
	rec    *journal.Recorder
	hub    *hub

	// tctx is the job's own trace context (its span is the job span);
	// tparent is the submitter's span when the submission carried a
	// traceparent, zero otherwise. Both are fixed at admission.
	tctx    trace.Context
	tparent trace.SpanID

	mu        sync.Mutex
	index     int // heap position; -1 when not queued
	status    Status
	errMsg    string
	output    string
	hash      uint64 // structural hash of the run's circuit, once known
	started   time.Time
	finished  time.Time
	queueWait time.Duration
	tracker   *telemetry.RunTracker // set when a runner picks the job up
}

func newJob(parent context.Context, seq int64, sp Spec) *Job {
	// The job joins the submitter's trace when the (already normalized)
	// spec carries a traceparent — the job span becomes a child of the
	// caller's span — and roots a fresh trace otherwise. The spec is
	// re-stamped with the job's own context, so the executor's unit
	// spans (and any future remote shard) parent to the job span.
	var tctx trace.Context
	var tparent trace.SpanID
	if pc, ok := sp.TraceContext(); ok {
		tctx = trace.Context{Trace: pc.Trace, Span: trace.NewSpanID(), Flags: pc.Flags | trace.FlagSampled}
		tparent = pc.Span
	} else {
		tctx = trace.NewContext()
	}
	sp.TraceParent = tctx.Traceparent()
	ctx, cancel := context.WithCancel(parent)
	j := &Job{
		tctx:      tctx,
		tparent:   tparent,
		id:        fmt.Sprintf("j%06d", seq),
		seq:       seq,
		spec:      sp,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		rec:       journal.New(0),
		hub:       newHub(),
		index:     -1,
		status:    StatusQueued,
	}
	j.rec.SetObserver(func(journal.Event) { j.hub.bump() })
	return j
}

// ID returns the server-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's submission spec.
func (j *Job) Spec() Spec { return j.spec }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Output returns the job's text report (complete for done jobs,
// partial or empty otherwise).
func (j *Job) Output() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output
}

// Live freezes the job's unit-progress state, or nil while the job has
// not reached a runner (queued and early-canceled jobs have no
// tracker).
func (j *Job) Live() *telemetry.Snapshot {
	j.mu.Lock()
	tr := j.tracker
	j.mu.Unlock()
	return tr.Snapshot()
}

// TraceContext returns the job's trace context (the job span's
// identity); its Traceparent is what the spec was re-stamped with.
func (j *Job) TraceContext() trace.Context { return j.tctx }

// Trace assembles the job's current span tree from its flight
// recorder: the job span (parented to the submitter's span when the
// submission carried a traceparent), one span per executed unit, the
// phases inside each unit and their pool/ATPG leaves. Safe on a live
// job — spans still open simply end "now" and carry the unclosed
// attribute once the job is canceled mid-flight. runID is stamped into
// the resource attributes alongside the job identity, the circuit's
// structural hash (once the run resolved it), the eval backend and the
// recorder's dropped-event count, so truncated traces self-describe.
func (j *Job) Trace(runID string) trace.Trace {
	j.mu.Lock()
	status := j.status
	hash := j.hash
	finished := j.finished
	j.mu.Unlock()
	endNS := j.rec.Elapsed().Nanoseconds()
	if status.Terminal() && !finished.IsZero() {
		endNS = finished.Sub(j.rec.Origin()).Nanoseconds()
	}
	spans := trace.Assemble(j.tctx, j.tparent, "job "+j.id, j.rec.Snapshot(), endNS)
	res := []trace.Attr{
		{Key: "service.name", Value: journal.TraceProcessName},
		{Key: "run_id", Value: runID},
		{Key: "job_id", Value: j.id},
		{Key: "kind", Value: j.spec.Kind},
		{Key: "circuit", Value: j.spec.Circuit},
		{Key: "eval", Value: j.spec.Eval},
		{Key: "status", Value: string(status)},
	}
	if hash != 0 {
		res = append(res, trace.Attr{Key: "structural_hash", Value: fmt.Sprintf("%016x", hash)})
	}
	res = append(res, trace.Attr{
		Key: "journal.dropped_events", Value: fmt.Sprintf("%d", j.rec.Dropped())})
	return trace.Trace{
		Ctx: j.tctx, Parent: j.tparent,
		OriginNS: j.rec.Origin().UnixNano(),
		Resource: res,
		Spans:    spans,
	}
}

// View is the JSON shape of a job on the status endpoints. Started and
// Finished are nil until the job reaches those states.
type View struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Circuit  string `json:"circuit"`
	Priority int    `json:"priority"`
	// TraceID is the job's distributed-trace identity (32 hex digits);
	// GET /api/v1/trace/{id} returns the assembled span tree.
	TraceID   string     `json:"trace_id,omitempty"`
	Status    Status     `json:"status"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	QueueNS   int64      `json:"queue_ns"`
	Events    int        `json:"events"`
}

// View snapshots the job for JSON encoding.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:        j.id,
		Kind:      j.spec.Kind,
		Circuit:   j.spec.Circuit,
		Priority:  j.spec.Priority,
		TraceID:   j.tctx.Trace.String(),
		Status:    j.status,
		Error:     j.errMsg,
		Submitted: j.submitted,
		QueueNS:   j.queueWait.Nanoseconds(),
		Events:    j.rec.Len(),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}
