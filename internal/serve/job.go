package serve

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/atpg"
	"repro/internal/diagnose"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/logic"
	"repro/internal/obs"
)

// Job kinds. Each maps onto the facade path the matching batch CLI
// uses, so a job's text report is byte-identical to the CLI's output
// for the same spec.
const (
	// KindFlow runs the paper's three-step flow (cmd/fsctest).
	KindFlow = "flow"
	// KindScreen runs scan-chain fault screening alone.
	KindScreen = "screen"
	// KindATPG runs combinational PODEM over the scan-mode model.
	KindATPG = "atpg"
	// KindFaultSim fault-simulates a random sequence (cmd/faultsim).
	KindFaultSim = "faultsim"
	// KindDiagnose builds the fault dictionary and reports resolution
	// statistics (cmd/diagnose -stats).
	KindDiagnose = "diagnose"
)

// Spec is a job submission: what to run and on which circuit. Zero
// optional fields select the batch CLIs' defaults.
type Spec struct {
	// Kind selects the job kind (flow, screen, atpg, faultsim,
	// diagnose).
	Kind string `json:"kind"`
	// Circuit names the suite profile to generate ("s9234", ...) or
	// "s27" for the embedded real benchmark.
	Circuit string `json:"circuit"`
	// Scale shrinks the profile (0 or 1 = full size).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives generation, scan insertion and stimulus (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Chains is the scan-chain count (0 = fsct.DefaultChains).
	Chains int `json:"chains,omitempty"`
	// Workers shards each phase's fault axis (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Eval selects the simulation backend (default "auto").
	Eval string `json:"eval,omitempty"`
	// Cycles is the random-sequence length for faultsim jobs
	// (default 500).
	Cycles int `json:"cycles,omitempty"`
	// Priority orders the queue: higher pops first (default 0; FIFO
	// within a priority).
	Priority int `json:"priority,omitempty"`
}

// normalize validates the spec and fills CLI-equivalent defaults.
func (sp *Spec) normalize() error {
	switch sp.Kind {
	case KindFlow, KindScreen, KindATPG, KindFaultSim, KindDiagnose:
	case "":
		return fmt.Errorf("serve: spec missing kind")
	default:
		return fmt.Errorf("serve: unknown kind %q (want flow, screen, atpg, faultsim or diagnose)", sp.Kind)
	}
	if sp.Circuit == "" {
		return fmt.Errorf("serve: spec missing circuit")
	}
	if sp.Circuit != "s27" {
		if _, err := fsct.ProfileByName(sp.Circuit); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if sp.Scale < 0 || sp.Scale > 1 {
		return fmt.Errorf("serve: scale %v out of range (0,1]", sp.Scale)
	}
	if _, err := fsct.ParseEvalBackend(sp.evalName()); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Cycles <= 0 {
		sp.Cycles = 500
	}
	return nil
}

func (sp *Spec) evalName() string {
	if sp.Eval == "" {
		return "auto"
	}
	return sp.Eval
}

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states: queued -> running -> done | failed | canceled
// (queued jobs can go straight to canceled).
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (st Status) Terminal() bool {
	return st == StatusDone || st == StatusFailed || st == StatusCanceled
}

// Job is one admitted submission: its spec, its private flight
// recorder (the SSE source), its cancellation handle and its mutable
// lifecycle state.
type Job struct {
	id        string
	seq       int64
	spec      Spec
	submitted time.Time

	ctx    context.Context
	cancel context.CancelFunc
	rec    *journal.Recorder
	hub    *hub

	mu        sync.Mutex
	index     int // heap position; -1 when not queued
	status    Status
	errMsg    string
	output    string
	started   time.Time
	finished  time.Time
	queueWait time.Duration
}

func newJob(parent context.Context, seq int64, sp Spec) *Job {
	ctx, cancel := context.WithCancel(parent)
	j := &Job{
		id:        fmt.Sprintf("j%06d", seq),
		seq:       seq,
		spec:      sp,
		submitted: time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		rec:       journal.New(0),
		hub:       newHub(),
		index:     -1,
		status:    StatusQueued,
	}
	j.rec.SetObserver(func(journal.Event) { j.hub.bump() })
	return j
}

// ID returns the server-assigned job identifier.
func (j *Job) ID() string { return j.id }

// Spec returns the job's submission spec.
func (j *Job) Spec() Spec { return j.spec }

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Output returns the job's text report (complete for done jobs,
// partial or empty otherwise).
func (j *Job) Output() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output
}

// View is the JSON shape of a job on the status endpoints. Started and
// Finished are nil until the job reaches those states.
type View struct {
	ID        string     `json:"id"`
	Kind      string     `json:"kind"`
	Circuit   string     `json:"circuit"`
	Priority  int        `json:"priority"`
	Status    Status     `json:"status"`
	Error     string     `json:"error,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	QueueNS   int64      `json:"queue_ns"`
	Events    int        `json:"events"`
}

// View snapshots the job for JSON encoding.
func (j *Job) View() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:        j.id,
		Kind:      j.spec.Kind,
		Circuit:   j.spec.Circuit,
		Priority:  j.spec.Priority,
		Status:    j.status,
		Error:     j.errMsg,
		Submitted: j.submitted,
		QueueNS:   j.queueWait.Nanoseconds(),
		Events:    j.rec.Len(),
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// runResult is what a kind runner hands back: the text report (partial
// on cancellation), the circuit identity for the ledger, and headline
// scalars merged into the record's metric map.
type runResult struct {
	Output  string
	Circuit string
	Hash    uint64
	Extras  map[string]float64
}

// run dispatches one job spec to its kind runner. The returned error is
// context.Canceled (possibly wrapped) when the job was canceled
// mid-flight; the partial result is still meaningful then.
func run(ctx context.Context, sp Spec, cache *engine.Cache, col *obs.Collector) (runResult, error) {
	c, err := buildCircuit(sp)
	if err != nil {
		return runResult{}, err
	}
	switch sp.Kind {
	case KindFlow:
		return runFlow(ctx, sp, c, cache, col)
	case KindScreen:
		return runScreen(ctx, sp, c, cache, col)
	case KindATPG:
		return runATPG(ctx, sp, c, cache, col)
	case KindFaultSim:
		return runFaultSim(ctx, sp, c, cache, col)
	case KindDiagnose:
		return runDiagnose(ctx, sp, c, cache, col)
	}
	return runResult{}, fmt.Errorf("serve: unknown kind %q", sp.Kind)
}

// buildCircuit materializes the spec's circuit the way the batch CLIs
// do: the embedded s27, or a deterministic generated profile.
func buildCircuit(sp Spec) (*fsct.Circuit, error) {
	if sp.Circuit == "s27" {
		return fsct.S27(), nil
	}
	p, err := fsct.ProfileByName(sp.Circuit)
	if err != nil {
		return nil, err
	}
	if sp.Scale > 0 && sp.Scale < 1 {
		p = p.Scale(sp.Scale)
	}
	return fsct.GenerateCircuit(p, sp.Seed), nil
}

// insertScan mirrors the CLIs' scan insertion (chain count defaulted
// from the flip-flop count).
func insertScan(sp Spec, c *fsct.Circuit) (*fsct.Design, error) {
	n := sp.Chains
	if n == 0 {
		n = fsct.DefaultChains(len(c.FFs))
	}
	return fsct.InsertScan(c, fsct.ScanOptions{NumChains: n, Seed: sp.Seed})
}

func runFlow(ctx context.Context, sp Spec, c *fsct.Circuit, cache *engine.Cache, col *obs.Collector) (runResult, error) {
	backend, _ := fsct.ParseEvalBackend(sp.evalName())
	d, err := insertScan(sp, c)
	if err != nil {
		return runResult{}, err
	}
	rep, err := fsct.RunFlowCtx(ctx, d, fsct.FlowParams{
		Workers: sp.Workers, Eval: backend, Engine: cache, Obs: col,
	})
	res := runResult{Circuit: d.C.Name, Hash: d.C.StructuralHash()}
	if rep != nil {
		res.Output = fsct.FormatReport(rep)
	}
	return res, err
}

func runScreen(ctx context.Context, sp Spec, c *fsct.Circuit, cache *engine.Cache, col *obs.Collector) (runResult, error) {
	backend, _ := fsct.ParseEvalBackend(sp.evalName())
	d, err := insertScan(sp, c)
	if err != nil {
		return runResult{}, err
	}
	faults := fsct.CollapsedFaults(d.C)
	screened, err := fsct.ScreenFaultsCtx(ctx, d, faults,
		fsct.ScreenOptions{Workers: sp.Workers, Eval: backend, Cache: cache, Obs: col})
	res := runResult{Circuit: d.C.Name, Hash: d.C.StructuralHash()}
	if err != nil {
		return res, err
	}
	res.Output = FormatScreen(d.C.Name, screened)
	easy, hard := 0, 0
	for _, sc := range screened {
		switch sc.Cat {
		case fsct.CatEasy:
			easy++
		case fsct.CatHard:
			hard++
		}
	}
	res.Extras = map[string]float64{
		"faults": float64(len(screened)),
		"easy":   float64(easy),
		"hard":   float64(hard),
	}
	return res, nil
}

// FormatScreen renders a screening job's report. Exported so clients
// (and the e2e tests) can reproduce the daemon's output from a direct
// facade call.
func FormatScreen(name string, screened []fsct.Screened) string {
	easy, hard, unaff := 0, 0, 0
	for _, sc := range screened {
		switch sc.Cat {
		case fsct.CatEasy:
			easy++
		case fsct.CatHard:
			hard++
		default:
			unaff++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s: %d faults screened\n", name, len(screened))
	fmt.Fprintf(&b, "category 1 (easy): %d\ncategory 2 (hard): %d\nunaffecting: %d\n", easy, hard, unaff)
	return b.String()
}

func runATPG(ctx context.Context, sp Spec, c *fsct.Circuit, cache *engine.Cache, col *obs.Collector) (runResult, error) {
	d, err := insertScan(sp, c)
	if err != nil {
		return runResult{}, err
	}
	res := runResult{Circuit: d.C.Name, Hash: d.C.StructuralHash()}
	out, extras, err := combATPG(ctx, d, cache, col)
	res.Output = out
	res.Extras = extras
	return res, err
}

// combATPG runs PODEM over every collapsed fault of the scan-mode
// combinational model, sharing the model and SCOAP tables through the
// artifact cache exactly as flow step 2 does.
func combATPG(ctx context.Context, d *fsct.Design, cache *engine.Cache, col *obs.Collector) (string, map[string]float64, error) {
	const backtracks = 250 // flow step 2's default PODEM limit
	arts := engine.Resolve(cache).ForObs(d.C, col)
	fixed := make(map[fsct.SignalID]fsct.Value, len(d.Assignments))
	for k, v := range d.Assignments {
		fixed[k] = v
	}
	model, tables, err := arts.CombSearch(fixed)
	if err != nil {
		return "", nil, err
	}
	cm, err := arts.CombModel()
	if err != nil {
		return "", nil, err
	}
	combArts := engine.Resolve(cache).ForObs(cm.C, col)
	faults := combArts.CollapsedFaults()

	eng := atpg.NewEngineTables(model, tables)
	eng.Instrument(col, "atpg.comb")
	found, redundant, aborted := 0, 0, 0
	for _, f := range faults {
		r, err := eng.GenerateCtx(ctx, f, backtracks)
		if err != nil {
			return "", nil, err
		}
		switch r.Status {
		case atpg.Found:
			found++
		case atpg.Redundant:
			redundant++
		default:
			aborted++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s: comb ATPG over %d faults\n", d.C.Name, len(faults))
	fmt.Fprintf(&b, "found %d  redundant %d  aborted %d\n", found, redundant, aborted)
	extras := map[string]float64{
		"faults":    float64(len(faults)),
		"found":     float64(found),
		"redundant": float64(redundant),
		"aborted":   float64(aborted),
	}
	return b.String(), extras, nil
}

func runFaultSim(ctx context.Context, sp Spec, c *fsct.Circuit, cache *engine.Cache, col *obs.Collector) (runResult, error) {
	backend, _ := fsct.ParseEvalBackend(sp.evalName())
	faults := fsct.CollapsedFaults(c)
	seq := RandomSequence(c, sp.Seed, sp.Cycles)

	res := runResult{Circuit: c.Name, Hash: c.StructuralHash()}
	var b strings.Builder
	st := c.Stat()
	fmt.Fprintf(&b, "circuit %s: %d gates, %d FFs; %d faults; %d cycles\n",
		c.Name, st.Gates, st.FFs, len(faults), len(seq))

	sim, err := fsct.SimulateFaultsCtx(ctx, c, seq, faults,
		fsct.SimOptions{Workers: sp.Workers, Eval: backend, Cache: cache, Obs: col})
	det := 0
	if sim != nil {
		det = sim.NumDetected()
	}
	note := ""
	if err != nil {
		note = "  (interrupted — partial)"
	}
	fmt.Fprintf(&b, "detected %d / %d faults (%.2f%% coverage)%s\n",
		det, len(faults), 100*float64(det)/float64(len(faults)), note)
	res.Output = b.String()
	res.Extras = map[string]float64{
		"faults":   float64(len(faults)),
		"detected": float64(det),
	}
	if len(faults) > 0 {
		res.Extras["coverage"] = 100 * float64(det) / float64(len(faults))
	}
	return res, err
}

// RandomSequence generates the deterministic random stimulus the
// faultsim CLI uses for -random: same seed, same generator, same
// sequence — a faultsim job's coverage line is byte-identical to the
// CLI's. Exported for the e2e tests.
func RandomSequence(c *fsct.Circuit, seed int64, cycles int) fsct.Sequence {
	rng := uint64(seed)*2862933555777941757 + 3037000493
	next := func() logic.V {
		rng = rng*6364136223846793005 + 1442695040888963407
		return logic.V((rng >> 33) & 1)
	}
	seq := make(fsct.Sequence, cycles)
	for t := range seq {
		pi := make([]logic.V, len(c.Inputs))
		for i := range pi {
			pi[i] = next()
		}
		seq[t] = pi
	}
	return seq
}

func runDiagnose(ctx context.Context, sp Spec, c *fsct.Circuit, cache *engine.Cache, col *obs.Collector) (runResult, error) {
	d, err := insertScan(sp, c)
	if err != nil {
		return runResult{}, err
	}
	res := runResult{Circuit: d.C.Name, Hash: d.C.StructuralHash()}
	screened, err := fsct.ScreenFaultsCtx(ctx, d, fsct.CollapsedFaults(d.C),
		fsct.ScreenOptions{Workers: sp.Workers, Cache: cache, Obs: col})
	if err != nil {
		return res, err
	}
	var affecting []fault.Fault
	for _, sc := range screened {
		if sc.Cat != fsct.CatUnaffecting {
			affecting = append(affecting, sc.Fault)
		}
	}
	dict, err := fsct.BuildDictionaryObs(ctx, d, affecting, uint64(sp.Seed), sp.Workers, col)
	if err != nil {
		return res, err
	}
	exact, ambiguous, silent := 0, 0, 0
	totalMatches := 0
	for i := range affecting {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		hidden := affecting[i]
		sig := dict.Observe(&diagnose.SimulatedDevice{C: d.C, Hidden: &hidden})
		if sig == dict.GoodSignature() {
			silent++
			continue
		}
		m := dict.Match(sig)
		totalMatches += len(m)
		if len(m) == 1 {
			exact++
		} else {
			ambiguous++
		}
	}
	diagnosable := exact + ambiguous
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s: dictionary over %d chain-affecting faults\n", d.C.Name, len(affecting))
	fmt.Fprintf(&b, "diagnosable: %d (%.1f%%)  exact: %d  ambiguous: %d  silent: %d\n",
		diagnosable, 100*float64(diagnosable)/float64(len(affecting)), exact, ambiguous, silent)
	if diagnosable > 0 {
		fmt.Fprintf(&b, "mean candidates per diagnosis: %.2f\n", float64(totalMatches)/float64(diagnosable))
	}
	res.Output = b.String()
	res.Extras = map[string]float64{
		"candidates":  float64(len(affecting)),
		"diagnosable": float64(diagnosable),
		"exact":       float64(exact),
		"silent":      float64(silent),
	}
	return res, nil
}
