package serve

import (
	"context"
	"testing"
)

func qjob(seq int64, priority int) *Job {
	return newJob(context.Background(), seq, Spec{Kind: KindScreen, Circuit: "s27", Priority: priority})
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newJobQueue(16)
	low1 := qjob(1, 0)
	high := qjob(2, 5)
	low2 := qjob(3, 0)
	mid := qjob(4, 2)
	for _, j := range []*Job{low1, high, low2, mid} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := []*Job{high, mid, low1, low2} // priority desc, FIFO within
	for i, w := range want {
		got := q.pop()
		if got != w {
			t.Fatalf("pop %d = seq %d (prio %d), want seq %d (prio %d)",
				i, got.seq, got.spec.Priority, w.seq, w.spec.Priority)
		}
	}
}

func TestQueueAdmissionBound(t *testing.T) {
	q := newJobQueue(2)
	if err := q.push(qjob(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(2, 0)); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob(3, 0)); err != ErrQueueFull {
		t.Fatalf("third push err = %v, want ErrQueueFull", err)
	}
	// Popping frees a slot.
	q.pop()
	if err := q.push(qjob(4, 0)); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newJobQueue(16)
	a, b, c := qjob(1, 0), qjob(2, 0), qjob(3, 0)
	for _, j := range []*Job{a, b, c} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	if !q.remove(b) {
		t.Fatal("remove(b) = false, want true")
	}
	if q.remove(b) {
		t.Fatal("second remove(b) = true, want false")
	}
	if got := q.pop(); got != a {
		t.Fatalf("pop = seq %d, want a", got.seq)
	}
	if got := q.pop(); got != c {
		t.Fatalf("pop = seq %d, want c", got.seq)
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d, want 0", q.depth())
	}
}

func TestQueueCloseWakesPop(t *testing.T) {
	q := newJobQueue(16)
	done := make(chan *Job, 1)
	go func() { done <- q.pop() }()
	q.close()
	if j := <-done; j != nil {
		t.Fatalf("pop after close = %v, want nil", j)
	}
}
