package serve

import (
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Handler returns the daemon's HTTP API. See SERVICE.md for the
// operator-facing reference of every route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/server", s.handleServer)
	mux.HandleFunc("GET /api/v1/history", s.handleHistory)
	mux.HandleFunc("GET /api/v1/live", s.handleLive)
	mux.HandleFunc("GET /api/v1/live/events", s.handleLiveEvents)
	mux.HandleFunc("GET /api/v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	return s.logRequests(mux)
}

// logRequests wraps the API mux with one structured debug line per
// completed request (method, path, status, duration). Debug level keeps
// polling dashboards out of an info-level log; the job-lifecycle lines
// carry the operational story.
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		s.log.Debug("request",
			slog.String("method", r.Method), slog.String("path", r.URL.Path),
			slog.Int("status", sw.code), slog.Duration("dur", time.Since(start)))
	})
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards streaming flushes (the SSE handlers require it).
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeError emits the API's uniform error shape.
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "bad spec: "+err.Error())
		return
	}
	// An inbound W3C traceparent header joins the job to the caller's
	// trace. The header is advisory per the spec — a malformed one is
	// ignored, not rejected — while a traceparent inside the spec body
	// is an explicit field and stays subject to strict validation in
	// Normalize. The body wins when both are present.
	if tp := r.Header.Get("traceparent"); tp != "" && sp.TraceParent == "" {
		if _, err := trace.Parse(tp); err == nil {
			sp.TraceParent = tp
		}
	}
	j, err := s.Submit(sp)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.View())
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := s.Jobs()
	views := make([]View, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.Status()
	if !st.Terminal() {
		writeError(w, http.StatusConflict, "job "+j.ID()+" is "+string(st))
		return
	}
	out := j.Output()
	if st != StatusDone && out == "" {
		writeError(w, http.StatusConflict, "job "+j.ID()+" "+string(st)+" with no output")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if st != StatusDone {
		w.Header().Set("X-Fsctd-Partial", string(st))
	}
	_, _ = w.Write([]byte(out))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.Job(id)
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if !s.Cancel(id) {
		writeError(w, http.StatusConflict, "job "+id+" already "+string(j.Status()))
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// handleTrace serves the job's assembled span tree as an OTLP/JSON
// payload: the job span (child of the submitter's span when the
// submission carried a traceparent), per-unit spans and their nested
// phase/pool/ATPG spans. Works on running jobs too — open spans end
// "now" — so operators can inspect a stuck job's partial trace.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = trace.WriteOTLP(w, j.Trace(s.runID))
}

// serverView is the /api/v1/server snapshot: queue and job-table
// occupancy plus the engine cache's live accounting.
type serverView struct {
	UptimeNS   int64            `json:"uptime_ns"`
	Runners    int              `json:"runners"`
	QueueDepth int              `json:"queue_depth"`
	QueueLimit int              `json:"queue_limit"`
	Jobs       map[string]int   `json:"jobs"`
	Cache      cacheView        `json:"cache"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

type cacheView struct {
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	Budget     int64 `json:"budget"`
	MaxEntries int   `json:"max_entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	Evictions  int64 `json:"evictions"`
}

func (s *Server) handleServer(w http.ResponseWriter, _ *http.Request) {
	byStatus := map[string]int{}
	for _, j := range s.Jobs() {
		byStatus[string(j.Status())]++
	}
	st := s.cache.Stats()
	view := serverView{
		UptimeNS:   time.Since(s.start).Nanoseconds(),
		Runners:    s.cfg.Runners,
		QueueDepth: s.q.depth(),
		QueueLimit: s.cfg.QueueLimit,
		Jobs:       byStatus,
		Cache: cacheView{
			Entries: st.Entries, Bytes: st.Bytes, Budget: st.Budget,
			MaxEntries: st.MaxEntries, Hits: st.Hits, Misses: st.Misses,
			Evictions: st.Evictions,
		},
		Counters: s.col.Snapshot().Counters,
	}
	writeJSON(w, http.StatusOK, view)
}

// handleMetrics exposes the server's lifetime counters in the
// OpenMetrics text format, with the engine cache's live occupancy
// injected as serve.cache.* samples at scrape time (cache state is a
// gauge-like quantity the counter API cannot carry).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	m := s.col.Snapshot()
	if m.Counters == nil {
		m.Counters = map[string]int64{}
	}
	st := s.cache.Stats()
	m.Counters["serve.cache.entries"] = int64(st.Entries)
	m.Counters["serve.cache.bytes"] = st.Bytes
	m.Counters["serve.cache.hits"] = st.Hits
	m.Counters["serve.cache.misses"] = st.Misses
	m.Counters["serve.cache.evictions"] = st.Evictions
	m.Counters["serve.queue.depth"] = int64(s.q.depth())
	// Unit-level telemetry, aggregated across every tracked job at
	// scrape time (gauge-like, same convention as the cache samples),
	// plus the flight recorders' total overwrite count.
	var unitsTotal, unitsDone, unitsRunning, unitsStalled, dropped int64
	for _, j := range s.Jobs() {
		if live := j.Live(); live != nil {
			unitsTotal += int64(live.UnitsTotal)
			unitsDone += int64(live.UnitsDone)
			unitsRunning += int64(live.UnitsRunning)
			unitsStalled += int64(live.UnitsStalled)
		}
		dropped += j.rec.Dropped()
	}
	m.Counters["serve.units.total"] = unitsTotal
	m.Counters["serve.units.done"] = unitsDone
	m.Counters["serve.units.running"] = unitsRunning
	m.Counters["serve.units.stalled"] = unitsStalled
	m.Counters["journal.dropped_events"] = dropped
	w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	_ = obs.WriteOpenMetrics(w, m)
}

// handleHistory serves the run ledger as JSON, newest last. Query
// parameters: ?last=N (newest N records), ?circuit=<name>.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.cfg.LedgerPath == "" {
		writeError(w, http.StatusNotFound, "no ledger configured (-ledger)")
		return
	}
	recs, err := ledger.Read(s.cfg.LedgerPath)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	f := ledger.Filter{Circuit: r.URL.Query().Get("circuit")}
	if last := r.URL.Query().Get("last"); last != "" {
		n, err := strconv.Atoi(last)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad last="+last)
			return
		}
		f.Last = n
	}
	recs = f.Apply(recs)
	if recs == nil {
		recs = []ledger.Record{}
	}
	writeJSON(w, http.StatusOK, recs)
}
