package serve_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/task"
	"repro/internal/telemetry"
)

// taskUnit builds a detached unit for hand-feeding the watchdog tests.
func taskUnit(index, count int) task.Unit {
	return task.Unit{
		Spec:  task.Spec{Kind: task.KindFaultSim, Circuit: "s27"},
		Index: index, Count: count, Lo: index * 63, Hi: (index + 1) * 63,
	}
}

func liveView(t *testing.T, base string, query string) serve.LiveView {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/live" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /api/v1/live: status %d", resp.StatusCode)
	}
	var v serve.LiveView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestLiveMultiUnitJob is the live-introspection acceptance e2e: a
// multi-unit faultsim job whose /api/v1/live entry carries per-unit
// progress, whose final unit sums equal the report's totals, and whose
// report is byte-identical to the single-unit run of the same spec.
func TestLiveMultiUnitJob(t *testing.T) {
	_, h, _ := testServer(t, serve.Config{Runners: 1})

	sp := serve.Spec{Kind: serve.KindFaultSim, Circuit: "s3384", Scale: 0.05, Cycles: 100, Units: 3}
	v := submit(t, h.URL, sp)

	// Poll the live view while the job runs: entries must appear, and a
	// mid-flight observation (when we catch one) must carry unit-level
	// progress. The job may finish before we observe it running — the
	// terminal assertions below are the deterministic gate.
	sawRunning := false
	deadline := time.Now().Add(30 * time.Second)
	for !sawRunning && time.Now().Before(deadline) {
		lv := liveView(t, h.URL, "")
		if len(lv.Jobs) != 1 || lv.Jobs[0].ID != v.ID {
			t.Fatalf("live view lists %+v, want job %s", lv.Jobs, v.ID)
		}
		if lv.StallThresholdNS != telemetry.DefaultStallThreshold.Nanoseconds() {
			t.Fatalf("stall threshold = %d, want default %d", lv.StallThresholdNS, telemetry.DefaultStallThreshold.Nanoseconds())
		}
		lj := lv.Jobs[0]
		if lj.Status == serve.StatusRunning && lj.Progress != nil && len(lj.Progress.Units) > 0 {
			sawRunning = true
			if lj.Progress.UnitsTotal != 3 {
				t.Fatalf("mid-flight units_total = %d, want 3", lj.Progress.UnitsTotal)
			}
		}
		if lj.Status.Terminal() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	fin := waitTerminal(t, h.URL, v.ID, 30*time.Second)
	if fin.Status != serve.StatusDone {
		t.Fatalf("job finished %s (%s)", fin.Status, fin.Error)
	}
	out := result(t, h.URL, v.ID)

	// Terminal live view: exact per-unit sums equal the report totals.
	lv := liveView(t, h.URL, "")
	lj := lv.Jobs[0]
	if lj.Progress == nil {
		t.Fatal("terminal live entry has no progress snapshot")
	}
	p := lj.Progress
	if p.UnitsTotal != 3 || p.UnitsDone != 3 || p.UnitsRunning != 0 || p.UnitsStalled != 0 {
		t.Fatalf("terminal unit partition = %+v", p)
	}
	var detected, faults int
	if _, err := fmt.Sscanf(out[strings.Index(out, "detected"):], "detected %d / %d", &detected, &faults); err != nil {
		t.Fatalf("unparseable report %q: %v", out, err)
	}
	if p.FaultsTotal != faults || p.FaultsDone != faults {
		t.Fatalf("live faults total/done = %d/%d, want %d/%d (report)", p.FaultsTotal, p.FaultsDone, faults, faults)
	}
	if p.Detected != detected {
		t.Fatalf("live detected = %d, want %d (report)", p.Detected, detected)
	}
	var sumDone, sumDet int
	for _, u := range p.Units {
		if !u.Finished || u.Faults != u.Hi-u.Lo || u.Done != u.Faults {
			t.Fatalf("terminal unit %+v not fully accounted", u)
		}
		sumDone += u.Done
		sumDet += u.Detected
	}
	if sumDone != faults || sumDet != detected {
		t.Fatalf("per-unit sums %d/%d, want %d/%d", sumDone, sumDet, faults, detected)
	}
	if p.JobID != v.ID || p.Kind != sp.Kind || p.Circuit != sp.Circuit {
		t.Fatalf("snapshot identity = %s/%s/%s, want %s/%s/%s", p.JobID, p.Kind, p.Circuit, v.ID, sp.Kind, sp.Circuit)
	}

	// Byte-identity across unit counts: the same spec at Units=1 (the
	// default path) serves the same bytes.
	single := sp
	single.Units = 0
	v1 := submit(t, h.URL, single)
	if fin := waitTerminal(t, h.URL, v1.ID, 30*time.Second); fin.Status != serve.StatusDone {
		t.Fatalf("single-unit job finished %s (%s)", fin.Status, fin.Error)
	}
	if out1 := result(t, h.URL, v1.ID); out1 != out {
		t.Fatalf("multi-unit report differs from single-unit report:\n--- units=3\n%s--- units=1\n%s", out, out1)
	}

	// ?running=1 drops terminal jobs.
	if lv := liveView(t, h.URL, "?running=1"); len(lv.Jobs) != 0 {
		t.Fatalf("running-only live view lists terminal jobs: %+v", lv.Jobs)
	}

	// The scrape surface aggregates the unit gauges.
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	for _, want := range []string{
		"fsct_serve_units_total_total 4", // 3 + 1 single-unit
		"fsct_serve_units_done_total 4",
		"fsct_serve_units_stalled_total 0",
		"fsct_journal_dropped_events_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestLiveStallFlagged drives the server's watchdog with a hand-fed
// tracker: a unit that stops emitting must be flagged within one stall
// threshold and counted on /metrics.
func TestLiveStallFlagged(t *testing.T) {
	s, h, _ := testServer(t, serve.Config{Runners: 1, StallThreshold: 5 * time.Millisecond})

	tr := telemetry.NewRunTracker(telemetry.Info{RunID: "stall-test", JobID: "jx"}, nil)
	wd := s.Watchdog()
	if wd.Threshold() != 5*time.Millisecond {
		t.Fatalf("threshold = %v, want 5ms", wd.Threshold())
	}
	wd.Register(tr)
	defer wd.Unregister(tr)
	tr.UnitStarted(taskUnit(0, 2))

	// The watchdog goroutine sweeps at threshold/4; the flag must land
	// within a few thresholds of the last heartbeat.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if snap := tr.Snapshot(); snap.UnitsStalled == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stalled unit never flagged by the server watchdog")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if !strings.Contains(body, "fsct_serve_units_stalls_total") {
		t.Fatalf("/metrics missing stall counter:\n%s", body)
	}
}

// TestLiveEventsStream reads one frame of the live SSE variant.
func TestLiveEventsStream(t *testing.T) {
	_, h, _ := testServer(t, serve.Config{Runners: 1})
	submit(t, h.URL, serve.Spec{Kind: serve.KindScreen, Circuit: "s27"})

	resp, err := http.Get(h.URL + "/api/v1/live/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/event-stream") {
		t.Fatalf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		}
		if strings.HasPrefix(line, "data: ") {
			data = strings.TrimPrefix(line, "data: ")
			break
		}
	}
	if event != "live" {
		t.Fatalf("first SSE event = %q, want live", event)
	}
	var lv serve.LiveView
	if err := json.Unmarshal([]byte(data), &lv); err != nil {
		t.Fatalf("unparseable live frame %q: %v", data, err)
	}
	if len(lv.Jobs) != 1 {
		t.Fatalf("live frame lists %d jobs, want 1", len(lv.Jobs))
	}
}
