package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/atpg"
	"repro/internal/diagnose"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/ledger"
	"repro/internal/serve"
)

// memSink collects the per-job ledger records a server appends.
type memSink struct {
	mu   sync.Mutex
	recs []ledger.Record
}

func (m *memSink) AppendRun(rec ledger.Record, exit int, wall time.Duration) error {
	rec.Exit = exit
	rec.WallNS = wall.Nanoseconds()
	m.mu.Lock()
	m.recs = append(m.recs, rec)
	m.mu.Unlock()
	return nil
}

func (m *memSink) records() []ledger.Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]ledger.Record(nil), m.recs...)
}

// testServer pairs a serve.Server with an httptest front end.
func testServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server, *memSink) {
	t.Helper()
	sink := &memSink{}
	cfg.Ledger = sink
	s := serve.New(cfg)
	h := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		h.Close()
		s.Close()
	})
	return s, h, sink
}

func submit(t *testing.T, base string, sp serve.Spec) serve.View {
	t.Helper()
	body, _ := json.Marshal(sp)
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit %+v: status %d (%v)", sp, resp.StatusCode, e)
	}
	var v serve.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func jobView(t *testing.T, base, id string) serve.View {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v serve.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t *testing.T, base, id string, timeout time.Duration) serve.View {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := jobView(t, base, id)
		if v.Status.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, v.Status, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func result(t *testing.T, base, id string) string {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result %s: status %d: %s", id, resp.StatusCode, b.String())
	}
	return b.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// scrubDurations blanks the bracketed wall-time tokens of a flow
// report ("[49µs]") — the only nondeterministic bytes in any report
// (the core determinism tests likewise zero the CPU fields before
// comparing). Everything else must match byte for byte.
var durToken = regexp.MustCompile(`\[[^\[\]]*s\]`)

func scrubDurations(s string) string {
	return durToken.ReplaceAllString(s, "[x]")
}

// buildCircuit mirrors the daemon's circuit materialization for the
// byte-identical comparisons.
func buildCircuit(t *testing.T, name string, scale float64, seed int64) *fsct.Circuit {
	t.Helper()
	if name == "s27" {
		return fsct.S27()
	}
	p, err := fsct.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	if scale > 0 && scale < 1 {
		p = p.Scale(scale)
	}
	return fsct.GenerateCircuit(p, seed)
}

func insertScan(t *testing.T, c *fsct.Circuit, chains int, seed int64) *fsct.Design {
	t.Helper()
	if chains == 0 {
		chains = fsct.DefaultChains(len(c.FFs))
	}
	d, err := fsct.InsertScan(c, fsct.ScanOptions{NumChains: chains, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// expectedOutput computes, through direct facade calls, the exact text
// the daemon must serve for a spec.
func expectedOutput(t *testing.T, sp serve.Spec) string {
	t.Helper()
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	if sp.Cycles == 0 {
		sp.Cycles = 500
	}
	c := buildCircuit(t, sp.Circuit, sp.Scale, sp.Seed)
	switch sp.Kind {
	case serve.KindFlow:
		d := insertScan(t, c, sp.Chains, sp.Seed)
		rep, err := fsct.RunFlowCtx(context.Background(), d, fsct.FlowParams{Workers: sp.Workers})
		if err != nil {
			t.Fatal(err)
		}
		return fsct.FormatReport(rep)
	case serve.KindScreen:
		d := insertScan(t, c, sp.Chains, sp.Seed)
		screened, err := fsct.ScreenFaultsCtx(context.Background(), d, fsct.CollapsedFaults(d.C), fsct.ScreenOptions{Workers: sp.Workers})
		if err != nil {
			t.Fatal(err)
		}
		return serve.FormatScreen(d.C.Name, screened)
	case serve.KindFaultSim:
		faults := fsct.CollapsedFaults(c)
		seq := serve.RandomSequence(c, sp.Seed, sp.Cycles)
		st := c.Stat()
		res, err := fsct.SimulateFaultsCtx(context.Background(), c, seq, faults, fsct.SimOptions{Workers: sp.Workers})
		if err != nil {
			t.Fatal(err)
		}
		det := res.NumDetected()
		return fmt.Sprintf("circuit %s: %d gates, %d FFs; %d faults; %d cycles\n", c.Name, st.Gates, st.FFs, len(faults), len(seq)) +
			fmt.Sprintf("detected %d / %d faults (%.2f%% coverage)\n", det, len(faults), 100*float64(det)/float64(len(faults)))
	case serve.KindATPG:
		d := insertScan(t, c, sp.Chains, sp.Seed)
		arts := engine.New().For(d.C)
		fixed := make(map[fsct.SignalID]fsct.Value, len(d.Assignments))
		for k, v := range d.Assignments {
			fixed[k] = v
		}
		model, tables, err := arts.CombSearch(fixed)
		if err != nil {
			t.Fatal(err)
		}
		cm, err := arts.CombModel()
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.Collapsed(cm.C)
		eng := atpg.NewEngineTables(model, tables)
		found, redundant, aborted := 0, 0, 0
		for _, f := range faults {
			switch eng.Generate(f, 250).Status {
			case atpg.Found:
				found++
			case atpg.Redundant:
				redundant++
			default:
				aborted++
			}
		}
		return fmt.Sprintf("circuit %s: comb ATPG over %d faults\n", d.C.Name, len(faults)) +
			fmt.Sprintf("found %d  redundant %d  aborted %d\n", found, redundant, aborted)
	case serve.KindDiagnose:
		d := insertScan(t, c, sp.Chains, sp.Seed)
		screened, err := fsct.ScreenFaultsCtx(context.Background(), d, fsct.CollapsedFaults(d.C), fsct.ScreenOptions{Workers: sp.Workers})
		if err != nil {
			t.Fatal(err)
		}
		var affecting []fault.Fault
		for _, sc := range screened {
			if sc.Cat != fsct.CatUnaffecting {
				affecting = append(affecting, sc.Fault)
			}
		}
		dict, err := fsct.BuildDictionaryCtx(context.Background(), d, affecting, uint64(sp.Seed), sp.Workers)
		if err != nil {
			t.Fatal(err)
		}
		exact, ambiguous, silent, totalMatches := 0, 0, 0, 0
		for i := range affecting {
			hidden := affecting[i]
			sig := dict.Observe(&diagnose.SimulatedDevice{C: d.C, Hidden: &hidden})
			if sig == dict.GoodSignature() {
				silent++
				continue
			}
			m := dict.Match(sig)
			totalMatches += len(m)
			if len(m) == 1 {
				exact++
			} else {
				ambiguous++
			}
		}
		diagnosable := exact + ambiguous
		out := fmt.Sprintf("circuit %s: dictionary over %d chain-affecting faults\n", d.C.Name, len(affecting)) +
			fmt.Sprintf("diagnosable: %d (%.1f%%)  exact: %d  ambiguous: %d  silent: %d\n",
				diagnosable, 100*float64(diagnosable)/float64(len(affecting)), exact, ambiguous, silent)
		if diagnosable > 0 {
			out += fmt.Sprintf("mean candidates per diagnosis: %.2f\n", float64(totalMatches)/float64(diagnosable))
		}
		return out
	}
	t.Fatalf("unexpected kind %q", sp.Kind)
	return ""
}

// TestConcurrentJobsByteIdentical is the acceptance e2e: one server,
// eight concurrent jobs across two distinct circuits and all five
// kinds, every report byte-identical to the direct facade computation.
func TestConcurrentJobsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e server test")
	}
	specs := []serve.Spec{
		{Kind: serve.KindFlow, Circuit: "s27"},
		{Kind: serve.KindFlow, Circuit: "s1423", Scale: 0.05},
		{Kind: serve.KindScreen, Circuit: "s27"},
		{Kind: serve.KindScreen, Circuit: "s1423", Scale: 0.05},
		{Kind: serve.KindFaultSim, Circuit: "s27", Cycles: 300},
		{Kind: serve.KindFaultSim, Circuit: "s1423", Scale: 0.05, Cycles: 300},
		{Kind: serve.KindDiagnose, Circuit: "s27"},
		{Kind: serve.KindATPG, Circuit: "s27"},
	}
	_, h, sink := testServer(t, serve.Config{Runners: 4})

	ids := make([]string, len(specs))
	for i, sp := range specs {
		ids[i] = submit(t, h.URL, sp).ID
	}
	for i, id := range ids {
		v := waitTerminal(t, h.URL, id, 120*time.Second)
		if v.Status != serve.StatusDone {
			t.Fatalf("job %s (%+v): status %s (%s)", id, specs[i], v.Status, v.Error)
		}
	}
	for i, id := range ids {
		want := scrubDurations(expectedOutput(t, specs[i]))
		got := scrubDurations(result(t, h.URL, id))
		if got != want {
			t.Errorf("job %s (%+v) output diverges from facade:\n--- daemon ---\n%s--- facade ---\n%s", id, specs[i], got, want)
		}
	}
	// Every job left a ledger record with server metadata.
	recs := sink.records()
	if len(recs) != len(specs) {
		t.Fatalf("ledger has %d records, want %d", len(recs), len(specs))
	}
	for _, rec := range recs {
		if rec.Server == nil || rec.Server.JobID == "" || rec.Server.Status != string(serve.StatusDone) {
			t.Errorf("record missing server meta: %+v", rec.Server)
		}
	}
}

// TestCancelMidFlight cancels a long fault-simulation while it runs:
// the job ends canceled, its SSE stream terminates with the done
// event, and the ledger records the partial run.
func TestCancelMidFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e server test")
	}
	// Full s9234 has ~100 fault batches: the run takes seconds in total
	// but cancellation (checked at batch boundaries) lands fast.
	_, h, sink := testServer(t, serve.Config{Runners: 1})
	v := submit(t, h.URL, serve.Spec{Kind: serve.KindFaultSim, Circuit: "s9234", Cycles: 3000, Workers: 2})

	// Attach an SSE reader before the cancel so we observe the close.
	sseDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(h.URL + "/api/v1/jobs/" + v.ID + "/events")
		if err != nil {
			sseDone <- "get: " + err.Error()
			return
		}
		defer resp.Body.Close()
		last := ""
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				last = strings.TrimPrefix(line, "event: ")
			}
		}
		sseDone <- last
	}()

	// Wait until it actually runs, then cancel.
	deadline := time.Now().Add(30 * time.Second)
	for jobView(t, h.URL, v.ID).Status != serve.StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err := http.Post(h.URL+"/api/v1/jobs/"+v.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	fin := waitTerminal(t, h.URL, v.ID, 60*time.Second)
	if fin.Status != serve.StatusCanceled {
		t.Fatalf("status after cancel = %s, want canceled", fin.Status)
	}
	select {
	case last := <-sseDone:
		if last != "done" {
			t.Errorf("SSE stream ended on event %q, want done", last)
		}
	case <-time.After(30 * time.Second):
		t.Error("SSE stream did not close after cancellation")
	}
	recs := sink.records()
	if len(recs) != 1 {
		t.Fatalf("ledger has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Server == nil || rec.Server.Status != string(serve.StatusCanceled) {
		t.Fatalf("partial run not recorded as canceled: %+v", rec.Server)
	}
	if rec.Exit == 0 {
		t.Error("canceled record has exit 0")
	}
}

// TestAdmissionControl fills the queue behind a slow job and expects
// 429 on the next submission.
func TestAdmissionControl(t *testing.T) {
	_, h, _ := testServer(t, serve.Config{Runners: 1, QueueLimit: 1})
	blocker := submit(t, h.URL, serve.Spec{Kind: serve.KindFaultSim, Circuit: "s9234", Cycles: 3000, Workers: 1})
	// Wait for the blocker to leave the queue.
	deadline := time.Now().Add(30 * time.Second)
	for jobView(t, h.URL, blocker.ID).Status == serve.StatusQueued {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	submit(t, h.URL, serve.Spec{Kind: serve.KindScreen, Circuit: "s27"}) // fills the queue

	body, _ := json.Marshal(serve.Spec{Kind: serve.KindScreen, Circuit: "s27"})
	resp, err := http.Post(h.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: status %d, want 429", resp.StatusCode)
	}
	// Cancel the blocker so cleanup is quick.
	r2, err := http.Post(h.URL+"/api/v1/jobs/"+blocker.ID+"/cancel", "application/json", nil)
	if err == nil {
		r2.Body.Close()
	}
}

// TestMetricsAndServerEndpoints scrapes /metrics and /api/v1/server
// after a job and checks the serve.* samples are present.
func TestMetricsAndServerEndpoints(t *testing.T) {
	_, h, _ := testServer(t, serve.Config{})
	v := submit(t, h.URL, serve.Spec{Kind: serve.KindScreen, Circuit: "s27"})
	waitTerminal(t, h.URL, v.ID, 60*time.Second)

	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text := readAll(t, resp)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics") {
		t.Errorf("metrics content type = %q", ct)
	}
	for _, want := range []string{"serve_jobs_submitted", "serve_jobs_done", "serve_cache_entries"} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s:\n%s", want, text)
		}
	}

	resp, err = http.Get(h.URL + "/api/v1/server")
	if err != nil {
		t.Fatal(err)
	}
	var sv struct {
		Jobs  map[string]int `json:"jobs"`
		Cache struct {
			Entries int `json:"entries"`
		} `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sv.Jobs["done"] != 1 {
		t.Errorf("server view jobs = %v, want one done", sv.Jobs)
	}
	if sv.Cache.Entries == 0 {
		t.Error("server view reports an empty cache after a screen job")
	}
}

// TestSSEStreamsEvents runs a small job to completion and expects its
// SSE stream to carry journal events and end with done.
func TestSSEStreamsEvents(t *testing.T) {
	_, h, _ := testServer(t, serve.Config{})
	v := submit(t, h.URL, serve.Spec{Kind: serve.KindScreen, Circuit: "s27"})
	resp, err := http.Get(h.URL + "/api/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events, last := 0, ""
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events++
			last = strings.TrimPrefix(line, "event: ")
		}
	}
	if last != "done" {
		t.Errorf("stream ended on %q, want done", last)
	}
	if events < 2 {
		t.Errorf("stream carried %d events, want phase/batch traffic plus done", events)
	}
}

// TestValidation exercises the 400 paths.
func TestValidation(t *testing.T) {
	_, h, _ := testServer(t, serve.Config{})
	for _, sp := range []serve.Spec{
		{},
		{Kind: "nope", Circuit: "s27"},
		{Kind: serve.KindFlow},
		{Kind: serve.KindFlow, Circuit: "not-a-profile"},
		{Kind: serve.KindFlow, Circuit: "s27", Eval: "warp-drive"},
	} {
		body, _ := json.Marshal(sp)
		resp, err := http.Post(h.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %+v: status %d, want 400", sp, resp.StatusCode)
		}
	}
	resp, err := http.Get(h.URL + "/api/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"1024", 1024, false},
		{"4K", 4096, false},
		{"4KiB", 4096, false},
		{"4kb", 4096, false},
		{"256MiB", 256 << 20, false},
		{"1.5G", 3 << 29, false},
		{"2TiB", 2 << 40, false},
		{"", 0, true},
		{"MiB", 0, true},
		{"-1", 0, true},
		{"12XiB", 0, true},
	}
	for _, c := range cases {
		got, err := serve.ParseByteSize(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseByteSize(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseByteSize(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}
