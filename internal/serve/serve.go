// Package serve is the service layer behind cmd/fsctd: a long-lived
// HTTP/JSON daemon that runs screening, ATPG, fault-simulation and
// diagnosis jobs concurrently over the same library facade the batch
// CLIs use, producing byte-identical reports.
//
// The layer composes machinery that already existed for single runs:
//
//   - jobs are admitted into a bounded priority queue (admission
//     control rejects past the bound; higher priority runs earlier,
//     FIFO within a priority) and executed by a fixed runner pool,
//     each under its own context.Context so per-job cancellation rides
//     the cooperative-cancellation plumbing of the facade's *Ctx calls;
//   - every job gets a private flight recorder (internal/journal) whose
//     event stream is bridged to Server-Sent Events, so clients watch
//     per-job progress live;
//   - the shared engine cache is byte-budgeted: the daemon configures
//     LRU eviction (engine.Cache.SetBudget) so artifact memory stays
//     bounded across tenants churning through many circuits;
//   - finished jobs append to the run ledger immediately (one record
//     per job, carrying ledger.ServerMeta), and /metrics exposes the
//     server's lifetime counters plus live cache occupancy in the
//     OpenMetrics text format (internal/obs).
//
// See SERVICE.md at the repository root for the operator's handbook:
// the full endpoint reference, the SSE stream format, queue semantics
// and cache tuning guidance.
package serve

import (
	"context"
	"errors"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/task"
	"repro/internal/telemetry"
)

// LedgerSink receives one completed ledger record per finished job.
// obsflags.Session.AppendRun satisfies it, keeping this package free of
// the cmd-internal flag plumbing.
type LedgerSink interface {
	AppendRun(rec ledger.Record, exit int, wall time.Duration) error
}

// Config tunes a Server. The zero value is usable: default queue bound
// and runner count, a fresh unbudgeted cache, no ledger.
type Config struct {
	// QueueLimit bounds the number of queued (admitted but not yet
	// running) jobs; submissions past the bound are rejected with HTTP
	// 429. 0 selects DefaultQueueLimit.
	QueueLimit int
	// Runners is the number of concurrent job executors. 0 selects
	// GOMAXPROCS capped at 4 (each job parallelizes internally via its
	// Workers spec; more runners mostly adds memory pressure).
	Runners int
	// CacheBudget is the engine cache's byte budget (see
	// engine.Cache.SetBudget); 0 leaves bytes unbounded.
	CacheBudget int64
	// CacheEntries is the engine cache's entry bound; 0 selects
	// engine.DefaultMaxEntries.
	CacheEntries int
	// Cache supplies the artifact cache to serve from. Nil builds a
	// fresh private cache (not engine.Default(), so the daemon's budget
	// cannot evict entries other library users rely on).
	Cache *engine.Cache
	// Ledger, when non-nil, receives one immediately-appended ledger
	// record per finished job (pass the obsflags session).
	Ledger LedgerSink
	// LedgerPath is the JSONL ledger the /api/v1/history endpoint
	// reads. Typically the same path the Session appends to; empty
	// disables the endpoint.
	LedgerPath string
	// StallThreshold is the no-progress age past which the straggler
	// watchdog flags a running unit (surfaced on /api/v1/live and as a
	// warning log). 0 selects telemetry.DefaultStallThreshold; negative
	// disables stall detection.
	StallThreshold time.Duration
	// Logger receives the daemon's structured logs (request lines, job
	// lifecycle, stall warnings), each stamped with RunID. Nil discards.
	Logger *slog.Logger
	// RunID correlates this daemon process's log lines (pass the
	// obsflags session's run id). Empty mints a fresh one.
	RunID string
}

// DefaultQueueLimit bounds the job queue when Config.QueueLimit is 0.
const DefaultQueueLimit = 64

// Server owns the job table, the queue, the runner pool and the engine
// cache. Construct with New, expose with Handler, shut down with Close.
type Server struct {
	cfg   Config
	cache *engine.Cache
	col   *obs.Collector // server-lifetime counters behind /metrics
	sess  LedgerSink
	start time.Time
	log   *slog.Logger
	runID string

	watchdog *telemetry.Watchdog
	liveHub  *hub // bumped on any job's unit-progress transition

	ctx  context.Context
	stop context.CancelFunc
	wg   sync.WaitGroup

	q *jobQueue

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	nextID int64
}

// New builds a server and starts its runner pool.
func New(cfg Config) *Server {
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = DefaultQueueLimit
	}
	if cfg.Runners <= 0 {
		cfg.Runners = runtime.GOMAXPROCS(0)
		if cfg.Runners > 4 {
			cfg.Runners = 4
		}
	}
	cache := cfg.Cache
	if cache == nil {
		cache = engine.New()
	}
	if cfg.CacheBudget > 0 {
		cache.SetBudget(cfg.CacheBudget)
	}
	if cfg.CacheEntries > 0 {
		cache.SetMaxEntries(cfg.CacheEntries)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = telemetry.Discard()
	}
	runID := cfg.RunID
	if runID == "" {
		// A caller-supplied RunID means the caller's logger already
		// stamps run_id on every line (the obsflags session does); only
		// a minted one needs attaching here.
		runID = telemetry.NewRunID()
		logger = logger.With(slog.String(telemetry.KeyRunID, runID))
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   cache,
		col:     obs.New(),
		sess:    cfg.Ledger,
		start:   time.Now(),
		log:     logger,
		runID:   runID,
		liveHub: newHub(),
		ctx:     ctx,
		stop:    stop,
		q:       newJobQueue(cfg.QueueLimit),
		jobs:    make(map[string]*Job),
	}
	s.watchdog = telemetry.NewWatchdog(cfg.StallThreshold, 0, logger)
	s.watchdog.OnStall = func(stalls []telemetry.Stall) {
		s.col.Counter("serve.units.stalls").Add(int64(len(stalls)))
		s.liveHub.bump()
	}
	s.wg.Add(cfg.Runners + 1)
	go func() {
		defer s.wg.Done()
		s.watchdog.Run(ctx)
	}()
	for i := 0; i < cfg.Runners; i++ {
		go s.runner()
	}
	return s
}

// Watchdog returns the server's straggler watchdog (tests sweep it with
// a fake clock).
func (s *Server) Watchdog() *telemetry.Watchdog { return s.watchdog }

// Cache returns the server's engine cache (tests inspect its Stats).
func (s *Server) Cache() *engine.Cache { return s.cache }

// Close stops accepting queue pops, cancels every running job, and
// waits for the runner pool to drain. Queued jobs that never ran are
// marked canceled. Safe to call once; the HTTP handler should be shut
// down first so no submissions race the teardown.
func (s *Server) Close() {
	s.stop()    // cancels every job context
	s.q.close() // wakes idle runners
	s.wg.Wait()
	// Jobs still queued at teardown never reached a runner.
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.status == StatusQueued {
			j.status = StatusCanceled
			j.errMsg = "server shutting down"
			j.finished = time.Now()
			j.mu.Unlock()
			j.hub.close()
		} else {
			j.mu.Unlock()
		}
	}
	s.liveHub.close()
	s.log.Info("server stopped", slog.Duration("uptime", time.Since(s.start)))
}

// Submit validates and admits one job. It returns the registered job,
// or ErrQueueFull when admission control rejects it, or a validation
// error.
func (s *Server) Submit(sp Spec) (*Job, error) {
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.nextID++
	j := newJob(s.ctx, s.nextID, sp)
	s.mu.Unlock()

	if err := s.q.push(j); err != nil {
		j.cancel()
		s.col.Counter("serve.jobs.rejected").Inc()
		s.log.Warn("job rejected",
			slog.String("kind", sp.Kind), slog.String("circuit", sp.Circuit),
			slog.String("error", err.Error()))
		return nil, err
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.mu.Unlock()
	s.col.Counter("serve.jobs.submitted").Inc()
	s.log.Info("job submitted",
		slog.String(telemetry.KeyJobID, j.id),
		slog.String(telemetry.KeyTraceID, j.tctx.Trace.String()),
		slog.String("kind", sp.Kind), slog.String("circuit", sp.Circuit),
		slog.Int("units", sp.Units), slog.Int("priority", sp.Priority))
	return j, nil
}

// Job returns the job registered under id, or nil.
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Jobs returns every registered job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels the named job: a queued job is withdrawn without ever
// running, a running job's context fires and the job winds down at the
// facade's next cancellation point (its partial output and metrics are
// kept). Returns false when the job is unknown or already terminal.
func (s *Server) Cancel(id string) bool {
	j := s.Job(id)
	if j == nil {
		return false
	}
	j.mu.Lock()
	switch j.status {
	case StatusQueued:
		j.status = StatusCanceled
		j.errMsg = "canceled before start"
		now := time.Now()
		j.finished = now
		j.queueWait = now.Sub(j.submitted)
		j.mu.Unlock()
		s.q.remove(j)
		j.cancel()
		j.hub.close()
		s.col.Counter("serve.jobs.canceled").Inc()
		s.record(j, nil, nil)
		return true
	case StatusRunning:
		j.mu.Unlock()
		j.cancel()
		return true
	default:
		j.mu.Unlock()
		return false
	}
}

// runner is one executor: it pops admitted jobs until the queue closes.
func (s *Server) runner() {
	defer s.wg.Done()
	for {
		j := s.q.pop()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one popped job end to end: status transitions, the
// unit tracker and watchdog registration, the task pipeline, terminal
// accounting, the SSE close and the ledger record.
func (s *Server) runJob(j *Job) {
	j.mu.Lock()
	if j.status != StatusQueued { // canceled between pop and here
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.queueWait = j.started.Sub(j.submitted)
	tracker := telemetry.NewRunTracker(telemetry.Info{
		RunID: s.runID, JobID: j.id,
		Kind: j.spec.Kind, Circuit: j.spec.Circuit,
		TraceID: j.tctx.Trace.String(),
	}, s.log)
	j.tracker = tracker
	j.mu.Unlock()
	// Unit transitions wake both the job's own SSE stream and the
	// server-wide live stream; journal events keep waking the job stream
	// and double as the tracker's progress heartbeat.
	tracker.SetOnChange(func() {
		j.hub.bump()
		s.liveHub.bump()
	})
	j.rec.SetObserver(func(e journal.Event) {
		tracker.Observe(e)
		j.hub.bump()
	})
	s.watchdog.Register(tracker)
	defer s.watchdog.Unregister(tracker)
	j.hub.bump()
	s.log.Info("job started",
		slog.String(telemetry.KeyJobID, j.id),
		slog.String("kind", j.spec.Kind), slog.String("circuit", j.spec.Circuit),
		slog.Duration("queue_wait", j.queueWait))

	col := obs.New()
	col.SetJournal(j.rec)
	// Plan explicitly (rather than task.Run) so the tracker knows the
	// whole shard map before the first unit starts; the merged result is
	// byte-identical to task.Run's at any unit count.
	ctx := task.WithTracker(j.ctx, tracker)
	var res *task.Result
	units, err := task.Plan(j.spec, j.spec.Units, s.cache)
	if err == nil {
		tracker.SetPlan(units)
		res, err = task.RunUnits(ctx, units, s.cache, col)
	}

	j.mu.Lock()
	j.finished = time.Now()
	if res != nil {
		j.output = res.Output
		j.hash = res.Hash // trace resource attribute
	}
	var counter string
	switch {
	case err == nil:
		j.status = StatusDone
		counter = "serve.jobs.done"
	case errors.Is(err, context.Canceled):
		j.status = StatusCanceled
		j.errMsg = "canceled"
		counter = "serve.jobs.canceled"
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
		counter = "serve.jobs.failed"
	}
	status := j.status
	wall := j.finished.Sub(j.started)
	j.mu.Unlock()
	j.cancel() // release the context's resources
	j.hub.close()
	s.liveHub.bump()
	s.col.Counter(counter).Inc()
	attrs := []any{
		slog.String(telemetry.KeyJobID, j.id),
		slog.String("status", string(status)), slog.Duration("wall", wall),
	}
	if err != nil && status == StatusFailed {
		s.log.Warn("job finished", append(attrs, slog.String("error", err.Error()))...)
	} else {
		s.log.Info("job finished", attrs...)
	}
	s.record(j, col.Snapshot(), res)
}

// record appends the job's ledger record immediately (daemons cannot
// defer durability to process exit the way one-shot CLIs do). No-op
// without a session or when the session has no -ledger.
func (s *Server) record(j *Job, m *obs.Metrics, res *task.Result) {
	if s.sess == nil {
		return
	}
	var circuit string
	var hash uint64
	var extras map[string]float64
	if res != nil {
		circuit, hash, extras = res.Circuit, res.Hash, res.Extras
	}
	flat := ledger.FlattenMetrics(m)
	if flat == nil && len(extras) > 0 {
		flat = make(map[string]float64, len(extras))
	}
	for k, v := range extras {
		flat[k] = v
	}
	j.mu.Lock()
	meta := &ledger.ServerMeta{
		JobID:    j.id,
		Kind:     j.spec.Kind,
		Priority: j.spec.Priority,
		Status:   string(j.status),
		QueueNS:  j.queueWait.Nanoseconds(),
	}
	exit := 0
	if j.status != StatusDone {
		exit = 1
	}
	wall := j.finished.Sub(j.started)
	if j.started.IsZero() { // canceled while queued
		wall = 0
	}
	j.mu.Unlock()
	rec := ledger.Record{Circuit: circuit, Metrics: flat, Server: meta}
	if hash != 0 {
		rec.Hash = ledger.HashString(hash)
	}
	_ = s.sess.AppendRun(rec, exit, wall)
}
