package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/trace"
)

// inboundTP is the canonical W3C example traceparent: trace
// 4bf92f3577b34da6a3ce929d0e0e4736, caller span 00f067aa0ba902b7.
const inboundTP = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

// fetchTrace pulls a job's assembled span tree off the trace endpoint.
func fetchTrace(t *testing.T, base, id string) trace.Trace {
	t.Helper()
	resp, err := http.Get(base + "/api/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: status %d", id, resp.StatusCode)
	}
	tr, err := trace.ReadOTLP(resp.Body)
	if err != nil {
		t.Fatalf("trace %s: %v", id, err)
	}
	return tr
}

// TestTraceLinkage is the end-to-end acceptance check: a job submitted
// with a traceparent yields a span tree where the job span parents to
// the inbound (caller) span and every unit span parents to the job
// span.
func TestTraceLinkage(t *testing.T) {
	_, h, _ := testServer(t, serve.Config{Runners: 2})

	v := submit(t, h.URL, serve.Spec{
		Kind: serve.KindFaultSim, Circuit: "s3384",
		Scale: 0.05, Cycles: 100, Units: 3,
		TraceParent: inboundTP,
	})
	if v.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("view trace_id = %q, want inbound trace", v.TraceID)
	}
	fv := waitTerminal(t, h.URL, v.ID, 30*time.Second)
	if fv.Status != serve.StatusDone {
		t.Fatalf("job %s finished %s (%s)", v.ID, fv.Status, fv.Error)
	}

	tr := fetchTrace(t, h.URL, v.ID)
	if got := tr.Ctx.Trace.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %s, want inbound trace", got)
	}
	if got := tr.Parent.String(); got != "00f067aa0ba902b7" {
		t.Fatalf("job span parent = %s, want inbound span", got)
	}
	if len(tr.Spans) == 0 {
		t.Fatal("no spans")
	}
	root := tr.Spans[0]
	if root.Kind != trace.SpanRoot || root.Name != "job "+v.ID {
		t.Fatalf("root span = %q kind %q, want job %s root", root.Name, root.Kind, v.ID)
	}
	if root.Parent != tr.Parent {
		t.Fatalf("root span parent field = %s, want inbound span %s", root.Parent, tr.Parent)
	}

	units := 0
	for _, sp := range tr.Spans[1:] {
		switch sp.Kind {
		case trace.SpanUnit:
			units++
			if sp.Parent != root.ID {
				t.Errorf("unit span %q parents to %s, want job span %s", sp.Name, sp.Parent, root.ID)
			}
			if sp.Unclosed {
				t.Errorf("unit span %q unclosed on a done job", sp.Name)
			}
		case trace.SpanRoot:
			t.Errorf("second root span %q", sp.Name)
		}
		if sp.ID.IsZero() {
			t.Errorf("span %q has zero ID", sp.Name)
		}
	}
	if units != 3 {
		t.Fatalf("unit spans = %d, want 3", units)
	}

	// Resource attributes self-describe the run.
	attrs := map[string]string{}
	for _, a := range tr.Resource {
		attrs[a.Key] = a.Value
	}
	for _, want := range []struct{ k, v string }{
		{"job_id", v.ID}, {"kind", "faultsim"}, {"circuit", "s3384"},
		{"status", "done"}, {"journal.dropped_events", "0"},
	} {
		if attrs[want.k] != want.v {
			t.Errorf("resource %s = %q, want %q", want.k, attrs[want.k], want.v)
		}
	}
	if attrs["structural_hash"] == "" {
		t.Error("resource structural_hash missing on a done job")
	}
}

// TestTraceHeaderJoin covers the HTTP propagation path: a traceparent
// request header (no body field) joins the job to the caller's trace,
// and a malformed header is ignored rather than rejected.
func TestTraceHeaderJoin(t *testing.T) {
	_, h, _ := testServer(t, serve.Config{Runners: 1})

	post := func(header string) serve.View {
		t.Helper()
		body, _ := json.Marshal(serve.Spec{Kind: serve.KindScreen, Circuit: "s27"})
		req, err := http.NewRequest(http.MethodPost, h.URL+"/api/v1/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if header != "" {
			req.Header.Set("traceparent", header)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit with header %q: status %d", header, resp.StatusCode)
		}
		var v serve.View
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		return v
	}

	joined := post(inboundTP)
	if joined.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("header join: trace_id = %q, want inbound trace", joined.TraceID)
	}
	waitTerminal(t, h.URL, joined.ID, 30*time.Second)
	tr := fetchTrace(t, h.URL, joined.ID)
	if got := tr.Parent.String(); got != "00f067aa0ba902b7" {
		t.Errorf("header join: job span parent = %s, want inbound span", got)
	}

	// Malformed header: advisory per W3C — accepted, fresh trace rooted.
	fresh := post("00-zzzz-bad-01")
	if fresh.TraceID == "" || fresh.TraceID == joined.TraceID {
		t.Errorf("malformed header: trace_id = %q, want a fresh trace", fresh.TraceID)
	}
}
