package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/journal"
)

// hub is a change-notification primitive between one job's journal and
// any number of SSE readers. It carries no events itself — readers keep
// their own cursor into the job's journal (Recorder.Since) and the hub
// only tells them "something changed": bump closes the current notify
// channel and installs a fresh one (an epoch), so every waiter wakes
// exactly once per change and none can miss a change that lands between
// reading the journal and blocking. close retires the hub for good: the
// final channel stays closed, so late waiters return immediately and
// find the terminal state.
type hub struct {
	mu     sync.Mutex
	ch     chan struct{}
	closed bool
}

func newHub() *hub {
	return &hub{ch: make(chan struct{})}
}

// bump wakes current waiters (new events, status change).
func (h *hub) bump() {
	h.mu.Lock()
	if !h.closed {
		close(h.ch)
		h.ch = make(chan struct{})
	}
	h.mu.Unlock()
}

// close wakes current and all future waiters (job terminal).
func (h *hub) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		close(h.ch)
	}
	h.mu.Unlock()
}

// wait returns the current epoch's channel; it is closed at the next
// bump (or immediately when the hub is closed).
func (h *hub) wait() <-chan struct{} {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ch
}

// sseEvent is the JSON payload of one streamed journal event (field
// names mirror journal.Event, lowercased).
type sseEvent struct {
	TNS    int64  `json:"t_ns"`
	DurNS  int64  `json:"dur_ns,omitempty"`
	Kind   string `json:"kind"`
	Arg    string `json:"arg,omitempty"`
	Worker int32  `json:"worker,omitempty"`
	A      int64  `json:"a,omitempty"`
	B      int64  `json:"b,omitempty"`
	C      int64  `json:"c,omitempty"`
	D      int64  `json:"d,omitempty"`
}

// handleEvents streams a job's journal as Server-Sent Events: one
// `event: <kind>` / `data: <json>` pair per journal event, in emission
// order, followed by a final `event: done` carrying the terminal job
// view once the job finishes and the stream drains. The stream also
// ends when the client disconnects. A ?kinds=batch,atpg filter keeps
// only the named event kinds (the done event always passes).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	keep := kindFilter(r.URL.Query().Get("kinds"))

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	cursor := 0
	for {
		// Grab the epoch before reading, so a change landing after the
		// read is guaranteed to wake the wait below.
		epoch := j.hub.wait()
		evs := j.rec.Since(cursor)
		if len(evs) > 0 {
			cursor += len(evs)
			for i := range evs {
				if !keep(evs[i].Kind) {
					continue
				}
				writeSSE(w, evs[i])
			}
			flusher.Flush()
			continue
		}
		if j.Status().Terminal() {
			payload, _ := json.Marshal(j.View())
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", payload)
			flusher.Flush()
			return
		}
		select {
		case <-epoch:
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w http.ResponseWriter, e journal.Event) {
	payload, _ := json.Marshal(sseEvent{
		TNS: e.TNS, DurNS: e.DurNS, Kind: e.Kind.String(), Arg: e.Arg,
		Worker: e.Worker, A: e.A, B: e.B, C: e.C, D: e.D,
	})
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Kind.String(), payload)
}

// kindFilter parses the ?kinds= comma list into a predicate (empty
// list admits everything).
func kindFilter(list string) func(journal.Kind) bool {
	if list == "" {
		return func(journal.Kind) bool { return true }
	}
	want := map[string]bool{}
	for _, k := range splitComma(list) {
		want[k] = true
	}
	return func(k journal.Kind) bool { return want[k.String()] }
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
