package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// LiveJob is one job's entry on /api/v1/live: identity, lifecycle
// state, and the unit-progress snapshot (null while the job is queued —
// no runner has planned it yet).
type LiveJob struct {
	ID      string `json:"id"`
	Kind    string `json:"kind"`
	Circuit string `json:"circuit"`
	// TraceID is the job's distributed-trace identity, the handle into
	// GET /api/v1/trace/{id}: a dashboard can jump from a stalled unit
	// straight to the job's span tree.
	TraceID  string              `json:"trace_id,omitempty"`
	Status   Status              `json:"status"`
	Progress *telemetry.Snapshot `json:"progress"`
}

// LiveView is the /api/v1/live response: every job's unit progress plus
// the watchdog's stall threshold, so a dashboard can render "no
// heartbeat for X of Y" without knowing the daemon's flags.
type LiveView struct {
	StallThresholdNS int64     `json:"stall_threshold_ns"`
	Jobs             []LiveJob `json:"jobs"`
}

// liveSnapshot freezes the live view. With runningOnly, terminal and
// queued jobs are dropped.
func (s *Server) liveSnapshot(runningOnly bool) LiveView {
	v := LiveView{
		StallThresholdNS: s.watchdog.Threshold().Nanoseconds(),
		Jobs:             []LiveJob{},
	}
	for _, j := range s.Jobs() {
		st := j.Status()
		if runningOnly && st != StatusRunning {
			continue
		}
		v.Jobs = append(v.Jobs, LiveJob{
			ID: j.ID(), Kind: j.spec.Kind, Circuit: j.spec.Circuit,
			TraceID: j.tctx.Trace.String(),
			Status:  st, Progress: j.Live(),
		})
	}
	return v
}

// handleLive serves the live introspection snapshot: per-job unit
// progress, throughput, ETA and stall flags. ?running=1 keeps only
// running jobs.
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.liveSnapshot(r.URL.Query().Get("running") == "1"))
}

// handleLiveEvents streams the live view as Server-Sent Events: one
// `event: live` frame per unit-progress transition (unit start/finish,
// stall flag, job terminal), coalesced under the same epoch-channel hub
// the per-job streams use, plus a periodic refresh so wall-clock fields
// (idle age, ETA) stay current during long quiet units. The stream ends
// when the client disconnects or the server shuts down.
func (s *Server) handleLiveEvents(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	refresh := time.NewTicker(2 * time.Second)
	defer refresh.Stop()
	for {
		// Grab the epoch before snapshotting, so a transition landing
		// after the snapshot is guaranteed to wake the wait below.
		epoch := s.liveHub.wait()
		payload, _ := json.Marshal(s.liveSnapshot(false))
		fmt.Fprintf(w, "event: live\ndata: %s\n\n", payload)
		flusher.Flush()
		select {
		case <-epoch:
			if s.ctx.Err() != nil {
				return
			}
		case <-refresh.C:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}
