package serve

import (
	"container/heap"
	"errors"
	"sync"
)

// ErrQueueFull is the admission-control rejection: the queue already
// holds its configured bound of waiting jobs. Clients should back off
// and resubmit; the HTTP layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: job queue full")

// jobQueue is the bounded priority queue between Submit and the runner
// pool: higher Spec.Priority pops first, FIFO (admission order) within
// a priority. The bound counts waiting jobs only — jobs hand their
// queue slot back the moment a runner pops them.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	heap   jobHeap
	limit  int
	closed bool
}

func newJobQueue(limit int) *jobQueue {
	q := &jobQueue{limit: limit}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits j or rejects with ErrQueueFull.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errors.New("serve: server closed")
	}
	if len(q.heap) >= q.limit {
		return ErrQueueFull
	}
	heap.Push(&q.heap, j)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available and returns it, or returns nil
// once the queue is closed (remaining entries are abandoned — Close
// marks them canceled).
func (q *jobQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for !q.closed && len(q.heap) == 0 {
		q.cond.Wait()
	}
	if q.closed {
		return nil
	}
	return heap.Pop(&q.heap).(*Job)
}

// remove withdraws a still-queued job (cancellation); reports whether
// it was present.
func (q *jobQueue) remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if j.index < 0 || j.index >= len(q.heap) || q.heap[j.index] != j {
		return false
	}
	heap.Remove(&q.heap, j.index)
	return true
}

// depth returns the number of waiting jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.heap)
}

// close wakes every blocked pop with nil.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// jobHeap orders jobs by priority (descending), then admission
// sequence (ascending) so equal priorities run first-come first-served.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }

func (h jobHeap) Less(a, b int) bool {
	if h[a].spec.Priority != h[b].spec.Priority {
		return h[a].spec.Priority > h[b].spec.Priority
	}
	return h[a].seq < h[b].seq
}

func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}

func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.index = len(*h)
	*h = append(*h, j)
}

func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}
