package ledger

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func testRecord(cli, circuit string, at time.Time) Record {
	return Record{
		Schema:  Schema,
		Time:    at,
		CLI:     cli,
		Circuit: circuit,
		Hash:    HashString(0xdeadbeef),
		Flags:   map[string]string{"scale": "0.1"},
		WallNS:  123456,
		Metrics: map[string]float64{"counters.faultsim.detected": 42},
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	if err := Append(path, testRecord("fsctest", "s27", t0)); err != nil {
		t.Fatal(err)
	}
	// Second append reopens the file — records must accumulate.
	if err := Append(path,
		testRecord("fsctest", "s1423", t0.Add(time.Minute)),
		testRecord("faultsim", "s27", t0.Add(2*time.Minute))); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	r := recs[0]
	if r.Schema != Schema || r.CLI != "fsctest" || r.Circuit != "s27" {
		t.Fatalf("first record corrupted: %+v", r)
	}
	if r.Hash != "00000000deadbeef" || r.Flags["scale"] != "0.1" {
		t.Fatalf("hash/flags lost: %+v", r)
	}
	if r.Metrics["counters.faultsim.detected"] != 42 {
		t.Fatalf("metrics lost: %+v", r.Metrics)
	}
	if !recs[2].Time.After(recs[0].Time) {
		t.Fatal("append order not preserved")
	}
}

// TestReadToleratesTornTail: a run killed mid-write leaves a partial
// final line; Read must drop it and keep everything before it.
func TestReadToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := Append(path, testRecord("fsctest", "s27", time.Now())); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":1,"cli":"faultsim","circ`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := Read(path)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].CLI != "fsctest" {
		t.Fatalf("read %+v, want the one intact record", recs)
	}
}

// TestReadRejectsMidFileCorruption: a bad line with valid records after
// it is not a torn tail — it is corruption and must error.
func TestReadRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	good := `{"schema":1,"cli":"fsctest"}`
	content := good + "\n" + `{"schema":1,` + "\n" + good + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("mid-file corruption accepted (err=%v)", err)
	}
}

func TestFilter(t *testing.T) {
	t0 := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	recs := []Record{
		testRecord("fsctest", "s27", t0),
		testRecord("fsctest", "s1423", t0.Add(time.Hour)),
		testRecord("faultsim", "s27", t0.Add(2*time.Hour)),
		testRecord("fsctest", "s27", t0.Add(3*time.Hour)),
	}
	if got := (Filter{Circuit: "s27"}).Apply(recs); len(got) != 3 {
		t.Fatalf("circuit filter kept %d, want 3", len(got))
	}
	if got := (Filter{CLI: "faultsim"}).Apply(recs); len(got) != 1 || got[0].Circuit != "s27" {
		t.Fatalf("cli filter = %+v", got)
	}
	if got := (Filter{Since: t0.Add(90 * time.Minute)}).Apply(recs); len(got) != 2 {
		t.Fatalf("since filter kept %d, want 2", len(got))
	}
	got := (Filter{Circuit: "s27", Last: 2}).Apply(recs)
	if len(got) != 2 || !got[1].Time.After(got[0].Time) || !got[0].Time.After(t0) {
		t.Fatalf("last cut must keep the newest two in order: %+v", got)
	}
	if got := (Filter{}).Apply(recs); len(got) != 4 {
		t.Fatal("zero filter must match everything")
	}
}

// TestFlattenMetrics: the obs snapshot flattens to dotted numeric keys,
// with phase array elements labeled by name.
func TestFlattenMetrics(t *testing.T) {
	col := obs.New()
	col.Counter("engine.cache.hits").Add(7)
	col.Histogram("atpg.backtracks").Observe(100)
	col.Phase("screen").End()
	flat := FlattenMetrics(col.Snapshot())
	if flat["counters.engine.cache.hits"] != 7 {
		t.Fatalf("counter key missing: %v", flat)
	}
	if flat["histograms.atpg.backtracks.count"] != 1 {
		t.Fatalf("histogram count missing: %v", flat)
	}
	if _, ok := flat["phases.screen.wall_ns"]; !ok {
		t.Fatalf("phase not labeled by name: %v", flat)
	}
	if FlattenMetrics(nil) != nil {
		t.Fatal("nil snapshot must flatten to nil")
	}
}

func TestAppendNothingIsNoop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	if err := Append(path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("empty append must not create the file")
	}
}
