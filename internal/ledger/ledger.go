// Package ledger is the persistent run history of the CLIs: an
// append-only JSONL file where every opted-in run (-ledger <path>, see
// cmd/internal/obsflags) leaves one schema-versioned record per circuit
// it processed — timestamp, CLI name, circuit structural hash, the
// flags the run was invoked with, exit status, wall time, and the
// flattened observability metrics snapshot.
//
// The format is deliberately boring: one JSON object per line, appended
// with a single O_APPEND write per run, no index, no compaction. That
// makes writes crash-safe in the only way that matters for a ledger —
// a run killed mid-write can corrupt at most the final line, and Read
// tolerates exactly that (a torn last line is dropped; corruption
// anywhere else is an error worth hearing about). Concurrent appenders
// on one machine interleave whole lines through O_APPEND.
//
// cmd/fsctstats queries the ledger: filtering, per-circuit trends, and
// cross-run drift detection against a rolling median (sharing the
// threshold machinery of internal/metriccmp with cmd/benchdiff).
package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/metriccmp"
	"repro/internal/obs"
)

// Schema is the current record schema version, stamped into every
// appended record so future readers can migrate old ledgers.
const Schema = 1

// Record is one ledger line: one CLI run over one circuit (commands
// that process several circuits append one record each; commands with
// no circuit leave Circuit and Hash empty).
type Record struct {
	// Schema is the record's schema version (see the package constant).
	Schema int `json:"schema"`
	// Time is when the run started.
	Time time.Time `json:"time"`
	// CLI is the command name (fsctest, faultsim, ...).
	CLI string `json:"cli"`
	// Circuit is the circuit name the record covers, if any.
	Circuit string `json:"circuit,omitempty"`
	// Hash is the circuit's structural hash (the engine cache key),
	// rendered as 16 hex digits; runs on a structurally identical
	// circuit carry the same hash even across machines.
	Hash string `json:"hash,omitempty"`
	// Flags holds the flags explicitly set on the command line.
	Flags map[string]string `json:"flags,omitempty"`
	// Exit is the process exit status (non-zero for failed or
	// interrupted runs — partial SIGINT runs are recorded too).
	Exit int `json:"exit"`
	// WallNS is the process wall time at flush, in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Metrics is the flattened observability snapshot: every numeric
	// leaf of obs.Metrics keyed by dotted path ("counters.engine.cache.
	// hits", "histograms.atpg.backtracks.p95", "pools.screen.
	// utilization"), plus CLI-provided headline scalars such as
	// "coverage".
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Server describes the daemon job the record came from, when the
	// run executed inside fsctd rather than a batch CLI. Nil for batch
	// records; readers must tolerate its absence (records written
	// before the service layer existed never carry it).
	Server *ServerMeta `json:"server,omitempty"`
}

// ServerMeta is the daemon-side identity of a ledger record: which
// fsctd job produced it and how that job fared in the queue.
type ServerMeta struct {
	// JobID is the daemon-assigned job identifier.
	JobID string `json:"job_id"`
	// Kind is the job kind (flow, screen, atpg, faultsim, diagnose).
	Kind string `json:"kind"`
	// Priority is the submitted queue priority (higher runs earlier).
	Priority int `json:"priority"`
	// Status is the terminal job status (done, failed, canceled).
	Status string `json:"status"`
	// QueueNS is how long the job waited for a runner, in nanoseconds.
	QueueNS int64 `json:"queue_ns"`
}

// HashString renders a structural hash the way Record.Hash stores it.
func HashString(h uint64) string { return fmt.Sprintf("%016x", h) }

// FlattenMetrics reduces an obs snapshot to the flat numeric map a
// Record carries. Nil in, nil out.
func FlattenMetrics(m *obs.Metrics) map[string]float64 {
	if m == nil {
		return nil
	}
	flat, err := metriccmp.FlattenValue(m)
	if err != nil {
		// obs.Metrics is plain data; its JSON round trip cannot fail.
		// Keep the record rather than losing the run over a metric map.
		return nil
	}
	return flat
}

// Append appends the records to the JSONL ledger at path, creating the
// file (and nothing else — the parent directory must exist) on first
// use. All lines go out in one write on an O_APPEND descriptor, so
// concurrent appenders interleave whole records, and a crash can tear
// at most the file's final line.
func Append(path string, recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf strings.Builder
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("ledger: encode record: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("ledger: %w", err)
	}
	_, werr := f.WriteString(buf.String())
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("ledger: append %s: %w", path, werr)
	}
	return nil
}

// Read parses every record in the ledger at path, in file order (which
// is append order: oldest first). Blank lines are skipped. A final line
// that fails to parse is dropped silently — that is the torn write of a
// crashed run, the case the append protocol explicitly leaves behind —
// but a malformed line anywhere earlier is an error, because it means
// the file was edited or corrupted, not torn.
func Read(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()

	var (
		recs    []Record
		pending string // candidate torn line: bad JSON, tolerated only at EOF
		lineNo  int
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if pending != "" {
			return nil, fmt.Errorf("ledger: %s:%d: malformed record mid-file", path, lineNo-1)
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			pending = line
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: read %s: %w", path, err)
	}
	return recs, nil
}

// Filter selects ledger records. The zero value matches everything.
type Filter struct {
	// CLI keeps only records from this command, when non-empty.
	CLI string
	// Circuit keeps only records for this circuit name, when non-empty.
	Circuit string
	// Since keeps only records at or after this time, when non-zero.
	Since time.Time
	// Last keeps only the newest N matching records, when positive.
	Last int
}

// Match reports whether one record passes the CLI / circuit / time
// criteria (Last is an Apply-level cut, not per record).
func (f Filter) Match(r Record) bool {
	if f.CLI != "" && r.CLI != f.CLI {
		return false
	}
	if f.Circuit != "" && r.Circuit != f.Circuit {
		return false
	}
	if !f.Since.IsZero() && r.Time.Before(f.Since) {
		return false
	}
	return true
}

// Apply filters records (which must be in append order) and applies the
// Last cut, preserving order.
func (f Filter) Apply(recs []Record) []Record {
	var out []Record
	for _, r := range recs {
		if f.Match(r) {
			out = append(out, r)
		}
	}
	if f.Last > 0 && len(out) > f.Last {
		out = out[len(out)-f.Last:]
	}
	return out
}
