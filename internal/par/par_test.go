package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16, 100} {
		const n = 257
		counts := make([]atomic.Int32, n)
		Do(workers, n, func(_, i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestDoWorkerIDsAreDense(t *testing.T) {
	const workers, n = 4, 64
	var seen [workers]atomic.Int32
	Do(workers, n, func(w, _ int) {
		if w < 0 || w >= workers {
			t.Errorf("worker ID %d out of range", w)
			return
		}
		seen[w].Add(1)
	})
	total := int32(0)
	for i := range seen {
		total += seen[i].Load()
	}
	if total != n {
		t.Errorf("visited %d indices, want %d", total, n)
	}
}

func TestDoDeterministicMerge(t *testing.T) {
	// Writes keyed by index must produce identical output at any width.
	const n = 500
	ref := make([]int, n)
	Do(1, n, func(_, i int) { ref[i] = i * i })
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		got := make([]int, n)
		Do(workers, n, func(_, i int) { got[i] = i * i })
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestDoEmptyAndSerialInline(t *testing.T) {
	Do(4, 0, func(_, _ int) { t.Error("fn called for n=0") })
	// workers=1 must run on the calling goroutine (no races on plain locals).
	sum := 0
	Do(1, 10, func(_, i int) { sum += i })
	if sum != 45 {
		t.Errorf("serial sum = %d", sum)
	}
}

func TestChunks(t *testing.T) {
	if c := Chunks(0, 63); c != nil {
		t.Errorf("Chunks(0) = %v", c)
	}
	if c := Chunks(10, 0); len(c) != 1 || c[0] != (Range{0, 10}) {
		t.Errorf("Chunks(10,0) = %v", c)
	}
	c := Chunks(200, 63)
	want := []Range{{0, 63}, {63, 126}, {126, 189}, {189, 200}}
	if len(c) != len(want) {
		t.Fatalf("Chunks(200,63) = %v", c)
	}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, c[i], want[i])
		}
	}
	if c[len(c)-1].Len() != 11 {
		t.Errorf("tail chunk len = %d", c[len(c)-1].Len())
	}
}

func TestBitSet(t *testing.T) {
	b := NewBitSet(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh set: len %d count %d", b.Len(), b.Count())
	}
	if !b.Set(0) || !b.Set(64) || !b.Set(129) {
		t.Error("first Set returned false")
	}
	if b.Set(64) {
		t.Error("second Set(64) returned true")
	}
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("membership wrong")
	}
	if b.Count() != 3 {
		t.Errorf("count = %d", b.Count())
	}
}

func TestBitSetConcurrent(t *testing.T) {
	const n = 4096
	b := NewBitSet(n)
	var newly atomic.Int64
	// Every index set twice concurrently: exactly n "newly added" wins.
	Do(8, 2*n, func(_, i int) {
		if b.Set(i % n) {
			newly.Add(1)
		}
	})
	if newly.Load() != n {
		t.Errorf("newly added = %d, want %d", newly.Load(), n)
	}
	if b.Count() != n {
		t.Errorf("count = %d, want %d", b.Count(), n)
	}
}

func TestDoTimedCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 500
		var hits [n]atomic.Int32
		stats := DoTimed(workers, n, func(_, i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, got)
			}
		}
		var items int64
		for _, s := range stats {
			items += s.Items
		}
		if items != n {
			t.Fatalf("workers=%d: item counts sum to %d, want %d", workers, items, n)
		}
		want := workers
		if want > n {
			want = n
		}
		if len(stats) != want {
			t.Fatalf("workers=%d: %d stats entries, want %d", workers, len(stats), want)
		}
	}
	if got := DoTimed(4, 0, func(_, _ int) {}); got != nil {
		t.Fatalf("n=0 must return nil, got %v", got)
	}
}

func TestDoTimedSerialInline(t *testing.T) {
	var worker atomic.Int32
	stats := DoTimed(1, 10, func(w, _ int) { worker.Store(int32(w)) })
	if worker.Load() != 0 {
		t.Fatal("serial path must use worker 0")
	}
	if len(stats) != 1 || stats[0].Items != 10 || stats[0].Busy < 0 {
		t.Fatalf("serial stats = %+v", stats)
	}
}

func TestShards(t *testing.T) {
	cases := []struct {
		total, chunk, n int
		want            []Range
	}{
		{0, 63, 4, nil},
		{-5, 63, 4, nil},
		{100, 63, 1, []Range{{0, 100}}},
		// 200 faults = 4 batches of 63; 3 shards take 2+1+1 batches.
		{200, 63, 3, []Range{{0, 126}, {126, 189}, {189, 200}}},
		// More shards than batches collapses to one shard per batch.
		{100, 63, 10, []Range{{0, 63}, {63, 100}}},
		// chunk <= 0 falls back to unit batches; n < 1 to one shard.
		{10, 0, 3, []Range{{0, 4}, {4, 7}, {7, 10}}},
		{10, 3, 0, []Range{{0, 10}}},
	}
	for _, c := range cases {
		got := Shards(c.total, c.chunk, c.n)
		if len(got) != len(c.want) {
			t.Errorf("Shards(%d,%d,%d) = %v, want %v", c.total, c.chunk, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Shards(%d,%d,%d)[%d] = %v, want %v", c.total, c.chunk, c.n, i, got[i], c.want[i])
			}
		}
	}
}

// TestShardsInvariants checks the contract Plan relies on for arbitrary
// sizes: contiguous coverage from 0, chunk-aligned interior boundaries,
// and at most n nonempty shards.
func TestShardsInvariants(t *testing.T) {
	for _, total := range []int{1, 62, 63, 64, 126, 1000, 4093} {
		for _, n := range []int{1, 2, 3, 7, 16, 100} {
			rs := Shards(total, 63, n)
			if len(rs) == 0 || len(rs) > n {
				t.Fatalf("Shards(%d,63,%d): %d shards", total, n, len(rs))
			}
			expect := 0
			for i, r := range rs {
				if r.Lo != expect || r.Hi <= r.Lo {
					t.Fatalf("Shards(%d,63,%d)[%d] = %v, want contiguous nonempty from %d", total, n, i, r, expect)
				}
				if i < len(rs)-1 && r.Hi%63 != 0 {
					t.Fatalf("Shards(%d,63,%d)[%d].Hi = %d not batch-aligned", total, n, i, r.Hi)
				}
				expect = r.Hi
			}
			if expect != total {
				t.Fatalf("Shards(%d,63,%d) covers [0,%d)", total, n, expect)
			}
		}
	}
}
