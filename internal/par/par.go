// Package par provides the bounded-parallelism primitives the fault
// simulator and screening engine shard their fault axis with: a worker
// pool with dynamic index distribution (Do, plus the measured DoTimed
// variant feeding the observability layer's pool-utilization metrics),
// chunk helpers for 63-wide fault batches, and an atomic bit set for
// cross-worker fault dropping.
//
// Determinism contract: Do distributes indices dynamically, so the
// order in which indices are processed is scheduling-dependent — but
// every caller writes results only into slots keyed by the index (or
// into the disjoint fault range a chunk owns), so the merged output is
// byte-identical regardless of worker count. Tests in the faultsim and
// core packages pin that property for workers = 1, 4 and GOMAXPROCS.
package par

import (
	"context"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
)

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0), anything else is returned as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Do runs fn(worker, index) for every index in [0, n), distributing
// indices dynamically over min(workers, n) goroutines. The worker
// argument is a dense ID in [0, workers) so callers can give each
// goroutine its own scratch state (for example a private packed
// evaluator). With workers <= 1 everything runs inline on the calling
// goroutine with worker 0 — the serial path has no pool overhead.
//
// fn must confine its writes to storage owned by index (or by the
// chunk that index denotes); under that discipline the result is
// independent of worker count and scheduling.
func Do(workers, n int, fn func(worker, index int)) {
	doCtx(nil, workers, n, fn)
}

// DoCtx is Do with cooperative cancellation: every worker checks the
// context before claiming the next index and stops claiming once it is
// cancelled. Indices already claimed run to completion (an in-flight
// fault batch finishes; nothing is interrupted mid-write), every worker
// goroutine is joined before DoCtx returns — cancellation never leaks a
// goroutine — and the context error (if any) is returned. A nil context
// behaves like context.Background.
func DoCtx(ctx context.Context, workers, n int, fn func(worker, index int)) error {
	doCtx(ctx, workers, n, fn)
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

func doCtx(ctx context.Context, workers, n int, fn func(worker, index int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				return
			}
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// WorkerStat aliases the observability layer's per-worker sample (busy
// time inside the work loop plus indices claimed), so DoTimed results
// feed Collector.RecordPool without conversion. The workload is
// CPU-bound with no blocking, so loop time is busy time; uneven
// Busy/Items across workers is the load-imbalance signature surfaced as
// pool utilization.
type WorkerStat = obs.WorkerStat

// DoTimed is Do plus per-worker measurement: it returns one WorkerStat
// per dense worker ID (length min(workers, n) after resolution). The
// distribution, determinism contract and serial path match Do exactly;
// the only extra cost is two monotonic clock reads per worker, so it is
// safe to substitute for Do whenever a collector is enabled.
func DoTimed(workers, n int, fn func(worker, index int)) []WorkerStat {
	stats, _ := DoTimedCtx(nil, workers, n, fn)
	return stats
}

// DoTimedCtx is DoTimed with the cancellation semantics of DoCtx: the
// per-worker stats cover whatever work ran before the context fired.
func DoTimedCtx(ctx context.Context, workers, n int, fn func(worker, index int)) ([]WorkerStat, error) {
	ctxErr := func() error {
		if ctx == nil {
			return nil
		}
		return ctx.Err()
	}
	if n <= 0 {
		return nil, ctxErr()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	stats := make([]WorkerStat, workers)
	if workers <= 1 {
		t0 := time.Now()
		items := int64(0)
		for i := 0; i < n; i++ {
			if ctx != nil && ctx.Err() != nil {
				break
			}
			fn(0, i)
			items++
		}
		stats[0] = WorkerStat{Busy: time.Since(t0), Items: items}
		return stats, ctxErr()
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			t0 := time.Now()
			items := int64(0)
			for {
				if ctx != nil && ctx.Err() != nil {
					break
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				fn(worker, i)
				items++
			}
			stats[worker] = WorkerStat{Busy: time.Since(t0), Items: items}
		}(w)
	}
	wg.Wait()
	return stats, ctxErr()
}

// DoPoolCtx is the fully observed pool: DoTimedCtx plus the pool
// bookkeeping every instrumented call site repeats — the invocation's
// wall time and per-worker stats are merged into col's named pool
// metric, and when a flight recorder is attached (col.SetJournal) each
// claimed index additionally becomes one journal batch-span event
// carrying its worker, position and duration.
//
// With no recorder attached the per-index clock reads are skipped
// entirely, so the overhead over DoTimedCtx is two time.Now calls per
// invocation; with col == nil it degrades to plain DoCtx cost. The
// distribution and determinism contract match Do.
func DoPoolCtx(ctx context.Context, workers, n int, name string, col *obs.Collector, fn func(worker, index int)) error {
	run := fn
	if rec := col.Journal(); rec.Enabled() {
		run = func(worker, index int) {
			t0 := time.Now()
			fn(worker, index)
			rec.Emit(journal.Batch(name, worker, index, n, time.Since(t0)))
		}
	}
	t0 := time.Now()
	stats, err := DoTimedCtx(ctx, workers, n, run)
	col.RecordPool(name, time.Since(t0), stats)
	return err
}

// PerWorker is a lazily-populated per-worker arena: slot w is built by
// the constructor on worker w's first Get and reused for every
// subsequent index that worker claims. It replaces the
// make-then-index-by-worker pattern the parallel loops used for scratch
// state, and keeps construction off workers that never run (Do may use
// fewer goroutines than requested). Get is safe under Do's contract —
// each worker index is owned by exactly one goroutine.
type PerWorker[T any] struct {
	slots []T
	built []bool
	newT  func() T
}

// NewPerWorker returns an arena of `workers` slots, each built on first
// use by newT.
func NewPerWorker[T any](workers int, newT func() T) *PerWorker[T] {
	if workers < 1 {
		workers = 1
	}
	return &PerWorker[T]{
		slots: make([]T, workers),
		built: make([]bool, workers),
		newT:  newT,
	}
}

// Get returns worker w's slot, constructing it on first use.
func (p *PerWorker[T]) Get(w int) T {
	if !p.built[w] {
		p.slots[w] = p.newT()
		p.built[w] = true
	}
	return p.slots[w]
}

// Range is a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Chunks splits [0, total) into contiguous ranges of at most size
// indices, in ascending order. It returns nil when total <= 0; size <= 0
// yields a single range covering everything.
func Chunks(total, size int) []Range {
	if total <= 0 {
		return nil
	}
	if size <= 0 {
		return []Range{{0, total}}
	}
	out := make([]Range, 0, (total+size-1)/size)
	for lo := 0; lo < total; lo += size {
		hi := lo + size
		if hi > total {
			hi = total
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// Shards splits [0, total) into at most n contiguous ranges whose
// boundaries fall on multiples of chunk (the last range ends at total),
// balanced to within one chunk of each other. Because every boundary is
// chunk-aligned, work distributed in chunk-wide batches (the 63-fault
// packed-simulation batches) sees exactly the same batch geometry
// whether it runs as one range or as n — which is what keeps
// shard-merged results byte-identical to a single-range run. It returns
// nil when total <= 0; chunk <= 0 means no alignment constraint
// (boundaries fall on single indices).
func Shards(total, chunk, n int) []Range {
	if total <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = 1
	}
	if n < 1 {
		n = 1
	}
	batches := (total + chunk - 1) / chunk
	if n > batches {
		n = batches
	}
	out := make([]Range, 0, n)
	base, rem := batches/n, batches%n
	b := 0
	for i := 0; i < n; i++ {
		take := base
		if i < rem {
			take++
		}
		lo := b * chunk
		b += take
		hi := b * chunk
		if hi > total {
			hi = total
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// BitSet is a fixed-size set of integers safe for concurrent use. The
// fault simulator and the step-2 dropper share one across workers as
// the detected-fault set: concurrent Set calls on any indices are safe,
// and a Get that observes true stays true (bits are never cleared).
type BitSet struct {
	words []atomic.Uint64
	n     int
}

// NewBitSet returns an empty set over [0, n).
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]atomic.Uint64, (n+63)/64), n: n}
}

// Len returns the domain size the set was created with.
func (b *BitSet) Len() int { return b.n }

// Set adds i to the set and reports whether it was newly added.
func (b *BitSet) Set(i int) bool {
	w := &b.words[i>>6]
	bit := uint64(1) << uint(i&63)
	for {
		old := w.Load()
		if old&bit != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|bit) {
			return true
		}
	}
}

// Get reports whether i is in the set.
func (b *BitSet) Get(i int) bool {
	return b.words[i>>6].Load()&(uint64(1)<<uint(i&63)) != 0
}

// Count returns the number of elements currently in the set.
func (b *BitSet) Count() int {
	n := 0
	for i := range b.words {
		n += bits.OnesCount64(b.words[i].Load())
	}
	return n
}
