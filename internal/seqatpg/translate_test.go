package seqatpg

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
	"repro/internal/tpi"
)

// TestTranslatePreambleLoadsPrefix drives the translation math directly:
// constrain controllable flip-flops at frame 0 through the model's
// reverse mapping and check the generated preamble really establishes
// those values at the frame-0 cycle on the true circuit.
func TestTranslatePreambleLoadsPrefix(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := map[netlist.SignalID]bool{}
	for _, ff := range d.C.FFs {
		ctrl[ff] = true
	}
	m, err := Build(d, ctrl, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Constrain every controllable FF at frame 0 via the model inputs.
	asn := map[netlist.SignalID]logic.V{}
	want := map[netlist.SignalID]logic.V{}
	for i, ff := range d.C.FFs {
		v := logic.V(i % 2)
		want[ff] = v
		asn[m.sigAt[0][ff]] = v
	}
	seq, conflicts := m.translate(asn)
	if conflicts != 0 {
		t.Fatalf("conflicts = %d on a consistent frame-0 constraint", conflicts)
	}
	// Simulate the real circuit up to the frame-0 cycle (t0 = L) and
	// compare the state.
	L := d.MaxChainLen()
	s := sim.NewSeq(d.C)
	for t2 := 0; t2 < L; t2++ {
		s.Cycle(seq[t2], nil, nil)
	}
	for i, ff := range d.C.FFs {
		if got := s.State()[i]; got != want[ff] {
			t.Errorf("FF %s at frame 0: %v, want %v", d.C.NameOf(ff), got, want[ff])
		}
	}
}

// TestTranslateReportsConflicts: two constraints that demand opposite
// values of the same scan-in cell must be counted.
func TestTranslateReportsConflicts(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := map[netlist.SignalID]bool{}
	for _, ff := range d.C.FFs {
		ctrl[ff] = true
	}
	m, err := Build(d, ctrl, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	ch := &d.Chains[0]
	// FF at position p, frame t uses scan-in cell t0+t-1-p: position 0 at
	// frame 0 and position 1 at frame 1 share a cell; demand values that
	// disagree after parity correction.
	ff0, ff1 := ch.FFs[0], ch.FFs[1]
	v0 := logic.Zero
	v1 := logic.Zero
	if ch.ParityTo(0) == ch.ParityTo(1) {
		v1 = logic.One // same parity: differing values conflict
	}
	asn := map[netlist.SignalID]logic.V{
		m.sigAt[0][ff0]: v0,
		m.sigAt[1][ff1]: v1,
	}
	_, conflicts := m.translate(asn)
	if conflicts == 0 {
		t.Error("conflicting constraints not reported")
	}
}

// TestTranslateOutOfRangeConstraint: a constraint needing a scan-in
// before cycle 0 counts as a conflict rather than panicking.
func TestTranslateOutOfRangeConstraint(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := map[netlist.SignalID]bool{d.Chains[0].FFs[2]: true}
	m, err := Build(d, ctrl, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Position 2 at frame 0 needs cell t0-3 = L-3 = 0 — in range for
	// L=3; force out-of-range by using a deeper position than the
	// preamble... with L=3 nothing is out of range, so just check the
	// call is robust for all positions.
	for pos, ff := range d.Chains[0].FFs {
		asn := map[netlist.SignalID]logic.V{m.sigAt[0][ff]: logic.One}
		if !ctrl[ff] {
			continue
		}
		seq, conflicts := m.translate(asn)
		if len(seq) == 0 {
			t.Errorf("pos %d: empty sequence", pos)
		}
		_ = conflicts
	}
}
