package seqatpg

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/tpi"
)

func TestUnrollShape(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Build(d, nil, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	uc := m.Circuit()
	if len(uc.FFs) != 0 {
		t.Error("unrolled circuit has flip-flops")
	}
	// Inputs: per frame all PIs; FFs appear as inputs only at frame 0.
	wantInputs := 3*len(d.C.Inputs) + len(d.C.FFs)
	if got := len(uc.Inputs); got != wantInputs {
		t.Errorf("unrolled inputs = %d, want %d", got, wantInputs)
	}
	// Outputs: per frame all POs (no observable FFs configured).
	if got := len(uc.Outputs); got != 3*len(d.C.Outputs) {
		t.Errorf("unrolled outputs = %d, want %d", got, 3*len(d.C.Outputs))
	}
}

func TestUnrollWithCtrlObs(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := map[netlist.SignalID]bool{d.Chains[0].FFs[0]: true}
	obs := map[netlist.SignalID]bool{d.Chains[0].FFs[2]: true}
	m, err := Build(d, ctrl, obs, 2)
	if err != nil {
		t.Fatal(err)
	}
	uc := m.Circuit()
	// Controllable FF contributes an input per frame; the two normal FFs
	// contribute one frame-0 input each.
	wantInputs := 2*len(d.C.Inputs) + 2 + 2
	if got := len(uc.Inputs); got != wantInputs {
		t.Errorf("inputs = %d, want %d", got, wantInputs)
	}
	// Observable FF contributes a D tap per frame.
	wantOutputs := 2*len(d.C.Outputs) + 2
	if got := len(uc.Outputs); got != wantOutputs {
		t.Errorf("outputs = %d, want %d", got, wantOutputs)
	}
}

// TestGeneratedTestsConfirm: for every scan-affecting-ish fault that the
// sequential generator claims to test with full enhancement, the
// translated sequence must actually detect the fault on the real
// scan-mode circuit (confirmed by fault simulation).
func TestGeneratedTestsConfirm(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Enhance nothing: plain sequential ATPG over 4 frames.
	m, err := Build(d, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapsed(d.C)
	found, confirmed, aborted := 0, 0, 0
	for _, f := range faults {
		res := m.Generate(f, 2000)
		if res.Status != atpg.Found {
			if res.Status == atpg.Aborted {
				aborted++
			}
			continue
		}
		found++
		fr := faultsim.Run(d.C, faultsim.Sequence(res.Sequence), []fault.Fault{f}, faultsim.Options{})
		if fr.DetectedAt[0] >= 0 {
			confirmed++
		}
	}
	t.Logf("found=%d confirmed=%d aborted=%d of %d faults", found, confirmed, aborted, len(faults))
	if found == 0 {
		t.Fatal("no sequential tests generated")
	}
	// Translation is exact (no enhanced pseudo-inputs beyond frame-0 X),
	// so a very large share of found tests must confirm.
	if float64(confirmed) < 0.8*float64(found) {
		t.Errorf("only %d of %d found tests confirmed", confirmed, found)
	}
}

// TestEnhancementHelps: with the whole chain controllable and observable
// the generator should find tests for at least as many faults as with no
// enhancement.
func TestEnhancementHelps(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := map[netlist.SignalID]bool{}
	obs := map[netlist.SignalID]bool{}
	for _, ff := range d.C.FFs {
		ctrl[ff] = true
		obs[ff] = true
	}
	plain, err := Build(d, nil, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	enh, err := Build(d, ctrl, obs, 2)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.Collapsed(d.C)
	plainFound, enhFound := 0, 0
	for _, f := range faults {
		if plain.Generate(f, 500).Status == atpg.Found {
			plainFound++
		}
		if enh.Generate(f, 500).Status == atpg.Found {
			enhFound++
		}
	}
	t.Logf("plain=%d enhanced=%d of %d", plainFound, enhFound, len(faults))
	if enhFound < plainFound {
		t.Errorf("enhancement reduced found tests: %d < %d", enhFound, plainFound)
	}
}

// TestTranslationLoadsConstraint: constrain one controllable FF via the
// model and check the translated preamble actually loads it.
func TestTranslationLoadsConstraint(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := map[netlist.SignalID]bool{}
	for _, ff := range d.C.FFs {
		ctrl[ff] = true
	}
	m, err := Build(d, ctrl, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a fault the enhanced model can certainly test: a stem fault
	// on a chain flip-flop output.
	ff0 := d.Chains[0].FFs[0]
	f := fault.Fault{Signal: ff0, Gate: netlist.None, Pin: -1, Stuck: logic.Zero}
	res := m.Generate(f, 2000)
	if res.Status != atpg.Found {
		t.Fatalf("status = %v", res.Status)
	}
	fr := faultsim.Run(d.C, faultsim.Sequence(res.Sequence), []fault.Fault{f}, faultsim.Options{})
	if fr.DetectedAt[0] < 0 {
		t.Error("translated test for FF stem fault not confirmed")
	}
}

func TestBuildValidation(t *testing.T) {
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(d, nil, nil, 0); err == nil {
		t.Error("Build accepted 0 frames")
	}
}
