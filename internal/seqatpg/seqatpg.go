// Package seqatpg implements time-frame-expansion sequential ATPG for
// scan-mode circuits, with the paper's enhanced controllability /
// observability models (Section 5): under the single-fault assumption
// the chain ahead of the first affected location is fault-free (treated
// as directly controllable) and the chain after the last location is
// fault-free (treated as directly observable).
//
// A Model unrolls the scan-mode circuit over a fixed number of frames
// into one combinational circuit; controllable flip-flops become free
// pseudo-inputs in every frame, observable flip-flops get their D pins
// tapped as outputs in every frame, and remaining flip-flops connect
// frame to frame (frame 0 held at X). PODEM then runs with the fault
// injected once per frame. A found per-frame assignment is translated
// back into a real scan-in stream through the fault-free prefix
// (FF_p(t) = SI(t-p-1) XOR parity_p); translation conflicts are counted
// and every generated test is meant to be confirmed by sequential fault
// simulation on the true circuit — the caller must treat only confirmed
// detections as detections.
package seqatpg

import (
	"context"
	"fmt"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	obsPkg "repro/internal/obs"
	"repro/internal/scan"
	"repro/internal/sim"
)

// Model is a k-frame unrolled scan-mode circuit ready for PODEM.
type Model struct {
	Design *scan.Design
	Frames int

	uc  *netlist.Circuit // unrolled combinational circuit
	m   *atpg.Model
	eng *atpg.Engine

	sigAt [][]netlist.SignalID // [frame][orig signal] -> model signal (None if absent)
	dObs  [][]netlist.SignalID // [frame][orig FF index] -> observation buffer or None

	ctrl map[netlist.SignalID]bool
	obs  map[netlist.SignalID]bool

	// Metric sinks (nil-safe no-ops until Instrument is called).
	conflictCtr *obsPkg.Counter
	noSiteCtr   *obsPkg.Counter
}

// Instrument attaches the model's PODEM engine to a collector under
// prefix.* (see atpg.Engine.Instrument) and additionally records
// prefix.translation_conflicts (scan-in cells two constraints disagreed
// on) and prefix.no_site (faults with no injection site in this model).
// A nil collector leaves the model uninstrumented.
func (m *Model) Instrument(col *obsPkg.Collector, prefix string) {
	if !col.Enabled() {
		return
	}
	m.eng.Instrument(col, prefix)
	m.conflictCtr = col.Counter(prefix + ".translation_conflicts")
	m.noSiteCtr = col.Counter(prefix + ".no_site")
}

// Build unrolls design d over frames frames with the given controllable
// and observable flip-flop sets (keyed by FF signal in d.C).
func Build(d *scan.Design, ctrl, obs map[netlist.SignalID]bool, frames int) (*Model, error) {
	if frames < 1 {
		return nil, fmt.Errorf("seqatpg: frames must be >= 1")
	}
	orig := d.C
	uc := netlist.New(fmt.Sprintf("%s$tfx%d", orig.Name, frames))
	fixed := make(map[netlist.SignalID]logic.V)

	sigAt := make([][]netlist.SignalID, frames)
	for t := range sigAt {
		sigAt[t] = make([]netlist.SignalID, len(orig.Signals))
		for i := range sigAt[t] {
			sigAt[t][i] = netlist.None
		}
	}
	name := func(s netlist.SignalID, t int) string {
		return fmt.Sprintf("%s@%d", orig.NameOf(s), t)
	}

	for t := 0; t < frames; t++ {
		// Inputs and flip-flop outputs first (frame sources).
		for _, in := range orig.Inputs {
			id, err := uc.AddInput(name(in, t))
			if err != nil {
				return nil, err
			}
			sigAt[t][in] = id
			if v, ok := d.Assignments[in]; ok {
				fixed[id] = v
			}
		}
		for _, ff := range orig.FFs {
			switch {
			case ctrl[ff]:
				id, err := uc.AddInput(name(ff, t))
				if err != nil {
					return nil, err
				}
				sigAt[t][ff] = id
			case t == 0:
				// Uncontrolled initial state: an input held at X that
				// PODEM may not decide on.
				id, err := uc.AddInput(name(ff, t))
				if err != nil {
					return nil, err
				}
				sigAt[t][ff] = id
				fixed[id] = logic.X
			default:
				// Connected to the previous frame's D value.
				prevD := sigAt[t-1][orig.Signals[ff].Fanin[0]]
				id, err := uc.AddGate(name(ff, t), logic.OpBuf, prevD)
				if err != nil {
					return nil, err
				}
				sigAt[t][ff] = id
			}
		}
		// Gates in topological order so fanins exist.
		for _, g := range orig.Order {
			fanin := make([]netlist.SignalID, len(orig.Signals[g].Fanin))
			for i, f := range orig.Signals[g].Fanin {
				fanin[i] = sigAt[t][f]
			}
			id, err := uc.AddGate(name(g, t), orig.Signals[g].Op, fanin...)
			if err != nil {
				return nil, err
			}
			sigAt[t][g] = id
		}
	}

	// Observation points: every primary output in every frame, plus D-pin
	// taps of observable flip-flops in every frame.
	for t := 0; t < frames; t++ {
		for _, o := range orig.Outputs {
			if err := uc.MarkOutput(sigAt[t][o]); err != nil {
				return nil, err
			}
		}
	}
	dObs := make([][]netlist.SignalID, frames)
	for t := 0; t < frames; t++ {
		dObs[t] = make([]netlist.SignalID, len(orig.FFs))
		for i, ff := range orig.FFs {
			dObs[t][i] = netlist.None
			if !obs[ff] {
				continue
			}
			d0 := sigAt[t][orig.Signals[ff].Fanin[0]]
			id, err := uc.AddGate(fmt.Sprintf("%s$D@%d", orig.NameOf(ff), t), logic.OpBuf, d0)
			if err != nil {
				return nil, err
			}
			if err := uc.MarkOutput(id); err != nil {
				return nil, err
			}
			dObs[t][i] = id
		}
	}
	if err := uc.Finalize(); err != nil {
		return nil, err
	}
	am, err := atpg.NewModel(uc, fixed)
	if err != nil {
		return nil, err
	}
	return &Model{
		Design: d,
		Frames: frames,
		uc:     uc,
		m:      am,
		eng:    atpg.NewEngine(am),
		sigAt:  sigAt,
		dObs:   dObs,
		ctrl:   ctrl,
		obs:    obs,
	}, nil
}

// Circuit exposes the unrolled combinational circuit (for tests).
func (m *Model) Circuit() *netlist.Circuit { return m.uc }

// injections replicates fault f into every frame of the model.
func (m *Model) injections(f fault.Fault) []sim.Inject {
	orig := m.Design.C
	ffIndex := make(map[netlist.SignalID]int, len(orig.FFs))
	for i, ff := range orig.FFs {
		ffIndex[ff] = i
	}
	var injs []sim.Inject
	for t := 0; t < m.Frames; t++ {
		if f.IsStem() {
			injs = append(injs, sim.Inject{
				Signal: m.sigAt[t][f.Signal], Gate: netlist.None, Pin: -1, Value: f.Stuck,
			})
			continue
		}
		if orig.IsFF(f.Gate) {
			// Branch into a flip-flop D pin: affects the next frame's
			// state and, when observable, the D tap of this frame.
			i := ffIndex[f.Gate]
			if t+1 < m.Frames && !m.ctrl[f.Gate] {
				injs = append(injs, sim.Inject{
					Signal: m.sigAt[t][f.Signal], Gate: m.sigAt[t+1][f.Gate], Pin: 0, Value: f.Stuck,
				})
			}
			if tap := m.dObs[t][i]; tap != netlist.None {
				injs = append(injs, sim.Inject{
					Signal: m.sigAt[t][f.Signal], Gate: tap, Pin: 0, Value: f.Stuck,
				})
			}
			continue
		}
		injs = append(injs, sim.Inject{
			Signal: m.sigAt[t][f.Signal], Gate: m.sigAt[t][f.Gate], Pin: f.Pin, Value: f.Stuck,
		})
	}
	return injs
}

// Result of sequential test generation for one fault.
type Result struct {
	Status atpg.Status
	// Sequence is the translated real-circuit test (per-cycle primary
	// input vectors for the scan-mode circuit); valid when Status is
	// Found. It must be confirmed by fault simulation.
	Sequence [][]logic.V
	// Conflicts counts scan-in cells that two constraints disagreed on
	// during translation (deeper chain position wins).
	Conflicts  int
	Backtracks int
}

// Generate runs PODEM on the unrolled model and translates the result.
func (m *Model) Generate(f fault.Fault, backtrackLimit int) Result {
	res, _ := m.GenerateCtx(nil, f, backtrackLimit)
	return res
}

// GenerateCtx is Generate with cooperative cancellation, checked at the
// underlying engine's backtrack boundaries: once ctx fires the search
// stops with an Aborted result and the context error.
func (m *Model) GenerateCtx(ctx context.Context, f fault.Fault, backtrackLimit int) (Result, error) {
	injs := m.injections(f)
	if len(injs) == 0 {
		// The fault has no site in this model (e.g. a D-pin branch of a
		// flip-flop declared controllable): no verdict.
		m.noSiteCtr.Inc()
		return Result{Status: atpg.Aborted}, nil
	}
	res, err := m.eng.GenerateMultiCtx(ctx, injs, backtrackLimit)
	out := Result{Status: res.Status, Backtracks: res.Backtracks}
	if err != nil || res.Status != atpg.Found {
		return out, err
	}
	out.Sequence, out.Conflicts = m.translate(res.Assignment)
	m.conflictCtr.Add(int64(out.Conflicts))
	return out, nil
}

// translate converts a per-frame model assignment into a real scan-mode
// input sequence: a shift preamble loads the controllable-prefix
// constraints, then the frame windows play out, then a full-length flush
// shifts every captured effect to the scan-outs.
func (m *Model) translate(asn map[netlist.SignalID]logic.V) ([][]logic.V, int) {
	d := m.Design
	orig := d.C
	L := d.MaxChainLen()
	t0 := L // preamble length: one full shift window
	total := t0 + m.Frames + L

	seq := make([][]logic.V, total)
	for i := range seq {
		seq[i] = d.BaselinePI()
	}

	// Reverse map: model input -> (orig signal, frame).
	type key struct {
		sig netlist.SignalID
		t   int
	}
	rev := make(map[netlist.SignalID]key)
	for t := 0; t < m.Frames; t++ {
		for _, in := range orig.Inputs {
			rev[m.sigAt[t][in]] = key{in, t}
		}
		for _, ff := range orig.FFs {
			if m.ctrl[ff] {
				rev[m.sigAt[t][ff]] = key{ff, t}
			}
		}
	}

	// Scan-in solving: chain -> cycle -> (value, priority position).
	type cell struct {
		v   logic.V
		pos int
		set bool
	}
	si := make([][]cell, len(d.Chains))
	for i := range si {
		si[i] = make([]cell, total)
	}
	conflicts := 0

	for modelIn, v := range asn {
		k, ok := rev[modelIn]
		if !ok || !v.Known() {
			continue
		}
		if orig.IsPI(k.sig) {
			// Free primary input constrained at frame k.t -> real cycle
			// t0 + k.t.
			idx, _ := d.InputIndex(k.sig)
			seq[t0+k.t][idx] = v
			continue
		}
		// Controllable flip-flop constraint: FF k.sig = v at start of
		// real cycle t0+k.t.
		ci, pos, ok := d.FFPosition(k.sig)
		if !ok {
			continue
		}
		ch := &d.Chains[ci]
		cycle := t0 + k.t - 1 - pos
		if cycle < 0 {
			conflicts++
			continue
		}
		want := v
		if ch.ParityTo(pos) {
			want = want.Not()
		}
		c := &si[ci][cycle]
		if c.set && c.v != want {
			conflicts++
			if pos > c.pos {
				c.v, c.pos = want, pos
			}
			continue
		}
		c.v, c.pos, c.set = want, pos, true
	}

	for ci := range d.Chains {
		idx, _ := d.InputIndex(d.Chains[ci].ScanIn)
		for t := 0; t < total; t++ {
			if si[ci][t].set {
				seq[t][idx] = si[ci][t].v
			}
		}
	}
	return seq, conflicts
}
