package engine

import (
	"fmt"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// chainCircuit builds a distinct finalized inverter chain of the given
// depth (depth also differentiates the structural hash).
func chainCircuit(t *testing.T, depth int) *netlist.Circuit {
	t.Helper()
	c := netlist.New("lru")
	in, _ := c.AddInput("a")
	prev := in
	for j := 0; j < depth; j++ {
		g, err := c.AddGate(fmt.Sprintf("n%d", j), logic.OpNot, prev)
		if err != nil {
			t.Fatal(err)
		}
		prev = g
	}
	if err := c.MarkOutput(prev); err != nil {
		t.Fatal(err)
	}
	c.MustFinalize()
	return c
}

func TestCacheLRUOrder(t *testing.T) {
	ca := New()
	ca.SetMaxEntries(2)
	c1 := chainCircuit(t, 1)
	c2 := chainCircuit(t, 2)
	c3 := chainCircuit(t, 3)

	a1 := ca.For(c1)
	ca.For(c2)
	// Touch c1 so c2 becomes the LRU tail, then insert c3.
	if got := ca.For(c1); got != a1 {
		t.Fatal("c1 not served from cache")
	}
	ca.For(c3)

	if ca.Len() != 2 {
		t.Fatalf("Len = %d, want 2", ca.Len())
	}
	// c1 must have survived (recently used), c2 must be gone.
	if got := ca.For(c1); got != a1 {
		t.Error("LRU evicted the recently used entry")
	}
	st := ca.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions counted")
	}
}

func TestCacheByteBudget(t *testing.T) {
	ca := New()
	// Insert three structures, materialize programs so sizes are real.
	var arts []*Artifacts
	for i := 1; i <= 3; i++ {
		a := ca.For(chainCircuit(t, i))
		a.Program(nil)
		arts = append(arts, a)
	}
	st := ca.Stats()
	if st.Entries != 3 || st.Bytes <= 0 {
		t.Fatalf("Stats = %+v, want 3 entries with positive bytes", st)
	}

	// Budget that fits roughly one entry: the next probe must evict
	// down to the served entry.
	ca.SetBudget(arts[2].SizeBytes())
	ca.For(arts[2].Circuit())
	st = ca.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries after budget squeeze = %d, want 1", st.Entries)
	}
	if st.Bytes > st.Budget {
		t.Errorf("accounted %d bytes exceeds budget %d", st.Bytes, st.Budget)
	}

	// The surviving entry is never evicted even if it alone exceeds the
	// budget.
	ca.SetBudget(1)
	a := ca.For(arts[2].Circuit())
	if a != arts[2] {
		t.Error("served entry was evicted under its own budget")
	}
	if ca.Len() != 1 {
		t.Errorf("Len = %d, want 1 (keep the served entry)", ca.Len())
	}
}

func TestCacheBudgetTracksLazyGrowth(t *testing.T) {
	ca := New()
	c := chainCircuit(t, 4)
	a := ca.For(c)
	base := ca.Stats().Bytes
	// Materialize more artifacts; the next Stats resync must see them.
	a.Program(nil)
	a.CollapsedFaults()
	a.Cones(nil)
	grown := ca.Stats().Bytes
	if grown <= base {
		t.Errorf("accounted bytes did not grow: %d -> %d", base, grown)
	}
	if grown != a.SizeBytes() {
		t.Errorf("accounted %d != artifact size %d", grown, a.SizeBytes())
	}
}

func TestForObsDedupesRepeatedProbes(t *testing.T) {
	ca := New()
	col := obs.New()
	c := chainCircuit(t, 2)

	// One job probing the same structure many times: one miss, no hits.
	for i := 0; i < 5; i++ {
		ca.ForObs(c, col)
	}
	snap := col.Snapshot()
	if got := snap.Counters["engine.cache.probes"]; got != 5 {
		t.Errorf("probes = %d, want 5", got)
	}
	if got := snap.Counters["engine.cache.misses"]; got != 1 {
		t.Errorf("misses = %d, want 1", got)
	}
	if got := snap.Counters["engine.cache.hits"]; got != 0 {
		t.Errorf("hits = %d, want 0", got)
	}

	// A second collector (a second job) probing the warm structure
	// counts exactly one hit.
	col2 := obs.New()
	ca.ForObs(c, col2)
	ca.ForObs(c, col2)
	snap2 := col2.Snapshot()
	if got := snap2.Counters["engine.cache.hits"]; got != 1 {
		t.Errorf("second-collector hits = %d, want 1", got)
	}
	if got := snap2.Counters["engine.cache.misses"]; got != 0 {
		t.Errorf("second-collector misses = %d, want 0", got)
	}
}

func TestEvictedArtifactsStayUsable(t *testing.T) {
	ca := New()
	ca.SetMaxEntries(1)
	a1 := ca.For(chainCircuit(t, 1))
	ca.For(chainCircuit(t, 2)) // evicts a1's entry
	if ca.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ca.Len())
	}
	// a1 is still fully functional for a job that held on to it.
	if a1.Program(nil) == nil || len(a1.CollapsedFaults()) == 0 {
		t.Error("evicted artifacts unusable")
	}
}
