package engine

import (
	"fmt"
	"math/bits"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Backend names one of the simulation backends behind the unified
// evaluator interfaces. Auto defers the choice to a per-run heuristic
// (circuit size, lane occupancy, sequence length); the other values
// force a specific backend, which the -eval flags on the binaries
// expose for ablation.
type Backend int

// The selectable backends. Compiled and Packed are 64-lane machines
// (flat instruction stream vs the map-based reference); Scalar and
// Event run one scalar machine per occupied lane behind the packed
// interface, with Event using the event-driven simulator that only
// re-evaluates changed fanout cones. Hybrid is a fault-simulation
// strategy rather than a per-batch machine: faults run one at a time on
// a delta simulator against a shared compiled baseline, and faults
// whose per-cycle divergence exceeds the cone threshold are demoted to
// the compiled 64-lane sweep (see internal/faultsim).
const (
	Auto Backend = iota
	Compiled
	Packed
	Scalar
	Event
	Hybrid
)

var backendNames = [...]string{"auto", "compiled", "packed", "scalar", "event", "hybrid"}

func (b Backend) String() string {
	if int(b) < len(backendNames) {
		return backendNames[b]
	}
	return fmt.Sprintf("Backend(%d)", int(b))
}

// ParseBackend maps a flag value to a Backend.
func ParseBackend(s string) (Backend, error) {
	for i, n := range backendNames {
		if s == n {
			return Backend(i), nil
		}
	}
	return Auto, fmt.Errorf("engine: unknown evaluator backend %q (want auto, compiled, packed, scalar, event or hybrid)", s)
}

// Hint carries what a caller knows about the upcoming workload, feeding
// the Auto selection.
type Hint struct {
	// Lanes is the number of occupied fault lanes per batch (0 when
	// unknown). Low occupancy favours the per-lane scalar machines.
	Lanes int
	// Cycles is the expected sequence length per application (0 when
	// unknown). Long sequences amortize the event simulator's
	// scheduling overhead.
	Cycles int
}

// DefaultConeThreshold is the floor of the hybrid strategy's per-cycle
// gate-evaluation budget: a fault whose static influence cone
// (sim.ConeIndex) fits the budget can never exceed it and stays on the
// delta simulator for good; a larger-cone fault is admitted
// optimistically and demoted to the compiled 64-lane sweep the first
// cycle its divergence out-runs the budget. The value trades wasted
// delta work on demoted faults against fast-path coverage; the
// threshold-sweep ablation in EXPERIMENTS.md is the tuning procedure.
const DefaultConeThreshold = 32

// ConeThresholdFor scales the hybrid budget to the circuit: the
// compiled sweep's per-fault-cycle cost grows with circuit size (a full
// pass over the instruction stream amortized over 63 lanes), so larger
// circuits can afford proportionally more scalar delta evaluations
// before demotion pays. Order/8 tracks the measured optimum on the
// scaled ISCAS'89 suite (the threshold sweep in EXPERIMENTS.md);
// DefaultConeThreshold is the floor. Deterministic per circuit, so
// hybrid results stay byte-identical at any parallelism.
func ConeThresholdFor(c *netlist.Circuit) int {
	thr := len(c.Order) / 8
	if thr < DefaultConeThreshold {
		thr = DefaultConeThreshold
	}
	return thr
}

// ResolveSeq turns Auto into a concrete sequential backend for circuit
// c under hint h. The compiled 64-lane machine is the baseline that
// wins on raw per-gate throughput; two workloads beat it:
//
//   - full-width fault-simulation passes on sequential circuits, where
//     the Hybrid strategy runs each fault on a per-fault delta
//     simulator against one shared compiled baseline — most faults
//     either detect within a few cycles or stay quiet, so per-fault
//     work tracks actual divergence instead of circuit size, and the
//     few broadly-diverging faults are demoted to the compiled sweep
//     (deterministically, so results stay byte-identical);
//   - near-empty batches (one fault under confirmation) on large
//     circuits over long sequences, where two event-driven scalar
//     machines beat sweeping all 64 lanes through every gate.
//
// Small circuits stay on Compiled: the delta path's per-fault
// bookkeeping only pays off once a full sweep touches enough gates.
func (b Backend) ResolveSeq(c *netlist.Circuit, h Hint) Backend {
	if b != Auto {
		return b
	}
	if h.Lanes > 0 && h.Lanes <= 2 && len(c.Order) >= 2048 && h.Cycles >= 64 {
		return Event
	}
	if h.Lanes > 2 && len(c.Order) >= 4096 && len(c.FFs) > 0 {
		return Hybrid
	}
	return Compiled
}

// ResolveComb turns Auto into a concrete combinational backend. The
// event simulator has no combinational form, so Event resolves to its
// scalar sibling; Hybrid is a sequential fault-simulation strategy and
// likewise falls back to Compiled.
func (b Backend) ResolveComb() Backend {
	switch b {
	case Auto:
		return Compiled
	case Event:
		return Scalar
	case Hybrid:
		return Compiled
	default:
		return b
	}
}

// Evaluator is the lane-parallel sequential simulator contract shared
// by every backend: install per-lane injections, reset or preset
// flip-flop state, then clock packed input words through. Lane 0 is the
// fault-free reference by convention. sim.PackedSeq and sim.CompiledSeq
// satisfy it directly; Scalar and Event are adapted per lane.
type Evaluator interface {
	SetInjections([]sim.LaneInject)
	ResetX()
	SetStateWord(int, logic.Word)
	Cycle([]logic.Word, []logic.Word) []logic.Word
}

// CombEvaluator is the lane-parallel combinational contract: callers
// preset input words directly into Words() (indexed by SignalID), Eval
// across all lanes, and read any internal signal back out of Words().
type CombEvaluator interface {
	SetInjections([]sim.LaneInject)
	ClearX()
	Eval()
	Words() []logic.Word
}

// NewSeqEvaluator builds a sequential evaluator of the given backend
// over the artifact set. Auto is resolved with an empty hint (callers
// wanting the workload-aware choice should ResolveSeq first). The
// compiled backend draws its shared program from the cache, so any
// number of worker evaluators cost one compilation.
func NewSeqEvaluator(b Backend, a *Artifacts, col *obs.Collector) Evaluator {
	switch b.ResolveSeq(a.c, Hint{}) {
	case Packed:
		return sim.NewPackedSeq(a.c)
	case Scalar:
		return newLaneSeq(a.c, func() laneMachine { return &seqMachine{s: sim.NewSeq(a.c)} })
	case Event:
		return newLaneSeq(a.c, func() laneMachine { return &eventMachine{s: sim.NewEventSeq(a.c)} })
	default:
		// Compiled — and Hybrid, whose per-fault orchestration lives in
		// the fault simulator and is not expressible as a lane-batch
		// machine; callers getting here wanted the compiled sweep.
		return sim.NewCompiledSeqFrom(a.Program(col))
	}
}

// NewCombEvaluator builds a combinational evaluator of the given
// backend over the artifact set.
func NewCombEvaluator(b Backend, a *Artifacts, col *obs.Collector) CombEvaluator {
	switch b.ResolveComb() {
	case Packed:
		return sim.NewPackedComb(a.c)
	case Scalar:
		return newLaneComb(a.c)
	default:
		return sim.NewCompiledCombFrom(a.Program(col))
	}
}

// laneMachine is one scalar sequential simulator serving a single lane:
// the adapter below multiplexes up to 64 of them behind the packed
// Evaluator contract. state reports (as a private copy) the flip-flop
// values the next cycle call will present, setState overwrites them —
// the shared contract of sim.Seq and sim.EventSeq.
type laneMachine interface {
	setInjection(inj *sim.Inject)
	setState(st []logic.V)
	state() []logic.V
	cycle(pi, po []logic.V) []logic.V
}

type seqMachine struct {
	s   *sim.Seq
	inj *sim.Inject
}

func (m *seqMachine) setInjection(inj *sim.Inject) { m.inj = inj }
func (m *seqMachine) setState(st []logic.V)        { m.s.SetState(st) }
func (m *seqMachine) state() []logic.V             { return append([]logic.V(nil), m.s.State()...) }
func (m *seqMachine) cycle(pi, po []logic.V) []logic.V {
	return m.s.Cycle(pi, m.inj, po)
}

type eventMachine struct {
	s *sim.EventSeq
}

func (m *eventMachine) setInjection(inj *sim.Inject) { m.s.SetInjection(inj) }
func (m *eventMachine) setState(st []logic.V)        { m.s.SetState(st) }
func (m *eventMachine) state() []logic.V             { return m.s.State() }
func (m *eventMachine) cycle(pi, po []logic.V) []logic.V {
	return m.s.Cycle(pi, po)
}

// laneSeq adapts scalar sequential machines to the packed Evaluator
// contract without paying for 64 machines when lanes coincide: a single
// reference machine simulates the injection-free background carrying
// lane 0's presented values, and a private machine exists only for
// lanes that actually diverge — lanes holding an injection, or lanes
// whose presented input or state value differs from lane 0's. Mirror
// lanes read the reference machine's outputs. This is what makes the
// Event backend worthwhile: a one-fault confirmation batch runs two
// event-driven scalar machines instead of a 64-lane sweep.
//
// The scalar machines take a single injection, so the adapter supports
// at most one injection per lane — the invariant every caller in this
// repository already holds (63-fault batches place one fault per lane).
type laneSeq struct {
	c          *netlist.Circuit
	newMachine func() laneMachine

	ref      laneMachine
	machines [64]laneMachine // non-nil exactly for diverged lanes
	injs     [64]*sim.Inject
	active   uint64 // mask of diverged lanes

	piRef []logic.V
	poRef []logic.V
	piLn  []logic.V
	poLn  []logic.V
	allX  []logic.V
}

func newLaneSeq(c *netlist.Circuit, newMachine func() laneMachine) *laneSeq {
	allX := make([]logic.V, len(c.FFs))
	for i := range allX {
		allX[i] = logic.X
	}
	return &laneSeq{
		c:          c,
		newMachine: newMachine,
		ref:        newMachine(),
		piRef:      make([]logic.V, len(c.Inputs)),
		piLn:       make([]logic.V, len(c.Inputs)),
		allX:       allX,
	}
}

// activate gives lane a private machine seeded with the reference
// machine's pending state (the lane was a mirror until now, so that is
// exactly its state).
func (l *laneSeq) activate(lane uint) laneMachine {
	m := l.newMachine()
	m.setState(l.ref.state())
	l.machines[lane] = m
	l.active |= uint64(1) << lane
	return m
}

// divergent returns the mask of lanes whose value in w differs from
// lane 0's value.
func divergent(w logic.Word) uint64 {
	switch w.Get(0) {
	case logic.One:
		return ^w.Ones
	case logic.Zero:
		return ^w.Zeros
	default:
		return w.Ones | w.Zeros
	}
}

// SetInjections installs the per-lane fault set, replacing any previous
// one. Lanes losing their injection keep their machine (their state may
// have diverged); lanes gaining one are activated.
func (l *laneSeq) SetInjections(injs []sim.LaneInject) {
	for lane := range l.injs {
		if l.injs[lane] != nil {
			if m := l.machines[lane]; m != nil {
				m.setInjection(nil)
			}
			l.injs[lane] = nil
		}
	}
	for i := range injs {
		li := injs[i]
		if l.injs[li.Lane] != nil {
			panic("engine: scalar evaluator supports one injection per lane")
		}
		inj := li.Inject
		l.injs[li.Lane] = &inj
		m := l.machines[li.Lane]
		if m == nil {
			m = l.activate(li.Lane)
		}
		m.setInjection(&inj)
	}
}

// ResetX sets every lane's flip-flop state to X. All-X states coincide
// again, so machines that existed only for input/state divergence are
// released back to mirror status; injection-carrying lanes keep theirs.
func (l *laneSeq) ResetX() {
	l.ref.setState(l.allX)
	for lane := range l.machines {
		if l.machines[lane] == nil {
			continue
		}
		if l.injs[lane] == nil {
			l.machines[lane] = nil
			l.active &^= uint64(1) << uint(lane)
			continue
		}
		l.machines[lane].setState(l.allX)
	}
}

// SetStateWord overwrites one flip-flop's packed state, activating any
// lane whose value diverges from lane 0's.
func (l *laneSeq) SetStateWord(ffIndex int, w logic.Word) {
	v0 := w.Get(0)
	st := l.ref.state()
	st[ffIndex] = v0
	l.ref.setState(st)
	for div := divergent(w) &^ l.active; div != 0; div &= div - 1 {
		l.activate(uint(bits.TrailingZeros64(div)))
	}
	for act := l.active; act != 0; act &= act - 1 {
		lane := uint(bits.TrailingZeros64(act))
		m := l.machines[lane]
		st := m.state()
		st[ffIndex] = w.Get(lane)
		m.setState(st)
	}
}

// Cycle clocks every lane: the reference machine runs lane 0's input
// values, each diverged lane runs its own, and mirror lanes copy the
// reference outputs.
func (l *laneSeq) Cycle(pi []logic.Word, po []logic.Word) []logic.Word {
	// Lanes whose inputs diverge from lane 0 this cycle get machines
	// (seeded from the reference state) before anything is clocked.
	for _, w := range pi {
		for div := divergent(w) &^ l.active; div != 0; div &= div - 1 {
			l.activate(uint(bits.TrailingZeros64(div)))
		}
	}
	for i, w := range pi {
		l.piRef[i] = w.Get(0)
	}
	l.poRef = l.ref.cycle(l.piRef, l.poRef)
	if cap(po) < len(l.c.Outputs) {
		po = make([]logic.Word, len(l.c.Outputs))
	}
	po = po[:len(l.c.Outputs)]
	for o, v := range l.poRef {
		po[o] = logic.WordAll(v)
	}
	for act := l.active; act != 0; act &= act - 1 {
		lane := uint(bits.TrailingZeros64(act))
		for i, w := range pi {
			l.piLn[i] = w.Get(lane)
		}
		l.poLn = l.machines[lane].cycle(l.piLn, l.poLn)
		for o, v := range l.poLn {
			po[o] = po[o].Set(lane, v)
		}
	}
	return po
}

// laneComb adapts the scalar combinational evaluator to the packed
// CombEvaluator contract: one full scalar evaluation per lane, reading
// the lane's values out of the shared word slice and writing the full
// signal space back. It is the reference backend for equivalence tests
// and explicit ablation; every lane carries its own pattern here (the
// screen packs 64 distinct patterns per word), so there is no mirror
// shortcut.
type laneComb struct {
	e     *sim.Comb
	words []logic.Word
	injs  [64]*sim.Inject
}

func newLaneComb(c *netlist.Circuit) *laneComb {
	return &laneComb{e: sim.NewComb(c), words: make([]logic.Word, len(c.Signals))}
}

// SetInjections installs the per-lane fault set (at most one per lane,
// as with laneSeq).
func (l *laneComb) SetInjections(injs []sim.LaneInject) {
	l.injs = [64]*sim.Inject{}
	for i := range injs {
		li := injs[i]
		if l.injs[li.Lane] != nil {
			panic("engine: scalar evaluator supports one injection per lane")
		}
		inj := li.Inject
		l.injs[li.Lane] = &inj
	}
}

// Words returns the shared per-signal word slice (indexed by SignalID).
func (l *laneComb) Words() []logic.Word { return l.words }

// ClearX resets every signal word to all-lanes-X.
func (l *laneComb) ClearX() { clear(l.words) }

// Eval evaluates all 64 lanes, one scalar pass each.
func (l *laneComb) Eval() {
	for lane := uint(0); lane < 64; lane++ {
		for i := range l.words {
			l.e.Vals[i] = l.words[i].Get(lane)
		}
		l.e.Eval(l.injs[lane])
		for i := range l.words {
			l.words[i] = l.words[i].Set(lane, l.e.Vals[i])
		}
	}
}
