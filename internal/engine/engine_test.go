package engine

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
)

func testCircuit(t *testing.T, seed int64) *netlist.Circuit {
	t.Helper()
	return gen.Generate(gen.Profile{Name: "engt", PIs: 6, POs: 5, FFs: 10, Gates: 120}, seed)
}

// andCircuit builds the minimal two-input circuit the mutation tests
// grow: a single AND driving the only output.
func andCircuit(t *testing.T) *netlist.Circuit {
	t.Helper()
	c := netlist.New("mut")
	a, _ := c.AddInput("a")
	b, _ := c.AddInput("b")
	g, err := c.AddGate("g", logic.OpAnd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput(g); err != nil {
		t.Fatal(err)
	}
	c.MustFinalize()
	return c
}

func TestCacheSharesArtifacts(t *testing.T) {
	c := testCircuit(t, 1)
	ca := New()
	a1 := ca.For(c)
	a2 := ca.For(c)
	if a1 != a2 {
		t.Fatal("second For returned a different Artifacts value")
	}
	if a1.Program(nil) != a2.Program(nil) {
		t.Error("Program not shared")
	}
	f1, f2 := a1.CollapsedFaults(), a2.CollapsedFaults()
	if len(f1) == 0 || &f1[0] != &f2[0] {
		t.Error("CollapsedFaults not shared")
	}
	cm1, err := a1.CombModel()
	if err != nil {
		t.Fatal(err)
	}
	cm2, _ := a2.CombModel()
	if cm1 != cm2 {
		t.Error("CombModel not shared")
	}
	if ca.Len() != 1 {
		t.Errorf("Len = %d, want 1", ca.Len())
	}
	if a1.Circuit() != c || a1.Hash() != c.StructuralHash() {
		t.Error("Artifacts identity mismatch")
	}
}

// TestCacheConcurrentSingleCompile pins the tentpole accounting claim:
// any number of workers racing For(...).Program(...) share exactly one
// compilation.
func TestCacheConcurrentSingleCompile(t *testing.T) {
	c := testCircuit(t, 2)
	ca := New()
	col := obs.New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ca.For(c).Program(col)
		}()
	}
	wg.Wait()
	if got := col.Snapshot().Counters["sim.compile.count"]; got != 1 {
		t.Errorf("sim.compile.count = %d, want 1", got)
	}
}

func TestCacheInvalidateOnMutation(t *testing.T) {
	c := andCircuit(t)
	ca := New()
	a1 := ca.For(c)
	h1 := a1.Hash()

	// Mutate the cached circuit: its hash changes, so the next For must
	// yield fresh artifacts under the new key.
	x, _ := c.AddInput("x")
	g2, err := c.AddGate("g2", logic.OpOr, x, c.Inputs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MarkOutput(g2); err != nil {
		t.Fatal(err)
	}
	c.MustFinalize()
	if c.StructuralHash() == h1 {
		t.Fatal("mutation did not change the structural hash")
	}
	a2 := ca.For(c)
	if a2 == a1 {
		t.Fatal("mutated circuit served stale artifacts")
	}
	if a2.Hash() != c.StructuralHash() {
		t.Error("new artifacts keyed by stale hash")
	}

	// Stale-entry guard: a different circuit with the ORIGINAL structure
	// hashes to h1, where the cache still holds artifacts whose circuit
	// has since mutated away. It must rebuild, not serve them.
	c2 := andCircuit(t)
	if c2.StructuralHash() != h1 {
		t.Fatal("reconstruction does not hash like the original")
	}
	a3 := ca.For(c2)
	if a3 == a1 {
		t.Fatal("stale entry served for a new circuit with the old hash")
	}
	if a3.Circuit() != c2 {
		t.Error("artifacts bound to the wrong circuit")
	}
	// And the freshly rebuilt entry is now served normally.
	if ca.For(c2) != a3 {
		t.Error("rebuilt entry not cached")
	}
}

func TestCacheBypass(t *testing.T) {
	c := testCircuit(t, 3)
	ca := Bypass()
	a1 := ca.For(c)
	a2 := ca.For(c)
	if a1 == a2 {
		t.Fatal("bypass cache memoized")
	}
	if ca.Len() != 0 {
		t.Errorf("bypass cache holds %d entries, want 0", ca.Len())
	}
	// Artifacts still memoize within themselves.
	if a1.Program(nil) != a1.Program(nil) {
		t.Error("bypass artifacts recompiled")
	}
}

func TestCacheEviction(t *testing.T) {
	ca := New()
	first := andCircuit(t)
	ca.For(first)
	// Push DefaultMaxEntries further distinct structures through the
	// cache.
	for i := 0; i < DefaultMaxEntries; i++ {
		c := netlist.New("ev")
		in, _ := c.AddInput("a")
		prev := in
		for j := 0; j <= i; j++ {
			g, err := c.AddGate(fmt.Sprintf("n%d", j), logic.OpNot, prev)
			if err != nil {
				t.Fatal(err)
			}
			prev = g
		}
		if err := c.MarkOutput(prev); err != nil {
			t.Fatal(err)
		}
		c.MustFinalize()
		ca.For(c)
	}
	if got := ca.Len(); got > DefaultMaxEntries {
		t.Errorf("cache grew to %d entries, bound is %d", got, DefaultMaxEntries)
	}
}

func TestResolve(t *testing.T) {
	if Resolve(nil) != Default() {
		t.Error("Resolve(nil) != Default()")
	}
	ca := New()
	if Resolve(ca) != ca {
		t.Error("Resolve dropped an explicit cache")
	}
}

func TestCombSearchMemoized(t *testing.T) {
	c := testCircuit(t, 4)
	a := New().For(c)
	fixed := map[netlist.SignalID]logic.V{c.Inputs[0]: logic.One, c.Inputs[1]: logic.Zero}
	m1, t1, err := a.CombSearch(fixed)
	if err != nil {
		t.Fatal(err)
	}
	// An equal assignment built independently (different map value, and
	// map iteration order is free to differ) must hit the same entry.
	same := map[netlist.SignalID]logic.V{c.Inputs[1]: logic.Zero, c.Inputs[0]: logic.One}
	m2, t2, err := a.CombSearch(same)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 || t1 != t2 {
		t.Error("equal fixed assignments did not share the search artifacts")
	}
	// A different assignment must not.
	other := map[netlist.SignalID]logic.V{c.Inputs[0]: logic.Zero}
	m3, _, err := a.CombSearch(other)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Error("distinct fixed assignments shared a model")
	}
}

func TestParseBackend(t *testing.T) {
	for _, b := range []Backend{Auto, Compiled, Packed, Scalar, Event, Hybrid} {
		got, err := ParseBackend(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBackend(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := ParseBackend("warp"); err == nil {
		t.Error("ParseBackend accepted junk")
	}
}

func TestResolveAuto(t *testing.T) {
	small := testCircuit(t, 5)
	if got := Auto.ResolveSeq(small, Hint{Lanes: 1, Cycles: 1000}); got != Compiled {
		t.Errorf("small circuit resolved to %v, want compiled", got)
	}
	if got := Auto.ResolveComb(); got != Compiled {
		t.Errorf("Auto comb resolved to %v, want compiled", got)
	}
	if got := Event.ResolveComb(); got != Scalar {
		t.Errorf("Event comb resolved to %v, want scalar", got)
	}
	if got := Hybrid.ResolveComb(); got != Compiled {
		t.Errorf("Hybrid comb resolved to %v, want compiled", got)
	}
	if got := Packed.ResolveSeq(small, Hint{}); got != Packed {
		t.Errorf("forced backend rewritten to %v", got)
	}
	// Full-width passes on large sequential circuits take the hybrid
	// strategy; the same shape without flip-flops stays compiled.
	large := gen.Generate(gen.Profile{Name: "engl", PIs: 8, POs: 6, FFs: 64, Gates: 4200}, 3)
	if got := Auto.ResolveSeq(large, Hint{Lanes: 63, Cycles: 100}); got != Hybrid {
		t.Errorf("large sequential full-width resolved to %v, want hybrid", got)
	}
	if got := Auto.ResolveSeq(small, Hint{Lanes: 63, Cycles: 100}); got != Compiled {
		t.Errorf("small full-width resolved to %v, want compiled", got)
	}
}
