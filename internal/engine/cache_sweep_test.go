package engine

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/gen"
	"repro/internal/netlist"
)

// sweepCircuit generates one of the sweep's distinct mid-size circuits
// (distinct name + seed => distinct structural hash and artifacts).
func sweepCircuit(i int) *netlist.Circuit {
	return gen.Generate(gen.Profile{
		Name: fmt.Sprintf("swp%d", i), PIs: 8, POs: 6, FFs: 32, Gates: 1200,
	}, int64(100+i))
}

// touch probes the cache for c and materializes the fault-simulation
// working set (compiled program, collapsed faults, fanout cones) the
// way a screening or fault-sim job would.
func touch(t *testing.T, ca *Cache, c *netlist.Circuit) {
	t.Helper()
	a := ca.For(c)
	if a.Program(nil) == nil {
		t.Fatal("compile failed")
	}
	a.CollapsedFaults()
	a.Cones(nil)
}

// TestEmitCacheSweep measures cache hit rate and evictions as a
// function of the byte budget, for EXPERIMENTS.md ("Cache hit rate vs
// byte budget"). Gated like the bench emitters:
//
//	FSCT_EMIT_BENCH=1 go test -run TestEmitCacheSweep -v ./internal/engine/
//
// The workload models a daemon serving a mix of tenants: 2 hot
// circuits probed every round plus a round-robin tail of 6 cold
// circuits, 24 rounds. Per-entry size is measured first, so budgets
// are expressed in working-set multiples and the table stays
// meaningful if artifact sizes drift.
func TestEmitCacheSweep(t *testing.T) {
	if os.Getenv("FSCT_EMIT_BENCH") == "" {
		t.Skip("set FSCT_EMIT_BENCH=1 to run the cache budget sweep")
	}

	const nHot, nCold, rounds = 2, 6, 24
	circuits := make([]*netlist.Circuit, nHot+nCold)
	for i := range circuits {
		circuits[i] = sweepCircuit(i)
	}

	// Measure one entry's materialized footprint.
	probe := New()
	touch(t, probe, circuits[0])
	perEntry := probe.Stats().Bytes
	total := perEntry * int64(len(circuits))
	fmt.Printf("per-entry working set: %d bytes; %d circuits (%d hot + %d cold); total %d bytes\n\n",
		perEntry, len(circuits), nHot, nCold, total)

	budgets := []struct {
		label  string
		budget int64
	}{
		{"unbounded", 0},
		{"8 entries (= all)", total},
		{"4 entries", perEntry * 4},
		{"3 entries", perEntry * 3},
		{"2 entries (= hot set)", perEntry * 2},
		{"1 entry", perEntry},
	}
	fmt.Printf("%-22s %8s %8s %9s %10s %8s\n",
		"BUDGET", "HITS", "MISSES", "HIT-RATE", "EVICTIONS", "RESIDENT")
	for _, b := range budgets {
		ca := New()
		ca.SetBudget(b.budget)
		for r := 0; r < rounds; r++ {
			for h := 0; h < nHot; h++ {
				touch(t, ca, circuits[h])
			}
			touch(t, ca, circuits[nHot+r%nCold])
		}
		st := ca.Stats()
		fmt.Printf("%-22s %8d %8d %8.1f%% %10d %8d\n",
			b.label, st.Hits, st.Misses,
			100*float64(st.Hits)/float64(st.Hits+st.Misses),
			st.Evictions, st.Entries)
	}
}
