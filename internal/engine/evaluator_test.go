package engine

import (
	"math/rand"
	"testing"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/sim"
)

// randWord fills all 64 lanes with values drawn from {0,1,X}; lane 0
// stays binary (the fault-free reference convention) and X shows up
// rarely so the three-valued corners get exercised without washing the
// whole trace out.
func randWord(rng *rand.Rand) logic.Word {
	w := logic.WordAll(logic.V(rng.Intn(2)))
	for lane := uint(1); lane < 64; lane++ {
		v := logic.V(rng.Intn(2))
		if rng.Intn(16) == 0 {
			v = logic.X
		}
		w = w.Set(lane, v)
	}
	return w
}

func laneInjections(faults []fault.Fault, n int) []sim.LaneInject {
	injs := make([]sim.LaneInject, 0, n)
	for k := 0; k < n && k < len(faults); k++ {
		injs = append(injs, sim.LaneInject{Inject: faults[k].Inject(), Lane: uint(k + 1)})
	}
	return injs
}

// TestSeqBackendEquivalence drives every sequential backend through the
// unified Evaluator contract — injections, X-resets, packed state
// presets, divergent per-lane inputs — and demands bit-identical output
// words against the compiled reference.
func TestSeqBackendEquivalence(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "eqs", PIs: 5, POs: 4, FFs: 12, Gates: 150}, 7)
	arts := New().For(c)
	faults := arts.CollapsedFaults()

	backends := []Backend{Compiled, Packed, Scalar, Event, Hybrid}
	evals := make([]Evaluator, len(backends))
	for i, b := range backends {
		evals[i] = NewSeqEvaluator(b, arts, nil)
	}

	rng := rand.New(rand.NewSource(11))
	pi := make([]logic.Word, len(c.Inputs))
	pos := make([][]logic.Word, len(backends))
	for round := 0; round < 3; round++ {
		injs := laneInjections(faults[round*20:], 15)
		for _, e := range evals {
			e.SetInjections(injs)
			e.ResetX()
		}
		// Preset a few flip-flops with divergent per-lane values.
		for ff := 0; ff < len(c.FFs) && ff < 4; ff++ {
			w := randWord(rng)
			for _, e := range evals {
				e.SetStateWord(ff, w)
			}
		}
		for cyc := 0; cyc < 24; cyc++ {
			for i := range pi {
				pi[i] = randWord(rng)
			}
			for ei, e := range evals {
				pos[ei] = e.Cycle(pi, pos[ei])
			}
			for ei := 1; ei < len(backends); ei++ {
				for o := range pos[0] {
					for lane := uint(0); lane < 64; lane++ {
						want := pos[0][o].Get(lane)
						got := pos[ei][o].Get(lane)
						if got != want {
							t.Fatalf("round %d cycle %d: backend %v output %d lane %d = %v, compiled says %v",
								round, cyc, backends[ei], o, lane, got, want)
						}
					}
				}
			}
		}
	}
}

// TestCombBackendEquivalence does the same for the combinational
// contract over the scan circuit's comb model.
func TestCombBackendEquivalence(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "eqc", PIs: 5, POs: 4, FFs: 10, Gates: 120}, 9)
	cm, err := atpg.BuildCombModel(c)
	if err != nil {
		t.Fatal(err)
	}
	arts := New().For(cm.C)
	faults := fault.Collapsed(cm.C)

	backends := []Backend{Compiled, Packed, Scalar}
	evals := make([]CombEvaluator, len(backends))
	for i, b := range backends {
		evals[i] = NewCombEvaluator(b, arts, nil)
	}

	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 3; round++ {
		injs := laneInjections(faults[round*10:], 20)
		for _, e := range evals {
			e.SetInjections(injs)
			e.ClearX()
		}
		words := make([]logic.Word, len(cm.C.Inputs))
		for i := range words {
			words[i] = randWord(rng)
		}
		for _, e := range evals {
			w := e.Words()
			for i, in := range cm.C.Inputs {
				w[in] = words[i]
			}
			e.Eval()
		}
		for ei := 1; ei < len(backends); ei++ {
			ref, got := evals[0].Words(), evals[ei].Words()
			for _, out := range cm.C.Outputs {
				for lane := uint(0); lane < 64; lane++ {
					if got[out].Get(lane) != ref[out].Get(lane) {
						t.Fatalf("round %d: backend %v output %s lane %d = %v, compiled says %v",
							round, backends[ei], cm.C.NameOf(out), lane,
							got[out].Get(lane), ref[out].Get(lane))
					}
				}
			}
		}
	}
}

// TestLaneSeqMirrorRelease pins the mirror-lane bookkeeping: after
// ResetX only injection-carrying lanes keep private machines.
func TestLaneSeqMirrorRelease(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "mirror", PIs: 4, POs: 3, FFs: 8, Gates: 80}, 3)
	l := newLaneSeq(c, func() laneMachine { return &seqMachine{s: sim.NewSeq(c)} })
	faults := fault.Collapsed(c)
	l.SetInjections(laneInjections(faults, 2))
	// Divergent inputs activate extra lanes.
	pi := make([]logic.Word, len(c.Inputs))
	for i := range pi {
		pi[i] = logic.WordAll(logic.Zero).Set(40, logic.One)
	}
	l.Cycle(pi, nil)
	if l.machines[40] == nil {
		t.Fatal("divergent lane 40 has no private machine")
	}
	l.ResetX()
	if l.machines[40] != nil {
		t.Error("ResetX kept the machine of a lane without injection")
	}
	if l.machines[1] == nil || l.machines[2] == nil {
		t.Error("ResetX dropped an injection-carrying lane's machine")
	}
}

func TestLaneSeqOneInjectionPerLane(t *testing.T) {
	c := gen.Generate(gen.Profile{Name: "dup", PIs: 4, POs: 3, FFs: 6, Gates: 60}, 5)
	l := newLaneSeq(c, func() laneMachine { return &seqMachine{s: sim.NewSeq(c)} })
	faults := fault.Collapsed(c)
	defer func() {
		if recover() == nil {
			t.Error("duplicate-lane injection did not panic")
		}
	}()
	l.SetInjections([]sim.LaneInject{
		{Inject: faults[0].Inject(), Lane: 5},
		{Inject: faults[1].Inject(), Lane: 5},
	})
}

// TestDivergent pins the lane-divergence bit function against the naive
// per-lane comparison.
func TestDivergent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		var w logic.Word
		vals := make([]logic.V, 64)
		for lane := uint(0); lane < 64; lane++ {
			v := logic.V(rng.Intn(3)) // 0, 1, X
			if v > logic.One {
				v = logic.X
			}
			vals[lane] = v
			w = w.Set(lane, v)
		}
		got := divergent(w)
		for lane := uint(0); lane < 64; lane++ {
			want := vals[lane] != vals[0]
			if (got>>lane)&1 == 1 != want {
				t.Fatalf("divergent lane %d: bit=%v want %v (v0=%v v=%v)",
					lane, (got>>lane)&1 == 1, want, vals[0], vals[lane])
			}
		}
	}
}
