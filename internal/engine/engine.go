// Package engine is the shared artifact layer under the three-step
// flow: a per-circuit cache of everything the phases derive from a
// netlist — the compiled sim.Program (which embodies the levelization
// order), the collapsed fault list, the scan-mode combinational ATPG
// model and its SCOAP search tables — plus the unified evaluator
// construction (Backend / Evaluator / CombEvaluator) that places all
// four simulation backends behind one interface.
//
// Before this layer existed every phase rebuilt its own derived
// structures: screening, each of the many fault-simulation calls inside
// step 2 and step 3, the step-2 dropper and the diagnosis dictionary
// all compiled the same circuit again, and step 2 and the step-3 final
// pass each recomputed the same combinational model and SCOAP tables.
// The cache makes each derivation happen once per distinct circuit
// structure: entries are keyed by netlist.(*Circuit).StructuralHash, so
// mutation (TPI insertion, C/O model construction) changes the key and
// can never be served stale artifacts, and each artifact materializes
// lazily under its own sync.Once, so concurrent workers share one
// compilation instead of racing to duplicate it.
package engine

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Artifacts is the set of lazily materialized derived structures for
// one circuit. Each artifact is built at most once per Artifacts value
// (sync.Once per artifact) and is immutable afterwards, so any number
// of goroutines can share the value.
type Artifacts struct {
	c    *netlist.Circuit
	hash uint64

	// size accumulates the estimated resident footprint: the circuit
	// itself plus every artifact materialized so far. Byte-budgeted
	// caches resync their accounting from it at probe boundaries.
	size atomic.Int64

	progOnce sync.Once
	prog     *sim.Program

	faultsOnce sync.Once
	faults     []fault.Fault

	conesOnce sync.Once
	cones     *sim.ConeIndex

	combOnce sync.Once
	comb     *atpg.CombModel
	combErr  error

	searchMu sync.Mutex
	searches map[uint64]*combSearch
}

// combSearch memoizes the ATPG model + SCOAP tables for one fixed
// input assignment over the circuit's combinational model.
type combSearch struct {
	once   sync.Once
	model  *atpg.Model
	tables *atpg.Tables
	err    error
}

func newArtifacts(c *netlist.Circuit) *Artifacts {
	a := &Artifacts{c: c, hash: c.StructuralHash(), searches: make(map[uint64]*combSearch)}
	a.size.Store(int64(unsafe.Sizeof(*a)) + c.SizeBytes())
	return a
}

// Circuit returns the circuit these artifacts derive from.
func (a *Artifacts) Circuit() *netlist.Circuit { return a.c }

// Hash returns the structural hash the artifacts are keyed by.
func (a *Artifacts) Hash() uint64 { return a.hash }

// SizeBytes returns the current estimated resident footprint of the
// artifact set: the backing circuit plus everything materialized so
// far. It grows monotonically as artifacts lazily materialize.
func (a *Artifacts) SizeBytes() int64 { return a.size.Load() }

// Program returns the compiled instruction stream (which carries the
// levelization order), compiling on first use. When a collector is
// supplied on the materializing call the compile is accounted under the
// sim.compile.* counters — with the cache active that is exactly once
// per distinct circuit structure.
func (a *Artifacts) Program(col *obs.Collector) *sim.Program {
	a.progOnce.Do(func() {
		a.prog = sim.CompileObs(a.c, col)
		a.size.Add(a.prog.SizeBytes())
	})
	return a.prog
}

// CollapsedFaults returns the equivalence-collapsed stuck-at fault list
// of the circuit, computed on first use. Callers must not mutate the
// returned slice.
func (a *Artifacts) CollapsedFaults() []fault.Fault {
	a.faultsOnce.Do(func() {
		a.faults = fault.Collapsed(a.c)
		a.size.Add(int64(cap(a.faults)) * int64(unsafe.Sizeof(fault.Fault{})))
	})
	return a.faults
}

// Cones returns the static influence-cone index of the circuit
// (fanout closure per signal, capped at sim.DefaultConeCap), built on
// first use. The hybrid fault-simulation strategy reads it to decide
// which faults are guaranteed residents of the delta fast path; like
// every artifact it is keyed by the structural hash, so circuit
// mutation can never serve stale cones. The materializing call is
// counted under engine.cones.builds when a collector is supplied.
func (a *Artifacts) Cones(col *obs.Collector) *sim.ConeIndex {
	a.conesOnce.Do(func() {
		if col.Enabled() {
			col.Counter("engine.cones.builds").Inc()
		}
		a.cones = sim.NewConeIndex(a.c, 0)
		a.size.Add(a.cones.SizeBytes())
	})
	return a.cones
}

// CombModel returns the scan-mode combinational ATPG model (flip-flop
// outputs as pseudo-inputs, D pins as pseudo-outputs), built on first
// use. The model's circuit is itself cacheable: derived structures for
// it (its compiled program, used by the step-2 dropper) live under its
// own cache entry.
func (a *Artifacts) CombModel() (*atpg.CombModel, error) {
	a.combOnce.Do(func() {
		a.comb, a.combErr = atpg.BuildCombModel(a.c)
		if a.combErr == nil {
			// The model circuit plus its D-pin observation-buffer map
			// (~48 bytes of bucket share per entry).
			a.size.Add(a.comb.C.SizeBytes() + int64(len(a.comb.DBuf))*48)
		}
	})
	return a.comb, a.combErr
}

// CombSearch returns the ATPG model and SCOAP search tables for the
// circuit's combinational model under the given fixed input assignment,
// memoized per distinct assignment. Step 2 and the step-3 final pass
// run against the same scan-mode model with the same pinned inputs;
// through this accessor they share one controllability/observability
// computation, each wrapping it in its own (cheap) atpg.Engine.
func (a *Artifacts) CombSearch(fixed map[netlist.SignalID]logic.V) (*atpg.Model, *atpg.Tables, error) {
	cm, err := a.CombModel()
	if err != nil {
		return nil, nil, err
	}
	key := fixedHash(fixed)
	a.searchMu.Lock()
	s, ok := a.searches[key]
	if !ok {
		s = &combSearch{}
		a.searches[key] = s
	}
	a.searchMu.Unlock()
	s.once.Do(func() {
		s.model, s.err = atpg.NewModel(cm.C, fixed)
		if s.err == nil {
			s.tables = atpg.NewTables(s.model)
			// Tables dominate; the model is the shared comb circuit
			// plus the fixed map (~56 bytes of bucket share per entry).
			a.size.Add(s.tables.SizeBytes() + int64(len(fixed))*56)
		}
	})
	return s.model, s.tables, s.err
}

// fixedHash digests a fixed-assignment map order-independently: XOR of
// per-entry FNV mixes, so map iteration order cannot perturb the key.
func fixedHash(fixed map[netlist.SignalID]logic.V) uint64 {
	const prime64 = 1099511628211
	h := uint64(len(fixed)) * prime64
	for k, v := range fixed {
		e := (uint64(uint32(k))<<8 | uint64(v) + 1) * prime64
		e ^= e >> 29
		e *= prime64
		h ^= e
	}
	return h
}
