// Package engine is the shared artifact layer under the three-step
// flow: a per-circuit cache of everything the phases derive from a
// netlist — the compiled sim.Program (which embodies the levelization
// order), the collapsed fault list, the scan-mode combinational ATPG
// model and its SCOAP search tables — plus the unified evaluator
// construction (Backend / Evaluator / CombEvaluator) that places all
// four simulation backends behind one interface.
//
// Before this layer existed every phase rebuilt its own derived
// structures: screening, each of the many fault-simulation calls inside
// step 2 and step 3, the step-2 dropper and the diagnosis dictionary
// all compiled the same circuit again, and step 2 and the step-3 final
// pass each recomputed the same combinational model and SCOAP tables.
// The cache makes each derivation happen once per distinct circuit
// structure: entries are keyed by netlist.(*Circuit).StructuralHash, so
// mutation (TPI insertion, C/O model construction) changes the key and
// can never be served stale artifacts, and each artifact materializes
// lazily under its own sync.Once, so concurrent workers share one
// compilation instead of racing to duplicate it.
package engine

import (
	"sync"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sim"
)

// maxEntries bounds the cache: one entry per distinct circuit
// structure, evicted FIFO beyond the bound. A flow run touches two
// structures (the scan circuit and its combinational model); the bound
// only matters to long-lived processes churning through many circuits.
const maxEntries = 64

// Cache memoizes derived artifacts per circuit structure. The zero
// value is not usable; construct with New (or use the process-wide
// Default). All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	entries map[uint64]*Artifacts
	order   []uint64 // insertion order, for FIFO eviction
	bypass  bool
}

// New returns an empty artifact cache.
func New() *Cache {
	return &Cache{entries: make(map[uint64]*Artifacts)}
}

// Bypass returns a cache that never memoizes: every For call hands back
// a fresh Artifacts value, so each phase rebuilds its derived
// structures from scratch. This is the cold-rebuild reference the
// determinism tests and the cache-on/off benchmarks compare against.
func Bypass() *Cache {
	return &Cache{entries: make(map[uint64]*Artifacts), bypass: true}
}

var defaultCache = New()

// Default returns the process-wide shared cache, used whenever a caller
// does not supply an explicit one.
func Default() *Cache { return defaultCache }

// Resolve maps a possibly-nil cache to a usable one (nil selects
// Default), letting option structs treat "no cache configured" as
// "share the process-wide cache".
func Resolve(c *Cache) *Cache {
	if c == nil {
		return Default()
	}
	return c
}

// For returns the artifact set for circuit c, creating it on first use.
// The entry is keyed by c's structural hash; if a previously cached
// circuit with the same hash has since been mutated (its current hash
// no longer matches the key it was stored under), the stale entry is
// replaced rather than served.
func (ca *Cache) For(c *netlist.Circuit) *Artifacts {
	a, _ := ca.lookup(c)
	return a
}

// ForObs is For plus probe observability: the outcome is counted under
// engine.cache.hits / engine.cache.misses on col and mirrored as a
// cache event into col's journal when a flight recorder is attached.
// With col == nil it is exactly For.
func (ca *Cache) ForObs(c *netlist.Circuit, col *obs.Collector) *Artifacts {
	a, hit := ca.lookup(c)
	if col.Enabled() {
		if hit {
			col.Counter("engine.cache.hits").Inc()
		} else {
			col.Counter("engine.cache.misses").Inc()
		}
		col.Journal().Emit(journal.Cache("artifacts", hit))
	}
	return a
}

// lookup resolves c's artifact entry and reports whether it was served
// from cache (bypass caches always rebuild, so they always miss).
func (ca *Cache) lookup(c *netlist.Circuit) (*Artifacts, bool) {
	if ca.bypass {
		return newArtifacts(c), false
	}
	h := c.StructuralHash()
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if a, ok := ca.entries[h]; ok {
		if a.c == c || a.c.StructuralHash() == h {
			return a, true
		}
		// The cached circuit mutated after being cached; its artifacts
		// no longer describe the structure hashed under this key.
		delete(ca.entries, h)
	}
	a := newArtifacts(c)
	ca.entries[h] = a
	ca.order = append(ca.order, h)
	for len(ca.order) > maxEntries {
		old := ca.order[0]
		ca.order = ca.order[1:]
		if e, ok := ca.entries[old]; ok && e != a {
			delete(ca.entries, old)
		}
	}
	return a, false
}

// Len reports the number of cached circuit entries (for tests).
func (ca *Cache) Len() int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return len(ca.entries)
}

// Artifacts is the set of lazily materialized derived structures for
// one circuit. Each artifact is built at most once per Artifacts value
// (sync.Once per artifact) and is immutable afterwards, so any number
// of goroutines can share the value.
type Artifacts struct {
	c    *netlist.Circuit
	hash uint64

	progOnce sync.Once
	prog     *sim.Program

	faultsOnce sync.Once
	faults     []fault.Fault

	conesOnce sync.Once
	cones     *sim.ConeIndex

	combOnce sync.Once
	comb     *atpg.CombModel
	combErr  error

	searchMu sync.Mutex
	searches map[uint64]*combSearch
}

// combSearch memoizes the ATPG model + SCOAP tables for one fixed
// input assignment over the circuit's combinational model.
type combSearch struct {
	once   sync.Once
	model  *atpg.Model
	tables *atpg.Tables
	err    error
}

func newArtifacts(c *netlist.Circuit) *Artifacts {
	return &Artifacts{c: c, hash: c.StructuralHash(), searches: make(map[uint64]*combSearch)}
}

// Circuit returns the circuit these artifacts derive from.
func (a *Artifacts) Circuit() *netlist.Circuit { return a.c }

// Hash returns the structural hash the artifacts are keyed by.
func (a *Artifacts) Hash() uint64 { return a.hash }

// Program returns the compiled instruction stream (which carries the
// levelization order), compiling on first use. When a collector is
// supplied on the materializing call the compile is accounted under the
// sim.compile.* counters — with the cache active that is exactly once
// per distinct circuit structure.
func (a *Artifacts) Program(col *obs.Collector) *sim.Program {
	a.progOnce.Do(func() {
		a.prog = sim.CompileObs(a.c, col)
	})
	return a.prog
}

// CollapsedFaults returns the equivalence-collapsed stuck-at fault list
// of the circuit, computed on first use. Callers must not mutate the
// returned slice.
func (a *Artifacts) CollapsedFaults() []fault.Fault {
	a.faultsOnce.Do(func() {
		a.faults = fault.Collapsed(a.c)
	})
	return a.faults
}

// Cones returns the static influence-cone index of the circuit
// (fanout closure per signal, capped at sim.DefaultConeCap), built on
// first use. The hybrid fault-simulation strategy reads it to decide
// which faults are guaranteed residents of the delta fast path; like
// every artifact it is keyed by the structural hash, so circuit
// mutation can never serve stale cones. The materializing call is
// counted under engine.cones.builds when a collector is supplied.
func (a *Artifacts) Cones(col *obs.Collector) *sim.ConeIndex {
	a.conesOnce.Do(func() {
		if col.Enabled() {
			col.Counter("engine.cones.builds").Inc()
		}
		a.cones = sim.NewConeIndex(a.c, 0)
	})
	return a.cones
}

// CombModel returns the scan-mode combinational ATPG model (flip-flop
// outputs as pseudo-inputs, D pins as pseudo-outputs), built on first
// use. The model's circuit is itself cacheable: derived structures for
// it (its compiled program, used by the step-2 dropper) live under its
// own cache entry.
func (a *Artifacts) CombModel() (*atpg.CombModel, error) {
	a.combOnce.Do(func() {
		a.comb, a.combErr = atpg.BuildCombModel(a.c)
	})
	return a.comb, a.combErr
}

// CombSearch returns the ATPG model and SCOAP search tables for the
// circuit's combinational model under the given fixed input assignment,
// memoized per distinct assignment. Step 2 and the step-3 final pass
// run against the same scan-mode model with the same pinned inputs;
// through this accessor they share one controllability/observability
// computation, each wrapping it in its own (cheap) atpg.Engine.
func (a *Artifacts) CombSearch(fixed map[netlist.SignalID]logic.V) (*atpg.Model, *atpg.Tables, error) {
	cm, err := a.CombModel()
	if err != nil {
		return nil, nil, err
	}
	key := fixedHash(fixed)
	a.searchMu.Lock()
	s, ok := a.searches[key]
	if !ok {
		s = &combSearch{}
		a.searches[key] = s
	}
	a.searchMu.Unlock()
	s.once.Do(func() {
		s.model, s.err = atpg.NewModel(cm.C, fixed)
		if s.err == nil {
			s.tables = atpg.NewTables(s.model)
		}
	})
	return s.model, s.tables, s.err
}

// fixedHash digests a fixed-assignment map order-independently: XOR of
// per-entry FNV mixes, so map iteration order cannot perturb the key.
func fixedHash(fixed map[netlist.SignalID]logic.V) uint64 {
	const prime64 = 1099511628211
	h := uint64(len(fixed)) * prime64
	for k, v := range fixed {
		e := (uint64(uint32(k))<<8 | uint64(v) + 1) * prime64
		e ^= e >> 29
		e *= prime64
		h ^= e
	}
	return h
}
