package engine

import (
	"container/list"
	"strconv"
	"sync"

	"repro/internal/journal"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// DefaultMaxEntries bounds the cache when no explicit entry bound is
// configured: one entry per distinct circuit structure. A flow run
// touches two structures (the scan circuit and its combinational
// model); the bound only matters to long-lived processes churning
// through many circuits.
const DefaultMaxEntries = 64

// CacheStats is a point-in-time snapshot of a cache's occupancy and
// lifetime probe outcomes, as reported by Stats.
type CacheStats struct {
	Entries    int   // resident circuit structures
	Bytes      int64 // accounted resident bytes across all entries
	Budget     int64 // configured byte budget (0 = unbounded)
	MaxEntries int   // configured entry bound
	Hits       int64 // probes served from cache
	Misses     int64 // probes that built a fresh entry
	Evictions  int64 // entries discarded under budget/entry pressure
}

// Cache memoizes derived artifacts per circuit structure, with
// least-recently-used eviction under two independent bounds: a count
// bound (SetMaxEntries, default DefaultMaxEntries) and an optional byte
// budget (SetBudget). The zero value is not usable; construct with New
// (or use the process-wide Default). All methods are safe for
// concurrent use.
//
// Because artifacts materialize lazily after insertion (each under its
// own sync.Once), an entry's footprint grows over its lifetime; the
// cache resynchronizes its per-entry byte accounting at every probe
// and evicts from the LRU tail until back under both bounds. Eviction
// therefore happens at probe boundaries, not at materialization time —
// between probes the cache can transiently exceed its budget by the
// artifacts materialized since the last probe. The entry being served
// is never the eviction victim, and evicted Artifacts values remain
// fully usable by callers already holding them (they are immutable and
// self-contained); eviction only drops the cache's reference.
type Cache struct {
	mu         sync.Mutex
	entries    map[uint64]*list.Element // value: *cacheEntry
	lru        *list.List               // front = most recently used
	accounted  int64                    // sum of entry accounted bytes
	budget     int64                    // bytes; <= 0 = unbounded
	maxEntries int
	bypass     bool

	hits, misses, evictions int64
}

// cacheEntry is one resident structure: the artifacts plus the byte
// count the cache last accounted for them (resynced from the artifacts'
// live size at every probe).
type cacheEntry struct {
	hash      uint64
	arts      *Artifacts
	accounted int64
}

// New returns an empty artifact cache with the default entry bound and
// no byte budget.
func New() *Cache {
	return &Cache{
		entries:    make(map[uint64]*list.Element),
		lru:        list.New(),
		maxEntries: DefaultMaxEntries,
	}
}

// Bypass returns a cache that never memoizes: every For call hands back
// a fresh Artifacts value, so each phase rebuilds its derived
// structures from scratch. This is the cold-rebuild reference the
// determinism tests and the cache-on/off benchmarks compare against.
func Bypass() *Cache {
	ca := New()
	ca.bypass = true
	return ca
}

var defaultCache = New()

// Default returns the process-wide shared cache, used whenever a caller
// does not supply an explicit one.
func Default() *Cache { return defaultCache }

// Resolve maps a possibly-nil cache to a usable one (nil selects
// Default), letting option structs treat "no cache configured" as
// "share the process-wide cache".
func Resolve(c *Cache) *Cache {
	if c == nil {
		return Default()
	}
	return c
}

// SetBudget sets the cache's byte budget: after each probe, entries are
// evicted least-recently-used-first until the accounted total is at or
// under the budget. budget <= 0 means unbounded bytes (the entry bound
// still applies). Lowering the budget takes effect at the next probe.
func (ca *Cache) SetBudget(budget int64) {
	ca.mu.Lock()
	ca.budget = budget
	ca.mu.Unlock()
}

// SetMaxEntries sets the entry-count bound (n <= 0 restores
// DefaultMaxEntries).
func (ca *Cache) SetMaxEntries(n int) {
	if n <= 0 {
		n = DefaultMaxEntries
	}
	ca.mu.Lock()
	ca.maxEntries = n
	ca.mu.Unlock()
}

// Stats returns a snapshot of the cache's occupancy and lifetime
// counters, with byte accounting resynchronized against the live
// artifact sizes first.
func (ca *Cache) Stats() CacheStats {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.resyncLocked()
	return CacheStats{
		Entries:    len(ca.entries),
		Bytes:      ca.accounted,
		Budget:     ca.budget,
		MaxEntries: ca.maxEntries,
		Hits:       ca.hits,
		Misses:     ca.misses,
		Evictions:  ca.evictions,
	}
}

// For returns the artifact set for circuit c, creating it on first use.
// The entry is keyed by c's structural hash; if a previously cached
// circuit with the same hash has since been mutated (its current hash
// no longer matches the key it was stored under), the stale entry is
// replaced rather than served.
func (ca *Cache) For(c *netlist.Circuit) *Artifacts {
	a, _ := ca.lookup(c)
	return a
}

// ForObs is For plus probe observability. Every probe increments
// engine.cache.probes and is mirrored as a cache event into col's
// journal when a flight recorder is attached; engine.cache.hits /
// engine.cache.misses count each distinct structure once per collector
// (first probe decides), so a single job's repeated probes of its own
// working set cannot inflate the hit rate. With col == nil it is
// exactly For.
func (ca *Cache) ForObs(c *netlist.Circuit, col *obs.Collector) *Artifacts {
	a, hit := ca.lookup(c)
	if col.Enabled() {
		col.Counter("engine.cache.probes").Inc()
		if col.MarkOnce("engine.cache.seen:" + strconv.FormatUint(a.hash, 16)) {
			if hit {
				col.Counter("engine.cache.hits").Inc()
			} else {
				col.Counter("engine.cache.misses").Inc()
			}
		}
		col.Journal().Emit(journal.Cache("artifacts", hit))
	}
	return a
}

// lookup resolves c's artifact entry and reports whether it was served
// from cache (bypass caches always rebuild, so they always miss).
func (ca *Cache) lookup(c *netlist.Circuit) (*Artifacts, bool) {
	if ca.bypass {
		return newArtifacts(c), false
	}
	h := c.StructuralHash()
	ca.mu.Lock()
	defer ca.mu.Unlock()
	if el, ok := ca.entries[h]; ok {
		e := el.Value.(*cacheEntry)
		if e.arts.c == c || e.arts.c.StructuralHash() == h {
			ca.lru.MoveToFront(el)
			ca.hits++
			ca.resyncLocked()
			ca.evictLocked(e)
			return e.arts, true
		}
		// The cached circuit mutated after being cached; its artifacts
		// no longer describe the structure hashed under this key.
		ca.removeLocked(el)
	}
	a := newArtifacts(c)
	e := &cacheEntry{hash: h, arts: a, accounted: a.SizeBytes()}
	ca.entries[h] = ca.lru.PushFront(e)
	ca.accounted += e.accounted
	ca.misses++
	ca.resyncLocked()
	ca.evictLocked(e)
	return a, false
}

// resyncLocked pulls each entry's live artifact size into the cache's
// byte accounting. Artifacts grow after insertion (lazy
// materialization), so accounted sizes drift between probes; this walk
// is O(entries), which probes — per-job-phase events — absorb easily.
func (ca *Cache) resyncLocked() {
	for el := ca.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if cur := e.arts.SizeBytes(); cur != e.accounted {
			ca.accounted += cur - e.accounted
			e.accounted = cur
		}
	}
}

// evictLocked discards LRU-tail entries until the cache is within both
// its bounds, never evicting keep (the entry being served): a budget
// smaller than one working set degrades to caching just that set, not
// to thrashing it.
func (ca *Cache) evictLocked(keep *cacheEntry) {
	for len(ca.entries) > ca.maxEntries || (ca.budget > 0 && ca.accounted > ca.budget) {
		el := ca.lru.Back()
		if el == nil || el.Value.(*cacheEntry) == keep {
			return
		}
		ca.removeLocked(el)
		ca.evictions++
	}
}

// removeLocked drops one entry from the map, the LRU list and the byte
// accounting.
func (ca *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	ca.lru.Remove(el)
	delete(ca.entries, e.hash)
	ca.accounted -= e.accounted
}

// Len reports the number of cached circuit entries (for tests).
func (ca *Cache) Len() int {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return len(ca.entries)
}
