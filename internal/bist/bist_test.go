package bist

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/tpi"
)

func design(t *testing.T) *scan.Design {
	t.Helper()
	d, err := tpi.Insert(bench.MustS27(), tpi.Options{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLFSRMaximalPeriod(t *testing.T) {
	l, err := NewLFSR(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	period := 0
	start := l.State()
	for {
		if seen[l.State()] {
			t.Fatalf("state repeated before full period at %d", period)
		}
		seen[l.State()] = true
		l.NextBit()
		period++
		if l.State() == start {
			break
		}
		if period > 300 {
			t.Fatal("period runaway")
		}
	}
	if period != 255 {
		t.Errorf("width-8 LFSR period = %d, want 255", period)
	}
}

func TestLFSRNeverZero(t *testing.T) {
	for _, w := range []int{8, 16, 24, 32, 48, 64} {
		l, err := NewLFSR(w, 0) // zero seed must be fixed up
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			l.NextBit()
			if l.State() == 0 {
				t.Fatalf("width-%d LFSR reached the all-zero lockup state", w)
			}
		}
	}
	if _, err := NewLFSR(13, 1); err == nil {
		t.Error("unsupported width accepted")
	}
}

func TestLFSRBalanced(t *testing.T) {
	l, _ := NewLFSR(16, 0xBEEF)
	ones := 0
	const n = 4096
	for i := 0; i < n; i++ {
		if l.NextBit() == logic.One {
			ones++
		}
	}
	if ones < n*45/100 || ones > n*55/100 {
		t.Errorf("LFSR bit balance off: %d/%d ones", ones, n)
	}
}

func TestMISROrderSensitivity(t *testing.T) {
	a, _ := NewMISR(16)
	b, _ := NewMISR(16)
	a.Fold([]logic.V{logic.One, logic.Zero})
	a.Fold([]logic.V{logic.Zero, logic.Zero})
	b.Fold([]logic.V{logic.Zero, logic.Zero})
	b.Fold([]logic.V{logic.One, logic.Zero})
	if a.Signature() == b.Signature() {
		t.Error("MISR insensitive to response order")
	}
	// And sensitive to single-bit flips.
	c1, _ := NewMISR(16)
	c2, _ := NewMISR(16)
	c1.Fold([]logic.V{logic.One, logic.One, logic.Zero})
	c2.Fold([]logic.V{logic.One, logic.Zero, logic.Zero})
	if c1.Signature() == c2.Signature() {
		t.Error("MISR insensitive to a single-bit difference")
	}
}

func TestGoldenSignatureDeterministic(t *testing.T) {
	d := design(t)
	a, err := GoldenSignature(d, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := GoldenSignature(d, Config{})
	if a != b {
		t.Error("golden signature nondeterministic")
	}
	c, _ := GoldenSignature(d, Config{Seed: 0xDEAD})
	if a == c {
		t.Error("different seed produced the same signature (suspicious)")
	}
}

func TestRunDetectsChainFaults(t *testing.T) {
	d := design(t)
	all := fault.Collapsed(d.C)
	var affecting []fault.Fault
	for _, s := range core.Screen(d, all) {
		if s.Cat != core.Cat3 {
			affecting = append(affecting, s.Fault)
		}
	}
	res, err := Run(d, affecting, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("compare=%d signature=%d aliased=%d of %d chain faults",
		res.DetectedByCompare, res.DetectedBySignature, res.Aliased, len(affecting))
	if res.DetectedByCompare == 0 {
		t.Fatal("BIST stimulus detects nothing")
	}
	if res.DetectedBySignature+res.Aliased != res.DetectedByCompare {
		t.Error("signature + aliased != compare-detected")
	}
	// With a 32-bit MISR, aliasing is theoretically ~2^-32; any alias on
	// this small set means something structural is wrong.
	if res.Aliased > 0 {
		t.Errorf("unexpected aliasing: %v", res.AliasedFaults)
	}
	// The LFSR stimulus should match or beat the alternating sequence on
	// chain faults (it exercises the free inputs too).
	alt := d.AlternatingSequence(8)
	altDet := 0
	for i, cyc := range packedCompare(d, alt, affecting) {
		_ = i
		if cyc >= 0 {
			altDet++
		}
	}
	if res.DetectedByCompare < altDet {
		t.Errorf("BIST compare detections %d below alternating %d", res.DetectedByCompare, altDet)
	}
}

func TestNarrowMISRAliases(t *testing.T) {
	// An 8-bit MISR over long response streams should eventually alias
	// somewhere across many faults; we only check the machinery accepts
	// narrow widths and stays consistent.
	d := design(t)
	all := fault.Collapsed(d.C)
	res, err := Run(d, all, Config{MISRWidth: 8, Cycles: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.DetectedBySignature+res.Aliased != res.DetectedByCompare {
		t.Error("accounting broken at width 8")
	}
}

func TestWeightedBitDensity(t *testing.T) {
	cases := []struct {
		w    Weighting
		want float64
	}{{Uniform, 0.5}, {Quarter, 0.25}, {ThreeQuart, 0.75}, {Eighth, 0.125}}
	for _, cs := range cases {
		l, _ := NewLFSR(32, 0xFEED)
		const n = 20000
		ones := 0
		for i := 0; i < n; i++ {
			if l.WeightedBit(cs.w) == logic.One {
				ones++
			}
		}
		got := float64(ones) / n
		if got < cs.want-0.03 || got > cs.want+0.03 {
			t.Errorf("weighting %d: density %.3f, want %.3f", cs.w, got, cs.want)
		}
	}
}

func TestWeightedStimulusChangesSignature(t *testing.T) {
	d := design(t)
	a, err := GoldenSignature(d, Config{Weight: Uniform})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GoldenSignature(d, Config{Weight: Quarter})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("weighting did not change the stimulus")
	}
}
