// Package bist provides built-in self-test infrastructure for
// functional scan designs: an LFSR pseudo-random pattern generator
// driving the scan-in pins and free inputs, and a MISR compacting the
// output responses into a signature. The paper's related work
// (Avra, "Orthogonal built-in self-test", its reference [2]) applies
// functional scan inside BIST; this package lets the chain test itself
// run that way — stimulus from an LFSR, verdict from one signature
// compare — and quantifies the price: aliasing, where a faulty response
// stream compacts to the fault-free signature.
package bist

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/scan"
	"repro/internal/sim"
)

// maximalTapBits holds the tap exponents of maximal-length LFSR
// polynomials (Xilinx XAPP052 table); a Fibonacci left-shift LFSR with
// feedback = XOR of state bits (exponent-1) cycles through all 2^n - 1
// non-zero states.
var maximalTapBits = map[int][]uint{
	8:  {8, 6, 5, 4},
	16: {16, 15, 13, 4},
	24: {24, 23, 22, 17},
	32: {32, 22, 2, 1},
	48: {48, 47, 21, 20},
	64: {64, 63, 61, 60},
}

// LFSR is a Fibonacci (external-XOR) left-shift linear-feedback shift
// register.
type LFSR struct {
	state uint64
	taps  uint64 // bit mask at positions exponent-1
	mask  uint64
	width int
}

// NewLFSR builds an LFSR of the given width (8, 16, 24, 32, 48 or 64)
// seeded with a non-zero state.
func NewLFSR(width int, seed uint64) (*LFSR, error) {
	bits, ok := maximalTapBits[width]
	if !ok {
		return nil, fmt.Errorf("bist: no maximal polynomial for width %d", width)
	}
	var taps uint64
	for _, b := range bits {
		taps |= 1 << (b - 1)
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = uint64(1)<<uint(width) - 1
	}
	seed &= mask
	if seed == 0 {
		seed = 1
	}
	return &LFSR{state: seed, taps: taps, mask: mask, width: width}, nil
}

// NextBit advances the register one step and returns the output bit
// (the bit shifted out of the top).
func (l *LFSR) NextBit() logic.V {
	out := (l.state >> uint(l.width-1)) & 1
	fb := uint64(0)
	if popcountParity(l.state & l.taps) {
		fb = 1
	}
	l.state = ((l.state << 1) | fb) & l.mask
	return logic.V(out)
}

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

func popcountParity(x uint64) bool {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x&1 == 1
}

// Weighting selects the 1-density of generated bits. Weighted random
// patterns (ANDing or ORing LFSR bits) are the classic fix when uniform
// patterns under-exercise deep AND/OR cones.
type Weighting uint8

// Supported 1-densities.
const (
	Uniform    Weighting = iota // p(1) = 1/2
	Quarter                     // p(1) = 1/4 (AND of two bits)
	ThreeQuart                  // p(1) = 3/4 (OR of two bits)
	Eighth                      // p(1) = 1/8 (AND of three bits)
)

// WeightedBit draws one bit with the selected density, consuming one or
// more LFSR steps.
func (l *LFSR) WeightedBit(w Weighting) logic.V {
	switch w {
	case Quarter:
		a, b := l.NextBit(), l.NextBit()
		return a.And(b)
	case ThreeQuart:
		a, b := l.NextBit(), l.NextBit()
		return a.Or(b)
	case Eighth:
		a, b, c := l.NextBit(), l.NextBit(), l.NextBit()
		return a.And(b).And(c)
	default:
		return l.NextBit()
	}
}

// MISR is a multi-input signature register: every cycle it folds one
// response bit per output into its state through the same feedback
// polynomial as the LFSR of equal width.
type MISR struct {
	state uint64
	taps  uint64
	width int
}

// NewMISR builds a MISR of the given width.
func NewMISR(width int) (*MISR, error) {
	bits, ok := maximalTapBits[width]
	if !ok {
		return nil, fmt.Errorf("bist: no maximal polynomial for width %d", width)
	}
	var taps uint64
	for _, b := range bits {
		taps |= 1 << (b - 1)
	}
	return &MISR{taps: taps, width: width}, nil
}

// Fold compacts one cycle of output values. X responses inject a fixed
// non-zero code so that an unknown never silently equals the fault-free
// stream (BIST practice is to keep X out of compacted outputs; the
// deterministic code at least makes X-polluted signatures distinct from
// clean ones in this model).
func (m *MISR) Fold(po []logic.V) {
	for i, v := range po {
		bit := uint64(0)
		switch v {
		case logic.One:
			bit = 1
		case logic.X:
			bit = uint64(i&1) ^ 1
		}
		fb := popcountParity(m.state&m.taps) != (bit == 1)
		m.state >>= 1
		if fb {
			m.state |= 1 << uint(m.width-1)
		}
	}
}

// Signature returns the compacted state.
func (m *MISR) Signature() uint64 { return m.state }

// Config describes one chain self-test session.
type Config struct {
	Cycles    int       // stimulus length (default 4*maxchain+64)
	LFSRWidth int       // default 32
	MISRWidth int       // default 32
	Seed      uint64    // LFSR seed (default 0xACE1)
	Weight    Weighting // 1-density of the stimulus (default Uniform)
}

func (cfg Config) withDefaults(d *scan.Design) Config {
	if cfg.Cycles == 0 {
		cfg.Cycles = 4*d.MaxChainLen() + 64
	}
	if cfg.LFSRWidth == 0 {
		cfg.LFSRWidth = 32
	}
	if cfg.MISRWidth == 0 {
		cfg.MISRWidth = 32
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xACE1
	}
	return cfg
}

// Stimulus generates the BIST input sequence for a design: scan mode
// asserted, pinned inputs at their TPI constants, every other input
// (scan-ins included) driven from the LFSR.
func Stimulus(d *scan.Design, cfg Config) ([][]logic.V, error) {
	cfg = cfg.withDefaults(d)
	l, err := NewLFSR(cfg.LFSRWidth, cfg.Seed)
	if err != nil {
		return nil, err
	}
	seq := make([][]logic.V, cfg.Cycles)
	for t := range seq {
		pi := d.BaselinePI()
		for i, in := range d.C.Inputs {
			if _, pinned := d.Assignments[in]; !pinned {
				pi[i] = l.WeightedBit(cfg.Weight)
			}
		}
		seq[t] = pi
	}
	return seq, nil
}

// GoldenSignature simulates the fault-free design under the BIST
// stimulus and returns the reference signature.
func GoldenSignature(d *scan.Design, cfg Config) (uint64, error) {
	cfg = cfg.withDefaults(d)
	seq, err := Stimulus(d, cfg)
	if err != nil {
		return 0, err
	}
	return signatureOf(d, seq, nil, cfg)
}

func signatureOf(d *scan.Design, seq [][]logic.V, inj *sim.Inject, cfg Config) (uint64, error) {
	m, err := NewMISR(cfg.MISRWidth)
	if err != nil {
		return 0, err
	}
	s := sim.NewSeq(d.C)
	var po []logic.V
	for _, pi := range seq {
		po = s.Cycle(pi, inj, po)
		m.Fold(po)
	}
	return m.Signature(), nil
}

// Result of a BIST session over a fault list.
type Result struct {
	Golden uint64
	// DetectedBySignature: faults whose signature differs from golden.
	DetectedBySignature int
	// DetectedByCompare: faults a per-cycle compare would catch (the
	// upper bound a compactor can reach).
	DetectedByCompare int
	// Aliased: caught by per-cycle compare but compacting to the golden
	// signature — the MISR's escape count.
	Aliased int
	// AliasedFaults lists them for inspection.
	AliasedFaults []fault.Fault
}

// Run executes the self-test against every fault: one fault-free pass
// for the golden signature, then one faulty pass per fault (signatures
// must be computed serially — each faulty machine owns a MISR).
func Run(d *scan.Design, faults []fault.Fault, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults(d)
	seq, err := Stimulus(d, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	res.Golden, err = signatureOf(d, seq, nil, cfg)
	if err != nil {
		return nil, err
	}
	// Per-cycle compare ground truth via the packed simulator.
	psRes := packedCompare(d, seq, faults)

	for i, f := range faults {
		if psRes[i] < 0 {
			continue // not even a compare catches it: irrelevant for aliasing
		}
		res.DetectedByCompare++
		inj := f.Inject()
		sig, err := signatureOf(d, seq, &inj, cfg)
		if err != nil {
			return nil, err
		}
		if sig != res.Golden {
			res.DetectedBySignature++
		} else {
			res.Aliased++
			res.AliasedFaults = append(res.AliasedFaults, f)
		}
	}
	return res, nil
}

// packedCompare returns the first definite-mismatch cycle per fault
// (-1 when none), using 63 machines per pass.
func packedCompare(d *scan.Design, seq [][]logic.V, faults []fault.Fault) []int {
	out := make([]int, len(faults))
	for i := range out {
		out[i] = -1
	}
	ps := sim.NewCompiledSeq(d.C)
	piW := make([]logic.Word, len(d.C.Inputs))
	var poW []logic.Word
	for base := 0; base < len(faults); base += 63 {
		n := len(faults) - base
		if n > 63 {
			n = 63
		}
		injs := make([]sim.LaneInject, 0, n)
		for k := 0; k < n; k++ {
			injs = append(injs, sim.LaneInject{Inject: faults[base+k].Inject(), Lane: uint(k + 1)})
		}
		ps.SetInjections(injs)
		ps.ResetX()
		laneMask := (uint64(1)<<uint(n+1) - 1) &^ 1
		found := uint64(0)
		for cyc, pi := range seq {
			for i, v := range pi {
				piW[i] = logic.WordAll(v)
			}
			poW = ps.Cycle(piW, poW)
			for _, w := range poW {
				var det uint64
				switch w.Get(0) {
				case logic.One:
					det = w.Zeros & laneMask &^ found
				case logic.Zero:
					det = w.Ones & laneMask &^ found
				}
				if det != 0 {
					for k := 0; k < n; k++ {
						if det&(uint64(1)<<uint(k+1)) != 0 {
							out[base+k] = cyc
						}
					}
					found |= det
				}
			}
			if found == laneMask {
				break
			}
		}
	}
	return out
}
