package task

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/par"
)

// BatchWidth is the packed-simulation fault-batch width every evaluator
// in this repository shards by (63 faulty machines + the fault-free
// lane). Plan aligns unit boundaries to it so a unit sees exactly the
// batch geometry a single-node run would; internal/telemetry uses it to
// turn observed pool-batch completions into a live faults-done estimate.
const BatchWidth = 63

// Unit is one shard work-unit: a spec plus the contiguous slice
// [Lo, Hi) of its fault axis that this unit owns. Units marshal to
// JSON, so a coordinator can ship them to worker processes; Execute
// runs one and returns the mergeable Partial.
type Unit struct {
	// Spec is the job description the unit belongs to. Every unit of a
	// plan carries the same normalized spec.
	Spec Spec `json:"spec"`
	// Index and Count identify the unit within its plan (Index in
	// [0, Count)).
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo and Hi bound the unit's fault-axis slice. Hi = -1 denotes the
	// whole axis (the planner's single-unit fast path, which avoids
	// materializing the circuit twice).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// slice resolves the unit's range against the actual axis length.
func (u Unit) slice(n int) (lo, hi int, err error) {
	lo, hi = u.Lo, u.Hi
	if hi < 0 {
		hi = n
	}
	if lo < 0 || lo > hi || hi > n {
		return 0, 0, fmt.Errorf("task: unit range [%d,%d) outside fault axis [0,%d)", u.Lo, u.Hi, n)
	}
	return lo, hi, nil
}

// Plan splits a spec into at most shards deterministic work-units.
// Unit boundaries are aligned to the 63-fault batch width, so merging
// the units' Partials reassembles byte-identical to a single-unit run.
//
// Kind flow always plans as one unit: step 2 of the paper's flow
// compacts vectors by dropping detected faults across the whole hard
// list, coupling the fault axis — splitting it would change which
// vectors survive. The other four kinds (screen, atpg, faultsim,
// diagnose) decide every fault independently and shard freely.
//
// A nil cache selects the process-wide engine.Default().
func Plan(sp Spec, shards int, cache *engine.Cache) ([]Unit, error) {
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = 1
	}
	if shards == 1 || sp.Kind == KindFlow {
		return []Unit{{Spec: sp, Index: 0, Count: 1, Lo: 0, Hi: -1}}, nil
	}
	n, err := AxisLen(sp, cache)
	if err != nil {
		return nil, err
	}
	rs := par.Shards(n, BatchWidth, shards)
	if len(rs) == 0 { // empty axis: one empty unit keeps Merge uniform
		rs = []par.Range{{Lo: 0, Hi: 0}}
	}
	units := make([]Unit, len(rs))
	for i, r := range rs {
		units[i] = Unit{Spec: sp, Index: i, Count: len(rs), Lo: r.Lo, Hi: r.Hi}
	}
	return units, nil
}

// AxisLen returns the length of the spec's fault axis — the dimension
// Plan shards and Partial ranges index into. Derived structures
// (collapsed fault lists, the combinational ATPG model) come from the
// artifact cache, so planning a spec warms the same cache Execute uses.
func AxisLen(sp Spec, cache *engine.Cache) (int, error) {
	if err := sp.Normalize(); err != nil {
		return 0, err
	}
	switch sp.Kind {
	case KindFaultSim:
		c, err := sp.BuildCircuit()
		if err != nil {
			return 0, err
		}
		if sp.Uncollapsed {
			return len(fault.All(c)), nil
		}
		return len(engine.Resolve(cache).For(c).CollapsedFaults()), nil
	case KindATPG:
		d, err := sp.BuildDesign()
		if err != nil {
			return 0, err
		}
		cm, err := engine.Resolve(cache).For(d.C).CombModel()
		if err != nil {
			return 0, err
		}
		return len(engine.Resolve(cache).For(cm.C).CollapsedFaults()), nil
	default: // flow, screen, diagnose: the scan-mode collapsed fault list
		d, err := sp.BuildDesign()
		if err != nil {
			return 0, err
		}
		return len(engine.Resolve(cache).For(d.C).CollapsedFaults()), nil
	}
}
