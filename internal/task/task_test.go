package task

import (
	"context"
	"encoding/json"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/obs"
)

// scrubDurations blanks the wall-time brackets in flow reports, the
// only non-deterministic bytes any kind's output contains.
var scrubDurations = regexp.MustCompile(`\[[^\[\]]*\]`)

func scrub(s string) string { return scrubDurations.ReplaceAllString(s, "[x]") }

// TestRandomSequenceGolden pins the shared stimulus generator: the
// faultsim CLI's -random, daemon faultsim jobs and every spec's
// Stimulus must keep producing exactly this sequence or ledgered
// coverage numbers silently shift.
func TestRandomSequenceGolden(t *testing.T) {
	c := bench.MustS27()
	seq := RandomSequence(c, 1, 4)
	want := [][]int{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{0, 1, 1, 0},
		{0, 0, 0, 0},
	}
	if len(seq) != len(want) {
		t.Fatalf("len = %d, want %d", len(seq), len(want))
	}
	for tt, pi := range seq {
		if len(pi) != len(want[tt]) {
			t.Fatalf("cycle %d: %d inputs, want %d", tt, len(pi), len(want[tt]))
		}
		for i, v := range pi {
			if int(v) != want[tt][i] {
				t.Errorf("cycle %d input %d = %d, want %d", tt, i, v, want[tt][i])
			}
		}
	}
}

// TestRunGoldens pins every kind's full report for the embedded s27
// benchmark. These are the bytes the CLIs print and the daemon stores;
// a diff here is a user-visible output change.
func TestRunGoldens(t *testing.T) {
	want := map[string]string{
		KindFlow: "circuit s27: 18 gates, 3 FFs, 1 chains, 52 faults\n" +
			"  screening: easy=16 (30.8%)  hard=5 (9.6%)  affecting=21 (40.4%)  [x]\n" +
			"  step 1: alternating sequence confirmed 16/16 easy faults (0 escapes)\n" +
			"  step 2: 2 vectors; det=5 undetectable=0 undetected=0  [x]\n" +
			"  step 3: 0+0 C/O circuits; det=0 undetectable=0 undetected=0  [x]\n" +
			"  undetected: 0 = 0.0000% of faults = 0.0000% of affecting\n",
		KindScreen: "circuit s27: 52 faults screened\n" +
			"category 1 (easy): 16\ncategory 2 (hard): 5\nunaffecting: 31\n",
		KindATPG: "circuit s27: comb ATPG over 52 faults\n" +
			"found 23  redundant 29  aborted 0\n",
		KindFaultSim: "circuit s27: 10 gates, 3 FFs; 32 faults; 100 cycles\n" +
			"detected 31 / 32 faults (96.88% coverage)\n",
		KindDiagnose: "circuit s27: dictionary over 21 chain-affecting faults\n" +
			"diagnosable: 21 (100.0%)  exact: 9  ambiguous: 12  silent: 0\n" +
			"mean candidates per diagnosis: 1.86\n",
	}
	wantExtras := map[string]map[string]float64{
		KindFlow:     {"faults": 52, "undetected": 0, "coverage": 100},
		KindScreen:   {"faults": 52, "easy": 16, "hard": 5},
		KindATPG:     {"faults": 52, "found": 23, "redundant": 29, "aborted": 0},
		KindFaultSim: {"faults": 32, "detected": 31, "coverage": 96.875},
		KindDiagnose: {"candidates": 21, "diagnosable": 21, "exact": 9, "silent": 0},
	}
	for _, kind := range Kinds() {
		sp := Spec{Kind: kind, Circuit: "s27", Cycles: 100}
		res, err := Run(context.Background(), sp, nil, nil)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := scrub(res.Output); got != want[kind] {
			t.Errorf("%s output:\n%s\nwant:\n%s", kind, got, want[kind])
		}
		if !reflect.DeepEqual(res.Extras, wantExtras[kind]) {
			t.Errorf("%s extras = %v, want %v", kind, res.Extras, wantExtras[kind])
		}
	}
}

// TestScreenMatchesDirectCalls anchors the pipeline to the internals it
// wraps: a screen-kind Run must reproduce exactly what direct
// screening plus FormatScreen produce.
func TestScreenMatchesDirectCalls(t *testing.T) {
	sp := Spec{Kind: KindScreen, Circuit: "s27"}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), sp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sp.BuildDesign()
	if err != nil {
		t.Fatal(err)
	}
	faults := engine.Resolve(nil).For(d.C).CollapsedFaults()
	screened, err := core.ScreenOptCtx(context.Background(), d, faults, core.ScreenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if want := FormatScreen(d.C.Name, screened); res.Output != want {
		t.Errorf("task output:\n%s\ndirect calls:\n%s", res.Output, want)
	}
}

// TestSpecJSONRoundTrip sends every kind's spec through its wire form
// and requires the byte-identical result: a daemon or coordinator that
// received the JSON must run exactly what the CLI ran.
func TestSpecJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := []Spec{
		{Kind: KindFlow, Circuit: "s27"},
		{Kind: KindScreen, Circuit: "s27"},
		{Kind: KindATPG, Circuit: "s27"},
		{Kind: KindFaultSim, Circuit: "s27", Cycles: 100, Uncollapsed: true},
		{Kind: KindDiagnose, Circuit: "s27"},
		{Kind: KindFlow, Circuit: "s3384", Scale: 0.05},
		{Kind: KindScreen, Circuit: "s3384", Scale: 0.05},
		{Kind: KindATPG, Circuit: "s3384", Scale: 0.05},
		{Kind: KindFaultSim, Circuit: "s3384", Scale: 0.05, Cycles: 100},
		{Kind: KindDiagnose, Circuit: "s1423", Scale: 0.05},
	}
	cache := engine.New()
	for _, sp := range specs {
		direct, err := Run(context.Background(), sp, cache, nil)
		if err != nil {
			t.Fatalf("%s/%s: direct: %v", sp.Kind, sp.Circuit, err)
		}
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("%s/%s: marshal: %v", sp.Kind, sp.Circuit, err)
		}
		var wire Spec
		if err := json.Unmarshal(data, &wire); err != nil {
			t.Fatalf("%s/%s: unmarshal: %v", sp.Kind, sp.Circuit, err)
		}
		res, err := Run(context.Background(), wire, cache, nil)
		if err != nil {
			t.Fatalf("%s/%s: wire: %v", sp.Kind, sp.Circuit, err)
		}
		if scrub(res.Output) != scrub(direct.Output) {
			t.Errorf("%s/%s: wire output:\n%s\ndirect output:\n%s",
				sp.Kind, sp.Circuit, scrub(res.Output), scrub(direct.Output))
		}
		if !reflect.DeepEqual(res.Extras, direct.Extras) {
			t.Errorf("%s/%s: wire extras %v != direct %v", sp.Kind, sp.Circuit, res.Extras, direct.Extras)
		}
		if res.Hash != direct.Hash || res.Circuit != direct.Circuit {
			t.Errorf("%s/%s: wire identity %s/%d != direct %s/%d",
				sp.Kind, sp.Circuit, res.Circuit, res.Hash, direct.Circuit, direct.Hash)
		}
	}
}

// TestShardInvariance is the tentpole contract: splitting the fault
// axis into any number of batch-aligned units and merging the partials
// must reassemble the byte-identical single-unit result. Units also
// survive their own JSON wire trip.
func TestShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	specs := []Spec{
		{Kind: KindScreen, Circuit: "s3384", Scale: 0.05},
		{Kind: KindATPG, Circuit: "s1423", Scale: 0.05},
		{Kind: KindFaultSim, Circuit: "s3384", Scale: 0.05, Cycles: 100},
		{Kind: KindDiagnose, Circuit: "s1423", Scale: 0.05},
	}
	cache := engine.New()
	for _, sp := range specs {
		var base *Result
		for _, shards := range []int{1, 3, 7} {
			units, err := Plan(sp, shards, cache)
			if err != nil {
				t.Fatalf("%s: plan(%d): %v", sp.Kind, shards, err)
			}
			if shards > 1 && len(units) < 2 {
				t.Fatalf("%s: plan(%d) produced %d units; circuit too small to exercise sharding", sp.Kind, shards, len(units))
			}
			// Ship every unit through its wire form first.
			for i := range units {
				data, err := json.Marshal(units[i])
				if err != nil {
					t.Fatalf("%s: marshal unit: %v", sp.Kind, err)
				}
				units[i] = Unit{}
				if err := json.Unmarshal(data, &units[i]); err != nil {
					t.Fatalf("%s: unmarshal unit: %v", sp.Kind, err)
				}
			}
			res, err := RunUnits(context.Background(), units, cache, nil)
			if err != nil {
				t.Fatalf("%s: run %d units: %v", sp.Kind, len(units), err)
			}
			if base == nil {
				base = res
				continue
			}
			if res.Output != base.Output {
				t.Errorf("%s: %d-unit output:\n%s\n1-unit output:\n%s", sp.Kind, len(units), res.Output, base.Output)
			}
			if !reflect.DeepEqual(res.Extras, base.Extras) {
				t.Errorf("%s: %d-unit extras %v != %v", sp.Kind, len(units), res.Extras, base.Extras)
			}
			if !reflect.DeepEqual(res.DetectedAt, base.DetectedAt) {
				t.Errorf("%s: %d-unit detection vector diverges", sp.Kind, len(units))
			}
		}
	}
}

// TestFlowPlansOneUnit: flow couples the fault axis through step-2
// vector compaction, so the planner must refuse to shard it.
func TestFlowPlansOneUnit(t *testing.T) {
	units, err := Plan(Spec{Kind: KindFlow, Circuit: "s27"}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 || units[0].Hi != -1 {
		t.Fatalf("flow plan = %+v, want one whole-axis unit", units)
	}
}

// TestMergeRejectsGaps: an uninterrupted merge must refuse unit sets
// that do not cover the axis contiguously.
func TestMergeRejectsGaps(t *testing.T) {
	sp := Spec{Kind: KindScreen, Circuit: "s27"}
	parts := []*Partial{
		{Kind: KindScreen, Lo: 0, Hi: 20, Faults: 52, Circuit: "s27"},
		{Kind: KindScreen, Lo: 30, Hi: 52, Faults: 52, Circuit: "s27"},
	}
	if _, err := Merge(sp, parts, false); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap merge err = %v, want coverage gap", err)
	}
	if _, err := Merge(sp, parts, true); err != nil {
		t.Errorf("interrupted merge err = %v, want nil", err)
	}
}

// TestNormalizeErrors spot-checks spec validation.
func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		sp   Spec
		frag string
	}{
		{Spec{}, "missing kind"},
		{Spec{Kind: "bogus", Circuit: "s27"}, "unknown kind"},
		{Spec{Kind: KindFlow}, "missing circuit"},
		{Spec{Kind: KindFlow, Circuit: "no-such-profile"}, "no-such-profile"},
		{Spec{Kind: KindFlow, Circuit: "s27", Scale: 1.5}, "out of range"},
		{Spec{Kind: KindFlow, Circuit: "s27", Eval: "bogus"}, "bogus"},
		{Spec{Kind: KindFlow, Circuit: "s27", Version: 99}, "version"},
	}
	for _, c := range cases {
		sp := c.sp
		if err := sp.Normalize(); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Normalize(%+v) = %v, want %q", c.sp, err, c.frag)
		}
	}
}

// TestTraceParentNormalize: a spec's traceparent is validated and
// canonicalized (lowercase hex, version 00) by Normalize, parsed back
// by TraceContext, and rejected when malformed.
func TestTraceParentNormalize(t *testing.T) {
	sp := Spec{Kind: KindScreen, Circuit: "s27",
		TraceParent: "00-4BF92F3577B34DA6A3CE929D0E0E4736-00F067AA0BA902B7-01"}
	if err := sp.Normalize(); err != nil {
		t.Fatal(err)
	}
	want := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if sp.TraceParent != want {
		t.Errorf("canonicalized traceparent = %q, want %q", sp.TraceParent, want)
	}
	tc, ok := sp.TraceContext()
	if !ok || tc.Traceparent() != want {
		t.Errorf("TraceContext = %+v, %v", tc, ok)
	}
	bad := Spec{Kind: KindScreen, Circuit: "s27", TraceParent: "not-a-traceparent"}
	if err := bad.Normalize(); err == nil || !strings.Contains(err.Error(), "traceparent") {
		t.Errorf("bad traceparent Normalize = %v, want traceparent error", err)
	}
	if _, ok := (Spec{}).TraceContext(); ok {
		t.Error("empty spec reports a trace context")
	}
}

// TestExecuteEmitsUnitEvents: with a journal-recording collector, each
// executed unit is bracketed by unit_begin/unit_end events carrying
// the unit's identity and resolved fault-axis slice — the boundaries
// the tracing layer assembles into unit spans.
func TestExecuteEmitsUnitEvents(t *testing.T) {
	sp := Spec{Kind: KindScreen, Circuit: "s27", Units: 2}
	units, err := Plan(sp, sp.Units, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.New()
	rec := journal.New(1024)
	col.SetJournal(rec)
	if _, err := RunUnits(context.Background(), units, nil, col); err != nil {
		t.Fatal(err)
	}
	var begins, ends []journal.Event
	for _, e := range rec.Snapshot() {
		switch e.Kind {
		case journal.KindUnitBegin:
			begins = append(begins, e)
		case journal.KindUnitEnd:
			ends = append(ends, e)
		}
	}
	if len(begins) != len(units) || len(ends) != len(units) {
		t.Fatalf("unit events = %d begins / %d ends, want %d each",
			len(begins), len(ends), len(units))
	}
	for i, e := range ends {
		if int(e.A) != units[i].Index || int(e.B) != units[i].Count {
			t.Errorf("unit end %d identity = (%d,%d), want (%d,%d)",
				i, e.A, e.B, units[i].Index, units[i].Count)
		}
		if e.D < 0 {
			t.Errorf("unit end %d: axis hi unresolved (%d)", i, e.D)
		}
		if e.TNS < begins[i].TNS {
			t.Errorf("unit end %d starts at %d, before its begin %d", i, e.TNS, begins[i].TNS)
		}
	}
}

// FuzzSpecRoundTrip checks, for arbitrary field values, that Normalize
// is idempotent, that the JSON wire trip preserves the normalized spec
// exactly, and that plans partition the fault axis contiguously with
// batch-aligned interior boundaries.
func FuzzSpecRoundTrip(f *testing.F) {
	f.Add("screen", 0.5, int64(7), 2, 3, "packed", 100, false, 4)
	f.Add("faultsim", 0.0, int64(0), 0, 0, "", 0, true, 0)
	f.Add("atpg", 1.0, int64(-3), 1, -2, "hybrid", -5, false, -1)
	f.Add("diagnose", 0.25, int64(42), 9, 1, "auto", 17, false, 2)
	f.Add("flow", 0.1, int64(1), 1, 1, "compiled", 500, false, 1)
	f.Fuzz(func(t *testing.T, kind string, scale float64, seed int64,
		chains, workers int, eval string, cycles int, uncollapsed bool, shards int) {
		sp := Spec{
			Kind: kind, Circuit: "s27", Scale: scale, Seed: seed,
			Chains: chains, Workers: workers, Eval: eval, Cycles: cycles,
			Uncollapsed: uncollapsed,
		}
		if err := sp.Normalize(); err != nil {
			t.Skip()
		}
		again := sp
		if err := again.Normalize(); err != nil {
			t.Fatalf("re-normalize: %v", err)
		}
		if !reflect.DeepEqual(sp, again) {
			t.Fatalf("Normalize not idempotent: %+v != %+v", sp, again)
		}
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var wire Spec
		if err := json.Unmarshal(data, &wire); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if err := wire.Normalize(); err != nil {
			t.Fatalf("normalize wire: %v", err)
		}
		if !reflect.DeepEqual(sp, wire) {
			t.Fatalf("wire trip changed spec: %+v != %+v", sp, wire)
		}
		units, err := Plan(sp, shards, nil)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		if len(units) == 1 && units[0].Hi == -1 {
			return // whole-axis fast path
		}
		expect := 0
		for i, u := range units {
			if u.Lo != expect {
				t.Fatalf("unit %d starts at %d, want %d", i, u.Lo, expect)
			}
			if i < len(units)-1 && u.Hi%63 != 0 {
				t.Fatalf("unit %d ends at %d, not batch-aligned", i, u.Hi)
			}
			expect = u.Hi
		}
	})
}
