// Package task is the canonical run layer shared by the batch CLIs and
// the fsctd daemon: one versioned, JSON-serializable job description
// (Spec), a deterministic shard planner (Plan -> []Unit), a unit runner
// (Execute -> *Partial) and a merge step (Merge -> *Result) whose
// output is byte-identical to a single-node run at any unit count.
//
// The pipeline is
//
//	Spec --Plan--> []Unit --Execute--> []*Partial --Merge--> *Result
//
// and Run composes the four for the common single-process case. Specs
// and Units marshal to JSON, so a future coordinator can ship Units to
// worker processes and reassemble their Partials: every Unit owns a
// contiguous, 63-fault-batch-aligned slice of the fault axis (the same
// batch geometry internal/par shards within a process), and each
// per-fault outcome is written only into the slot its index owns, so
// the merged report does not depend on how the axis was partitioned.
//
// The batch CLIs build a Spec from flags (cmd/internal/specflags) and
// call Run; internal/serve validates a submitted Spec and calls Run
// under its queue. Both therefore share one orchestration path, which
// is what keeps daemon reports byte-identical to CLI reports.
package task

import (
	"fmt"
	"strings"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/tpi"
	"repro/internal/trace"
)

// SpecVersion is the schema version this build writes and accepts.
// Normalize stamps it into specs that omit it.
const SpecVersion = 1

// Job kinds. Each maps onto the run path the matching batch CLI uses,
// so a job's text report is byte-identical to the CLI's output for the
// same spec.
const (
	// KindFlow runs the paper's three-step flow (cmd/fsctest).
	KindFlow = "flow"
	// KindScreen runs scan-chain fault screening alone.
	KindScreen = "screen"
	// KindATPG runs combinational PODEM over the scan-mode model.
	KindATPG = "atpg"
	// KindFaultSim fault-simulates a stimulus sequence (cmd/faultsim).
	KindFaultSim = "faultsim"
	// KindDiagnose builds the fault dictionary and reports resolution
	// statistics (cmd/diagnose -stats).
	KindDiagnose = "diagnose"
)

// Kinds returns every job kind in canonical order.
func Kinds() []string {
	return []string{KindFlow, KindScreen, KindATPG, KindFaultSim, KindDiagnose}
}

// Spec is one job description: what to run and on which circuit. Zero
// optional fields select the defaults in DefaultsFor, so the same JSON
// object means the same run to every consumer (CLI, daemon, future
// coordinator workers).
type Spec struct {
	// Version is the spec schema version (0 = current, stamped by
	// Normalize).
	Version int `json:"v,omitempty"`
	// Kind selects the job kind (flow, screen, atpg, faultsim,
	// diagnose).
	Kind string `json:"kind"`
	// Circuit names the suite profile to generate ("s9234", ...) or
	// "s27" for the embedded real benchmark. With Bench set it is only
	// the display name.
	Circuit string `json:"circuit"`
	// Bench, when non-empty, is an inline ISCAS'89 .bench netlist that
	// replaces profile generation (the CLIs' -in flag, made portable:
	// the spec stays self-contained on the wire).
	Bench string `json:"bench,omitempty"`
	// Scale shrinks the profile (0 or 1 = full size).
	Scale float64 `json:"scale,omitempty"`
	// Seed drives generation, scan insertion and stimulus (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Chains is the scan-chain count (0 = DefaultChains).
	Chains int `json:"chains,omitempty"`
	// Workers shards each phase's fault axis within the process
	// (0 = GOMAXPROCS). Results are identical at any width.
	Workers int `json:"workers,omitempty"`
	// Eval selects the simulation backend (default "auto").
	Eval string `json:"eval,omitempty"`
	// Cycles is the random-sequence length for faultsim jobs
	// (default 500). Ignored when Sequence is set.
	Cycles int `json:"cycles,omitempty"`
	// Sequence, when non-empty, is an inline stimulus in the
	// internal/faultsim text format, replacing the generated random
	// sequence (the faultsim CLI's -seq flag).
	Sequence string `json:"sequence,omitempty"`
	// Uncollapsed selects the full fault list instead of the
	// equivalence-collapsed one (faultsim only).
	Uncollapsed bool `json:"uncollapsed,omitempty"`
	// ConeThreshold overrides the hybrid evaluator's per-cycle event
	// budget (0 = circuit-scaled default). Demotion depends only on the
	// fault, sequence and initial state, so it is shard-invariant.
	ConeThreshold int `json:"cone_threshold,omitempty"`
	// Priority orders the daemon queue: higher pops first (default 0;
	// FIFO within a priority). It does not affect the run itself.
	Priority int `json:"priority,omitempty"`
	// Units asks Plan to shard the job into at most this many
	// work-units (0 or 1 = one unit; flow always plans one). The merged
	// result is byte-identical at any unit count — extra units buy
	// per-unit telemetry granularity (progress, heartbeats, stall
	// flags) and the re-dispatch grain a coordinator shards by, not a
	// different answer.
	Units int `json:"units,omitempty"`
	// TraceParent, when non-empty, is the W3C traceparent of the span
	// that owns this job — the submitting client's span, or the daemon
	// job span once fsctd re-stamps an accepted spec. The executor's
	// unit spans parent to it, so a trace assembled anywhere (CLI
	// export, daemon endpoint, future coordinator workers) joins into
	// one tree. Normalize validates and canonicalizes it; it does not
	// affect the run's result.
	TraceParent string `json:"traceparent,omitempty"`
}

// TraceContext returns the spec's parsed trace context and whether
// one is set. A spec that never passed Normalize may return false for
// a malformed header; normalized specs parse cleanly.
func (sp Spec) TraceContext() (trace.Context, bool) {
	if sp.TraceParent == "" {
		return trace.Context{}, false
	}
	tc, err := trace.Parse(sp.TraceParent)
	if err != nil {
		return trace.Context{}, false
	}
	return tc, true
}

// Defaults is the single source of truth for per-kind option defaults:
// the daemon's Normalize fills missing Spec fields from it and the
// CLIs register their flag defaults from it, so the two surfaces
// cannot drift (cmd/internal/specflags pins that with a test).
type Defaults struct {
	// Scale is the CLI flag default only: an omitted daemon Spec.Scale
	// means full size, while the analysis CLIs (faultsim, diagnose)
	// default their -scale flag to a fraction for interactive latency.
	// Normalize never fills Scale.
	Scale float64
	// Seed is the generation/insertion/stimulus seed default.
	Seed int64
	// Chains is the scan-chain count default (0 = DefaultChains at
	// insertion time).
	Chains int
	// Workers is the in-process fault-axis worker default
	// (0 = GOMAXPROCS).
	Workers int
	// Eval is the evaluator backend default.
	Eval string
	// Cycles is the random-stimulus length default.
	Cycles int
	// ConeThreshold is the hybrid event-budget default (0 =
	// circuit-scaled).
	ConeThreshold int
}

// DefaultsFor returns the option defaults for a job kind.
func DefaultsFor(kind string) Defaults {
	d := Defaults{Scale: 1, Seed: 1, Eval: "auto", Cycles: 500}
	switch kind {
	case KindFaultSim, KindDiagnose:
		d.Scale = 0.1
	}
	return d
}

// Normalize validates the spec and fills defaults from DefaultsFor, so
// that two specs that normalize equal describe the same run. It is
// idempotent; every pipeline entry point calls it.
func (sp *Spec) Normalize() error {
	switch sp.Version {
	case 0:
		sp.Version = SpecVersion
	case SpecVersion:
	default:
		return fmt.Errorf("task: unsupported spec version %d (this build speaks %d)", sp.Version, SpecVersion)
	}
	switch sp.Kind {
	case KindFlow, KindScreen, KindATPG, KindFaultSim, KindDiagnose:
	case "":
		return fmt.Errorf("task: spec missing kind")
	default:
		return fmt.Errorf("task: unknown kind %q (want flow, screen, atpg, faultsim or diagnose)", sp.Kind)
	}
	if sp.Bench == "" {
		if sp.Circuit == "" {
			return fmt.Errorf("task: spec missing circuit")
		}
		if sp.Circuit != "s27" {
			if _, err := gen.ProfileByName(sp.Circuit); err != nil {
				return fmt.Errorf("task: %w", err)
			}
		}
	}
	if sp.Scale < 0 || sp.Scale > 1 {
		return fmt.Errorf("task: scale %v out of range (0,1]", sp.Scale)
	}
	d := DefaultsFor(sp.Kind)
	if sp.Eval == "" {
		sp.Eval = d.Eval
	}
	if _, err := engine.ParseBackend(sp.Eval); err != nil {
		return fmt.Errorf("task: %w", err)
	}
	if sp.Seed == 0 {
		sp.Seed = d.Seed
	}
	if sp.Cycles <= 0 {
		sp.Cycles = d.Cycles
	}
	if sp.Workers < 0 {
		sp.Workers = d.Workers
	}
	if sp.ConeThreshold < 0 {
		sp.ConeThreshold = d.ConeThreshold
	}
	if sp.Units < 0 {
		sp.Units = 0
	}
	if sp.TraceParent != "" {
		tc, err := trace.Parse(sp.TraceParent)
		if err != nil {
			return fmt.Errorf("task: %w", err)
		}
		sp.TraceParent = tc.Traceparent()
	}
	return nil
}

// backend resolves the spec's evaluator backend; Normalize has already
// validated the name.
func (sp *Spec) backend() engine.Backend {
	name := sp.Eval
	if name == "" {
		name = "auto"
	}
	b, _ := engine.ParseBackend(name)
	return b
}

// BuildCircuit materializes the spec's circuit: the inline .bench
// netlist, the embedded s27, or a deterministic generated profile. It
// does not require a normalized spec (only the source fields are
// consulted), so analysis tools without a job kind can reuse it.
func (sp Spec) BuildCircuit() (*netlist.Circuit, error) {
	if sp.Bench != "" {
		name := sp.Circuit
		if name == "" {
			name = "bench"
		}
		return bench.Parse(strings.NewReader(sp.Bench), name)
	}
	if sp.Circuit == "" {
		return nil, fmt.Errorf("task: spec missing circuit")
	}
	if sp.Circuit == "s27" {
		return bench.MustS27(), nil
	}
	p, err := gen.ProfileByName(sp.Circuit)
	if err != nil {
		return nil, fmt.Errorf("task: %w", err)
	}
	if sp.Scale > 0 && sp.Scale < 1 {
		p = p.Scale(sp.Scale)
	}
	return gen.Generate(p, sp.Seed), nil
}

// InsertScan runs the spec's scan insertion on a circuit (chain count
// defaulted from the flip-flop count, exactly as the CLIs do).
func (sp Spec) InsertScan(c *netlist.Circuit) (*scan.Design, error) {
	n := sp.Chains
	if n == 0 {
		n = DefaultChains(len(c.FFs))
	}
	return tpi.Insert(c, tpi.Options{NumChains: n, Seed: sp.Seed})
}

// BuildDesign materializes the spec's circuit and inserts scan.
func (sp Spec) BuildDesign() (*scan.Design, error) {
	c, err := sp.BuildCircuit()
	if err != nil {
		return nil, err
	}
	return sp.InsertScan(c)
}

// Stimulus returns the fault-simulation input sequence for c: the
// inline Sequence text when set, otherwise the seeded random sequence
// of Cycles cycles.
func (sp Spec) Stimulus(c *netlist.Circuit) (faultsim.Sequence, error) {
	if sp.Sequence != "" {
		return faultsim.ReadSequence(strings.NewReader(sp.Sequence), c)
	}
	return RandomSequence(c, sp.Seed, sp.Cycles), nil
}

// DefaultChains picks the chain count the experiments use: enough
// chains to keep the longest chain near 350 flip-flops, as the paper
// keeps chain length "reasonable" on the larger circuits.
func DefaultChains(ffs int) int {
	switch {
	case ffs <= 250:
		return 1
	case ffs <= 700:
		return 2
	case ffs <= 1200:
		return 3
	case ffs <= 1500:
		return 4
	default:
		return 5
	}
}

// RandomSequence generates the deterministic random stimulus shared by
// the faultsim CLI's -random flag and faultsim daemon jobs: same seed,
// same generator, same sequence, so their coverage lines are
// byte-identical.
func RandomSequence(c *netlist.Circuit, seed int64, cycles int) faultsim.Sequence {
	rng := uint64(seed)*2862933555777941757 + 3037000493
	next := func() logic.V {
		rng = rng*6364136223846793005 + 1442695040888963407
		return logic.V((rng >> 33) & 1)
	}
	seq := make(faultsim.Sequence, cycles)
	for t := range seq {
		pi := make([]logic.V, len(c.Inputs))
		for i := range pi {
			pi[i] = next()
		}
		seq[t] = pi
	}
	return seq
}
