package task

import (
	"context"
	"fmt"
	"time"

	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/journal"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/scan"
)

// combBacktracks is the PODEM backtrack limit for standalone atpg
// jobs — flow step 2's default, so the two agree.
const combBacktracks = 250

// Partial is the mergeable result of executing one Unit: the unit's
// identity and resolved fault range, the circuit identity for the
// ledger, and per-kind accumulators covering exactly [Lo, Hi). A
// Partial marshals to JSON so remote workers can return it on the
// wire; Merge reassembles any contiguous set of Partials into the
// byte-identical single-node Result.
type Partial struct {
	// Kind echoes the unit's job kind.
	Kind string `json:"kind"`
	// Index and Count echo the unit's position in its plan.
	Index int `json:"index"`
	Count int `json:"count"`
	// Lo and Hi are the resolved fault-axis slice this partial covers
	// (a whole-axis unit resolves Hi = -1 to the actual length).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Faults is the full axis length (all units of a plan agree).
	Faults int `json:"faults"`
	// Circuit and Hash identify the materialized circuit for the
	// ledger record.
	Circuit string `json:"circuit"`
	Hash    uint64 `json:"hash,string,omitempty"`

	// Report is the flow kind's (whole-axis) report.
	Report *core.Report `json:"report,omitempty"`
	// Design is the flow kind's scan design, for in-process consumers
	// (fsctest -why); it does not travel on the wire.
	Design *scan.Design `json:"-"`

	// Easy, Hard and Unaffecting count screening verdicts (screen).
	Easy        int `json:"easy,omitempty"`
	Hard        int `json:"hard,omitempty"`
	Unaffecting int `json:"unaffecting,omitempty"`

	// Found, Redundant and Aborted count PODEM outcomes (atpg).
	Found     int `json:"found,omitempty"`
	Redundant int `json:"redundant,omitempty"`
	Aborted   int `json:"aborted,omitempty"`

	// DetectedAt holds first-detection cycles for faults [Lo, Hi)
	// (faultsim; -1 = undetected). Gates, FFs and Cycles carry the
	// report header's circuit stats.
	DetectedAt []int `json:"detected_at,omitempty"`
	Gates      int   `json:"gates,omitempty"`
	FFs        int   `json:"ffs,omitempty"`
	Cycles     int   `json:"cycles,omitempty"`

	// Candidates counts the chain-affecting faults in [Lo, Hi);
	// Exact, Ambiguous, Silent and Matches accumulate their diagnosis
	// outcomes (diagnose).
	Candidates int `json:"candidates,omitempty"`
	Exact      int `json:"exact,omitempty"`
	Ambiguous  int `json:"ambiguous,omitempty"`
	Silent     int `json:"silent,omitempty"`
	Matches    int `json:"matches,omitempty"`
}

// Execute runs one work-unit. The returned error is context.Canceled
// (possibly wrapped) when the run was canceled mid-flight; the partial
// result returned alongside is still meaningful then. A nil cache
// selects engine.Default(); a nil collector runs uninstrumented. When
// the context carries a Tracker (WithTracker), Execute reports the
// unit's start and finish to it. When the collector records a
// journal, the unit is bracketed by unit_begin/unit_end events — the
// span boundaries the tracing layer (internal/trace) assembles into
// per-unit spans under the spec's TraceParent.
func Execute(ctx context.Context, u Unit, cache *engine.Cache, col *obs.Collector) (p *Partial, err error) {
	sp := u.Spec
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	if tr := TrackerFrom(ctx); tr != nil {
		tr.UnitStarted(u)
		defer func() { tr.UnitFinished(u, p, err) }()
	}
	if rec := col.Journal(); rec.Enabled() {
		rec.Emit(journal.UnitBegin(u.Index, u.Count, u.Lo, u.Hi))
		start := time.Now()
		// The end event always lands — also on cancel or failure — so
		// partial traces keep their unit boundaries; the resolved axis
		// slice comes from the partial when the kind resolved it.
		defer func() {
			lo, hi := u.Lo, u.Hi
			if p != nil {
				lo, hi = p.Lo, p.Hi
			}
			rec.Emit(journal.UnitEnd(u.Index, u.Count, lo, hi, time.Since(start)))
		}()
	}
	switch sp.Kind {
	case KindFlow:
		return executeFlow(ctx, sp, u, cache, col)
	case KindScreen:
		return executeScreen(ctx, sp, u, cache, col)
	case KindATPG:
		return executeATPG(ctx, sp, u, cache, col)
	case KindFaultSim:
		return executeFaultSim(ctx, sp, u, cache, col)
	case KindDiagnose:
		return executeDiagnose(ctx, sp, u, cache, col)
	}
	return nil, fmt.Errorf("task: unknown kind %q", sp.Kind)
}

// newPartial seeds the unit-identity fields shared by every kind.
func newPartial(sp Spec, u Unit) *Partial {
	return &Partial{Kind: sp.Kind, Index: u.Index, Count: u.Count, Lo: u.Lo, Hi: u.Hi}
}

func executeFlow(ctx context.Context, sp Spec, u Unit, cache *engine.Cache, col *obs.Collector) (*Partial, error) {
	d, err := sp.BuildDesign()
	if err != nil {
		return nil, err
	}
	p := newPartial(sp, u)
	p.Circuit, p.Hash, p.Design = d.C.Name, d.C.StructuralHash(), d
	rep, rerr := core.RunCtx(ctx, d, core.Params{
		Workers: sp.Workers, Eval: sp.backend(), Engine: cache, Obs: col,
	})
	p.Report = rep
	if rep != nil {
		p.Faults = rep.Faults
		p.Lo, p.Hi = 0, rep.Faults
	}
	return p, rerr
}

func executeScreen(ctx context.Context, sp Spec, u Unit, cache *engine.Cache, col *obs.Collector) (*Partial, error) {
	d, err := sp.BuildDesign()
	if err != nil {
		return nil, err
	}
	faults := engine.Resolve(cache).ForObs(d.C, col).CollapsedFaults()
	lo, hi, err := u.slice(len(faults))
	if err != nil {
		return nil, err
	}
	p := newPartial(sp, u)
	p.Circuit, p.Hash = d.C.Name, d.C.StructuralHash()
	p.Faults, p.Lo, p.Hi = len(faults), lo, hi
	screened, serr := core.ScreenOptCtx(ctx, d, faults[lo:hi], core.ScreenOptions{
		Workers: sp.Workers, Eval: sp.backend(), Cache: cache, Obs: col,
	})
	if serr != nil {
		return p, serr
	}
	for i := range screened {
		switch screened[i].Cat {
		case core.Cat1:
			p.Easy++
		case core.Cat2:
			p.Hard++
		default:
			p.Unaffecting++
		}
	}
	return p, nil
}

func executeATPG(ctx context.Context, sp Spec, u Unit, cache *engine.Cache, col *obs.Collector) (*Partial, error) {
	d, err := sp.BuildDesign()
	if err != nil {
		return nil, err
	}
	arts := engine.Resolve(cache).ForObs(d.C, col)
	fixed := make(map[netlist.SignalID]logic.V, len(d.Assignments))
	for k, v := range d.Assignments {
		fixed[k] = v
	}
	model, tables, err := arts.CombSearch(fixed)
	if err != nil {
		return nil, err
	}
	cm, err := arts.CombModel()
	if err != nil {
		return nil, err
	}
	faults := engine.Resolve(cache).ForObs(cm.C, col).CollapsedFaults()
	lo, hi, err := u.slice(len(faults))
	if err != nil {
		return nil, err
	}
	p := newPartial(sp, u)
	p.Circuit, p.Hash = d.C.Name, d.C.StructuralHash()
	p.Faults, p.Lo, p.Hi = len(faults), lo, hi

	eng := atpg.NewEngineTables(model, tables)
	eng.Instrument(col, "atpg.comb")
	for _, f := range faults[lo:hi] {
		r, gerr := eng.GenerateCtx(ctx, f, combBacktracks)
		if gerr != nil {
			return p, gerr
		}
		switch r.Status {
		case atpg.Found:
			p.Found++
		case atpg.Redundant:
			p.Redundant++
		default:
			p.Aborted++
		}
	}
	return p, nil
}

func executeFaultSim(ctx context.Context, sp Spec, u Unit, cache *engine.Cache, col *obs.Collector) (*Partial, error) {
	c, err := sp.BuildCircuit()
	if err != nil {
		return nil, err
	}
	var faults []fault.Fault
	if sp.Uncollapsed {
		faults = fault.All(c)
	} else {
		faults = engine.Resolve(cache).ForObs(c, col).CollapsedFaults()
	}
	seq, err := sp.Stimulus(c)
	if err != nil {
		return nil, err
	}
	lo, hi, err := u.slice(len(faults))
	if err != nil {
		return nil, err
	}
	st := c.Stat()
	p := newPartial(sp, u)
	p.Circuit, p.Hash = c.Name, c.StructuralHash()
	p.Faults, p.Lo, p.Hi = len(faults), lo, hi
	p.Gates, p.FFs, p.Cycles = st.Gates, st.FFs, len(seq)
	res, rerr := faultsim.RunCtx(ctx, c, seq, faults[lo:hi], faultsim.Options{
		Workers: sp.Workers, Eval: sp.backend(), ConeThreshold: sp.ConeThreshold,
		Cache: cache, Obs: col,
	})
	if res != nil {
		p.DetectedAt = res.DetectedAt
	}
	return p, rerr
}

// Diagnosis runs the shared front half of a diagnose job — screen the
// full collapsed fault list, collect the chain-affecting candidates,
// and build the response-signature dictionary over all of them — and
// returns the pieces. Every diagnose unit runs it (the dictionary must
// cover every candidate regardless of which slice a unit diagnoses),
// and the diagnose CLI's -inject path reuses it for interactive
// localization.
func Diagnosis(ctx context.Context, sp Spec, cache *engine.Cache, col *obs.Collector) (*scan.Design, []core.Screened, []fault.Fault, *diagnose.Dictionary, error) {
	if err := sp.Normalize(); err != nil {
		return nil, nil, nil, nil, err
	}
	d, err := sp.BuildDesign()
	if err != nil {
		return nil, nil, nil, nil, err
	}
	faults := engine.Resolve(cache).ForObs(d.C, col).CollapsedFaults()
	screened, err := core.ScreenOptCtx(ctx, d, faults, core.ScreenOptions{
		Workers: sp.Workers, Cache: cache, Obs: col,
	})
	if err != nil {
		return d, nil, nil, nil, err
	}
	var affecting []fault.Fault
	for i := range screened {
		if screened[i].Cat != core.Cat3 {
			affecting = append(affecting, screened[i].Fault)
		}
	}
	sp2 := col.Phase("dictionary")
	dict, err := diagnose.BuildObsCtx(ctx, d, affecting, diagnose.DefaultSequences(d, uint64(sp.Seed)), sp.Workers, col)
	sp2.End()
	if err != nil {
		return d, screened, affecting, nil, err
	}
	return d, screened, affecting, dict, nil
}

func executeDiagnose(ctx context.Context, sp Spec, u Unit, cache *engine.Cache, col *obs.Collector) (*Partial, error) {
	d, screened, _, dict, err := Diagnosis(ctx, sp, cache, col)
	p := newPartial(sp, u)
	if d != nil {
		p.Circuit, p.Hash = d.C.Name, d.C.StructuralHash()
	}
	if err != nil {
		return p, err
	}
	lo, hi, err := u.slice(len(screened))
	if err != nil {
		return nil, err
	}
	p.Faults, p.Lo, p.Hi = len(screened), lo, hi
	// The axis is the collapsed fault list; only the chain-affecting
	// faults inside [lo, hi) are diagnosis candidates. Walking the
	// screened list in index order reproduces the single-node candidate
	// order exactly.
	for i := lo; i < hi; i++ {
		if screened[i].Cat == core.Cat3 {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			return p, cerr
		}
		p.Candidates++
		hidden := screened[i].Fault
		sig := dict.Observe(&diagnose.SimulatedDevice{C: d.C, Hidden: &hidden})
		if sig == dict.GoodSignature() {
			p.Silent++
			continue
		}
		m := dict.Match(sig)
		p.Matches += len(m)
		if len(m) == 1 {
			p.Exact++
		} else {
			p.Ambiguous++
		}
	}
	return p, nil
}
