package task

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultsim"
	"repro/internal/obs"
	"repro/internal/scan"
)

// Result is a merged job outcome: the text report (partial on
// interruption), the circuit identity and headline scalars for the
// ledger, and the per-kind merged data for richer consumers (tables,
// detection-profile plots, -why provenance).
type Result struct {
	// Kind echoes the spec's job kind.
	Kind string `json:"kind"`
	// Circuit and Hash identify the materialized circuit.
	Circuit string `json:"circuit"`
	Hash    uint64 `json:"hash,string,omitempty"`
	// Output is the job's text report, byte-identical to the matching
	// batch CLI's output (empty or partial when Interrupted).
	Output string `json:"output"`
	// Extras are the headline scalars merged into the ledger record.
	Extras map[string]float64 `json:"extras,omitempty"`
	// Interrupted marks a merge over an incomplete unit set (the run
	// was canceled mid-flight).
	Interrupted bool `json:"interrupted,omitempty"`
	// Faults is the full fault-axis length.
	Faults int `json:"faults,omitempty"`

	// Report and Design are the flow kind's full outcome (Design stays
	// in-process).
	Report *core.Report `json:"report,omitempty"`
	Design *scan.Design `json:"-"`

	// Easy, Hard and Unaffecting are merged screening counts (screen).
	Easy        int `json:"easy,omitempty"`
	Hard        int `json:"hard,omitempty"`
	Unaffecting int `json:"unaffecting,omitempty"`

	// Found, Redundant and Aborted are merged PODEM counts (atpg).
	Found     int `json:"found,omitempty"`
	Redundant int `json:"redundant,omitempty"`
	Aborted   int `json:"aborted,omitempty"`

	// DetectedAt is the full-axis first-detection vector (faultsim;
	// -1 = undetected, including fault ranges no unit covered).
	// Detected counts the non-negative entries; Gates, FFs and Cycles
	// carry the header stats.
	DetectedAt []int `json:"detected_at,omitempty"`
	Detected   int   `json:"detected,omitempty"`
	Gates      int   `json:"gates,omitempty"`
	FFs        int   `json:"ffs,omitempty"`
	Cycles     int   `json:"cycles,omitempty"`

	// Candidates through Matches are merged diagnosis counts
	// (diagnose).
	Candidates int `json:"candidates,omitempty"`
	Exact      int `json:"exact,omitempty"`
	Ambiguous  int `json:"ambiguous,omitempty"`
	Silent     int `json:"silent,omitempty"`
	Matches    int `json:"matches,omitempty"`
}

// SimResult views a faultsim result's detection vector through the
// faultsim.Result helpers (NumDetected, Undetected, Profile) for
// consumers like the CLI's -profileplot.
func (r *Result) SimResult() *faultsim.Result {
	return &faultsim.Result{DetectedAt: r.DetectedAt}
}

// Merge reassembles a job result from unit partials. The partials must
// cover the fault axis contiguously from 0 unless interrupted is set,
// in which case whatever ran is merged and the report follows the
// matching CLI's partial-output convention: flow and faultsim keep a
// partial report, the other kinds report nothing. Merge never depends
// on how the axis was split, so any unit partitioning yields the
// byte-identical Result.
func Merge(sp Spec, parts []*Partial, interrupted bool) (*Result, error) {
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	ps := make([]*Partial, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			ps = append(ps, p)
		}
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].Lo < ps[j].Lo })

	res := &Result{Kind: sp.Kind, Interrupted: interrupted}
	if len(ps) == 0 {
		return res, nil
	}
	head := ps[0]
	res.Circuit, res.Hash = head.Circuit, head.Hash
	res.Faults = head.Faults
	res.Gates, res.FFs, res.Cycles = head.Gates, head.FFs, head.Cycles
	for _, p := range ps {
		if p.Kind != sp.Kind {
			return nil, fmt.Errorf("task: merge: partial kind %q does not match spec kind %q", p.Kind, sp.Kind)
		}
	}
	if !interrupted {
		expect := 0
		for _, p := range ps {
			if p.Lo != expect {
				return nil, fmt.Errorf("task: merge: unit coverage gap at fault %d (next partial starts at %d)", expect, p.Lo)
			}
			expect = p.Hi
		}
		if expect != res.Faults {
			return nil, fmt.Errorf("task: merge: units cover [0,%d) of a %d-fault axis", expect, res.Faults)
		}
	}

	switch sp.Kind {
	case KindFlow:
		if len(ps) != 1 {
			return nil, fmt.Errorf("task: merge: flow cannot merge %d units (Plan emits one)", len(ps))
		}
		res.Report, res.Design = head.Report, head.Design
		if res.Report != nil {
			res.Output = core.FormatReport(res.Report)
			res.Extras = FlowExtras(res.Report)
		}
	case KindScreen:
		for _, p := range ps {
			res.Easy += p.Easy
			res.Hard += p.Hard
			res.Unaffecting += p.Unaffecting
		}
		if !interrupted {
			res.Output = formatScreenCounts(res.Circuit, res.Faults, res.Easy, res.Hard, res.Unaffecting)
			res.Extras = map[string]float64{
				"faults": float64(res.Faults),
				"easy":   float64(res.Easy),
				"hard":   float64(res.Hard),
			}
		}
	case KindATPG:
		for _, p := range ps {
			res.Found += p.Found
			res.Redundant += p.Redundant
			res.Aborted += p.Aborted
		}
		if !interrupted {
			var b strings.Builder
			fmt.Fprintf(&b, "circuit %s: comb ATPG over %d faults\n", res.Circuit, res.Faults)
			fmt.Fprintf(&b, "found %d  redundant %d  aborted %d\n", res.Found, res.Redundant, res.Aborted)
			res.Output = b.String()
			res.Extras = map[string]float64{
				"faults":    float64(res.Faults),
				"found":     float64(res.Found),
				"redundant": float64(res.Redundant),
				"aborted":   float64(res.Aborted),
			}
		}
	case KindFaultSim:
		res.DetectedAt = make([]int, res.Faults)
		for i := range res.DetectedAt {
			res.DetectedAt[i] = -1
		}
		for _, p := range ps {
			copy(res.DetectedAt[p.Lo:p.Hi], p.DetectedAt)
		}
		for _, d := range res.DetectedAt {
			if d >= 0 {
				res.Detected++
			}
		}
		var b strings.Builder
		fmt.Fprintf(&b, "circuit %s: %d gates, %d FFs; %d faults; %d cycles\n",
			res.Circuit, res.Gates, res.FFs, res.Faults, res.Cycles)
		note := ""
		if interrupted {
			note = "  (interrupted — partial)"
		}
		fmt.Fprintf(&b, "detected %d / %d faults (%.2f%% coverage)%s\n",
			res.Detected, res.Faults, 100*float64(res.Detected)/float64(res.Faults), note)
		res.Output = b.String()
		res.Extras = map[string]float64{
			"faults":   float64(res.Faults),
			"detected": float64(res.Detected),
		}
		if res.Faults > 0 {
			res.Extras["coverage"] = 100 * float64(res.Detected) / float64(res.Faults)
		}
	case KindDiagnose:
		for _, p := range ps {
			res.Candidates += p.Candidates
			res.Exact += p.Exact
			res.Ambiguous += p.Ambiguous
			res.Silent += p.Silent
			res.Matches += p.Matches
		}
		if !interrupted {
			diagnosable := res.Exact + res.Ambiguous
			var b strings.Builder
			b.WriteString(FormatDiagnoseHeader(res.Circuit, res.Candidates))
			fmt.Fprintf(&b, "diagnosable: %d (%.1f%%)  exact: %d  ambiguous: %d  silent: %d\n",
				diagnosable, 100*float64(diagnosable)/float64(res.Candidates), res.Exact, res.Ambiguous, res.Silent)
			if diagnosable > 0 {
				fmt.Fprintf(&b, "mean candidates per diagnosis: %.2f\n", float64(res.Matches)/float64(diagnosable))
			}
			res.Output = b.String()
			res.Extras = map[string]float64{
				"candidates":  float64(res.Candidates),
				"diagnosable": float64(diagnosable),
				"exact":       float64(res.Exact),
				"silent":      float64(res.Silent),
			}
		}
	}
	return res, nil
}

// Run executes a spec end to end in this process: Plan (sharding into
// Spec.Units work-units; 0 or 1 plans a single unit), Execute, Merge.
// The returned error is context.Canceled (possibly wrapped) when the
// job was canceled mid-flight; the Result still carries the partial
// outcome then. A nil cache selects engine.Default(); a nil collector
// runs uninstrumented.
func Run(ctx context.Context, sp Spec, cache *engine.Cache, col *obs.Collector) (*Result, error) {
	if err := sp.Normalize(); err != nil {
		return nil, err
	}
	units, err := Plan(sp, sp.Units, cache)
	if err != nil {
		return nil, err
	}
	return RunUnits(ctx, units, cache, col)
}

// RunUnits executes a plan's units sequentially in this process and
// merges their partials. (A coordinator distributing units across
// processes replaces this loop with shipping; Merge is shared.)
func RunUnits(ctx context.Context, units []Unit, cache *engine.Cache, col *obs.Collector) (*Result, error) {
	if len(units) == 0 {
		return nil, fmt.Errorf("task: empty unit list")
	}
	sp := units[0].Spec
	parts := make([]*Partial, 0, len(units))
	var runErr error
	for _, u := range units {
		p, err := Execute(ctx, u, cache, col)
		if p != nil {
			parts = append(parts, p)
		}
		if err != nil {
			runErr = err
			break
		}
	}
	res, merr := Merge(sp, parts, runErr != nil)
	if res == nil {
		res = &Result{Kind: sp.Kind, Interrupted: runErr != nil}
	}
	if runErr != nil {
		return res, runErr
	}
	return res, merr
}

// FlowExtras distills a flow report's headline scalars for the run
// ledger: fault totals and the chain-affecting fault coverage, the
// paper's headline metric (fsctstats trends and drift-checks these
// keys). Shared by fsctest and daemon flow jobs.
func FlowExtras(r *core.Report) map[string]float64 {
	ex := map[string]float64{
		"faults":     float64(r.Faults),
		"undetected": float64(r.Undetected()),
	}
	if aff := r.Affecting(); aff > 0 {
		ex["coverage"] = 100 * float64(aff-r.Undetected()) / float64(aff)
	}
	return ex
}

// FormatScreen renders a screening job's report from screening
// verdicts. The daemon and its e2e tests reproduce a screen job's
// output through it.
func FormatScreen(name string, screened []core.Screened) string {
	easy, hard, unaff := 0, 0, 0
	for i := range screened {
		switch screened[i].Cat {
		case core.Cat1:
			easy++
		case core.Cat2:
			hard++
		default:
			unaff++
		}
	}
	return formatScreenCounts(name, len(screened), easy, hard, unaff)
}

// formatScreenCounts is FormatScreen over pre-merged counts.
func formatScreenCounts(name string, total, easy, hard, unaff int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "circuit %s: %d faults screened\n", name, total)
	fmt.Fprintf(&b, "category 1 (easy): %d\ncategory 2 (hard): %d\nunaffecting: %d\n", easy, hard, unaff)
	return b.String()
}

// FormatDiagnoseHeader renders the dictionary header line shared by
// diagnose job reports and the diagnose CLI's interactive mode.
func FormatDiagnoseHeader(name string, candidates int) string {
	return fmt.Sprintf("circuit %s: dictionary over %d chain-affecting faults\n", name, candidates)
}
