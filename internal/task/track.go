package task

import "context"

// Tracker observes unit execution: Execute announces every unit it
// starts and finishes, so an observability layer (internal/telemetry)
// can account per-unit progress, heartbeats and stall detection without
// the task layer depending on it. Implementations must be safe for
// concurrent use — a coordinator may run several units at once.
//
// UnitFinished receives the unit's partial (nil when Execute failed
// before producing one) and the execution error (context.Canceled,
// possibly wrapped, for interrupted units); the partial's Lo/Hi are
// resolved against the actual axis by then, so a whole-axis unit
// (Hi = -1) reports its real span on finish.
type Tracker interface {
	UnitStarted(u Unit)
	UnitFinished(u Unit, p *Partial, err error)
}

// trackerKey carries the context's Tracker.
type trackerKey struct{}

// WithTracker returns a context that carries tr; Execute calls the
// tracker's hooks for every unit run under that context. The tracker
// rides the context rather than the Execute signature so every entry
// point — RunUnits under the CLIs, the daemon's runners, a future
// coordinator — threads it without widening the pipeline API.
func WithTracker(ctx context.Context, tr Tracker) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, trackerKey{}, tr)
}

// TrackerFrom returns the context's Tracker, or nil when none is
// attached.
func TrackerFrom(ctx context.Context) Tracker {
	tr, _ := ctx.Value(trackerKey{}).(Tracker)
	return tr
}
