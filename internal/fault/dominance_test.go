package fault

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestDominanceSmaller(t *testing.T) {
	c := bench.MustS27()
	col := Collapsed(c)
	dom := Dominance(c)
	if len(dom) >= len(col) {
		t.Errorf("dominance %d >= collapsed %d", len(dom), len(col))
	}
	// Every dominance fault is in the collapsed list.
	set := map[Fault]bool{}
	for _, f := range col {
		set[f] = true
	}
	for _, f := range dom {
		if !set[f] {
			t.Errorf("dominance introduced fault %s", f.Describe(c))
		}
	}
}

// TestDominanceCoveragePreserved is the soundness property: any test
// set that detects every testable dominance fault also detects every
// testable collapsed fault. Verified exhaustively on the s27
// combinational view (FFs as free inputs): enumerate all 2^7 input
// combinations, compute per-fault detection sets, and check that each
// collapsed fault's detection set contains the test... i.e., that every
// vector set covering the dominance list covers the collapsed list.
// Concretely: for every collapsed fault g there must exist a dominance
// fault f with detect(f) ⊆ detect(g), so covering f forces covering g.
func TestDominanceCoveragePreserved(t *testing.T) {
	orig := bench.MustS27()
	// Flatten to a combinational view: FFs become inputs via the bench
	// round trip of the comb model... simpler: rebuild by treating FF
	// outputs as inputs.
	c := netlist.New("s27flat")
	for id := netlist.SignalID(0); int(id) < len(orig.Signals); id++ {
		s := orig.Signals[id]
		switch s.Kind {
		case netlist.KindInput, netlist.KindFF:
			if _, err := c.AddInput(s.Name); err != nil {
				t.Fatal(err)
			}
		case netlist.KindGate:
			if _, err := c.AddGateForward(s.Name, s.Op, s.Fanin...); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, o := range orig.Outputs {
		_ = c.MarkOutput(o)
	}
	for _, ff := range orig.FFs {
		_ = c.MarkOutput(orig.Signals[ff].Fanin[0])
	}
	if err := c.Finalize(); err != nil {
		t.Fatal(err)
	}

	detectSet := func(f Fault) map[int]bool {
		out := map[int]bool{}
		n := len(c.Inputs)
		e := sim.NewComb(c)
		inj := f.Inject()
		for mask := 0; mask < 1<<n; mask++ {
			apply := func(injP *sim.Inject) []logic.V {
				e.ClearX()
				for i, in := range c.Inputs {
					e.Vals[in] = logic.FromBool(mask&(1<<i) != 0)
				}
				e.Eval(injP)
				return e.Outputs(nil)
			}
			good := apply(nil)
			bad := apply(&inj)
			for i := range good {
				if good[i] != bad[i] {
					out[mask] = true
					break
				}
			}
		}
		return out
	}

	dom := Dominance(c)
	col := Collapsed(c)
	domSets := make([]map[int]bool, len(dom))
	for i, f := range dom {
		domSets[i] = detectSet(f)
	}
	for _, g := range col {
		gset := detectSet(g)
		if len(gset) == 0 {
			continue // untestable: out of scope
		}
		inDom := false
		for _, f := range dom {
			if f == g {
				inDom = true
				break
			}
		}
		if inDom {
			continue
		}
		// g was dropped: some kept fault's detection set must be a
		// subset of g's.
		ok := false
		for i := range dom {
			if len(domSets[i]) == 0 {
				continue
			}
			subset := true
			for m := range domSets[i] {
				if !gset[m] {
					subset = false
					break
				}
			}
			if subset {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("dropped fault %s is not dominated by any kept fault", g.Describe(c))
		}
	}
}
