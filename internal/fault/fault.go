// Package fault implements the single stuck-at fault model: fault sites
// on signal stems and fanout branches, full fault list generation, and
// gate-local equivalence collapsing.
//
// A stem fault sits on a signal (a gate output, primary input or
// flip-flop output) and is seen by every consumer. A branch fault sits on
// one fanin pin of one consumer; branch faults are only generated where
// the source signal has more than one fanout, since otherwise the branch
// is indistinguishable from the stem.
package fault

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Fault is a single stuck-at fault site.
type Fault struct {
	Signal netlist.SignalID // the faulty net (stem) or the branch source
	Gate   netlist.SignalID // consuming gate/FF for branch faults; netlist.None for stem
	Pin    int              // fanin position within Gate; -1 for stem
	Stuck  logic.V          // logic.Zero or logic.One
}

// IsStem reports whether f is a stem fault.
func (f Fault) IsStem() bool { return f.Gate == netlist.None }

// Inject converts the fault into the simulator's injection form.
func (f Fault) Inject() sim.Inject {
	return sim.Inject{Signal: f.Signal, Gate: f.Gate, Pin: f.Pin, Value: f.Stuck}
}

// Describe renders the fault with signal names for reports.
func (f Fault) Describe(c *netlist.Circuit) string {
	sa := "s-a-0"
	if f.Stuck == logic.One {
		sa = "s-a-1"
	}
	if f.IsStem() {
		return fmt.Sprintf("%s %s", c.NameOf(f.Signal), sa)
	}
	return fmt.Sprintf("%s->%s.%d %s", c.NameOf(f.Signal), c.NameOf(f.Gate), f.Pin, sa)
}

// All returns the complete uncollapsed fault list of c in a
// deterministic order: both stem faults for every signal, then both
// branch faults for every fanin pin whose source has multiple fanouts.
func All(c *netlist.Circuit) []Fault {
	var fl []Fault
	for id := netlist.SignalID(0); int(id) < len(c.Signals); id++ {
		fl = append(fl,
			Fault{Signal: id, Gate: netlist.None, Pin: -1, Stuck: logic.Zero},
			Fault{Signal: id, Gate: netlist.None, Pin: -1, Stuck: logic.One},
		)
	}
	for id := netlist.SignalID(0); int(id) < len(c.Signals); id++ {
		s := &c.Signals[id]
		for pin, src := range s.Fanin {
			if len(c.Fanouts[src]) > 1 {
				fl = append(fl,
					Fault{Signal: src, Gate: id, Pin: pin, Stuck: logic.Zero},
					Fault{Signal: src, Gate: id, Pin: pin, Stuck: logic.One},
				)
			}
		}
	}
	return fl
}

// Collapsed returns the equivalence-collapsed fault list. The rules are
// the standard gate-local structural equivalences:
//
//   - an input of an AND/NAND (OR/NOR) gate stuck at the controlling
//     value is equivalent to the output stuck at the controlled response,
//     so input-side controlling faults are dropped in favour of the
//     output stem fault;
//   - both faults on the input of a NOT/BUF gate are equivalent to the
//     corresponding output faults and are dropped.
//
// Input-side faults are dropped whether they are branch faults or — when
// the source has a single fanout — the source's stem faults.
func Collapsed(c *netlist.Circuit) []Fault {
	type key struct {
		sig  netlist.SignalID
		gate netlist.SignalID
		pin  int
		v    logic.V
	}
	drop := make(map[key]bool)
	dropInput := func(src, gate netlist.SignalID, pin int, v logic.V) {
		if len(c.Fanouts[src]) > 1 {
			drop[key{src, gate, pin, v}] = true
		} else {
			drop[key{src, netlist.None, -1, v}] = true
		}
	}
	for id := netlist.SignalID(0); int(id) < len(c.Signals); id++ {
		s := &c.Signals[id]
		if s.Kind != netlist.KindGate {
			continue
		}
		switch s.Op {
		case logic.OpNot, logic.OpBuf:
			dropInput(s.Fanin[0], id, 0, logic.Zero)
			dropInput(s.Fanin[0], id, 0, logic.One)
		case logic.OpAnd, logic.OpNand, logic.OpOr, logic.OpNor:
			ctrl, _ := s.Op.Controlling()
			for pin, src := range s.Fanin {
				dropInput(src, id, pin, ctrl)
			}
		}
	}
	full := All(c)
	out := make([]Fault, 0, len(full))
	for _, f := range full {
		if drop[key{f.Signal, f.Gate, f.Pin, f.Stuck}] {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Dominance returns the dominance-collapsed fault list: starting from
// the equivalence-collapsed list, the output faults of AND/NAND/OR/NOR
// gates that are dominated by an input fault are dropped too (the
// classic rule: any test for input s-a-non-controlling also detects the
// gate-output fault it dominates, so only the input-side faults need
// explicit targets).
//
// Dominance preserves full single-stuck-at coverage for test
// *generation*, but unlike equivalence it does not preserve per-fault
// detection equivalence — reports that count faults (the paper's
// tables) use Collapsed; Dominance exists for ATPG effort reduction and
// is property-tested for coverage preservation.
func Dominance(c *netlist.Circuit) []Fault {
	type key struct {
		sig  netlist.SignalID
		gate netlist.SignalID
		pin  int
		v    logic.V
	}
	keep := make(map[key]bool)
	for _, f := range Collapsed(c) {
		keep[key{f.Signal, f.Gate, f.Pin, f.Stuck}] = true
	}
	for id := netlist.SignalID(0); int(id) < len(c.Signals); id++ {
		s := &c.Signals[id]
		if s.Kind != netlist.KindGate {
			continue
		}
		switch s.Op {
		case logic.OpAnd, logic.OpNand, logic.OpOr, logic.OpNor:
		default:
			continue
		}
		ctrl, _ := s.Op.Controlling()
		// Output stuck at the "all-non-controlling" response is
		// dominated by each input stuck at the controlling... the
		// standard direction: output s-a-(value produced when an input
		// is controlling) dominates input s-a-controlling (kept via
		// equivalence); output s-a-(other value) DOMINATES input
		// s-a-non-controlling, so the output fault can be dropped when
		// at least one input-side non-controlling fault remains.
		outVal := ctrl.Not()
		if s.Op.Inverting() {
			outVal = ctrl
		}
		hasInputTarget := false
		for pin, src := range s.Fanin {
			k := key{src, id, pin, ctrl.Not()}
			if len(c.Fanouts[src]) <= 1 {
				k = key{src, netlist.None, -1, ctrl.Not()}
			}
			if keep[k] {
				hasInputTarget = true
				break
			}
		}
		if hasInputTarget {
			delete(keep, key{id, netlist.None, -1, outVal})
		}
	}
	var out []Fault
	for _, f := range Collapsed(c) {
		if keep[key{f.Signal, f.Gate, f.Pin, f.Stuck}] {
			out = append(out, f)
		}
	}
	return out
}
