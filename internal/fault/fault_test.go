package fault

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestAllCounts(t *testing.T) {
	c := bench.MustS27()
	fl := All(c)
	// 17 signals (4 PI + 3 FF + 10 gates) -> 34 stem faults, plus 2 per
	// fanin pin whose source has fanout > 1.
	stems := 0
	branches := 0
	for _, f := range fl {
		if f.IsStem() {
			stems++
		} else {
			branches++
		}
	}
	if stems != 2*len(c.Signals) {
		t.Errorf("stems = %d, want %d", stems, 2*len(c.Signals))
	}
	wantBranches := 0
	for id := netlist.SignalID(0); int(id) < len(c.Signals); id++ {
		for _, src := range c.Signals[id].Fanin {
			if len(c.Fanouts[src]) > 1 {
				wantBranches += 2
			}
		}
	}
	if branches != wantBranches {
		t.Errorf("branches = %d, want %d", branches, wantBranches)
	}
}

func TestCollapsedSmaller(t *testing.T) {
	c := bench.MustS27()
	full := All(c)
	col := Collapsed(c)
	if len(col) >= len(full) {
		t.Errorf("collapsed %d >= full %d", len(col), len(full))
	}
	if float64(len(col)) < 0.4*float64(len(full)) {
		t.Errorf("collapsed list suspiciously small: %d of %d", len(col), len(full))
	}
}

// TestCollapsedEquivalenceSound verifies on s27 that every dropped fault
// is genuinely equivalent to some kept fault: the two faulty machines
// produce identical output traces on random input sequences.
func TestCollapsedEquivalenceSound(t *testing.T) {
	c := bench.MustS27()
	full := All(c)
	kept := map[Fault]bool{}
	for _, f := range Collapsed(c) {
		kept[f] = true
	}

	// Deterministic pseudo-random input sequences.
	seqs := make([][][]logic.V, 3)
	rnd := uint32(12345)
	next := func() logic.V {
		rnd = rnd*1664525 + 1013904223
		return logic.V(rnd % 2)
	}
	for s := range seqs {
		seqs[s] = make([][]logic.V, 24)
		for cyc := range seqs[s] {
			v := make([]logic.V, len(c.Inputs))
			for i := range v {
				v[i] = next()
			}
			seqs[s][cyc] = v
		}
	}

	trace := func(f Fault) string {
		var out []byte
		inj := f.Inject()
		for _, seq := range seqs {
			sm := sim.NewSeq(c)
			sm.SetState([]logic.V{logic.Zero, logic.Zero, logic.Zero})
			var po []logic.V
			for _, pi := range seq {
				po = sm.Cycle(pi, &inj, po)
				for _, v := range po {
					out = append(out, byte('0'+v))
				}
			}
		}
		return string(out)
	}

	for _, f := range full {
		if kept[f] {
			continue
		}
		ft := trace(f)
		found := false
		for kf := range kept {
			if trace(kf) == ft {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("dropped fault %s has no equivalent kept fault", f.Describe(c))
		}
	}
}

func TestDescribe(t *testing.T) {
	c := bench.MustS27()
	g8, _ := c.Lookup("G8")
	f := Fault{Signal: g8, Gate: netlist.None, Pin: -1, Stuck: logic.Zero}
	if got := f.Describe(c); got != "G8 s-a-0" {
		t.Errorf("Describe = %q", got)
	}
	g15, _ := c.Lookup("G15")
	fb := Fault{Signal: g8, Gate: g15, Pin: 1, Stuck: logic.One}
	if got := fb.Describe(c); got != "G8->G15.1 s-a-1" {
		t.Errorf("Describe branch = %q", got)
	}
}

func TestInject(t *testing.T) {
	f := Fault{Signal: 3, Gate: netlist.None, Pin: -1, Stuck: logic.One}
	in := f.Inject()
	if !in.IsStem() || in.Signal != 3 || in.Value != logic.One {
		t.Errorf("Inject = %+v", in)
	}
}

func TestDeterministicOrder(t *testing.T) {
	c := bench.MustS27()
	a, b := Collapsed(c), Collapsed(c)
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic order")
		}
	}
}
