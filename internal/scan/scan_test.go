package scan

import (
	"strings"
	"testing"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// tinyDesign hand-builds a 2-FF design with one inverting functional
// segment so every parity and sequence property can be checked exactly:
//
//	ff0.D = OR(AND(si, sm), AND(old0, !sm))   (inserted head)
//	ff1.D = NAND(ff0, side)                   (functional, inverting)
//	side pinned to 1 by assignment of PI "en"
func tinyDesign(t *testing.T) *Design {
	t.Helper()
	c := netlist.New("tiny")
	si, _ := c.AddInput("si")
	sm, _ := c.AddInput("sm")
	en, _ := c.AddInput("en")
	po, _ := c.AddInput("data")

	ff0, _ := c.AddFF("ff0")
	ff1, _ := c.AddFF("ff1")

	nsm, _ := c.AddGate("nsm", logic.OpNot, sm)
	andS, _ := c.AddGate("andS", logic.OpAnd, si, sm)
	andF, _ := c.AddGate("andF", logic.OpAnd, po, nsm)
	orG, _ := c.AddGate("orG", logic.OpOr, andS, andF)
	if err := c.SetFFInput(ff0, orG); err != nil {
		t.Fatal(err)
	}

	seg, _ := c.AddGate("seg", logic.OpNand, ff0, en)
	if err := c.SetFFInput(ff1, seg); err != nil {
		t.Fatal(err)
	}
	out, _ := c.AddGate("out", logic.OpBuf, ff1)
	_ = c.MarkOutput(out)
	_ = c.MarkOutput(ff1) // scan-out
	c.MustFinalize()

	d := &Design{
		C: c,
		Assignments: map[netlist.SignalID]logic.V{
			sm: logic.One,
			en: logic.One,
		},
		ScanModePI: sm,
		Chains: []Chain{{
			ID:     0,
			ScanIn: si,
			FFs:    []netlist.SignalID{ff0, ff1},
			Segment: []Segment{
				{
					To:   ff0,
					Path: []netlist.SignalID{andS, orG},
					Sides: []SideInput{
						{Gate: andS, Pin: 1, Want: logic.One},
						{Gate: orG, Pin: 1, Want: logic.Zero},
					},
					Kind: Inserted,
				},
				{
					To:     ff1,
					Path:   []netlist.SignalID{seg},
					Sides:  []SideInput{{Gate: seg, Pin: 1, Want: logic.One}},
					Invert: true,
					Kind:   Functional,
				},
			},
		}},
	}
	d.Init()
	return d
}

func TestVerifyAcceptsConsistent(t *testing.T) {
	d := tinyDesign(t)
	if err := d.Verify(); err != nil {
		t.Fatalf("Verify rejected a consistent design: %v", err)
	}
}

func TestVerifyCatchesWrongSide(t *testing.T) {
	d := tinyDesign(t)
	// Claim the NAND side must be 0: propagation gives 1.
	d.Chains[0].Segment[1].Sides[0].Want = logic.Zero
	if err := d.Verify(); err == nil {
		t.Error("Verify accepted a wrong side requirement")
	} else if !strings.Contains(err.Error(), "side") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestVerifyCatchesPinnedPath(t *testing.T) {
	d := tinyDesign(t)
	// Unassign "en" and pin it to 0: the NAND output becomes constant 1,
	// so the on-path net is pinned.
	en, _ := d.C.Lookup("en")
	d.Assignments[en] = logic.Zero
	// Both the side requirement and the on-path X invariant now fail;
	// Verify must reject either way.
	if err := d.Verify(); err == nil {
		t.Error("Verify accepted a design with a constant on-path net")
	}
}

func TestVerifyCatchesDetachedPath(t *testing.T) {
	d := tinyDesign(t)
	// Make the segment path end somewhere other than the FF's D.
	d.Chains[0].Segment[1].Path = d.Chains[0].Segment[0].Path[:1]
	if err := d.Verify(); err == nil {
		t.Error("Verify accepted a detached path")
	}
}

func TestParityAndScanInBit(t *testing.T) {
	d := tinyDesign(t)
	ch := &d.Chains[0]
	if ch.ParityTo(0) != false || ch.ParityTo(1) != true {
		t.Fatalf("parities: %v %v", ch.ParityTo(0), ch.ParityTo(1))
	}
	// Load ff0=1, ff1=0 (window 2): bit for position 1 is injected at
	// cycle 0 and inverted; bit for position 0 at cycle 1.
	want := map[netlist.SignalID]logic.V{
		ch.FFs[0]: logic.One,
		ch.FFs[1]: logic.Zero,
	}
	seq := d.LoadSequence(want)
	if len(seq) != 2 {
		t.Fatalf("load sequence length %d", len(seq))
	}
	siIdx, _ := d.InputIndex(ch.ScanIn)
	if seq[0][siIdx] != logic.One { // ff1 wants 0, parity inverts -> inject 1
		t.Errorf("cycle 0 scan-in = %v, want 1", seq[0][siIdx])
	}
	if seq[1][siIdx] != logic.One { // ff0 wants 1, no parity
		t.Errorf("cycle 1 scan-in = %v, want 1", seq[1][siIdx])
	}
}

func TestFFPosition(t *testing.T) {
	d := tinyDesign(t)
	ci, pos, ok := d.FFPosition(d.Chains[0].FFs[1])
	if !ok || ci != 0 || pos != 1 {
		t.Errorf("FFPosition = %d,%d,%v", ci, pos, ok)
	}
	if _, _, ok := d.FFPosition(netlist.SignalID(0)); ok {
		t.Error("FFPosition found a non-FF")
	}
}

func TestBaselineAndAlternating(t *testing.T) {
	d := tinyDesign(t)
	base := d.BaselinePI()
	sm, _ := d.InputIndex(d.ScanModePI)
	if base[sm] != logic.One {
		t.Error("baseline does not assert scan mode")
	}
	alt := d.AlternatingSequence(4)
	if len(alt) != 2*2+4 {
		t.Fatalf("alternating length %d", len(alt))
	}
	siIdx, _ := d.InputIndex(d.Chains[0].ScanIn)
	wantBits := []logic.V{logic.Zero, logic.Zero, logic.One, logic.One, logic.Zero, logic.Zero, logic.One, logic.One}
	for i, pi := range alt {
		if pi[siIdx] != wantBits[i] {
			t.Errorf("alternating cycle %d = %v, want %v", i, pi[siIdx], wantBits[i])
		}
	}
}

func TestConvertVectorsShape(t *testing.T) {
	d := tinyDesign(t)
	seq := d.ConvertVectors(nil)
	// Leading flush + trailing flush window even with no vectors.
	if len(seq) != 2*2 {
		t.Errorf("empty conversion length %d, want 4", len(seq))
	}
	seq = d.ConvertVectors(make([]Vector, 3))
	if len(seq) != 2*(3+2) {
		t.Errorf("3-vector conversion length %d, want 10", len(seq))
	}
}

func TestLinkStats(t *testing.T) {
	d := tinyDesign(t)
	f, i := d.LinkStats()
	if f != 1 || i != 1 {
		t.Errorf("LinkStats = %d,%d", f, i)
	}
}

func TestSegmentKindString(t *testing.T) {
	if Functional.String() != "functional" || Inserted.String() != "inserted" {
		t.Error("SegmentKind strings wrong")
	}
}

func TestScanOut(t *testing.T) {
	d := tinyDesign(t)
	if d.Chains[0].ScanOut() != d.Chains[0].FFs[1] {
		t.Error("ScanOut is not the last FF")
	}
}

func TestMaxChainLen(t *testing.T) {
	d := tinyDesign(t)
	if d.MaxChainLen() != 2 {
		t.Errorf("MaxChainLen = %d", d.MaxChainLen())
	}
}
