// Package scan defines the functional scan design: chains of flip-flops
// connected by sensitized paths through combinational logic, the
// scan-mode input assignments that sensitize them, and the test-sequence
// builders (alternating shift test, combinational-vector conversion with
// scan-in/scan-out windows).
//
// A Design is produced by the tpi package from a mission circuit. All
// cycle-level semantics live here: with `scan_mode = 1` every clock is a
// shift, each segment may invert its bit (parity), and observation
// points are the per-chain scan-out pins plus every primary output.
package scan

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// SegmentKind tells how a chain link was established.
type SegmentKind uint8

// Segment kinds.
const (
	// Functional: the link is a sensitized path through mission logic
	// (the paper's TPI result).
	Functional SegmentKind = iota
	// Inserted: the link runs through inserted gates (a scan-in head or
	// a MUX-style fallback when no functional path could be sensitized).
	Inserted
)

func (k SegmentKind) String() string {
	if k == Functional {
		return "functional"
	}
	return "inserted"
}

// SideInput is one constant requirement that keeps a segment sensitized:
// pin Pin of on-path gate Gate must read value Want during scan mode.
type SideInput struct {
	Gate netlist.SignalID
	Pin  int
	Want logic.V
}

// Segment is one scan-chain link: the sensitized path feeding flip-flop
// To from the previous chain element (the preceding flip-flop, or the
// scan-in pin for the head segment).
type Segment struct {
	To     netlist.SignalID   // flip-flop this segment loads
	Path   []netlist.SignalID // on-path gate outputs, source side first; last drives To's D pin
	Sides  []SideInput        // sensitization requirements
	Invert bool               // parity of the path (odd number of inversions)
	Kind   SegmentKind
}

// Chain is one scan chain.
type Chain struct {
	ID      int
	ScanIn  netlist.SignalID // dedicated scan-in primary input
	FFs     []netlist.SignalID
	Segment []Segment // Segment[i] feeds FFs[i]; source is FFs[i-1] (or ScanIn for i == 0)
}

// Len returns the number of flip-flops on the chain.
func (ch *Chain) Len() int { return len(ch.FFs) }

// ScanOut returns the chain's observation signal (the last flip-flop's
// Q, which the design marks as a primary output).
func (ch *Chain) ScanOut() netlist.SignalID { return ch.FFs[len(ch.FFs)-1] }

// ParityTo returns the accumulated inversion parity from the scan-in pin
// through segment pos inclusive: the value loaded into FFs[pos] is the
// injected scan-in bit XOR this parity.
func (ch *Chain) ParityTo(pos int) bool {
	p := false
	for i := 0; i <= pos; i++ {
		if ch.Segment[i].Invert {
			p = !p
		}
	}
	return p
}

// Design is a circuit with functional scan inserted.
type Design struct {
	C *netlist.Circuit // the scan-mode circuit (test points, head/fallback gates, scan pins)
	// Assignments pins primary inputs to constants during scan mode,
	// always including ScanModePI -> 1. Scan-in pins and free mission
	// inputs are not in this map.
	Assignments map[netlist.SignalID]logic.V
	ScanModePI  netlist.SignalID
	Chains      []Chain
	TestPoints  []netlist.SignalID // outputs of inserted test-point gates
	// NonScan lists flip-flops left off every chain (partial scan, the
	// paper's reference [3] setting). Empty for full scan.
	NonScan []netlist.SignalID

	inputIndex map[netlist.SignalID]int
	ffPos      map[netlist.SignalID][2]int // FF -> (chain, position)
}

// Init builds the internal lookup tables; tpi calls it once after
// construction, and deserializers must call it too.
func (d *Design) Init() {
	d.inputIndex = make(map[netlist.SignalID]int, len(d.C.Inputs))
	for i, in := range d.C.Inputs {
		d.inputIndex[in] = i
	}
	d.ffPos = make(map[netlist.SignalID][2]int)
	for ci := range d.Chains {
		for pos, ff := range d.Chains[ci].FFs {
			d.ffPos[ff] = [2]int{ci, pos}
		}
	}
}

// Partial reports whether this is a partial-scan design.
func (d *Design) Partial() bool { return len(d.NonScan) > 0 }

// FFPosition returns the chain index and position of a flip-flop.
func (d *Design) FFPosition(ff netlist.SignalID) (chain, pos int, ok bool) {
	p, found := d.ffPos[ff]
	if !found {
		return 0, 0, false
	}
	return p[0], p[1], true
}

// MaxChainLen returns the longest chain length.
func (d *Design) MaxChainLen() int {
	m := 0
	for i := range d.Chains {
		if l := d.Chains[i].Len(); l > m {
			m = l
		}
	}
	return m
}

// LinkStats counts functional versus inserted segments (head segments
// are always inserted).
func (d *Design) LinkStats() (functional, inserted int) {
	for ci := range d.Chains {
		for si := range d.Chains[ci].Segment {
			if d.Chains[ci].Segment[si].Kind == Functional {
				functional++
			} else {
				inserted++
			}
		}
	}
	return
}

// BaselinePI returns a single-cycle primary-input vector: scan-mode
// assignments applied, everything else (scan-ins and free inputs) zero.
func (d *Design) BaselinePI() []logic.V {
	pi := make([]logic.V, len(d.C.Inputs))
	for i, in := range d.C.Inputs {
		if v, ok := d.Assignments[in]; ok {
			pi[i] = v
		} else {
			pi[i] = logic.Zero
		}
	}
	return pi
}

// InputIndex returns the position of input signal in the per-cycle
// vectors (the circuit's input order).
func (d *Design) InputIndex(in netlist.SignalID) (int, bool) {
	i, ok := d.inputIndex[in]
	return i, ok
}

// AlternatingSequence builds the classic scan-chain shift test: every
// chain's scan-in pin is driven with the period-4 pattern 0,0,1,1,…
// for 2·maxlen+extra cycles, free inputs held at the baseline.
func (d *Design) AlternatingSequence(extra int) [][]logic.V {
	n := 2*d.MaxChainLen() + extra
	seq := make([][]logic.V, n)
	for t := 0; t < n; t++ {
		pi := d.BaselinePI()
		bit := logic.FromBool((t/2)%2 == 1)
		for ci := range d.Chains {
			pi[d.inputIndex[d.Chains[ci].ScanIn]] = bit
		}
		seq[t] = pi
	}
	return seq
}

// Vector is one combinational scan-mode test vector from ATPG: required
// flip-flop values (to be shifted in) and free primary-input values.
// Unassigned entries are don't-cares.
type Vector struct {
	FFs map[netlist.SignalID]logic.V
	PIs map[netlist.SignalID]logic.V
}

// scanInBit computes the value chain ch's scan-in pin must carry at
// shift cycle t (0-based within an L-cycle window) so that after the
// window flip-flop at position p holds want[p]: the bit for position p
// is injected at cycle L-1-p and inverted by the prefix parity.
func (d *Design) scanInBit(ch *Chain, t, window int, want func(pos int) logic.V) logic.V {
	pos := window - 1 - t
	if pos < 0 || pos >= ch.Len() {
		return logic.Zero
	}
	v := want(pos)
	if !v.Known() {
		return logic.Zero // don't-care: load 0
	}
	if ch.ParityTo(pos) {
		return v.Not()
	}
	return v
}

// ConvertVectors turns ATPG vectors into one scan-mode test sequence.
// A leading L-cycle flush (L = longest chain) shifts zeros in so every
// flip-flop is definite before the first load — from the all-X power-on
// state a fault-corrupted segment would otherwise poison everything
// downstream with X on the very first load. Then, per vector, an
// L-cycle shift window loads its flip-flop values; the cycle after a
// window — which is also the first shift cycle of the next vector — has
// the vector's own primary-input values applied, so its response is
// exercised while the captured values shift out during the next window.
// A final L-cycle flush empties the chain after the last vector.
func (d *Design) ConvertVectors(vectors []Vector) [][]logic.V {
	L := d.MaxChainLen()
	var seq [][]logic.V
	for t := 0; t < L; t++ {
		seq = append(seq, d.BaselinePI())
	}
	for vi := 0; vi <= len(vectors); vi++ {
		// PI values held during this window: the PREVIOUS vector's
		// (whose loaded state is live at the window's first cycle).
		var hold map[netlist.SignalID]logic.V
		if vi > 0 {
			hold = vectors[vi-1].PIs
		}
		var load *Vector
		if vi < len(vectors) {
			load = &vectors[vi]
		}
		for t := 0; t < L; t++ {
			pi := d.BaselinePI()
			for in, v := range hold {
				if _, pinned := d.Assignments[in]; pinned {
					continue
				}
				if v.Known() {
					pi[d.inputIndex[in]] = v
				}
			}
			if load != nil {
				for ci := range d.Chains {
					ch := &d.Chains[ci]
					pi[d.inputIndex[ch.ScanIn]] = d.scanInBit(ch, t, L, func(pos int) logic.V {
						return load.FFs[ch.FFs[pos]]
					})
				}
			}
			seq = append(seq, pi)
		}
	}
	return seq
}

// LoadSequence returns the L-cycle shift window that loads the given
// full flip-flop state (values keyed by FF signal; missing entries load
// zero), with free inputs at baseline.
func (d *Design) LoadSequence(state map[netlist.SignalID]logic.V) [][]logic.V {
	L := d.MaxChainLen()
	return d.ConvertVectors([]Vector{{FFs: state}})[L : 2*L]
}

// Verify checks the design's internal consistency under scan-mode
// constant propagation (inputs at assignments, flip-flops at X): every
// side input must evaluate to its required constant and every on-path
// net must remain X (data-carrying). It returns the first violation.
func (d *Design) Verify() error {
	e := sim.NewComb(d.C)
	e.ClearX()
	for _, in := range d.C.Inputs {
		if v, ok := d.Assignments[in]; ok {
			e.Vals[in] = v
		}
	}
	e.Eval(nil)
	for ci := range d.Chains {
		ch := &d.Chains[ci]
		for si := range ch.Segment {
			seg := &ch.Segment[si]
			for _, s := range seg.Sides {
				net := d.C.Signals[s.Gate].Fanin[s.Pin]
				if got := e.Vals[net]; got != s.Want {
					return fmt.Errorf("scan: chain %d segment %d: side %s.%d (%s) = %v, want %v",
						ci, si, d.C.NameOf(s.Gate), s.Pin, d.C.NameOf(net), got, s.Want)
				}
			}
			for _, p := range seg.Path {
				if got := e.Vals[p]; got != logic.X {
					return fmt.Errorf("scan: chain %d segment %d: on-path net %s pinned to %v",
						ci, si, d.C.NameOf(p), got)
				}
			}
			if last := seg.Path[len(seg.Path)-1]; d.C.Signals[seg.To].Fanin[0] != last {
				return fmt.Errorf("scan: chain %d segment %d: path does not end at D of %s",
					ci, si, d.C.NameOf(seg.To))
			}
		}
	}
	return nil
}
