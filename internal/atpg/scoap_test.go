package atpg

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestControllabilityBasics(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
n = NOT(a)
g = AND(a, b)
y = OR(g, c)
`
	cc, err := bench.ParseString(src, "scoap")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(cc, nil)
	cc0, cc1 := controllability(m)
	a, _ := cc.Lookup("a")
	n, _ := cc.Lookup("n")
	g, _ := cc.Lookup("g")
	y, _ := cc.Lookup("y")
	if cc0[a] != 1 || cc1[a] != 1 {
		t.Errorf("input controllability %d/%d", cc0[a], cc1[a])
	}
	if cc0[n] != 2 || cc1[n] != 2 {
		t.Errorf("NOT controllability %d/%d", cc0[n], cc1[n])
	}
	// AND: 0 needs one controlling input (1+1=2), 1 needs both (1+1+1=3).
	if cc0[g] != 2 || cc1[g] != 3 {
		t.Errorf("AND controllability %d/%d", cc0[g], cc1[g])
	}
	// OR(g, c): 1 via c (1+1=2); 0 needs g=0 and c=0 (2+1+1=4).
	if cc1[y] != 2 || cc0[y] != 4 {
		t.Errorf("OR controllability %d/%d", cc0[y], cc1[y])
	}
}

func TestControllabilityFixedInputs(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, b)
`
	cc, err := bench.ParseString(src, "fix")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := cc.Lookup("b")
	y, _ := cc.Lookup("y")
	m, _ := NewModel(cc, map[netlist.SignalID]logic.V{b: logic.Zero})
	cc0, cc1 := controllability(m)
	if cc0[b] != 0 || cc1[b] != ccInf {
		t.Errorf("pinned-0 input controllability %d/%d", cc0[b], cc1[b])
	}
	// y can never be 1 with b pinned 0.
	if cc1[y] < ccInf {
		t.Errorf("AND with pinned-0 side should be 1-uncontrollable, got %d", cc1[y])
	}
	if cc0[y] != 1 {
		t.Errorf("AND 0-controllability with pinned-0 side = %d, want 1", cc0[y])
	}
	// An input pinned to X is uncontrollable both ways.
	m2, _ := NewModel(cc, map[netlist.SignalID]logic.V{b: logic.X})
	c0, c1 := controllability(m2)
	if c0[b] != ccInf || c1[b] != ccInf {
		t.Errorf("pinned-X input controllability %d/%d", c0[b], c1[b])
	}
}

func TestControllabilityXor(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
`
	cc, err := bench.ParseString(src, "xor")
	if err != nil {
		t.Fatal(err)
	}
	y, _ := cc.Lookup("y")
	m, _ := NewModel(cc, nil)
	cc0, cc1 := controllability(m)
	// 0: equal inputs (1+1)+1 = 3; 1: differing inputs, same cost.
	if cc0[y] != 3 || cc1[y] != 3 {
		t.Errorf("XOR controllability %d/%d", cc0[y], cc1[y])
	}
}

// TestConeRestriction: the engine's cone must include exactly the
// signals a fault can influence.
func TestConeRestriction(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
y = AND(a, b)
z = NOT(b)
`
	cc, err := bench.ParseString(src, "cone")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(cc, nil)
	e := NewEngine(m)
	a, _ := cc.Lookup("a")
	y, _ := cc.Lookup("y")
	z, _ := cc.Lookup("z")
	f := fault.Fault{Signal: a, Gate: netlist.None, Pin: -1, Stuck: logic.Zero}
	e.loadFault([]sim.Inject{f.Inject()})
	if !e.inCone[a] || !e.inCone[y] {
		t.Error("cone misses fault site or downstream gate")
	}
	if e.inCone[z] {
		t.Error("cone includes unrelated gate z")
	}
	if !e.isOut[y] || e.isOut[z] {
		t.Error("cone outputs wrong")
	}
}
