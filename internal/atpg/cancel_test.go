package atpg

import (
	"context"
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
)

// TestGenerateCtxCancelled pins the PODEM cancellation contract: a dead
// context aborts the search at a backtrack boundary with
// context.Canceled instead of burning the whole backtrack budget, and a
// nil context matches the ctx-free entry point.
func TestGenerateCtxCancelled(t *testing.T) {
	orig := gen.Generate(gen.Profile{Name: "podemctx", PIs: 8, POs: 6, FFs: 12, Gates: 200}, 4)
	cm, err := BuildCombModel(orig)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(cm.C, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m)
	faults := fault.Collapsed(cm.C)
	if len(faults) < 10 {
		t.Fatal("not enough faults")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, f := range faults[:10] {
		if _, gerr := e.GenerateCtx(ctx, f, 250); !errors.Is(gerr, context.Canceled) {
			t.Fatalf("cancelled GenerateCtx returned %v, want context.Canceled", gerr)
		}
	}

	// nil context == Background: identical verdicts to Generate.
	for _, f := range faults[:10] {
		got, gerr := e.GenerateCtx(nil, f, 250)
		if gerr != nil {
			t.Fatal(gerr)
		}
		want := NewEngine(m).Generate(f, 250)
		if got.Status != want.Status {
			t.Errorf("fault %v: ctx status %v != plain status %v", f, got.Status, want.Status)
		}
	}
}
