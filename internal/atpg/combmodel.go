package atpg

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
)

// CombModel is the single-time-frame combinational view of a sequential
// circuit: flip-flop outputs become assignable pseudo-inputs and
// flip-flop D pins become observable pseudo-outputs. Signal IDs of the
// original circuit are preserved in the model circuit; only the D-pin
// observation buffers are appended.
type CombModel struct {
	Orig *netlist.Circuit
	C    *netlist.Circuit
	// DBuf maps each original flip-flop output signal to the appended
	// observation buffer that mirrors its D pin in the model.
	DBuf map[netlist.SignalID]netlist.SignalID
}

// BuildCombModel constructs the combinational model of orig.
func BuildCombModel(orig *netlist.Circuit) (*CombModel, error) {
	c := netlist.New(orig.Name + "$comb")
	// Recreate every signal in order so IDs carry over.
	for id := netlist.SignalID(0); int(id) < len(orig.Signals); id++ {
		s := orig.Signals[id]
		var err error
		switch s.Kind {
		case netlist.KindInput, netlist.KindFF:
			_, err = c.AddInput(s.Name)
		case netlist.KindGate:
			// Fanin IDs are identical by construction; they may point
			// forward (test points rewire earlier gates onto later ones).
			_, err = c.AddGateForward(s.Name, s.Op, s.Fanin...)
		}
		if err != nil {
			return nil, fmt.Errorf("atpg: comb model: %v", err)
		}
	}
	for _, o := range orig.Outputs {
		if err := c.MarkOutput(o); err != nil {
			return nil, err
		}
	}
	dbuf := make(map[netlist.SignalID]netlist.SignalID, len(orig.FFs))
	for _, ff := range orig.FFs {
		d := orig.Signals[ff].Fanin[0]
		buf, err := c.AddGate(orig.NameOf(ff)+"$D", logic.OpBuf, d)
		if err != nil {
			return nil, err
		}
		if err := c.MarkOutput(buf); err != nil {
			return nil, err
		}
		dbuf[ff] = buf
	}
	if err := c.Finalize(); err != nil {
		return nil, err
	}
	return &CombModel{Orig: orig, C: c, DBuf: dbuf}, nil
}

// MapFault translates a fault on the original circuit into the model. A
// branch fault whose consumer is a flip-flop moves to the corresponding
// observation buffer; everything else carries over unchanged.
func (m *CombModel) MapFault(f fault.Fault) fault.Fault {
	if !f.IsStem() && m.Orig.IsFF(f.Gate) {
		return fault.Fault{Signal: f.Signal, Gate: m.DBuf[f.Gate], Pin: 0, Stuck: f.Stuck}
	}
	return f
}
