package atpg

import (
	"sort"

	"repro/internal/logic"
	"repro/internal/netlist"
)

// Observability computes SCOAP-style combinational observability per
// signal for a model: the cost of propagating a value from the signal
// to some primary output (0 at outputs; through a gate, the cost of the
// gate's output plus setting every other input non-controlling).
// Signals that cannot reach an output saturate at ccInf.
func Observability(m *Model) []int64 {
	c := m.C
	cc0, cc1 := controllability(m)
	co := make([]int64, len(c.Signals))
	for i := range co {
		co[i] = ccInf
	}
	for _, o := range c.Outputs {
		co[o] = 0
	}
	sat := func(a, b int64) int64 {
		s := a + b
		if s > ccInf {
			return ccInf
		}
		return s
	}
	// Sweep gates output-to-input repeatedly until stable (the netlist
	// is a DAG, so reverse topological order converges in one pass; the
	// loop guards against any ordering surprises).
	order := append([]netlist.SignalID(nil), c.Order...)
	for changed := true; changed; {
		changed = false
		for i := len(order) - 1; i >= 0; i-- {
			g := order[i]
			s := &c.Signals[g]
			if co[g] >= ccInf {
				continue
			}
			for pin, f := range s.Fanin {
				var cost int64
				switch s.Op {
				case logic.OpBuf, logic.OpNot:
					cost = sat(co[g], 1)
				case logic.OpXor, logic.OpXnor:
					// Other inputs just need definite values; use their
					// cheaper controllability.
					cost = sat(co[g], 1)
					for p2, f2 := range s.Fanin {
						if p2 == pin {
							continue
						}
						cost = sat(cost, min64(cc0[f2], cc1[f2]))
					}
				default:
					nc, _ := s.Op.NonControlling()
					cost = sat(co[g], 1)
					for p2, f2 := range s.Fanin {
						if p2 == pin {
							continue
						}
						if nc == logic.Zero {
							cost = sat(cost, cc0[f2])
						} else {
							cost = sat(cost, cc1[f2])
						}
					}
				}
				if cost < co[f] {
					co[f] = cost
					changed = true
				}
			}
		}
	}
	return co
}

// Testability summarizes controllability/observability for reports.
type Testability struct {
	CC0, CC1, CO []int64
}

// Analyze computes the full testability measures of a model.
func Analyze(m *Model) *Testability {
	cc0, cc1 := controllability(m)
	return &Testability{CC0: cc0, CC1: cc1, CO: Observability(m)}
}

// Hardest returns the n signals with the highest combined testability
// cost (min(CC0,CC1) + CO), hardest first — the classic test-point
// insertion candidates.
func (t *Testability) Hardest(c *netlist.Circuit, n int) []netlist.SignalID {
	type sc struct {
		id   netlist.SignalID
		cost int64
	}
	var all []sc
	for id := netlist.SignalID(0); int(id) < len(c.Signals); id++ {
		if !c.IsGate(id) {
			continue
		}
		cost := min64(t.CC0[id], t.CC1[id]) + t.CO[id]
		all = append(all, sc{id, cost})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].cost != all[j].cost {
			return all[i].cost > all[j].cost
		}
		return all[i].id < all[j].id
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]netlist.SignalID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].id
	}
	return out
}
