package atpg

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// detects checks by scalar simulation whether the (possibly partial)
// assignment detects f on combinational circuit c with fixed inputs.
func detects(c *netlist.Circuit, fixed, asn map[netlist.SignalID]logic.V, f fault.Fault) bool {
	e := sim.NewComb(c)
	e.ClearX()
	for _, in := range c.Inputs {
		if v, ok := fixed[in]; ok {
			e.Vals[in] = v
		} else if v, ok := asn[in]; ok {
			e.Vals[in] = v
		}
	}
	e.Eval(nil)
	good := e.Outputs(nil)
	ef := sim.NewComb(c)
	copy(ef.Vals, e.Vals)
	for _, in := range c.Inputs {
		if v, ok := fixed[in]; ok {
			ef.Vals[in] = v
		} else if v, ok := asn[in]; ok {
			ef.Vals[in] = v
		} else {
			ef.Vals[in] = logic.X
		}
	}
	inj := f.Inject()
	ef.Eval(&inj)
	bad := ef.Outputs(nil)
	for i := range good {
		if good[i].Known() && bad[i].Known() && good[i] != bad[i] {
			return true
		}
	}
	return false
}

// exhaustivelyTestable enumerates all assignments of the free inputs and
// reports whether any detects f (ground truth for redundancy claims).
func exhaustivelyTestable(c *netlist.Circuit, fixed map[netlist.SignalID]logic.V, f fault.Fault) bool {
	var free []netlist.SignalID
	for _, in := range c.Inputs {
		if _, ok := fixed[in]; !ok {
			free = append(free, in)
		}
	}
	if len(free) > 20 {
		panic("too many inputs for exhaustive check")
	}
	asn := map[netlist.SignalID]logic.V{}
	for mask := 0; mask < 1<<len(free); mask++ {
		for i, in := range free {
			asn[in] = logic.FromBool(mask&(1<<i) != 0)
		}
		if detects(c, fixed, asn, f) {
			return true
		}
	}
	return false
}

// checkAllFaults runs PODEM on every collapsed fault of the circuit and
// validates each verdict against simulation / exhaustive ground truth.
func checkAllFaults(t *testing.T, c *netlist.Circuit, fixed map[netlist.SignalID]logic.V) (found, redundant int) {
	t.Helper()
	m, err := NewModel(c, fixed)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(m)
	for _, f := range fault.Collapsed(c) {
		res := e.Generate(f, 10000)
		switch res.Status {
		case Found:
			found++
			if !detects(c, fixed, res.Assignment, f) {
				t.Errorf("PODEM vector for %s does not detect it (asn %v)", f.Describe(c), res.Assignment)
			}
		case Redundant:
			redundant++
			if exhaustivelyTestable(c, fixed, f) {
				t.Errorf("PODEM claims %s redundant but a test exists", f.Describe(c))
			}
		case Aborted:
			t.Errorf("PODEM aborted on %s in tiny circuit", f.Describe(c))
		}
	}
	return found, redundant
}

func TestPodemC17(t *testing.T) {
	// The classic c17 netlist: all faults testable.
	src := `
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
`
	c, err := bench.ParseString(src, "c17")
	if err != nil {
		t.Fatal(err)
	}
	found, redundant := checkAllFaults(t, c, nil)
	if redundant != 0 {
		t.Errorf("c17 has no redundant faults, PODEM found %d", redundant)
	}
	if found == 0 {
		t.Error("no tests generated")
	}
}

func TestPodemRedundantCircuit(t *testing.T) {
	// y = OR(a, NOT(a)) is constant 1: y s-a-1 is undetectable, and so is
	// everything that only matters through y's value being 1.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
na = NOT(a)
y = OR(a, na)
z = AND(y, b)
`
	c, err := bench.ParseString(src, "red")
	if err != nil {
		t.Fatal(err)
	}
	found, redundant := checkAllFaults(t, c, nil)
	if redundant == 0 {
		t.Error("redundant circuit yielded no redundant verdicts")
	}
	if found == 0 {
		t.Error("no tests generated")
	}
	// Specifically y s-a-1 must be redundant.
	y, _ := c.Lookup("y")
	m, _ := NewModel(c, nil)
	e := NewEngine(m)
	res := e.Generate(fault.Fault{Signal: y, Gate: netlist.None, Pin: -1, Stuck: logic.One}, 10000)
	if res.Status != Redundant {
		t.Errorf("y s-a-1 verdict = %v", res.Status)
	}
}

func TestPodemWithFixedInputs(t *testing.T) {
	// Fixing b=0 makes z = AND(a, b) constant 0: a-side faults become
	// untestable under the constraint while b s-a-1 becomes testable
	// only through... actually z s-a-0 is undetectable.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`
	c, err := bench.ParseString(src, "fix")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c.Lookup("b")
	z, _ := c.Lookup("z")
	a, _ := c.Lookup("a")
	fixed := map[netlist.SignalID]logic.V{b: logic.Zero}
	m, _ := NewModel(c, fixed)
	e := NewEngine(m)

	// z s-a-0: good z is always 0 under b=0 -> redundant.
	res := e.Generate(fault.Fault{Signal: z, Gate: netlist.None, Pin: -1, Stuck: logic.Zero}, 1000)
	if res.Status != Redundant {
		t.Errorf("z s-a-0 with b fixed 0: %v, want redundant", res.Status)
	}
	// z s-a-1: good z = 0 always, faulty 1 -> detectable with any input.
	res = e.Generate(fault.Fault{Signal: z, Gate: netlist.None, Pin: -1, Stuck: logic.One}, 1000)
	if res.Status != Found {
		t.Errorf("z s-a-1 with b fixed 0: %v, want found", res.Status)
	}
	// b s-a-1: activated by the fixed 0; needs a=1 to propagate.
	res = e.Generate(fault.Fault{Signal: b, Gate: netlist.None, Pin: -1, Stuck: logic.One}, 1000)
	if res.Status != Found {
		t.Errorf("b s-a-1 with b fixed 0: %v, want found", res.Status)
	}
	if res.Assignment[a] != logic.One {
		t.Errorf("b s-a-1 test assigns a=%v, want 1", res.Assignment[a])
	}
	// a s-a-0: can never propagate through b=0 -> redundant.
	res = e.Generate(fault.Fault{Signal: a, Gate: netlist.None, Pin: -1, Stuck: logic.Zero}, 1000)
	if res.Status != Redundant {
		t.Errorf("a s-a-0 with b fixed 0: %v, want redundant", res.Status)
	}
}

func TestPodemBranchFault(t *testing.T) {
	// Reconvergent fanout: stem testable both ways, branches
	// individually targetable.
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
y = AND(a, b)
z = OR(a, c)
`
	cc, err := bench.ParseString(src, "br")
	if err != nil {
		t.Fatal(err)
	}
	a, _ := cc.Lookup("a")
	yg, _ := cc.Lookup("y")
	m, _ := NewModel(cc, nil)
	e := NewEngine(m)
	f := fault.Fault{Signal: a, Gate: yg, Pin: 0, Stuck: logic.Zero}
	res := e.Generate(f, 1000)
	if res.Status != Found {
		t.Fatalf("branch fault not found: %v", res.Status)
	}
	if !detects(cc, nil, res.Assignment, f) {
		t.Error("branch fault vector does not detect")
	}
}

func TestPodemOnS27CombModel(t *testing.T) {
	orig := bench.MustS27()
	cm, err := BuildCombModel(orig)
	if err != nil {
		t.Fatal(err)
	}
	// All collapsed faults of the original circuit, mapped to the model.
	m, _ := NewModel(cm.C, nil)
	e := NewEngine(m)
	found, redundant, aborted := 0, 0, 0
	for _, f0 := range fault.Collapsed(orig) {
		f := cm.MapFault(f0)
		res := e.Generate(f, 10000)
		switch res.Status {
		case Found:
			found++
			if !detects(cm.C, nil, res.Assignment, f) {
				t.Errorf("vector for %s fails simulation", f.Describe(cm.C))
			}
		case Redundant:
			redundant++
			if exhaustivelyTestable(cm.C, nil, f) {
				t.Errorf("false redundancy claim for %s", f.Describe(cm.C))
			}
		case Aborted:
			aborted++
		}
	}
	// s27's full-scan model is fully testable.
	if redundant != 0 || aborted != 0 {
		t.Errorf("s27 comb model: found=%d redundant=%d aborted=%d", found, redundant, aborted)
	}
}

func TestCombModelShape(t *testing.T) {
	orig := bench.MustS27()
	cm, err := BuildCombModel(orig)
	if err != nil {
		t.Fatal(err)
	}
	st := cm.C.Stat()
	if st.FFs != 0 {
		t.Error("comb model still has FFs")
	}
	if st.Inputs != 4+3 {
		t.Errorf("model inputs = %d, want 7", st.Inputs)
	}
	if st.Outputs != 1+3 {
		t.Errorf("model outputs = %d, want 4", st.Outputs)
	}
	// Signal IDs preserved.
	for id := netlist.SignalID(0); int(id) < len(orig.Signals); id++ {
		if orig.NameOf(id) != cm.C.NameOf(id) {
			t.Fatalf("signal %d renamed: %s vs %s", id, orig.NameOf(id), cm.C.NameOf(id))
		}
	}
}

func TestMapFaultFFBranch(t *testing.T) {
	orig := bench.MustS27()
	cm, _ := BuildCombModel(orig)
	g10, _ := orig.Lookup("G10")
	g5, _ := orig.Lookup("G5") // G5 = DFF(G10)
	f := fault.Fault{Signal: g10, Gate: g5, Pin: 0, Stuck: logic.One}
	mf := cm.MapFault(f)
	if mf.Gate != cm.DBuf[g5] || mf.Signal != g10 {
		t.Errorf("FF branch fault mapped to %+v", mf)
	}
	stem := fault.Fault{Signal: g10, Gate: netlist.None, Pin: -1, Stuck: logic.One}
	if cm.MapFault(stem) != stem {
		t.Error("stem fault changed by mapping")
	}
}

func TestModelRejectsSequential(t *testing.T) {
	if _, err := NewModel(bench.MustS27(), nil); err == nil {
		t.Error("NewModel accepted a sequential circuit")
	}
}

func TestFreeInputs(t *testing.T) {
	c, _ := bench.ParseString("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "f")
	b, _ := c.Lookup("b")
	m, _ := NewModel(c, map[netlist.SignalID]logic.V{b: logic.One})
	free := m.FreeInputs()
	if len(free) != 1 || c.NameOf(free[0]) != "a" {
		t.Errorf("free inputs = %v", free)
	}
}
