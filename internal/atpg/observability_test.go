package atpg

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/logic"
	"repro/internal/netlist"
)

func TestObservabilityBasics(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
g = AND(a, b)
y = OR(g, c)
`
	cc, err := bench.ParseString(src, "obs")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(cc, nil)
	co := Observability(m)
	y, _ := cc.Lookup("y")
	g, _ := cc.Lookup("g")
	a, _ := cc.Lookup("a")
	ci, _ := cc.Lookup("c")
	if co[y] != 0 {
		t.Errorf("output observability %d", co[y])
	}
	// g through OR: co[y] + cc0(c) + 1 = 0+1+1 = 2.
	if co[g] != 2 {
		t.Errorf("co[g] = %d, want 2", co[g])
	}
	// a through AND: co[g] + cc1(b) + 1 = 2+1+1 = 4.
	if co[a] != 4 {
		t.Errorf("co[a] = %d, want 4", co[a])
	}
	// c through OR: co[y] + cc0(g) + 1 = 0+2+1 = 3.
	if co[ci] != 3 {
		t.Errorf("co[c] = %d, want 3", co[ci])
	}
}

func TestObservabilityUnreachable(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = NOT(a)
dead = NOT(b)
z = AND(dead, a)
`
	cc, err := bench.ParseString(src, "dead")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(cc, nil)
	co := Observability(m)
	z, _ := cc.Lookup("z")
	dead, _ := cc.Lookup("dead")
	if co[z] < ccInf || co[dead] < ccInf {
		t.Errorf("dead logic observable: z=%d dead=%d", co[z], co[dead])
	}
}

func TestObservabilityWithFixedSide(t *testing.T) {
	src := `
INPUT(a)
INPUT(en)
OUTPUT(y)
y = AND(a, en)
`
	cc, err := bench.ParseString(src, "gate")
	if err != nil {
		t.Fatal(err)
	}
	en, _ := cc.Lookup("en")
	a, _ := cc.Lookup("a")
	// en pinned to 0: a becomes unobservable (the gate is blocked).
	m, _ := NewModel(cc, map[netlist.SignalID]logic.V{en: logic.Zero})
	co := Observability(m)
	if co[a] < ccInf {
		t.Errorf("blocked input observable: %d", co[a])
	}
	// en pinned to 1: a observable cheaply.
	m2, _ := NewModel(cc, map[netlist.SignalID]logic.V{en: logic.One})
	co2 := Observability(m2)
	if co2[a] != 1 {
		t.Errorf("co[a] with en=1: %d, want 1", co2[a])
	}
}

func TestAnalyzeHardest(t *testing.T) {
	c := bench.MustS27()
	cm, err := BuildCombModel(c)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := NewModel(cm.C, nil)
	ta := Analyze(m)
	hardest := ta.Hardest(cm.C, 3)
	if len(hardest) != 3 {
		t.Fatalf("hardest returned %d", len(hardest))
	}
	// Costs must be non-increasing.
	cost := func(id netlist.SignalID) int64 {
		return min64(ta.CC0[id], ta.CC1[id]) + ta.CO[id]
	}
	for i := 1; i < len(hardest); i++ {
		if cost(hardest[i]) > cost(hardest[i-1]) {
			t.Error("hardest not sorted by cost")
		}
	}
}
