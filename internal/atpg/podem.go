// Package atpg implements PODEM, a complete combinational automatic
// test-pattern generator, over a dual-machine (fault-free / faulty)
// three-valued simulation with event-driven implication.
//
// The engine runs on a purely combinational circuit (no flip-flops);
// sequential circuits are first mapped with CombModel (flip-flop outputs
// become assignable pseudo-inputs, flip-flop D pins become observable
// pseudo-outputs) or unrolled by the seqatpg package. Inputs whose value
// is pinned by test point insertion are supplied as fixed assignments and
// never used as decision variables.
package atpg

import (
	"context"
	"fmt"
	"unsafe"

	"repro/internal/fault"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Status is the outcome of a PODEM run for one fault.
type Status int

// PODEM outcomes.
const (
	// Found: a test vector was generated.
	Found Status = iota
	// Redundant: the search space was exhausted, proving the fault
	// untestable in this combinational model (and therefore, for the
	// scan-mode model, sequentially undetectable — see the paper §4).
	Redundant
	// Aborted: the backtrack limit was reached before a decision.
	Aborted
)

func (s Status) String() string {
	switch s {
	case Found:
		return "found"
	case Redundant:
		return "redundant"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Result of generating a test for one fault.
type Result struct {
	Status     Status
	Assignment map[netlist.SignalID]logic.V // assigned free inputs (others X)
	Backtracks int
}

// Model is the combinational ATPG view: the circuit must contain no
// flip-flops; Fixed pins inputs to constant values (TPI assignments and
// scan_mode=1), all remaining inputs are decision variables.
type Model struct {
	C     *netlist.Circuit
	Fixed map[netlist.SignalID]logic.V
}

// NewModel validates that c is combinational and builds a model.
func NewModel(c *netlist.Circuit, fixed map[netlist.SignalID]logic.V) (*Model, error) {
	if len(c.FFs) != 0 {
		return nil, fmt.Errorf("atpg: model circuit %q contains flip-flops", c.Name)
	}
	if !c.Finalized() {
		return nil, fmt.Errorf("atpg: model circuit %q not finalized", c.Name)
	}
	return &Model{C: c, Fixed: fixed}, nil
}

// FreeInputs returns the decision inputs (inputs not fixed), in input
// order.
func (m *Model) FreeInputs() []netlist.SignalID {
	var free []netlist.SignalID
	for _, in := range m.C.Inputs {
		if _, ok := m.Fixed[in]; !ok {
			free = append(free, in)
		}
	}
	return free
}

// Engine is a reusable PODEM engine for one model. Not safe for
// concurrent use.
type Engine struct {
	m    *Model
	c    *netlist.Circuit
	good []logic.V
	flty []logic.V

	// Injection sites: a plain fault has one; a time-frame-expanded
	// fault has one per frame (the same physical defect replicated).
	injs     []sim.Inject
	stemInj  map[netlist.SignalID]logic.V
	brInj    map[netlist.SignalID][]sim.Inject // keyed by consuming gate
	obsDist  []int32
	buckets  [][]netlist.SignalID
	inQueue  []bool
	maxLevel int

	// Fault cone: only signals downstream of an injection site can be
	// D-frontier members or observe the fault; restricting the frontier
	// and observation scans to the cone keeps each PODEM iteration
	// proportional to the fault's region, not the whole model.
	coneGates   []netlist.SignalID // gates in the cone, topological order
	coneOutputs []netlist.SignalID // observation points in the cone
	inCone      []bool
	isOut       []bool // cone observation points, indexed by signal

	// SCOAP controllability per signal (computed once per model).
	cc0, cc1 []int64

	// Epoch-tagged scratch for xPathExists.
	seenEpoch []uint32
	epoch     uint32

	// Reused traversal scratch: the D-frontier of the current iteration,
	// the xPathExists DFS stack and the buildCone DFS stack. Kept on the
	// engine so the search loop never allocates per iteration.
	frontier  []netlist.SignalID
	xstack    []netlist.SignalID
	coneStack []netlist.SignalID

	// decision stack
	stack []decision

	// Observability sinks (nil-safe no-ops until Instrument is called).
	// They are touched once per Generate call, never inside the search
	// loop, so an uninstrumented engine pays only nil-receiver checks.
	obs engineObs
}

// engineObs holds the per-engine metric sinks. The zero value (all nil)
// is the disabled state.
type engineObs struct {
	generated  *obs.Counter
	found      *obs.Counter
	redundant  *obs.Counter
	aborted    *obs.Counter
	backtracks *obs.Counter
	hist       *obs.Histogram
}

// Instrument attaches the engine to a collector: every Generate /
// GenerateMulti call then records its outcome under prefix.* —
// generated, found, redundant and aborted call counts, a cumulative
// backtracks counter, and a backtracks histogram. A nil collector
// leaves the engine uninstrumented.
func (e *Engine) Instrument(col *obs.Collector, prefix string) {
	if !col.Enabled() {
		return
	}
	e.obs = engineObs{
		generated:  col.Counter(prefix + ".generated"),
		found:      col.Counter(prefix + ".found"),
		redundant:  col.Counter(prefix + ".redundant"),
		aborted:    col.Counter(prefix + ".aborted"),
		backtracks: col.Counter(prefix + ".backtracks"),
		hist:       col.Histogram(prefix + ".backtracks"),
	}
}

// record notes one completed generation attempt.
func (eo *engineObs) record(res *Result) {
	eo.generated.Inc()
	eo.backtracks.Add(int64(res.Backtracks))
	eo.hist.Observe(int64(res.Backtracks))
	switch res.Status {
	case Found:
		eo.found.Inc()
	case Redundant:
		eo.redundant.Inc()
	case Aborted:
		eo.aborted.Inc()
	}
}

type decision struct {
	pi        netlist.SignalID
	value     logic.V
	triedBoth bool
}

// Tables bundles the search-guidance structures PODEM derives once per
// (circuit, fixed-assignment) model: SCOAP 0/1 controllability per
// signal and the minimum gate-hop distance to an observation point.
// They are immutable after construction, depend only on the model (not
// on any fault), and are safe to share across engines and goroutines —
// the engine-layer artifact cache memoizes one Tables per model so
// step-2 and step-3 engines on the same scan-mode model stop recomputing
// them.
type Tables struct {
	CC0, CC1 []int64
	ObsDist  []int32
}

// SizeBytes estimates the tables' resident footprint for byte-budgeted
// caches (the engine layer memoizes one Tables per distinct fixed
// assignment).
func (t *Tables) SizeBytes() int64 {
	return int64(unsafe.Sizeof(*t)) +
		int64(cap(t.CC0)+cap(t.CC1))*8 +
		int64(cap(t.ObsDist))*4
}

// NewTables computes the SCOAP controllability and observation-distance
// tables for m.
func NewTables(m *Model) *Tables {
	t := &Tables{ObsDist: observationDistance(m.C)}
	t.CC0, t.CC1 = controllability(m)
	return t
}

// NewEngine builds an engine for m, computing fresh search tables.
func NewEngine(m *Model) *Engine {
	return NewEngineTables(m, NewTables(m))
}

// NewEngineTables builds an engine for m reusing precomputed search
// tables (which must have been built with NewTables on the same model).
// The engine only reads the tables, so any number of engines can share
// one Tables value.
func NewEngineTables(m *Model, t *Tables) *Engine {
	c := m.C
	e := &Engine{
		m:       m,
		c:       c,
		good:    make([]logic.V, len(c.Signals)),
		flty:    make([]logic.V, len(c.Signals)),
		inQueue: make([]bool, len(c.Signals)),
		stemInj: make(map[netlist.SignalID]logic.V),
		brInj:   make(map[netlist.SignalID][]sim.Inject),
		inCone:  make([]bool, len(c.Signals)),
		isOut:   make([]bool, len(c.Signals)),

		seenEpoch: make([]uint32, len(c.Signals)),
	}
	for _, l := range c.Level {
		if l > e.maxLevel {
			e.maxLevel = l
		}
	}
	e.buckets = make([][]netlist.SignalID, e.maxLevel+1)
	e.obsDist = t.ObsDist
	e.cc0, e.cc1 = t.CC0, t.CC1
	return e
}

// ccInf is the saturation value for uncontrollable signals.
const ccInf = int64(1) << 40

// controllability computes SCOAP-style combinational 0/1
// controllability per signal, honouring fixed inputs (a pinned input is
// free to its pinned value and uncontrollable to the other; an input
// pinned to X is uncontrollable entirely). Backtrace uses these to pick
// cheap inputs when one controlling value suffices and hard inputs when
// every input must be justified.
func controllability(m *Model) (cc0, cc1 []int64) {
	c := m.C
	cc0 = make([]int64, len(c.Signals))
	cc1 = make([]int64, len(c.Signals))
	sat := func(a, b int64) int64 {
		s := a + b
		if s > ccInf {
			return ccInf
		}
		return s
	}
	for _, in := range c.Inputs {
		switch v, fixed := m.Fixed[in]; {
		case !fixed:
			cc0[in], cc1[in] = 1, 1
		case v == logic.Zero:
			cc0[in], cc1[in] = 0, ccInf
		case v == logic.One:
			cc0[in], cc1[in] = ccInf, 0
		default: // pinned X: uncontrollable
			cc0[in], cc1[in] = ccInf, ccInf
		}
	}
	for _, g := range c.Order {
		s := &c.Signals[g]
		switch s.Op {
		case logic.OpBuf:
			cc0[g], cc1[g] = sat(cc0[s.Fanin[0]], 1), sat(cc1[s.Fanin[0]], 1)
		case logic.OpNot:
			cc0[g], cc1[g] = sat(cc1[s.Fanin[0]], 1), sat(cc0[s.Fanin[0]], 1)
		case logic.OpConst0:
			cc0[g], cc1[g] = 0, ccInf
		case logic.OpConst1:
			cc0[g], cc1[g] = ccInf, 0
		case logic.OpAnd, logic.OpNand, logic.OpOr, logic.OpNor:
			ctrl, _ := s.Op.Controlling()
			// Cost of the controlled output: cheapest controlling input.
			// Cost of the other value: all inputs non-controlling.
			ctrlCost, allCost := ccInf, int64(0)
			for _, f := range s.Fanin {
				cCtrl, cNon := cc0[f], cc1[f]
				if ctrl == logic.One {
					cCtrl, cNon = cc1[f], cc0[f]
				}
				if cCtrl < ctrlCost {
					ctrlCost = cCtrl
				}
				allCost = sat(allCost, cNon)
			}
			ctrlCost = sat(ctrlCost, 1)
			allCost = sat(allCost, 1)
			controlledOut := ctrl
			if s.Op.Inverting() {
				controlledOut = ctrl.Not()
			}
			if controlledOut == logic.Zero {
				cc0[g], cc1[g] = ctrlCost, allCost
			} else {
				cc1[g], cc0[g] = ctrlCost, allCost
			}
		case logic.OpXor, logic.OpXnor:
			// Fold pairwise.
			a0, a1 := int64(0), ccInf // accumulator starts at constant 0
			for i, f := range s.Fanin {
				b0, b1 := cc0[f], cc1[f]
				if i == 0 {
					a0, a1 = b0, b1
					continue
				}
				n0 := min64(sat(a0, b0), sat(a1, b1))
				n1 := min64(sat(a0, b1), sat(a1, b0))
				a0, a1 = n0, n1
			}
			if s.Op == logic.OpXnor {
				a0, a1 = a1, a0
			}
			cc0[g], cc1[g] = sat(a0, 1), sat(a1, 1)
		}
	}
	return cc0, cc1
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// cc returns the controllability cost of setting signal s to v.
func (e *Engine) cc(s netlist.SignalID, v logic.V) int64 {
	if v == logic.Zero {
		return e.cc0[s]
	}
	return e.cc1[s]
}

// observationDistance computes, per signal, the minimum number of gate
// hops to any primary output (used to rank D-frontier gates).
func observationDistance(c *netlist.Circuit) []int32 {
	const inf = int32(1) << 30
	dist := make([]int32, len(c.Signals))
	for i := range dist {
		dist[i] = inf
	}
	queue := make([]netlist.SignalID, 0, len(c.Outputs))
	for _, o := range c.Outputs {
		if dist[o] != 0 {
			dist[o] = 0
			queue = append(queue, o)
		}
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, f := range c.Signals[s].Fanin {
			if dist[f] > dist[s]+1 {
				dist[f] = dist[s] + 1
				queue = append(queue, f)
			}
		}
	}
	return dist
}

// Generate runs PODEM for fault f with the given backtrack limit.
func (e *Engine) Generate(f fault.Fault, backtrackLimit int) Result {
	return e.GenerateMulti([]sim.Inject{f.Inject()}, backtrackLimit)
}

// GenerateCtx is Generate with cooperative cancellation: the search
// checks ctx at backtrack boundaries and, once cancelled, returns an
// Aborted result together with the context error. A nil context (or a
// context that never fires) makes it exactly Generate.
func (e *Engine) GenerateCtx(ctx context.Context, f fault.Fault, backtrackLimit int) (Result, error) {
	return e.GenerateMultiCtx(ctx, []sim.Inject{f.Inject()}, backtrackLimit)
}

// GenerateMulti runs PODEM for a fault present at several injection
// sites simultaneously — the time-frame-expansion case, where one
// physical defect appears once per unrolled frame. A test is found when
// any site activates and its effect reaches an output.
func (e *Engine) GenerateMulti(injs []sim.Inject, backtrackLimit int) Result {
	res, _ := e.generateMulti(nil, injs, backtrackLimit)
	e.obs.record(&res)
	return res
}

// GenerateMultiCtx is GenerateMulti with the cancellation semantics of
// GenerateCtx.
func (e *Engine) GenerateMultiCtx(ctx context.Context, injs []sim.Inject, backtrackLimit int) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{Status: Aborted}, err
		}
	}
	res, cancelled := e.generateMulti(ctx, injs, backtrackLimit)
	e.obs.record(&res)
	if cancelled {
		return res, ctx.Err()
	}
	return res, nil
}

// ctxCheckMask throttles cancellation polling: the context is consulted
// once every ctxCheckMask+1 backtracks, keeping the check off the
// per-decision path while still bounding the post-cancel latency to a
// handful of backtracks.
const ctxCheckMask = 15

func (e *Engine) generateMulti(ctx context.Context, injs []sim.Inject, backtrackLimit int) (res Result, cancelled bool) {
	e.loadFault(injs)
	e.reset()

	backtracks := 0
	for {
		e.drain()
		if e.observedD() {
			return Result{Status: Found, Assignment: e.assignment(), Backtracks: backtracks}, false
		}
		frontier := e.dFrontier()
		ok := e.feasible(frontier)
		if ok {
			obj, objOK := e.objective(frontier)
			if objOK {
				pi, v, btOK := e.backtrace(obj.sig, obj.val)
				if btOK {
					e.stack = append(e.stack, decision{pi: pi, value: v})
					e.assign(pi, v)
					continue
				}
			}
			ok = false
		}
		// Dead end: backtrack.
		flipped := false
		for len(e.stack) > 0 {
			top := &e.stack[len(e.stack)-1]
			if !top.triedBoth {
				top.triedBoth = true
				top.value = top.value.Not()
				e.assign(top.pi, top.value)
				backtracks++
				flipped = true
				break
			}
			e.assign(top.pi, logic.X)
			e.stack = e.stack[:len(e.stack)-1]
		}
		if !flipped {
			return Result{Status: Redundant, Backtracks: backtracks}, false
		}
		if backtracks > backtrackLimit {
			return Result{Status: Aborted, Backtracks: backtracks}, false
		}
		if ctx != nil && backtracks&ctxCheckMask == 0 && ctx.Err() != nil {
			return Result{Status: Aborted, Backtracks: backtracks}, true
		}
	}
}

type objectiveT struct {
	sig netlist.SignalID
	val logic.V
}

func (e *Engine) loadFault(injs []sim.Inject) {
	e.injs = append(e.injs[:0], injs...)
	clear(e.stemInj)
	clear(e.brInj)
	for _, in := range injs {
		if in.IsStem() {
			e.stemInj[in.Signal] = in.Value
		} else {
			e.brInj[in.Gate] = append(e.brInj[in.Gate], in)
		}
	}
	e.stack = e.stack[:0]
	e.buildCone()
}

// buildCone collects the fanout cone of every injection site: the only
// region where fault effects can live.
func (e *Engine) buildCone() {
	for i := range e.inCone {
		e.inCone[i] = false
		e.isOut[i] = false
	}
	e.coneGates = e.coneGates[:0]
	e.coneOutputs = e.coneOutputs[:0]
	stack := e.coneStack[:0]
	push := func(s netlist.SignalID) {
		if !e.inCone[s] {
			e.inCone[s] = true
			stack = append(stack, s)
		}
	}
	for _, in := range e.injs {
		if in.IsStem() {
			push(in.Signal)
		} else {
			push(in.Gate)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, fo := range e.c.Fanouts[s] {
			push(fo)
		}
	}
	e.coneStack = stack[:0]
	// Cone gates in global topological order keeps frontier iteration
	// deterministic.
	for _, g := range e.c.Order {
		if e.inCone[g] {
			e.coneGates = append(e.coneGates, g)
		}
	}
	for _, o := range e.c.Outputs {
		if e.inCone[o] && !e.isOut[o] {
			e.isOut[o] = true
			e.coneOutputs = append(e.coneOutputs, o)
		}
	}
}

// reset initializes values: everything X, fixed inputs assigned, full
// propagation.
func (e *Engine) reset() {
	for i := range e.good {
		e.good[i] = logic.X
		e.flty[i] = logic.X
	}
	for i := range e.inQueue {
		e.inQueue[i] = false
	}
	for i := range e.buckets {
		e.buckets[i] = e.buckets[i][:0]
	}
	for _, in := range e.c.Inputs {
		v, fixed := e.m.Fixed[in]
		if !fixed {
			v = logic.X
		}
		e.setInput(in, v)
	}
	e.drain()
}

// setInput writes an input value into both machines (honouring a stem
// fault on the input in the faulty machine) and schedules its fanout.
func (e *Engine) setInput(in netlist.SignalID, v logic.V) {
	e.good[in] = v
	fv := v
	if sv, ok := e.stemInj[in]; ok {
		fv = sv
	}
	e.flty[in] = fv
	for _, fo := range e.c.Fanouts[in] {
		e.schedule(fo)
	}
}

func (e *Engine) assign(pi netlist.SignalID, v logic.V) {
	e.setInput(pi, v)
}

func (e *Engine) schedule(s netlist.SignalID) {
	if e.c.Signals[s].Kind != netlist.KindGate || e.inQueue[s] {
		return
	}
	e.inQueue[s] = true
	lvl := e.c.Level[s]
	e.buckets[lvl] = append(e.buckets[lvl], s)
}

// drain runs event-driven levelized propagation until stable.
func (e *Engine) drain() {
	var gbuf, fbuf [12]logic.V
	for lvl := 1; lvl <= e.maxLevel; lvl++ {
		bucket := e.buckets[lvl]
		for i := 0; i < len(bucket); i++ {
			g := bucket[i]
			e.inQueue[g] = false
			s := &e.c.Signals[g]
			gin := gbuf[:0]
			fin := fbuf[:0]
			for _, f := range s.Fanin {
				gin = append(gin, e.good[f])
				fin = append(fin, e.flty[f])
			}
			for _, br := range e.brInj[g] {
				fin[br.Pin] = br.Value
			}
			gv := s.Op.Eval(gin)
			fv := s.Op.Eval(fin)
			if sv, ok := e.stemInj[g]; ok {
				fv = sv
			}
			if gv != e.good[g] || fv != e.flty[g] {
				e.good[g] = gv
				e.flty[g] = fv
				for _, fo := range e.c.Fanouts[g] {
					e.schedule(fo)
				}
			}
		}
		e.buckets[lvl] = e.buckets[lvl][:0]
	}
}

// hasD reports whether signal s carries a fault effect (definite and
// different in the two machines).
func (e *Engine) hasD(s netlist.SignalID) bool {
	return e.good[s].Known() && e.flty[s].Known() && e.good[s] != e.flty[s]
}

// observedD reports whether any primary output carries a fault effect.
func (e *Engine) observedD() bool {
	for _, o := range e.coneOutputs {
		if e.hasD(o) {
			return true
		}
	}
	return false
}

// activated reports whether some injection site currently sees opposite
// definite values in the two machines.
func (e *Engine) activated() bool {
	for _, in := range e.injs {
		gv := e.good[in.Signal]
		if gv.Known() && gv != in.Value {
			return true
		}
	}
	return false
}

// activationPending reports whether some site could still activate (its
// source value is undetermined).
func (e *Engine) activationPending() bool {
	for _, in := range e.injs {
		if e.good[in.Signal] == logic.X {
			return true
		}
	}
	return false
}

// feasible checks whether the current partial assignment can still lead
// to a test: either some site can still activate, or an activated
// effect has a D-frontier with an X-path to an output.
func (e *Engine) feasible(frontier []netlist.SignalID) bool {
	if e.activated() {
		if len(frontier) > 0 && e.xPathExists(frontier) {
			return true
		}
	}
	return e.activationPending()
}

// dFrontier returns gates with a fault effect on an input and an
// undetermined output, scanning only the fault cone. The returned slice
// is engine-owned scratch, valid until the next call.
func (e *Engine) dFrontier() []netlist.SignalID {
	frontier := e.frontier[:0]
	for _, g := range e.coneGates {
		if e.good[g].Known() && e.flty[g].Known() {
			continue
		}
		s := &e.c.Signals[g]
		for pin, f := range s.Fanin {
			gv, fv := e.good[f], e.flty[f]
			for _, br := range e.brInj[g] {
				if br.Pin == pin {
					fv = br.Value
				}
			}
			if gv.Known() && fv.Known() && gv != fv {
				frontier = append(frontier, g)
				break
			}
		}
	}
	e.frontier = frontier
	return frontier
}

// xPathExists reports whether some frontier gate reaches an output
// through signals undetermined in at least one machine.
func (e *Engine) xPathExists(frontier []netlist.SignalID) bool {
	e.epoch++
	ep := e.epoch
	stack := append(e.xstack[:0], frontier...)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.seenEpoch[s] == ep {
			continue
		}
		e.seenEpoch[s] = ep
		if e.isOutput(s) {
			e.xstack = stack[:0]
			return true
		}
		for _, fo := range e.c.Fanouts[s] {
			if e.seenEpoch[fo] != ep && (!e.good[fo].Known() || !e.flty[fo].Known()) {
				stack = append(stack, fo)
			}
		}
	}
	e.xstack = stack[:0]
	return false
}

func (e *Engine) isOutput(s netlist.SignalID) bool { return e.isOut[s] }

// objective picks the next (signal, value) goal: activate the fault if
// not yet activated, otherwise advance the best D-frontier gate by
// setting one of its undetermined side inputs to the non-controlling
// value.
func (e *Engine) objective(frontier []netlist.SignalID) (objectiveT, bool) {
	if !e.activated() || len(frontier) == 0 {
		// Work on activating a pending site.
		for _, in := range e.injs {
			if e.good[in.Signal] == logic.X {
				return objectiveT{sig: in.Signal, val: in.Value.Not()}, true
			}
		}
		return objectiveT{}, false
	}
	best := frontier[0]
	for _, g := range frontier[1:] {
		if e.obsDist[g] < e.obsDist[best] {
			best = g
		}
	}
	s := &e.c.Signals[best]
	nc, hasNC := s.Op.NonControlling()
	pick := netlist.None
	for _, f := range s.Fanin {
		if e.good[f] != logic.X {
			continue
		}
		if !hasNC {
			return objectiveT{sig: f, val: logic.Zero}, true // XOR/XNOR side: any definite value
		}
		if pick == netlist.None || e.cc(f, nc) < e.cc(pick, nc) {
			pick = f
		}
	}
	if pick == netlist.None {
		return objectiveT{}, false
	}
	return objectiveT{sig: pick, val: nc}, true
}

// backtrace maps an objective back to an unassigned decision input,
// choosing easy (minimum level) inputs when a single controlling value
// suffices and hard (maximum level) inputs when all inputs must be set.
func (e *Engine) backtrace(sig netlist.SignalID, val logic.V) (netlist.SignalID, logic.V, bool) {
	for {
		s := &e.c.Signals[sig]
		if s.Kind == netlist.KindInput {
			if _, fixed := e.m.Fixed[sig]; fixed {
				return netlist.None, logic.X, false
			}
			if e.good[sig] != logic.X {
				return netlist.None, logic.X, false
			}
			return sig, val, true
		}
		op := s.Op
		switch op {
		case logic.OpBuf:
			sig = s.Fanin[0]
		case logic.OpNot:
			sig = s.Fanin[0]
			val = val.Not()
		case logic.OpConst0, logic.OpConst1:
			return netlist.None, logic.X, false
		case logic.OpXor, logic.OpXnor:
			// Target the first undetermined input; required value assumes
			// remaining X inputs resolve to 0.
			acc := logic.Zero
			var pick netlist.SignalID = netlist.None
			for _, f := range s.Fanin {
				if e.good[f] == logic.X && pick == netlist.None {
					pick = f
					continue
				}
				acc = acc.Xor(e.good[f])
			}
			if pick == netlist.None {
				return netlist.None, logic.X, false
			}
			want := val
			if op == logic.OpXnor {
				want = want.Not()
			}
			if acc.Known() {
				want = want.Xor(acc)
			}
			if !want.Known() {
				want = logic.Zero
			}
			sig, val = pick, want
		default:
			ctrl, _ := op.Controlling()
			inv := op.Inverting()
			controlledOut := ctrl
			if inv {
				controlledOut = ctrl.Not()
			}
			if val == controlledOut {
				// One controlling input suffices: pick the cheapest
				// (SCOAP) undetermined input.
				pick := netlist.None
				for _, f := range s.Fanin {
					if e.good[f] != logic.X {
						continue
					}
					if pick == netlist.None || e.cc(f, ctrl) < e.cc(pick, ctrl) {
						pick = f
					}
				}
				if pick == netlist.None {
					return netlist.None, logic.X, false
				}
				sig, val = pick, ctrl
			} else {
				// All inputs must be non-controlling: pick the hardest
				// (highest SCOAP cost) undetermined input first.
				pick := netlist.None
				nc := ctrl.Not()
				for _, f := range s.Fanin {
					if e.good[f] != logic.X {
						continue
					}
					if pick == netlist.None || e.cc(f, nc) > e.cc(pick, nc) {
						pick = f
					}
				}
				if pick == netlist.None {
					return netlist.None, logic.X, false
				}
				sig, val = pick, nc
			}
		}
	}
}

// assignment snapshots the current free-input assignment.
func (e *Engine) assignment() map[netlist.SignalID]logic.V {
	out := make(map[netlist.SignalID]logic.V, len(e.stack))
	for _, d := range e.stack {
		out[d.pi] = d.value
	}
	return out
}
