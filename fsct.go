// Package fsct is the public facade of the Functional Scan Chain Testing
// library — a Go reproduction of Chang, Lee, Cheng and Marek-Sadowska,
// "Functional Scan Chain Testing", DATE 1998.
//
// The library covers the whole stack the paper depends on:
//
//   - gate-level netlists and the ISCAS'89 .bench format,
//   - a deterministic generator for the paper's benchmark size profiles,
//   - three-valued (0/1/X) logic simulation, scalar and 64-way packed,
//   - the single stuck-at fault model with equivalence collapsing,
//   - parallel-fault sequential fault simulation,
//   - PODEM combinational ATPG and time-frame-expansion sequential ATPG,
//   - test point insertion (TPI) establishing functional scan paths,
//   - and the paper's three-step scan-chain testing methodology.
//
// Typical use:
//
//	c := fsct.GenerateCircuit(fsct.MustProfile("s5378").Scale(0.1), 1)
//	d, _ := fsct.InsertScan(c, fsct.ScanOptions{NumChains: 2})
//	rep, _ := fsct.RunFlow(d, fsct.FlowParams{})
//	fmt.Println(fsct.FormatReport(rep))
package fsct

import (
	"context"
	"encoding/json"
	"io"

	"repro/internal/atpg"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/diagnose"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/gen"
	"repro/internal/logic"
	"repro/internal/netlist"
	"repro/internal/scan"
	"repro/internal/task"
	"repro/internal/tpi"
)

// Re-exported core types. Aliases keep the internal packages as the
// single source of truth while giving library users one import.
type (
	// Circuit is a gate-level sequential netlist.
	Circuit = netlist.Circuit
	// Profile describes a benchmark size target.
	Profile = gen.Profile
	// Design is a circuit with functional scan inserted.
	Design = scan.Design
	// ScanOptions tunes test point insertion and chain construction.
	ScanOptions = tpi.Options
	// FlowParams tunes the three-step testing flow.
	FlowParams = core.Params
	// Report is the per-circuit outcome (Tables 1-3, Figure 5 data).
	Report = core.Report
	// StepStats aggregates one flow step's outcome within a Report.
	StepStats = core.StepStats
	// Fault is a single stuck-at fault.
	Fault = fault.Fault
	// Value is a three-valued logic value (V0, V1, VX).
	Value = logic.V
	// SignalID indexes a signal within a circuit.
	SignalID = netlist.SignalID
	// Screened is a fault together with its scan-chain screening verdict.
	Screened = core.Screened
	// Category classifies a fault's relation to the scan chain.
	Category = core.Category
	// Sequence is a per-cycle primary-input test sequence.
	Sequence = faultsim.Sequence
	// SimResult is the outcome of fault-simulating a sequence.
	SimResult = faultsim.Result
	// EvalBackend selects a simulation backend (EvalAuto, EvalCompiled,
	// EvalPacked, EvalScalar, EvalEvent, EvalHybrid).
	EvalBackend = engine.Backend
	// EngineCache memoizes per-circuit derived artifacts (compiled
	// programs, collapsed fault lists, combinational ATPG models and
	// SCOAP tables) across flow phases and library calls.
	EngineCache = engine.Cache
)

// Evaluator backends for SimOptions.Eval, ScreenOptions.Eval and
// FlowParams.Eval.
const (
	EvalAuto     = engine.Auto
	EvalCompiled = engine.Compiled
	EvalPacked   = engine.Packed
	EvalScalar   = engine.Scalar
	EvalEvent    = engine.Event
	EvalHybrid   = engine.Hybrid
)

// ParseEvalBackend maps a flag string (auto, compiled, packed, scalar,
// event, hybrid) to an EvalBackend.
func ParseEvalBackend(s string) (EvalBackend, error) { return engine.ParseBackend(s) }

// NewEngineCache returns an empty artifact cache. Passing nil wherever
// an *EngineCache is accepted selects the shared process-wide cache;
// NewEngineBypass returns a cache that never memoizes (every phase
// rebuilds its derived structures — the ablation reference).
func NewEngineCache() *EngineCache { return engine.New() }

// NewEngineBypass returns the never-memoizing cache; see NewEngineCache.
func NewEngineBypass() *EngineCache { return engine.Bypass() }

// Logic constants.
const (
	V0 = logic.Zero
	V1 = logic.One
	VX = logic.X
)

// Screening categories (paper Section 3): CatUnaffecting faults do not
// touch the chain, CatEasy (category 1) are caught by the alternating
// sequence, CatHard (category 2) need the paper's flow.
const (
	CatUnaffecting = core.Cat3
	CatEasy        = core.Cat1
	CatHard        = core.Cat2
)

// Suite returns the twelve ISCAS'89 size profiles of the paper's test
// suite.
func Suite() []Profile { return gen.Suite() }

// ProfileByName returns the named suite profile, or an error naming the
// valid choices when no profile matches.
func ProfileByName(name string) (Profile, error) { return gen.ProfileByName(name) }

// MustProfile returns the named suite profile or panics. Command-line
// tools (and anything else fed user input) should prefer ProfileByName
// and report the error.
func MustProfile(name string) Profile {
	p, err := gen.ProfileByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// GenerateCircuit builds the deterministic synthetic circuit for a
// profile.
func GenerateCircuit(p Profile, seed int64) *Circuit { return gen.Generate(p, seed) }

// S27 returns the embedded real ISCAS'89 s27 benchmark.
func S27() *Circuit { return bench.MustS27() }

// ParseBench reads a circuit in ISCAS'89 .bench format.
func ParseBench(r io.Reader, name string) (*Circuit, error) { return bench.Parse(r, name) }

// WriteBench writes a circuit in ISCAS'89 .bench format.
func WriteBench(w io.Writer, c *Circuit) error { return bench.Write(w, c) }

// InsertScan runs test point insertion and chain construction.
func InsertScan(c *Circuit, opts ScanOptions) (*Design, error) { return tpi.Insert(c, opts) }

// OptimizeScanOrdering tries several chain orderings (the freedom the
// paper leaves to the designer) and returns the design with the least
// inserted-gate overhead, the winning seed, and each candidate's cost.
func OptimizeScanOrdering(c *Circuit, opts ScanOptions, seeds []int64) (*Design, int64, []int, error) {
	return tpi.OptimizeOrdering(c, opts, seeds)
}

// SelectPartialScan chooses a feedback-breaking flip-flop subset for
// partial scan (in the spirit of the paper's reference [3], Cheng &
// Agrawal), topped up to at least minFraction of all flip-flops. Feed
// the result to ScanOptions.ScanFFs.
func SelectPartialScan(c *Circuit, minFraction float64) []netlist.SignalID {
	return tpi.SelectPartialScan(c, minFraction)
}

// RunFlow executes the paper's three-step methodology on a scan design.
func RunFlow(d *Design, p FlowParams) (*Report, error) { return core.Run(d, p) }

// RunFlowCtx is RunFlow with cooperative cancellation: when ctx fires
// the flow stops at the next fault-batch or ATPG-backtrack boundary and
// returns the partially filled report together with an error wrapping
// ctx.Err(). Use the report's populated phases; treat the rest as not
// run.
func RunFlowCtx(ctx context.Context, d *Design, p FlowParams) (*Report, error) {
	return core.RunCtx(ctx, d, p)
}

// CollapsedFaults returns the equivalence-collapsed stuck-at fault list
// of a circuit (the paper's "#faults").
func CollapsedFaults(c *Circuit) []Fault { return fault.Collapsed(c) }

// DominanceFaults returns the dominance-collapsed fault list: a smaller
// ATPG target set that preserves full stuck-at coverage (but not
// per-fault counting semantics — reports use CollapsedFaults).
func DominanceFaults(c *Circuit) []Fault { return fault.Dominance(c) }

// ScreenFaults runs the forward-implication screening (paper Section 3)
// of the given faults against a scan design with default options
// (compiled evaluator, GOMAXPROCS workers).
func ScreenFaults(d *Design, faults []Fault) []Screened { return core.Screen(d, faults) }

// ScreenOptions tunes the screening engine (worker count, evaluator
// backend).
type ScreenOptions = core.ScreenOptions

// ScreenFaultsOpt is ScreenFaults with explicit execution options.
func ScreenFaultsOpt(d *Design, faults []Fault, opts ScreenOptions) []Screened {
	return core.ScreenOpt(d, faults, opts)
}

// ScreenFaultsCtx is ScreenFaultsOpt with cooperative cancellation;
// faults whose batch never ran keep the unaffecting default in the
// partial result.
func ScreenFaultsCtx(ctx context.Context, d *Design, faults []Fault, opts ScreenOptions) ([]Screened, error) {
	return core.ScreenOptCtx(ctx, d, faults, opts)
}

// SimOptions tunes a fault-simulation run (initial state, early stop,
// worker count, evaluator backend).
type SimOptions = faultsim.Options

// SimulateFaults fault-simulates a test sequence against every fault (63
// faulty machines per packed pass) and reports first-detection cycles.
func SimulateFaults(c *Circuit, seq Sequence, faults []Fault) *SimResult {
	return faultsim.Run(c, seq, faults, faultsim.Options{})
}

// SimulateFaultsOpt is SimulateFaults with explicit execution options.
func SimulateFaultsOpt(c *Circuit, seq Sequence, faults []Fault, opts SimOptions) *SimResult {
	return faultsim.Run(c, seq, faults, opts)
}

// SimulateFaultsCtx is SimulateFaultsOpt with cooperative cancellation;
// detections recorded before the cancel are valid in the partial
// result, the remaining faults stay undetected.
func SimulateFaultsCtx(ctx context.Context, c *Circuit, seq Sequence, faults []Fault, opts SimOptions) (*SimResult, error) {
	return faultsim.RunCtx(ctx, c, seq, faults, opts)
}

// WriteSequence / ReadSequence persist test sequences in the simple
// text format of internal/faultsim (header naming inputs, one 0/1/X
// line per cycle).
func WriteSequence(w io.Writer, c *Circuit, seq Sequence) error {
	return faultsim.WriteSequence(w, c, seq)
}

// ReadSequence parses a sequence file for circuit c.
func ReadSequence(r io.Reader, c *Circuit) (Sequence, error) {
	return faultsim.ReadSequence(r, c)
}

// WriteVerilog exports the circuit as a structural gate-level Verilog
// module.
func WriteVerilog(w io.Writer, c *Circuit) error { return bench.WriteVerilog(w, c) }

// Dictionary is a response-signature fault dictionary for scan-chain
// diagnosis.
type Dictionary = diagnose.Dictionary

// BuildDictionary simulates the candidate faults against the default
// diagnostic sequences and indexes their response signatures.
func BuildDictionary(d *Design, faults []Fault, seed uint64) *Dictionary {
	return diagnose.Build(d, faults, diagnose.DefaultSequences(d, seed))
}

// BuildDictionaryOpt is BuildDictionary with the 63-fault simulation
// batches sharded across workers goroutines (0 = GOMAXPROCS); the
// dictionary is identical at any width.
func BuildDictionaryOpt(d *Design, faults []Fault, seed uint64, workers int) *Dictionary {
	return diagnose.BuildOpt(d, faults, diagnose.DefaultSequences(d, seed), workers)
}

// BuildDictionaryCtx is BuildDictionaryOpt with cooperative
// cancellation; discard the dictionary when the error is non-nil.
func BuildDictionaryCtx(ctx context.Context, d *Design, faults []Fault, seed uint64, workers int) (*Dictionary, error) {
	return diagnose.BuildOptCtx(ctx, d, faults, diagnose.DefaultSequences(d, seed), workers)
}

// BuildDictionaryObs is BuildDictionaryCtx instrumented through col:
// the build runs under a "dictionary" phase, its worker pool reports
// utilization as the "diagnose" pool, and with a journal attached both
// emit flight-recorder events. A nil collector makes it identical to
// BuildDictionaryCtx.
func BuildDictionaryObs(ctx context.Context, d *Design, faults []Fault, seed uint64, workers int, col *Collector) (*Dictionary, error) {
	sp := col.Phase("dictionary")
	defer sp.End()
	return diagnose.BuildObsCtx(ctx, d, faults, diagnose.DefaultSequences(d, seed), workers, col)
}

// ChainNets returns every on-path net of the design's chains.
func ChainNets(d *Design) []SignalID { return core.ChainNets(d) }

// ChainTransitionCoverage measures how the alternating shift test
// doubles as a two-pattern (transition fault) test for the chain links:
// detections over slow-to-rise/slow-to-fall faults on every on-path net.
func ChainTransitionCoverage(d *Design, extraCycles int) (detected, total int) {
	detected, total, _ = core.ChainTransitionCoverage(d, extraCycles)
	return detected, total
}

// ChainTransitionCoverageOpt is ChainTransitionCoverage with the fault
// axis sharded across workers goroutines (0 = GOMAXPROCS, 1 = serial).
func ChainTransitionCoverageOpt(d *Design, extraCycles, workers int) (detected, total int) {
	detected, total, _ = core.ChainTransitionCoverageOpt(d, extraCycles, workers)
	return detected, total
}

// ChainTransitionCoverageCtx is ChainTransitionCoverageOpt with
// cooperative cancellation; unsimulated faults count as undetected in
// the partial result.
func ChainTransitionCoverageCtx(ctx context.Context, d *Design, extraCycles, workers int) (detected, total int, err error) {
	detected, total, _, err = core.ChainTransitionCoverageCtx(ctx, d, extraCycles, workers)
	return detected, total, err
}

// CompactVectors statically compacts a step-2 vector set against a
// fault list, keeping only vectors that own detections (verified by
// re-simulation; coverage never drops).
func CompactVectors(d *Design, vectors []ScanVector, faults []Fault) core.CompactResult {
	return core.CompactVectors(d, vectors, faults)
}

// ScanVector is one scan-mode combinational test vector (flip-flop
// values to shift in plus free primary-input values).
type ScanVector = scan.Vector

// WriteReportJSON serializes a report (durations in nanoseconds).
func WriteReportJSON(w io.Writer, r *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Testability carries SCOAP controllability/observability measures.
type Testability = atpg.Testability

// AnalyzeTestability computes SCOAP measures for a circuit's
// combinational model under the given pinned inputs (nil for none).
// The combinational model and ATPG model come from the shared artifact
// cache, so analyzing a circuit the flow has already processed reuses
// its derived structures.
func AnalyzeTestability(c *Circuit, pinned map[SignalID]Value) (*Testability, *Circuit, error) {
	arts := engine.Default().For(c)
	cm, err := arts.CombModel()
	if err != nil {
		return nil, nil, err
	}
	m, _, err := arts.CombSearch(pinned)
	if err != nil {
		return nil, nil, err
	}
	return atpg.Analyze(m), cm.C, nil
}

// DefaultChains picks the chain count the experiments use: enough chains
// to keep the longest chain near 350 flip-flops, as the paper keeps
// chain length "reasonable" on the larger circuits. (The policy lives
// in the task layer so CLI and daemon defaults cannot drift.)
func DefaultChains(ffs int) int { return task.DefaultChains(ffs) }

// Task-layer re-exports: the canonical serializable Spec -> Plan ->
// Execute -> Merge pipeline every batch CLI and the fsctd daemon run
// on. See internal/task for the contract; library users get the same
// orchestration (and therefore byte-identical reports) through these
// aliases.
type (
	// TaskSpec is a serializable job description (kind, circuit
	// source, run options).
	TaskSpec = task.Spec
	// TaskUnit is one deterministic shard work-unit of a planned spec.
	TaskUnit = task.Unit
	// TaskPartial is the mergeable result of executing one unit.
	TaskPartial = task.Partial
	// TaskResult is a merged job outcome (report text, ledger extras,
	// per-kind data).
	TaskResult = task.Result
	// TaskDefaults is the per-kind option-defaults table.
	TaskDefaults = task.Defaults
)

// Job kinds accepted by TaskSpec.Kind.
const (
	TaskFlow     = task.KindFlow
	TaskScreen   = task.KindScreen
	TaskATPG     = task.KindATPG
	TaskFaultSim = task.KindFaultSim
	TaskDiagnose = task.KindDiagnose
)

// TaskDefaultsFor returns the option defaults for a job kind — the
// single table the CLI flags and the daemon's spec normalization share.
func TaskDefaultsFor(kind string) TaskDefaults { return task.DefaultsFor(kind) }

// PlanTask splits a spec into at most shards batch-aligned work-units;
// merging their results is byte-identical to a single-unit run.
func PlanTask(sp TaskSpec, shards int, cache *EngineCache) ([]TaskUnit, error) {
	return task.Plan(sp, shards, cache)
}

// ExecuteTask runs one work-unit and returns its mergeable partial.
func ExecuteTask(ctx context.Context, u TaskUnit, cache *EngineCache, col *Collector) (*TaskPartial, error) {
	return task.Execute(ctx, u, cache, col)
}

// MergeTask reassembles unit partials into the job result.
func MergeTask(sp TaskSpec, parts []*TaskPartial, interrupted bool) (*TaskResult, error) {
	return task.Merge(sp, parts, interrupted)
}

// RunTask executes a spec end to end in this process (Plan + Execute +
// Merge) — the path behind every batch CLI and daemon job.
func RunTask(ctx context.Context, sp TaskSpec, cache *EngineCache, col *Collector) (*TaskResult, error) {
	return task.Run(ctx, sp, cache, col)
}

// Experiment is one suite entry to reproduce: a profile at a scale, with
// seeded generation and scan insertion.
type Experiment struct {
	Profile Profile
	Scale   float64 // 0 or 1 = full size
	Chains  int     // 0 = DefaultChains
	Seed    int64
	Flow    FlowParams
}

// Run generates the circuit, inserts scan, and executes the flow.
func (e Experiment) Run() (*Report, *Design, error) {
	return e.RunCtx(nil)
}

// RunCtx is Run with cooperative cancellation: on cancel the partial
// report (possibly nil when the flow never started) is returned with
// the design and an error wrapping ctx.Err().
func (e Experiment) RunCtx(ctx context.Context) (*Report, *Design, error) {
	p := e.Profile
	if e.Scale > 0 && e.Scale < 1 {
		p = p.Scale(e.Scale)
	}
	c := gen.Generate(p, e.Seed)
	chains := e.Chains
	if chains == 0 {
		chains = DefaultChains(len(c.FFs))
	}
	d, err := tpi.Insert(c, tpi.Options{NumChains: chains, Seed: e.Seed})
	if err != nil {
		return nil, nil, err
	}
	rep, err := core.RunCtx(ctx, d, e.Flow)
	if err != nil {
		return rep, d, err
	}
	return rep, d, nil
}
