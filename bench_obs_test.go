package fsct

// Observability overhead guard. The obs layer's contract is that
// DISABLED instrumentation (the nil collector, the library default) is
// free on the hot paths: the compiled-evaluator screening and fault
// simulation engines pay only nil-receiver checks at batch granularity.
// The acceptance bound for this repo is <2% on the PR-1 compiled
// evaluator path; compare the off/on pairs below with benchstat:
//
//	go test -bench 'ObsOverhead' -count 10 > obs.txt
//	benchstat obs.txt   # off vs on, per engine
//
// The "on" variants additionally quantify what an enabled collector
// costs (they are allowed to be slower; they exist so a regression in
// the disabled path can't hide behind a cheap enabled path or vice
// versa).

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
)

// BenchmarkObsOverheadScreen measures the screening engine with
// instrumentation off (nil collector — the default) and on, at the
// serial width so the comparison is pure hot-loop cost, not scheduling
// noise.
func BenchmarkObsOverheadScreen(b *testing.B) {
	d := benchDesign(b, "s38584", 0)
	faults := CollapsedFaults(d.C)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1})
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1, Obs: NewCollector()})
		}
	})
}

// BenchmarkObsOverheadFaultSim measures compiled-evaluator sequential
// fault simulation of the alternating sequence with instrumentation
// off and on.
func BenchmarkObsOverheadFaultSim(b *testing.B) {
	d := benchDesign(b, "s38584", 0)
	faults := fault.Collapsed(d.C)
	seq := faultsim.Sequence(d.AlternatingSequence(8))
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 1})
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 1, Obs: NewCollector()})
		}
	})
}
