package fsct

// Observability overhead guard. The obs layer's contract is that
// DISABLED instrumentation (the nil collector, the library default) is
// free on the hot paths: the compiled-evaluator screening and fault
// simulation engines pay only nil-receiver checks at batch granularity,
// and an enabled collector WITHOUT a journal pays no flight-recorder
// cost either (the recorder handle is resolved once per pool, not per
// item). The acceptance bound for this repo is <2% on the PR-1 compiled
// evaluator path; compare the off/on/journal/trace tiers with benchstat:
//
//	go test -bench 'ObsOverhead' -count 10 > obs.txt
//	benchstat obs.txt   # off vs on vs journal vs trace, per engine
//
// The "on" and "journal" variants additionally quantify what enabled
// instrumentation costs (they are allowed to be slower; they exist so
// a regression in the disabled path can't hide behind a cheap enabled
// path or vice versa).

import (
	"io"
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/trace"
)

// journalCollector is an enabled collector with a flight recorder
// attached — the fully instrumented tier the CLIs run under -tracefile.
func journalCollector() *Collector {
	col := NewCollector()
	col.SetJournal(NewJournal(0))
	return col
}

// traceTier runs fn under a journal collector, then assembles the
// recorded events into a span tree and exports it as OTLP/JSON — the
// full distributed-tracing tier the CLIs run under -otlpfile. The
// export is per-run here (the CLIs export once per process), so the
// tier is an upper bound on what tracing can cost.
func traceTier(fn func(col *Collector)) {
	col := NewCollector()
	rec := NewJournal(0)
	col.SetJournal(rec)
	fn(col)
	ctx := trace.NewContext()
	spans := trace.Assemble(ctx, trace.SpanID{}, "bench", rec.Snapshot(), rec.Elapsed().Nanoseconds())
	_ = trace.WriteOTLP(io.Discard, trace.Trace{Ctx: ctx, OriginNS: 0, Spans: spans})
}

// BenchmarkObsOverheadScreen measures the screening engine with
// instrumentation off (nil collector — the default) and on, at the
// serial width so the comparison is pure hot-loop cost, not scheduling
// noise.
func BenchmarkObsOverheadScreen(b *testing.B) {
	d := benchDesign(b, "s38584", 0)
	faults := CollapsedFaults(d.C)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1})
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1, Obs: NewCollector()})
		}
	})
	b.Run("journal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1, Obs: journalCollector()})
		}
	})
	b.Run("trace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			traceTier(func(col *Collector) {
				ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1, Obs: col})
			})
		}
	})
}

// BenchmarkObsOverheadFaultSim measures compiled-evaluator sequential
// fault simulation of the alternating sequence with instrumentation
// off and on.
func BenchmarkObsOverheadFaultSim(b *testing.B) {
	d := benchDesign(b, "s38584", 0)
	faults := fault.Collapsed(d.C)
	seq := faultsim.Sequence(d.AlternatingSequence(8))
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 1})
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 1, Obs: NewCollector()})
		}
	})
	b.Run("journal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 1, Obs: journalCollector()})
		}
	})
	b.Run("trace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			traceTier(func(col *Collector) {
				faultsim.Run(d.C, seq, faults, faultsim.Options{Workers: 1, Obs: col})
			})
		}
	})
}

// BenchmarkObsOverheadFlow measures the whole three-step flow at the
// three instrumentation tiers — the journal tier is what every event
// producer (phases, pools, screening, ATPG, fault sim, cache) costs
// together, end to end.
func BenchmarkObsOverheadFlow(b *testing.B) {
	d := benchDesign(b, "s9234", 0)
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunFlow(d, FlowParams{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunFlow(d, FlowParams{Workers: 1, Obs: NewCollector()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("journal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunFlow(d, FlowParams{Workers: 1, Obs: journalCollector()}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("trace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			traceTier(func(col *Collector) {
				if _, err := RunFlow(d, FlowParams{Workers: 1, Obs: col}); err != nil {
					b.Fatal(err)
				}
			})
		}
	})
}
