package fsct

import (
	"context"
	"errors"
	"testing"
)

func TestProfileByNameFacade(t *testing.T) {
	p, err := ProfileByName("s1423")
	if err != nil || p.Name != "s1423" {
		t.Fatalf("ProfileByName(s1423) = %+v, %v", p, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("ProfileByName accepted an unknown name")
	}
}

func TestParseEvalBackendFacade(t *testing.T) {
	for name, want := range map[string]EvalBackend{
		"auto": EvalAuto, "compiled": EvalCompiled, "packed": EvalPacked,
		"scalar": EvalScalar, "event": EvalEvent,
	} {
		got, err := ParseEvalBackend(name)
		if err != nil || got != want {
			t.Errorf("ParseEvalBackend(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseEvalBackend("quantum"); err == nil {
		t.Error("ParseEvalBackend accepted junk")
	}
}

// TestRunFlowCtxPartialReport pins the facade's interruption contract:
// a cancelled context yields a non-nil partial report alongside an error
// that unwraps to context.Canceled — never a panic, never a nil report.
func TestRunFlowCtxPartialReport(t *testing.T) {
	exp := Experiment{Profile: MustProfile("s1423"), Scale: 0.05, Seed: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, d, err := exp.RunCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || d == nil {
		t.Fatal("cancelled RunCtx dropped the partial report or design")
	}

	// And the ctx-aware helpers surface the same error shape.
	if _, serr := ScreenFaultsCtx(ctx, d, CollapsedFaults(d.C), ScreenOptions{}); !errors.Is(serr, context.Canceled) {
		t.Errorf("ScreenFaultsCtx err = %v", serr)
	}
	if _, derr := BuildDictionaryCtx(ctx, d, CollapsedFaults(d.C)[:5], 1, 1); !errors.Is(derr, context.Canceled) {
		t.Errorf("BuildDictionaryCtx err = %v", derr)
	}
	if _, _, terr := ChainTransitionCoverageCtx(ctx, d, 8, 1); !errors.Is(terr, context.Canceled) {
		t.Errorf("ChainTransitionCoverageCtx err = %v", terr)
	}
}

// TestEvalBackendsAgreeViaFacade runs the alternating-test simulation
// under every forced backend and demands identical detection verdicts.
func TestEvalBackendsAgreeViaFacade(t *testing.T) {
	exp := Experiment{Profile: MustProfile("s1423"), Scale: 0.05, Seed: 1}
	c := GenerateCircuit(exp.Profile.Scale(exp.Scale), exp.Seed)
	d, err := InsertScan(c, ScanOptions{NumChains: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	faults := CollapsedFaults(d.C)
	seq := Sequence(d.AlternatingSequence(8))
	var ref *SimResult
	for _, b := range []EvalBackend{EvalCompiled, EvalPacked, EvalScalar, EvalEvent} {
		res := SimulateFaultsOpt(d.C, seq, faults, SimOptions{Eval: b})
		if ref == nil {
			ref = res
			continue
		}
		for i := range ref.DetectedAt {
			if res.DetectedAt[i] != ref.DetectedAt[i] {
				t.Fatalf("backend %v: fault %d detected at %d, compiled says %d",
					b, i, res.DetectedAt[i], ref.DetectedAt[i])
			}
		}
	}
}
