package fsct

// TestEmitObsBench writes BENCH_obs.json: the BenchmarkObsOverhead*
// tiers (instrumentation off / on / journal / trace) measured for screening,
// fault simulation and the full flow, so the <2% disabled-overhead
// contract has a committed trajectory cmd/benchdiff can gate (the CI
// job runs it warn-only, like BENCH_baseline.json).
//
// It is opt-in — the measurement loop takes a while and pins the CPU —
// so a plain `go test ./...` skips it:
//
//	FSCT_EMIT_BENCH=1 go test -run TestEmitObsBench .

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/faultsim"
)

// obsTiers is one engine measured at the three instrumentation tiers.
type obsTiers struct {
	Name    string       `json:"name"`
	Circuit string       `json:"circuit"`
	Off     benchMeasure `json:"off"`
	On      benchMeasure `json:"on"`
	Journal benchMeasure `json:"journal"`
	Trace   benchMeasure `json:"trace"`
	// OnOverhead / JournalOverhead / TraceOverhead are the headline
	// ratios vs the off tier (1.02 = 2% slower); the off tier is the one
	// under the <2% contract, the enabled tiers quantify what
	// instrumentation costs (trace adds span assembly + OTLP export on
	// top of the journal).
	OnOverhead      float64 `json:"on_overhead"`
	JournalOverhead float64 `json:"journal_overhead"`
	TraceOverhead   float64 `json:"trace_overhead"`
}

func (o *obsTiers) ratios() {
	if o.Off.NsPerOp > 0 {
		o.OnOverhead = float64(o.On.NsPerOp) / float64(o.Off.NsPerOp)
		o.JournalOverhead = float64(o.Journal.NsPerOp) / float64(o.Off.NsPerOp)
		o.TraceOverhead = float64(o.Trace.NsPerOp) / float64(o.Off.NsPerOp)
	}
}

type obsBench struct {
	Note       string     `json:"note"`
	GoVersion  string     `json:"go_version"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Scale      float64    `json:"scale"`
	Engines    []obsTiers `json:"engines"`
}

func TestEmitObsBench(t *testing.T) {
	if os.Getenv("FSCT_EMIT_BENCH") == "" {
		t.Skip("set FSCT_EMIT_BENCH=1 to measure and write BENCH_obs.json")
	}
	out := obsBench{
		Note: "Observability overhead tiers at the bench scale, serial width. " +
			"The off tier (nil collector) is the <2% contract; on/journal " +
			"quantify enabled instrumentation and are allowed to be slower.",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      benchScale,
	}

	// Screening, mirroring BenchmarkObsOverheadScreen.
	d := mustBenchDesign(t, "s38584")
	faults := CollapsedFaults(d.C)
	screen := obsTiers{Name: "screen", Circuit: "s38584"}
	screen.Off = measure(func() {
		ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1})
	})
	screen.On = measure(func() {
		ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1, Obs: NewCollector()})
	})
	screen.Journal = measure(func() {
		ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1, Obs: journalCollector()})
	})
	screen.Trace = measure(func() {
		traceTier(func(col *Collector) {
			ScreenFaultsOpt(d, faults, ScreenOptions{Workers: 1, Obs: col})
		})
	})
	screen.ratios()
	out.Engines = append(out.Engines, screen)

	// Sequential fault simulation, mirroring BenchmarkObsOverheadFaultSim.
	cf := fault.Collapsed(d.C)
	seq := faultsim.Sequence(d.AlternatingSequence(8))
	sim := obsTiers{Name: "faultsim", Circuit: "s38584"}
	sim.Off = measure(func() {
		faultsim.Run(d.C, seq, cf, faultsim.Options{Workers: 1})
	})
	sim.On = measure(func() {
		faultsim.Run(d.C, seq, cf, faultsim.Options{Workers: 1, Obs: NewCollector()})
	})
	sim.Journal = measure(func() {
		faultsim.Run(d.C, seq, cf, faultsim.Options{Workers: 1, Obs: journalCollector()})
	})
	sim.Trace = measure(func() {
		traceTier(func(col *Collector) {
			faultsim.Run(d.C, seq, cf, faultsim.Options{Workers: 1, Obs: col})
		})
	})
	sim.ratios()
	out.Engines = append(out.Engines, sim)

	// The whole three-step flow, mirroring BenchmarkObsOverheadFlow.
	fd := mustBenchDesign(t, "s9234")
	flow := obsTiers{Name: "flow", Circuit: "s9234"}
	flow.Off = measure(func() {
		if _, err := RunFlow(fd, FlowParams{Workers: 1}); err != nil {
			t.Fatal(err)
		}
	})
	flow.On = measure(func() {
		if _, err := RunFlow(fd, FlowParams{Workers: 1, Obs: NewCollector()}); err != nil {
			t.Fatal(err)
		}
	})
	flow.Journal = measure(func() {
		if _, err := RunFlow(fd, FlowParams{Workers: 1, Obs: journalCollector()}); err != nil {
			t.Fatal(err)
		}
	})
	flow.Trace = measure(func() {
		traceTier(func(col *Collector) {
			if _, err := RunFlow(fd, FlowParams{Workers: 1, Obs: col}); err != nil {
				t.Fatal(err)
			}
		})
	})
	flow.ratios()
	out.Engines = append(out.Engines, flow)

	f, err := os.Create("BENCH_obs.json")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		t.Fatal(err)
	}
	for _, e := range out.Engines {
		t.Logf("%s (%s): on %.3fx, journal %.3fx, trace %.3fx vs off", e.Name, e.Circuit, e.OnOverhead, e.JournalOverhead, e.TraceOverhead)
	}
}
