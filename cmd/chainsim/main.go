// Command chainsim demonstrates the paper's motivation (its Figure 2):
// on a functional scan chain, the classic alternating 0011… shift test
// misses some faults that corrupt the chain. It screens the fault list,
// fault-simulates the alternating sequence, and prints, per category,
// how many chain-affecting faults the alternating test catches — and
// which hard faults escape it.
//
// Usage:
//
//	chainsim [-profile s27|s1423|…] [-scale 0.1] [-chains N] [-seed 1] [-list]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		profile = flag.String("profile", "s27", "circuit: \"s27\" or a suite profile name")
		scale   = flag.Float64("scale", 0.05, "profile scale factor for suite profiles")
		chains  = flag.Int("chains", 0, "number of scan chains (0 = default)")
		seed    = flag.Int64("seed", 1, "seed")
		list    = flag.Bool("list", false, "list every escaping hard fault")
		workers = flag.Int("workers", 0, "fault-axis worker goroutines (0 = GOMAXPROCS, 1 = serial)")
		mapEval = flag.Bool("mapeval", false, "use the map-based reference evaluator (slower; ablation)")
	)
	flag.Parse()

	var c *fsct.Circuit
	if *profile == "s27" {
		c = fsct.S27()
	} else {
		p := fsct.MustProfile(*profile)
		if *scale > 0 && *scale < 1 {
			p = p.Scale(*scale)
		}
		c = fsct.GenerateCircuit(p, *seed)
	}
	n := *chains
	if n == 0 {
		n = fsct.DefaultChains(len(c.FFs))
	}
	d, err := fsct.InsertScan(c, fsct.ScanOptions{NumChains: n, Seed: *seed})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chainsim: %v\n", err)
		os.Exit(1)
	}

	faults := fsct.CollapsedFaults(d.C)
	screened := fsct.ScreenFaultsOpt(d, faults, fsct.ScreenOptions{Workers: *workers, MapEval: *mapEval})
	var easy, hard []fsct.Fault
	for _, s := range screened {
		switch s.Cat {
		case fsct.CatEasy:
			easy = append(easy, s.Fault)
		case fsct.CatHard:
			hard = append(hard, s.Fault)
		}
	}
	fmt.Printf("circuit %s: %d faults, %d affect the chain (%d easy, %d hard)\n",
		d.C.Name, len(faults), len(easy)+len(hard), len(easy), len(hard))

	alt := fsct.Sequence(d.AlternatingSequence(8))
	fmt.Printf("alternating shift test: %d cycles over %d chain(s), longest %d\n",
		len(alt), len(d.Chains), d.MaxChainLen())

	simOpts := fsct.SimOptions{Workers: *workers, MapEval: *mapEval}
	easyRes := fsct.SimulateFaultsOpt(d.C, alt, easy, simOpts)
	hardRes := fsct.SimulateFaultsOpt(d.C, alt, hard, simOpts)
	fmt.Printf("  easy faults caught: %d / %d\n", easyRes.NumDetected(), len(easy))
	fmt.Printf("  hard faults caught: %d / %d  — %d ESCAPE the alternating test\n",
		hardRes.NumDetected(), len(hard), len(hardRes.Undetected()))

	tdet, ttot := fsct.ChainTransitionCoverageOpt(d, 8, *workers)
	fmt.Printf("  bonus: the same test covers %d / %d transition (delay) faults on the chain path\n",
		tdet, ttot)

	if escapes := hardRes.Undetected(); len(escapes) > 0 {
		fmt.Printf("\nthese faults corrupt the functional scan chain yet shift the\n")
		fmt.Printf("alternating pattern cleanly — exactly the paper's Figure-2 case:\n")
		limit := 5
		if *list {
			limit = len(escapes)
		}
		for i, idx := range escapes {
			if i >= limit {
				fmt.Printf("  … and %d more (use -list)\n", len(escapes)-limit)
				break
			}
			fmt.Printf("  %s\n", hard[idx].Describe(d.C))
		}
		fmt.Printf("\nrun the full flow (cmd/fsctest) to see them detected by\n")
		fmt.Printf("combinational ATPG + sequential fault simulation.\n")
	}
}
