// Command chainsim demonstrates the paper's motivation (its Figure 2):
// on a functional scan chain, the classic alternating 0011… shift test
// misses some faults that corrupt the chain. It screens the fault list,
// fault-simulates the alternating sequence, and prints, per category,
// how many chain-affecting faults the alternating test catches — and
// which hard faults escape it.
//
// Usage:
//
//	chainsim [-profile s27|s1423|…] [-scale 0.1] [-chains N] [-seed 1] [-list]
//	         [-eval auto|compiled|packed|scalar|event|hybrid]
//	         [-metrics] [-trace] [-tracefile run.json] [-progress] [-debug addr]
//
// The observability flags are the shared surface (see
// cmd/internal/obsflags): -metrics appends a metrics summary (screening
// and simulation counters, pool utilization), -trace streams phase
// annotations to stderr, -tracefile exports the flight-recorder
// timeline as a Chrome trace-event file, -progress renders live
// progress on stderr, and -debug addr serves /debug/pprof and
// /debug/vars.
//
// SIGINT cancels the screening/simulation cooperatively and the process
// exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
	"repro/cmd/internal/obsflags"
	"repro/cmd/internal/specflags"
)

// sess is the observability session; every exit goes through exit so
// Close runs (os.Exit skips defers and -tracefile is written on Close).
var sess *obsflags.Session

func exit(code int) {
	if sess != nil {
		sess.SetExit(code)
		if err := sess.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "chainsim: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

func main() {
	var (
		v = specflags.Register(flag.CommandLine, fsct.TaskScreen,
			specflags.Options{Profile: true, DefaultProfile: "s27", Chains: true,
				Workers: true, Eval: true, ScaleDefault: 0.05})
		list    = flag.Bool("list", false, "list every escaping hard fault")
		mapEval = flag.Bool("mapeval", false, "deprecated: same as -eval packed")
		oflags  = obsflags.Register(flag.CommandLine)
	)
	flag.Parse()

	var err error
	if sess, err = oflags.Open(); err != nil {
		fail(err)
	}
	defer sess.Close()
	col := sess.Collector()

	backend, err := fsct.ParseEvalBackend(v.Eval)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// chainsim's workload is its own composite (screen + alternating
	// shift simulation + transition coverage), but circuit sourcing and
	// scan insertion come from the shared spec so its defaults cannot
	// drift from the other commands'.
	sp, err := v.Spec("")
	if err != nil {
		fail(err)
	}
	c, err := sp.BuildCircuit()
	if err != nil {
		fail(err)
	}
	d, err := sp.InsertScan(c)
	if err != nil {
		fail(err)
	}

	faults := fsct.CollapsedFaults(d.C)
	screened, err := fsct.ScreenFaultsCtx(ctx, d, faults,
		fsct.ScreenOptions{Workers: v.Workers, Eval: backend, MapEval: *mapEval, Obs: col})
	if err != nil {
		fail(err)
	}
	var easy, hard []fsct.Fault
	for _, s := range screened {
		switch s.Cat {
		case fsct.CatEasy:
			easy = append(easy, s.Fault)
		case fsct.CatHard:
			hard = append(hard, s.Fault)
		}
	}
	fmt.Printf("circuit %s: %d faults, %d affect the chain (%d easy, %d hard)\n",
		d.C.Name, len(faults), len(easy)+len(hard), len(easy), len(hard))

	alt := fsct.Sequence(d.AlternatingSequence(8))
	fmt.Printf("alternating shift test: %d cycles over %d chain(s), longest %d\n",
		len(alt), len(d.Chains), d.MaxChainLen())

	simOpts := fsct.SimOptions{Workers: v.Workers, Eval: backend, MapEval: *mapEval, Obs: col}
	easyRes, err := fsct.SimulateFaultsCtx(ctx, d.C, alt, easy, simOpts)
	if err != nil {
		fail(err)
	}
	hardRes, err := fsct.SimulateFaultsCtx(ctx, d.C, alt, hard, simOpts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  easy faults caught: %d / %d\n", easyRes.NumDetected(), len(easy))
	fmt.Printf("  hard faults caught: %d / %d  — %d ESCAPE the alternating test\n",
		hardRes.NumDetected(), len(hard), len(hardRes.Undetected()))

	tdet, ttot, err := fsct.ChainTransitionCoverageCtx(ctx, d, 8, v.Workers)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  bonus: the same test covers %d / %d transition (delay) faults on the chain path\n",
		tdet, ttot)

	if escapes := hardRes.Undetected(); len(escapes) > 0 {
		fmt.Printf("\nthese faults corrupt the functional scan chain yet shift the\n")
		fmt.Printf("alternating pattern cleanly — exactly the paper's Figure-2 case:\n")
		limit := 5
		if *list {
			limit = len(escapes)
		}
		for i, idx := range escapes {
			if i >= limit {
				fmt.Printf("  … and %d more (use -list)\n", len(escapes)-limit)
				break
			}
			fmt.Printf("  %s\n", hard[idx].Describe(d.C))
		}
		fmt.Printf("\nrun the full flow (cmd/fsctest) to see them detected by\n")
		fmt.Printf("combinational ATPG + sequential fault simulation.\n")
	}
	extras := map[string]float64{
		"faults":      float64(len(faults)),
		"screen.easy": float64(len(easy)),
		"screen.hard": float64(len(hard)),
		"escapes":     float64(len(hardRes.Undetected())),
	}
	if affecting := len(easy) + len(hard); affecting > 0 {
		caught := easyRes.NumDetected() + hardRes.NumDetected()
		extras["coverage"] = 100 * float64(caught) / float64(affecting)
	}
	sess.RecordRun(d.C.Name, d.C.StructuralHash(), col.Snapshot(), extras)
	if oflags.Metrics {
		fmt.Print(fsct.FormatMetrics(col.Snapshot()))
	}
	exit(0)
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "chainsim: interrupted")
	} else {
		fmt.Fprintf(os.Stderr, "chainsim: %v\n", err)
	}
	exit(1)
}
